// Tests for src/kernels: fast-math error bounds (the paper's Sec. IV-E
// claims), metric identities, Cholesky/Mahalanobis equivalence (Sec. IV-D),
// and Gaussian kernel behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "kernels/batch.h"
#include "kernels/fastmath.h"
#include "kernels/gaussian.h"
#include "kernels/linalg.h"
#include "kernels/metrics.h"
#include "util/rng.h"

namespace portal {
namespace {

TEST(FastMath, InvSqrtErrorWithinPaperBound) {
  // Sec. IV-E quotes ~0.17% error for the fast inverse square root; our
  // one-Newton-step double version must stay within 0.2% across magnitudes.
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = std::pow(10.0, rng.uniform(-6, 6));
    const double approx = fast_inv_sqrt(x);
    const double exact = 1.0 / std::sqrt(x);
    EXPECT_NEAR(approx / exact, 1.0, 2e-3) << "x=" << x;
  }
}

TEST(FastMath, SafeSqrtHandlesZero) {
  // The paper picks 1/(1/rsqrt(x)) precisely because it returns 0 at x = 0
  // while x * rsqrt(x) returns NaN.
  EXPECT_EQ(fast_sqrt(0.0), 0.0);
  EXPECT_TRUE(std::isnan(fast_sqrt_unsafe(0.0)));
}

TEST(FastMath, SqrtVariantsAgreeAwayFromZero) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(1e-3, 1e6);
    EXPECT_NEAR(fast_sqrt(x) / std::sqrt(x), 1.0, 2e-3);
    EXPECT_NEAR(fast_sqrt_unsafe(x) / std::sqrt(x), 1.0, 2e-3);
  }
}

TEST(FastMath, PowIntExactForSmallExponents) {
  EXPECT_DOUBLE_EQ(pow_int(3.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(pow_int(3.0, 1), 3.0);
  EXPECT_DOUBLE_EQ(pow_int(3.0, 2), 9.0);
  EXPECT_DOUBLE_EQ(pow_int(3.0, 3), 27.0);
  EXPECT_DOUBLE_EQ(pow_int(2.0, 10), 1024.0);
  EXPECT_DOUBLE_EQ(pow_int(-2.0, 3), -8.0);
}

TEST(FastMath, PowIntNegativeExponents) {
  // Regression: pow_int used to return 1 for every negative exponent because
  // the square-and-multiply loop guard `n > 0` was false on entry.
  EXPECT_DOUBLE_EQ(pow_int(2.0, -1), 0.5);
  EXPECT_DOUBLE_EQ(pow_int(2.0, -2), 0.25);
  EXPECT_DOUBLE_EQ(pow_int(2.0, -3), 0.125);
  EXPECT_DOUBLE_EQ(pow_int(-2.0, -3), -0.125);
  EXPECT_DOUBLE_EQ(pow_int(10.0, -2), 0.01);
  EXPECT_DOUBLE_EQ(pow_int(0.5, -3), 8.0);
  // The full n in {-3..3} sweep against std::pow.
  for (int n = -3; n <= 3; ++n) {
    EXPECT_DOUBLE_EQ(pow_int(1.5, n), std::pow(1.5, n)) << "n=" << n;
    EXPECT_DOUBLE_EQ(pow_int(-1.5, n), std::pow(-1.5, n)) << "n=" << n;
  }
}

TEST(FastMath, InvSqrtEdgeCasesDouble) {
  // Regression: the bit-trick produced garbage (not NaN) for x < 0, and the
  // Newton step overflowed for denormal inputs. The contract now matches
  // hardware rsqrt: NaN for negatives, +inf for zero and denormals (flush-
  // to-zero semantics), 0 for +inf, and NaN propagates.
  EXPECT_TRUE(std::isnan(fast_inv_sqrt(-1.0)));
  EXPECT_TRUE(std::isnan(fast_inv_sqrt(-0.25)));
  EXPECT_TRUE(std::isnan(fast_inv_sqrt(-std::numeric_limits<double>::infinity())));
  EXPECT_TRUE(std::isnan(fast_inv_sqrt(std::numeric_limits<double>::quiet_NaN())));
  EXPECT_EQ(fast_inv_sqrt(0.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(fast_inv_sqrt(std::numeric_limits<double>::denorm_min()),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(fast_inv_sqrt(0.5 * std::numeric_limits<double>::min()),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(fast_inv_sqrt(std::numeric_limits<double>::infinity()), 0.0);
  // Smallest normal still goes through the approximation path.
  const double tiny = std::numeric_limits<double>::min();
  EXPECT_NEAR(fast_inv_sqrt(tiny) / (1.0 / std::sqrt(tiny)), 1.0, 2e-3);
}

TEST(FastMath, InvSqrtEdgeCasesFloat) {
  EXPECT_TRUE(std::isnan(fast_inv_sqrt(-1.0f)));
  EXPECT_TRUE(std::isnan(fast_inv_sqrt(-std::numeric_limits<float>::infinity())));
  EXPECT_TRUE(std::isnan(fast_inv_sqrt(std::numeric_limits<float>::quiet_NaN())));
  EXPECT_EQ(fast_inv_sqrt(0.0f), std::numeric_limits<float>::infinity());
  EXPECT_EQ(fast_inv_sqrt(std::numeric_limits<float>::denorm_min()),
            std::numeric_limits<float>::infinity());
  EXPECT_EQ(fast_inv_sqrt(std::numeric_limits<float>::infinity()), 0.0f);
  const float tiny = std::numeric_limits<float>::min();
  EXPECT_NEAR(fast_inv_sqrt(tiny) * std::sqrt(tiny), 1.0f, 2e-3f);
  EXPECT_NEAR(fast_inv_sqrt(4.0f), 0.5f, 2e-3f);
}

TEST(Metrics, KnownValues) {
  const real_t a[3] = {0, 0, 0};
  const real_t b[3] = {3, 4, 0};
  EXPECT_DOUBLE_EQ(SqEuclideanMetric::eval(a, 1, b, 1, 3), 25.0);
  EXPECT_DOUBLE_EQ(EuclideanMetric::eval(a, 1, b, 1, 3), 5.0);
  EXPECT_DOUBLE_EQ(ManhattanMetric::eval(a, 1, b, 1, 3), 7.0);
  EXPECT_DOUBLE_EQ(ChebyshevMetric::eval(a, 1, b, 1, 3), 4.0);
}

TEST(Metrics, StridedAccessMatchesContiguous) {
  // Column-major layout: coordinates are `n` apart.
  const real_t col[6] = {0, 3, 0, 4, 0, 0}; // 2 points, 3 dims, n = 2
  const real_t a[3] = {0, 0, 0};
  const real_t b[3] = {3, 4, 0};
  EXPECT_DOUBLE_EQ(SqEuclideanMetric::eval(col + 0, 2, col + 1, 2, 3),
                   SqEuclideanMetric::eval(a, 1, b, 1, 3));
  EXPECT_DOUBLE_EQ(ManhattanMetric::eval(col + 0, 2, col + 1, 2, 3), 7.0);
}

TEST(Metrics, MetricAxioms) {
  Rng rng(3);
  std::vector<real_t> x(8), y(8), z(8);
  for (int trial = 0; trial < 200; ++trial) {
    for (int d = 0; d < 8; ++d) {
      x[d] = rng.uniform(-5, 5);
      y[d] = rng.uniform(-5, 5);
      z[d] = rng.uniform(-5, 5);
    }
    for (MetricKind kind : {MetricKind::Euclidean, MetricKind::Manhattan,
                            MetricKind::Chebyshev}) {
      const real_t dxy = point_distance(kind, x.data(), 1, y.data(), 1, 8);
      const real_t dyx = point_distance(kind, y.data(), 1, x.data(), 1, 8);
      const real_t dxx = point_distance(kind, x.data(), 1, x.data(), 1, 8);
      const real_t dxz = point_distance(kind, x.data(), 1, z.data(), 1, 8);
      const real_t dzy = point_distance(kind, z.data(), 1, y.data(), 1, 8);
      EXPECT_NEAR(dxy, dyx, 1e-12); // symmetry
      EXPECT_NEAR(dxx, 0.0, 1e-12); // identity
      EXPECT_LE(dxy, dxz + dzy + 1e-9); // triangle inequality
    }
  }
}

TEST(Linalg, CholeskyReconstructs) {
  // A = L L^T for a hand-built SPD matrix.
  const index_t m = 3;
  const std::vector<real_t> a = {4, 2, 1, 2, 5, 3, 1, 3, 6};
  const std::vector<real_t> l = cholesky(a, m);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < m; ++j) {
      real_t sum = 0;
      for (index_t k = 0; k < m; ++k) sum += l[i * m + k] * l[j * m + k];
      EXPECT_NEAR(sum, a[i * m + j], 1e-12);
    }
  // Upper triangle of L is zero.
  EXPECT_DOUBLE_EQ(l[0 * m + 1], 0);
  EXPECT_DOUBLE_EQ(l[0 * m + 2], 0);
  EXPECT_DOUBLE_EQ(l[1 * m + 2], 0);
}

TEST(Linalg, CholeskyRejectsIndefinite) {
  const std::vector<real_t> not_spd = {1, 2, 2, 1}; // eigenvalues 3, -1
  EXPECT_THROW(cholesky(not_spd, 2), std::domain_error);
}

TEST(Linalg, TriangularSolves) {
  const index_t m = 3;
  const std::vector<real_t> a = {4, 2, 1, 2, 5, 3, 1, 3, 6};
  const std::vector<real_t> l = cholesky(a, m);
  const real_t b[3] = {1, 2, 3};
  real_t y[3], x[3];
  forward_substitute(l, m, b, y);
  // Check L y = b.
  for (index_t i = 0; i < m; ++i) {
    real_t sum = 0;
    for (index_t k = 0; k <= i; ++k) sum += l[i * m + k] * y[k];
    EXPECT_NEAR(sum, b[i], 1e-12);
  }
  backward_substitute(l, m, y, x);
  // Now A x = b.
  for (index_t i = 0; i < m; ++i) {
    real_t sum = 0;
    for (index_t k = 0; k < m; ++k) sum += a[i * m + k] * x[k];
    EXPECT_NEAR(sum, b[i], 1e-10);
  }
}

TEST(Linalg, SpdInverse) {
  const index_t m = 3;
  const std::vector<real_t> a = {4, 2, 1, 2, 5, 3, 1, 3, 6};
  const std::vector<real_t> inv = spd_inverse(a, m);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < m; ++j) {
      real_t sum = 0;
      for (index_t k = 0; k < m; ++k) sum += a[i * m + k] * inv[k * m + j];
      EXPECT_NEAR(sum, i == j ? 1.0 : 0.0, 1e-10);
    }
}

TEST(Linalg, LogDet) {
  const index_t m = 2;
  const std::vector<real_t> a = {3, 1, 1, 2}; // det = 5
  const std::vector<real_t> l = cholesky(a, m);
  EXPECT_NEAR(log_det_from_cholesky(l, m), std::log(5.0), 1e-12);
}

/// The Sec. IV-D numerical optimization: the Cholesky + forward-substitution
/// Mahalanobis path must agree with the explicit-inverse quadratic form on
/// random SPD matrices and random points.
TEST(Linalg, MahalanobisCholeskyMatchesNaive) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const index_t m = 2 + static_cast<index_t>(rng.uniform_index(6));
    // Random SPD: B B^T + m I.
    std::vector<real_t> b(m * m), a(m * m, 0);
    for (real_t& v : b) v = rng.uniform(-1, 1);
    for (index_t i = 0; i < m; ++i)
      for (index_t j = 0; j < m; ++j) {
        for (index_t k = 0; k < m; ++k) a[i * m + j] += b[i * m + k] * b[j * m + k];
        if (i == j) a[i * m + j] += m;
      }
    const std::vector<real_t> l = cholesky(a, m);
    const std::vector<real_t> inv = spd_inverse(a, m);
    std::vector<real_t> x(m), mu(m), scratch(2 * m);
    for (index_t d = 0; d < m; ++d) {
      x[d] = rng.uniform(-3, 3);
      mu[d] = rng.uniform(-3, 3);
    }
    const real_t fast = mahalanobis_sq_cholesky(x.data(), mu.data(), l, m,
                                                scratch.data());
    const real_t naive = mahalanobis_sq_naive(x.data(), mu.data(), inv, m);
    EXPECT_NEAR(fast, naive, 1e-9 * std::max(real_t(1), std::abs(naive)));
    EXPECT_GE(fast, 0.0);
  }
}

TEST(Linalg, CovarianceOfKnownData) {
  // Two dimensions, perfectly correlated.
  const Dataset data = Dataset::from_points({{0, 0}, {1, 1}, {2, 2}});
  const std::vector<real_t> mean = column_mean(data);
  EXPECT_DOUBLE_EQ(mean[0], 1.0);
  EXPECT_DOUBLE_EQ(mean[1], 1.0);
  const std::vector<real_t> cov = covariance(data, mean, 0);
  EXPECT_NEAR(cov[0], 1.0, 1e-12);
  EXPECT_NEAR(cov[1], 1.0, 1e-12);
  EXPECT_NEAR(cov[3], 1.0, 1e-12);
}

TEST(MahalanobisContext, EigBoundsSandwichQuadraticForm) {
  Rng rng(6);
  const index_t m = 4;
  std::vector<real_t> b(m * m), a(m * m, 0);
  for (real_t& v : b) v = rng.uniform(-1, 1);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < m; ++j) {
      for (index_t k = 0; k < m; ++k) a[i * m + j] += b[i * m + k] * b[j * m + k];
      if (i == j) a[i * m + j] += 1;
    }
  const MahalanobisContext ctx(a, m);
  EXPECT_GT(ctx.eig_min(), 0.0);
  EXPECT_GE(ctx.eig_max(), ctx.eig_min());

  std::vector<real_t> x(m), y(m), scratch(2 * m);
  for (int trial = 0; trial < 200; ++trial) {
    real_t sq_l2 = 0;
    for (index_t d = 0; d < m; ++d) {
      x[d] = rng.uniform(-2, 2);
      y[d] = rng.uniform(-2, 2);
      const real_t diff = x[d] - y[d];
      sq_l2 += diff * diff;
    }
    const real_t maha = ctx.sq_dist(x.data(), y.data(), scratch.data());
    EXPECT_GE(maha, ctx.eig_min() * sq_l2 - 1e-9);
    EXPECT_LE(maha, ctx.eig_max() * sq_l2 + 1e-9);
  }
}

TEST(Gaussian, KernelMonotoneDecreasing) {
  const GaussianKernel kernel(2.0);
  EXPECT_DOUBLE_EQ(kernel.eval_sq(0), 1.0);
  real_t prev = kernel.eval_sq(0);
  for (real_t sq = 0.5; sq < 50; sq += 0.5) {
    const real_t value = kernel.eval_sq(sq);
    EXPECT_LT(value, prev);
    prev = value;
  }
}

TEST(Gaussian, LogPdfMatchesClosedForm1D) {
  // 1-D: log N(x | mu, v) = -0.5 (log(2 pi v) + (x-mu)^2 / v).
  const MahalanobisContext ctx({4.0}, 1); // variance 4
  real_t scratch[2];
  const real_t x = 3, mu = 1;
  const real_t expected =
      -0.5 * (std::log(kTwoPi * 4.0) + (x - mu) * (x - mu) / 4.0);
  EXPECT_NEAR(log_gaussian_pdf(&x, &mu, ctx, scratch), expected, 1e-12);
  EXPECT_NEAR(log_gaussian_pdf_naive(&x, &mu, ctx), expected, 1e-12);
}

TEST(Gaussian, BatchedSumIsBitwiseEqualToOrderedLanes) {
  // The fused exp-accumulate used by the batched KDE base case must equal
  // gaussian_sq lanes summed in ascending order, bit for bit -- that is the
  // contract that lets kde.cpp skip the intermediate values pass.
  Rng rng(99);
  for (const index_t count : {index_t(1), index_t(15), index_t(16), index_t(33)}) {
    std::vector<real_t> sq(count), vals(count);
    for (real_t& v : sq) v = rng.uniform(0.0, 9.0);
    const real_t c = 0.37;
    batch::gaussian_sq(sq.data(), count, c, vals.data());
    real_t ordered = 0;
    for (index_t j = 0; j < count; ++j) ordered += vals[j];
    EXPECT_EQ(batch::gaussian_sq_sum(sq.data(), count, c), ordered);
  }
}

} // namespace
} // namespace portal
