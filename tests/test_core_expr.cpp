// Tests for the Portal language front end: Var/Expr AST construction, the
// implicit vector->scalar typing rules (Sec. IV-A lowering semantics), the
// pre-defined PortalFunc expansions, and Storage.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/func.h"
#include "core/storage.h"
#include "core/var_expr.h"
#include "data/generators.h"

namespace portal {
namespace {

TEST(Expr, VarsHaveDistinctIds) {
  Var a, b;
  Var named("q");
  EXPECT_NE(a.id(), b.id());
  EXPECT_NE(b.id(), named.id());
  EXPECT_EQ(named.name(), "q");
}

TEST(Expr, TypingRules) {
  Var q, r;
  EXPECT_EQ(Expr(q).type(), ExprType::Vector);
  EXPECT_EQ(Expr(1.5).type(), ExprType::Scalar);
  EXPECT_EQ((Expr(q) - Expr(r)).type(), ExprType::Vector);
  EXPECT_EQ((Expr(q) * Expr(2.0)).type(), ExprType::Vector); // broadcast
  EXPECT_EQ(pow(Expr(q) - Expr(r), 2).type(), ExprType::Vector);
  // Scalar-only functions implicitly dim-sum vector arguments (paper Fig. 2).
  EXPECT_EQ(sqrt(pow(Expr(q) - Expr(r), 2)).type(), ExprType::Scalar);
  EXPECT_EQ(exp(Expr(q)).type(), ExprType::Scalar);
  EXPECT_EQ(dimsum(Expr(q)).type(), ExprType::Scalar);
  EXPECT_EQ(dimmax(abs(Expr(q) - Expr(r))).type(), ExprType::Scalar);
  // abs stays elementwise.
  EXPECT_EQ(abs(Expr(q) - Expr(r)).type(), ExprType::Vector);
}

TEST(Expr, ImplicitDimSumInsertedUnderSqrt) {
  Var q("q"), r("r");
  const Expr euclid = sqrt(pow(Expr(q) - Expr(r), 2));
  // Structure: Sqrt(DimSum(Pow(Sub(q, r), 2))).
  const ExprNodePtr& root = euclid.node();
  ASSERT_EQ(root->kind, ExprKind::Sqrt);
  ASSERT_EQ(root->children[0]->kind, ExprKind::DimSum);
  ASSERT_EQ(root->children[0]->children[0]->kind, ExprKind::Pow);
}

TEST(Expr, DimSumOnScalarIsIdentity) {
  const Expr scalar = Expr(3.0) + Expr(4.0);
  EXPECT_EQ(dimsum(scalar).node(), scalar.node());
}

TEST(Expr, ComparisonsAutoReduce) {
  Var q, r;
  const Expr cmp = pow(Expr(q) - Expr(r), 2) < Expr(4.0);
  EXPECT_EQ(cmp.type(), ExprType::Scalar);
  ASSERT_EQ(cmp.node()->kind, ExprKind::Less);
  EXPECT_EQ(cmp.node()->children[0]->kind, ExprKind::DimSum);
}

TEST(Expr, ToStringRoundTripsStructure) {
  Var q("q"), r("r");
  const Expr e = sqrt(pow(Expr(q) - Expr(r), 2));
  EXPECT_EQ(e.to_string(), "sqrt(dimsum(pow((q - r), 2)))");
  EXPECT_EQ((Expr(1.0) / Expr(q)).to_string(), "(1 / q)");
}

TEST(Expr, CollectVarIds) {
  Var q, r, unused;
  const Expr e = sqrt(pow(Expr(q) - Expr(r), 2)) * Expr(2.0);
  const std::vector<int> ids = collect_var_ids(e);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_TRUE((ids[0] == q.id() && ids[1] == r.id()) ||
              (ids[0] == r.id() && ids[1] == q.id()));
}

TEST(Expr, MahalanobisAndExternalNodes) {
  Var q, r;
  const Expr maha = mahalanobis(q, r);
  EXPECT_EQ(maha.type(), ExprType::Scalar);
  EXPECT_EQ(maha.node()->kind, ExprKind::Mahalanobis);

  const Expr ext = external_kernel(
      q, r, [](const real_t*, const real_t*, index_t) { return real_t(1); },
      "mykernel");
  EXPECT_EQ(ext.type(), ExprType::Scalar);
  EXPECT_EQ(ext.to_string().substr(0, 8), "mykernel");
}

TEST(Expr, EmptyOperandsThrow) {
  Expr empty;
  EXPECT_THROW(empty + Expr(1.0), std::invalid_argument);
  EXPECT_THROW(sqrt(empty), std::invalid_argument);
  EXPECT_THROW(empty.type(), std::logic_error);
}

TEST(PortalFunc, PredefinedExpansions) {
  Var q("q"), r("r");
  EXPECT_EQ(PortalFunc::EUCLIDEAN.expand(q, r).to_string(),
            "sqrt(dimsum(pow((q - r), 2)))");
  EXPECT_EQ(PortalFunc::SQREUCDIST.expand(q, r).to_string(),
            "dimsum(pow((q - r), 2))");
  EXPECT_EQ(PortalFunc::MANHATTAN.expand(q, r).to_string(),
            "dimsum(abs((q - r)))");
  EXPECT_EQ(PortalFunc::CHEBYSHEV.expand(q, r).to_string(),
            "dimmax(abs((q - r)))");
  EXPECT_EQ(PortalFunc::MAHALANOBIS.expand(q, r).node()->kind,
            ExprKind::Mahalanobis);
}

TEST(PortalFunc, GaussianCarriesSigma) {
  Var q, r;
  const PortalFunc gaussian = PortalFunc::gaussian(2.0);
  EXPECT_DOUBLE_EQ(gaussian.sigma(), 2.0);
  const Expr e = gaussian.expand(q, r);
  ASSERT_EQ(e.node()->kind, ExprKind::Exp);
  EXPECT_THROW(PortalFunc::gaussian(0), std::invalid_argument);
}

TEST(PortalFunc, GravityHasNoScalarExpansion) {
  Var q, r;
  EXPECT_THROW(PortalFunc::gravity().expand(q, r), std::logic_error);
  EXPECT_THROW(PortalFunc::NONE.expand(q, r), std::logic_error);
}

TEST(PortalFunc, IndicatorValidation) {
  EXPECT_THROW(PortalFunc::indicator(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(PortalFunc::indicator(-1.0, 1.0), std::invalid_argument);
  const PortalFunc f = PortalFunc::indicator(0.5, 2.0);
  EXPECT_DOUBLE_EQ(f.lo(), 0.5);
  EXPECT_DOUBLE_EQ(f.hi(), 2.0);
}

TEST(Storage, FromVectorsAndCsv) {
  Storage from_floats(std::vector<std::vector<float>>{{1.f, 2.f}, {3.f, 4.f}});
  EXPECT_EQ(from_floats.size(), 2);
  EXPECT_EQ(from_floats.dim(), 2);
  EXPECT_TRUE(from_floats.is_input());
  EXPECT_FALSE(from_floats.is_output());

  const std::string path = testing::TempDir() + "/portal_storage.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("1,2,3\n4,5,6\n", f);
    fclose(f);
  }
  Storage from_csv(path);
  EXPECT_EQ(from_csv.size(), 2);
  EXPECT_EQ(from_csv.dim(), 3);
  std::remove(path.c_str());
}

TEST(Storage, LayoutFollowsPaperPolicy) {
  Storage low(make_uniform(10, 3, 1));
  Storage high(make_uniform(10, 8, 2));
  EXPECT_EQ(low.layout(), Layout::ColMajor);
  EXPECT_EQ(high.layout(), Layout::RowMajor);
}

TEST(Storage, WeightsValidation) {
  Storage s(make_uniform(5, 3, 3));
  EXPECT_FALSE(s.has_weights());
  EXPECT_THROW(s.set_weights({1, 2}), std::invalid_argument);
  s.set_weights({1, 2, 3, 4, 5});
  EXPECT_TRUE(s.has_weights());
  EXPECT_DOUBLE_EQ(s.weights()[4], 5);
}

TEST(Storage, OutputAccessorsGuard) {
  Storage input(make_uniform(5, 2, 4));
  EXPECT_THROW(input.rows(), std::logic_error);
  EXPECT_THROW(input.scalar(), std::logic_error);
  Storage empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_THROW(empty.size(), std::logic_error);
}

TEST(Storage, ClearReleases) {
  Storage s(make_uniform(5, 2, 5));
  s.clear();
  EXPECT_TRUE(s.empty());
}

} // namespace
} // namespace portal
