// Tests for src/util: RNG determinism and distribution sanity, CSV dialect
// handling, timers, and threading helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>
#include <string>

#include "util/csv.h"
#include "util/rng.h"
#include "util/threading.h"
#include "util/timer.h"

namespace portal {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
  }
  // Different seed diverges immediately with overwhelming probability.
  Rng a2(42);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const real_t u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 10000; ++i) {
    const real_t u = rng.uniform(-3, 5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(11);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 5e-3);
  EXPECT_NEAR(var, 1.0 / 12.0, 5e-3);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 2e-2);
  EXPECT_NEAR(sum_sq / n, 1.0, 2e-2);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(8));
  EXPECT_EQ(seen.size(), 8u);
  for (std::uint64_t v : seen) EXPECT_LT(v, 8u);
}

TEST(Csv, ParsesPlainNumbers) {
  const CsvTable t = read_csv_string("1,2,3\n4,5,6\n");
  EXPECT_EQ(t.rows, 2);
  EXPECT_EQ(t.cols, 3);
  EXPECT_DOUBLE_EQ(t.values[0], 1);
  EXPECT_DOUBLE_EQ(t.values[5], 6);
}

TEST(Csv, AutoDetectsHeader) {
  const CsvTable t = read_csv_string("x,y\n1,2\n3,4\n");
  EXPECT_EQ(t.rows, 2);
  EXPECT_EQ(t.cols, 2);
  EXPECT_DOUBLE_EQ(t.values[0], 1);
}

TEST(Csv, ForceHeaderSkipsNumericFirstRow) {
  CsvOptions options;
  options.force_header = true;
  const CsvTable t = read_csv_string("9,9\n1,2\n", options);
  EXPECT_EQ(t.rows, 1);
  EXPECT_DOUBLE_EQ(t.values[0], 1);
}

TEST(Csv, SkipsCommentsAndBlankLines) {
  const CsvTable t = read_csv_string("# comment\n\n1,2\n\n# more\n3,4\n");
  EXPECT_EQ(t.rows, 2);
  EXPECT_EQ(t.cols, 2);
}

TEST(Csv, RejectsRaggedRows) {
  EXPECT_THROW(read_csv_string("1,2,3\n4,5\n"), std::runtime_error);
}

TEST(Csv, RejectsNonNumericDataRow) {
  EXPECT_THROW(read_csv_string("1,2\n3,oops\n"), std::runtime_error);
}

TEST(Csv, CustomSeparator) {
  CsvOptions options;
  options.separator = ';';
  const CsvTable t = read_csv_string("1;2\n3;4\n", options);
  EXPECT_EQ(t.cols, 2);
  EXPECT_DOUBLE_EQ(t.values[3], 4);
}

TEST(Csv, ScientificNotationAndNegatives) {
  const CsvTable t = read_csv_string("-1.5e3,2.25E-2\n");
  EXPECT_DOUBLE_EQ(t.values[0], -1500.0);
  EXPECT_DOUBLE_EQ(t.values[1], 0.0225);
}

TEST(Csv, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/portal_csv_roundtrip.csv";
  const real_t values[6] = {1.25, -2.5, 3.0e-7, 4, 5.5, -6.125};
  write_csv(path, values, 2, 3);
  const CsvTable t = read_csv(path);
  ASSERT_EQ(t.rows, 2);
  ASSERT_EQ(t.cols, 3);
  for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(t.values[i], values[i]);
  std::remove(path.c_str());
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/portal/file.csv"), std::runtime_error);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(static_cast<double>(i));
  EXPECT_GT(timer.elapsed_s(), 0.0);
  const double before = timer.elapsed_s();
  timer.reset();
  EXPECT_LE(timer.elapsed_s(), before + 1.0);
}

TEST(Threading, TaskSpawnDepth) {
  EXPECT_EQ(task_spawn_depth(1), 0);
  EXPECT_EQ(task_spawn_depth(2), 3);  // log2(2) + 2
  EXPECT_EQ(task_spawn_depth(8), 5);  // log2(8) + 2
  EXPECT_EQ(task_spawn_depth(6), 5);  // ceil(log2(6)) + 2
}

TEST(Threading, NumThreadsPositive) { EXPECT_GE(num_threads(), 1); }

} // namespace
} // namespace portal
