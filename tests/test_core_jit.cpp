// Tests for the source JIT backend: C++ emission, compilation through the
// system compiler, agreement with the VM on the same optimized IR, and the
// on-disk artifact cache (warm starts, corruption rejection, eviction).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "core/analysis.h"
#include "core/codegen/artifact_cache.h"
#include "core/codegen/jit.h"
#include "core/codegen/vm.h"
#include "core/portal.h"
#include "data/generators.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace portal {
namespace {

namespace fs = std::filesystem;

/// mkdtemp-backed cache directory, recursively removed on scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    std::string tpl = fs::temp_directory_path().string() + "/portal_test_XXXXXX";
    std::vector<char> buf(tpl.begin(), tpl.end());
    buf.push_back('\0');
    if (mkdtemp(buf.data()) == nullptr)
      throw std::runtime_error("cannot create temp dir");
    path.assign(buf.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

ArtifactCache make_cache(const std::string& dir, std::size_t max_entries = 256) {
  ArtifactCache::Options options;
  options.dir = dir;
  options.max_entries = max_entries;
  return ArtifactCache(std::move(options));
}

/// The single `.so` entry in a cache dir ("" when there is not exactly one).
std::string sole_artifact(const std::string& dir) {
  std::string found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 3 && name.substr(name.size() - 3) == ".so") {
      if (!found.empty()) return "";
      found = entry.path().string();
    }
  }
  return found;
}

std::size_t files_in(const std::string& dir) {
  std::size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++n;
  }
  return n;
}

ProblemPlan make_plan(const PortalFunc& func, const Storage& data,
                      PortalOp inner_op = PortalOp::ARGMIN) {
  std::vector<LayerSpec> layers(2);
  layers[0].op = OpSpec(PortalOp::FORALL);
  layers[0].storage = data;
  layers[1].op = OpSpec(inner_op);
  layers[1].storage = data;
  layers[1].func = func;
  return analyze_layers(layers, PortalConfig{});
}

TEST(Jit, CompilerIsAvailable) {
  // This environment ships g++; the JIT must detect it.
  EXPECT_TRUE(jit_available());
}

TEST(Jit, EmitsCompilableSource) {
  Storage data(make_gaussian_mixture(50, 3, 2, 41));
  const ProblemPlan plan = make_plan(PortalFunc::EUCLIDEAN, data);
  const std::string source = emit_cpp_source(plan);
  EXPECT_NE(source.find("extern \"C\" double portal_kernel"), std::string::npos);
  EXPECT_NE(source.find("extern \"C\" double portal_envelope"), std::string::npos);
  EXPECT_NE(source.find("for (long d = 0; d < dim; ++d)"), std::string::npos);
}

TEST(Jit, KernelMatchesVm) {
  Storage data(make_gaussian_mixture(50, 4, 2, 42));
  for (const PortalFunc& func :
       {PortalFunc::EUCLIDEAN, PortalFunc::SQREUCDIST, PortalFunc::MANHATTAN,
        PortalFunc::CHEBYSHEV, PortalFunc::gaussian(1.5)}) {
    const ProblemPlan plan = make_plan(func, data, PortalOp::SUM);
    auto module = JitModule::compile(plan);
    ASSERT_NE(module, nullptr) << func.name();
    const EvaluatorFns jit = module->evaluators();
    const VmProgram vm = VmProgram::compile(plan.kernel.kernel_ir);

    Rng rng(43);
    std::vector<real_t> scratch(16);
    for (int trial = 0; trial < 50; ++trial) {
      real_t a[4], b[4];
      for (int d = 0; d < 4; ++d) {
        a[d] = rng.uniform(-5, 5);
        b[d] = rng.uniform(-5, 5);
      }
      EXPECT_NEAR(jit.kernel_pair(a, b, 4, scratch.data()),
                  vm.run_pair(a, b, 4, scratch.data()), 1e-12)
          << func.name();
    }
    if (plan.kernel.normalized) {
      const VmProgram env_vm = VmProgram::compile(plan.kernel.envelope_ir);
      for (real_t d : {0.0, 0.5, 1.0, 4.0, 25.0})
        EXPECT_NEAR(jit.envelope(d), env_vm.run_envelope(d), 1e-12);
    }
  }
}

TEST(Jit, MahalanobisKernelMatchesVm) {
  Storage data(make_gaussian_mixture(60, 3, 2, 44));
  const ProblemPlan plan = make_plan(PortalFunc::MAHALANOBIS, data, PortalOp::SUM);
  auto module = JitModule::compile(plan);
  ASSERT_NE(module, nullptr);
  const EvaluatorFns jit = module->evaluators();
  const VmProgram vm = VmProgram::compile(plan.kernel.kernel_ir);

  Rng rng(45);
  std::vector<real_t> scratch(16);
  for (int trial = 0; trial < 50; ++trial) {
    real_t a[3], b[3];
    for (int d = 0; d < 3; ++d) {
      a[d] = rng.uniform(-3, 3);
      b[d] = rng.uniform(-3, 3);
    }
    EXPECT_NEAR(jit.kernel_pair(a, b, 3, scratch.data()),
                vm.run_pair(a, b, 3, scratch.data()), 1e-9);
  }
}

TEST(Jit, ExternalKernelsReportUnserializable) {
  Storage data(make_gaussian_mixture(30, 2, 2, 46));
  std::vector<LayerSpec> layers(2);
  layers[0].op = OpSpec(PortalOp::FORALL);
  layers[0].storage = data;
  layers[1].op = OpSpec(PortalOp::ARGMIN);
  layers[1].storage = data;
  layers[1].external = [](const real_t*, const real_t*, index_t) {
    return real_t(0);
  };
  const ProblemPlan plan = analyze_layers(layers, PortalConfig{});
  EXPECT_EQ(JitModule::compile(plan), nullptr);
  EXPECT_THROW(emit_cpp_source(plan), std::runtime_error);
}

TEST(Jit, EndToEndKnnThroughJitEngine) {
  Storage query(make_gaussian_mixture(60, 3, 2, 47));
  Storage reference(make_gaussian_mixture(120, 3, 2, 48));

  PortalConfig config;
  config.parallel = false;

  Storage pattern_out, jit_out;
  {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, query);
    expr.addLayer({PortalOp::KARGMIN, 3}, reference, PortalFunc::EUCLIDEAN);
    config.engine = Engine::Pattern;
    expr.execute(config);
    pattern_out = expr.getOutput();
  }
  {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, query);
    expr.addLayer({PortalOp::KARGMIN, 3}, reference, PortalFunc::EUCLIDEAN);
    config.engine = Engine::JIT;
    expr.execute(config);
    EXPECT_EQ(expr.artifacts().chosen_engine, "jit");
    jit_out = expr.getOutput();
  }
  for (index_t i = 0; i < pattern_out.rows(); ++i)
    for (index_t j = 0; j < 3; ++j)
      EXPECT_NEAR(pattern_out.value(i, j), jit_out.value(i, j), 1e-9);
}

TEST(Jit, EmitsFusedLeafEntries) {
  Storage data(make_gaussian_mixture(50, 3, 2, 49));
  const ProblemPlan plan = make_plan(PortalFunc::gaussian(1.2), data, PortalOp::SUM);
  const std::string source = emit_cpp_source(plan);
  EXPECT_NE(source.find("extern \"C\" void portal_fused_batch"), std::string::npos);
  EXPECT_NE(source.find("extern \"C\" void portal_fused_values"), std::string::npos);
  // Dimension-unrolled over the tile: the leaf dim is a compile-time constant.
  EXPECT_NE(source.find("constexpr long kDim = 3;"), std::string::npos);

  auto module = JitModule::compile(plan);
  ASSERT_NE(module, nullptr);
  EXPECT_NE(module->fused_batch_fn(), nullptr);
  EXPECT_NE(module->fused_values_fn(), nullptr);
}

// --- the ArtifactCache wall -------------------------------------------------

TEST(ArtifactCache, KeyVariesWithEveryInput) {
  const std::uint64_t base = artifact_cache_key(1, 2, "g++ -O3", 3);
  EXPECT_NE(base, artifact_cache_key(9, 2, "g++ -O3", 3)) << "fingerprint";
  EXPECT_NE(base, artifact_cache_key(1, 9, "g++ -O3", 3)) << "source hash";
  EXPECT_NE(base, artifact_cache_key(1, 2, "clang++ -O3", 3)) << "compiler";
  EXPECT_NE(base, artifact_cache_key(1, 2, "g++ -O3", 4)) << "emitter version";
  EXPECT_EQ(base, artifact_cache_key(1, 2, "g++ -O3", 3)) << "determinism";
}

TEST(ArtifactCache, HitAcrossHandlesWarmStartsWithZeroCompiles) {
  TempDir dir;
  Storage data(make_gaussian_mixture(50, 3, 2, 50));
  const ProblemPlan plan = make_plan(PortalFunc::gaussian(1.5), data, PortalOp::SUM);

  obs::set_enabled(true);
  obs::reset();

  real_t a[3] = {0.25, -1.5, 2.0}, b[3] = {1.0, 0.5, -0.75};
  std::vector<real_t> scratch(16);
  real_t cold_value = 0;
  {
    ArtifactCache cache = make_cache(dir.path);
    auto module = JitModule::compile(plan, &cache);
    ASSERT_NE(module, nullptr);
    EXPECT_FALSE(module->from_cache());
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().publishes, 1u);
    EXPECT_EQ(cache.size(), 1u);
    cold_value = module->kernel_fn()(a, b, 3, scratch.data());
  }
  EXPECT_EQ(obs::collect().counter("jit/artifact/compiles"), 1u);

  // A second handle over the same directory models a restarted process: the
  // module comes off disk, the compiler is never invoked, and the machine
  // code is the same bytes -- so the kernel value is bitwise identical.
  obs::reset();
  {
    ArtifactCache cache = make_cache(dir.path);
    auto module = JitModule::compile(plan, &cache);
    ASSERT_NE(module, nullptr);
    EXPECT_TRUE(module->from_cache());
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 0u);
    const real_t warm_value = module->kernel_fn()(a, b, 3, scratch.data());
    EXPECT_EQ(cold_value, warm_value);
  }
  const obs::TraceReport report = obs::collect();
  EXPECT_EQ(report.counter("jit/artifact/compiles"), 0u);
  EXPECT_EQ(report.counter("jit/artifact/hits"), 1u);
  obs::set_enabled(false);
}

TEST(ArtifactCache, TruncatedArtifactIsRejectedAndRecompiled) {
  TempDir dir;
  Storage data(make_gaussian_mixture(40, 3, 2, 51));
  const ProblemPlan plan = make_plan(PortalFunc::EUCLIDEAN, data, PortalOp::SUM);
  {
    ArtifactCache cache = make_cache(dir.path);
    ASSERT_NE(JitModule::compile(plan, &cache), nullptr);
  }
  const std::string so = sole_artifact(dir.path);
  ASSERT_FALSE(so.empty());
  const auto full_size = fs::file_size(so);
  fs::resize_file(so, full_size / 2); // torn download / partial copy

  ArtifactCache cache = make_cache(dir.path);
  auto module = JitModule::compile(plan, &cache);
  ASSERT_NE(module, nullptr);
  EXPECT_FALSE(module->from_cache()) << "a truncated .so must never be dlopen'd";
  EXPECT_EQ(cache.stats().rejects, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().publishes, 1u) << "recompile republishes a clean entry";

  // The republished entry is whole again: a third handle warm-starts.
  ArtifactCache verify = make_cache(dir.path);
  auto warm = JitModule::compile(plan, &verify);
  ASSERT_NE(warm, nullptr);
  EXPECT_TRUE(warm->from_cache());
}

TEST(ArtifactCache, ManifestMismatchIsRejectedAndRecompiled) {
  TempDir dir;
  Storage data(make_gaussian_mixture(40, 3, 2, 52));
  const ProblemPlan plan = make_plan(PortalFunc::MANHATTAN, data, PortalOp::SUM);
  {
    ArtifactCache cache = make_cache(dir.path);
    ASSERT_NE(JitModule::compile(plan, &cache), nullptr);
  }
  std::string manifest;
  for (const auto& entry : fs::directory_iterator(dir.path))
    if (entry.path().extension() == ".manifest") manifest = entry.path().string();
  ASSERT_FALSE(manifest.empty());
  {
    // A stale manifest (say, from an interrupted emitter upgrade): claimed
    // .so hash no longer matches the bytes on disk.
    std::ofstream out(manifest, std::ios::app);
    out << "tampered\n";
  }

  ArtifactCache cache = make_cache(dir.path);
  auto module = JitModule::compile(plan, &cache);
  ASSERT_NE(module, nullptr);
  EXPECT_FALSE(module->from_cache());
  EXPECT_EQ(cache.stats().rejects, 1u);
  EXPECT_EQ(cache.size(), 1u) << "rejected entry replaced by the recompile";
}

TEST(ArtifactCache, PurgeEmptiesTheDirectory) {
  TempDir dir;
  Storage data(make_gaussian_mixture(40, 3, 2, 53));
  ArtifactCache cache = make_cache(dir.path);
  for (double sigma : {0.5, 1.0, 2.0}) {
    const ProblemPlan plan =
        make_plan(PortalFunc::gaussian(sigma), data, PortalOp::SUM);
    ASSERT_NE(JitModule::compile(plan, &cache), nullptr);
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.purge(), 3u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(files_in(dir.path), 0u);
}

TEST(ArtifactCache, EvictionKeepsTheCacheWithinBound) {
  TempDir dir;
  Storage data(make_gaussian_mixture(40, 3, 2, 54));
  ArtifactCache cache = make_cache(dir.path, /*max_entries=*/2);
  for (double sigma : {0.25, 0.5, 1.0, 2.0}) {
    const ProblemPlan plan =
        make_plan(PortalFunc::gaussian(sigma), data, PortalOp::SUM);
    ASSERT_NE(JitModule::compile(plan, &cache), nullptr);
  }
  EXPECT_LE(cache.size(), 2u);
  EXPECT_GE(cache.stats().evictions, 2u);
  for (const ArtifactCache::EntryInfo& entry : cache.list())
    EXPECT_TRUE(entry.valid) << entry.key_hex;
}

TEST(ArtifactCache, ListReportsValidatedEntries) {
  TempDir dir;
  Storage data(make_gaussian_mixture(40, 3, 2, 55));
  ArtifactCache cache = make_cache(dir.path);
  const ProblemPlan plan = make_plan(PortalFunc::CHEBYSHEV, data, PortalOp::SUM);
  ASSERT_NE(JitModule::compile(plan, &cache), nullptr);
  const std::vector<ArtifactCache::EntryInfo> entries = cache.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].valid);
  EXPECT_EQ(entries[0].key_hex.size(), 16u);
  EXPECT_GT(entries[0].so_bytes, 0u);
  EXPECT_EQ(entries[0].compiler, jit_compiler_identity());
}

TEST(ArtifactCache, ConcurrentFirstCompileConvergesOnOneArtifact) {
  TempDir dir;
  Storage data(make_gaussian_mixture(40, 3, 2, 56));
  const ProblemPlan plan = make_plan(PortalFunc::gaussian(0.8), data, PortalOp::SUM);

  ArtifactCache cache = make_cache(dir.path);
  constexpr int kThreads = 6;
  std::vector<std::unique_ptr<JitModule>> modules(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back(
        [&, t] { modules[t] = JitModule::compile(plan, &cache); });
  for (std::thread& thread : threads) thread.join();

  real_t a[3] = {0.5, -0.25, 1.5}, b[3] = {-1.0, 2.0, 0.125};
  std::vector<real_t> scratch(16);
  real_t expected = 0;
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(modules[t], nullptr) << t;
    const real_t value = modules[t]->kernel_fn()(a, b, 3, scratch.data());
    if (t == 0)
      expected = value;
    else
      EXPECT_EQ(value, expected) << t;
  }
  // Racing publishers all rename into the same key: one artifact survives.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(sole_artifact(dir.path).empty());
  const ArtifactCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, static_cast<std::uint64_t>(kThreads));
  EXPECT_GE(stats.misses, 1u);
}

// --- scratch-file hygiene ---------------------------------------------------

TEST(Jit, ScratchDirLeavesNoStrayFiles) {
  Storage data(make_gaussian_mixture(40, 3, 2, 57));
  const ProblemPlan plan = make_plan(PortalFunc::EUCLIDEAN, data, PortalOp::SUM);
  {
    auto module = JitModule::compile(plan, /*cache=*/nullptr);
    ASSERT_NE(module, nullptr);
    // While the module is alive only its .so remains (sources and compiler
    // logs are removed as soon as the compile succeeds).
    EXPECT_EQ(files_in(jit_scratch_dir()), 1u);
  }
  EXPECT_EQ(files_in(jit_scratch_dir()), 0u)
      << "destroyed modules must unlink their scratch .so";
}

TEST(Jit, FailedCompileLeavesNoStrayFiles) {
  Storage data(make_gaussian_mixture(40, 3, 2, 58));
  const ProblemPlan plan = make_plan(PortalFunc::EUCLIDEAN, data, PortalOp::SUM);

  // Touch the lazily created statics (scratch dir, compiler identity) while
  // the real compiler is still configured, then break $CXX for one compile.
  ASSERT_NE(JitModule::compile(plan, nullptr), nullptr);
  const char* old_cxx = std::getenv("CXX");
  const std::string saved = old_cxx != nullptr ? old_cxx : "";
  setenv("CXX", "/nonexistent/portal-no-such-compiler", 1);
  EXPECT_THROW(JitModule::compile(plan, nullptr), std::runtime_error);
  if (old_cxx != nullptr)
    setenv("CXX", saved.c_str(), 1);
  else
    unsetenv("CXX");

  EXPECT_EQ(files_in(jit_scratch_dir()), 0u)
      << "a failed compile must remove its source, log, and partial .so";
}

} // namespace
} // namespace portal
