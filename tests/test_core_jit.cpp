// Tests for the source JIT backend: C++ emission, compilation through the
// system compiler, and agreement with the VM on the same optimized IR.
#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.h"
#include "core/codegen/jit.h"
#include "core/codegen/vm.h"
#include "core/portal.h"
#include "data/generators.h"
#include "util/rng.h"

namespace portal {
namespace {

ProblemPlan make_plan(const PortalFunc& func, const Storage& data,
                      PortalOp inner_op = PortalOp::ARGMIN) {
  std::vector<LayerSpec> layers(2);
  layers[0].op = OpSpec(PortalOp::FORALL);
  layers[0].storage = data;
  layers[1].op = OpSpec(inner_op);
  layers[1].storage = data;
  layers[1].func = func;
  return analyze_layers(layers, PortalConfig{});
}

TEST(Jit, CompilerIsAvailable) {
  // This environment ships g++; the JIT must detect it.
  EXPECT_TRUE(jit_available());
}

TEST(Jit, EmitsCompilableSource) {
  Storage data(make_gaussian_mixture(50, 3, 2, 41));
  const ProblemPlan plan = make_plan(PortalFunc::EUCLIDEAN, data);
  const std::string source = emit_cpp_source(plan);
  EXPECT_NE(source.find("extern \"C\" double portal_kernel"), std::string::npos);
  EXPECT_NE(source.find("extern \"C\" double portal_envelope"), std::string::npos);
  EXPECT_NE(source.find("for (long d = 0; d < dim; ++d)"), std::string::npos);
}

TEST(Jit, KernelMatchesVm) {
  Storage data(make_gaussian_mixture(50, 4, 2, 42));
  for (const PortalFunc& func :
       {PortalFunc::EUCLIDEAN, PortalFunc::SQREUCDIST, PortalFunc::MANHATTAN,
        PortalFunc::CHEBYSHEV, PortalFunc::gaussian(1.5)}) {
    const ProblemPlan plan = make_plan(func, data, PortalOp::SUM);
    auto module = JitModule::compile(plan);
    ASSERT_NE(module, nullptr) << func.name();
    const EvaluatorFns jit = module->evaluators();
    const VmProgram vm = VmProgram::compile(plan.kernel.kernel_ir);

    Rng rng(43);
    std::vector<real_t> scratch(16);
    for (int trial = 0; trial < 50; ++trial) {
      real_t a[4], b[4];
      for (int d = 0; d < 4; ++d) {
        a[d] = rng.uniform(-5, 5);
        b[d] = rng.uniform(-5, 5);
      }
      EXPECT_NEAR(jit.kernel_pair(a, b, 4, scratch.data()),
                  vm.run_pair(a, b, 4, scratch.data()), 1e-12)
          << func.name();
    }
    if (plan.kernel.normalized) {
      const VmProgram env_vm = VmProgram::compile(plan.kernel.envelope_ir);
      for (real_t d : {0.0, 0.5, 1.0, 4.0, 25.0})
        EXPECT_NEAR(jit.envelope(d), env_vm.run_envelope(d), 1e-12);
    }
  }
}

TEST(Jit, MahalanobisKernelMatchesVm) {
  Storage data(make_gaussian_mixture(60, 3, 2, 44));
  const ProblemPlan plan = make_plan(PortalFunc::MAHALANOBIS, data, PortalOp::SUM);
  auto module = JitModule::compile(plan);
  ASSERT_NE(module, nullptr);
  const EvaluatorFns jit = module->evaluators();
  const VmProgram vm = VmProgram::compile(plan.kernel.kernel_ir);

  Rng rng(45);
  std::vector<real_t> scratch(16);
  for (int trial = 0; trial < 50; ++trial) {
    real_t a[3], b[3];
    for (int d = 0; d < 3; ++d) {
      a[d] = rng.uniform(-3, 3);
      b[d] = rng.uniform(-3, 3);
    }
    EXPECT_NEAR(jit.kernel_pair(a, b, 3, scratch.data()),
                vm.run_pair(a, b, 3, scratch.data()), 1e-9);
  }
}

TEST(Jit, ExternalKernelsReportUnserializable) {
  Storage data(make_gaussian_mixture(30, 2, 2, 46));
  std::vector<LayerSpec> layers(2);
  layers[0].op = OpSpec(PortalOp::FORALL);
  layers[0].storage = data;
  layers[1].op = OpSpec(PortalOp::ARGMIN);
  layers[1].storage = data;
  layers[1].external = [](const real_t*, const real_t*, index_t) {
    return real_t(0);
  };
  const ProblemPlan plan = analyze_layers(layers, PortalConfig{});
  EXPECT_EQ(JitModule::compile(plan), nullptr);
  EXPECT_THROW(emit_cpp_source(plan), std::runtime_error);
}

TEST(Jit, EndToEndKnnThroughJitEngine) {
  Storage query(make_gaussian_mixture(60, 3, 2, 47));
  Storage reference(make_gaussian_mixture(120, 3, 2, 48));

  PortalConfig config;
  config.parallel = false;

  Storage pattern_out, jit_out;
  {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, query);
    expr.addLayer({PortalOp::KARGMIN, 3}, reference, PortalFunc::EUCLIDEAN);
    config.engine = Engine::Pattern;
    expr.execute(config);
    pattern_out = expr.getOutput();
  }
  {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, query);
    expr.addLayer({PortalOp::KARGMIN, 3}, reference, PortalFunc::EUCLIDEAN);
    config.engine = Engine::JIT;
    expr.execute(config);
    EXPECT_EQ(expr.artifacts().chosen_engine, "jit");
    jit_out = expr.getOutput();
  }
  for (index_t i = 0; i < pattern_out.rows(); ++i)
    for (index_t j = 0; j < 3; ++j)
      EXPECT_NEAR(pattern_out.value(i, j), jit_out.value(i, j), 1e-9);
}

} // namespace
} // namespace portal
