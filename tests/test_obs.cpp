// Unit tests for the observability layer (src/obs): counters, scoped timers,
// report aggregation, Chrome trace export, and the disabled-mode contract.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/portal.h"
#include "data/generators.h"
#include "tree/kdtree.h"

using namespace portal;

namespace {

/// Every test owns the global trace state: start clean, leave disabled.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset();
  }
};

TEST_F(ObsTest, DisabledByDefaultRecordsNothing) {
  ASSERT_FALSE(obs::enabled());
  PORTAL_OBS_COUNT("test/disabled_counter", 5);
  { PORTAL_OBS_SCOPE(scope, "test/disabled_timer"); }
  const obs::TraceReport report = obs::collect();
  EXPECT_EQ(report.counter("test/disabled_counter"), 0u);
  EXPECT_EQ(report.timer_count("test/disabled_timer"), 0u);
}

TEST_F(ObsTest, CountersAccumulate) {
  obs::set_enabled(true);
  PORTAL_OBS_COUNT("test/counter_a", 3);
  PORTAL_OBS_COUNT("test/counter_a", 4);
  PORTAL_OBS_COUNT("test/counter_b", 1);
  const obs::TraceReport report = obs::collect();
  EXPECT_EQ(report.counter("test/counter_a"), 7u);
  EXPECT_EQ(report.counter("test/counter_b"), 1u);
  EXPECT_EQ(report.counter("test/absent"), 0u); // absent name -> 0
}

TEST_F(ObsTest, ScopedTimerRecordsSpans) {
  obs::set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    PORTAL_OBS_SCOPE(scope, "test/span");
  }
  const obs::TraceReport report = obs::collect();
  EXPECT_EQ(report.timer_count("test/span"), 3u);
  EXPECT_GE(report.timer_seconds("test/span"), 0.0);
  // Each span contributes one Chrome 'X' event.
  int spans = 0;
  for (const obs::TraceEvent& e : report.events)
    if (e.name == "test/span" && e.phase == 'X') ++spans;
  EXPECT_EQ(spans, 3);
}

TEST_F(ObsTest, StopIsIdempotent) {
  obs::set_enabled(true);
  {
    PORTAL_OBS_SCOPE(scope, "test/stop_once");
    scope.stop();
    scope.stop(); // second stop must not double-record
  }                // destructor must not record a third time
  const obs::TraceReport report = obs::collect();
  EXPECT_EQ(report.timer_count("test/stop_once"), 1u);
}

TEST_F(ObsTest, ResetClearsEverything) {
  obs::set_enabled(true);
  PORTAL_OBS_COUNT("test/reset_counter", 9);
  { PORTAL_OBS_SCOPE(scope, "test/reset_timer"); }
  obs::reset();
  const obs::TraceReport report = obs::collect();
  EXPECT_EQ(report.counter("test/reset_counter"), 0u);
  EXPECT_EQ(report.timer_count("test/reset_timer"), 0u);
  EXPECT_TRUE(report.events.empty());
}

TEST_F(ObsTest, InstantEventsAppearInReport) {
  obs::set_enabled(true);
  obs::instant_event("test/instant");
  const obs::TraceReport report = obs::collect();
  bool found = false;
  for (const obs::TraceEvent& e : report.events)
    if (e.name == "test/instant" && e.phase == 'i') found = true;
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, CountersFromManyThreadsSumExactly) {
  obs::set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i)
        PORTAL_OBS_COUNT("test/mt_counter", 1);
    });
  for (std::thread& t : threads) t.join();
  const obs::TraceReport report = obs::collect();
  EXPECT_EQ(report.counter("test/mt_counter"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsTest, HumanTableListsNamesAndValues) {
  obs::set_enabled(true);
  PORTAL_OBS_COUNT("test/table_counter", 42);
  { PORTAL_OBS_SCOPE(scope, "test/table_timer"); }
  const std::string table = obs::collect().human_table();
  EXPECT_NE(table.find("test/table_counter"), std::string::npos);
  EXPECT_NE(table.find("42"), std::string::npos);
  EXPECT_NE(table.find("test/table_timer"), std::string::npos);
}

TEST_F(ObsTest, ChromeJsonIsWellFormed) {
  obs::set_enabled(true);
  PORTAL_OBS_COUNT("test/json_counter", 2);
  { PORTAL_OBS_SCOPE(scope, "test/json \"quoted\"\ttimer"); }
  obs::instant_event("test/json_instant");
  const std::string json = obs::collect().chrome_json();
  // Structural sanity without a JSON parser: the envelope, the escaped name,
  // and balanced braces.
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_EQ(json.rfind("]}"), json.size() - 2);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  long depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(ObsTest, WriteChromeTraceProducesFile) {
  obs::set_enabled(true);
  { PORTAL_OBS_SCOPE(scope, "test/file_timer"); }
  const std::string path = ::testing::TempDir() + "portal_obs_trace.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("test/file_timer"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTest, MetricOverflowClampsInsteadOfFailing) {
  obs::set_enabled(true);
  // Force far past kMaxMetrics distinct names; every call must stay safe and
  // the surplus lands in the shared overflow slot.
  for (int i = 0; i < static_cast<int>(obs::kMaxMetrics) + 64; ++i) {
    const std::string name = "test/overflow_" + std::to_string(i);
    obs::counter_add(obs::intern_counter(name.c_str()), 1);
  }
  const obs::TraceReport report = obs::collect();
  EXPECT_GE(report.counter("obs/overflow"), 64u);
  std::uint64_t total = 0;
  for (const obs::CounterStat& c : report.counters) total += c.value;
  EXPECT_EQ(total, static_cast<std::uint64_t>(obs::kMaxMetrics) + 64);
}

TEST_F(ObsTest, TreeBuildEmitsPhaseTimers) {
  obs::set_enabled(true);
  const Dataset data = make_gaussian_mixture(2000, 3, 4, 7);
  { KdTree tree(data, 32); }
  const obs::TraceReport report = obs::collect();
  EXPECT_EQ(report.counter("tree/kd/builds"), 1u);
  EXPECT_EQ(report.counter("tree/kd/points"), 2000u);
  EXPECT_EQ(report.timer_count("tree/kd/build"), 1u);
  EXPECT_GE(report.timer_count("tree/kd/partition"), 1u);
  EXPECT_GE(report.timer_count("tree/kd/materialize"), 1u);
  // Phases nest inside the build span.
  EXPECT_LE(report.timer_seconds("tree/kd/partition"),
            report.timer_seconds("tree/kd/build"));
}

TEST_F(ObsTest, FullPipelineRunCoversCompileAndTraversal) {
  obs::set_enabled(true);
  Storage data(make_gaussian_mixture(1500, 3, 4, 11));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  // Gaussian KDE: the envelope runs through the VM interpreter in base cases
  // (a pure-distance kernel like KARGMIN+EUCLIDEAN would bypass the VM via
  // the identity-envelope fast path and record zero kernel evals).
  expr.addLayer(PortalOp::SUM, data, PortalFunc::gaussian(0.5));
  PortalConfig config;
  config.engine = Engine::VM;
  expr.execute(config);
  const obs::TraceReport report = obs::collect();
  EXPECT_GE(report.timer_count("compile/passes"), 1u);
  EXPECT_GE(report.timer_count("execute/total"), 1u);
  EXPECT_GE(report.timer_count("executor/traversal"), 1u);
  EXPECT_GT(report.counter("traversal/pairs_visited"), 0u);
  EXPECT_GT(report.counter("vm/kernel_evals"), 0u);
  bool engine_event = false;
  for (const obs::TraceEvent& e : report.events)
    if (e.name == "engine/vm" && e.phase == 'i') engine_event = true;
  EXPECT_TRUE(engine_event);
}

} // namespace
