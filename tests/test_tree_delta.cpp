// Tests for the incremental-ingestion data plane (tree/delta.h,
// serve/live.h): DeltaTree slot/tombstone visibility at pinned watermarks,
// LiveView point-set semantics, the SnapshotSlot monotone-publish
// assertions (publish_with epoch grants, stale-snapshot rejection), and the
// LiveStore lifecycle edge cases the merge design pins -- remove-then-
// reinsert, main-tree tombstones, delta overflow forcing a synchronous
// merge, empty-delta no-op merges, all-dead compaction, pinned views
// surviving a merge bitwise, and epoch monotonicity across racing merges.
// The whole file runs in the TSan and ASan CI jobs (ctest -R
// 'TreeDelta|LiveStore').
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "serve/engine.h"
#include "serve/live.h"
#include "serve/plan_cache.h"
#include "tree/delta.h"
#include "tree/snapshot.h"

namespace portal {
namespace {

using serve::EngineOptions;
using serve::IngestResult;
using serve::IngestStatus;
using serve::LiveStore;
using serve::LiveStoreOptions;
using serve::PlanCache;
using serve::PlanHandle;
using serve::QueryResult;
using serve::run_query;
using serve::run_query_bruteforce;
using serve::Workspace;

LayerSpec chain(OpSpec op, PortalFunc func) {
  LayerSpec inner;
  inner.op = op;
  inner.func = func;
  return inner;
}

PlanHandle compile(const LayerSpec& spec, const Dataset& reference) {
  PortalConfig config;
  config.tau = 0;
  PlanCache cache;
  return cache.get_or_compile(spec, reference, config);
}

std::vector<real_t> point_of(const Dataset& data, index_t i) {
  std::vector<real_t> pt(data.dim());
  for (index_t d = 0; d < data.dim(); ++d) pt[d] = data.coord(i, d);
  return pt;
}

/// Values bitwise (NaN-aware), ids exactly.
void expect_bitwise(const QueryResult& got, const QueryResult& want) {
  ASSERT_EQ(got.values.size(), want.values.size());
  for (std::size_t i = 0; i < want.values.size(); ++i) {
    if (std::isnan(want.values[i])) {
      EXPECT_TRUE(std::isnan(got.values[i])) << "slot " << i;
    } else {
      EXPECT_EQ(got.values[i], want.values[i]) << "slot " << i;
    }
  }
  ASSERT_EQ(got.ids.size(), want.ids.size());
  for (std::size_t i = 0; i < want.ids.size(); ++i)
    EXPECT_EQ(got.ids[i], want.ids[i]) << "slot " << i;
}

// ---------------------------------------------------------------------------
// DeltaTree
// ---------------------------------------------------------------------------

TEST(TreeDelta, CtorValidatesShape) {
  EXPECT_THROW(DeltaTree(0, 8, 10), std::invalid_argument);
  EXPECT_THROW(DeltaTree(3, 0, 10), std::invalid_argument);
  DeltaTree delta(3, 8, 0); // empty main side is fine (pre-publish shape)
  EXPECT_EQ(delta.capacity(), 8);
  EXPECT_EQ(delta.main_size(), 0);
}

TEST(TreeDelta, AppendStoresPointsSeqsAndLog) {
  DeltaTree delta(2, 3, 10);
  const real_t a[] = {1.0, 2.0};
  const real_t b[] = {3.0, 4.0};
  EXPECT_EQ(delta.append(a, 1), 0);
  EXPECT_EQ(delta.append(b, 2), 1);
  EXPECT_EQ(delta.count(), 2);
  EXPECT_EQ(delta.points().coord(0, 1), 2.0);
  EXPECT_EQ(delta.points().coord(1, 0), 3.0);
  EXPECT_EQ(delta.insert_seq(0), 1u);
  EXPECT_EQ(delta.insert_seq(1), 2u);
  ASSERT_EQ(delta.log().size(), 2u);
  EXPECT_EQ(delta.log()[1].kind, DeltaTree::MutationKind::Insert);
  EXPECT_EQ(delta.log()[1].index, 1);
  EXPECT_EQ(delta.log()[1].seq, 2u);

  // Bounded: the third slot fills the store, the fourth append reports full.
  EXPECT_EQ(delta.append(a, 3), 2);
  EXPECT_EQ(delta.append(b, 4), -1);
  EXPECT_EQ(delta.count(), 3);
}

TEST(TreeDelta, SlotTombstoneVisibilityByWatermark) {
  DeltaTree delta(1, 4, 0);
  const real_t p[] = {7.0};
  delta.append(p, 1);
  delta.append(p, 2);
  delta.kill_slot(0, 5);

  // kill seq 0 = alive at every watermark.
  EXPECT_FALSE(delta.slot_dead(1, 1));
  EXPECT_FALSE(delta.slot_dead(1, 100));
  // Killed at 5: alive to views pinned strictly before, dead at and after.
  EXPECT_FALSE(delta.slot_dead(0, 4));
  EXPECT_TRUE(delta.slot_dead(0, 5));
  EXPECT_TRUE(delta.slot_dead(0, 6));
  ASSERT_EQ(delta.log().size(), 3u);
  EXPECT_EQ(delta.log()[2].kind, DeltaTree::MutationKind::RemoveDelta);
}

TEST(TreeDelta, MainTombstonesAndWholesaleCopy) {
  DeltaTree delta(2, 4, 6);
  EXPECT_EQ(delta.main_kill_count(), 0u);
  delta.kill_main(3, 2);
  delta.kill_main(5, 7);
  EXPECT_EQ(delta.main_kill_count(), 2u);
  EXPECT_TRUE(delta.main_dead(3, 2));
  EXPECT_FALSE(delta.main_dead(3, 1));
  EXPECT_FALSE(delta.main_dead(5, 6));
  EXPECT_TRUE(delta.main_dead(5, 7));
  EXPECT_FALSE(delta.main_dead(0, 100));

  // Compaction carry-over: same main tree, kill state copied verbatim with
  // seqs preserved (watermark semantics must not shift), nothing re-logged.
  DeltaTree fresh(2, 4, 6);
  fresh.copy_main_kills(delta);
  EXPECT_EQ(fresh.main_kill_count(), 2u);
  EXPECT_FALSE(fresh.main_dead(3, 1));
  EXPECT_TRUE(fresh.main_dead(3, 2));
  EXPECT_TRUE(fresh.main_dead(5, 7));
  EXPECT_TRUE(fresh.log().empty());
}

TEST(TreeDelta, RemoveThenReinsertIsAFreshSlot) {
  // Re-inserting removed coordinates never resurrects the old slot: each
  // watermark sees exactly the incarnations alive at its pin time.
  DeltaTree delta(2, 4, 0);
  const real_t p[] = {1.5, -2.5};
  const index_t first = delta.append(p, 1);
  delta.kill_slot(first, 2);
  const index_t second = delta.append(p, 3);
  ASSERT_NE(first, second);

  EXPECT_FALSE(delta.slot_dead(first, 1)); // view at 1: first alive
  EXPECT_TRUE(delta.slot_dead(first, 2));  // view at 2: gone
  EXPECT_TRUE(delta.slot_dead(first, 3));  // view at 3: first gone...
  EXPECT_FALSE(delta.slot_dead(second, 3)); // ...second alive
  EXPECT_EQ(delta.insert_seq(second), 3u);
}

TEST(TreeDelta, LiveViewNamesTheExactPointSet) {
  const auto source =
      std::make_shared<const Dataset>(make_uniform(20, 2, 77));
  const auto snap = TreeSnapshot::build(source, 1, {});
  auto delta = std::make_shared<DeltaTree>(2, 8, snap->size());
  const real_t p[] = {0.5, 0.5};
  delta->append(p, 1);
  delta->append(p, 2);
  delta->append(p, 3);
  delta->kill_slot(1, 4);
  delta->kill_main(0, 5);

  LiveView view;
  view.snapshot = snap;
  view.delta = delta;
  view.watermark = 4;  // pinned before the main kill
  view.delta_count = 2; // pinned before the third append
  view.filter_main = true;
  EXPECT_EQ(view.epoch(), 1u);
  EXPECT_TRUE(view.slot_visible(0));
  EXPECT_FALSE(view.slot_visible(1)); // killed at 4 <= watermark
  EXPECT_FALSE(view.slot_visible(2)); // beyond the pinned count
  EXPECT_TRUE(view.main_visible(0));  // killed at 5 > watermark
  EXPECT_EQ(view.live_size(), 20 + 1);

  view.watermark = 5;
  EXPECT_FALSE(view.main_visible(0));
  EXPECT_EQ(view.live_size(), 19 + 1);
}

// ---------------------------------------------------------------------------
// SnapshotSlot monotone-publish assertions (the latent seed bug: the epoch
// docs promised monotone observation but nothing enforced it -- a stale
// snapshot handed back through a builder used to be silently served).
// ---------------------------------------------------------------------------

TEST(SnapshotMonotone, PublishWithGrantsSequentialEpochs) {
  SnapshotSlot slot;
  SnapshotOptions options;
  const auto data = std::make_shared<const Dataset>(make_uniform(30, 2, 1));
  const auto first = slot.publish_with([&](std::uint64_t epoch) {
    EXPECT_EQ(epoch, 1u);
    return TreeSnapshot::build(data, epoch, options);
  });
  ASSERT_TRUE(first);
  EXPECT_EQ(first->epoch(), 1u);
  const auto second = slot.publish_with([&](std::uint64_t epoch) {
    EXPECT_EQ(epoch, 2u);
    return TreeSnapshot::build(data, epoch, options);
  });
  EXPECT_EQ(second->epoch(), 2u);
  EXPECT_EQ(slot.load().get(), second.get());
}

TEST(SnapshotMonotone, PublishWithRejectsStaleOrNullSnapshots) {
  SnapshotSlot slot;
  SnapshotOptions options;
  const auto data = std::make_shared<const Dataset>(make_uniform(30, 2, 2));
  const auto current = slot.publish(data, options);
  ASSERT_EQ(current->epoch(), 1u);

  // A builder that ignores its epoch grant and hands back the snapshot it
  // cached earlier (the TreeCache-style bug) must be rejected, not served.
  EXPECT_THROW(slot.publish_with([&](std::uint64_t) { return current; }),
               std::logic_error);
  EXPECT_THROW(slot.publish_with(
                   [](std::uint64_t) {
                     return std::shared_ptr<const TreeSnapshot>();
                   }),
               std::logic_error);
  // A snapshot stamped with a made-up epoch differing from the grant is
  // rejected even when it would move forward.
  EXPECT_THROW(slot.publish_with([&](std::uint64_t epoch) {
                 return TreeSnapshot::build(data, epoch + 7, options);
               }),
               std::logic_error);

  // Nothing was installed: readers still see epoch 1 and loads stay legal.
  EXPECT_EQ(slot.load().get(), current.get());
  EXPECT_EQ(slot.current_epoch(), 1u);

  // And the slot recovers: the next well-behaved publish lands the epoch
  // after the failed grants (grants are consumed, never reissued).
  const auto next = slot.publish_with([&](std::uint64_t epoch) {
    return TreeSnapshot::build(data, epoch, options);
  });
  EXPECT_GT(next->epoch(), 1u);
  EXPECT_EQ(slot.load().get(), next.get());
}

TEST(SnapshotMonotone, ConcurrentReadersObserveMonotoneEpochs) {
  SnapshotSlot slot;
  SnapshotOptions options;
  const auto data = std::make_shared<const Dataset>(make_uniform(64, 2, 3));
  slot.publish(data, options);

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::uint64_t last = 0;
      while (!done.load(std::memory_order_acquire)) {
        // load() itself throws if the slot would serve a retired epoch;
        // per-reader monotonicity is re-checked here on top.
        const auto snap = slot.load();
        if (snap->epoch() < last) violations.fetch_add(1);
        last = snap->epoch();
      }
    });
  }
  for (int e = 0; e < 24; ++e) slot.publish(data, options);
  done.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(slot.current_epoch(), 25u);
}

// ---------------------------------------------------------------------------
// LiveStore lifecycle
// ---------------------------------------------------------------------------

LiveStoreOptions small_store(index_t capacity, index_t threshold,
                             bool background) {
  LiveStoreOptions options;
  options.delta_capacity = capacity;
  options.merge_threshold = threshold;
  options.background_merge = background;
  return options;
}

TEST(LiveStore, RejectsBeforePublishAndOnDimMismatch) {
  LiveStore store(small_store(8, 8, false));
  const real_t p[] = {1.0, 2.0};
  EXPECT_EQ(store.insert(p, 2).status, IngestStatus::Rejected);
  EXPECT_EQ(store.remove(p, 2).status, IngestStatus::Rejected);
  EXPECT_EQ(store.pin(), nullptr);

  store.publish(std::make_shared<const Dataset>(make_uniform(16, 3, 4)));
  EXPECT_EQ(store.insert(p, 2).status, IngestStatus::Rejected);
  const real_t q[] = {1.0, 2.0, 3.0};
  EXPECT_EQ(store.insert(q, 3).status, IngestStatus::Ok);
}

TEST(LiveStore, InsertsAreVisibleAndBitwiseAgainstTheLiveOracle) {
  const Dataset reference = make_uniform(64, 3, 5);
  LiveStore store(small_store(32, 32, false));
  store.publish(std::make_shared<const Dataset>(reference));
  EXPECT_EQ(store.current_epoch(), 1u);

  const Dataset extra = make_uniform(5, 3, 55);
  for (index_t i = 0; i < extra.size(); ++i) {
    const auto pt = point_of(extra, i);
    const IngestResult r = store.insert(pt.data(), 3);
    ASSERT_EQ(r.status, IngestStatus::Ok);
    EXPECT_EQ(r.seq, static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(r.id, 64 + i); // client id = main_size + slot
  }

  const auto view = store.pin();
  ASSERT_TRUE(view);
  EXPECT_EQ(view->watermark, 5u);
  EXPECT_EQ(view->live_size(), 69);

  const auto knn = compile(chain({PortalOp::KARGMIN, 4}, PortalFunc::EUCLIDEAN),
                           reference);
  const auto kde = compile(chain(PortalOp::SUM, PortalFunc::gaussian(0.7)),
                           reference);
  Workspace ws;
  EngineOptions eopt;
  for (index_t i = 0; i < extra.size(); ++i) {
    const auto pt = point_of(extra, i);
    const QueryResult got_knn = run_query(*knn, *view, pt.data(), eopt, ws);
    expect_bitwise(got_knn, run_query_bruteforce(*knn, *view, pt.data()));
    // The query point itself was inserted: its own delta id must win slot 0
    // at distance exactly zero.
    EXPECT_EQ(got_knn.ids[0], 64 + i);
    EXPECT_EQ(got_knn.values[0], 0.0);
    const QueryResult got_kde = run_query(*kde, *view, pt.data(), eopt, ws);
    expect_bitwise(got_kde, run_query_bruteforce(*kde, *view, pt.data()));
  }
}

TEST(LiveStore, RemoveTombstonesMainPointsExactly) {
  const Dataset reference = make_uniform(48, 2, 6);
  LiveStore store(small_store(16, 16, false));
  store.publish(std::make_shared<const Dataset>(reference));

  const auto target = point_of(reference, 7);
  ASSERT_EQ(store.remove(target.data(), 2).status, IngestStatus::Ok);
  EXPECT_EQ(store.pin()->live_size(), 47);

  // The tombstoned point is invisible to queries: a nearest-neighbour probe
  // at its exact coordinates no longer finds distance zero / its id.
  const auto nn = compile(chain(PortalOp::ARGMIN, PortalFunc::EUCLIDEAN),
                          reference);
  Workspace ws;
  const auto view = store.pin();
  const QueryResult got =
      run_query(*nn, *view, target.data(), EngineOptions{}, ws);
  expect_bitwise(got, run_query_bruteforce(*nn, *view, target.data()));
  EXPECT_NE(got.ids[0], 7);

  // Removing it again: nothing visible matches anymore.
  EXPECT_EQ(store.remove(target.data(), 2).status, IngestStatus::NotFound);
  const real_t nowhere[] = {1e9, -1e9};
  EXPECT_EQ(store.remove(nowhere, 2).status, IngestStatus::NotFound);
  const auto stats = store.stats();
  EXPECT_EQ(stats.removes, 1u);
  EXPECT_EQ(stats.remove_misses, 2u);
}

TEST(LiveStore, RemoveTakesTheNewestIncarnationFirst) {
  const Dataset reference = make_uniform(16, 2, 8);
  LiveStore store(small_store(16, 16, false));
  store.publish(std::make_shared<const Dataset>(reference));

  const real_t p[] = {0.25, 0.75};
  ASSERT_EQ(store.insert(p, 2).status, IngestStatus::Ok); // slot 0
  ASSERT_EQ(store.remove(p, 2).status, IngestStatus::Ok); // kills slot 0
  ASSERT_EQ(store.insert(p, 2).status, IngestStatus::Ok); // fresh slot 1
  EXPECT_EQ(store.pin()->live_size(), 17);

  // One more remove takes out the reinserted copy, not a double-kill.
  ASSERT_EQ(store.remove(p, 2).status, IngestStatus::Ok);
  EXPECT_EQ(store.pin()->live_size(), 16);
  EXPECT_EQ(store.remove(p, 2).status, IngestStatus::NotFound);
}

TEST(LiveStore, OverflowRunsASynchronousMergeInline) {
  const Dataset reference = make_uniform(40, 3, 9);
  LiveStore store(small_store(8, 8, /*background=*/false));
  store.publish(std::make_shared<const Dataset>(reference));

  // 20 inserts through an 8-slot delta: every overflow must merge inline
  // (new epoch, drained delta) and then succeed -- never a rejection.
  const Dataset extra = make_uniform(20, 3, 99);
  for (index_t i = 0; i < extra.size(); ++i) {
    const auto pt = point_of(extra, i);
    ASSERT_EQ(store.insert(pt.data(), 3).status, IngestStatus::Ok) << i;
  }
  const auto stats = store.stats();
  EXPECT_GE(stats.merges, 2u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GT(stats.epoch, 1u);
  EXPECT_EQ(store.pin()->live_size(), 60);

  // Post-merge queries still match the oracle bitwise on the merged set.
  const auto knn = compile(chain({PortalOp::KARGMIN, 3}, PortalFunc::EUCLIDEAN),
                           reference);
  Workspace ws;
  const auto view = store.pin();
  for (index_t i = 0; i < 8; ++i) {
    const auto pt = point_of(extra, i);
    expect_bitwise(run_query(*knn, *view, pt.data(), EngineOptions{}, ws),
                   run_query_bruteforce(*knn, *view, pt.data()));
  }
}

TEST(LiveStore, EmptyDeltaMergeIsANoop) {
  LiveStore store(small_store(8, 8, false));
  EXPECT_FALSE(store.merge_now()); // nothing published yet
  store.publish(std::make_shared<const Dataset>(make_uniform(32, 2, 10)));
  const std::uint64_t epoch = store.current_epoch();
  EXPECT_FALSE(store.merge_now());
  EXPECT_EQ(store.current_epoch(), epoch); // no epoch churn
  const auto stats = store.stats();
  EXPECT_EQ(stats.merges, 0u);
  EXPECT_EQ(stats.compactions, 0u);
}

TEST(LiveStore, AllDeadMergeCompactsWithoutAnEpoch) {
  const Dataset reference = make_uniform(4, 2, 11);
  LiveStore store(small_store(8, 8, false));
  store.publish(std::make_shared<const Dataset>(reference));

  // Kill every main point and a full insert+remove delta round-trip: the
  // visible union is empty, so there is nothing to build a tree over.
  for (index_t i = 0; i < reference.size(); ++i) {
    const auto pt = point_of(reference, i);
    ASSERT_EQ(store.remove(pt.data(), 2).status, IngestStatus::Ok);
  }
  const real_t p[] = {5.0, 5.0};
  ASSERT_EQ(store.insert(p, 2).status, IngestStatus::Ok);
  ASSERT_EQ(store.remove(p, 2).status, IngestStatus::Ok);
  ASSERT_EQ(store.pin()->live_size(), 0);

  const std::uint64_t epoch = store.current_epoch();
  EXPECT_TRUE(store.merge_now()); // compaction: delta reclaimed...
  EXPECT_EQ(store.current_epoch(), epoch); // ...same main epoch
  const auto stats = store.stats();
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(stats.merges, 0u);
  EXPECT_EQ(stats.delta_count, 0);
  EXPECT_EQ(store.pin()->live_size(), 0);

  // The store keeps working: a fresh insert is visible and merges normally.
  ASSERT_EQ(store.insert(p, 2).status, IngestStatus::Ok);
  EXPECT_EQ(store.pin()->live_size(), 1);
  EXPECT_TRUE(store.merge_now());
  EXPECT_GT(store.current_epoch(), epoch);
  EXPECT_EQ(store.pin()->live_size(), 1);
}

TEST(LiveStore, PinnedViewsSurviveAMergeBitwise) {
  const Dataset reference = make_uniform(128, 3, 12);
  LiveStore store(small_store(64, 64, false));
  store.publish(std::make_shared<const Dataset>(reference));

  const Dataset extra = make_uniform(16, 3, 13);
  for (index_t i = 0; i < extra.size(); ++i) {
    const auto pt = point_of(extra, i);
    ASSERT_EQ(store.insert(pt.data(), 3).status, IngestStatus::Ok);
  }
  const auto doomed = point_of(reference, 3);
  ASSERT_EQ(store.remove(doomed.data(), 3).status, IngestStatus::Ok);

  const auto pinned = store.pin();
  const auto knn = compile(chain({PortalOp::KARGMIN, 5}, PortalFunc::EUCLIDEAN),
                           reference);
  const auto count =
      compile(chain(PortalOp::SUM, PortalFunc::indicator(0, 0.8)), reference);
  Workspace ws;
  const Dataset probes = make_uniform(8, 3, 14);
  std::vector<QueryResult> before;
  for (index_t i = 0; i < probes.size(); ++i) {
    const auto pt = point_of(probes, i);
    before.push_back(run_query(*knn, *pinned, pt.data(), EngineOptions{}, ws));
    before.push_back(
        run_query(*count, *pinned, pt.data(), EngineOptions{}, ws));
  }

  ASSERT_TRUE(store.merge_now());
  EXPECT_EQ(store.current_epoch(), 2u);
  EXPECT_EQ(store.pin()->live_size(), 128 + 16 - 1);
  EXPECT_EQ(store.stats().delta_count, 0);

  // The pinned pre-merge view still answers its exact old point-set,
  // bit for bit -- the retired generation's visible state is immutable.
  std::size_t b = 0;
  for (index_t i = 0; i < probes.size(); ++i) {
    const auto pt = point_of(probes, i);
    expect_bitwise(run_query(*knn, *pinned, pt.data(), EngineOptions{}, ws),
                   before[b++]);
    expect_bitwise(run_query(*count, *pinned, pt.data(), EngineOptions{}, ws),
                   before[b++]);
  }

  // And the merged epoch answers the same point-set through its new tree:
  // the indicator count (integer-valued, order-free) must agree exactly;
  // the knn distance values are per-point identical computations.
  const auto merged = store.pin();
  b = 0;
  for (index_t i = 0; i < probes.size(); ++i) {
    const auto pt = point_of(probes, i);
    const QueryResult knn_new =
        run_query(*knn, *merged, pt.data(), EngineOptions{}, ws);
    expect_bitwise(knn_new, run_query_bruteforce(*knn, *merged, pt.data()));
    const QueryResult& knn_old = before[b++];
    ASSERT_EQ(knn_new.values.size(), knn_old.values.size());
    for (std::size_t v = 0; v < knn_old.values.size(); ++v)
      EXPECT_EQ(knn_new.values[v], knn_old.values[v]) << "slot " << v;
    const QueryResult count_new =
        run_query(*count, *merged, pt.data(), EngineOptions{}, ws);
    EXPECT_EQ(count_new.values[0], before[b++].values[0]);
  }
}

TEST(LiveStore, MergeTranslatesTombstonesLandedDuringTheMergeWindow) {
  // A removal of a *merged* point that lands after the merge cut must be
  // replayed as a tombstone at the point's new permuted home. Single-
  // threaded proxy: remove a delta-inserted point after it merged into the
  // main tree -- the exact kd descent must find it there and kill it.
  const Dataset reference = make_uniform(32, 2, 15);
  LiveStore store(small_store(8, 8, false));
  store.publish(std::make_shared<const Dataset>(reference));
  const real_t p[] = {0.125, 0.625};
  ASSERT_EQ(store.insert(p, 2).status, IngestStatus::Ok);
  ASSERT_TRUE(store.merge_now());
  EXPECT_EQ(store.pin()->live_size(), 33);

  // Now in the main tree of epoch 2; removing goes through the kd descent.
  ASSERT_EQ(store.remove(p, 2).status, IngestStatus::Ok);
  EXPECT_EQ(store.pin()->live_size(), 32);
  const auto nn =
      compile(chain(PortalOp::MIN, PortalFunc::EUCLIDEAN), reference);
  Workspace ws;
  const auto view = store.pin();
  const QueryResult got = run_query(*nn, *view, p, EngineOptions{}, ws);
  expect_bitwise(got, run_query_bruteforce(*nn, *view, p));
  EXPECT_GT(got.values[0], 0.0); // its exact location is empty again

  // Merging the lone tombstone publishes a 32-point epoch with it gone.
  ASSERT_TRUE(store.merge_now());
  EXPECT_EQ(store.pin()->live_size(), 32);
  EXPECT_EQ(store.pin()->snapshot->size(), 32);
}

TEST(LiveStore, RacingMergesKeepEpochsMonotone) {
  // Two threads hammering merge_now while a writer streams inserts and a
  // reader pins views: merge_mutex_ serializes the merges, the slot's
  // install-time assertions reject any non-monotone publish (they would
  // throw, failing the test), and every pinned view must carry an epoch and
  // watermark no older than the previous pin on that thread.
  const Dataset reference = make_uniform(96, 2, 16);
  LiveStore store(small_store(64, 16, /*background=*/true));
  store.publish(std::make_shared<const Dataset>(reference));

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::thread writer([&] {
    const Dataset stream = make_uniform(400, 2, 17);
    for (index_t i = 0; i < stream.size(); ++i) {
      const auto pt = point_of(stream, i);
      if (store.insert(pt.data(), 2).status != IngestStatus::Ok)
        violations.fetch_add(1);
    }
    done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> mergers;
  for (int t = 0; t < 2; ++t) {
    mergers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) store.merge_now();
    });
  }
  std::thread reader([&] {
    std::uint64_t last_epoch = 0, last_mark = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto view = store.pin();
      if (view->epoch() < last_epoch || view->watermark < last_mark)
        violations.fetch_add(1);
      last_epoch = view->epoch();
      last_mark = view->watermark;
    }
  });
  writer.join();
  reader.join();
  for (std::thread& m : mergers) m.join();
  store.stop();

  EXPECT_EQ(violations.load(), 0);
  // Every insert was admitted; after a final merge the live set is exact.
  store.merge_now();
  EXPECT_EQ(store.pin()->live_size(), 96 + 400);
  EXPECT_EQ(store.stats().watermark, 400u);
}

TEST(LiveStore, PublishReplacesAndDiscardsTheDelta) {
  const Dataset first = make_uniform(24, 2, 18);
  LiveStore store(small_store(8, 8, false));
  store.publish(std::make_shared<const Dataset>(first));
  const real_t p[] = {9.0, 9.0};
  ASSERT_EQ(store.insert(p, 2).status, IngestStatus::Ok);
  ASSERT_EQ(store.pin()->live_size(), 25);

  // Full replace: the pending delta belongs to the retired generation.
  const Dataset second = make_uniform(10, 2, 19);
  store.publish(std::make_shared<const Dataset>(second));
  EXPECT_EQ(store.current_epoch(), 2u);
  EXPECT_EQ(store.pin()->live_size(), 10);
  EXPECT_EQ(store.stats().delta_count, 0);
}

} // namespace
} // namespace portal
