// Tests for kernel density estimation: the approximation error must respect
// the tau-derived bound (Sec. II-C), tau -> 0 must converge to brute force,
// and normalization must turn kernel sums into densities.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "data/generators.h"
#include "obs/trace.h"
#include "problems/kde.h"
#include "util/threading.h"

namespace portal {
namespace {

class KdeSweep
    : public testing::TestWithParam<std::tuple<index_t, index_t, real_t, real_t>> {};

TEST_P(KdeSweep, ApproxErrorWithinTauBound) {
  const auto [n, dim, sigma, tau] = GetParam();
  const Dataset reference = make_gaussian_mixture(n, dim, 3, 300 + n);
  const Dataset query = make_gaussian_mixture(n / 2, dim, 3, 400 + n);

  // Compare unnormalized kernel sums: the per-pair error is bounded by tau,
  // so per-query error is bounded by tau * N.
  const KdeResult brute = kde_bruteforce(query, reference, sigma, false);
  KdeOptions options;
  options.sigma = sigma;
  options.tau = tau;
  options.normalize = false;
  const KdeResult expert = kde_expert(query, reference, options);

  const real_t bound = tau * static_cast<real_t>(reference.size()) + 1e-9;
  for (index_t i = 0; i < query.size(); ++i)
    EXPECT_NEAR(expert.densities[i], brute.densities[i], bound) << "query " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdeSweep,
    testing::Values(std::make_tuple(200, 2, 0.5, 1e-2),
                    std::make_tuple(500, 3, 1.0, 1e-3),
                    std::make_tuple(500, 3, 2.0, 5e-2),
                    std::make_tuple(300, 6, 1.5, 1e-3),
                    std::make_tuple(800, 2, 0.25, 1e-4)));

TEST(Kde, TauZeroIsExact) {
  const Dataset data = make_gaussian_mixture(400, 3, 2, 21);
  const KdeResult brute = kde_bruteforce(data, data, 1.0, false);
  KdeOptions options;
  options.sigma = 1.0;
  options.tau = 0;
  options.normalize = false;
  options.parallel = false;
  const KdeResult expert = kde_expert(data, data, options);
  for (index_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(expert.densities[i], brute.densities[i],
                1e-9 * std::max(real_t(1), brute.densities[i]));
}

TEST(Kde, LargerTauPrunesMore) {
  const Dataset data = make_gaussian_mixture(3000, 3, 5, 22);
  KdeOptions tight;
  tight.sigma = 1.0;
  tight.tau = 1e-6;
  tight.parallel = false;
  KdeOptions loose = tight;
  loose.tau = 1e-1;
  const KdeResult a = kde_expert(data, data, tight);
  const KdeResult b = kde_expert(data, data, loose);
  EXPECT_LT(b.stats.base_cases, a.stats.base_cases);
  EXPECT_GT(b.stats.prunes, 0u);
}

// Prune/approximate correctness, cross-checked against the trace counters:
// the approximated result must stay within the tau-derived bound of the exact
// answer, AND the run must actually have pruned and approximated (otherwise
// the bound is vacuous -- an all-base-case traversal trivially matches brute
// force without exercising the approximation machinery at all).
TEST(Kde, ApproximationIsObservableAndWithinBound) {
  obs::set_enabled(true);
  obs::reset();
  const Dataset data = make_gaussian_mixture(4000, 3, 4, 29);
  const real_t sigma = 0.7;
  const real_t tau = 1e-3;
  KdeOptions options;
  options.sigma = sigma;
  options.tau = tau;
  options.normalize = false;
  const KdeResult expert = kde_expert(data, data, options);
  const obs::TraceReport report = obs::collect();
  obs::set_enabled(false);
  obs::reset();

  const KdeResult brute = kde_bruteforce(data, data, sigma, false);
  const real_t bound = tau * static_cast<real_t>(data.size()) + 1e-9;
  for (index_t i = 0; i < data.size(); ++i)
    ASSERT_NEAR(expert.densities[i], brute.densities[i], bound) << "query " << i;

  // The counters prove the bound was earned, not vacuous.
  EXPECT_GT(report.counter("traversal/prunes"), 0u);
  EXPECT_GT(report.counter("rules/approximations"), 0u);
  EXPECT_GT(report.counter("traversal/pairs_visited"), 0u);
  // Approximation + pruning must have skipped work: strictly fewer base cases
  // than the n^2 node-pair worst case implies the traversal cut branches.
  EXPECT_LT(report.counter("traversal/base_cases"),
            static_cast<std::uint64_t>(data.size()) *
                static_cast<std::uint64_t>(data.size()));
}

TEST(Kde, NormalizationIntegratesToUnitMass) {
  // Densities of a standard normal sample, evaluated at the sample, averaged,
  // approximate the expected density value; sanity-check scale (not exact).
  const Dataset data = make_gaussian_mixture(2000, 1, 1, 23);
  KdeOptions options;
  options.sigma = 0.2;
  options.tau = 0;
  const KdeResult result = kde_expert(data, data, options);
  for (index_t i = 0; i < data.size(); ++i) {
    EXPECT_GT(result.densities[i], 0.0);
    EXPECT_LT(result.densities[i], 5.0); // a pdf value, not a raw kernel sum
  }
}

TEST(Kde, SelfContributionIncluded) {
  // A single faraway point's density is dominated by its self-contribution:
  // unnormalized sum >= K(0) = 1.
  const Dataset data = Dataset::from_points({{0, 0}, {100, 100}});
  const KdeResult result = kde_bruteforce(data, data, 1.0, false);
  EXPECT_GE(result.densities[1], 1.0);
  EXPECT_LT(result.densities[1], 1.0 + 1e-6);
}

TEST(Kde, ParallelMatchesSerial) {
  const Dataset data = make_gaussian_mixture(1200, 3, 4, 24);
  KdeOptions serial;
  serial.sigma = 1.0;
  serial.tau = 1e-3;
  serial.parallel = false;
  KdeOptions parallel = serial;
  parallel.parallel = true;
  parallel.task_depth = 5;
  set_num_threads(4);
  const KdeResult a = kde_expert(data, data, serial);
  const KdeResult b = kde_expert(data, data, parallel);
  // Same approximation decisions (tau identical), so same results modulo
  // floating-point summation order inside leaves (which is also identical;
  // only the outer accumulation order can differ via approximations).
  for (index_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(a.densities[i], b.densities[i],
                1e-9 * std::max(real_t(1), std::abs(a.densities[i])));
}

TEST(Kde, InvalidArgumentsThrow) {
  const Dataset a = make_uniform(10, 2, 25);
  const Dataset b = make_uniform(10, 3, 26);
  KdeOptions options;
  EXPECT_THROW(kde_expert(a, b, options), std::invalid_argument);
  options.sigma = 0;
  EXPECT_THROW(kde_expert(a, a, options), std::invalid_argument);
  EXPECT_THROW(kde_bruteforce(a, Dataset(0, 2), 1.0), std::invalid_argument);
}

} // namespace
} // namespace portal
