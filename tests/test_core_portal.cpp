// End-to-end tests of the Portal DSL + compiler: the paper's programs
// (codes 1 and 3, Table III problems) executed through the full pipeline and
// checked against the expert implementations / brute force.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/portal.h"
#include "data/generators.h"
#include "problems/barneshut.h"
#include "problems/emst.h"
#include "problems/kde.h"
#include "problems/knn.h"
#include "problems/range_search.h"
#include "problems/twopoint.h"

namespace portal {
namespace {

PortalConfig serial_config() {
  PortalConfig config;
  config.parallel = false;
  return config;
}

TEST(Portal, KnnCode1Program) {
  // The paper's 13-line k-NN program (code 1).
  Storage query(make_gaussian_mixture(150, 3, 2, 11));
  Storage reference(make_gaussian_mixture(400, 3, 2, 12));

  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, query);
  expr.addLayer({PortalOp::KARGMIN, 5}, reference, PortalFunc::EUCLIDEAN);
  expr.execute(serial_config());
  Storage output = expr.getOutput();

  ASSERT_EQ(output.rows(), 150);
  ASSERT_EQ(output.cols(), 5);
  EXPECT_TRUE(output.has_indices());
  EXPECT_EQ(expr.artifacts().chosen_engine, "pattern:knn");
  EXPECT_EQ(expr.plan().category, ProblemCategory::Pruning);

  const KnnResult brute = knn_bruteforce(query.dataset(), reference.dataset(), 5);
  for (index_t i = 0; i < output.rows(); ++i)
    for (index_t j = 0; j < 5; ++j)
      EXPECT_NEAR(output.value(i, j), brute.distances[i * 5 + j], 1e-9);
}

TEST(Portal, KnnCode3CustomKernel) {
  // The paper's code 3: user-defined Euclidean distance.
  Storage query(make_gaussian_mixture(100, 4, 2, 13));
  Storage reference(make_gaussian_mixture(200, 4, 2, 14));
  Var q;
  Var r;
  Expr EuclidDist = sqrt(pow(Expr(q) - Expr(r), 2));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, q, query);
  expr.addLayer(PortalOp::ARGMIN, r, reference, EuclidDist);
  expr.execute(serial_config());
  Storage output = expr.getOutput();

  const KnnResult brute = knn_bruteforce(query.dataset(), reference.dataset(), 1);
  for (index_t i = 0; i < output.rows(); ++i) {
    EXPECT_NEAR(output.value(i), brute.distances[i], 1e-9);
    EXPECT_EQ(output.index_at(i), brute.indices[i]);
  }
}

TEST(Portal, EnginesAgreeOnKnn) {
  Storage query(make_gaussian_mixture(80, 3, 2, 15));
  Storage reference(make_gaussian_mixture(150, 3, 2, 16));

  std::vector<Storage> outputs;
  for (Engine engine : {Engine::Pattern, Engine::VM}) {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, query);
    expr.addLayer({PortalOp::KMIN, 3}, reference, PortalFunc::EUCLIDEAN);
    PortalConfig config = serial_config();
    config.engine = engine;
    expr.execute(config);
    outputs.push_back(expr.getOutput());
  }
  for (index_t i = 0; i < outputs[0].rows(); ++i)
    for (index_t j = 0; j < 3; ++j)
      EXPECT_NEAR(outputs[0].value(i, j), outputs[1].value(i, j), 1e-9);
}

TEST(Portal, KdeProgramWithinTauBound) {
  Storage data(make_gaussian_mixture(500, 3, 3, 17));
  const real_t sigma = 1.0;

  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer(PortalOp::SUM, data, PortalFunc::gaussian(sigma));
  PortalConfig config = serial_config();
  config.tau = 1e-3;
  expr.execute(config);
  Storage output = expr.getOutput();
  EXPECT_EQ(expr.artifacts().chosen_engine, "pattern:kde");
  EXPECT_EQ(expr.plan().category, ProblemCategory::Approximation);

  const KdeResult brute =
      kde_bruteforce(data.dataset(), data.dataset(), sigma, false);
  const real_t bound = config.tau * static_cast<real_t>(data.size()) + 1e-9;
  for (index_t i = 0; i < output.rows(); ++i)
    EXPECT_NEAR(output.value(i), brute.densities[i], bound);
}

TEST(Portal, KdeGenericEngineMatchesPattern) {
  Storage data(make_gaussian_mixture(300, 2, 2, 18));
  PortalConfig config = serial_config();
  config.tau = 0; // exact

  std::vector<Storage> outputs;
  for (Engine engine : {Engine::Pattern, Engine::VM}) {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, data);
    expr.addLayer(PortalOp::SUM, data, PortalFunc::gaussian(0.7));
    config.engine = engine;
    expr.execute(config);
    outputs.push_back(expr.getOutput());
  }
  for (index_t i = 0; i < outputs[0].rows(); ++i)
    EXPECT_NEAR(outputs[0].value(i), outputs[1].value(i),
                1e-9 * std::max(real_t(1), outputs[0].value(i)));
}

TEST(Portal, RangeSearchProgram) {
  Storage query(make_gaussian_mixture(120, 3, 2, 19));
  Storage reference(make_gaussian_mixture(300, 3, 2, 20));
  const real_t h_lo = 0.5, h_hi = 2.5;

  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, query);
  expr.addLayer(PortalOp::UNIONARG, reference, PortalFunc::indicator(h_lo, h_hi));
  expr.execute(serial_config());
  Storage output = expr.getOutput();
  EXPECT_EQ(expr.artifacts().chosen_engine, "pattern:range-search");
  EXPECT_TRUE(output.has_lists());

  const RangeSearchResult brute =
      range_search_bruteforce(query.dataset(), reference.dataset(), h_lo, h_hi);
  for (index_t i = 0; i < query.size(); ++i) {
    ASSERT_EQ(output.list_size(i), brute.count(i)) << "query " << i;
    for (index_t j = 0; j < output.list_size(i); ++j)
      EXPECT_EQ(output.list_at(i, j), brute.neighbors[brute.offsets[i] + j]);
  }
}

TEST(Portal, RangeSearchGenericEngineAgrees) {
  Storage data(make_gaussian_mixture(200, 2, 2, 21));
  PortalConfig config = serial_config();
  config.engine = Engine::VM;
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer(PortalOp::UNIONARG, data, PortalFunc::indicator(0.1, 1.5));
  expr.execute(config);
  Storage output = expr.getOutput();

  const RangeSearchResult brute =
      range_search_bruteforce(data.dataset(), data.dataset(), 0.1, 1.5);
  for (index_t i = 0; i < data.size(); ++i)
    ASSERT_EQ(output.list_size(i), brute.count(i));
}

TEST(Portal, TwoPointProgram) {
  Storage data(make_gaussian_mixture(400, 3, 3, 22));
  const real_t h = 1.5;

  // sum_i sum_j I(||x_i - x_j|| < h) -- ordered pairs, including i = j.
  Var q, r;
  const Expr d = sqrt(pow(Expr(q) - Expr(r), 2));
  PortalExpr expr;
  expr.addLayer(PortalOp::SUM, q, data);
  expr.addLayer(PortalOp::SUM, r, data, d < Expr(h));
  expr.execute(serial_config());
  Storage output = expr.getOutput();
  ASSERT_TRUE(output.has_scalar());
  EXPECT_EQ(expr.artifacts().chosen_engine, "pattern:two-point");

  const TwoPointResult brute = twopoint_bruteforce(data.dataset(), h);
  const real_t expected =
      2 * static_cast<real_t>(brute.pairs) + static_cast<real_t>(data.size());
  EXPECT_DOUBLE_EQ(output.scalar(), expected);

  // Generic engine agrees with the pattern dispatch.
  PortalConfig config = serial_config();
  config.engine = Engine::VM;
  PortalExpr generic;
  generic.addLayer(PortalOp::SUM, q, data);
  generic.addLayer(PortalOp::SUM, r, data, d < Expr(h));
  generic.execute(config);
  EXPECT_DOUBLE_EQ(generic.getOutput().scalar(), expected);
}

TEST(Portal, HausdorffProgram) {
  Storage a(make_gaussian_mixture(150, 3, 2, 23));
  Storage b(make_gaussian_mixture(250, 3, 2, 24));

  PortalExpr expr;
  expr.addLayer(PortalOp::MAX, a);
  expr.addLayer(PortalOp::MIN, b, PortalFunc::EUCLIDEAN);
  expr.execute(serial_config());
  EXPECT_EQ(expr.artifacts().chosen_engine, "pattern:hausdorff");

  const KnnResult brute = knn_bruteforce(a.dataset(), b.dataset(), 1);
  real_t expected = 0;
  for (real_t dd : brute.distances) expected = std::max(expected, dd);
  EXPECT_NEAR(expr.getOutput().scalar(), expected, 1e-9);

  // Generic engine.
  PortalConfig config = serial_config();
  config.engine = Engine::VM;
  PortalExpr generic;
  generic.addLayer(PortalOp::MAX, a);
  generic.addLayer(PortalOp::MIN, b, PortalFunc::EUCLIDEAN);
  generic.execute(config);
  EXPECT_NEAR(generic.getOutput().scalar(), expected, 1e-9);
}

TEST(Portal, BarnesHutProgram) {
  const ParticleSet set = make_elliptical(1200, 25);
  Storage bodies(set.positions);
  bodies.set_weights(set.masses);

  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, bodies);
  expr.addLayer(PortalOp::SUM, bodies, PortalFunc::gravity(1.0, 1e-3));
  PortalConfig config = serial_config();
  config.theta = 0.4;
  expr.execute(config);
  Storage output = expr.getOutput();
  ASSERT_EQ(output.cols(), 3);
  EXPECT_EQ(expr.artifacts().chosen_engine, "pattern:barnes-hut");

  const BarnesHutResult exact =
      bh_bruteforce(set.positions, set.masses, 1.0, 1e-3);
  real_t num = 0, den = 0;
  for (index_t i = 0; i < output.rows(); ++i)
    for (int dd = 0; dd < 3; ++dd) {
      const real_t diff = output.value(i, dd) - exact.accel[3 * i + dd];
      num += diff * diff;
      den += exact.accel[3 * i + dd] * exact.accel[3 * i + dd];
    }
  EXPECT_LT(std::sqrt(num / den), 1e-2);
}

TEST(Portal, MahalanobisKdeThroughGenericEngine) {
  // Gaussian of the Mahalanobis distance (the Fig. 3 KDE kernel): no
  // specialized kernel matches, so this exercises the VM + approximation
  // generator with Mahalanobis box bounds.
  Storage data(make_gaussian_mixture(250, 3, 2, 26));

  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer(PortalOp::SUM, data, PortalFunc::gaussian_maha());
  PortalConfig config = serial_config();
  config.tau = 1e-4;
  expr.execute(config);
  Storage output = expr.getOutput();
  // Auto engine picks the JIT when a system compiler exists, the VM otherwise.
  EXPECT_TRUE(expr.artifacts().chosen_engine == "jit" ||
              expr.artifacts().chosen_engine == "vm");

  // Oracle: brute-force program from the same compiler.
  PortalExpr oracle;
  oracle.addLayer(PortalOp::FORALL, data);
  oracle.addLayer(PortalOp::SUM, data, PortalFunc::gaussian_maha());
  oracle.setConfig(config);
  Storage brute = oracle.executeBruteForce();
  const real_t bound = config.tau * static_cast<real_t>(data.size()) + 1e-9;
  for (index_t i = 0; i < output.rows(); ++i)
    EXPECT_NEAR(output.value(i), brute.value(i), bound);
}

TEST(Portal, ExternalKernelProgram) {
  // Opaque external C++ kernel (Sec. III-C): runs exhaustively via the VM.
  Storage query(make_gaussian_mixture(60, 2, 2, 27));
  Storage reference(make_gaussian_mixture(90, 2, 2, 28));

  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, query);
  expr.addLayer(
      PortalOp::ARGMIN, reference,
      [](const real_t* a, const real_t* b, index_t dim) {
        real_t total = 0;
        for (index_t d = 0; d < dim; ++d) total += std::abs(a[d] - b[d]);
        return total;
      },
      "l1");
  expr.execute(serial_config());
  Storage output = expr.getOutput();
  EXPECT_EQ(expr.artifacts().chosen_engine, "vm");
  EXPECT_EQ(expr.plan().category, ProblemCategory::Exhaustive);

  const KnnResult brute =
      knn_bruteforce(query.dataset(), reference.dataset(), 1, MetricKind::Manhattan);
  for (index_t i = 0; i < output.rows(); ++i)
    EXPECT_NEAR(output.value(i), brute.distances[i], 1e-9);
}

TEST(Portal, MstViaLabelConstraint) {
  // The paper's 12-line MST program: Portal supplies the constrained
  // nearest-foreign-neighbor primitive, native code runs Boruvka.
  const Dataset points = make_gaussian_mixture(300, 3, 3, 29);
  Storage data(points);
  const index_t n = points.size();

  std::vector<index_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  const std::function<index_t(index_t)> find = [&](index_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };

  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer(PortalOp::ARGMIN, data, PortalFunc::EUCLIDEAN);

  real_t total_weight = 0;
  index_t components = n;
  std::vector<index_t> comp(n);
  while (components > 1) {
    for (index_t i = 0; i < n; ++i) comp[i] = find(i);
    PortalConfig config = serial_config();
    config.exclude_same_label = &comp;
    expr.execute(config);
    Storage out = expr.getOutput();

    // Per-component winning edge, then contract.
    std::vector<real_t> best(n, std::numeric_limits<real_t>::max());
    std::vector<std::pair<index_t, index_t>> edge(n, {-1, -1});
    for (index_t i = 0; i < n; ++i) {
      const index_t to = out.index_at(i);
      if (to < 0) continue;
      const index_t c = comp[i];
      if (out.value(i) < best[c]) {
        best[c] = out.value(i);
        edge[c] = {i, to};
      }
    }
    for (index_t c = 0; c < n; ++c) {
      if (edge[c].first < 0) continue;
      const index_t a = find(edge[c].first);
      const index_t b = find(edge[c].second);
      if (a == b) continue;
      parent[a] = b;
      total_weight += best[c];
      --components;
    }
  }

  const EmstResult oracle = emst_bruteforce(points);
  EXPECT_NEAR(total_weight, oracle.total_weight, 1e-7 * oracle.total_weight);
}

TEST(Portal, ForallForallEStepShape) {
  // points x components joint evaluation (the EM E-step layer pair).
  Storage points(make_gaussian_mixture(100, 2, 2, 30));
  Storage centers(make_uniform(4, 2, 31, 0, 10));

  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, points);
  expr.addLayer(PortalOp::FORALL, centers, PortalFunc::gaussian(1.0));
  PortalConfig config = serial_config();
  config.tau = 0;
  expr.execute(config);
  Storage output = expr.getOutput();
  ASSERT_EQ(output.rows(), 100);
  ASSERT_EQ(output.cols(), 4);

  for (index_t i = 0; i < 20; ++i)
    for (index_t k = 0; k < 4; ++k) {
      real_t sq = 0;
      for (index_t d = 0; d < 2; ++d) {
        const real_t diff =
            points.dataset().coord(i, d) - centers.dataset().coord(k, d);
        sq += diff * diff;
      }
      EXPECT_NEAR(output.value(i, k), std::exp(-sq / 2), 1e-9);
    }
}

TEST(Portal, ValidationModePasses) {
  Storage data(make_gaussian_mixture(120, 3, 2, 32));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer({PortalOp::KARGMIN, 3}, data, PortalFunc::EUCLIDEAN);
  PortalConfig config = serial_config();
  config.validate = true;
  EXPECT_NO_THROW(expr.execute(config));
}

TEST(Portal, IrDumpArtifacts) {
  Storage data(make_gaussian_mixture(50, 3, 2, 33));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer(PortalOp::ARGMIN, data, PortalFunc::EUCLIDEAN);
  PortalConfig config = serial_config();
  config.dump_ir = true;
  expr.execute(config);

  const CompileArtifacts& artifacts = expr.artifacts();
  ASSERT_GE(artifacts.stages.size(), 4u); // lowering + the pass pipeline
  EXPECT_EQ(artifacts.stages.front().first, "lowering+storage-injection");
  // Strength reduction rewrote the Euclidean sqrt into the fast form.
  bool saw_fast_sqrt = false;
  for (const auto& [name, dump] : artifacts.stages)
    if (name == "strength-reduction" &&
        dump.find("fast_inverse_sqrt") != std::string::npos)
      saw_fast_sqrt = true;
  EXPECT_TRUE(saw_fast_sqrt);
  EXPECT_FALSE(artifacts.problem_description.empty());
  EXPECT_NE(artifacts.pipeline_trace.find("flattening"), std::string::npos);
}

TEST(Portal, ErrorMessagesAreActionable) {
  Storage data(make_gaussian_mixture(20, 2, 2, 34));
  Storage other(make_gaussian_mixture(20, 3, 2, 35));

  { // wrong layer count
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, data);
    EXPECT_THROW(expr.execute(serial_config()), std::invalid_argument);
  }
  { // missing kernel
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, data);
    expr.addLayer(PortalOp::ARGMIN, data);
    EXPECT_THROW(expr.execute(serial_config()), std::invalid_argument);
  }
  { // dimensionality mismatch
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, data);
    expr.addLayer(PortalOp::ARGMIN, other, PortalFunc::EUCLIDEAN);
    EXPECT_THROW(expr.execute(serial_config()), std::invalid_argument);
  }
  { // unsupported outer operator
    PortalExpr expr;
    expr.addLayer(PortalOp::UNION, data);
    expr.addLayer(PortalOp::ARGMIN, data, PortalFunc::EUCLIDEAN);
    EXPECT_THROW(expr.execute(serial_config()), std::invalid_argument);
  }
  { // k out of range
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, data);
    expr.addLayer({PortalOp::KARGMIN, 100}, data, PortalFunc::EUCLIDEAN);
    EXPECT_THROW(expr.execute(serial_config()), std::invalid_argument);
  }
  { // Pattern engine demanded but nothing matches
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, data);
    expr.addLayer(PortalOp::SUM, data, PortalFunc::MANHATTAN);
    PortalConfig config = serial_config();
    config.engine = Engine::Pattern;
    EXPECT_THROW(expr.execute(config), std::invalid_argument);
  }
  { // getOutput before execute
    PortalExpr expr;
    EXPECT_THROW(expr.getOutput(), std::logic_error);
    EXPECT_THROW(expr.plan(), std::logic_error);
  }
}

TEST(Portal, ParallelMatchesSerial) {
  Storage data(make_gaussian_mixture(600, 3, 3, 36));
  Storage out_serial, out_parallel;
  {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, data);
    expr.addLayer({PortalOp::KARGMIN, 4}, data, PortalFunc::EUCLIDEAN);
    expr.execute(serial_config());
    out_serial = expr.getOutput();
  }
  {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, data);
    expr.addLayer({PortalOp::KARGMIN, 4}, data, PortalFunc::EUCLIDEAN);
    PortalConfig config;
    config.parallel = true;
    config.task_depth = 5;
    expr.execute(config);
    out_parallel = expr.getOutput();
  }
  for (index_t i = 0; i < out_serial.rows(); ++i)
    for (index_t j = 0; j < 4; ++j)
      EXPECT_NEAR(out_serial.value(i, j), out_parallel.value(i, j), 1e-12);
}

} // namespace
} // namespace portal
