// Golden regression wall: the six Table-IV problems (k-NN, KDE, range
// search, EMST, two-point, Hausdorff) computed on pinned-seed datasets with
// serial options must reproduce the CSVs committed under tests/golden/.
//
// Index columns compare exactly; real-valued columns compare within a tight
// relative tolerance (the CSVs are written %.17g, so the slack only absorbs
// libm differences across platforms/compilers, not algorithm drift). A
// legitimate behavior change regenerates the files in the same commit:
//
//   portal_cli --dump-golden=tests/golden
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "problems/golden.h"
#include "util/csv.h"

#ifndef PORTAL_GOLDEN_DIR
#error "PORTAL_GOLDEN_DIR must point at the committed tests/golden directory"
#endif

namespace portal {
namespace {

constexpr real_t kRelTolerance = 1e-9;

TEST(Golden, TablesMatchCommittedCsvs) {
  const std::vector<GoldenTable> tables = compute_golden_tables();
  ASSERT_EQ(tables.size(), 6u);

  for (const GoldenTable& table : tables) {
    SCOPED_TRACE("table " + table.name);
    const std::string path =
        std::string(PORTAL_GOLDEN_DIR) + "/" + table.name + ".csv";
    CsvTable committed;
    ASSERT_NO_THROW(committed = read_csv(path))
        << "missing golden file " << path
        << " -- regenerate with portal_cli --dump-golden=tests/golden";

    ASSERT_EQ(committed.rows, table.rows);
    ASSERT_EQ(committed.cols, table.cols);
    for (index_t i = 0; i < table.rows; ++i)
      for (index_t j = 0; j < table.cols; ++j) {
        const real_t want = committed.values[i * table.cols + j];
        const real_t got = table.values[i * table.cols + j];
        const bool exact =
            std::find(table.integer_cols.begin(), table.integer_cols.end(),
                      j) != table.integer_cols.end();
        if (exact) {
          EXPECT_EQ(want, got) << "row " << i << " col " << j;
        } else {
          EXPECT_NEAR(want, got,
                      kRelTolerance * std::max(std::abs(want), real_t(1)))
              << "row " << i << " col " << j;
        }
      }
  }
}

// The tables themselves must be non-degenerate -- a golden file of zeros
// would happily "match" a broken regeneration.
TEST(Golden, TablesAreNonDegenerate) {
  for (const GoldenTable& table : compute_golden_tables()) {
    SCOPED_TRACE("table " + table.name);
    EXPECT_GT(table.rows, 0);
    EXPECT_GT(table.cols, 0);
    real_t sum_abs = 0;
    for (real_t v : table.values) sum_abs += std::abs(v);
    EXPECT_GT(sum_abs, 0) << "all-zero golden table";
  }
}

} // namespace
} // namespace portal
