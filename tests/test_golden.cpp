// Golden regression wall: the six Table-IV problems (k-NN, KDE, range
// search, EMST, two-point, Hausdorff) computed on pinned-seed datasets with
// serial options must reproduce the CSVs committed under tests/golden/.
//
// Index columns compare exactly; real-valued columns compare within a tight
// relative tolerance (the CSVs are written %.17g, so the slack only absorbs
// libm differences across platforms/compilers, not algorithm drift). A
// legitimate behavior change regenerates the files in the same commit:
//
//   portal_cli --dump-golden=tests/golden
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "core/codegen/jit.h"
#include "core/portal.h"
#include "data/generators.h"
#include "kernels/gaussian.h"
#include "problems/golden.h"
#include "util/csv.h"

#ifndef PORTAL_GOLDEN_DIR
#error "PORTAL_GOLDEN_DIR must point at the committed tests/golden directory"
#endif

namespace portal {
namespace {

constexpr real_t kRelTolerance = 1e-9;

TEST(Golden, TablesMatchCommittedCsvs) {
  const std::vector<GoldenTable> tables = compute_golden_tables();
  ASSERT_EQ(tables.size(), 6u);

  for (const GoldenTable& table : tables) {
    SCOPED_TRACE("table " + table.name);
    const std::string path =
        std::string(PORTAL_GOLDEN_DIR) + "/" + table.name + ".csv";
    CsvTable committed;
    ASSERT_NO_THROW(committed = read_csv(path))
        << "missing golden file " << path
        << " -- regenerate with portal_cli --dump-golden=tests/golden";

    ASSERT_EQ(committed.rows, table.rows);
    ASSERT_EQ(committed.cols, table.cols);
    for (index_t i = 0; i < table.rows; ++i)
      for (index_t j = 0; j < table.cols; ++j) {
        const real_t want = committed.values[i * table.cols + j];
        const real_t got = table.values[i * table.cols + j];
        const bool exact =
            std::find(table.integer_cols.begin(), table.integer_cols.end(),
                      j) != table.integer_cols.end();
        if (exact) {
          EXPECT_EQ(want, got) << "row " << i << " col " << j;
        } else {
          EXPECT_NEAR(want, got,
                      kRelTolerance * std::max(std::abs(want), real_t(1)))
              << "row " << i << " col " << j;
        }
      }
  }
}

// The tables themselves must be non-degenerate -- a golden file of zeros
// would happily "match" a broken regeneration.
TEST(Golden, TablesAreNonDegenerate) {
  for (const GoldenTable& table : compute_golden_tables()) {
    SCOPED_TRACE("table " + table.name);
    EXPECT_GT(table.rows, 0);
    EXPECT_GT(table.cols, 0);
    real_t sum_abs = 0;
    for (real_t v : table.values) sum_abs += std::abs(v);
    EXPECT_GT(sum_abs, 0) << "all-zero golden table";
  }
}

// The same pinned problems through the JIT engine (fused leaf loops, the
// full compiler pipeline) against the committed CSVs. The committed k-NN
// numbers are exact, so index columns must match exactly and distances to
// the standard relative tolerance; the committed KDE table was computed at
// tau = 1e-4, so the exact (tau = 0) JIT run must land within the documented
// per-query approximation bound, tau * |R|, scaled by the normalization the
// expert applied.
TEST(Golden, JitEngineMatchesCommittedTables) {
  if (!jit_available()) GTEST_SKIP() << "no system compiler";
  const Dataset query = make_gaussian_mixture(123, 3, 3, kGoldenSeed);
  const Dataset reference = make_gaussian_mixture(157, 3, 3, kGoldenSeed + 1);

  PortalConfig config;
  config.engine = Engine::JIT;
  config.parallel = false;
  config.leaf_size = 16;
  config.tau = 0;

  { // knn.csv: [idx_0..idx_3, dist_0..dist_3] per query row.
    const CsvTable committed =
        read_csv(std::string(PORTAL_GOLDEN_DIR) + "/knn.csv");
    ASSERT_EQ(committed.rows, query.size());
    ASSERT_EQ(committed.cols, 8);

    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, Storage(query));
    expr.addLayer({PortalOp::KARGMIN, 4}, Storage(reference),
                  PortalFunc::EUCLIDEAN);
    expr.execute(config);
    EXPECT_EQ(expr.artifacts().chosen_engine, "jit");
    const Storage out = expr.getOutput();
    ASSERT_TRUE(out.has_indices());

    for (index_t i = 0; i < committed.rows; ++i)
      for (index_t j = 0; j < 4; ++j) {
        EXPECT_EQ(committed.values[i * 8 + j],
                  static_cast<real_t>(out.index_at(i, j)))
            << "row " << i << " idx " << j;
        EXPECT_NEAR(committed.values[i * 8 + 4 + j], out.value(i, j),
                    kRelTolerance *
                        std::max(std::abs(committed.values[i * 8 + 4 + j]),
                                 real_t(1)))
            << "row " << i << " dist " << j;
      }
  }

  { // kde.csv: one normalized density per query row.
    const CsvTable committed =
        read_csv(std::string(PORTAL_GOLDEN_DIR) + "/kde.csv");
    ASSERT_EQ(committed.rows, query.size());
    ASSERT_EQ(committed.cols, 1);

    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, Storage(query));
    expr.addLayer(PortalOp::SUM, Storage(reference), PortalFunc::gaussian(0.7));
    expr.execute(config);
    EXPECT_EQ(expr.artifacts().chosen_engine, "jit");
    const Storage out = expr.getOutput();

    const GaussianKernel kernel(real_t(0.7));
    const real_t norm = kernel.normalization(query.dim(), reference.size());
    const real_t slack =
        real_t(1e-4) * static_cast<real_t>(reference.size()) * norm;
    for (index_t i = 0; i < committed.rows; ++i)
      EXPECT_NEAR(committed.values[i], out.value(i) * norm,
                  slack + kRelTolerance * std::abs(committed.values[i]))
          << "row " << i;
  }
}

} // namespace
} // namespace portal
