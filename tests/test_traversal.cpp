// Tests for src/traversal: Algorithm 1's contract -- every leaf tuple is
// evaluated exactly once in the absence of pruning, pruning cuts subtrees,
// parallel and serial traversals produce identical coverage, and the general
// m-way recursion agrees with the dual specialization.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "data/generators.h"
#include "traversal/multitree.h"
#include "tree/kdtree.h"
#include "util/threading.h"

namespace portal {
namespace {

/// Rule set that records every base-case pair and counts covered point pairs.
struct RecordingRules {
  const KdTree* qtree = nullptr;
  const KdTree* rtree = nullptr;
  std::atomic<std::uint64_t> point_pairs{0};
  std::mutex mutex;
  std::set<std::pair<index_t, index_t>> leaf_pairs;

  bool prune_or_approx(index_t, index_t) { return false; }

  real_t score(index_t q, index_t r) {
    return qtree->node(q).box.min_sq_dist(rtree->node(r).box);
  }

  void base_case(index_t q, index_t r) {
    point_pairs.fetch_add(static_cast<std::uint64_t>(qtree->node(q).count()) *
                              static_cast<std::uint64_t>(rtree->node(r).count()),
                          std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex);
    const bool inserted = leaf_pairs.insert({q, r}).second;
    EXPECT_TRUE(inserted) << "leaf pair visited twice: " << q << "," << r;
  }
};

TEST(DualTraverse, CoversEveryPointPairExactlyOnce) {
  const Dataset qdata = make_gaussian_mixture(300, 3, 2, 1);
  const Dataset rdata = make_gaussian_mixture(450, 3, 2, 2);
  const KdTree qtree(qdata, 16);
  const KdTree rtree(rdata, 8);

  RecordingRules rules;
  rules.qtree = &qtree;
  rules.rtree = &rtree;
  TraversalOptions options;
  options.parallel = false;
  const TraversalStats stats = dual_traverse(qtree, rtree, rules, options);

  EXPECT_EQ(rules.point_pairs.load(),
            static_cast<std::uint64_t>(qdata.size()) * rdata.size());
  EXPECT_EQ(rules.leaf_pairs.size(),
            static_cast<std::size_t>(qtree.stats().num_leaves) *
                static_cast<std::size_t>(rtree.stats().num_leaves));
  EXPECT_EQ(stats.base_cases, rules.leaf_pairs.size());
  EXPECT_EQ(stats.prunes, 0u);
  EXPECT_GE(stats.pairs_visited, stats.base_cases);
}

TEST(DualTraverse, ParallelMatchesSerialCoverage) {
  const Dataset data = make_gaussian_mixture(500, 2, 3, 3);
  const KdTree tree(data, 8);

  RecordingRules serial_rules, parallel_rules;
  serial_rules.qtree = serial_rules.rtree = &tree;
  parallel_rules.qtree = parallel_rules.rtree = &tree;

  TraversalOptions serial;
  serial.parallel = false;
  dual_traverse(tree, tree, serial_rules, serial);

  set_num_threads(4);
  TraversalOptions parallel;
  parallel.parallel = true;
  parallel.task_depth = 4;
  dual_traverse(tree, tree, parallel_rules, parallel);

  EXPECT_EQ(serial_rules.leaf_pairs, parallel_rules.leaf_pairs);
  EXPECT_EQ(serial_rules.point_pairs.load(), parallel_rules.point_pairs.load());
}

/// Non-adaptive rule set: pruning depends only on node geometry (a fixed
/// distance threshold), never on accumulated results, so the set of visited
/// pairs -- and therefore every TraversalStats counter -- is independent of
/// traversal order and thread interleaving.
struct FixedThresholdRules {
  const KdTree* qtree = nullptr;
  const KdTree* rtree = nullptr;
  real_t sq_threshold = 0;

  bool prune_or_approx(index_t q, index_t r) {
    return qtree->node(q).box.min_sq_dist(rtree->node(r).box) > sq_threshold;
  }
  real_t score(index_t q, index_t r) {
    return qtree->node(q).box.min_sq_dist(rtree->node(r).box);
  }
  void base_case(index_t, index_t) {}
};

TEST(DualTraverse, ParallelMatchesSerialStatsExactly) {
  // The per-task/per-thread stats counters must merge to EXACTLY the serial
  // totals (not approximately -- the merge is associative integer addition
  // and the visited set is order-independent for a non-adaptive rule set).
  const Dataset qdata = make_gaussian_mixture(600, 3, 3, 11);
  const Dataset rdata = make_gaussian_mixture(800, 3, 3, 12);
  const KdTree qtree(qdata, 8);
  const KdTree rtree(rdata, 8);

  FixedThresholdRules serial_rules{&qtree, &rtree, real_t(0.25)};
  TraversalOptions serial_opt;
  serial_opt.parallel = false;
  const TraversalStats serial = dual_traverse(qtree, rtree, serial_rules, serial_opt);
  // The threshold must actually bite for this to be a meaningful check.
  EXPECT_GT(serial.prunes, 0u);
  EXPECT_GT(serial.base_cases, 0u);

  set_num_threads(4);
  for (int task_depth : {1, 3, 6}) {
    FixedThresholdRules parallel_rules{&qtree, &rtree, real_t(0.25)};
    TraversalOptions parallel_opt;
    parallel_opt.parallel = true;
    parallel_opt.task_depth = task_depth;
    const TraversalStats parallel =
        dual_traverse(qtree, rtree, parallel_rules, parallel_opt);
    EXPECT_EQ(serial.pairs_visited, parallel.pairs_visited)
        << "task_depth=" << task_depth;
    EXPECT_EQ(serial.prunes, parallel.prunes) << "task_depth=" << task_depth;
    EXPECT_EQ(serial.base_cases, parallel.base_cases)
        << "task_depth=" << task_depth;
  }
}

/// Rule set that prunes everything: Algorithm 1 line 1-2 short-circuit.
struct PruneAllRules {
  bool prune_or_approx(index_t, index_t) { return true; }
  void base_case(index_t, index_t) { FAIL() << "base case after global prune"; }
};

TEST(DualTraverse, PruneCutsEntireTree) {
  const Dataset data = make_uniform(200, 2, 4);
  const KdTree tree(data, 8);
  PruneAllRules rules;
  const TraversalStats stats = dual_traverse(tree, tree, rules, {false, 0});
  EXPECT_EQ(stats.pairs_visited, 1u);
  EXPECT_EQ(stats.prunes, 1u);
  EXPECT_EQ(stats.base_cases, 0u);
}

/// Distance-based pruning must only ever skip node pairs, never point pairs
/// within unpruned leaves -- checked by counting covered pairs against an
/// explicit filter.
struct ThresholdRules {
  const KdTree* tree = nullptr;
  real_t h_sq = 0;
  std::atomic<std::uint64_t> candidates{0};

  bool prune_or_approx(index_t q, index_t r) {
    return tree->node(q).box.min_sq_dist(tree->node(r).box) > h_sq;
  }
  void base_case(index_t q, index_t r) {
    candidates.fetch_add(static_cast<std::uint64_t>(tree->node(q).count()) *
                             static_cast<std::uint64_t>(tree->node(r).count()),
                         std::memory_order_relaxed);
  }
};

TEST(DualTraverse, DistancePruningIsConservative) {
  const Dataset data = make_gaussian_mixture(400, 3, 4, 5);
  const KdTree tree(data, 16);
  ThresholdRules rules;
  rules.tree = &tree;
  rules.h_sq = 0.25;
  const TraversalStats stats = dual_traverse(tree, tree, rules, {false, 0});
  EXPECT_GT(stats.prunes, 0u);

  // Every point pair within h must be inside some surviving base case:
  // candidates >= exact close-pair count.
  std::uint64_t close_pairs = 0;
  std::vector<real_t> a(3), b(3);
  for (index_t i = 0; i < data.size(); ++i) {
    data.copy_point(i, a.data());
    for (index_t j = 0; j < data.size(); ++j) {
      data.copy_point(j, b.data());
      real_t sq = 0;
      for (int d = 0; d < 3; ++d) sq += (a[d] - b[d]) * (a[d] - b[d]);
      if (sq <= rules.h_sq) ++close_pairs;
    }
  }
  EXPECT_GE(rules.candidates.load(), close_pairs);
  EXPECT_LT(rules.candidates.load(),
            static_cast<std::uint64_t>(data.size()) * data.size());
}

/// m-way recording rules for multi_traverse.
struct MultiRecordingRules {
  std::vector<const KdTree*> trees;
  std::uint64_t tuples = 0;
  std::uint64_t point_tuples = 0;

  bool prune_or_approx(const std::vector<index_t>&) { return false; }

  void base_case(const std::vector<index_t>& nodes) {
    ++tuples;
    std::uint64_t product = 1;
    for (std::size_t i = 0; i < nodes.size(); ++i)
      product *= static_cast<std::uint64_t>(trees[i]->node(nodes[i]).count());
    point_tuples += product;
  }
};

TEST(MultiTraverse, TwoWayMatchesDual) {
  const Dataset data = make_gaussian_mixture(300, 2, 2, 6);
  const KdTree tree(data, 16);

  MultiRecordingRules rules;
  rules.trees = {&tree, &tree};
  const TraversalStats stats =
      multi_traverse<KdTree>({&tree, &tree}, rules);

  const std::uint64_t leaves = static_cast<std::uint64_t>(tree.stats().num_leaves);
  EXPECT_EQ(rules.tuples, leaves * leaves);
  EXPECT_EQ(rules.point_tuples,
            static_cast<std::uint64_t>(data.size()) * data.size());
  EXPECT_EQ(stats.base_cases, rules.tuples);
}

TEST(MultiTraverse, ThreeWayCoversAllLeafTriples) {
  const Dataset data = make_uniform(120, 2, 7);
  const KdTree tree(data, 32);

  MultiRecordingRules rules;
  rules.trees = {&tree, &tree, &tree};
  multi_traverse<KdTree>({&tree, &tree, &tree}, rules);

  const std::uint64_t n = static_cast<std::uint64_t>(data.size());
  EXPECT_EQ(rules.point_tuples, n * n * n);
}

TEST(MultiTraverse, PruneShortCircuits) {
  const Dataset data = make_uniform(100, 2, 8);
  const KdTree tree(data, 16);
  struct Prune {
    bool prune_or_approx(const std::vector<index_t>&) { return true; }
    void base_case(const std::vector<index_t>&) {
      FAIL() << "must not reach base case";
    }
  } rules;
  const TraversalStats stats = multi_traverse<KdTree>({&tree, &tree}, rules);
  EXPECT_EQ(stats.pairs_visited, 1u);
  EXPECT_EQ(stats.prunes, 1u);
}

} // namespace
} // namespace portal

// ---------------------------------------------------------------------------
// SplitPolicy::Larger over octrees: coverage must be identical to Both.
#include "data/generators.h"
#include "tree/octree.h"

namespace portal {
namespace {

struct OctreeCoverage {
  const Octree* tree = nullptr;
  std::atomic<std::uint64_t> point_pairs{0};

  bool prune_or_approx(index_t, index_t) { return false; }
  void base_case(index_t q, index_t r) {
    point_pairs.fetch_add(static_cast<std::uint64_t>(tree->node(q).count()) *
                              static_cast<std::uint64_t>(tree->node(r).count()),
                          std::memory_order_relaxed);
  }
};

TEST(DualTraverse, LargerSplitCoversEveryPairOnOctree) {
  const ParticleSet set = make_elliptical(800, 55);
  const Octree tree(set.positions, set.masses, 8);

  OctreeCoverage both, larger;
  both.tree = larger.tree = &tree;
  TraversalOptions both_opt;
  both_opt.parallel = false;
  both_opt.split = SplitPolicy::Both;
  TraversalOptions larger_opt;
  larger_opt.parallel = false;
  larger_opt.split = SplitPolicy::Larger;
  const TraversalStats both_stats = dual_traverse(tree, tree, both, both_opt);
  const TraversalStats larger_stats = dual_traverse(tree, tree, larger, larger_opt);

  const std::uint64_t n = static_cast<std::uint64_t>(set.positions.size());
  EXPECT_EQ(both.point_pairs.load(), n * n);
  EXPECT_EQ(larger.point_pairs.load(), n * n);
  // Without pruning both policies reach every leaf pair (the visit-count win
  // of Larger only materializes when a MAC prunes subtrees; the Barnes-Hut
  // benches measure that). Both must at least terminate with sane stats.
  EXPECT_GT(both_stats.base_cases, 0u);
  EXPECT_EQ(both_stats.prunes, 0u);
  EXPECT_EQ(larger_stats.prunes, 0u);
}

} // namespace
} // namespace portal

// ---------------------------------------------------------------------------
// Single-tree traversal module (the baselines' engine).
#include <algorithm>
#include <cmath>
#include <limits>

#include "kernels/batch.h"
#include "problems/common.h"
#include "problems/kde.h"
#include "problems/knn.h"
#include "traversal/singletree.h"

namespace portal {
namespace {

/// Counts points seen, with an optional take-radius emulating a MAC.
struct SingleCountRules {
  const KdTree* tree = nullptr;
  const real_t* qpt = nullptr;
  real_t take_sq = -1; // bulk-take nodes entirely within this radius
  std::uint64_t points = 0;

  bool prune_or_take(index_t node) {
    if (take_sq < 0) return false;
    if (tree->node(node).box.max_sq_dist_point(qpt) < take_sq) {
      points += static_cast<std::uint64_t>(tree->node(node).count());
      return true;
    }
    return false;
  }
  void base_case(index_t node) {
    points += static_cast<std::uint64_t>(tree->node(node).count());
  }
  real_t score(index_t node) { return tree->node(node).box.min_sq_dist_point(qpt); }
};

TEST(SingleTraverse, VisitsEveryLeafExactlyOnce) {
  const Dataset data = make_gaussian_mixture(700, 3, 3, 66);
  const KdTree tree(data, 16);
  std::vector<real_t> qpt(3, 0);
  SingleCountRules rules;
  rules.tree = &tree;
  rules.qpt = qpt.data();
  const TraversalStats stats = single_traverse(tree, rules);
  EXPECT_EQ(rules.points, static_cast<std::uint64_t>(data.size()));
  EXPECT_EQ(stats.base_cases,
            static_cast<std::uint64_t>(tree.stats().num_leaves));
  EXPECT_EQ(stats.prunes, 0u);
}

TEST(SingleTraverse, BulkTakeStillCoversEveryPoint) {
  const Dataset data = make_gaussian_mixture(900, 3, 3, 67);
  const KdTree tree(data, 8);
  std::vector<real_t> qpt(3);
  tree.data().copy_point(0, qpt.data());
  SingleCountRules rules;
  rules.tree = &tree;
  rules.qpt = qpt.data();
  rules.take_sq = 1e9; // everything near: the root is taken whole
  const TraversalStats stats = single_traverse(tree, rules);
  EXPECT_EQ(rules.points, static_cast<std::uint64_t>(data.size()));
  EXPECT_EQ(stats.pairs_visited, 1u); // root consumed immediately
}

// ---------------------------------------------------------------------------
// Batch-of-queries single-tree search over SoA tiles (the per-query flavor of
// the batched base cases): each query descends the reference tree and leaves
// evaluate through batch::sq_dists on the tree's mirror. Verified three ways:
// against brute force, against the dual-tree expert, and batched-vs-scalar
// (which must be EXACT -- identical traversal, bitwise-identical base case).
// ---------------------------------------------------------------------------

struct SingleKnnRules {
  const KdTree* tree = nullptr;
  const real_t* qpt = nullptr;
  index_t k = 1;
  bool batch = true;
  std::vector<real_t> dists;     // leaf scratch
  std::vector<real_t> best_sq;   // ascending, size <= k
  std::vector<index_t> best_idx; // tree-order indices, parallel to best_sq

  real_t worst_sq() const {
    return static_cast<index_t>(best_sq.size()) < k
               ? std::numeric_limits<real_t>::infinity()
               : best_sq.back();
  }

  void offer(real_t sq, index_t idx) {
    if (sq >= worst_sq()) return;
    auto pos = std::upper_bound(best_sq.begin(), best_sq.end(), sq);
    const auto at = pos - best_sq.begin();
    best_sq.insert(pos, sq);
    best_idx.insert(best_idx.begin() + at, idx);
    if (static_cast<index_t>(best_sq.size()) > k) {
      best_sq.pop_back();
      best_idx.pop_back();
    }
  }

  bool prune_or_take(index_t node) {
    return tree->node(node).box.min_sq_dist_point(qpt) > worst_sq();
  }

  void base_case(index_t node) {
    const KdNode& n = tree->node(node);
    const index_t count = n.count();
    if (batch)
      batch::sq_dists(tree->mirror().tile(n.begin, count), qpt, dists.data());
    else
      sq_dists_to_range(tree->data(), n.begin, n.end, qpt, dists.data());
    for (index_t j = 0; j < count; ++j) offer(dists[j], n.begin + j);
  }

  real_t score(index_t node) {
    return tree->node(node).box.min_sq_dist_point(qpt);
  }
};

/// Batch of queries through the single-tree search; results in original
/// reference indexing, natural (un-squared) distances, like knn_expert.
KnnResult single_tree_knn(const Dataset& query, const KdTree& tree, index_t k,
                          bool batch) {
  KnnResult result;
  result.k = k;
  std::vector<real_t> qpt(query.dim());
  SingleKnnRules rules;
  rules.tree = &tree;
  rules.k = k;
  rules.batch = batch;
  rules.dists.resize(tree.stats().max_leaf_count);
  for (index_t i = 0; i < query.size(); ++i) {
    query.copy_point(i, qpt.data());
    rules.qpt = qpt.data();
    rules.best_sq.clear();
    rules.best_idx.clear();
    single_traverse(tree, rules);
    for (index_t j = 0; j < k; ++j) {
      result.indices.push_back(tree.perm()[rules.best_idx[j]]);
      result.distances.push_back(std::sqrt(rules.best_sq[j]));
    }
  }
  return result;
}

TEST(SingleTraverse, BatchedKnnMatchesBruteForceAndDualTree) {
  const Dataset query = make_gaussian_mixture(90, 3, 3, 69);
  const Dataset reference = make_gaussian_mixture(131, 3, 3, 70);
  const index_t k = 3;
  const KdTree tree(reference, 10); // 131 points / leaf 10: ragged tiles

  const KnnResult batched = single_tree_knn(query, tree, k, true);
  const KnnResult brute = knn_bruteforce(query, reference, k);
  KnnOptions dual_options;
  dual_options.k = k;
  dual_options.leaf_size = 10;
  dual_options.parallel = false;
  const KnnResult dual = knn_expert(query, reference, dual_options);

  ASSERT_EQ(batched.indices.size(), brute.indices.size());
  for (std::size_t i = 0; i < batched.indices.size(); ++i) {
    EXPECT_EQ(batched.indices[i], brute.indices[i]) << "at " << i;
    EXPECT_EQ(batched.indices[i], dual.indices[i]) << "at " << i;
    EXPECT_NEAR(batched.distances[i], brute.distances[i],
                1e-12 * std::max(brute.distances[i], real_t(1)))
        << "at " << i;
  }
}

TEST(SingleTraverse, BatchedKnnIsBitwiseEqualToScalar) {
  // Same descent, same leaves; only the base-case evaluation differs. The
  // batched tile kernel accumulates per lane in the same dimension order as
  // the scalar helper, so agreement must be exact, including at leaf size 1
  // (degenerate single-lane tiles).
  for (index_t leaf : {index_t(1), index_t(7), index_t(16)}) {
    const Dataset query = make_gaussian_mixture(60, 5, 2, 71);
    const Dataset reference = make_gaussian_mixture(97, 5, 2, 72);
    const KdTree tree(reference, leaf);
    const KnnResult batched = single_tree_knn(query, tree, 4, true);
    const KnnResult scalar = single_tree_knn(query, tree, 4, false);
    ASSERT_EQ(batched.indices, scalar.indices) << "leaf " << leaf;
    ASSERT_EQ(batched.distances, scalar.distances) << "leaf " << leaf;
  }
}

/// Exhaustive single-tree Gaussian sum over tiles (no pruning): the KDE
/// base case without the approximation rule.
struct SingleKdeRules {
  const KdTree* tree = nullptr;
  const real_t* qpt = nullptr;
  real_t inv_two_sigma_sq = 1;
  bool batch = true;
  std::vector<real_t> dists;
  std::vector<real_t> vals;
  real_t total = 0;

  bool prune_or_take(index_t) { return false; }
  void base_case(index_t node) {
    const KdNode& n = tree->node(node);
    const index_t count = n.count();
    if (batch) {
      batch::sq_dists(tree->mirror().tile(n.begin, count), qpt, dists.data());
      batch::gaussian_sq(dists.data(), count, inv_two_sigma_sq, vals.data());
      for (index_t j = 0; j < count; ++j) total += vals[j];
    } else {
      sq_dists_to_range(tree->data(), n.begin, n.end, qpt, dists.data());
      for (index_t j = 0; j < count; ++j)
        total += std::exp(-dists[j] * inv_two_sigma_sq);
    }
  }
};

TEST(SingleTraverse, BatchedKdeSumMatchesBruteForceAndScalar) {
  const Dataset query = make_gaussian_mixture(50, 3, 2, 73);
  const Dataset reference = make_gaussian_mixture(83, 3, 2, 74);
  const real_t sigma = real_t(0.8);
  const KdTree tree(reference, 12);
  const KdeResult brute = kde_bruteforce(query, reference, sigma,
                                         /*normalize=*/false);

  std::vector<real_t> qpt(query.dim());
  SingleKdeRules rules;
  rules.tree = &tree;
  rules.inv_two_sigma_sq = 1 / (2 * sigma * sigma);
  rules.dists.resize(tree.stats().max_leaf_count);
  rules.vals.resize(tree.stats().max_leaf_count);
  for (index_t i = 0; i < query.size(); ++i) {
    query.copy_point(i, qpt.data());
    rules.qpt = qpt.data();

    rules.batch = true;
    rules.total = 0;
    single_traverse(tree, rules);
    const real_t batched = rules.total;

    rules.batch = false;
    rules.total = 0;
    single_traverse(tree, rules);
    const real_t scalar = rules.total;

    // Identical leaf visit order + bitwise base case: exact.
    EXPECT_EQ(batched, scalar) << "query " << i;
    // Brute force sums in a different (dataset) order: float-noise only.
    EXPECT_NEAR(batched, brute.densities[i],
                1e-12 * std::max(std::abs(brute.densities[i]), real_t(1)))
        << "query " << i;
  }
}

TEST(SingleTraverse, WorksOnOctrees) {
  const ParticleSet set = make_elliptical(600, 68);
  const Octree tree(set.positions, set.masses, 8);
  struct Rules {
    const Octree* tree = nullptr;
    std::uint64_t points = 0;
    bool prune_or_take(index_t) { return false; }
    void base_case(index_t node) {
      points += static_cast<std::uint64_t>(tree->node(node).count());
    }
  } rules;
  rules.tree = &tree;
  single_traverse(tree, rules);
  EXPECT_EQ(rules.points, static_cast<std::uint64_t>(set.positions.size()));
}

} // namespace
} // namespace portal

// ---------------------------------------------------------------------------
// Resumable traversal (traversal/cursor.h): NodeFrontier bound safety and
// TraversalCursor parity with the run-to-completion oracle.
#include <thread>

#include "traversal/cursor.h"

namespace portal {
namespace {

TEST(CursorFrontier, GrowsPastInlineCapacityAndStaysLifo) {
  NodeFrontier frontier;
  const index_t n = NodeFrontier::kInlineCapacity * 5 + 3;
  for (index_t i = 0; i < n; ++i) frontier.push(i);
  EXPECT_TRUE(frontier.spilled());
  EXPECT_EQ(frontier.size(), n);
  for (index_t i = n - 1; i >= 0; --i) {
    ASSERT_EQ(frontier.top(), i);
    ASSERT_EQ(frontier.pop(), i);
  }
  EXPECT_TRUE(frontier.empty());
}

/// Degenerate externally-built tree: a right spine of `depth` internal nodes,
/// each hanging one pending leaf. The unscored descent pops the spine child
/// first, so the pending leaves pile up on the frontier -- max occupancy is
/// `depth` entries. With depth > 512 this overflowed the fixed
/// `index_t stack[512]` the old single_traverse carried (ASan flagged the
/// write past the array); NodeFrontier spills to the heap instead. No in-tree
/// builder produces this shape (binary median splits are balanced, the octree
/// caps depth at 60) -- which is exactly why the old bound went unnoticed.
struct ChainNode {
  index_t spine = -1; // next spine node; -1 = leaf
  index_t leaf = -1;  // pending leaf child
};

struct ChainTree {
  index_t depth;
  std::vector<ChainNode> nodes; // [0, depth) spine, [depth, 2*depth) leaves
  explicit ChainTree(index_t d) : depth(d), nodes(static_cast<std::size_t>(2 * d)) {
    for (index_t i = 0; i + 1 < d; ++i) {
      nodes[static_cast<std::size_t>(i)].spine = i + 1;
      nodes[static_cast<std::size_t>(i)].leaf = d + i;
    }
  }
  index_t root_index() const { return 0; }
  const ChainNode& node(index_t i) const {
    return nodes[static_cast<std::size_t>(i)];
  }
};

bool tree_node_is_leaf(const ChainTree& tree, index_t n) {
  return tree.node(n).spine < 0;
}

int tree_children(const ChainTree& tree, index_t n, index_t out[8]) {
  const ChainNode& node = tree.node(n);
  if (node.spine < 0) return 0;
  out[0] = node.spine;
  out[1] = node.leaf;
  return 2;
}

struct ChainCountRules {
  std::uint64_t leaves = 0;
  bool prune_or_take(index_t) { return false; }
  void base_case(index_t) { ++leaves; }
};

TEST(SingleTraverse, DeepDegenerateTreeDoesNotOverflowStack) {
  const index_t depth = NodeFrontier::kInlineCapacity + 88; // 600-node spine
  const ChainTree tree(depth);
  ChainCountRules rules;
  const TraversalStats stats = single_traverse(tree, rules);
  // depth-1 pending leaves plus the terminal spine node.
  EXPECT_EQ(rules.leaves, static_cast<std::uint64_t>(depth));
  EXPECT_EQ(stats.base_cases, static_cast<std::uint64_t>(depth));
  EXPECT_EQ(stats.prunes, 0u);
}

TEST(CursorTraversal, FrontierSpillsOnDeepDegenerateTree) {
  const index_t depth = NodeFrontier::kInlineCapacity + 88;
  const ChainTree tree(depth);
  ChainCountRules rules;
  TraversalCursor<ChainTree, ChainCountRules> cursor(tree, rules);
  while (cursor.resume(17) != CursorState::Done) continue;
  EXPECT_TRUE(cursor.frontier().spilled());
  EXPECT_EQ(rules.leaves, static_cast<std::uint64_t>(depth));
}

TEST(SingleTraverse, DuplicateAndCollinearPointsAtLeafSizeOne) {
  // All-duplicate and all-collinear datasets at leaf_size 1: the positional
  // median split keeps even these balanced, so the descent must complete with
  // every point covered (robustness companion to the ChainTree overflow
  // regression, using the real builders end to end).
  const index_t n = 512;
  for (int shape = 0; shape < 2; ++shape) {
    std::vector<real_t> raw(static_cast<std::size_t>(n) * 3);
    for (index_t i = 0; i < n; ++i)
      for (index_t d = 0; d < 3; ++d)
        raw[static_cast<std::size_t>(i * 3 + d)] =
            shape == 0 ? real_t(1.5) : real_t(i) * (d == 0 ? 1 : 0);
    const Dataset data = Dataset::from_row_major(raw.data(), n, 3);
    std::vector<real_t> qpt(3, 0);

    const KdTree kd(data, 1);
    SingleCountRules kd_rules;
    kd_rules.tree = &kd;
    kd_rules.qpt = qpt.data();
    single_traverse(kd, kd_rules);
    EXPECT_EQ(kd_rules.points, static_cast<std::uint64_t>(n)) << "shape " << shape;

    const BallTree ball(data, 1);
    struct BallCount {
      const BallTree* tree = nullptr;
      std::uint64_t points = 0;
      bool prune_or_take(index_t) { return false; }
      void base_case(index_t node) {
        points += static_cast<std::uint64_t>(tree->node(node).count());
      }
    } ball_rules;
    ball_rules.tree = &ball;
    single_traverse(ball, ball_rules);
    EXPECT_EQ(ball_rules.points, static_cast<std::uint64_t>(n)) << "shape " << shape;
  }
}

TEST(CursorTraversal, ScoredKnnBitwiseMatchesOracleAcrossResumeGrains) {
  const Dataset query = make_gaussian_mixture(40, 3, 3, 75);
  const Dataset reference = make_gaussian_mixture(211, 3, 3, 76);
  const KdTree tree(reference, 8);
  std::vector<real_t> qpt(query.dim());

  for (const index_t grain : {index_t(1), index_t(7), index_t(64)}) {
    for (index_t i = 0; i < query.size(); ++i) {
      query.copy_point(i, qpt.data());

      SingleKnnRules oracle;
      oracle.tree = &tree;
      oracle.qpt = qpt.data();
      oracle.k = 4;
      oracle.dists.resize(tree.stats().max_leaf_count);
      const TraversalStats want = single_traverse(tree, oracle);

      SingleKnnRules rules = oracle;
      rules.best_sq.clear();
      rules.best_idx.clear();
      TraversalCursor<KdTree, SingleKnnRules> cursor(tree, rules);
      std::uint64_t resumes = 0;
      while (cursor.resume(grain) != CursorState::Done) ++resumes;
      ASSERT_TRUE(cursor.done());

      // Same visit order, same arithmetic: bitwise-identical results and
      // identical traversal counters, at every suspension granularity.
      EXPECT_EQ(rules.best_sq, oracle.best_sq) << "grain " << grain << " q " << i;
      EXPECT_EQ(rules.best_idx, oracle.best_idx) << "grain " << grain << " q " << i;
      EXPECT_EQ(cursor.stats().pairs_visited, want.pairs_visited);
      EXPECT_EQ(cursor.stats().prunes, want.prunes);
      EXPECT_EQ(cursor.stats().base_cases, want.base_cases);
      if (grain == 1 && want.pairs_visited > 1)
        EXPECT_GT(resumes, 0u) << "grain 1 must actually suspend mid-descent";
    }
  }
}

/// Unscored kd count rules (no score(): preorder, leaves ascending).
struct KdUnscoredCount {
  const KdTree* tree = nullptr;
  std::uint64_t points = 0;
  bool prune_or_take(index_t) { return false; }
  void base_case(index_t node) {
    points += static_cast<std::uint64_t>(tree->node(node).count());
  }
};

TEST(CursorTraversal, NextLeafDrainReproducesOracleInAscendingOrder) {
  const Dataset reference = make_gaussian_mixture(300, 3, 3, 77);
  const KdTree tree(reference, 16);

  KdUnscoredCount oracle;
  oracle.tree = &tree;
  const TraversalStats want = single_traverse(tree, oracle);

  KdUnscoredCount rules;
  rules.tree = &tree;
  TraversalCursor<KdTree, KdUnscoredCount> cursor(tree, rules);
  index_t prev_begin = -1;
  std::uint64_t yielded = 0;
  for (index_t leaf = cursor.next_leaf(); leaf >= 0; leaf = cursor.next_leaf()) {
    ++yielded;
    // The host caller owns the base case: run it, as a device queue would
    // consume the yielded leaf tile.
    rules.base_case(leaf);
    // Unscored descent: leaves yield in ascending permuted order (the
    // serving engine's SUM determinism relies on this).
    EXPECT_GT(tree.node(leaf).begin, prev_begin);
    prev_begin = tree.node(leaf).begin;
  }
  EXPECT_TRUE(cursor.done());
  EXPECT_EQ(yielded, want.base_cases);
  EXPECT_EQ(rules.points, oracle.points);
  EXPECT_EQ(cursor.stats().pairs_visited, want.pairs_visited);
  EXPECT_EQ(cursor.stats().base_cases, want.base_cases);
}

TEST(CursorTraversal, WorksOnOctreesAndBallTrees) {
  const ParticleSet set = make_elliptical(500, 78);
  const Octree octree(set.positions, set.masses, 8);
  struct OctCount {
    const Octree* tree = nullptr;
    std::uint64_t points = 0;
    bool prune_or_take(index_t) { return false; }
    void base_case(index_t node) {
      points += static_cast<std::uint64_t>(tree->node(node).count());
    }
  } oct_rules;
  oct_rules.tree = &octree;
  TraversalCursor<Octree, OctCount> oct_cursor(octree, oct_rules);
  while (oct_cursor.resume(9) != CursorState::Done) continue;
  EXPECT_EQ(oct_rules.points, static_cast<std::uint64_t>(set.positions.size()));

  const Dataset data = make_gaussian_mixture(400, 3, 3, 79);
  const BallTree ball(data, 8);
  struct BallCount {
    const BallTree* tree = nullptr;
    std::uint64_t points = 0;
    bool prune_or_take(index_t) { return false; }
    void base_case(index_t node) {
      points += static_cast<std::uint64_t>(tree->node(node).count());
    }
  } ball_rules;
  ball_rules.tree = &ball;
  TraversalCursor<BallTree, BallCount> ball_cursor(ball, ball_rules);
  while (ball_cursor.resume(9) != CursorState::Done) continue;
  EXPECT_EQ(ball_rules.points, static_cast<std::uint64_t>(data.size()));
}

TEST(CursorTraversal, ReentrantAcrossThreads) {
  const Dataset query = make_gaussian_mixture(8, 3, 3, 80);
  const Dataset reference = make_gaussian_mixture(257, 3, 3, 81);
  const KdTree tree(reference, 8); // shared, immutable

  std::vector<std::thread> threads;
  std::vector<int> ok(static_cast<std::size_t>(query.size()), 0);
  for (index_t t = 0; t < query.size(); ++t) {
    threads.emplace_back([&, t] {
      std::vector<real_t> qpt(query.dim());
      query.copy_point(t, qpt.data());

      SingleKnnRules oracle;
      oracle.tree = &tree;
      oracle.qpt = qpt.data();
      oracle.k = 3;
      oracle.dists.resize(tree.stats().max_leaf_count);
      single_traverse(tree, oracle);

      SingleKnnRules rules = oracle;
      rules.best_sq.clear();
      rules.best_idx.clear();
      TraversalCursor<KdTree, SingleKnnRules> cursor(tree, rules);
      while (cursor.resume(5) != CursorState::Done) continue;
      ok[static_cast<std::size_t>(t)] =
          rules.best_sq == oracle.best_sq && rules.best_idx == oracle.best_idx;
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (index_t t = 0; t < query.size(); ++t)
    EXPECT_TRUE(ok[static_cast<std::size_t>(t)]) << "thread " << t;
}

} // namespace
} // namespace portal
