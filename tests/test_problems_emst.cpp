// Tests for the Euclidean minimum spanning tree: dual-tree Boruvka must match
// Prim's oracle in total weight, produce a real spanning tree, and prune.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "data/generators.h"
#include "problems/emst.h"

namespace portal {
namespace {

/// Union-find for spanning-tree validation.
struct Dsu {
  std::vector<index_t> parent;
  explicit Dsu(index_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  index_t find(index_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  bool unite(index_t a, index_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent[b] = a;
    return true;
  }
};

void expect_valid_spanning_tree(const EmstResult& result, const Dataset& data) {
  const index_t n = data.size();
  ASSERT_EQ(result.edges.size(), static_cast<std::size_t>(n - 1));
  Dsu dsu(n);
  real_t weight = 0;
  for (const EmstEdge& e : result.edges) {
    ASSERT_GE(e.a, 0);
    ASSERT_LT(e.a, n);
    ASSERT_GE(e.b, 0);
    ASSERT_LT(e.b, n);
    ASSERT_NE(e.a, e.b);
    EXPECT_TRUE(dsu.unite(e.a, e.b)) << "cycle edge " << e.a << "-" << e.b;
    // Edge weight equals the actual point distance.
    real_t sq = 0;
    for (index_t d = 0; d < data.dim(); ++d) {
      const real_t diff = data.coord(e.a, d) - data.coord(e.b, d);
      sq += diff * diff;
    }
    EXPECT_NEAR(e.weight * e.weight, sq, 1e-9 * std::max(real_t(1), sq));
    weight += e.weight;
  }
  EXPECT_NEAR(weight, result.total_weight, 1e-9 * std::max(real_t(1), weight));
}

class EmstSweep
    : public testing::TestWithParam<std::tuple<index_t, index_t, index_t, bool>> {};

TEST_P(EmstSweep, MatchesPrimWeight) {
  const auto [n, dim, leaf_size, parallel] = GetParam();
  const Dataset data = make_gaussian_mixture(n, dim, 3, 800 + n + dim);
  const EmstResult prim = emst_bruteforce(data);
  EmstOptions options;
  options.leaf_size = leaf_size;
  options.parallel = parallel;
  const EmstResult boruvka = emst_expert(data, options);

  expect_valid_spanning_tree(boruvka, data);
  // MST weight is unique even when the MST itself is not.
  EXPECT_NEAR(boruvka.total_weight, prim.total_weight,
              1e-7 * std::max(real_t(1), prim.total_weight));
  EXPECT_GE(boruvka.boruvka_rounds, 1);
  // Boruvka halves components every round: <= ceil(log2 n) + slack.
  index_t log2n = 0;
  while ((index_t(1) << log2n) < n) ++log2n;
  EXPECT_LE(boruvka.boruvka_rounds, log2n + 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EmstSweep,
    testing::Values(std::make_tuple(10, 2, 4, false),
                    std::make_tuple(100, 2, 8, false),
                    std::make_tuple(300, 3, 16, false),
                    std::make_tuple(300, 3, 16, true),
                    std::make_tuple(500, 5, 32, false),
                    std::make_tuple(64, 1, 8, false),
                    std::make_tuple(701, 4, 8, true)));

TEST(Emst, TwoPoints) {
  const Dataset data = Dataset::from_points({{0, 0}, {3, 4}});
  const EmstResult result = emst_expert(data, {});
  ASSERT_EQ(result.edges.size(), 1u);
  EXPECT_NEAR(result.total_weight, 5.0, 1e-12);
}

TEST(Emst, CollinearChain) {
  // Points on a line: MST weight = span.
  std::vector<std::vector<real_t>> points;
  for (int i = 0; i < 20; ++i) points.push_back({static_cast<real_t>(i * i)});
  const Dataset data = Dataset::from_points(points);
  const EmstResult result = emst_expert(data, {});
  EXPECT_NEAR(result.total_weight, 19.0 * 19.0, 1e-9); // sum of consecutive gaps
}

TEST(Emst, RejectsTooFewPoints) {
  const Dataset one = Dataset::from_points({{1.0, 2.0}});
  EXPECT_THROW(emst_expert(one, {}), std::invalid_argument);
  EXPECT_THROW(emst_bruteforce(one), std::invalid_argument);
}

TEST(Emst, ComponentPruneFiresOnClusteredData) {
  const Dataset data = make_gaussian_mixture(2000, 3, 6, 81);
  EmstOptions options;
  options.parallel = false;
  const EmstResult result = emst_expert(data, options);
  EXPECT_GT(result.stats.prunes, 0u);
  expect_valid_spanning_tree(result, data);
}

} // namespace
} // namespace portal
