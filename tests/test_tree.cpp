// Tests for src/tree: bounding-box geometry, kd-tree invariants (TEST_P
// sweeps over sizes / dims / leaf sizes), and octree invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

#include "data/generators.h"
#include "tree/balltree.h"
#include "tree/bbox.h"
#include "tree/kdtree.h"
#include "tree/octree.h"
#include "util/rng.h"
#include "util/threading.h"

namespace portal {
namespace {

TEST(BBox, IncludeAndExtents) {
  BBox box(2);
  const real_t p1[2] = {1, 5};
  const real_t p2[2] = {3, -1};
  box.include_point(p1);
  box.include_point(p2);
  EXPECT_DOUBLE_EQ(box.lo(0), 1);
  EXPECT_DOUBLE_EQ(box.hi(0), 3);
  EXPECT_DOUBLE_EQ(box.lo(1), -1);
  EXPECT_DOUBLE_EQ(box.hi(1), 5);
  EXPECT_EQ(box.widest_dim(), 1);
  EXPECT_DOUBLE_EQ(box.widest_extent(), 6);
  EXPECT_DOUBLE_EQ(box.center(0), 2);
  EXPECT_DOUBLE_EQ(box.sq_diagonal(), 4 + 36);
  EXPECT_TRUE(box.contains(p1));
  const real_t outside[2] = {0, 0};
  EXPECT_FALSE(box.contains(outside));
}

TEST(BBox, BoxToBoxDistances) {
  BBox a(2), b(2), c(2);
  const real_t a1[2] = {0, 0}, a2[2] = {1, 1};
  const real_t b1[2] = {3, 0}, b2[2] = {4, 1};
  const real_t c1[2] = {0.5, 0.5}, c2[2] = {2, 2};
  a.include_point(a1);
  a.include_point(a2);
  b.include_point(b1);
  b.include_point(b2);
  c.include_point(c1);
  c.include_point(c2);
  // a and b separated by 2 along x only.
  EXPECT_DOUBLE_EQ(a.min_sq_dist(b), 4);
  EXPECT_DOUBLE_EQ(a.max_sq_dist(b), 16 + 1);
  EXPECT_DOUBLE_EQ(a.min_dist_l1(b), 2);
  EXPECT_DOUBLE_EQ(a.max_dist_l1(b), 5);
  EXPECT_DOUBLE_EQ(a.min_dist_linf(b), 2);
  EXPECT_DOUBLE_EQ(a.max_dist_linf(b), 4);
  // Overlapping boxes: zero min distance.
  EXPECT_DOUBLE_EQ(a.min_sq_dist(c), 0);
  EXPECT_DOUBLE_EQ(a.min_sq_dist(a), 0);
}

TEST(BBox, PointDistances) {
  BBox box(2);
  const real_t p1[2] = {0, 0}, p2[2] = {2, 2};
  box.include_point(p1);
  box.include_point(p2);
  const real_t inside[2] = {1, 1};
  const real_t outside[2] = {4, 1};
  EXPECT_DOUBLE_EQ(box.min_sq_dist_point(inside), 0);
  EXPECT_DOUBLE_EQ(box.min_sq_dist_point(outside), 4);
  // Farthest corner from (4, 1) is (0, 0) or (0, 2): 16 + 1.
  EXPECT_DOUBLE_EQ(box.max_sq_dist_point(outside), 16 + 1);
}

/// Property: box-to-box bounds sandwich the true distance of any pair of
/// contained points, for every metric.
TEST(BBox, BoundsSandwichPointDistances) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const index_t dim = 1 + static_cast<index_t>(rng.uniform_index(6));
    BBox a(dim), b(dim);
    std::vector<std::vector<real_t>> pa(5, std::vector<real_t>(dim));
    std::vector<std::vector<real_t>> pb(5, std::vector<real_t>(dim));
    for (auto& p : pa) {
      for (auto& v : p) v = rng.uniform(-3, 1);
      a.include_point(p.data());
    }
    for (auto& p : pb) {
      for (auto& v : p) v = rng.uniform(0, 4);
      b.include_point(p.data());
    }
    for (MetricKind kind : {MetricKind::SqEuclidean, MetricKind::Manhattan,
                            MetricKind::Chebyshev, MetricKind::Euclidean}) {
      const real_t lo = a.min_dist(kind, b);
      const real_t hi = a.max_dist(kind, b);
      for (const auto& x : pa)
        for (const auto& y : pb) {
          const real_t d =
              point_distance(kind, x.data(), 1, y.data(), 1, dim);
          EXPECT_GE(d, lo - 1e-9);
          EXPECT_LE(d, hi + 1e-9);
        }
    }
  }
}

// ---------------------------------------------------------------------------
// kd-tree invariants, swept over (n, dim, leaf_size).
class KdTreeInvariants
    : public testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {};

TEST_P(KdTreeInvariants, StructureIsValid) {
  const auto [n, dim, leaf_size] = GetParam();
  const Dataset data = make_gaussian_mixture(n, dim, 4, 77);
  const KdTree tree(data, leaf_size);

  // Permutation is a bijection.
  std::vector<index_t> seen(n, 0);
  for (index_t p : tree.perm()) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, n);
    ++seen[p];
  }
  for (index_t count : seen) EXPECT_EQ(count, 1);
  for (index_t i = 0; i < n; ++i)
    EXPECT_EQ(tree.inverse_perm()[tree.perm()[i]], i);

  // Permuted data holds the same points.
  for (index_t i = 0; i < n; ++i)
    for (index_t d = 0; d < dim; ++d)
      EXPECT_DOUBLE_EQ(tree.data().coord(i, d), data.coord(tree.perm()[i], d));

  // Root covers everything; children partition parents; leaves respect q.
  EXPECT_EQ(tree.root().begin, 0);
  EXPECT_EQ(tree.root().end, n);
  index_t leaf_point_total = 0;
  for (index_t i = 0; i < tree.num_nodes(); ++i) {
    const KdNode& node = tree.node(i);
    ASSERT_LT(node.begin, node.end);
    if (node.is_leaf()) {
      EXPECT_LE(node.count(), leaf_size);
      leaf_point_total += node.count();
    } else {
      const KdNode& l = tree.node(node.left);
      const KdNode& r = tree.node(node.right);
      EXPECT_EQ(l.begin, node.begin);
      EXPECT_EQ(l.end, r.begin);
      EXPECT_EQ(r.end, node.end);
      EXPECT_EQ(l.parent, i);
      EXPECT_EQ(r.parent, i);
      EXPECT_EQ(l.depth, node.depth + 1);
      // Median split: halves sized within one point of each other.
      EXPECT_LE(std::abs(l.count() - r.count()), 1);
    }
    // Bounding boxes tight: every point inside.
    for (index_t p = node.begin; p < node.end; ++p) {
      std::vector<real_t> pt(dim);
      tree.data().copy_point(p, pt.data());
      EXPECT_TRUE(node.box.contains(pt.data()));
    }
  }
  EXPECT_EQ(leaf_point_total, n); // leaves partition the whole set
  EXPECT_EQ(tree.stats().num_leaves + (tree.num_nodes() - tree.stats().num_leaves),
            tree.num_nodes());
  EXPECT_GT(tree.stats().build_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeInvariants,
    testing::Values(std::make_tuple(1, 2, 8), std::make_tuple(7, 1, 1),
                    std::make_tuple(100, 3, 8), std::make_tuple(1000, 2, 32),
                    std::make_tuple(1000, 10, 16), std::make_tuple(257, 5, 4),
                    std::make_tuple(4096, 3, 64)));

TEST(KdTree, HandlesDuplicatePoints) {
  // All-identical points must not hang the splitter.
  std::vector<std::vector<real_t>> points(100, {1.0, 2.0, 3.0});
  const Dataset data = Dataset::from_points(points);
  const KdTree tree(data, 8);
  EXPECT_GT(tree.num_nodes(), 1);
  for (index_t i = 0; i < tree.num_nodes(); ++i) {
    if (tree.node(i).is_leaf()) {
      EXPECT_LE(tree.node(i).count(), 8);
    }
  }
}

TEST(KdTree, RejectsBadLeafSize) {
  const Dataset data = make_uniform(10, 2, 1);
  EXPECT_THROW(KdTree(data, 0), std::invalid_argument);
}

TEST(KdTree, DepthIsLogarithmic) {
  const Dataset data = make_uniform(10000, 3, 9);
  const KdTree tree(data, 16);
  // Median splits: height <= ceil(log2(n / leaf)) + 1 ~ 11.
  EXPECT_LE(tree.stats().height, 13);
}

// ---------------------------------------------------------------------------
// Parallel build determinism: the task-parallel build must produce a tree
// bit-for-bit identical to the serial build (node indices are preorder
// positions computed from subtree sizes alone; nth_element runs on identical
// subrange contents either way).

void ExpectIdenticalKdTrees(const KdTree& serial, const KdTree& parallel) {
  ASSERT_EQ(serial.num_nodes(), parallel.num_nodes());
  EXPECT_EQ(serial.perm(), parallel.perm());
  EXPECT_EQ(serial.inverse_perm(), parallel.inverse_perm());
  for (index_t i = 0; i < serial.num_nodes(); ++i) {
    const KdNode& a = serial.node(i);
    const KdNode& b = parallel.node(i);
    EXPECT_EQ(a.begin, b.begin) << "node " << i;
    EXPECT_EQ(a.end, b.end) << "node " << i;
    EXPECT_EQ(a.left, b.left) << "node " << i;
    EXPECT_EQ(a.right, b.right) << "node " << i;
    EXPECT_EQ(a.parent, b.parent) << "node " << i;
    EXPECT_EQ(a.depth, b.depth) << "node " << i;
    for (index_t d = 0; d < a.box.dim(); ++d) {
      EXPECT_EQ(a.box.lo(d), b.box.lo(d)) << "node " << i << " dim " << d;
      EXPECT_EQ(a.box.hi(d), b.box.hi(d)) << "node " << i << " dim " << d;
    }
  }
  EXPECT_EQ(serial.stats().num_nodes, parallel.stats().num_nodes);
  EXPECT_EQ(serial.stats().num_leaves, parallel.stats().num_leaves);
  EXPECT_EQ(serial.stats().height, parallel.stats().height);
  EXPECT_EQ(serial.stats().max_leaf_count, parallel.stats().max_leaf_count);
}

TEST(KdTreeParallelBuild, DegenerateInputsMatchSerial) {
  set_num_threads(4); // the task path needs >1 configured threads
  // All-duplicate points (nth_element on all-equal keys), large enough that
  // the parallel path actually spawns tasks.
  {
    std::vector<std::vector<real_t>> points(20000, {1.0, 2.0, 3.0});
    const Dataset data = Dataset::from_points(points);
    const KdTree serial(data, 8, /*parallel_build=*/false);
    const KdTree parallel(data, 8, /*parallel_build=*/true);
    ExpectIdenticalKdTrees(serial, parallel);
  }
  // n < leaf_size: single leaf either way.
  {
    const Dataset data = make_uniform(5, 3, 21);
    const KdTree serial(data, 8, false);
    const KdTree parallel(data, 8, true);
    ASSERT_EQ(parallel.num_nodes(), 1);
    EXPECT_TRUE(parallel.root().is_leaf());
    ExpectIdenticalKdTrees(serial, parallel);
  }
  // n = 0: empty tree, no nodes, no crash.
  {
    const Dataset data(0, 3);
    const KdTree serial(data, 8, false);
    const KdTree parallel(data, 8, true);
    EXPECT_EQ(parallel.num_nodes(), 0);
    EXPECT_TRUE(parallel.perm().empty());
    ExpectIdenticalKdTrees(serial, parallel);
  }
}

TEST(KdTreeParallelBuild, LargeRandomMatchesSerial) {
  set_num_threads(4);
  const Dataset data = make_gaussian_mixture(20000, 3, 4, 33);
  const KdTree serial(data, 16, false);
  const KdTree parallel(data, 16, true);
  ExpectIdenticalKdTrees(serial, parallel);
}

TEST(BallTreeParallelBuild, MatchesSerial) {
  set_num_threads(4);
  const Dataset data = make_gaussian_mixture(20000, 3, 4, 34);
  const BallTree serial(data, 16, false);
  const BallTree parallel(data, 16, true);
  ASSERT_EQ(serial.num_nodes(), parallel.num_nodes());
  EXPECT_EQ(serial.perm(), parallel.perm());
  for (index_t i = 0; i < serial.num_nodes(); ++i) {
    const BallNode& a = serial.node(i);
    const BallNode& b = parallel.node(i);
    EXPECT_EQ(a.begin, b.begin) << "node " << i;
    EXPECT_EQ(a.left, b.left) << "node " << i;
    EXPECT_EQ(a.right, b.right) << "node " << i;
    EXPECT_EQ(a.box.radius(), b.box.radius()) << "node " << i;
    for (index_t d = 0; d < a.box.dim(); ++d)
      EXPECT_EQ(a.box.center(d), b.box.center(d)) << "node " << i;
  }
}

// ---------------------------------------------------------------------------
// Octree invariants.
class OctreeInvariants : public testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(OctreeInvariants, StructureIsValid) {
  const auto [n, leaf_size] = GetParam();
  const ParticleSet set = make_elliptical(n, 31);
  const Octree tree(set.positions, set.masses, leaf_size);

  // Permutation bijection and mass alignment.
  std::vector<index_t> seen(n, 0);
  for (index_t p : tree.perm()) ++seen[p];
  for (index_t c : seen) EXPECT_EQ(c, 1);
  for (index_t i = 0; i < n; ++i)
    EXPECT_DOUBLE_EQ(tree.masses()[i], set.masses[tree.perm()[i]]);

  real_t root_mass = 0;
  for (real_t m : set.masses) root_mass += m;
  EXPECT_NEAR(tree.node(tree.root_index()).mass, root_mass, 1e-9);

  for (index_t i = 0; i < tree.num_nodes(); ++i) {
    const OctreeNode& node = tree.node(i);
    ASSERT_LT(node.begin, node.end);
    // Center of mass equals the mass-weighted mean of contained particles.
    real_t com[3] = {0, 0, 0};
    real_t mass = 0;
    for (index_t p = node.begin; p < node.end; ++p) {
      mass += tree.masses()[p];
      for (int d = 0; d < 3; ++d)
        com[d] += tree.masses()[p] * tree.positions().coord(p, d);
    }
    EXPECT_NEAR(node.mass, mass, 1e-12);
    for (int d = 0; d < 3; ++d)
      EXPECT_NEAR(node.com[d], com[d] / mass, 1e-9);

    if (!node.is_leaf()) { // NOLINT
      // Children partition the node's range.
      index_t covered = 0;
      for (index_t child : node.children) {
        if (child < 0) continue;
        const OctreeNode& cn = tree.node(child);
        covered += cn.count();
        EXPECT_GE(cn.begin, node.begin);
        EXPECT_LE(cn.end, node.end);
        EXPECT_DOUBLE_EQ(cn.half_width, node.half_width / 2);
      }
      EXPECT_EQ(covered, node.count());
    } else if (node.depth < 60) {
      EXPECT_LE(node.count(), leaf_size);
    }
    // Particles inside the cell cube.
    for (index_t p = node.begin; p < node.end; ++p)
      for (int d = 0; d < 3; ++d) {
        EXPECT_GE(tree.positions().coord(p, d),
                  node.center[d] - node.half_width - 1e-9);
        EXPECT_LE(tree.positions().coord(p, d),
                  node.center[d] + node.half_width + 1e-9);
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OctreeInvariants,
                         testing::Values(std::make_tuple(1, 8),
                                         std::make_tuple(100, 4),
                                         std::make_tuple(2000, 16),
                                         std::make_tuple(5000, 1)));

TEST(Octree, RejectsNon3D) {
  const Dataset data = make_uniform(10, 2, 1);
  EXPECT_THROW(Octree(data, std::vector<real_t>(10, 1.0)), std::invalid_argument);
}

TEST(Octree, RejectsMassMismatch) {
  const Dataset data = make_uniform(10, 3, 1);
  EXPECT_THROW(Octree(data, std::vector<real_t>(9, 1.0)), std::invalid_argument);
}

TEST(Octree, HandlesCoincidentParticles) {
  std::vector<std::vector<real_t>> points(50, {0.5, 0.5, 0.5});
  const Dataset data = Dataset::from_points(points);
  const Octree tree(data, std::vector<real_t>(50, 1.0), 4);
  EXPECT_GE(tree.num_nodes(), 1);
  EXPECT_NEAR(tree.node(0).mass, 50.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Octree parallel-build determinism (mirrors the kd/ball coverage above):
// `parallel_build` only parallelizes the materialization phase, so parallel
// and serial builds must be bit-identical in every observable field.
// ---------------------------------------------------------------------------

void ExpectIdenticalOctrees(const Octree& serial, const Octree& parallel) {
  ASSERT_EQ(serial.num_nodes(), parallel.num_nodes());
  EXPECT_EQ(serial.perm(), parallel.perm());
  EXPECT_EQ(serial.inverse_perm(), parallel.inverse_perm());
  EXPECT_EQ(serial.height(), parallel.height());
  EXPECT_EQ(serial.masses(), parallel.masses());
  for (index_t i = 0; i < serial.num_nodes(); ++i) {
    const OctreeNode& a = serial.node(i);
    const OctreeNode& b = parallel.node(i);
    EXPECT_EQ(a.begin, b.begin) << "node " << i;
    EXPECT_EQ(a.end, b.end) << "node " << i;
    EXPECT_EQ(a.leaf, b.leaf) << "node " << i;
    EXPECT_EQ(a.depth, b.depth) << "node " << i;
    EXPECT_EQ(a.mass, b.mass) << "node " << i;
    EXPECT_EQ(a.half_width, b.half_width) << "node " << i;
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(a.center[d], b.center[d]) << "node " << i << " dim " << d;
      EXPECT_EQ(a.com[d], b.com[d]) << "node " << i << " dim " << d;
    }
    for (int c = 0; c < 8; ++c)
      EXPECT_EQ(a.children[c], b.children[c]) << "node " << i << " child " << c;
    if (a.count() > 0) {
      for (index_t d = 0; d < 3; ++d) {
        EXPECT_EQ(a.box.lo(d), b.box.lo(d)) << "node " << i << " dim " << d;
        EXPECT_EQ(a.box.hi(d), b.box.hi(d)) << "node " << i << " dim " << d;
      }
    }
  }
  const index_t n = serial.positions().size();
  ASSERT_EQ(n, parallel.positions().size());
  for (index_t i = 0; i < n; ++i)
    for (index_t d = 0; d < 3; ++d)
      EXPECT_EQ(serial.positions().coord(i, d), parallel.positions().coord(i, d))
          << "point " << i << " dim " << d;
}

TEST(OctreeParallelBuild, LargeRandomMatchesSerial) {
  set_num_threads(4);
  const Dataset data = make_gaussian_mixture(40000, 3, 4, 35);
  std::vector<real_t> masses(40000);
  for (index_t i = 0; i < 40000; ++i) masses[i] = 0.5 + (i % 7) * 0.25;
  const Octree serial(data, masses, 16, /*parallel_build=*/false);
  const Octree parallel(data, masses, 16, /*parallel_build=*/true);
  ExpectIdenticalOctrees(serial, parallel);
}

TEST(OctreeParallelBuild, DegenerateInputsMatchSerial) {
  set_num_threads(4);
  // All-duplicate points, large enough (>= 1<<15) that the parallelized
  // materialization actually kicks in. The depth cap stops the recursion.
  {
    std::vector<std::vector<real_t>> points(40000, {1.0, 2.0, 3.0});
    const Dataset data = Dataset::from_points(points);
    const std::vector<real_t> masses(40000, 1.0);
    const Octree serial(data, masses, 8, false);
    const Octree parallel(data, masses, 8, true);
    ExpectIdenticalOctrees(serial, parallel);
  }
  // n < leaf_size: single leaf either way.
  {
    const Dataset data = make_uniform(5, 3, 22);
    const std::vector<real_t> masses(5, 1.0);
    const Octree serial(data, masses, 8, false);
    const Octree parallel(data, masses, 8, true);
    ASSERT_EQ(parallel.num_nodes(), 1);
    EXPECT_TRUE(parallel.node(0).is_leaf());
    ExpectIdenticalOctrees(serial, parallel);
  }
  // n = 0: no nodes, empty perm, no crash.
  {
    const Dataset data(0, 3);
    const std::vector<real_t> masses;
    const Octree serial(data, masses, 8, false);
    const Octree parallel(data, masses, 8, true);
    EXPECT_EQ(parallel.num_nodes(), 0);
    EXPECT_TRUE(parallel.perm().empty());
    ExpectIdenticalOctrees(serial, parallel);
  }
}

} // namespace
} // namespace portal
