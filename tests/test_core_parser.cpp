// Tests for the Appendix-VIII script parser: the paper's grammar parsed,
// compiled, and executed end-to-end, plus error reporting quality.
#include <gtest/gtest.h>

#include <cmath>

#include "core/parser.h"
#include "data/generators.h"
#include "problems/knn.h"
#include "problems/twopoint.h"

namespace portal {
namespace {

TEST(Parser, KnnScriptEndToEnd) {
  const char* script = R"(
    # the paper's code-1 k-NN program in script form
    Storage query = demo(200, 3);
    Storage reference = demo(500, 3);
    PortalExpr expr;
    set leaf_size = 16;
    expr.addLayer(FORALL, query);
    expr.addLayer(KARGMIN(5), reference, EUCLIDEAN);
    expr.execute();
  )";
  const ParsedProgram program = run_portal_script(script);
  ASSERT_TRUE(program.executed);
  Storage out = program.expr->getOutput();
  ASSERT_EQ(out.rows(), 200);
  ASSERT_EQ(out.cols(), 5);

  // Oracle against the same demo data (the generator seed derives from the
  // storage name, so rebuild the exact datasets).
  const KnnResult brute =
      knn_bruteforce(program.storages.at("query").dataset(),
                     program.storages.at("reference").dataset(), 5);
  for (index_t i = 0; i < out.rows(); ++i)
    for (index_t j = 0; j < 5; ++j)
      EXPECT_NEAR(out.value(i, j), brute.distances[i * 5 + j], 1e-9);
}

TEST(Parser, CustomKernelScript) {
  const char* script = R"(
    Storage query = demo(100, 4);
    Storage reference = demo(250, 4);
    Var q;
    Var r;
    Expr EuclidDist = sqrt(pow(q - r, 2));
    PortalExpr expr;
    expr.addLayer(FORALL, q, query);
    expr.addLayer(ARGMIN, r, reference, EuclidDist);
    expr.execute();
  )";
  const ParsedProgram program = run_portal_script(script);
  Storage out = program.expr->getOutput();
  const KnnResult brute =
      knn_bruteforce(program.storages.at("query").dataset(),
                     program.storages.at("reference").dataset(), 1);
  for (index_t i = 0; i < out.rows(); ++i) {
    EXPECT_NEAR(out.value(i), brute.distances[i], 1e-9);
    EXPECT_EQ(out.index_at(i), brute.indices[i]);
  }
}

TEST(Parser, TwoPointScriptWithInlineIndicator) {
  const char* script = R"(
    Storage data = demo(300, 3);
    Var i;
    Var j;
    PortalExpr expr;
    set engine = vm;
    set parallel = 0;
    expr.addLayer(SUM, i, data);
    expr.addLayer(SUM, j, data, sqrt(pow(i - j, 2)) < 1.5);
    expr.execute();
  )";
  const ParsedProgram program = run_portal_script(script);
  ASSERT_TRUE(program.expr->getOutput().has_scalar());
  const TwoPointResult brute =
      twopoint_bruteforce(program.storages.at("data").dataset(), 1.5);
  EXPECT_DOUBLE_EQ(program.expr->getOutput().scalar(),
                   2.0 * static_cast<double>(brute.pairs) + 300);
}

TEST(Parser, GaussianKdeScriptWithConfig) {
  const char* script = R"(
    Storage data = demo(400, 3);
    PortalExpr expr;
    set tau = 0.001;
    expr.addLayer(FORALL, data);
    expr.addLayer(SUM, data, GAUSSIAN(1.0));
    expr.execute();
  )";
  const ParsedProgram program = run_portal_script(script);
  EXPECT_EQ(program.config.tau, 0.001);
  Storage out = program.expr->getOutput();
  EXPECT_EQ(out.rows(), 400);
  for (index_t i = 0; i < out.rows(); ++i) EXPECT_GE(out.value(i), 1.0 - 1e-3);
}

TEST(Parser, ExpressionPrecedence) {
  // 1 + 2 * 3 must parse as 7, and parentheses must override.
  const char* script = R"(
    Storage a = demo(10, 2);
    Storage b = demo(10, 2);
    Var q;
    Var r;
    Expr k = sqrt(pow(q - r, 2)) * 2 + 1;
    PortalExpr expr;
    expr.addLayer(FORALL, q, a);
    expr.addLayer(MIN, r, b, k);
    expr.execute();
  )";
  const ParsedProgram program = run_portal_script(script);
  const KnnResult brute = knn_bruteforce(program.storages.at("a").dataset(),
                                         program.storages.at("b").dataset(), 1);
  Storage out = program.expr->getOutput();
  for (index_t i = 0; i < out.rows(); ++i)
    EXPECT_NEAR(out.value(i), brute.distances[i] * 2 + 1, 1e-9);
}

TEST(Parser, ErrorsCarryLineContext) {
  const auto expect_error = [](const char* script, const char* fragment) {
    try {
      run_portal_script(script);
      FAIL() << "expected parse error for: " << script;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("portal script:"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_error("Storage s = ;", "Storage needs");
  expect_error("Var ;", "variable name");
  expect_error("bogus statement;", "unknown object");
  expect_error("Storage s = demo(10); PortalExpr e; e.addLayer(WAT, s);",
               "unknown operator");
  expect_error("Storage s = demo(10); PortalExpr e; e.frobnicate();",
               "unknown method");
  expect_error(R"(
    Storage s = demo(10);
    PortalExpr e;
    e.addLayer(FORALL, nope);
  )", "unknown Storage");
  expect_error("Expr e = sqrt(;", "expected an expression");
  expect_error("set wat = 3;", "unknown config key");
  expect_error("Storage s = \"unterminated", "unterminated string");
}

TEST(Parser, SingleExprRule) {
  const char* script = R"(
    Storage s = demo(10, 2);
    PortalExpr a;
    PortalExpr b;
  )";
  EXPECT_THROW(run_portal_script(script), std::invalid_argument);
}

TEST(Parser, UnexecutedScriptParses) {
  const char* script = R"(
    Storage s = demo(50, 2);
    PortalExpr e;
    e.addLayer(FORALL, s);
    e.addLayer(ARGMIN, s, EUCLIDEAN);
  )";
  const ParsedProgram program = run_portal_script(script);
  EXPECT_FALSE(program.executed);
  EXPECT_THROW(program.expr->getOutput(), std::logic_error);
}

} // namespace
} // namespace portal
