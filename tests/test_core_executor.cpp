// Tests for the generic execution engine across the full operator algebra:
// every inner reduction kind, max-like sense handling, UNION value
// collection, scalar outer reductions over each inner kind, Mahalanobis
// pruning bounds, and the label-exclusion constraint -- each checked against
// the compiler's own brute-force program or a hand progress oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/portal.h"
#include "data/generators.h"
#include "problems/knn.h"

namespace portal {
namespace {

PortalConfig vm_config() {
  PortalConfig config;
  config.parallel = false;
  config.engine = Engine::VM;
  return config;
}

/// Kernel values for query i against every reference point (oracle helper).
std::vector<real_t> kernel_row(const Dataset& q, const Dataset& r, index_t i,
                               const std::function<real_t(real_t)>& env) {
  std::vector<real_t> out(r.size());
  for (index_t j = 0; j < r.size(); ++j) {
    real_t sq = 0;
    for (index_t d = 0; d < q.dim(); ++d) {
      const real_t diff = q.coord(i, d) - r.coord(j, d);
      sq += diff * diff;
    }
    out[j] = env(std::sqrt(sq));
  }
  return out;
}

TEST(Executor, KmaxFindsLargestDistances) {
  const Dataset qd = make_gaussian_mixture(60, 3, 2, 1);
  const Dataset rd = make_gaussian_mixture(120, 3, 2, 2);
  Storage query(qd), reference(rd);

  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, query);
  expr.addLayer({PortalOp::KMAX, 3}, reference, PortalFunc::EUCLIDEAN);
  expr.execute(vm_config());
  Storage out = expr.getOutput();

  for (index_t i = 0; i < qd.size(); ++i) {
    std::vector<real_t> row = kernel_row(qd, rd, i, [](real_t d) { return d; });
    std::sort(row.rbegin(), row.rend());
    for (index_t j = 0; j < 3; ++j)
      EXPECT_NEAR(out.value(i, j), row[j], 1e-9) << i << "," << j;
    // Descending magnitudes reported largest-first.
    EXPECT_GE(out.value(i, 0), out.value(i, 2));
  }
}

TEST(Executor, KargmaxIndicesAreFarthestPoints) {
  const Dataset qd = make_gaussian_mixture(40, 2, 2, 3);
  const Dataset rd = make_gaussian_mixture(90, 2, 2, 4);
  Storage query(qd), reference(rd);

  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, query);
  expr.addLayer({PortalOp::KARGMAX, 2}, reference, PortalFunc::EUCLIDEAN);
  expr.execute(vm_config());
  Storage out = expr.getOutput();
  ASSERT_TRUE(out.has_indices());

  for (index_t i = 0; i < qd.size(); ++i) {
    const std::vector<real_t> row =
        kernel_row(qd, rd, i, [](real_t d) { return d; });
    const index_t argmax =
        std::max_element(row.begin(), row.end()) - row.begin();
    EXPECT_EQ(out.index_at(i, 0), argmax);
    EXPECT_NEAR(out.value(i, 0), row[argmax], 1e-9);
  }
}

TEST(Executor, ProdReduction) {
  // prod_r K(q, r) with a Gaussian kernel: strictly positive, <= 1 per term.
  const Dataset qd = make_uniform(20, 2, 5);
  const Dataset rd = make_uniform(15, 2, 6);
  Storage query(qd), reference(rd);

  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, query);
  expr.addLayer(PortalOp::PROD, reference, PortalFunc::gaussian(2.0));
  PortalConfig config = vm_config();
  config.tau = 0;
  expr.execute(config);
  Storage out = expr.getOutput();

  for (index_t i = 0; i < qd.size(); ++i) {
    const std::vector<real_t> row = kernel_row(
        qd, rd, i, [](real_t d) { return std::exp(-d * d / 8.0); });
    real_t expected = 1;
    for (real_t v : row) expected *= v;
    EXPECT_NEAR(out.value(i), expected,
                1e-9 * std::max(expected, real_t(1e-30)));
  }
}

TEST(Executor, UnionCollectsKernelValues) {
  // UNION keeps (value, index) pairs where the kernel is non-zero.
  const Dataset qd = make_gaussian_mixture(30, 2, 2, 7);
  Storage data(qd);
  Var q, r;
  const Expr d = sqrt(pow(Expr(q) - Expr(r), 2));

  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, q, data);
  expr.addLayer(PortalOp::UNION, r, data, (d < Expr(1.0)) * d);
  expr.execute(vm_config());
  Storage out = expr.getOutput();
  ASSERT_TRUE(out.has_lists());

  for (index_t i = 0; i < qd.size(); ++i) {
    const std::vector<real_t> row =
        kernel_row(qd, qd, i, [](real_t dd) { return dd < 1.0 ? dd : 0.0; });
    index_t nonzero = 0;
    for (real_t v : row)
      if (v != 0) ++nonzero;
    ASSERT_EQ(out.list_size(i), nonzero) << "query " << i;
  }
}

TEST(Executor, ScalarOuterReductions) {
  const Dataset qd = make_gaussian_mixture(80, 3, 2, 8);
  const Dataset rd = make_gaussian_mixture(60, 3, 2, 9);
  Storage a(qd), b(rd);

  // Oracle: per-query nearest distance.
  std::vector<real_t> nn(qd.size());
  for (index_t i = 0; i < qd.size(); ++i) {
    const std::vector<real_t> row =
        kernel_row(qd, rd, i, [](real_t d) { return d; });
    nn[i] = *std::min_element(row.begin(), row.end());
  }

  { // MIN of MIN: the closest pair distance.
    PortalExpr expr;
    expr.addLayer(PortalOp::MIN, a);
    expr.addLayer(PortalOp::MIN, b, PortalFunc::EUCLIDEAN);
    expr.execute(vm_config());
    EXPECT_NEAR(expr.getOutput().scalar(),
                *std::min_element(nn.begin(), nn.end()), 1e-9);
  }
  { // SUM of MIN: total nearest-neighbor distance.
    PortalExpr expr;
    expr.addLayer(PortalOp::SUM, a);
    expr.addLayer(PortalOp::MIN, b, PortalFunc::EUCLIDEAN);
    expr.execute(vm_config());
    real_t expected = 0;
    for (real_t v : nn) expected += v;
    EXPECT_NEAR(expr.getOutput().scalar(), expected, 1e-7);
  }
  { // MAX of MIN: directed Hausdorff (generic engine; no pattern dispatch
    // because the VM engine is forced).
    PortalExpr expr;
    expr.addLayer(PortalOp::MAX, a);
    expr.addLayer(PortalOp::MIN, b, PortalFunc::EUCLIDEAN);
    expr.execute(vm_config());
    EXPECT_NEAR(expr.getOutput().scalar(),
                *std::max_element(nn.begin(), nn.end()), 1e-9);
  }
  { // SUM of SUM over a Gaussian: total affinity.
    PortalExpr expr;
    expr.addLayer(PortalOp::SUM, a);
    expr.addLayer(PortalOp::SUM, b, PortalFunc::gaussian(1.0));
    PortalConfig config = vm_config();
    config.tau = 0;
    expr.execute(config);
    real_t expected = 0;
    for (index_t i = 0; i < qd.size(); ++i)
      for (real_t v :
           kernel_row(qd, rd, i, [](real_t d) { return std::exp(-d * d / 2); }))
        expected += v;
    EXPECT_NEAR(expr.getOutput().scalar(), expected, 1e-6 * expected);
  }
}

TEST(Executor, MahalanobisKnnPrunesSoundly) {
  // Mahalanobis metric k-NN runs through the generic engine with
  // eigenvalue-scaled box bounds -- conservative, so results must equal the
  // brute-force program exactly.
  const Dataset qd = make_gaussian_mixture(600, 3, 6, 10);
  const Dataset rd = make_gaussian_mixture(1200, 3, 6, 11);
  Storage query(qd), reference(rd);

  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, query);
  expr.addLayer({PortalOp::KARGMIN, 3}, reference, PortalFunc::MAHALANOBIS);
  PortalConfig config = vm_config();
  config.leaf_size = 16;
  expr.execute(config);
  Storage tree_out = expr.getOutput();

  PortalExpr oracle;
  oracle.addLayer(PortalOp::FORALL, query);
  oracle.addLayer({PortalOp::KARGMIN, 3}, reference, PortalFunc::MAHALANOBIS);
  oracle.setConfig(vm_config());
  Storage brute_out = oracle.executeBruteForce();

  for (index_t i = 0; i < qd.size(); ++i)
    for (index_t j = 0; j < 3; ++j)
      EXPECT_NEAR(tree_out.value(i, j), brute_out.value(i, j), 1e-9);
  EXPECT_GT(expr.stats().prunes, 0u);
}

TEST(Executor, ChebyshevAndManhattanPrograms) {
  const Dataset qd = make_gaussian_mixture(80, 4, 2, 12);
  const Dataset rd = make_gaussian_mixture(150, 4, 2, 13);
  Storage query(qd), reference(rd);

  struct Case {
    PortalFunc func;
    MetricKind metric;
  };
  for (const Case& c : {Case{PortalFunc::MANHATTAN, MetricKind::Manhattan},
                        Case{PortalFunc::CHEBYSHEV, MetricKind::Chebyshev}}) {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, query);
    expr.addLayer(PortalOp::MIN, reference, c.func);
    expr.execute(vm_config());
    Storage out = expr.getOutput();
    const KnnResult brute = knn_bruteforce(qd, rd, 1, c.metric);
    for (index_t i = 0; i < qd.size(); ++i)
      EXPECT_NEAR(out.value(i), brute.distances[i], 1e-9);
  }
}

TEST(Executor, LabelsExcludeSameGroup) {
  const Dataset data = make_gaussian_mixture(120, 2, 2, 14);
  Storage storage(data);
  std::vector<index_t> labels(data.size());
  for (index_t i = 0; i < data.size(); ++i) labels[i] = i % 5;

  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, storage);
  expr.addLayer(PortalOp::ARGMIN, storage, PortalFunc::EUCLIDEAN);
  PortalConfig config = vm_config();
  config.exclude_same_label = &labels;
  expr.execute(config);
  Storage out = expr.getOutput();

  for (index_t i = 0; i < data.size(); ++i) {
    const index_t to = out.index_at(i);
    ASSERT_GE(to, 0);
    EXPECT_NE(labels[to], labels[i]) << "same-label candidate survived";
    // And it is the true nearest foreign point.
    const std::vector<real_t> row =
        kernel_row(data, data, i, [](real_t d) { return d; });
    real_t best = std::numeric_limits<real_t>::max();
    for (index_t j = 0; j < data.size(); ++j)
      if (labels[j] != labels[i]) best = std::min(best, row[j]);
    EXPECT_NEAR(out.value(i), best, 1e-9);
  }
}

TEST(Executor, LabelsValidation) {
  const Dataset a = make_uniform(20, 2, 15);
  const Dataset b = make_uniform(20, 2, 16);
  Storage sa(a), sb(b);
  std::vector<index_t> labels(20, 0);

  { // labels require a shared dataset
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, sa);
    expr.addLayer(PortalOp::ARGMIN, sb, PortalFunc::EUCLIDEAN);
    PortalConfig config = vm_config();
    config.exclude_same_label = &labels;
    EXPECT_THROW(expr.execute(config), std::invalid_argument);
  }
  { // size mismatch
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, sa);
    expr.addLayer(PortalOp::ARGMIN, sa, PortalFunc::EUCLIDEAN);
    std::vector<index_t> wrong(19, 0);
    PortalConfig config = vm_config();
    config.exclude_same_label = &wrong;
    EXPECT_THROW(expr.execute(config), std::invalid_argument);
  }
}

TEST(Executor, ForallForallMemoryGuard) {
  const Dataset big = make_uniform(20000, 2, 17);
  Storage storage(big);
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, storage);
  expr.addLayer(PortalOp::FORALL, storage, PortalFunc::gaussian(1.0));
  EXPECT_THROW(expr.execute(vm_config()), std::invalid_argument);
}

TEST(Executor, ScalarOuterRequiresScalarInner) {
  const Dataset data = make_uniform(30, 2, 18);
  Storage storage(data);
  PortalExpr expr;
  expr.addLayer(PortalOp::SUM, storage);
  expr.addLayer({PortalOp::KMIN, 3}, storage, PortalFunc::EUCLIDEAN);
  EXPECT_THROW(expr.execute(vm_config()), std::invalid_argument);
}

TEST(Executor, TreeCacheSharingAcrossExpressions) {
  const Dataset data = make_gaussian_mixture(400, 3, 2, 19);
  Storage storage(data);

  PortalExpr first;
  first.addLayer(PortalOp::FORALL, storage);
  first.addLayer(PortalOp::ARGMIN, storage, PortalFunc::EUCLIDEAN);
  first.execute(vm_config());
  const double cold_tree = first.artifacts().tree_build_seconds;

  PortalExpr second;
  second.setTreeCache(first.treeCache());
  second.addLayer(PortalOp::FORALL, storage);
  second.addLayer({PortalOp::KARGMIN, 2}, storage, PortalFunc::EUCLIDEAN);
  second.execute(vm_config());
  // Cache hit: effectively no tree time on the second expression.
  EXPECT_LT(second.artifacts().tree_build_seconds, cold_tree / 2 + 1e-4);

  // Results still correct.
  const KnnResult brute = knn_bruteforce(data, data, 2);
  Storage out = second.getOutput();
  for (index_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(out.value(i, 0), brute.distances[i * 2], 1e-9);
}

TEST(Executor, ValidationCatchesApproximationWithinTau) {
  // validate = true on an approximation problem must pass (tau-derived
  // tolerance) rather than reporting spurious mismatches.
  const Dataset data = make_gaussian_mixture(300, 3, 3, 20);
  Storage storage(data);
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, storage);
  expr.addLayer(PortalOp::SUM, storage, PortalFunc::gaussian(1.0));
  PortalConfig config = vm_config();
  config.tau = 1e-2;
  config.validate = true;
  EXPECT_NO_THROW(expr.execute(config));
}

TEST(Executor, EmptyDatasetRejected) {
  Storage empty(Dataset(0, 2));
  Storage ok(make_uniform(10, 2, 21));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, ok);
  expr.addLayer(PortalOp::ARGMIN, empty, PortalFunc::EUCLIDEAN);
  EXPECT_THROW(expr.execute(vm_config()), std::invalid_argument);
}

} // namespace
} // namespace portal

// ---------------------------------------------------------------------------
// Leaf-size auto-tuning (paper Sec. V-B as a feature: leaf_size = 0).
#include "core/tuner.h"

namespace portal {
namespace {

TEST(Tuner, PicksACandidateAndRunsCorrectly) {
  const Dataset data = make_gaussian_mixture(2000, 3, 3, 30);
  Storage storage(data);

  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, storage);
  expr.addLayer({PortalOp::KARGMIN, 3}, storage, PortalFunc::EUCLIDEAN);
  PortalConfig config;
  config.parallel = false;
  config.leaf_size = 0; // auto-tune
  expr.execute(config);
  Storage out = expr.getOutput();

  // The tuner must have picked a real candidate and recorded it.
  EXPECT_NE(expr.artifacts().pipeline_trace.find("leaf-size tuner"),
            std::string::npos);

  // Results still exact.
  const KnnResult brute = knn_bruteforce(data, data, 3);
  for (index_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(out.value(i, 0), brute.distances[i * 3], 1e-9);
}

TEST(Tuner, ReportsProbeTimings) {
  const Dataset data = make_gaussian_mixture(1500, 3, 3, 31);
  Storage storage(data);
  std::vector<LayerSpec> layers(2);
  layers[0].op = OpSpec(PortalOp::FORALL);
  layers[0].storage = storage;
  layers[1].op = OpSpec(PortalOp::ARGMIN);
  layers[1].storage = storage;
  layers[1].func = PortalFunc::EUCLIDEAN;

  PortalConfig config;
  config.parallel = false;
  const TuneReport report = tune_leaf_size(layers, config, {8, 32, 128}, 1000);
  ASSERT_EQ(report.probes.size(), 3u);
  bool found = false;
  for (const auto& [leaf, seconds] : report.probes) {
    EXPECT_GT(seconds, 0.0);
    if (leaf == report.best_leaf_size) found = true;
  }
  EXPECT_TRUE(found);
}

} // namespace
} // namespace portal
