// Tests for the concurrent query-serving runtime (src/serve): the plan
// cache (distinct chains never collide, equal chains hit), snapshot
// copy-rebuild-swap under concurrent readers, the single-query engine
// cross-checked bitwise against its serial brute-force oracle, the
// micro-batching scheduler's admission control (reject / backpressure /
// deadlines), and a mixed-workload stress run at tolerance zero. The whole
// file runs in the TSan CI job (ctest -R Serve|Snapshot|PlanCache|Histogram).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/codegen/jit.h"
#include "data/generators.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "core/executor.h"
#include "serve/engine.h"
#include "serve/plan_cache.h"
#include "serve/service.h"
#include "tree/snapshot.h"

namespace portal {
namespace {

using serve::BatchWorkspace;
using serve::CompiledPlan;
using serve::EngineOptions;
using serve::PlanCache;
using serve::PlanHandle;
using serve::PortalService;
using serve::QueryResult;
using serve::Response;
using serve::run_query;
using serve::run_query_batch;
using serve::run_query_bruteforce;
using serve::ServiceOptions;
using serve::Status;
using serve::Workspace;

PortalConfig serve_config(real_t tau = 0) {
  PortalConfig config;
  config.tau = tau;
  return config;
}

LayerSpec chain(OpSpec op, PortalFunc func) {
  LayerSpec inner;
  inner.op = op;
  inner.func = func;
  return inner;
}

std::vector<real_t> query_point(const Dataset& data, index_t i) {
  std::vector<real_t> pt(data.dim());
  for (index_t d = 0; d < data.dim(); ++d) pt[d] = data.coord(i, d) + 0.25;
  return pt;
}

/// Values bitwise, ids exactly. The engine's determinism contract only
/// guarantees value equality on ties, but the random datasets here are
/// continuous -- exact ties have measure zero -- so ids must agree too.
void expect_bitwise(const QueryResult& got, const QueryResult& want) {
  ASSERT_EQ(got.values.size(), want.values.size());
  for (std::size_t i = 0; i < want.values.size(); ++i) {
    if (std::isnan(want.values[i])) {
      EXPECT_TRUE(std::isnan(got.values[i])) << "slot " << i;
    } else {
      EXPECT_EQ(got.values[i], want.values[i]) << "slot " << i;
    }
  }
  ASSERT_EQ(got.ids.size(), want.ids.size());
  for (std::size_t i = 0; i < want.ids.size(); ++i)
    EXPECT_EQ(got.ids[i], want.ids[i]) << "slot " << i;
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, EmptySnapshotIsZero) {
  obs::LatencyHistogram hist;
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.quantile(0.5), 0.0);
  EXPECT_EQ(snap.mean_seconds(), 0.0);
}

TEST(LatencyHistogram, TracksCountSumMinMax) {
  obs::LatencyHistogram hist;
  hist.record(1e-3);
  hist.record(2e-3);
  hist.record(4e-3);
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_NEAR(snap.sum_seconds, 7e-3, 1e-8);
  EXPECT_NEAR(snap.min_seconds, 1e-3, 1e-8);
  EXPECT_NEAR(snap.max_seconds, 4e-3, 1e-8);
  EXPECT_NEAR(snap.mean_seconds(), 7e-3 / 3, 1e-8);
}

TEST(LatencyHistogram, QuantilesWithinBucketError) {
  // Log-linear buckets with 4 sub-buckets per octave bound the relative
  // quantile error by 1/8 = 12.5%.
  obs::LatencyHistogram hist;
  for (int i = 1; i <= 1000; ++i) hist.record(i * 1e-6); // 1us..1ms uniform
  const auto snap = hist.snapshot();
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const double expected = q * 1e-3;
    EXPECT_NEAR(snap.quantile(q), expected, expected * 0.125 + 1e-9)
        << "q=" << q;
  }
  EXPECT_NEAR(snap.quantile(0.0), 1e-6, 1e-6 * 0.125);
  EXPECT_NEAR(snap.quantile(1.0), 1e-3, 1e-3 * 0.125);
}

TEST(LatencyHistogram, ResetClears) {
  obs::LatencyHistogram hist;
  hist.record(1.0);
  hist.reset();
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.max_seconds, 0.0);
}

TEST(LatencyHistogram, ConcurrentRecordsAllLand) {
  obs::LatencyHistogram hist;
  constexpr int kThreads = 4, kPer = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&hist] {
      for (int i = 1; i <= kPer; ++i) hist.record_ns(i);
    });
  for (auto& thread : threads) thread.join();
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPer);
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

TEST(PlanCache, DistinctChainsNeverCollide) {
  const Dataset reference = make_gaussian_mixture(200, 3, 2, 7);
  PlanCache cache;
  const std::vector<LayerSpec> chains = {
      chain({PortalOp::KARGMIN, 5}, PortalFunc::EUCLIDEAN),
      chain({PortalOp::KARGMIN, 6}, PortalFunc::EUCLIDEAN), // k differs
      chain({PortalOp::KMIN, 5}, PortalFunc::EUCLIDEAN),    // op differs
      chain({PortalOp::KARGMIN, 5}, PortalFunc::MANHATTAN), // metric differs
      chain(PortalOp::SUM, PortalFunc::gaussian(0.5)),
      chain(PortalOp::SUM, PortalFunc::gaussian(0.7)),      // sigma differs
      chain(PortalOp::SUM, PortalFunc::indicator(0, 0.5)),
      chain(PortalOp::UNION, PortalFunc::indicator(0, 0.5)),
      chain(PortalOp::MIN, PortalFunc::EUCLIDEAN),
      chain({PortalOp::KARGMAX, 4}, PortalFunc::SQREUCDIST),
  };
  std::vector<std::uint64_t> fingerprints;
  for (const LayerSpec& inner : chains) {
    PlanHandle plan = cache.get_or_compile(inner, reference, serve_config());
    ASSERT_TRUE(plan);
    EXPECT_NE(plan->fingerprint, 0u);
    fingerprints.push_back(plan->fingerprint);
  }
  std::sort(fingerprints.begin(), fingerprints.end());
  EXPECT_EQ(std::adjacent_find(fingerprints.begin(), fingerprints.end()),
            fingerprints.end())
      << "two distinct chains hashed to the same fingerprint";
  EXPECT_EQ(cache.stats().misses, chains.size());
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(PlanCache, EqualChainsHitRegardlessOfStorage) {
  const Dataset reference = make_gaussian_mixture(200, 3, 2, 7);
  PlanCache cache;
  LayerSpec inner = chain({PortalOp::KARGMIN, 3}, PortalFunc::EUCLIDEAN);
  PlanHandle first = cache.get_or_compile(inner, reference, serve_config());

  // Same chain again: hit, same compiled object.
  PlanHandle second = cache.get_or_compile(inner, reference, serve_config());
  EXPECT_EQ(first.get(), second.get());

  // Equal chain modulo storage identity/name: the inner storage field is
  // ignored (serving binds the published snapshot instead), so this hits.
  LayerSpec renamed = chain({PortalOp::KARGMIN, 3}, PortalFunc::EUCLIDEAN);
  renamed.storage = Storage(make_uniform(10, 3, 99));
  PlanHandle third = cache.get_or_compile(renamed, reference, serve_config());
  EXPECT_EQ(first.get(), third.get());

  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, TauIsARuntimeKnobNotAPlanProperty) {
  // tau only steers the engine's approximation gate at query time; the
  // lowered IR is identical, so the two descriptor keys converge on ONE
  // canonical plan through the fingerprint level (descriptor miss, then
  // fingerprint-dedupe accounted as a hit).
  const Dataset reference = make_gaussian_mixture(150, 2, 2, 3);
  PlanCache cache;
  LayerSpec inner = chain(PortalOp::SUM, PortalFunc::gaussian(0.4));
  PlanHandle exact = cache.get_or_compile(inner, reference, serve_config(0));
  PlanHandle approx =
      cache.get_or_compile(inner, reference, serve_config(0.01));
  EXPECT_EQ(exact.get(), approx.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses + cache.stats().hits, 2u);
}

TEST(PlanCache, ApproxBeamWidthIsARuntimeKnobNotAPlanProperty) {
  // Approximate mode and the beam width live beside tau in EngineOptions --
  // runtime serving parameters, never descriptor or fingerprint inputs --
  // so exact and approximate callers at every beam width share ONE
  // compiled plan.
  const Dataset reference = make_gaussian_mixture(400, 16, 4, 7);
  PlanCache cache;
  LayerSpec inner = chain({PortalOp::KARGMIN, 5}, PortalFunc::EUCLIDEAN);
  PlanHandle first = cache.get_or_compile(inner, reference, serve_config());
  PlanHandle second = cache.get_or_compile(inner, reference, serve_config());
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.size(), 1u);

  SnapshotOptions sopts;
  sopts.build_graph = true;
  const auto snap = TreeSnapshot::build(
      std::make_shared<const Dataset>(reference), 1, sopts);
  Workspace ws;
  const std::vector<real_t> pt = query_point(reference, 3);
  const QueryResult exact = run_query(*first, *snap, pt.data(), {}, ws);
  for (const index_t beam : {index_t{8}, index_t{32}, index_t{64}}) {
    EngineOptions aopt;
    aopt.approx = true;
    aopt.beam_width = beam;
    ASSERT_TRUE(serve::routes_to_graph(*first, *snap, aopt));
    const QueryResult approx = run_query(*first, *snap, pt.data(), aopt, ws);
    ASSERT_EQ(approx.values.size(), exact.values.size());
    for (std::size_t s = 0; s < approx.values.size(); ++s) {
      // Exact per-slot values are a lower bound on the approximate ones
      // (the graph can only miss candidates, never invent closer ones).
      EXPECT_GE(approx.values[s], exact.values[s]) << "slot " << s;
      ASSERT_GE(approx.ids[s], 0);
      ASSERT_LT(approx.ids[s], reference.size());
    }
  }
  // Same options without approx: bitwise the exact path (routing compiled
  // in changes nothing for exact callers).
  EngineOptions off;
  off.beam_width = 8; // ignored without approx
  EXPECT_FALSE(serve::routes_to_graph(*first, *snap, off));
  expect_bitwise(run_query(*first, *snap, pt.data(), off, ws), exact);
}

TEST(ServeService, ApproximateFlagIsHonest) {
  const index_t dim = 16;
  const Dataset reference = make_gaussian_mixture(400, dim, 3, 42);
  {
    // Exact service: flag stays false.
    PortalService service;
    service.publish(reference);
    PlanHandle plan =
        service.prepare({PortalOp::KARGMIN, 5}, PortalFunc::EUCLIDEAN);
    Response r = service.submit(plan, query_point(reference, 1)).get();
    ASSERT_EQ(r.status, Status::Ok) << r.error;
    EXPECT_FALSE(r.approximate);
  }
  {
    // Approx service: the reduction routes to the graph and says so; a SUM
    // plan the graph cannot honor falls through to the exact descent and
    // the flag honestly stays false.
    ServiceOptions options;
    options.approx = true;
    options.beam_width = 32;
    PortalService service(options);
    service.publish(reference);
    ASSERT_TRUE(service.snapshot()->graph());
    PlanHandle knn =
        service.prepare({PortalOp::KARGMIN, 5}, PortalFunc::EUCLIDEAN);
    Response r = service.submit(knn, query_point(reference, 1)).get();
    ASSERT_EQ(r.status, Status::Ok) << r.error;
    EXPECT_TRUE(r.approximate);

    PlanHandle kde =
        service.prepare(OpSpec(PortalOp::SUM), PortalFunc::gaussian(0.8));
    Response rs = service.submit(kde, query_point(reference, 2)).get();
    ASSERT_EQ(rs.status, Status::Ok) << rs.error;
    EXPECT_FALSE(rs.approximate);
  }
  {
    // approx_auto_dim: fires because dim >= threshold; the recursive
    // (non-interleaved) path stamps the flag too.
    ServiceOptions options;
    options.approx_auto_dim = 8;
    options.interleave = false;
    PortalService service(options);
    service.publish(reference);
    PlanHandle knn =
        service.prepare({PortalOp::KARGMIN, 3}, PortalFunc::EUCLIDEAN);
    Response r = service.submit(knn, query_point(reference, 0)).get();
    ASSERT_EQ(r.status, Status::Ok) << r.error;
    EXPECT_TRUE(r.approximate);
  }
}

TEST(PlanCache, HitMissCountersReachTraceReport) {
  obs::set_enabled(true);
  obs::reset();
  const Dataset reference = make_gaussian_mixture(150, 2, 2, 3);
  PlanCache cache;
  LayerSpec inner = chain(PortalOp::MIN, PortalFunc::EUCLIDEAN);
  cache.get_or_compile(inner, reference, serve_config());
  cache.get_or_compile(inner, reference, serve_config());
  cache.get_or_compile(inner, reference, serve_config());
  const obs::TraceReport report = obs::collect();
  EXPECT_EQ(report.counter("serve/plan_cache_miss"), 1u);
  EXPECT_EQ(report.counter("serve/plan_cache_hit"), 2u);
  obs::set_enabled(false);
  obs::reset();
}

TEST(PlanCache, ConcurrentSameChainConvergesToOnePlan) {
  const Dataset reference = make_gaussian_mixture(200, 3, 2, 11);
  PlanCache cache;
  constexpr int kThreads = 8;
  std::vector<PlanHandle> handles(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      handles[static_cast<std::size_t>(t)] = cache.get_or_compile(
          chain({PortalOp::KARGMIN, 4}, PortalFunc::EUCLIDEAN), reference,
          serve_config());
    });
  for (auto& thread : threads) thread.join();
  for (const PlanHandle& handle : handles) {
    ASSERT_TRUE(handle);
    EXPECT_EQ(handle->fingerprint, handles[0]->fingerprint);
  }
  // Racing compiles may duplicate work, but the cache converges to one
  // canonical plan and every call is accounted as a hit or a miss.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses,
            static_cast<std::uint64_t>(kThreads));
  EXPECT_GE(cache.stats().misses, 1u);
}

TEST(PlanCache, RejectsUnsupportedChains) {
  const Dataset reference = make_gaussian_mixture(100, 3, 2, 5);
  PlanCache cache;
  EXPECT_THROW(cache.get_or_compile(chain(PortalOp::FORALL, PortalFunc::NONE),
                                    reference, serve_config()),
               std::invalid_argument);
  EXPECT_THROW(
      cache.get_or_compile(chain(PortalOp::SUM, PortalFunc::gravity(1.0)),
                           reference, serve_config()),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// TreeSnapshot / SnapshotSlot
// ---------------------------------------------------------------------------

TEST(Snapshot, BuildValidatesInput) {
  SnapshotOptions options;
  EXPECT_THROW(TreeSnapshot::build(nullptr, 1, options), std::invalid_argument);
  EXPECT_THROW(TreeSnapshot::build(
                   std::make_shared<const Dataset>(Dataset(0, 3)), 1, options),
               std::invalid_argument);
  options.build_octree = true;
  EXPECT_THROW(
      TreeSnapshot::build(
          std::make_shared<const Dataset>(make_uniform(50, 2, 1)), 1, options),
      std::invalid_argument);
}

TEST(Snapshot, PublishBuildsRequestedTrees) {
  SnapshotSlot slot;
  EXPECT_EQ(slot.current_epoch(), 0u);
  EXPECT_EQ(slot.load(), nullptr);

  SnapshotOptions options;
  options.build_ball = true;
  options.build_octree = true;
  auto snap = slot.publish(
      std::make_shared<const Dataset>(make_uniform(300, 3, 42)), options);
  ASSERT_TRUE(snap);
  EXPECT_EQ(snap->epoch(), 1u);
  EXPECT_EQ(snap->size(), 300);
  EXPECT_EQ(snap->dim(), 3);
  ASSERT_NE(snap->kd(), nullptr);
  EXPECT_EQ(snap->kd()->data().size(), 300);
  ASSERT_NE(snap->ball(), nullptr);
  ASSERT_NE(snap->octree(), nullptr);
  EXPECT_EQ(slot.load().get(), snap.get());
  EXPECT_EQ(slot.current_epoch(), 1u);
}

TEST(Snapshot, SwapKeepsReadersConsistent) {
  // Writers publish datasets whose every coordinate equals the epoch number;
  // readers must only ever observe a snapshot whose tree, source data, and
  // epoch agree (all coordinates == epoch), with epochs monotone per reader.
  constexpr index_t kSize = 256, kDim = 3;
  constexpr std::uint64_t kEpochs = 12;
  const auto epoch_dataset = [](real_t value) {
    Dataset data(kSize, kDim);
    for (index_t i = 0; i < kSize; ++i)
      for (index_t d = 0; d < kDim; ++d) data.coord(i, d) = value;
    return data;
  };

  SnapshotSlot slot;
  slot.publish(std::make_shared<const Dataset>(epoch_dataset(1)), {});

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t)
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        const std::shared_ptr<const TreeSnapshot> snap = slot.load();
        if (!snap) continue;
        const auto expected = static_cast<real_t>(snap->epoch());
        bool ok = snap->epoch() >= last_epoch && snap->size() == kSize &&
                  snap->kd() != nullptr && snap->kd()->data().size() == kSize;
        for (index_t i = 0; ok && i < kSize; i += 37)
          for (index_t d = 0; d < kDim; ++d)
            ok = ok && snap->source()->coord(i, d) == expected;
        if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
        last_epoch = snap->epoch();
      }
    });

  for (std::uint64_t e = 2; e <= kEpochs; ++e)
    slot.publish(
        std::make_shared<const Dataset>(epoch_dataset(static_cast<real_t>(e))),
        {});
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(slot.current_epoch(), kEpochs);
  EXPECT_EQ(slot.load()->epoch(), kEpochs);
}

// ---------------------------------------------------------------------------
// Serve engine vs brute-force oracle (tolerance zero)
// ---------------------------------------------------------------------------

class ServeEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reference_ = make_gaussian_mixture(400, 3, 3, 20260806);
    queries_ = make_gaussian_mixture(24, 3, 3, 7);
    snapshot_ = TreeSnapshot::build(
        std::make_shared<const Dataset>(reference_), 1, {});
  }

  /// Tree-accelerated vs brute force for one chain, every query point,
  /// batched leaves both on and off.
  void check_chain(const LayerSpec& inner, real_t tau = 0) {
    PlanCache cache;
    PlanHandle plan =
        cache.get_or_compile(inner, reference_, serve_config(tau));
    ASSERT_TRUE(plan);
    Workspace ws;
    for (index_t i = 0; i < queries_.size(); ++i) {
      std::vector<real_t> pt(queries_.dim());
      for (index_t d = 0; d < queries_.dim(); ++d) pt[d] = queries_.coord(i, d);
      const QueryResult oracle =
          run_query_bruteforce(*plan, *snapshot_, pt.data());
      for (bool batch : {true, false}) {
        EngineOptions options;
        options.batch_base_cases = batch;
        options.tau = tau;
        const QueryResult got =
            run_query(*plan, *snapshot_, pt.data(), options, ws);
        if (tau == 0) {
          expect_bitwise(got, oracle);
        } else {
          ASSERT_EQ(got.values.size(), oracle.values.size());
          for (std::size_t v = 0; v < oracle.values.size(); ++v)
            EXPECT_NEAR(got.values[v], oracle.values[v],
                        tau * static_cast<real_t>(reference_.size()));
        }
      }
    }
  }

  Dataset reference_{0, 3};
  Dataset queries_{0, 3};
  std::shared_ptr<const TreeSnapshot> snapshot_;
};

TEST_F(ServeEngineTest, KnnEuclidean) {
  check_chain(chain({PortalOp::KARGMIN, 5}, PortalFunc::EUCLIDEAN));
}

TEST_F(ServeEngineTest, KminSqEuclidean) {
  check_chain(chain({PortalOp::KMIN, 3}, PortalFunc::SQREUCDIST));
}

TEST_F(ServeEngineTest, MinManhattan) {
  check_chain(chain(PortalOp::MIN, PortalFunc::MANHATTAN));
}

TEST_F(ServeEngineTest, ArgminChebyshev) {
  check_chain(chain(PortalOp::ARGMIN, PortalFunc::CHEBYSHEV));
}

TEST_F(ServeEngineTest, MaxAndKargmax) {
  check_chain(chain(PortalOp::MAX, PortalFunc::EUCLIDEAN));
  check_chain(chain({PortalOp::KARGMAX, 4}, PortalFunc::SQREUCDIST));
}

TEST_F(ServeEngineTest, KnnMahalanobis) {
  const std::vector<real_t> cov = {2.0, 0.3, 0.1, 0.3, 1.5, 0.2,
                                   0.1, 0.2, 0.9};
  check_chain(chain({PortalOp::KARGMIN, 4}, PortalFunc::mahalanobis_with(cov)));
}

TEST_F(ServeEngineTest, KdeGaussianExact) {
  check_chain(chain(PortalOp::SUM, PortalFunc::gaussian(0.6)));
}

TEST_F(ServeEngineTest, KdeGaussianTauBounded) {
  check_chain(chain(PortalOp::SUM, PortalFunc::gaussian(0.6)), 1e-4);
}

TEST_F(ServeEngineTest, RangeCountIndicator) {
  check_chain(chain(PortalOp::SUM, PortalFunc::indicator(0, 1.0)));
}

TEST_F(ServeEngineTest, RangeSearchUnion) {
  check_chain(chain(PortalOp::UNION, PortalFunc::indicator(0, 1.2)));
  check_chain(chain(PortalOp::UNIONARG, PortalFunc::indicator(0, 1.2)));
}

TEST_F(ServeEngineTest, KminGaussianValues) {
  // Comparative reduction over kernel *values* (not distances): exercises
  // the envelope-endpoint prune bounds for a decreasing envelope.
  check_chain(chain({PortalOp::KMIN, 3}, PortalFunc::gaussian(0.8)));
  check_chain(chain({PortalOp::KMAX, 3}, PortalFunc::gaussian(0.8)));
}

TEST_F(ServeEngineTest, InterleavedBatchBitwiseMatchesPerQuery) {
  // The interleaved batch path must be indistinguishable from running each
  // query alone -- values, ids, AND per-query traversal stats -- at every
  // interleave granularity, across all three rule families.
  const std::vector<LayerSpec> chains = {
      chain({PortalOp::KARGMIN, 5}, PortalFunc::EUCLIDEAN),
      chain(PortalOp::SUM, PortalFunc::gaussian(0.6)),
      chain(PortalOp::UNION, PortalFunc::indicator(0, 1.0)),
      chain(PortalOp::MIN, PortalFunc::MANHATTAN),
  };
  PlanCache cache;
  std::vector<std::vector<real_t>> pts;
  std::vector<const real_t*> ptrs;
  for (index_t i = 0; i < queries_.size(); ++i) {
    std::vector<real_t> pt(queries_.dim());
    for (index_t d = 0; d < queries_.dim(); ++d) pt[d] = queries_.coord(i, d);
    pts.push_back(std::move(pt));
  }
  for (const auto& pt : pts) ptrs.push_back(pt.data());

  for (const LayerSpec& inner : chains) {
    PlanHandle plan = cache.get_or_compile(inner, reference_, serve_config());
    ASSERT_TRUE(plan);
    for (const index_t width : {index_t(1), index_t(3), index_t(16)}) {
      for (const index_t steps : {index_t(1), index_t(32)}) {
        EngineOptions options;
        options.interleave_width = width;
        options.resume_steps = steps;
        BatchWorkspace bws;
        std::vector<QueryResult> got(pts.size());
        run_query_batch(*plan, *snapshot_, ptrs.data(),
                        static_cast<index_t>(ptrs.size()), options, bws,
                        got.data());
        Workspace ws;
        for (std::size_t i = 0; i < pts.size(); ++i) {
          const QueryResult want =
              run_query(*plan, *snapshot_, pts[i].data(), options, ws);
          expect_bitwise(got[i], want);
          EXPECT_EQ(got[i].stats.pairs_visited, want.stats.pairs_visited)
              << "query " << i << " width " << width << " steps " << steps;
          EXPECT_EQ(got[i].stats.prunes, want.stats.prunes);
          EXPECT_EQ(got[i].stats.base_cases, want.stats.base_cases);
        }
      }
    }
  }
}

TEST_F(ServeEngineTest, RejectsDimensionMismatch) {
  PlanCache cache;
  PlanHandle plan = cache.get_or_compile(
      chain({PortalOp::KARGMIN, 3}, PortalFunc::EUCLIDEAN), reference_,
      serve_config());
  const Dataset wrong = make_uniform(64, 2, 5);
  auto snap2 =
      TreeSnapshot::build(std::make_shared<const Dataset>(wrong), 2, {});
  Workspace ws;
  const real_t pt[3] = {0, 0, 0};
  EXPECT_THROW(run_query(*plan, *snap2, pt, {}, ws), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// PortalService: scheduler, admission control, deadlines
// ---------------------------------------------------------------------------

TEST(ServeService, EndToEndKnnMatchesOracle) {
  ServiceOptions options;
  options.workers = 3;
  PortalService service(options);
  const Dataset reference = make_gaussian_mixture(500, 3, 3, 99);
  service.publish(reference);
  PlanHandle plan = service.prepare({PortalOp::KARGMIN, 5},
                                    PortalFunc::EUCLIDEAN);
  ASSERT_TRUE(plan);

  const auto snap = service.snapshot();
  std::vector<std::future<Response>> futures;
  for (index_t i = 0; i < 32; ++i)
    futures.push_back(service.submit(plan, query_point(reference, i)));
  for (index_t i = 0; i < 32; ++i) {
    Response resp = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(resp.status, Status::Ok) << resp.error;
    EXPECT_EQ(resp.epoch, 1u);
    EXPECT_GE(resp.latency_ms, 0.0);
    const std::vector<real_t> pt = query_point(reference, i);
    const QueryResult oracle = run_query_bruteforce(*plan, *snap, pt.data());
    expect_bitwise(resp.result, oracle);
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 32u);
  EXPECT_EQ(stats.completed, 32u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.batched_requests, 32u);
  EXPECT_EQ(service.latency().count, 32u);
}

TEST(ServeService, PrepareHitsCacheAfterWarmup) {
  PortalService service;
  service.publish(make_gaussian_mixture(200, 3, 2, 4));
  PlanHandle first = service.prepare(PortalOp::SUM, PortalFunc::gaussian(0.5));
  for (int i = 0; i < 99; ++i) {
    PlanHandle again =
        service.prepare(PortalOp::SUM, PortalFunc::gaussian(0.5));
    EXPECT_EQ(again.get(), first.get());
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.plan_cache.misses, 1u);
  EXPECT_EQ(stats.plan_cache.hits, 99u);
  EXPECT_GT(stats.plan_cache.hit_rate(), 0.98);
}

TEST(ServeService, PrepareBeforePublishThrows) {
  PortalService service;
  EXPECT_THROW(service.prepare(PortalOp::MIN, PortalFunc::EUCLIDEAN),
               std::logic_error);
}

TEST(ServeService, PublishSwapsEpochUnderLoad) {
  PortalService service;
  const Dataset first = make_gaussian_mixture(300, 3, 2, 1);
  const Dataset second = make_gaussian_mixture(350, 3, 2, 2);
  auto snap1 = service.publish(first);
  PlanHandle plan = service.prepare({PortalOp::KARGMIN, 3},
                                    PortalFunc::EUCLIDEAN);
  auto snap2 = service.publish(second);
  EXPECT_EQ(snap1->epoch(), 1u);
  EXPECT_EQ(snap2->epoch(), 2u);

  // Requests submitted after the swap are answered at epoch 2 against the
  // new data; the pinned epoch-1 snapshot stays valid for the oracle.
  Response resp =
      service.submit(plan, query_point(second, 0)).get();
  ASSERT_EQ(resp.status, Status::Ok) << resp.error;
  EXPECT_EQ(resp.epoch, 2u);
  const std::vector<real_t> pt = query_point(second, 0);
  expect_bitwise(resp.result, run_query_bruteforce(*plan, *snap2, pt.data()));
  EXPECT_EQ(snap1->kd()->data().size(), 300);
}

TEST(ServeService, BadRequestsFailFast) {
  PortalService service;
  service.publish(make_uniform(100, 3, 8));
  PlanHandle plan = service.prepare(PortalOp::MIN, PortalFunc::EUCLIDEAN);

  Response null_plan = service.submit(nullptr, {0, 0, 0}).get();
  EXPECT_EQ(null_plan.status, Status::Error);

  Response wrong_dim = service.submit(plan, {0, 0}).get();
  EXPECT_EQ(wrong_dim.status, Status::Error);
  EXPECT_NE(wrong_dim.error.find("plan expects"), std::string::npos);

  EXPECT_EQ(service.stats().errors, 2u);
}

TEST(ServeService, SubmitAfterStopIsRejected) {
  PortalService service;
  service.publish(make_uniform(100, 3, 8));
  PlanHandle plan = service.prepare(PortalOp::MIN, PortalFunc::EUCLIDEAN);
  service.stop();
  Response resp = service.submit(plan, {0, 0, 0}).get();
  EXPECT_EQ(resp.status, Status::Rejected);
  EXPECT_EQ(resp.error, "service stopped");
  EXPECT_EQ(service.stats().rejected, 1u);
}

/// A deliberately slow opaque kernel: ~3ms per query on the 16-point
/// dataset below. Slow enough that a burst of submits outruns the single
/// worker by orders of magnitude, making the admission-control outcomes
/// below deterministic in practice.
PlanHandle slow_plan(PortalService& service) {
  LayerSpec inner;
  inner.op = PortalOp::SUM;
  inner.external = [](const real_t* q, const real_t* r, index_t dim) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    real_t sum = 0;
    for (index_t d = 0; d < dim; ++d) sum += (q[d] - r[d]) * (q[d] - r[d]);
    return sum;
  };
  inner.external_label = "slow_kernel";
  return service.prepare(std::move(inner));
}

TEST(ServeService, QueueFullRejects) {
  ServiceOptions options;
  options.workers = 1;
  options.max_batch = 1;
  options.queue_capacity = 2;
  PortalService service(options);
  service.publish(make_uniform(16, 2, 3));
  PlanHandle plan = slow_plan(service);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 12; ++i)
    futures.push_back(service.submit(plan, {0.5, 0.5}));
  std::uint64_t ok = 0, rejected = 0;
  for (auto& future : futures) {
    const Response resp = future.get();
    ASSERT_TRUE(resp.status == Status::Ok || resp.status == Status::Rejected)
        << resp.error;
    (resp.status == Status::Ok ? ok : rejected)++;
  }
  // The worker needs ~3ms per request; submitting 12 takes microseconds, so
  // at most worker-in-flight + capacity can be accepted before rejects start.
  EXPECT_GE(rejected, 1u);
  EXPECT_GE(ok, 1u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, ok);
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.completed + stats.rejected, 12u);
}

TEST(ServeService, BlockOnFullBackpressuresInsteadOfRejecting) {
  ServiceOptions options;
  options.workers = 1;
  options.max_batch = 1;
  options.queue_capacity = 2;
  options.block_on_full = true;
  PortalService service(options);
  service.publish(make_uniform(16, 2, 3));
  PlanHandle plan = slow_plan(service);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i)
    futures.push_back(service.submit(plan, {0.5, 0.5})); // blocks when full
  for (auto& future : futures) {
    const Response resp = future.get();
    EXPECT_EQ(resp.status, Status::Ok) << resp.error;
  }
  EXPECT_EQ(service.stats().completed, 8u);
  EXPECT_EQ(service.stats().rejected, 0u);
}

TEST(ServeService, DeadlineExpiresInQueue) {
  ServiceOptions options;
  options.workers = 1;
  options.max_batch = 1;
  options.queue_capacity = 64;
  PortalService service(options);
  service.publish(make_uniform(16, 2, 3));
  PlanHandle plan = slow_plan(service);

  // Stuff four ~3ms requests ahead, then one with a 1ms deadline: by the
  // time a worker reaches it, it has waited >=9ms in the queue.
  std::vector<std::future<Response>> ahead;
  for (int i = 0; i < 4; ++i)
    ahead.push_back(service.submit(plan, {0.5, 0.5}));
  Response resp = service.submit(plan, {0.5, 0.5}, 1.0).get();
  EXPECT_EQ(resp.status, Status::Expired);
  EXPECT_GE(service.stats().expired, 1u);
  for (auto& future : ahead) future.get();
}

TEST(ServeService, DeadlineExpiresDuringExecution) {
  // Regression: deadlines used to be checked only *before* a request ran, so
  // a request whose budget was consumed by its own execution was still
  // fulfilled Ok -- a late answer the deadline-carrying client had already
  // abandoned, and an expiry the serve/expired counter never saw. The fix
  // re-checks immediately before fulfillment.
  //
  // Determinism: the worker is idle, so the queue wait is far below the 6ms
  // deadline and the pre-run check passes; the slow kernel then sleeps 200us
  // for each of the 64 reference points (>=12.8ms per query), so by
  // fulfillment the deadline has deterministically passed. Both the
  // interleaved path and the recursive baseline must expire it.
  for (const bool interleave : {true, false}) {
    ServiceOptions options;
    options.workers = 1;
    options.interleave = interleave;
    PortalService service(options);
    service.publish(make_uniform(64, 2, 3));
    PlanHandle plan = slow_plan(service);

    // Warm the worker (plan state, snapshot load) with no deadline.
    ASSERT_EQ(service.submit(plan, {0.5, 0.5}).get().status, Status::Ok);

    Response resp = service.submit(plan, {0.5, 0.5}, 6.0).get();
    EXPECT_EQ(resp.status, Status::Expired) << "interleave " << interleave;
    EXPECT_NE(resp.error.find("during execution"), std::string::npos)
        << resp.error;
    EXPECT_GE(resp.latency_ms, 6.0);
    const auto stats = service.stats();
    EXPECT_EQ(stats.expired, 1u);
    EXPECT_EQ(stats.completed, 1u); // only the warm-up completed
  }
}

TEST(ServeService, CoalescesSamePlanRequests) {
  ServiceOptions options;
  options.workers = 1;
  options.max_batch = 64;
  PortalService service(options);
  service.publish(make_uniform(16, 2, 3));
  PlanHandle slow = slow_plan(service);
  PlanHandle fast = service.prepare(PortalOp::MIN, PortalFunc::EUCLIDEAN);

  // One slow request occupies the worker while 16 fast requests queue up
  // behind it; the next dequeue coalesces all of them into one batch.
  std::vector<std::future<Response>> futures;
  futures.push_back(service.submit(slow, {0.5, 0.5}));
  for (int i = 0; i < 16; ++i)
    futures.push_back(service.submit(fast, {0.25, 0.75}));
  for (auto& future : futures)
    EXPECT_EQ(future.get().status, Status::Ok);
  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, 17u);
  // 17 requests in fewer dequeues than requests proves coalescing happened;
  // exact batch shapes depend on timing.
  EXPECT_LE(stats.batches, 17u);
  EXPECT_GT(stats.mean_batch(), 0.99);
}

// ---------------------------------------------------------------------------
// Concurrent stress: mixed workload, tolerance zero
// ---------------------------------------------------------------------------

TEST(ServeStress, MixedWorkloadMatchesBruteForce) {
  ServiceOptions options;
  options.workers = 4;
  options.queue_capacity = 4096;
  PortalService service(options);
  const Dataset reference = make_gaussian_mixture(400, 3, 3, 31);
  service.publish(reference);
  const auto snap = service.snapshot();

  const std::vector<PlanHandle> plans = {
      service.prepare({PortalOp::KARGMIN, 5}, PortalFunc::EUCLIDEAN), // k-NN
      service.prepare(PortalOp::SUM, PortalFunc::gaussian(0.6)),      // KDE
      service.prepare(PortalOp::UNION, PortalFunc::indicator(0, 1.0)), // range
      service.prepare(PortalOp::MIN, PortalFunc::MANHATTAN),
  };

  constexpr int kClients = 6, kPerClient = 30;
  std::atomic<int> mismatches{0}, not_ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const PlanHandle& plan =
            plans[static_cast<std::size_t>((c + i) % plans.size())];
        const std::vector<real_t> pt =
            query_point(reference, (c * kPerClient + i) % reference.size());
        Response resp = service.submit(plan, pt).get();
        if (resp.status != Status::Ok) {
          not_ok.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const QueryResult oracle =
            run_query_bruteforce(*plan, *snap, pt.data());
        bool same = resp.result.values.size() == oracle.values.size() &&
                    resp.result.ids.size() == oracle.ids.size();
        for (std::size_t v = 0; same && v < oracle.values.size(); ++v)
          same = resp.result.values[v] == oracle.values[v] ||
                 (std::isnan(resp.result.values[v]) &&
                  std::isnan(oracle.values[v]));
        for (std::size_t v = 0; same && v < oracle.ids.size(); ++v)
          same = resp.result.ids[v] == oracle.ids[v];
        if (!same) mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (auto& client : clients) client.join();

  EXPECT_EQ(not_ok.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kClients) * kPerClient);
  EXPECT_EQ(stats.plan_cache.misses, plans.size());
}

TEST(ServeStress, PublishRacingQueriesServesExactlyOneEpoch) {
  ServiceOptions options;
  options.workers = 3;
  options.queue_capacity = 4096;
  PortalService service(options);
  // Epoch -> snapshot ledger, shared between the publisher and the clients.
  // A worker can answer on epoch e before the publisher's publish() call
  // returns and records e here, so readers lock and retry rather than
  // assuming the ledger is already caught up.
  std::mutex epochs_mutex;
  std::map<std::uint64_t, std::shared_ptr<const TreeSnapshot>> epochs;
  {
    std::lock_guard<std::mutex> lock(epochs_mutex);
    epochs[1] = service.publish(make_gaussian_mixture(300, 3, 2, 1));
  }
  const auto pinned_epoch = [&](std::uint64_t e) {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(epochs_mutex);
        const auto it = epochs.find(e);
        if (it != epochs.end()) return it->second;
      }
      std::this_thread::yield();
    }
  };
  PlanHandle plan = service.prepare({PortalOp::KARGMIN, 4},
                                    PortalFunc::EUCLIDEAN);

  std::atomic<bool> stop_publishing{false};
  std::thread publisher([&] {
    for (std::uint64_t e = 2; e <= 6; ++e) {
      auto snap = service.publish(
          make_gaussian_mixture(300 + 10 * static_cast<index_t>(e), 3, 2,
                                static_cast<std::uint64_t>(e)));
      {
        std::lock_guard<std::mutex> lock(epochs_mutex);
        epochs[e] = std::move(snap);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    stop_publishing.store(true, std::memory_order_release);
  });

  // Clients submit while the publisher swaps snapshots underneath them;
  // every response must be internally consistent with the single epoch it
  // reports (verified against that epoch's pinned oracle).
  std::atomic<int> mismatches{0}, not_ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c)
    clients.emplace_back([&, c] {
      std::uint64_t i = 0;
      while (!stop_publishing.load(std::memory_order_acquire) || i < 20) {
        std::vector<real_t> pt = {static_cast<real_t>(c) * 0.1 +
                                      static_cast<real_t>(i % 7) * 0.3,
                                  0.4, -0.2};
        Response resp = service.submit(plan, pt).get();
        ++i;
        if (resp.status != Status::Ok) {
          not_ok.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (resp.epoch == 0 || resp.epoch > 6) {
          // Clients can only be answered on an epoch the slot published.
          mismatches.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const QueryResult oracle =
            run_query_bruteforce(*plan, *pinned_epoch(resp.epoch), pt.data());
        bool same = resp.result.values == oracle.values &&
                    resp.result.ids == oracle.ids;
        if (!same) mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  publisher.join();
  for (auto& client : clients) client.join();

  EXPECT_EQ(not_ok.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(service.stats().epoch, 6u);
}

// ---------------------------------------------------------------------------
// Executor reentrancy (the PR's small-fix satellite)
// ---------------------------------------------------------------------------

TEST(ExecutorReentrancy, SharedTreeCacheConcurrentGet) {
  // Regression: TreeCache::get used to mutate its map unlocked, so two
  // threads executing the same cached plan raced on the tree cache. The
  // serving workers share one cache, making this path hot.
  const Dataset a = make_uniform(2000, 3, 1);
  const Dataset b = make_uniform(1500, 3, 2);
  Storage sa(a), sb(b);
  TreeCache cache;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const KdTree>> trees(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      const Storage& storage = (t % 2 == 0) ? sa : sb;
      for (int i = 0; i < 16; ++i)
        trees[static_cast<std::size_t>(t)] = cache.get(storage, 32);
    });
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(trees[static_cast<std::size_t>(t)], nullptr);
    EXPECT_EQ(trees[static_cast<std::size_t>(t)]->data().size(),
              (t % 2 == 0) ? 2000 : 1500);
  }
  // Steady state: both storages resolve to one cached tree each.
  EXPECT_EQ(cache.get(sa, 32).get(), trees[0].get());
  EXPECT_EQ(cache.get(sb, 32).get(), trees[1].get());
}

// ---------------------------------------------------------------------------
// Live ingestion through the service (serve/live.h): the insert/remove
// endpoints, merge behavior under the scheduler, and the concurrent
// write/read wall -- N writers and M readers against one PortalService, with
// every Ok read replayed bitwise against the brute-force oracle over the
// exact point-set its pinned (epoch, watermark) view names.
// ---------------------------------------------------------------------------

TEST(ServeIngest, EndpointsMutateAndReport) {
  ServiceOptions options;
  options.workers = 1;
  options.delta_capacity = 32;
  options.merge_threshold = 32;
  options.background_merge = false;
  PortalService service(options);

  const Dataset data = make_uniform(50, 3, 21);
  // Ingest before publish is admission-rejected, mirroring submit().
  EXPECT_EQ(service.insert({1.0, 2.0, 3.0}).status,
            serve::IngestStatus::Rejected);
  service.publish(data);

  const auto ins = service.insert({0.5, 0.5, 0.5});
  ASSERT_EQ(ins.status, serve::IngestStatus::Ok);
  EXPECT_EQ(ins.seq, 1u);
  EXPECT_EQ(ins.id, 50);
  EXPECT_EQ(service.remove({0.5, 0.5, 0.5}).status, serve::IngestStatus::Ok);
  EXPECT_EQ(service.remove({0.5, 0.5, 0.5}).status,
            serve::IngestStatus::NotFound);

  const auto stats = service.stats();
  EXPECT_EQ(stats.ingest.inserts, 1u);
  EXPECT_EQ(stats.ingest.removes, 1u);
  EXPECT_EQ(stats.ingest.remove_misses, 1u);
  EXPECT_EQ(stats.ingest.watermark, 2u);

  // Served answers carry the (epoch, watermark) they are attributable to.
  const PlanHandle plan =
      service.prepare({PortalOp::KARGMIN, 3}, PortalFunc::EUCLIDEAN);
  const Response resp =
      service.submit(plan, query_point(data, 0)).get();
  ASSERT_EQ(resp.status, Status::Ok);
  EXPECT_EQ(resp.epoch, 1u);
  EXPECT_EQ(resp.watermark, 2u);
  EXPECT_EQ(resp.view, nullptr); // capture_view off by default
}

TEST(ServeIngest, InsertedPointsAnswerQueriesThroughTheScheduler) {
  for (const bool interleave : {true, false}) {
    SCOPED_TRACE(interleave ? "interleaved" : "recursive");
    ServiceOptions options;
    options.workers = 2;
    options.interleave = interleave;
    options.delta_capacity = 64;
    options.merge_threshold = 64;
    options.background_merge = false;
    options.capture_view = true;
    PortalService service(options);
    const Dataset data = make_uniform(80, 3, 22);
    service.publish(data);
    const PlanHandle plan =
        service.prepare({PortalOp::KARGMIN, 2}, PortalFunc::EUCLIDEAN);

    const Dataset extra = make_uniform(10, 3, 23);
    for (index_t i = 0; i < extra.size(); ++i) {
      std::vector<real_t> pt(3);
      for (index_t d = 0; d < 3; ++d) pt[d] = extra.coord(i, d);
      const auto ins = service.insert(pt);
      ASSERT_EQ(ins.status, serve::IngestStatus::Ok);
      // A query at the inserted point finds it at distance exactly zero,
      // reported under its client id, and replays bitwise against the
      // oracle on the response's own pinned view.
      const Response resp = service.submit(plan, pt).get();
      ASSERT_EQ(resp.status, Status::Ok);
      ASSERT_TRUE(resp.view);
      EXPECT_GE(resp.watermark, ins.seq);
      expect_bitwise(resp.result,
                     run_query_bruteforce(*plan, *resp.view, pt.data()));
      EXPECT_EQ(resp.result.values[0], 0.0);
      EXPECT_EQ(resp.result.ids[0], ins.id);
    }
    service.stop();
    EXPECT_EQ(service.stats().errors, 0u);
  }
}

/// The concurrent write/read wall. kWriters threads stream inserts and
/// removals of their own points while kReaders threads submit queries across
/// several plans; the delta is small enough that the background merger
/// publishes several epochs mid-flight. Every Ok response must replay
/// *bitwise* against run_query_bruteforce over the exact point-set its
/// pinned view names -- a torn read (main tree from epoch N, delta from
/// N+1), a lost insert, or a resurrected tombstone all break equality.
TEST(ServeIngest, ConcurrentWritersAndReadersBitwiseAtPinnedViews) {
  constexpr int kWriters = 2, kReaders = 2;
  constexpr index_t kPerWriter = 120;
  ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 4096;
  options.block_on_full = true;
  options.delta_capacity = 96;
  options.merge_threshold = 24; // several merge publishes over the run
  options.background_merge = true;
  options.capture_view = true;
  PortalService service(options);
  const Dataset data = make_uniform(300, 3, 24);
  service.publish(data);

  std::vector<PlanHandle> plans;
  plans.push_back(
      service.prepare({PortalOp::KARGMIN, 4}, PortalFunc::EUCLIDEAN));
  plans.push_back(service.prepare(PortalOp::SUM, PortalFunc::gaussian(0.8)));
  plans.push_back(
      service.prepare(PortalOp::UNIONARG, PortalFunc::indicator(1e-9, 0.9)));

  std::atomic<int> write_failures{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      // Each writer streams its own point set (distinct seeds make cross-
      // writer coordinate collisions measure-zero) and removes every third
      // point it inserted, so merges see both slot kills and re-homed
      // tombstones.
      const Dataset mine = make_uniform(kPerWriter, 3, 1000 + w);
      for (index_t i = 0; i < mine.size(); ++i) {
        std::vector<real_t> pt(3);
        for (index_t d = 0; d < 3; ++d) pt[d] = mine.coord(i, d);
        if (service.insert(pt).status != serve::IngestStatus::Ok)
          write_failures.fetch_add(1);
        if (i % 3 == 2 &&
            service.remove(pt).status != serve::IngestStatus::Ok)
          write_failures.fetch_add(1);
      }
    });
  }

  std::atomic<int> reader_mismatches{0};
  std::atomic<int> not_ok{0};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      // A fixed read budget (not "until the writers finish"): under a
      // sanitizer the writers may be slow or fast, but every reader always
      // overlaps real ingest traffic and always exercises the oracle.
      constexpr std::size_t kReads = 90;
      const Dataset probes = make_uniform(24, 3, 2000 + r);
      std::size_t p = 0;
      std::uint64_t last_mark = 0;
      while (p < kReads) {
        const PlanHandle& plan = plans[p % plans.size()];
        std::vector<real_t> pt(3);
        for (index_t d = 0; d < 3; ++d)
          pt[d] = probes.coord(static_cast<index_t>(p % 24), d);
        ++p;
        const Response resp = service.submit(plan, pt).get();
        if (resp.status != Status::Ok) {
          not_ok.fetch_add(1);
          continue;
        }
        reads.fetch_add(1);
        if (!resp.view || resp.view->epoch() != resp.epoch ||
            resp.view->watermark != resp.watermark ||
            resp.watermark < last_mark) {
          reader_mismatches.fetch_add(1);
          continue;
        }
        last_mark = resp.watermark;
        const QueryResult oracle =
            run_query_bruteforce(*plan, *resp.view, pt.data());
        if (resp.result.values.size() != oracle.values.size() ||
            resp.result.ids.size() != oracle.ids.size()) {
          reader_mismatches.fetch_add(1);
          continue;
        }
        for (std::size_t v = 0; v < oracle.values.size(); ++v) {
          const bool same =
              std::isnan(oracle.values[v])
                  ? std::isnan(resp.result.values[v])
                  : resp.result.values[v] == oracle.values[v];
          if (!same) reader_mismatches.fetch_add(1);
        }
        for (std::size_t v = 0; v < oracle.ids.size(); ++v)
          if (resp.result.ids[v] != oracle.ids[v])
            reader_mismatches.fetch_add(1);
      }
    });
  }

  for (std::thread& w : writers) w.join();
  for (std::thread& r : readers) r.join();
  service.stop();

  EXPECT_EQ(write_failures.load(), 0);
  EXPECT_EQ(reader_mismatches.load(), 0);
  EXPECT_EQ(not_ok.load(), 0);
  EXPECT_GT(reads.load(), 0u);

  const auto stats = service.stats();
  EXPECT_EQ(stats.ingest.inserts,
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(stats.ingest.removes,
            static_cast<std::uint64_t>(kWriters) * (kPerWriter / 3));
  EXPECT_EQ(stats.ingest.rejected, 0u);
  EXPECT_GE(stats.ingest.merges, 1u); // the merger actually ran mid-flight
  EXPECT_EQ(stats.errors, 0u);

  // Ground truth: after a final drain-merge the store holds exactly the
  // union every writer left behind.
  service.merge_now();
  const auto view = service.view();
  ASSERT_TRUE(view);
  EXPECT_EQ(view->live_size(),
            300 + kWriters * (kPerWriter - kPerWriter / 3));
}

// The warm-start wall (DESIGN.md Sec. 17): two PortalService lifecycles over
// the same jit_cache_dir. The first pays one compiler invocation per distinct
// plan and publishes the artifacts; the second -- a restarted server -- must
// answer bitwise-identically with ZERO compiler invocations, asserted through
// the jit/artifact/* counters.
TEST(ServeService, JitWarmStartsWithZeroCompiles) {
  if (!jit_available()) GTEST_SKIP() << "no system compiler";
  std::string cache_dir;
  {
    char tpl[] = "/tmp/portal_serve_cache_XXXXXX";
    ASSERT_NE(mkdtemp(tpl), nullptr);
    cache_dir = tpl;
  }
  const Dataset reference = make_gaussian_mixture(400, 3, 3, 20260807);

  obs::set_enabled(true);
  struct Run {
    std::vector<QueryResult> kde, knn;
    std::uint64_t compiles = 0, hits = 0;
  };
  const auto lifecycle = [&](Run* run) {
    obs::reset();
    ServiceOptions options;
    options.workers = 2;
    options.jit = true;
    options.jit_cache_dir = cache_dir;
    PortalService service(options);
    service.publish(reference);
    PlanHandle kde = service.prepare(PortalOp::SUM, PortalFunc::gaussian(0.7));
    PlanHandle knn =
        service.prepare({PortalOp::KARGMIN, 4}, PortalFunc::EUCLIDEAN);
    ASSERT_TRUE(kde);
    ASSERT_TRUE(knn);
    // JIT serving attached fused entry points: the non-identity Gaussian
    // envelope gets the specialized metric+envelope tile loop.
    EXPECT_NE(kde->jit, nullptr);
    EXPECT_NE(kde->fused_values, nullptr);
    EXPECT_NE(knn->jit, nullptr);

    std::vector<std::future<Response>> futures;
    for (index_t i = 0; i < 16; ++i)
      futures.push_back(service.submit(kde, query_point(reference, i)));
    for (index_t i = 0; i < 16; ++i)
      futures.push_back(service.submit(knn, query_point(reference, i)));
    for (std::size_t i = 0; i < futures.size(); ++i) {
      Response resp = futures[i].get();
      ASSERT_EQ(resp.status, Status::Ok) << resp.error;
      (i < 16 ? run->kde : run->knn).push_back(std::move(resp.result));
    }
    service.stop();
    const obs::TraceReport report = obs::collect();
    run->compiles = report.counter("jit/artifact/compiles");
    run->hits = report.counter("jit/artifact/hits");
  };

  Run cold, warm;
  lifecycle(&cold);
  EXPECT_EQ(cold.compiles, 2u) << "one compiler invocation per distinct plan";
  EXPECT_EQ(cold.hits, 0u);

  lifecycle(&warm); // the restarted server
  EXPECT_EQ(warm.compiles, 0u)
      << "warm start must not invoke the compiler at all";
  EXPECT_EQ(warm.hits, 2u);
  obs::set_enabled(false);

  // Bitwise-equal answers at the pinned view: the cached machine code is the
  // same bytes, so every value and id matches exactly.
  ASSERT_EQ(cold.kde.size(), warm.kde.size());
  for (std::size_t i = 0; i < cold.kde.size(); ++i)
    expect_bitwise(warm.kde[i], cold.kde[i]);
  ASSERT_EQ(cold.knn.size(), warm.knn.size());
  for (std::size_t i = 0; i < cold.knn.size(); ++i)
    expect_bitwise(warm.knn[i], cold.knn[i]);

  std::error_code ec;
  std::filesystem::remove_all(cache_dir, ec);
}

} // namespace
} // namespace portal
