// Property fuzz over the Portal program space: for a grid of
// (outer op x inner op x kernel) combinations on random clustered data, the
// tree-accelerated execution must equal the compiler's own brute-force
// program (exactly for pruning problems, within the tau bound for
// approximation problems). This is the single strongest guard on the
// prune/approximate generator: any unsound bound shows up here.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "core/portal.h"
#include "core/verify/verify.h"
#include "data/generators.h"

namespace portal {
namespace {

struct FuzzCase {
  PortalOp outer;
  OpSpec inner;
  const char* func; // key into make_func
  bool approximate; // category expectation: tau participates
};

PortalFunc make_func(const std::string& name) {
  if (name == "euclidean") return PortalFunc::EUCLIDEAN;
  if (name == "sqeuclid") return PortalFunc::SQREUCDIST;
  if (name == "manhattan") return PortalFunc::MANHATTAN;
  if (name == "chebyshev") return PortalFunc::CHEBYSHEV;
  if (name == "gaussian") return PortalFunc::gaussian(1.0);
  if (name == "maha") return PortalFunc::MAHALANOBIS;
  if (name == "gaussian_maha") return PortalFunc::gaussian_maha();
  if (name == "indicator") return PortalFunc::indicator(0.3, 2.0);
  throw std::logic_error("unknown func");
}

class ProgramFuzz : public testing::TestWithParam<FuzzCase> {};

TEST_P(ProgramFuzz, TreeEqualsBruteForce) {
  const FuzzCase c = GetParam();
  const Dataset qd = make_gaussian_mixture(150, 3, 3, 1000 + static_cast<int>(c.outer));
  const Dataset rd =
      make_gaussian_mixture(220, 3, 3, 2000 + static_cast<int>(c.inner.op));
  Storage query(qd), reference(rd);

  PortalExpr expr;
  expr.addLayer(c.outer, query);
  expr.addLayer(c.inner, reference, make_func(c.func));
  PortalConfig config;
  config.parallel = false;
  config.engine = Engine::VM;
  config.tau = c.approximate ? 1e-5 : 0;
  expr.execute(config);
  Storage tree_out = expr.getOutput();

  // Fuzz invariant: every compiled program in the operator/metric grid is
  // verifier-clean after the full pass pipeline.
  IrVerifyContext vc;
  vc.dim = query.dim();
  vc.query_layout = query.layout();
  vc.query_size = query.size();
  vc.ref_layout = reference.layout();
  vc.ref_size = reference.size();
  vc.after_flattening = true;
  vc.check_strides = true;
  const DiagnosticEngine verify_diags = verify_program(expr.plan().ir, vc);
  EXPECT_TRUE(verify_diags.ok()) << verify_diags.report();

  PortalExpr oracle;
  oracle.addLayer(c.outer, query);
  oracle.addLayer(c.inner, reference, make_func(c.func));
  oracle.setConfig(config);
  Storage brute_out = oracle.executeBruteForce();

  const real_t tol =
      c.approximate ? 1e-5 * static_cast<real_t>(rd.size()) + 1e-9 : 1e-9;
  const std::string mismatch =
      compare_outputs(brute_out.output(), tree_out.output(), tol);
  EXPECT_TRUE(mismatch.empty()) << mismatch;
}

INSTANTIATE_TEST_SUITE_P(
    OperatorMetricGrid, ProgramFuzz,
    testing::Values(
        // forall + reductions across every metric
        FuzzCase{PortalOp::FORALL, {PortalOp::ARGMIN}, "euclidean", false},
        FuzzCase{PortalOp::FORALL, {PortalOp::ARGMIN}, "sqeuclid", false},
        FuzzCase{PortalOp::FORALL, {PortalOp::ARGMIN}, "manhattan", false},
        FuzzCase{PortalOp::FORALL, {PortalOp::ARGMIN}, "chebyshev", false},
        FuzzCase{PortalOp::FORALL, {PortalOp::ARGMIN}, "maha", false},
        FuzzCase{PortalOp::FORALL, {PortalOp::MIN}, "euclidean", false},
        FuzzCase{PortalOp::FORALL, {PortalOp::MAX}, "euclidean", false},
        FuzzCase{PortalOp::FORALL, {PortalOp::ARGMAX}, "manhattan", false},
        FuzzCase{PortalOp::FORALL, {PortalOp::KMIN, 4}, "chebyshev", false},
        FuzzCase{PortalOp::FORALL, {PortalOp::KARGMIN, 7}, "euclidean", false},
        FuzzCase{PortalOp::FORALL, {PortalOp::KMAX, 3}, "sqeuclid", false},
        FuzzCase{PortalOp::FORALL, {PortalOp::KARGMAX, 2}, "euclidean", false},
        // max-like over a *decreasing* envelope: nearest point maximizes
        FuzzCase{PortalOp::FORALL, {PortalOp::MAX}, "gaussian", false},
        FuzzCase{PortalOp::FORALL, {PortalOp::ARGMAX}, "gaussian", false},
        // min-like over a decreasing envelope: farthest point minimizes
        FuzzCase{PortalOp::FORALL, {PortalOp::MIN}, "gaussian", false},
        // approximation problems
        FuzzCase{PortalOp::FORALL, {PortalOp::SUM}, "gaussian", true},
        FuzzCase{PortalOp::FORALL, {PortalOp::SUM}, "gaussian_maha", true},
        FuzzCase{PortalOp::FORALL, {PortalOp::SUM}, "euclidean", true},
        FuzzCase{PortalOp::FORALL, {PortalOp::SUM}, "manhattan", true},
        // indicator kernels
        FuzzCase{PortalOp::FORALL, {PortalOp::SUM}, "indicator", false},
        FuzzCase{PortalOp::FORALL, {PortalOp::UNIONARG}, "indicator", false},
        FuzzCase{PortalOp::FORALL, {PortalOp::UNION}, "indicator", false},
        // scalar outer reductions
        FuzzCase{PortalOp::SUM, {PortalOp::MIN}, "euclidean", false},
        FuzzCase{PortalOp::SUM, {PortalOp::SUM}, "indicator", false},
        FuzzCase{PortalOp::MAX, {PortalOp::MIN}, "euclidean", false},
        FuzzCase{PortalOp::MIN, {PortalOp::MAX}, "euclidean", false},
        FuzzCase{PortalOp::MIN, {PortalOp::MIN}, "manhattan", false},
        FuzzCase{PortalOp::MAX, {PortalOp::MAX}, "chebyshev", false},
        FuzzCase{PortalOp::SUM, {PortalOp::SUM}, "gaussian", true},
        FuzzCase{PortalOp::MAX, {PortalOp::SUM}, "gaussian", true}));

/// Same-dataset variant (self-joins exercise the equal-node traversal path).
class SelfJoinFuzz : public testing::TestWithParam<FuzzCase> {};

TEST_P(SelfJoinFuzz, TreeEqualsBruteForce) {
  const FuzzCase c = GetParam();
  const Dataset data =
      make_gaussian_mixture(250, 2, 4, 3000 + static_cast<int>(c.inner.op));
  Storage storage(data);

  PortalExpr expr;
  expr.addLayer(c.outer, storage);
  expr.addLayer(c.inner, storage, make_func(c.func));
  PortalConfig config;
  config.parallel = false;
  config.engine = Engine::VM;
  config.tau = c.approximate ? 1e-5 : 0;
  expr.execute(config);

  PortalExpr oracle;
  oracle.addLayer(c.outer, storage);
  oracle.addLayer(c.inner, storage, make_func(c.func));
  oracle.setConfig(config);
  Storage brute_out = oracle.executeBruteForce();

  const real_t tol =
      c.approximate ? 1e-5 * static_cast<real_t>(data.size()) + 1e-9 : 1e-9;
  const std::string mismatch =
      compare_outputs(brute_out.output(), expr.getOutput().output(), tol);
  EXPECT_TRUE(mismatch.empty()) << mismatch;
}

INSTANTIATE_TEST_SUITE_P(
    SelfJoins, SelfJoinFuzz,
    testing::Values(
        FuzzCase{PortalOp::FORALL, {PortalOp::KARGMIN, 3}, "euclidean", false},
        FuzzCase{PortalOp::FORALL, {PortalOp::SUM}, "gaussian", true},
        FuzzCase{PortalOp::SUM, {PortalOp::SUM}, "indicator", false},
        FuzzCase{PortalOp::FORALL, {PortalOp::UNIONARG}, "indicator", false},
        FuzzCase{PortalOp::MAX, {PortalOp::MIN}, "euclidean", false},
        FuzzCase{PortalOp::FORALL, {PortalOp::KMAX, 5}, "manhattan", false}));

/// Parallel runs must equal serial runs for every case shape.
TEST(ProgramFuzzParallel, ParallelEqualsSerial) {
  const Dataset data = make_gaussian_mixture(500, 3, 3, 4000);
  Storage storage(data);
  for (const char* func : {"euclidean", "gaussian", "indicator"}) {
    const OpSpec inner = std::string(func) == "gaussian"
                             ? OpSpec(PortalOp::SUM)
                             : (std::string(func) == "indicator"
                                    ? OpSpec(PortalOp::UNIONARG)
                                    : OpSpec{PortalOp::KARGMIN, 3});
    Storage serial_out, parallel_out;
    {
      PortalExpr expr;
      expr.addLayer(PortalOp::FORALL, storage);
      expr.addLayer(inner, storage, make_func(func));
      PortalConfig config;
      config.parallel = false;
      config.engine = Engine::VM;
      config.tau = 1e-4;
      expr.execute(config);
      serial_out = expr.getOutput();
    }
    {
      PortalExpr expr;
      expr.addLayer(PortalOp::FORALL, storage);
      expr.addLayer(inner, storage, make_func(func));
      PortalConfig config;
      config.parallel = true;
      config.task_depth = 5;
      config.engine = Engine::VM;
      config.tau = 1e-4;
      expr.execute(config);
      parallel_out = expr.getOutput();
    }
    const std::string mismatch =
        compare_outputs(serial_out.output(), parallel_out.output(), 1e-9);
    EXPECT_TRUE(mismatch.empty()) << func << ": " << mismatch;
  }
}

} // namespace
} // namespace portal
