// Tests for src/data: layout policy, Dataset access/permutation semantics,
// and the synthetic generators standing in for the paper's Table II datasets.
#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.h"
#include "data/generators.h"
#include "data/table2.h"

namespace portal {
namespace {

TEST(Layout, PaperPolicyThreshold) {
  // Sec. III-B: d <= 4 -> column-major, otherwise row-major.
  EXPECT_EQ(choose_layout(1), Layout::ColMajor);
  EXPECT_EQ(choose_layout(4), Layout::ColMajor);
  EXPECT_EQ(choose_layout(5), Layout::RowMajor);
  EXPECT_EQ(choose_layout(68), Layout::RowMajor);
}

TEST(Dataset, CoordAccessAgreesAcrossLayouts) {
  const real_t values[6] = {1, 2, 3, 4, 5, 6}; // 2 points x 3 dims
  const Dataset row = Dataset::from_row_major(values, 2, 3, Layout::RowMajor);
  const Dataset col = Dataset::from_row_major(values, 2, 3, Layout::ColMajor);
  for (index_t i = 0; i < 2; ++i)
    for (index_t d = 0; d < 3; ++d)
      EXPECT_DOUBLE_EQ(row.coord(i, d), col.coord(i, d));
  EXPECT_DOUBLE_EQ(col.coord(1, 2), 6);
}

TEST(Dataset, RawStorageMatchesLayout) {
  const real_t values[6] = {1, 2, 3, 4, 5, 6};
  const Dataset row = Dataset::from_row_major(values, 2, 3, Layout::RowMajor);
  EXPECT_DOUBLE_EQ(row.row_ptr(1)[0], 4);
  const Dataset col = Dataset::from_row_major(values, 2, 3, Layout::ColMajor);
  // Column-major: dimension slice d=0 holds {1, 4}.
  EXPECT_DOUBLE_EQ(col.col_ptr(0)[0], 1);
  EXPECT_DOUBLE_EQ(col.col_ptr(0)[1], 4);
}

TEST(Dataset, FromPointsAndCopyPoint) {
  const Dataset data = Dataset::from_points({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(data.size(), 3);
  EXPECT_EQ(data.dim(), 2);
  real_t buf[2];
  data.copy_point(2, buf);
  EXPECT_DOUBLE_EQ(buf[0], 5);
  EXPECT_DOUBLE_EQ(buf[1], 6);
}

TEST(Dataset, FromPointsRejectsRagged) {
  EXPECT_THROW(Dataset::from_points({{1, 2}, {3}}), std::invalid_argument);
}

TEST(Dataset, PermuteReordersPoints) {
  Dataset data = Dataset::from_points({{0, 0}, {1, 1}, {2, 2}});
  data.permute({2, 0, 1});
  EXPECT_DOUBLE_EQ(data.coord(0, 0), 2);
  EXPECT_DOUBLE_EQ(data.coord(1, 0), 0);
  EXPECT_DOUBLE_EQ(data.coord(2, 0), 1);
}

TEST(Dataset, PermuteRejectsWrongSize) {
  Dataset data = Dataset::from_points({{0.0}, {1.0}});
  EXPECT_THROW(data.permute({0}), std::invalid_argument);
}

TEST(Dataset, WithLayoutPreservesValues) {
  const Dataset data = make_uniform(50, 6, 1);
  ASSERT_EQ(data.layout(), Layout::RowMajor);
  const Dataset col = data.with_layout(Layout::ColMajor);
  for (index_t i = 0; i < data.size(); ++i)
    for (index_t d = 0; d < data.dim(); ++d)
      EXPECT_DOUBLE_EQ(data.coord(i, d), col.coord(i, d));
}

TEST(Dataset, CopySemantics) {
  const Dataset a = make_uniform(20, 3, 2);
  Dataset b = a; // deep copy
  b.coord(0, 0) = 999;
  EXPECT_NE(a.coord(0, 0), 999);
}

TEST(Generators, UniformBounds) {
  const Dataset data = make_uniform(1000, 4, 3, -2, 2);
  for (index_t i = 0; i < data.size(); ++i)
    for (index_t d = 0; d < data.dim(); ++d) {
      EXPECT_GE(data.coord(i, d), -2.0);
      EXPECT_LT(data.coord(i, d), 2.0);
    }
}

TEST(Generators, MixtureIsDeterministicPerSeed) {
  const Dataset a = make_gaussian_mixture(100, 5, 3, 9);
  const Dataset b = make_gaussian_mixture(100, 5, 3, 9);
  const Dataset c = make_gaussian_mixture(100, 5, 3, 10);
  for (index_t i = 0; i < a.size(); ++i)
    for (index_t d = 0; d < a.dim(); ++d)
      EXPECT_DOUBLE_EQ(a.coord(i, d), b.coord(i, d));
  bool any_diff = false;
  for (index_t i = 0; i < a.size() && !any_diff; ++i)
    for (index_t d = 0; d < a.dim(); ++d)
      if (a.coord(i, d) != c.coord(i, d)) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Generators, LabeledMixtureShapes) {
  const LabeledDataset labeled = make_labeled_mixture(500, 8, 4, 21);
  EXPECT_EQ(labeled.points.size(), 500);
  EXPECT_EQ(labeled.num_classes, 4);
  ASSERT_EQ(labeled.labels.size(), 500u);
  for (int label : labeled.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(Generators, EllipticalShapeMatchesRecipe) {
  const ParticleSet set = make_elliptical(20000, 5, 1.0);
  EXPECT_EQ(set.positions.dim(), 3);
  ASSERT_EQ(set.masses.size(), 20000u);
  // Total mass normalized to 1.
  real_t total = 0;
  for (real_t m : set.masses) total += m;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Axis squash 1 : 0.75 : 0.5 shows in the per-axis maxima.
  real_t max_abs[3] = {0, 0, 0};
  for (index_t i = 0; i < set.positions.size(); ++i)
    for (int d = 0; d < 3; ++d)
      max_abs[d] = std::max(max_abs[d],
                            std::abs(set.positions.coord(i, d)));
  EXPECT_NEAR(max_abs[0], 1.0, 0.05);
  EXPECT_NEAR(max_abs[1], 0.75, 0.05);
  EXPECT_NEAR(max_abs[2], 0.5, 0.05);
}

TEST(Generators, PlummerIsCentrallyConcentrated) {
  const ParticleSet set = make_plummer(20000, 6, 1.0);
  index_t inside = 0;
  for (index_t i = 0; i < set.positions.size(); ++i) {
    real_t sq = 0;
    for (int d = 0; d < 3; ++d) {
      const real_t x = set.positions.coord(i, d);
      sq += x * x;
    }
    if (sq < 1.0) ++inside;
  }
  // Plummer has ~35% of mass inside the scale radius (analytic: 1/2^{3/2}).
  EXPECT_NEAR(static_cast<double>(inside) / set.positions.size(), 0.3536, 0.03);
}

TEST(Table2, SpecsMatchPaper) {
  const auto& specs = table2_specs();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(table2_spec("Yahoo!").dim, 11);
  EXPECT_EQ(table2_spec("HIGGS").dim, 28);
  EXPECT_EQ(table2_spec("Census").dim, 68);
  EXPECT_EQ(table2_spec("KDD").dim, 42);
  EXPECT_EQ(table2_spec("IHEPC").dim, 9);
  EXPECT_EQ(table2_spec("Elliptical").dim, 3);
  EXPECT_EQ(table2_spec("Yahoo!").paper_size, 41904293);
}

TEST(Table2, UnknownNameThrows) {
  EXPECT_THROW(table2_spec("NotADataset"), std::invalid_argument);
}

TEST(Table2, ScaleControlsSize) {
  const Dataset small = make_table2_dataset("IHEPC", 0.1);
  const Dataset large = make_table2_dataset("IHEPC", 0.2);
  EXPECT_EQ(small.dim(), 9);
  EXPECT_LT(small.size(), large.size());
  // Floor guard.
  EXPECT_GE(make_table2_dataset("IHEPC", 1e-9).size(), 64);
}

TEST(Table2, LayoutFollowsPolicy) {
  EXPECT_EQ(make_table2_dataset("Elliptical", 0.05).layout(), Layout::ColMajor);
  EXPECT_EQ(make_table2_dataset("HIGGS", 0.05).layout(), Layout::RowMajor);
}

} // namespace
} // namespace portal
