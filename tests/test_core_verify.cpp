// The IR verifier: one test per diagnostic code (docs/DIAGNOSTICS.md).
// Structural rules (PTL-E00x), scope rules (PTL-E01x), statement dataflow
// (PTL-E02x), analysis diagnostics (PTL-E1xx), and parser codes (PTL-P00x).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/codegen/vm.h"
#include "core/parser.h"
#include "core/passes/passes.h"
#include "core/portal.h"
#include "core/verify/verify.h"
#include "data/generators.h"

namespace portal {
namespace {

IrExprPtr node(IrOp op, std::vector<IrExprPtr> children = {}) {
  IrExpr e;
  e.op = op;
  e.children = std::move(children);
  return std::make_shared<const IrExpr>(std::move(e));
}

DiagnosticEngine check(const IrExprPtr& expr,
                       IrContext context = IrContext::BaseCase,
                       IrVerifyContext vc = {}) {
  DiagnosticEngine diags;
  verify_expr(expr, context, vc, &diags);
  return diags;
}

// --- structural rules (PTL-E00x) -------------------------------------------

TEST(VerifyStructure, NullChildIsE001) {
  const auto diags = check(node(IrOp::Neg, {nullptr}));
  EXPECT_TRUE(diags.has_code("PTL-E001"));
  EXPECT_EQ(diags.error_count(), 1u);
}

TEST(VerifyStructure, ArityMismatchIsE002) {
  // Add with one child; Sqrt with two.
  EXPECT_TRUE(check(node(IrOp::Add, {ir_const(1)})).has_code("PTL-E002"));
  EXPECT_TRUE(check(node(IrOp::Sqrt, {ir_const(1), ir_const(2)}))
                  .has_code("PTL-E002"));
  // Const with a child is also an arity violation (leaves take none).
  EXPECT_TRUE(check(node(IrOp::Const, {ir_const(1)})).has_code("PTL-E002"));
}

TEST(VerifyStructure, NanConstIsE003) {
  EXPECT_TRUE(check(ir_const(std::numeric_limits<real_t>::quiet_NaN()))
                  .has_code("PTL-E003"));
  EXPECT_TRUE(check(ir_const(1.5)).ok());
}

TEST(VerifyStructure, NonFinitePowExponentIsE004) {
  IrExpr e;
  e.op = IrOp::Pow;
  e.children = {ir_const(2)};
  e.value = std::numeric_limits<real_t>::infinity();
  const auto diags = check(std::make_shared<const IrExpr>(std::move(e)));
  EXPECT_TRUE(diags.has_code("PTL-E004"));
}

TEST(VerifyStructure, BadMahalanobisMatrixIsE005) {
  // 3 entries is not square.
  IrExpr e;
  e.op = IrOp::MahalanobisChol;
  e.matrix = {1, 2, 3};
  EXPECT_TRUE(check(std::make_shared<const IrExpr>(e)).has_code("PTL-E005"));
  // 2x2 matrix against a 3-dimensional dataset.
  e.matrix = {1, 0, 0, 1};
  IrVerifyContext vc;
  vc.dim = 3;
  EXPECT_TRUE(check(std::make_shared<const IrExpr>(e), IrContext::BaseCase, vc)
                  .has_code("PTL-E005"));
  vc.dim = 2;
  EXPECT_TRUE(check(std::make_shared<const IrExpr>(e), IrContext::BaseCase, vc).ok());
}

TEST(VerifyStructure, NullExternalCallIsE006) {
  EXPECT_TRUE(check(node(IrOp::ExternalCall)).has_code("PTL-E006"));
}

TEST(VerifyStructure, FlatteningViolationsAreE007) {
  // Un-flattened load after the flattening pass.
  IrVerifyContext vc;
  vc.after_flattening = true;
  {
    IrExpr e;
    e.op = IrOp::LoadQCoord;
    const auto load = std::make_shared<const IrExpr>(std::move(e));
    const auto dim = node(IrOp::DimSum, {load});
    EXPECT_TRUE(check(dim, IrContext::BaseCase, vc).has_code("PTL-E007"));
  }
  // Stride inconsistent with a row-major layout (expects 1).
  vc.check_strides = true;
  vc.query_layout = Layout::RowMajor;
  vc.query_size = 100;
  {
    IrExpr e;
    e.op = IrOp::LoadQCoord;
    e.flattened = true;
    e.stride = 100;
    const auto load = std::make_shared<const IrExpr>(std::move(e));
    const auto dim = node(IrOp::DimSum, {load});
    EXPECT_TRUE(check(dim, IrContext::BaseCase, vc).has_code("PTL-E007"));
  }
  // Stride matching the layout is clean.
  {
    IrExpr e;
    e.op = IrOp::LoadQCoord;
    e.flattened = true;
    e.stride = 1;
    const auto load = std::make_shared<const IrExpr>(std::move(e));
    const auto dim = node(IrOp::DimSum, {load});
    EXPECT_TRUE(check(dim, IrContext::BaseCase, vc).ok());
  }
}

TEST(VerifyStructure, EmptyTempLabelIsE008) {
  EXPECT_TRUE(check(node(IrOp::Temp)).has_code("PTL-E008"));
}

// --- scope rules (PTL-E01x) -------------------------------------------------

TEST(VerifyScope, TempInExecutableContextIsE009) {
  IrExpr e;
  e.op = IrOp::Temp;
  e.label = "t";
  const auto temp = std::make_shared<const IrExpr>(std::move(e));
  EXPECT_TRUE(check(temp, IrContext::Executable).has_code("PTL-E009"));
  EXPECT_TRUE(check(temp, IrContext::BaseCase).ok());
}

TEST(VerifyScope, NodePairAtomInBaseCaseIsE010) {
  for (IrOp op : {IrOp::DMin, IrOp::DMax, IrOp::CenterDist, IrOp::RCount,
                  IrOp::Tau, IrOp::QueryBound}) {
    EXPECT_TRUE(check(node(op), IrContext::BaseCase).has_code("PTL-E010"))
        << ir_op_name(op);
    EXPECT_TRUE(check(node(op), IrContext::PruneApprox).ok()) << ir_op_name(op);
  }
}

TEST(VerifyScope, LoadInNodePairScopeIsE011) {
  const auto load = node(IrOp::LoadQCoord);
  EXPECT_TRUE(check(load, IrContext::PruneApprox).has_code("PTL-E011"));
  EXPECT_TRUE(check(load, IrContext::ComputeApprox).has_code("PTL-E011"));
  EXPECT_TRUE(check(load, IrContext::Envelope).has_code("PTL-E011"));
}

TEST(VerifyScope, LoadOutsideDimReductionIsE012) {
  const auto bare = node(IrOp::LoadRCoord);
  EXPECT_TRUE(check(bare, IrContext::BaseCase).has_code("PTL-E012"));
  const auto in_dim = node(IrOp::DimSum, {node(IrOp::LoadRCoord)});
  EXPECT_TRUE(check(in_dim, IrContext::BaseCase).ok());
  // Executable kernels run with an externally managed dimension loop.
  EXPECT_TRUE(check(bare, IrContext::Executable).ok());
}

TEST(VerifyScope, NestedDimReductionsAreE013) {
  const auto nested =
      node(IrOp::DimSum, {node(IrOp::DimMax, {node(IrOp::LoadQCoord)})});
  EXPECT_TRUE(check(nested, IrContext::BaseCase).has_code("PTL-E013"));
}

TEST(VerifyScope, DistInNodePairScopeIsE014) {
  const auto dist = node(IrOp::Dist);
  EXPECT_TRUE(check(dist, IrContext::PruneApprox).has_code("PTL-E014"));
  EXPECT_TRUE(check(dist, IrContext::ComputeApprox).has_code("PTL-E014"));
  // The exact distance is fine per point pair and in the envelope.
  EXPECT_TRUE(check(dist, IrContext::BaseCase).ok());
  EXPECT_TRUE(check(dist, IrContext::Envelope).ok());
}

// --- statement dataflow (PTL-E02x) ------------------------------------------

DiagnosticEngine check_stmt(const IrStmtPtr& stmt,
                            IrContext context = IrContext::BaseCase) {
  DiagnosticEngine diags;
  verify_stmt(stmt, context, IrVerifyContext{}, &diags, "base_case");
  return diags;
}

IrExprPtr temp_read(const std::string& name) {
  IrExpr e;
  e.op = IrOp::Temp;
  e.label = name;
  return std::make_shared<const IrExpr>(std::move(e));
}

TEST(VerifyStmt, MalformedPayloadsAreE020) {
  // Assign with no target.
  EXPECT_TRUE(check_stmt(ir_block({ir_assign("", ir_const(1))}))
                  .has_code("PTL-E020"));
  // Accum with no operator.
  EXPECT_TRUE(check_stmt(ir_block({ir_alloc("storage0 = 0"),
                                   ir_accum("storage0", "", ir_const(1))}))
                  .has_code("PTL-E020"));
  // Loop with no range descriptor.
  EXPECT_TRUE(check_stmt(ir_block({ir_loop("", {})})).has_code("PTL-E020"));
  // Return with no expression.
  EXPECT_TRUE(check_stmt(ir_block({ir_return(nullptr)})).has_code("PTL-E020"));
}

TEST(VerifyStmt, UseBeforeDefIsE021) {
  const auto program = ir_block({
      ir_assign("u", temp_read("t")), // t not yet defined
      ir_assign("t", ir_const(1)),
      ir_return(temp_read("u")),
  });
  const auto diags = check_stmt(program);
  EXPECT_TRUE(diags.has_code("PTL-E021"));

  const auto fixed = ir_block({
      ir_assign("t", ir_const(1)),
      ir_assign("u", temp_read("t")),
      ir_return(temp_read("u")),
  });
  EXPECT_TRUE(check_stmt(fixed).ok());
}

TEST(VerifyStmt, AccumWithoutAllocIsE022) {
  const auto program = ir_block({
      ir_loop("r in node", {ir_accum("storage0", "+", ir_const(1))}),
  });
  EXPECT_TRUE(check_stmt(program).has_code("PTL-E022"));

  const auto fixed = ir_block({
      ir_alloc("storage0 (single reduction slot)"),
      ir_loop("r in node", {ir_accum("storage0", "+", ir_const(1))}),
  });
  EXPECT_TRUE(check_stmt(fixed).ok());
  // Indexed targets resolve to their base Alloc name.
  const auto indexed = ir_block({
      ir_alloc("storage0[query.size]"),
      ir_loop("q in node", {ir_reduce("storage0[q]", "min", ir_const(1))}),
  });
  EXPECT_TRUE(check_stmt(indexed).ok());
}

TEST(VerifyStmt, DeadStoreIsW023Warning) {
  const auto program = ir_block({
      ir_assign("t", ir_const(1)), // never read
      ir_return(ir_const(2)),
  });
  const auto diags = check_stmt(program);
  EXPECT_TRUE(diags.has_code("PTL-W023"));
  EXPECT_EQ(diags.error_count(), 0u); // warning only: program still valid
  EXPECT_EQ(diags.warning_count(), 1u);
  EXPECT_TRUE(diags.ok());
}

TEST(VerifyStmt, DceLeavesNoDeadStores) {
  // Cross-validation: whatever dce_pass outputs must be W023-clean.
  const auto program = ir_block({
      ir_assign("t", ir_const(1)),
      ir_assign("orphan", ir_const(2)),
      ir_return(temp_read("t")),
  });
  EXPECT_TRUE(check_stmt(program).has_code("PTL-W023"));
  const auto cleaned = dce_pass(program);
  const auto diags = check_stmt(cleaned);
  EXPECT_FALSE(diags.has_code("PTL-W023")) << diags.report();
}

// --- whole-program verification ---------------------------------------------

TEST(VerifyProgram, LoweredProblemsAreClean) {
  const Dataset qd = make_gaussian_mixture(60, 3, 3, 71);
  const Dataset rd = make_gaussian_mixture(80, 3, 3, 72);
  Storage query(qd), reference(rd);

  struct Case {
    OpSpec outer, inner;
    PortalFunc func;
  };
  const Case cases[] = {
      {{PortalOp::FORALL}, {PortalOp::KARGMIN, 5}, PortalFunc::EUCLIDEAN},
      {{PortalOp::FORALL}, {PortalOp::SUM}, PortalFunc::gaussian(1.0)},
      {{PortalOp::FORALL}, {PortalOp::UNIONARG}, PortalFunc::indicator(0.1, 2)},
      {{PortalOp::MAX}, {PortalOp::MIN}, PortalFunc::EUCLIDEAN},
      {{PortalOp::FORALL}, {PortalOp::SUM}, PortalFunc::MAHALANOBIS},
  };
  for (const Case& c : cases) {
    PortalExpr expr;
    expr.addLayer(c.outer, query);
    expr.addLayer(c.inner, reference, c.func);
    PortalConfig config;
    config.engine = Engine::VM;
    config.parallel = false;
    expr.execute(config); // verify_ir defaults on: throws if any stage fails
    const std::string& report = expr.artifacts().verify_report;
    EXPECT_NE(report.find("0 error(s), 0 warning(s)"), std::string::npos)
        << report;
    EXPECT_EQ(report.find("error ["), std::string::npos) << report;
  }
}

TEST(VerifyProgram, OrThrowCarriesDiagnostics) {
  IrProgram program;
  program.base_case = ir_block({ir_return(node(IrOp::DMin))});
  program.prune_approx = ir_block({ir_return(ir_const(0))});
  program.compute_approx = ir_block({ir_return(ir_const(0))});
  try {
    verify_program_or_throw(program, IrVerifyContext{}, "after test");
    FAIL() << "expected PortalDiagnosticError";
  } catch (const PortalDiagnosticError& e) {
    ASSERT_FALSE(e.diagnostics().empty());
    EXPECT_EQ(e.diagnostics()[0].code, "PTL-E010");
    EXPECT_NE(std::string(e.what()).find("after test"), std::string::npos);
  }
}

TEST(VerifyProgram, PassManagerRejectsCorruptedInput) {
  // A base case whose kernel reads an undefined temp: the -verify-each
  // sandwich must reject it at the lowering boundary, before any pass runs.
  IrProgram program;
  program.base_case = ir_block({ir_return(temp_read("ghost"))});
  program.prune_approx = ir_block({ir_return(ir_const(0))});
  program.compute_approx = ir_block({ir_return(ir_const(0))});
  PassManager passes(true, false, true);
  CompileArtifacts artifacts;
  EXPECT_THROW(passes.run(program, IrVerifyContext{}, &artifacts),
               PortalDiagnosticError);
  EXPECT_NE(artifacts.verify_report.find("PTL-E021"), std::string::npos)
      << artifacts.verify_report;
}

TEST(VerifyProgram, DisablingVerifyIrSkipsTheSandwich) {
  const Dataset qd = make_gaussian_mixture(40, 2, 3, 73);
  Storage storage(qd);
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, storage);
  expr.addLayer({PortalOp::KARGMIN, 3}, storage, PortalFunc::EUCLIDEAN);
  PortalConfig config;
  config.engine = Engine::VM;
  config.parallel = false;
  config.verify_ir = false;
  expr.execute(config);
  EXPECT_TRUE(expr.artifacts().verify_report.empty());
}

// --- backend preconditions ---------------------------------------------------

TEST(VerifyBackend, VmRejectsTempNodes) {
  try {
    VmProgram::compile(temp_read("t"));
    FAIL() << "expected PortalDiagnosticError";
  } catch (const PortalDiagnosticError& e) {
    EXPECT_EQ(e.diagnostics()[0].code, "PTL-E009");
  }
}

TEST(VerifyBackend, VmRejectsNullAndMalformedTrees) {
  EXPECT_THROW(VmProgram::compile(nullptr), PortalDiagnosticError);
  EXPECT_THROW(VmProgram::compile(node(IrOp::Mul, {ir_const(1)})),
               PortalDiagnosticError);
  IrExpr maha;
  maha.op = IrOp::MahalanobisChol;
  maha.matrix = {1, 2, 3};
  EXPECT_THROW(VmProgram::compile(std::make_shared<const IrExpr>(maha)),
               PortalDiagnosticError);
}

// --- analysis diagnostics (PTL-E1xx) ----------------------------------------

TEST(VerifyAnalysis, LayerCountIsE101) {
  const Dataset d = make_gaussian_mixture(30, 2, 2, 74);
  Storage storage(d);
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, storage);
  try {
    expr.execute();
    FAIL() << "expected PortalDiagnosticError";
  } catch (const PortalDiagnosticError& e) {
    EXPECT_EQ(e.diagnostics()[0].code, "PTL-E101");
  }
}

TEST(VerifyAnalysis, DimMismatchIsE104) {
  Storage a(make_gaussian_mixture(30, 2, 2, 75));
  Storage b(make_gaussian_mixture(30, 3, 2, 76));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, a);
  expr.addLayer({PortalOp::KARGMIN, 3}, b, PortalFunc::EUCLIDEAN);
  try {
    expr.execute();
    FAIL() << "expected PortalDiagnosticError";
  } catch (const PortalDiagnosticError& e) {
    EXPECT_EQ(e.diagnostics()[0].code, "PTL-E104");
  }
}

TEST(VerifyAnalysis, MissingKernelIsE108) {
  Storage a(make_gaussian_mixture(30, 2, 2, 77));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, a);
  expr.addLayer(PortalOp::SUM, a);
  try {
    expr.execute();
    FAIL() << "expected PortalDiagnosticError";
  } catch (const PortalDiagnosticError& e) {
    EXPECT_EQ(e.diagnostics()[0].code, "PTL-E108");
  }
}

TEST(VerifyAnalysis, GravityDimensionRuleIsE109) {
  Storage a(make_gaussian_mixture(30, 2, 2, 78));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, a);
  expr.addLayer(PortalOp::SUM, a, PortalFunc::gravity(1.0, 1e-3));
  try {
    expr.execute();
    FAIL() << "expected PortalDiagnosticError";
  } catch (const PortalDiagnosticError& e) {
    EXPECT_EQ(e.diagnostics()[0].code, "PTL-E109");
  }
}

// --- parser diagnostics (PTL-P00x) ------------------------------------------

TEST(VerifyParser, SyntaxErrorIsP001) {
  try {
    run_portal_script("Storage q = ;\n");
    FAIL() << "expected PortalDiagnosticError";
  } catch (const PortalDiagnosticError& e) {
    EXPECT_EQ(e.diagnostics()[0].code, "PTL-P001");
    EXPECT_NE(e.diagnostics()[0].path.find("portal script:1:"),
              std::string::npos);
  }
}

TEST(VerifyParser, SemanticErrorIsP002) {
  const char* script =
      "Storage q = demo(50, 2);\n"
      "PortalExpr e;\n"
      "e.addLayer(FORALL, nosuchstorage);\n";
  try {
    run_portal_script(script);
    FAIL() << "expected PortalDiagnosticError";
  } catch (const PortalDiagnosticError& e) {
    EXPECT_EQ(e.diagnostics()[0].code, "PTL-P002");
  }
}

TEST(VerifyParser, BaseConfigSeedsScriptConfig) {
  PortalConfig base;
  base.verify_ir = false;
  base.tau = 0.5;
  const ParsedProgram program = run_portal_script(
      "Storage q = demo(20, 2);\nPortalExpr e;\n", ".", base);
  EXPECT_FALSE(program.config.verify_ir);
  EXPECT_EQ(program.config.tau, 0.5);
}

TEST(VerifyParser, VerifyIrConfigKey) {
  const ParsedProgram program = run_portal_script(
      "set verify_ir = 0;\nStorage q = demo(20, 2);\nPortalExpr e;\n");
  EXPECT_FALSE(program.config.verify_ir);
}

// --- diagnostics plumbing ----------------------------------------------------

TEST(Diagnostics, ToStringFormat) {
  const Diagnostic d{Severity::Error, "PTL-E002", "base_case/add",
                     "add takes 2 operand(s) but has 1"};
  EXPECT_EQ(diagnostic_to_string(d),
            "error [PTL-E002] at base_case/add: add takes 2 operand(s) but has 1");
}

TEST(Diagnostics, EngineCountsAndReport) {
  DiagnosticEngine diags;
  EXPECT_TRUE(diags.ok());
  EXPECT_TRUE(diags.empty());
  diags.warning("PTL-W023", "p", "dead store");
  EXPECT_TRUE(diags.ok()); // warnings do not fail verification
  diags.error("PTL-E001", "q", "null node");
  EXPECT_FALSE(diags.ok());
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.warning_count(), 1u);
  const std::string report = diags.report();
  EXPECT_NE(report.find("PTL-W023"), std::string::npos);
  EXPECT_NE(report.find("PTL-E001"), std::string::npos);
}

TEST(Diagnostics, ErrorIsInvalidArgumentSubclass) {
  // Existing EXPECT_THROW(..., std::invalid_argument) call sites keep
  // working: the diagnostic error derives from it.
  const PortalDiagnosticError error(
      Diagnostic{Severity::Error, "PTL-E001", "x", "boom"});
  const std::invalid_argument& base = error;
  EXPECT_NE(std::string(base.what()).find("PTL-E001"), std::string::npos);
}

} // namespace
} // namespace portal
