// Tests for the IR dataflow analysis framework (src/core/analysis/):
// kernel-property inference (intervals, monotonicity, symmetry, legality
// facts) and the PTL-Wxxx lint pass. Every warning code gets a firing AND a
// non-firing program, per the append-only diagnostics contract
// (docs/DIAGNOSTICS.md).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/analysis/dataflow.h"
#include "core/analysis/lint.h"
#include "core/portal.h"
#include "data/generators.h"

namespace portal {
namespace {

constexpr real_t kInf = std::numeric_limits<real_t>::infinity();

bool has_code(const std::vector<Diagnostic>& diags, const std::string& code) {
  for (const Diagnostic& d : diags)
    if (d.code == code) return true;
  return false;
}

Storage cluster_at(real_t center, index_t n = 40, index_t dim = 3,
                   unsigned seed = 7) {
  Dataset base = make_gaussian_mixture(n, dim, 1, seed);
  for (index_t i = 0; i < base.size(); ++i)
    for (index_t d = 0; d < dim; ++d) base.coord(i, d) += center;
  return Storage(std::move(base));
}

// -- kernel-property inference ----------------------------------------------

TEST(AnalysisFacts, KnnChainProvesIdentityEnvelope) {
  Storage query(make_gaussian_mixture(80, 3, 2, 11));
  Storage reference(make_gaussian_mixture(150, 3, 2, 12));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, query);
  expr.addLayer({PortalOp::KARGMIN, 3}, reference, PortalFunc::EUCLIDEAN);
  expr.compile();

  const KernelFacts& facts = expr.plan().facts;
  ASSERT_TRUE(facts.computed);
  EXPECT_TRUE(facts.envelope_identity);
  EXPECT_FALSE(facts.envelope_indicator);
  EXPECT_EQ(facts.mono, Monotonicity::NonDecreasing);
  EXPECT_EQ(facts.mono_confidence, FactConfidence::Proven);
  EXPECT_TRUE(facts.reduction_prune_legal);
  EXPECT_FALSE(facts.indicator_prune_legal);
  EXPECT_FALSE(facts.approx_legal);
  // KARGMIN breaks commutativity at kernel-value ties.
  EXPECT_FALSE(facts.accum_commutative);
  EXPECT_FALSE(facts.accum_associative);
  // Normalized kernel: pair dependence flows only through the symmetric
  // distance.
  EXPECT_TRUE(facts.symmetric);
  // Distance bounds come from the actual bounding boxes.
  EXPECT_GE(facts.dist_lo, 0);
  EXPECT_LT(facts.dist_hi, kInf);
  EXPECT_FALSE(facts.may_nan);
}

TEST(AnalysisFacts, GaussianKernelProvenNonIncreasing) {
  Storage data(make_gaussian_mixture(120, 3, 2, 21));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer(PortalOp::SUM, data, PortalFunc::gaussian(0.8));
  expr.compile();

  const KernelFacts& facts = expr.plan().facts;
  ASSERT_TRUE(facts.computed);
  EXPECT_EQ(facts.mono, Monotonicity::NonIncreasing);
  EXPECT_EQ(facts.mono_confidence, FactConfidence::Proven);
  EXPECT_TRUE(facts.approx_legal);
  EXPECT_FALSE(facts.reduction_prune_legal);
  // exp(-d^2 / 2s^2) lives in (0, 1] on the achievable distance range.
  EXPECT_GE(facts.value_lo, 0);
  EXPECT_LE(facts.value_hi, 1 + 1e-12);
  EXPECT_FALSE(facts.may_nan);
  EXPECT_TRUE(facts.accum_commutative);
  EXPECT_TRUE(facts.accum_associative);
}

TEST(AnalysisFacts, IndicatorChainFacts) {
  Storage data(make_gaussian_mixture(100, 3, 2, 31));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer(PortalOp::UNIONARG, data, PortalFunc::indicator(0.1, 1.5));
  expr.compile();

  const KernelFacts& facts = expr.plan().facts;
  ASSERT_TRUE(facts.computed);
  EXPECT_TRUE(facts.envelope_indicator);
  EXPECT_TRUE(facts.indicator_prune_legal);
  EXPECT_FALSE(facts.reduction_prune_legal);
  // A step function is not monotone.
  EXPECT_NE(facts.mono_confidence, FactConfidence::Proven);
}

TEST(AnalysisFacts, ExternalKernelIsOpaque) {
  Storage data(make_gaussian_mixture(60, 3, 1, 41));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer(
      PortalOp::SUM, data,
      [](const real_t* a, const real_t* b, index_t dim) {
        real_t s = 0;
        for (index_t d = 0; d < dim; ++d) s += a[d] * b[d];
        return s;
      },
      "dot");
  expr.compile();

  const KernelFacts& facts = expr.plan().facts;
  ASSERT_TRUE(facts.computed);
  EXPECT_FALSE(facts.symmetric); // no structural view into the callable
  EXPECT_FALSE(facts.envelope_identity);
  EXPECT_FALSE(facts.reduction_prune_legal);
  EXPECT_FALSE(facts.approx_legal);
  EXPECT_EQ(facts.mono, Monotonicity::Unknown);
}

// -- the interval/monotonicity sweep itself ---------------------------------

TEST(AnalysisSweep, IntervalAndMonotonicityRules) {
  AnalysisInputs in;
  in.dist_lo = 1;
  in.dist_hi = 4;

  auto dist = std::make_shared<IrExpr>();
  dist->op = IrOp::Dist;
  auto c2 = std::make_shared<IrExpr>();
  c2->op = IrOp::Const;
  c2->value = 2;

  // 2 * d: range [2, 8], non-decreasing.
  auto mul = std::make_shared<IrExpr>();
  mul->op = IrOp::Mul;
  mul->children = {c2, dist};
  ExprFacts f = analyze_expr(mul, in);
  EXPECT_DOUBLE_EQ(f.range.lo, 2);
  EXPECT_DOUBLE_EQ(f.range.hi, 8);
  EXPECT_EQ(f.mono, Monotonicity::NonDecreasing);
  EXPECT_TRUE(f.depends_on_dist);

  // -d: flips direction.
  auto neg = std::make_shared<IrExpr>();
  neg->op = IrOp::Neg;
  neg->children = {dist};
  f = analyze_expr(neg, in);
  EXPECT_EQ(f.mono, Monotonicity::NonIncreasing);
  EXPECT_DOUBLE_EQ(f.range.lo, -4);
  EXPECT_DOUBLE_EQ(f.range.hi, -1);

  // 2 / d: decreasing, range [1/2, 2].
  auto div = std::make_shared<IrExpr>();
  div->op = IrOp::Div;
  div->children = {c2, dist};
  f = analyze_expr(div, in);
  EXPECT_EQ(f.mono, Monotonicity::NonIncreasing);
  EXPECT_DOUBLE_EQ(f.range.lo, 0.5);
  EXPECT_DOUBLE_EQ(f.range.hi, 2);
  EXPECT_FALSE(f.range.may_nan);

  // d - d is treated conservatively (no cancellation in interval land).
  auto sub = std::make_shared<IrExpr>();
  sub->op = IrOp::Sub;
  sub->children = {dist, dist};
  f = analyze_expr(sub, in);
  EXPECT_EQ(f.mono, Monotonicity::Unknown);

  // Coordinate loads poison monotonicity-in-distance.
  auto q = std::make_shared<IrExpr>();
  q->op = IrOp::LoadQCoord;
  auto mixed = std::make_shared<IrExpr>();
  mixed->op = IrOp::Add;
  mixed->children = {dist, q};
  f = analyze_expr(mixed, in);
  EXPECT_EQ(f.mono, Monotonicity::Unknown);
  EXPECT_TRUE(f.depends_on_coords);
}

TEST(AnalysisSweep, DivisionByIntervalContainingZeroMayNan) {
  AnalysisInputs in;
  in.dist_lo = 0;
  in.dist_hi = 4;
  auto dist = std::make_shared<IrExpr>();
  dist->op = IrOp::Dist;
  auto one = std::make_shared<IrExpr>();
  one->op = IrOp::Const;
  one->value = 1;
  auto div = std::make_shared<IrExpr>();
  div->op = IrOp::Div;
  div->children = {one, dist};
  const ExprFacts f = analyze_expr(div, in);
  // 1/[0,4]: unbounded, but 1/0 = inf, not NaN.
  EXPECT_FALSE(f.range.may_nan);

  auto div00 = std::make_shared<IrExpr>();
  div00->op = IrOp::Div;
  div00->children = {dist, dist};
  EXPECT_TRUE(analyze_expr(div00, in).range.may_nan); // 0/0 possible
}

TEST(AnalysisSweep, StructuralSymmetry) {
  Var q, r;
  (void)q;
  (void)r;
  auto load_q = std::make_shared<IrExpr>();
  load_q->op = IrOp::LoadQCoord;
  auto load_r = std::make_shared<IrExpr>();
  load_r->op = IrOp::LoadRCoord;
  auto sub = std::make_shared<IrExpr>();
  sub->op = IrOp::Sub;
  sub->children = {load_q, load_r};
  // q - r swaps to r - q: not structurally identical.
  EXPECT_FALSE(ir_kernel_symmetric(sub));
  // A kernel with no coordinate dependence is trivially symmetric.
  auto c = std::make_shared<IrExpr>();
  c->op = IrOp::Const;
  c->value = 3;
  EXPECT_TRUE(ir_kernel_symmetric(c));
  EXPECT_TRUE(ir_structurally_equal(sub, sub));
  EXPECT_FALSE(ir_structurally_equal(sub, c));
}

// -- PTL-W101: constant kernel ----------------------------------------------

TEST(Lint, W101FiresOnConstantKernel) {
  Storage data(make_gaussian_mixture(50, 3, 1, 51));
  Var q, r;
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, q, data);
  expr.addLayer(PortalOp::SUM, r, data, Expr(2.0) + Expr(1.0));
  expr.compile();
  EXPECT_TRUE(has_code(expr.artifacts().lint_diagnostics, "PTL-W101"));
}

TEST(Lint, W101QuietOnDistanceKernel) {
  Storage data(make_gaussian_mixture(50, 3, 1, 52));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer(PortalOp::SUM, data, PortalFunc::gaussian(1.0));
  expr.compile();
  EXPECT_FALSE(has_code(expr.artifacts().lint_diagnostics, "PTL-W101"));
}

// -- PTL-W102: unsatisfiable prune condition --------------------------------

TEST(Lint, W102FiresWhenIndicatorDisjointFromData) {
  // Two clusters ~100 apart; the shell [0.5, 1.5] can never hold.
  Storage a = cluster_at(0);
  Storage b = cluster_at(100);
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, a);
  expr.addLayer(PortalOp::UNIONARG, b, PortalFunc::indicator(0.5, 1.5));
  expr.compile();
  EXPECT_TRUE(has_code(expr.artifacts().lint_diagnostics, "PTL-W102"));
}

TEST(Lint, W102QuietWhenIndicatorAchievable) {
  Storage data(make_gaussian_mixture(100, 3, 2, 53));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer(PortalOp::UNIONARG, data, PortalFunc::indicator(0.1, 1.5));
  expr.compile();
  EXPECT_FALSE(has_code(expr.artifacts().lint_diagnostics, "PTL-W102"));
  EXPECT_FALSE(has_code(expr.artifacts().lint_diagnostics, "PTL-W103"));
}

// -- PTL-W103: always-true prune condition ----------------------------------

TEST(Lint, W103FiresWhenIndicatorCoversEverything) {
  Storage data(make_gaussian_mixture(80, 3, 2, 54));
  Var q, r;
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, q, data);
  // d < 1e9 holds for every achievable pair: selects all, prunes nothing.
  expr.addLayer(PortalOp::SUM, r, data,
                sqrt(pow(Expr(q) - Expr(r), 2)) < Expr(1e9));
  expr.compile();
  EXPECT_TRUE(has_code(expr.artifacts().lint_diagnostics, "PTL-W103"));
}

TEST(Lint, W103QuietWhenBoundBites) {
  Storage data(make_gaussian_mixture(80, 3, 2, 55));
  Var q, r;
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, q, data);
  expr.addLayer(PortalOp::SUM, r, data,
                sqrt(pow(Expr(q) - Expr(r), 2)) < Expr(1.0));
  expr.compile();
  EXPECT_FALSE(has_code(expr.artifacts().lint_diagnostics, "PTL-W103"));
}

// -- PTL-W104: guaranteed non-finite kernel ---------------------------------

TEST(Lint, W104FiresOnGuaranteedNaN) {
  Storage data(make_gaussian_mixture(50, 3, 1, 56));
  Var q, r;
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, q, data);
  // log(-1 - d): argument is <= -1 for every pair -> NaN always.
  expr.addLayer(PortalOp::SUM, r, data,
                log(Expr(-1.0) - sqrt(pow(Expr(q) - Expr(r), 2))));
  expr.compile();
  EXPECT_TRUE(has_code(expr.artifacts().lint_diagnostics, "PTL-W104"));
}

TEST(Lint, W104QuietOnFiniteKernel) {
  Storage data(make_gaussian_mixture(50, 3, 1, 57));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer(PortalOp::SUM, data, PortalFunc::gaussian(0.5));
  expr.compile();
  EXPECT_FALSE(has_code(expr.artifacts().lint_diagnostics, "PTL-W104"));
}

// -- PTL-W105: pruning traversal without a usable prune rule ----------------

TEST(Lint, W105FiresOnOpaqueKernelUnderArgmin) {
  Storage data(make_gaussian_mixture(60, 3, 2, 58));
  Var q, r;
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, q, data);
  // A dot-product kernel reaches coordinates outside the distance atom, so
  // no envelope exists and ARGMIN cannot prune.
  expr.addLayer(PortalOp::ARGMIN, r, data, dimsum(Expr(q) * Expr(r)));
  expr.compile();
  EXPECT_TRUE(has_code(expr.artifacts().lint_diagnostics, "PTL-W105"));
}

TEST(Lint, W105QuietOnPrunableChain) {
  Storage data(make_gaussian_mixture(60, 3, 2, 59));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer(PortalOp::ARGMIN, data, PortalFunc::EUCLIDEAN);
  expr.compile();
  EXPECT_FALSE(has_code(expr.artifacts().lint_diagnostics, "PTL-W105"));
}

// -- PTL-W106: tau supplied to a family that ignores it ---------------------

TEST(Lint, W106FiresWhenTauIgnored) {
  Storage data(make_gaussian_mixture(60, 3, 2, 60));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer({PortalOp::KARGMIN, 3}, data, PortalFunc::EUCLIDEAN);
  PortalConfig config;
  config.tau = 0.01;
  config.tau_explicit = true; // as `set tau = ...` / --tau mark it
  expr.setConfig(config);
  expr.compile();
  EXPECT_TRUE(has_code(expr.artifacts().lint_diagnostics, "PTL-W106"));
}

TEST(Lint, W106QuietWhenTauDrivesApproximation) {
  Storage data(make_gaussian_mixture(60, 3, 2, 61));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer(PortalOp::SUM, data, PortalFunc::gaussian(0.8));
  PortalConfig config;
  config.tau = 0.01;
  config.tau_explicit = true;
  expr.setConfig(config);
  expr.compile();
  EXPECT_FALSE(has_code(expr.artifacts().lint_diagnostics, "PTL-W106"));
}

TEST(Lint, W106QuietWhenTauDefaulted) {
  Storage data(make_gaussian_mixture(60, 3, 2, 62));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer({PortalOp::KARGMIN, 3}, data, PortalFunc::EUCLIDEAN);
  expr.compile(); // tau not explicitly set: nothing to warn about
  EXPECT_FALSE(has_code(expr.artifacts().lint_diagnostics, "PTL-W106"));
}

// -- analysis-gated prune legality ------------------------------------------

TEST(AnalysisGating, GatedAndLegacySelectionAgree) {
  // The facts are defined to coincide with the legacy shape comparisons;
  // results must be bitwise identical with gating on and off. (The fuzz
  // suite drives this across random chains; this is the deterministic core.)
  Storage query(make_gaussian_mixture(60, 3, 2, 63));
  Storage reference(make_gaussian_mixture(120, 3, 2, 64));

  auto run = [&](bool gated) {
    PortalConfig config;
    config.parallel = false;
    config.analysis_gated_prune = gated;
    config.engine = Engine::VM;

    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, query);
    expr.addLayer({PortalOp::KMIN, 3}, reference, PortalFunc::EUCLIDEAN);
    expr.execute(config);
    EXPECT_EQ(expr.plan().analysis_gated, gated);
    Storage out = expr.getOutput();
    std::vector<real_t> values;
    for (index_t i = 0; i < out.rows(); ++i)
      for (index_t j = 0; j < out.cols(); ++j)
        values.push_back(out.value(i, j));
    return values;
  };

  const std::vector<real_t> gated = run(true);
  const std::vector<real_t> legacy = run(false);
  ASSERT_EQ(gated.size(), legacy.size());
  for (std::size_t i = 0; i < gated.size(); ++i)
    EXPECT_EQ(gated[i], legacy[i]) << "slot " << i; // bitwise, not NEAR
}

TEST(AnalysisGating, FactsCachedOnPlanNextToFingerprint) {
  Storage data(make_gaussian_mixture(60, 3, 2, 65));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer(PortalOp::SUM, data, PortalFunc::gaussian(0.8));
  expr.compile();
  EXPECT_NE(expr.plan().fingerprint, 0u);
  EXPECT_TRUE(expr.plan().facts.computed);
  // Facts must not perturb plan identity: recompiling with gating off keeps
  // the fingerprint (same verified IR).
  const std::uint64_t fp = expr.plan().fingerprint;
  PortalConfig config;
  config.analysis_gated_prune = false;
  expr.setConfig(config);
  expr.compile();
  EXPECT_EQ(expr.plan().fingerprint, fp);
}

// -- pass-manager hook: analysis runs in the verify sandwich ----------------

TEST(AnalysisHook, SummaryAppearsInVerifyReport) {
  Storage data(make_gaussian_mixture(60, 3, 2, 66));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer(PortalOp::SUM, data, PortalFunc::gaussian(0.8));
  expr.compile();
  EXPECT_NE(expr.artifacts().verify_report.find("analysis:"), std::string::npos);
  EXPECT_NE(expr.artifacts().pipeline_trace.find("analysis"), std::string::npos);
}

} // namespace
} // namespace portal
