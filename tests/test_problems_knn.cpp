// Tests for the k-nearest-neighbor problem: the dual-tree expert
// implementation must reproduce brute force exactly (pruning is lossless for
// pruning-class problems, Sec. II-B), across a TEST_P sweep of shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "data/generators.h"
#include "problems/knn.h"
#include "util/threading.h"

namespace portal {
namespace {

void expect_same_distances(const KnnResult& expected, const KnnResult& actual,
                           real_t tol = 1e-9) {
  ASSERT_EQ(expected.k, actual.k);
  ASSERT_EQ(expected.distances.size(), actual.distances.size());
  for (std::size_t i = 0; i < expected.distances.size(); ++i)
    EXPECT_NEAR(expected.distances[i], actual.distances[i], tol)
        << "at slot " << i;
}

class KnnSweep : public testing::TestWithParam<
                     std::tuple<index_t, index_t, index_t, index_t, bool>> {};

TEST_P(KnnSweep, ExpertMatchesBruteForce) {
  const auto [n, dim, k, leaf_size, parallel] = GetParam();
  const Dataset reference = make_gaussian_mixture(n, dim, 3, 100 + n);
  const Dataset query = make_gaussian_mixture(n / 2 + 5, dim, 3, 200 + n);

  const KnnResult brute = knn_bruteforce(query, reference, k);
  KnnOptions options;
  options.k = k;
  options.leaf_size = leaf_size;
  options.parallel = parallel;
  const KnnResult expert = knn_expert(query, reference, options);

  expect_same_distances(brute, expert);
  // Distances ascending per row.
  for (index_t i = 0; i < query.size(); ++i)
    for (index_t j = 1; j < k; ++j)
      EXPECT_LE(expert.distances[i * k + j - 1], expert.distances[i * k + j]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KnnSweep,
    testing::Values(std::make_tuple(50, 2, 1, 8, false),
                    std::make_tuple(200, 3, 5, 16, false),
                    std::make_tuple(500, 2, 3, 32, true),
                    std::make_tuple(300, 7, 10, 8, false),
                    std::make_tuple(1000, 4, 2, 64, true),
                    std::make_tuple(128, 12, 4, 4, false),
                    std::make_tuple(64, 1, 8, 8, false)));

TEST(Knn, SelfQueryFindsSelfFirst) {
  const Dataset data = make_gaussian_mixture(300, 3, 2, 42);
  KnnOptions options;
  options.k = 2;
  const KnnResult result = knn_expert(data, data, options);
  for (index_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(result.distances[i * 2], 0.0, 1e-12);
    EXPECT_EQ(result.indices[i * 2], i);
  }
}

TEST(Knn, IndicesPointAtTrueNeighbors) {
  // Distances recomputed from the returned indices must equal the reported
  // distances (catches index permutation bugs that distance-only checks miss).
  const Dataset reference = make_gaussian_mixture(200, 3, 2, 9);
  const Dataset query = make_gaussian_mixture(70, 3, 2, 10);
  KnnOptions options;
  options.k = 3;
  const KnnResult result = knn_expert(query, reference, options);
  for (index_t i = 0; i < query.size(); ++i)
    for (index_t j = 0; j < 3; ++j) {
      const index_t r = result.indices[i * 3 + j];
      ASSERT_GE(r, 0);
      real_t sq = 0;
      for (index_t d = 0; d < 3; ++d) {
        const real_t diff = query.coord(i, d) - reference.coord(r, d);
        sq += diff * diff;
      }
      EXPECT_NEAR(std::sqrt(sq), result.distances[i * 3 + j], 1e-9);
    }
}

TEST(Knn, ManhattanAndChebyshevMetrics) {
  const Dataset reference = make_gaussian_mixture(300, 4, 2, 11);
  const Dataset query = make_gaussian_mixture(100, 4, 2, 12);
  for (MetricKind metric : {MetricKind::Manhattan, MetricKind::Chebyshev}) {
    const KnnResult brute = knn_bruteforce(query, reference, 4, metric);
    KnnOptions options;
    options.k = 4;
    options.metric = metric;
    const KnnResult expert = knn_expert(query, reference, options);
    expect_same_distances(brute, expert);
  }
}

TEST(Knn, PruningActuallyHappens) {
  // Clustered data must let the dual-tree skip most node pairs.
  const Dataset data = make_gaussian_mixture(4000, 3, 8, 13);
  KnnOptions options;
  options.k = 1;
  options.parallel = false;
  const KnnResult result = knn_expert(data, data, options);
  EXPECT_GT(result.stats.prunes, 0u);
  // Visited node pairs far fewer than leaves^2.
  const std::uint64_t leaves = 4000 / 32 + 1;
  EXPECT_LT(result.stats.base_cases, leaves * leaves / 4);
}

TEST(Knn, WorksWithColMajorLowDim) {
  const Dataset reference = make_gaussian_mixture(400, 2, 3, 14); // col-major
  ASSERT_EQ(reference.layout(), Layout::ColMajor);
  const Dataset query = make_gaussian_mixture(150, 2, 3, 15);
  const KnnResult brute = knn_bruteforce(query, reference, 3);
  KnnOptions options;
  options.k = 3;
  const KnnResult expert = knn_expert(query, reference, options);
  expect_same_distances(brute, expert);
}

TEST(Knn, KEqualsReferenceSize) {
  const Dataset reference = make_uniform(16, 2, 16);
  const Dataset query = make_uniform(8, 2, 17);
  KnnOptions options;
  options.k = 16;
  const KnnResult expert = knn_expert(query, reference, options);
  const KnnResult brute = knn_bruteforce(query, reference, 16);
  expect_same_distances(brute, expert);
}

TEST(Knn, InvalidArgumentsThrow) {
  const Dataset a = make_uniform(10, 2, 18);
  const Dataset b = make_uniform(10, 3, 19);
  KnnOptions options;
  options.k = 1;
  EXPECT_THROW(knn_expert(a, b, options), std::invalid_argument); // dim mismatch
  options.k = 0;
  EXPECT_THROW(knn_expert(a, a, options), std::invalid_argument);
  options.k = 11;
  EXPECT_THROW(knn_expert(a, a, options), std::invalid_argument); // k > n
  EXPECT_THROW(knn_bruteforce(Dataset(0, 2), a, 1), std::invalid_argument);
}

TEST(Knn, ParallelMatchesSerial) {
  const Dataset data = make_gaussian_mixture(1500, 3, 4, 20);
  KnnOptions serial;
  serial.k = 5;
  serial.parallel = false;
  KnnOptions parallel;
  parallel.k = 5;
  parallel.parallel = true;
  parallel.task_depth = 6;
  set_num_threads(4);
  const KnnResult a = knn_expert(data, data, serial);
  const KnnResult b = knn_expert(data, data, parallel);
  expect_same_distances(a, b);
}

} // namespace
} // namespace portal
