// Tests for the ball tree: bound soundness, structural invariants, and the
// tree-abstraction claim -- the same dual-tree k-NN rules must produce
// identical results over kd-trees and ball trees.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "data/generators.h"
#include "problems/knn.h"
#include "tree/balltree.h"
#include "util/rng.h"

namespace portal {
namespace {

TEST(BallBound, PointAndBallDistances) {
  // Unit ball at origin vs unit ball at (4, 0): gap = 2.
  BallBound a({0.0, 0.0}, 1.0);
  BallBound b({4.0, 0.0}, 1.0);
  EXPECT_DOUBLE_EQ(a.min_sq_dist(b), 4.0);  // (4 - 1 - 1)^2
  EXPECT_DOUBLE_EQ(a.max_sq_dist(b), 36.0); // (4 + 1 + 1)^2
  // Overlapping balls: zero min distance.
  BallBound c({1.0, 0.0}, 1.0);
  EXPECT_DOUBLE_EQ(a.min_sq_dist(c), 0.0);
  // Point bounds.
  const real_t p[2] = {3, 0};
  EXPECT_DOUBLE_EQ(a.min_sq_dist_point(p), 4.0);  // (3 - 1)^2
  EXPECT_DOUBLE_EQ(a.max_sq_dist_point(p), 16.0); // (3 + 1)^2
  EXPECT_DOUBLE_EQ(a.widest_extent(), 2.0);
}

TEST(BallBound, BoundsSandwichContainedPoints) {
  Rng rng(61);
  for (int trial = 0; trial < 40; ++trial) {
    const index_t dim = 2 + static_cast<index_t>(rng.uniform_index(6));
    // Build two balls from point clouds (centroid + covering radius).
    std::vector<std::vector<real_t>> pa(8, std::vector<real_t>(dim));
    std::vector<std::vector<real_t>> pb(8, std::vector<real_t>(dim));
    std::vector<real_t> ca(dim, 0), cb(dim, 0);
    for (auto& p : pa)
      for (index_t d = 0; d < dim; ++d) {
        p[d] = rng.uniform(-2, 1);
        ca[d] += p[d] / 8;
      }
    for (auto& p : pb)
      for (index_t d = 0; d < dim; ++d) {
        p[d] = rng.uniform(0, 3);
        cb[d] += p[d] / 8;
      }
    real_t ra = 0, rb = 0;
    for (const auto& p : pa) {
      real_t sq = 0;
      for (index_t d = 0; d < dim; ++d) sq += (p[d] - ca[d]) * (p[d] - ca[d]);
      ra = std::max(ra, std::sqrt(sq));
    }
    for (const auto& p : pb) {
      real_t sq = 0;
      for (index_t d = 0; d < dim; ++d) sq += (p[d] - cb[d]) * (p[d] - cb[d]);
      rb = std::max(rb, std::sqrt(sq));
    }
    const BallBound ball_a(ca, ra), ball_b(cb, rb);
    const real_t lo = ball_a.min_sq_dist(ball_b);
    const real_t hi = ball_a.max_sq_dist(ball_b);
    for (const auto& x : pa)
      for (const auto& y : pb) {
        real_t sq = 0;
        for (index_t d = 0; d < dim; ++d) sq += (x[d] - y[d]) * (x[d] - y[d]);
        EXPECT_GE(sq, lo - 1e-9);
        EXPECT_LE(sq, hi + 1e-9);
      }
  }
}

class BallTreeInvariants
    : public testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {};

TEST_P(BallTreeInvariants, StructureIsValid) {
  const auto [n, dim, leaf_size] = GetParam();
  const Dataset data = make_gaussian_mixture(n, dim, 3, 177);
  const BallTree tree(data, leaf_size);

  // Permutation bijection.
  std::vector<index_t> seen(n, 0);
  for (index_t p : tree.perm()) ++seen[p];
  for (index_t c : seen) EXPECT_EQ(c, 1);

  index_t leaf_points = 0;
  std::vector<real_t> pt(dim);
  for (index_t i = 0; i < tree.num_nodes(); ++i) {
    const BallNode& node = tree.node(i);
    ASSERT_LT(node.begin, node.end);
    if (node.is_leaf()) {
      EXPECT_LE(node.count(), leaf_size);
      leaf_points += node.count();
    } else {
      EXPECT_EQ(tree.node(node.left).end, tree.node(node.right).begin);
      EXPECT_EQ(tree.node(node.left).parent, i);
    }
    // Every point inside the node's ball.
    for (index_t p = node.begin; p < node.end; ++p) {
      tree.data().copy_point(p, pt.data());
      real_t sq = 0;
      for (index_t d = 0; d < dim; ++d) {
        const real_t diff = pt[d] - node.box.center(d);
        sq += diff * diff;
      }
      EXPECT_LE(std::sqrt(sq), node.box.radius() + 1e-9);
    }
  }
  EXPECT_EQ(leaf_points, n);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BallTreeInvariants,
                         testing::Values(std::make_tuple(1, 2, 8),
                                         std::make_tuple(100, 3, 8),
                                         std::make_tuple(500, 10, 16),
                                         std::make_tuple(1000, 40, 32)));

class BallKnnSweep
    : public testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {};

TEST_P(BallKnnSweep, BallTreeKnnMatchesKdTreeKnn) {
  const auto [n, dim, k] = GetParam();
  const Dataset reference = make_gaussian_mixture(n, dim, 3, 277 + dim);
  const Dataset query = make_gaussian_mixture(n / 2 + 3, dim, 3, 377 + dim);
  KnnOptions options;
  options.k = k;
  options.parallel = false;
  const KnnResult kd = knn_expert(query, reference, options);
  const KnnResult ball = knn_expert_balltree(query, reference, options);
  ASSERT_EQ(kd.distances.size(), ball.distances.size());
  for (std::size_t i = 0; i < kd.distances.size(); ++i)
    EXPECT_NEAR(kd.distances[i], ball.distances[i], 1e-9) << "slot " << i;
  // At very high dimension with few points the balls overlap everywhere and
  // nothing prunes; only assert pruning where geometry allows it.
  if (dim <= 12) {
    EXPECT_GT(ball.stats.prunes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BallKnnSweep,
                         testing::Values(std::make_tuple(300, 3, 1),
                                         std::make_tuple(500, 3, 5),
                                         std::make_tuple(400, 12, 3),
                                         std::make_tuple(300, 40, 2)));

TEST(BallTree, ManhattanBoundsAreConservative) {
  // L1 k-NN over ball trees uses norm-equivalence bounds: still exact results.
  const Dataset reference = make_gaussian_mixture(300, 5, 3, 477);
  const Dataset query = make_gaussian_mixture(100, 5, 3, 577);
  KnnOptions options;
  options.k = 3;
  options.metric = MetricKind::Manhattan;
  options.parallel = false;
  const KnnResult brute = knn_bruteforce(query, reference, 3, MetricKind::Manhattan);
  const KnnResult ball = knn_expert_balltree(query, reference, options);
  for (std::size_t i = 0; i < brute.distances.size(); ++i)
    EXPECT_NEAR(brute.distances[i], ball.distances[i], 1e-9);
}

TEST(BallTree, RejectsBadLeafSize) {
  const Dataset data = make_uniform(10, 2, 677);
  EXPECT_THROW(BallTree(data, 0), std::invalid_argument);
}

} // namespace
} // namespace portal
