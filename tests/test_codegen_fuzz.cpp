// Randomized codegen fuzz: random kernel ASTs are lowered and executed
// through every backend path -- plain VM, optimized (strength-reduced +
// constant-folded) VM, and the C++-source JIT -- which must agree within the
// documented fast-math envelope. This is the differential test that keeps
// the three "LLVM substitutes" honest against each other.
//
// The DifferentialConformance suite below extends the kernel-level fuzz to
// whole random layer chains: every chain is executed through the VM, the JIT,
// and (when a specialized kernel matches) the pattern engine, each run with
// config.validate = true so the engine self-checks against the generated
// brute-force program; engine outputs are then compared elementwise against
// each other. The RNG seed comes from PORTAL_FUZZ_SEED (logged at the start
// of each test) so a sanitizer-CI failure is reproducible locally.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <vector>

#include "core/analysis.h"
#include "core/codegen/artifact_cache.h"
#include "core/codegen/jit.h"
#include "core/codegen/pattern.h"
#include "core/codegen/vm.h"
#include "core/executor.h"
#include "core/ir/ir.h"
#include "core/passes/lowering.h"
#include "core/passes/passes.h"
#include "core/portal.h"
#include "core/verify/verify.h"
#include "data/generators.h"
#include "kernels/batch.h"
#include "problems/common.h"
#include "serve/engine.h"
#include "serve/live.h"
#include "serve/plan_cache.h"
#include "traversal/cursor.h"
#include "traversal/singletree.h"
#include "tree/balltree.h"
#include "tree/octree.h"
#include "tree/snapshot.h"
#include "util/rng.h"

namespace portal {
namespace {

/// Fuzz seed: PORTAL_FUZZ_SEED env override, fixed default. CI pins the env
/// so sanitizer runs are reproducible; the value is printed on entry either
/// way so a red run can be replayed.
std::uint64_t fuzz_seed() {
  const char* env = std::getenv("PORTAL_FUZZ_SEED");
  if (env != nullptr && *env != '\0')
    return std::strtoull(env, nullptr, 10);
  return 20260806ull;
}

/// Random kernel AST generator. Depth-bounded; always scalar-rooted.
/// Generated functions stay in "safe" numeric ranges: exp arguments are
/// damped, log/sqrt arguments are forced non-negative via squaring.
class AstFuzzer {
 public:
  AstFuzzer(std::uint64_t seed, const Var& q, const Var& r)
      : rng_(seed), q_(q), r_(r) {}

  Expr scalar_kernel() { return dimsum(vector_expr(3)) * small_const() + scalar_tail(); }

 private:
  Expr vector_expr(int depth) {
    if (depth <= 0) return leaf_vector();
    switch (rng_.uniform_index(5)) {
      case 0: return vector_expr(depth - 1) + vector_expr(depth - 1);
      case 1: return vector_expr(depth - 1) - leaf_vector();
      case 2: return vector_expr(depth - 1) * small_const();
      case 3: return abs(vector_expr(depth - 1));
      default: return pow(leaf_vector(), static_cast<real_t>(rng_.uniform_index(3)));
    }
  }

  Expr leaf_vector() {
    switch (rng_.uniform_index(3)) {
      case 0: return Expr(q_) - Expr(r_);
      case 1: return Expr(q_);
      default: return Expr(r_);
    }
  }

  Expr scalar_tail() {
    switch (rng_.uniform_index(4)) {
      case 0: return exp(Expr(-0.1) * dimsum(pow(Expr(q_) - Expr(r_), 2)));
      case 1: return sqrt(pow(Expr(q_) - Expr(r_), 2));
      case 2: return vmin(dimsum(abs(Expr(q_) - Expr(r_))), Expr(3.0));
      default: return dimmax(abs(Expr(q_) - Expr(r_))) + small_const();
    }
  }

  Expr small_const() { return Expr(rng_.uniform(0.25, 2.0)); }

  Rng rng_;
  const Var& q_;
  const Var& r_;
};

TEST(CodegenFuzz, VmPlainVsVmOptimizedVsJit) {
  Rng point_rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    Var q("q"), r("r");
    AstFuzzer fuzzer(5000 + trial, q, r);
    const Expr kernel = fuzzer.scalar_kernel();
    SCOPED_TRACE("kernel: " + kernel.to_string());

    const IrExprPtr plain_ir = lower_kernel_expr(kernel, q.id(), r.id(), {});
    IrExprPtr optimized_ir = strength_reduction_pass(plain_ir);
    optimized_ir = constant_fold_pass(optimized_ir);

    // Fuzz invariant: every random kernel, before and after optimization,
    // is verifier-clean -- passes must never manufacture malformed IR.
    DiagnosticEngine verify_diags;
    verify_expr(plain_ir, IrContext::Executable, IrVerifyContext{},
                &verify_diags, "plain");
    verify_expr(optimized_ir, IrContext::Executable, IrVerifyContext{},
                &verify_diags, "optimized");
    ASSERT_TRUE(verify_diags.ok()) << verify_diags.report();

    const VmProgram plain = VmProgram::compile(plain_ir);
    const VmProgram optimized = VmProgram::compile(optimized_ir);

    // JIT the same optimized IR through a synthetic plan.
    Storage data(make_uniform(8, 4, 42));
    std::vector<LayerSpec> layers(2);
    layers[0].op = OpSpec(PortalOp::FORALL);
    layers[0].storage = data;
    layers[0].var_id = q.id();
    layers[1].op = OpSpec(PortalOp::SUM);
    layers[1].storage = data;
    layers[1].var_id = r.id();
    layers[1].custom_kernel = kernel;
    ProblemPlan plan = analyze_layers(layers, PortalConfig{});
    plan.kernel.kernel_ir = optimized_ir;
    const auto jit = JitModule::compile(plan);
    ASSERT_NE(jit, nullptr);
    const EvaluatorFns jit_fns = jit->evaluators();

    std::vector<real_t> scratch(32);
    for (int sample = 0; sample < 50; ++sample) {
      real_t a[4], b[4];
      for (int d = 0; d < 4; ++d) {
        a[d] = point_rng.uniform(-3, 3);
        b[d] = point_rng.uniform(-3, 3);
      }
      const real_t v_plain = plain.run_pair(a, b, 4, scratch.data());
      const real_t v_opt = optimized.run_pair(a, b, 4, scratch.data());
      const real_t v_jit = jit_fns.kernel_pair(a, b, 4, scratch.data());

      // Optimized VM and JIT execute the SAME IR: bit-comparable modulo
      // compiler reassociation; the plain VM differs only by the fast-math
      // rewrites. The fast-sqrt error is relative to the *sqrt term* (up to
      // ~12 for these point ranges), not to the possibly-cancelled total, so
      // the tolerance carries that intermediate magnitude.
      const real_t scale = std::max({std::abs(v_plain), std::abs(v_opt), real_t(1)});
      EXPECT_NEAR(v_opt, v_jit, 1e-9 * scale);
      EXPECT_NEAR(v_plain, v_opt, 4e-3 * (scale + 16));
    }
  }
}

TEST(CodegenFuzz, EndToEndProgramsAcrossEngines) {
  // Random custom kernels through full PortalExpr runs: VM vs JIT engines.
  for (int trial = 0; trial < 3; ++trial) {
    Var q, r;
    AstFuzzer fuzzer(7000 + trial, q, r);
    const Expr kernel = fuzzer.scalar_kernel();
    SCOPED_TRACE("kernel: " + kernel.to_string());

    Storage query(make_gaussian_mixture(80, 3, 2, 61 + trial));
    Storage reference(make_gaussian_mixture(120, 3, 2, 71 + trial));

    std::vector<real_t> vm_values, jit_values;
    for (Engine engine : {Engine::VM, Engine::JIT}) {
      PortalExpr expr;
      expr.addLayer(PortalOp::FORALL, q, query);
      expr.addLayer(PortalOp::MIN, r, reference, kernel);
      PortalConfig config;
      config.parallel = false;
      config.engine = engine;
      expr.execute(config);

      // Fuzz invariant: the post-pass program IR verifies clean under the
      // full dataset context (layout-consistent strides included).
      IrVerifyContext vc;
      vc.dim = query.dim();
      vc.query_layout = query.layout();
      vc.query_size = query.size();
      vc.ref_layout = reference.layout();
      vc.ref_size = reference.size();
      vc.after_flattening = true;
      vc.check_strides = true;
      DiagnosticEngine verify_diags = verify_program(expr.plan().ir, vc);
      ASSERT_TRUE(verify_diags.ok()) << verify_diags.report();

      Storage out = expr.getOutput();
      std::vector<real_t>& values = engine == Engine::VM ? vm_values : jit_values;
      for (index_t i = 0; i < out.rows(); ++i) values.push_back(out.value(i));
    }
    ASSERT_EQ(vm_values.size(), jit_values.size());
    for (std::size_t i = 0; i < vm_values.size(); ++i)
      EXPECT_NEAR(vm_values[i], jit_values[i],
                  1e-9 * std::max(std::abs(vm_values[i]), real_t(1)))
          << "query " << i;
  }
}

// ---------------------------------------------------------------------------
// Differential conformance: random layer chains across all three engines.
// ---------------------------------------------------------------------------

/// One randomly generated two-layer Portal program.
struct ChainSpec {
  std::string description;
  OpSpec outer{PortalOp::FORALL};
  OpSpec inner{PortalOp::SUM};
  bool self_join = false;     // reference aliases the query storage
  bool use_custom = false;    // kernel is a random Expr over (q, r)
  PortalFunc func = PortalFunc::EUCLIDEAN;
  Expr custom_kernel;
};

/// Random 3x3 SPD covariance: A A^T + eps I with A ~ U(-1,1)^{3x3}.
std::vector<real_t> random_spd3(Rng& rng) {
  real_t a[9];
  for (real_t& x : a) x = rng.uniform(-1, 1);
  std::vector<real_t> cov(9, 0);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      for (int k = 0; k < 3; ++k) cov[i * 3 + j] += a[i * 3 + k] * a[j * 3 + k];
      if (i == j) cov[i * 3 + j] += real_t(0.5);
    }
  return cov;
}

/// Draw one chain. Families deliberately overweight the pattern-eligible
/// shapes so the pattern engine participates in a healthy fraction of chains.
ChainSpec draw_chain(Rng& rng, const Var& q, const Var& r, int chain_index,
                     std::uint64_t seed) {
  ChainSpec spec;
  switch (rng.uniform_index(9)) {
    case 0: // KDE shape: pattern-eligible Gaussian density sum
      spec.description = "kde";
      spec.inner = OpSpec(PortalOp::SUM);
      spec.func = PortalFunc::gaussian(rng.uniform(0.4, 1.5));
      return spec;
    case 1: { // k-NN shape: pattern-eligible
      spec.description = "knn";
      spec.inner = OpSpec(PortalOp::KARGMIN,
                          static_cast<index_t>(1 + rng.uniform_index(5)));
      spec.func = PortalFunc::EUCLIDEAN;
      return spec;
    }
    case 2: // range search shape: pattern-eligible
      spec.description = "range-search";
      spec.inner = OpSpec(PortalOp::UNIONARG);
      spec.func = PortalFunc::indicator(rng.uniform(0.0, 0.3) + 1e-9,
                                        rng.uniform(0.9, 2.0));
      return spec;
    case 3: // directed Hausdorff shape: pattern-eligible, scalar output
      spec.description = "hausdorff";
      spec.outer = OpSpec(PortalOp::MAX);
      spec.inner = OpSpec(PortalOp::MIN);
      spec.func = PortalFunc::EUCLIDEAN;
      return spec;
    case 4: // two-point shape: pattern-eligible, self-join scalar count.
            // Written as d < h (lo implicitly -inf) because the pattern
            // matcher requires an unbounded-below indicator for two-point.
      spec.description = "two-point";
      spec.outer = OpSpec(PortalOp::SUM);
      spec.inner = OpSpec(PortalOp::SUM);
      spec.self_join = true;
      spec.use_custom = true;
      spec.custom_kernel =
          sqrt(pow(Expr(q) - Expr(r), 2)) < Expr(rng.uniform(0.8, 1.6));
      return spec;
    case 5: { // Mahalanobis reduction: exercises the Cholesky rewrite
      spec.description = "mahalanobis-argmin";
      spec.inner = rng.uniform_index(2) == 0
                       ? OpSpec(PortalOp::ARGMIN)
                       : OpSpec(PortalOp::KARGMIN,
                                static_cast<index_t>(2 + rng.uniform_index(3)));
      spec.func = PortalFunc::mahalanobis_with(random_spd3(rng));
      return spec;
    }
    case 6: { // Mahalanobis kernel inside a custom sum (Fig. 3 style)
      spec.description = "mahalanobis-exp-sum";
      spec.inner = OpSpec(PortalOp::SUM);
      spec.use_custom = true;
      spec.custom_kernel =
          exp(Expr(-rng.uniform(0.1, 0.5)) * mahalanobis(q, r, random_spd3(rng)));
      return spec;
    }
    case 7: { // random custom kernel under a min-reduction
      spec.description = "custom-min";
      spec.inner = OpSpec(PortalOp::MIN);
      spec.use_custom = true;
      AstFuzzer fuzzer(seed * 1000 + chain_index, q, r);
      spec.custom_kernel = fuzzer.scalar_kernel();
      return spec;
    }
    default: { // random custom kernel summed
      spec.description = "custom-sum";
      spec.inner = OpSpec(PortalOp::SUM);
      spec.use_custom = true;
      AstFuzzer fuzzer(seed * 2000 + chain_index, q, r);
      spec.custom_kernel = fuzzer.scalar_kernel();
      return spec;
    }
  }
}

/// Execute one chain on one engine. validate = true makes the run self-check
/// against the generated brute-force program (tau-scaled tolerance for
/// approximation problems). Returns the output storage.
Storage run_chain(const ChainSpec& spec, const Var& q, const Var& r,
                  const Storage& query, const Storage& reference, Engine engine,
                  ProblemCategory* category, bool batch = true,
                  index_t leaf_size = 16, bool gated = true) {
  PortalExpr expr;
  if (spec.use_custom) {
    expr.addLayer(spec.outer, q, query);
    expr.addLayer(spec.inner, r, reference, spec.custom_kernel);
  } else {
    expr.addLayer(spec.outer, query);
    expr.addLayer(spec.inner, reference, spec.func);
  }
  PortalConfig config;
  config.engine = engine;
  config.parallel = false; // deterministic accumulation order per engine
  config.validate = true;  // every engine run is checked against brute force
  config.tau = 1e-3;
  config.leaf_size = leaf_size;
  config.batch_base_cases = batch;
  config.analysis_gated_prune = gated;
  expr.execute(config);
  if (category != nullptr) *category = expr.plan().category;
  return expr.getOutput();
}

TEST(DifferentialConformance, RandomChainsAgreeAcrossEngines) {
  const std::uint64_t seed = fuzz_seed();
  std::printf("PORTAL_FUZZ_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  Rng rng(seed);

  const bool jit = jit_available();
  constexpr int kChains = 200;
  int pattern_hits = 0;
  int maha_chains = 0;

  for (int chain = 0; chain < kChains; ++chain) {
    Var q, r;
    const ChainSpec spec = draw_chain(rng, q, r, chain, seed);
    const index_t nq = 24 + static_cast<index_t>(rng.uniform_index(32));
    const index_t nr = 32 + static_cast<index_t>(rng.uniform_index(48));
    Storage query(make_gaussian_mixture(nq, 3, 3, seed + 31 * chain));
    Storage reference = spec.self_join
                            ? query
                            : Storage(make_gaussian_mixture(
                                  nr, 3, 3, seed + 31 * chain + 17));
    SCOPED_TRACE("chain " + std::to_string(chain) + " [" + spec.description +
                 "] seed=" + std::to_string(seed) +
                 (spec.use_custom
                      ? " kernel: " + spec.custom_kernel.to_string()
                      : ""));

    // Baseline: the VM engine (always available, interprets the post-pass
    // IR directly).
    ProblemCategory category = ProblemCategory::Exhaustive;
    Storage baseline;
    ASSERT_NO_THROW(baseline = run_chain(spec, q, r, query, reference,
                                         Engine::VM, &category));

    // Approximation problems: each engine is within tau * |R| of the exact
    // answer (enforced by validate above), so two engines can differ by at
    // most twice that; exact problems must agree to float-noise.
    const real_t tolerance =
        category == ProblemCategory::Approximation
            ? 2 * real_t(1e-3) * static_cast<real_t>(reference.size())
            : real_t(1e-6);

    // Batched-vs-scalar differential: the baseline ran with the SIMD tile
    // base cases on (the default); the scalar per-pair path is the oracle.
    // Tolerance is ZERO -- per-lane operation order is identical and the
    // build carries no -ffast-math, so agreement must be bitwise.
    {
      Storage scalar_out;
      ASSERT_NO_THROW(scalar_out = run_chain(spec, q, r, query, reference,
                                             Engine::VM, nullptr,
                                             /*batch=*/false));
      const std::string mismatch =
          compare_outputs(scalar_out.output(), baseline.output(), 0);
      EXPECT_TRUE(mismatch.empty()) << "batched vm vs scalar vm: " << mismatch;
    }

    if (jit) {
      Storage jit_out;
      ASSERT_NO_THROW(jit_out = run_chain(spec, q, r, query, reference,
                                          Engine::JIT, nullptr));
      const std::string mismatch =
          compare_outputs(baseline.output(), jit_out.output(), tolerance);
      EXPECT_TRUE(mismatch.empty()) << "vm vs jit: " << mismatch;
    }

    try {
      Storage pattern_out =
          run_chain(spec, q, r, query, reference, Engine::Pattern, nullptr);
      ++pattern_hits;
      const std::string mismatch =
          compare_outputs(baseline.output(), pattern_out.output(), tolerance);
      EXPECT_TRUE(mismatch.empty()) << "vm vs pattern: " << mismatch;

      // The pattern engine's own batched/scalar pair must also be bitwise.
      Storage pattern_scalar =
          run_chain(spec, q, r, query, reference, Engine::Pattern, nullptr,
                    /*batch=*/false);
      const std::string bmis =
          compare_outputs(pattern_scalar.output(), pattern_out.output(), 0);
      EXPECT_TRUE(bmis.empty()) << "batched pattern vs scalar pattern: " << bmis;
    } catch (const std::invalid_argument&) {
      // No specialized kernel matches this chain; VM/JIT coverage stands.
    }

    if (spec.description.rfind("mahalanobis", 0) == 0) ++maha_chains;
  }

  // The family mix must actually exercise what this suite claims to cover.
  EXPECT_GE(pattern_hits, kChains / 8)
      << "pattern engine participated in too few chains";
  EXPECT_GE(maha_chains, kChains / 16)
      << "Mahalanobis chains under-represented";
}

// Analysis-gated prune legality: with config.analysis_gated_prune ON the
// engines answer "may I prune / is this an identity envelope / may I
// approximate" from the KernelFacts proven by the dataflow sweep
// (core/analysis); OFF re-matches envelope shapes the legacy way. The facts
// are *defined* to coincide with the legacy conditions, so flipping the flag
// swaps the oracle without ever changing an answer -- every engine must
// produce bitwise-identical output (tolerance ZERO, values and arg ids)
// either way. This is the acceptance wall for the gated-prune refactor.
TEST(DifferentialConformance, AnalysisGatedPruningBitwiseIdentical) {
  const std::uint64_t seed = fuzz_seed();
  std::printf("PORTAL_FUZZ_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);

  const bool jit = jit_available();
  constexpr int kChains = 60;

  for (int chain = 0; chain < kChains; ++chain) {
    Var q, r;
    const ChainSpec spec = draw_chain(rng, q, r, chain, seed);
    const index_t nq = 20 + static_cast<index_t>(rng.uniform_index(24));
    const index_t nr = 32 + static_cast<index_t>(rng.uniform_index(40));
    Storage query(make_gaussian_mixture(nq, 3, 3, seed + 97 * chain));
    Storage reference = spec.self_join
                            ? query
                            : Storage(make_gaussian_mixture(
                                  nr, 3, 3, seed + 97 * chain + 13));
    SCOPED_TRACE("chain " + std::to_string(chain) + " [" + spec.description +
                 "] seed=" + std::to_string(seed) +
                 (spec.use_custom
                      ? " kernel: " + spec.custom_kernel.to_string()
                      : ""));

    for (Engine engine : {Engine::VM, Engine::JIT, Engine::Pattern}) {
      if (engine == Engine::JIT && !jit) continue;
      Storage on, off;
      try {
        on = run_chain(spec, q, r, query, reference, engine, nullptr,
                       /*batch=*/true, /*leaf_size=*/16, /*gated=*/true);
        off = run_chain(spec, q, r, query, reference, engine, nullptr,
                        /*batch=*/true, /*leaf_size=*/16, /*gated=*/false);
      } catch (const std::invalid_argument&) {
        // Pattern engine: no specialized kernel matches this chain. Both
        // runs throw identically (the flag never changes matchability).
        continue;
      }
      const std::string mismatch = compare_outputs(on.output(), off.output(), 0);
      EXPECT_TRUE(mismatch.empty())
          << engine_name(engine) << " gated vs legacy: " << mismatch;
    }
  }
}

// Same invariant through the serving runtime at tau = 0: the single-query
// engine's prune/approximation decisions route through the same gated_fact
// helper, so a plan compiled with gating ON must answer every query bitwise
// identically (values AND ids) to one compiled with gating OFF.
TEST(DifferentialConformance, ServeEngineGatedPruningBitwiseIdentical) {
  const Dataset reference = make_gaussian_mixture(400, 3, 3, 20260807);
  const Dataset queries = make_gaussian_mixture(16, 3, 3, 11);
  const auto snapshot =
      TreeSnapshot::build(std::make_shared<const Dataset>(reference), 1, {});

  std::vector<LayerSpec> chains;
  {
    LayerSpec knn;
    knn.op = OpSpec(PortalOp::KARGMIN, 4);
    knn.func = PortalFunc::EUCLIDEAN;
    chains.push_back(knn);
    LayerSpec kde;
    kde.op = OpSpec(PortalOp::SUM);
    kde.func = PortalFunc::gaussian(0.8);
    chains.push_back(kde);
    LayerSpec range;
    range.op = OpSpec(PortalOp::UNIONARG);
    range.func = PortalFunc::indicator(1e-9, 1.2);
    chains.push_back(range);
    LayerSpec nn;
    nn.op = OpSpec(PortalOp::MIN);
    nn.func = PortalFunc::EUCLIDEAN;
    chains.push_back(nn);
  }

  for (std::size_t c = 0; c < chains.size(); ++c) {
    SCOPED_TRACE("serve chain " + std::to_string(c));
    PortalConfig config;
    config.tau = 0;
    config.analysis_gated_prune = true;
    serve::PlanCache gated_cache;
    serve::PlanHandle gated =
        gated_cache.get_or_compile(chains[c], reference, config);
    config.analysis_gated_prune = false;
    serve::PlanCache legacy_cache;
    serve::PlanHandle legacy =
        legacy_cache.get_or_compile(chains[c], reference, config);
    ASSERT_TRUE(gated);
    ASSERT_TRUE(legacy);
    EXPECT_TRUE(gated->plan.analysis_gated);
    EXPECT_FALSE(legacy->plan.analysis_gated);

    serve::Workspace ws;
    serve::EngineOptions options;
    options.tau = 0;
    for (index_t i = 0; i < queries.size(); ++i) {
      std::vector<real_t> pt(queries.dim());
      for (index_t d = 0; d < queries.dim(); ++d) pt[d] = queries.coord(i, d);
      const serve::QueryResult a =
          serve::run_query(*gated, *snapshot, pt.data(), options, ws);
      const serve::QueryResult b =
          serve::run_query(*legacy, *snapshot, pt.data(), options, ws);
      ASSERT_EQ(a.values.size(), b.values.size());
      for (std::size_t v = 0; v < b.values.size(); ++v) {
        if (std::isnan(b.values[v])) {
          EXPECT_TRUE(std::isnan(a.values[v])) << "query " << i << " slot " << v;
        } else {
          EXPECT_EQ(a.values[v], b.values[v]) << "query " << i << " slot " << v;
        }
      }
      ASSERT_EQ(a.ids.size(), b.ids.size());
      for (std::size_t v = 0; v < b.ids.size(); ++v)
        EXPECT_EQ(a.ids[v], b.ids[v]) << "query " << i << " slot " << v;
    }
  }
}

// Approximate-serving wall: a graph-routed answer is always a SUBSET of the
// dataset with *exact* values -- only completeness is approximate. Across
// random sizes, dimensions, k, beam widths, and both L2 metrics the
// approximate ids must be unique, in range, ascending by (value, id), and
// every value must be bitwise-equal to a scalar recompute of the distance to
// that id (sqrt taken at the edge for EUCLIDEAN, exactly like the exact
// engine). Exactness itself is statistical: recall against the exact engine
// is asserted only in aggregate, at the default beam width.
TEST(DifferentialConformance, ApproximateGraphSubsetWithExactDistances) {
  const std::uint64_t seed = fuzz_seed();
  std::printf("PORTAL_FUZZ_SEED=%llu\n", (unsigned long long)seed);
  Rng rng(seed ^ 0xa11ce5ULL);

  std::uint64_t recall_hits = 0;
  std::uint64_t recall_slots = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const index_t n = 300 + static_cast<index_t>(rng.uniform_index(1200));
    const index_t dim = 8 + static_cast<index_t>(rng.uniform_index(40));
    const index_t k = 1 + static_cast<index_t>(rng.uniform_index(10));
    const bool sq_metric = (trial % 2) == 0;
    SCOPED_TRACE("trial " + std::to_string(trial) + " n=" + std::to_string(n) +
                 " dim=" + std::to_string(dim) + " k=" + std::to_string(k));
    const Dataset reference =
        make_gaussian_mixture(n, dim, 4, seed + 100 * trial);
    SnapshotOptions sopts;
    sopts.build_graph = true;
    const auto snapshot = TreeSnapshot::build(
        std::make_shared<const Dataset>(reference), 1, sopts);

    LayerSpec knn;
    knn.op = OpSpec(PortalOp::KARGMIN, k);
    knn.func = sq_metric ? PortalFunc::SQREUCDIST : PortalFunc::EUCLIDEAN;
    serve::PlanCache cache;
    serve::PlanHandle plan =
        cache.get_or_compile(knn, reference, PortalConfig{});
    ASSERT_TRUE(plan);

    serve::Workspace ws;
    for (int q = 0; q < 8; ++q) {
      std::vector<real_t> pt(dim);
      for (index_t d = 0; d < dim; ++d) pt[d] = rng.uniform(-1.5, 1.5);

      serve::EngineOptions aopt;
      aopt.approx = true;
      aopt.beam_width = 64; // default serving width -- the recall floor's
      ASSERT_TRUE(serve::routes_to_graph(*plan, *snapshot, aopt));
      const serve::QueryResult approx =
          serve::run_query(*plan, *snapshot, pt.data(), aopt, ws);
      const serve::QueryResult exact =
          serve::run_query(*plan, *snapshot, pt.data(), {}, ws);

      ASSERT_EQ(approx.values.size(), static_cast<std::size_t>(k));
      ASSERT_EQ(approx.ids.size(), static_cast<std::size_t>(k));
      std::vector<char> seen(static_cast<std::size_t>(n), 0);
      for (index_t s = 0; s < k; ++s) {
        const index_t id = approx.ids[s];
        ASSERT_GE(id, 0);
        ASSERT_LT(id, n);
        EXPECT_FALSE(seen[static_cast<std::size_t>(id)]) << "dup id " << id;
        seen[static_cast<std::size_t>(id)] = 1;
        if (s > 0) {
          EXPECT_GE(approx.values[s], approx.values[s - 1]) << "slot " << s;
        }
        // Bitwise distance recompute through the scalar helper the exact
        // engine uses (ascending-dimension accumulation).
        real_t d = 0;
        sq_dists_to_range(reference, id, id + 1, pt.data(), &d);
        const real_t want = sq_metric ? d : std::sqrt(d);
        EXPECT_EQ(approx.values[s], want) << "slot " << s << " id " << id;
        // Exact per-slot values lower-bound the approximate ones.
        EXPECT_GE(approx.values[s], exact.values[s]) << "slot " << s;
        recall_slots++;
        for (index_t e = 0; e < k; ++e)
          if (exact.ids[e] == id) {
            recall_hits++;
            break;
          }
      }
    }
  }
  const double recall =
      static_cast<double>(recall_hits) / static_cast<double>(recall_slots);
  std::printf("aggregate recall@k at beam 64: %.4f (%llu/%llu)\n", recall,
              (unsigned long long)recall_hits, (unsigned long long)recall_slots);
  EXPECT_GE(recall, 0.9);
}

// The resumable-traversal wall (traversal/cursor.h): the TraversalCursor and
// the interleaved serve batch path claim *bitwise* identity with the
// run-to-completion descent at tau = 0 -- any interleaving of resume() slices
// across queries must be invisible in values, ids, and per-query traversal
// counters. Two axes:
//   1. random serve chains x batch_base_cases on/off x random interleave
//      grains: run_query_batch vs per-query run_query (the recursive oracle);
//   2. random kd/ball/octree shapes x random resume grains: a raw cursor
//      (resume-driven and next_leaf-driven) vs single_traverse.
TEST(DifferentialConformance, CursorVsRecursiveBitwiseIdentical) {
  const std::uint64_t seed = fuzz_seed();
  std::printf("PORTAL_FUZZ_SEED=%llu\n", static_cast<unsigned long long>(seed));
  Rng rng(seed ^ 0xcafef00dd15ea5e5ull);

  // Axis 1: serve chains. run_query runs single_traverse to completion, so
  // it *is* the recursive oracle for the interleaved path.
  constexpr int kChains = 24;
  for (int c = 0; c < kChains; ++c) {
    LayerSpec inner;
    switch (rng.uniform_index(8)) {
      case 0:
        inner.op = OpSpec(PortalOp::KARGMIN,
                          1 + static_cast<index_t>(rng.uniform_index(6)));
        inner.func = PortalFunc::EUCLIDEAN;
        break;
      case 1:
        inner.op = OpSpec(PortalOp::KMIN,
                          1 + static_cast<index_t>(rng.uniform_index(4)));
        inner.func = PortalFunc::SQREUCDIST;
        break;
      case 2:
        inner.op = OpSpec(PortalOp::MIN);
        inner.func = PortalFunc::MANHATTAN;
        break;
      case 3:
        inner.op = OpSpec(PortalOp::KARGMAX,
                          1 + static_cast<index_t>(rng.uniform_index(4)));
        inner.func = PortalFunc::CHEBYSHEV;
        break;
      case 4:
        inner.op = OpSpec(PortalOp::SUM);
        inner.func = PortalFunc::gaussian(rng.uniform(0.3, 1.2));
        break;
      case 5:
        inner.op = OpSpec(PortalOp::SUM);
        inner.func = PortalFunc::indicator(0, rng.uniform(0.4, 1.5));
        break;
      case 6:
        inner.op = OpSpec(PortalOp::UNION);
        inner.func = PortalFunc::indicator(0, rng.uniform(0.4, 1.5));
        break;
      default:
        inner.op = OpSpec(PortalOp::UNIONARG);
        inner.func = PortalFunc::indicator(1e-9, rng.uniform(0.4, 1.5));
        break;
    }
    const index_t nr = 200 + static_cast<index_t>(rng.uniform_index(200));
    const index_t nq = 6 + static_cast<index_t>(rng.uniform_index(14));
    const index_t leaf = 1 + static_cast<index_t>(rng.uniform_index(16));
    SCOPED_TRACE("serve chain " + std::to_string(c) + " leaf " +
                 std::to_string(leaf) + " seed=" + std::to_string(seed));

    const Dataset reference = make_gaussian_mixture(nr, 3, 3, seed + 31 * c);
    const Dataset queries = make_gaussian_mixture(nq, 3, 3, seed + 31 * c + 7);
    const auto snapshot = TreeSnapshot::build(
        std::make_shared<const Dataset>(reference), leaf, {});
    serve::PlanCache cache;
    serve::PlanHandle plan =
        cache.get_or_compile(inner, reference, PortalConfig{});
    ASSERT_TRUE(plan);

    std::vector<std::vector<real_t>> pts;
    std::vector<const real_t*> ptrs;
    for (index_t i = 0; i < nq; ++i) {
      std::vector<real_t> pt(3);
      for (index_t d = 0; d < 3; ++d) pt[d] = queries.coord(i, d);
      pts.push_back(std::move(pt));
    }
    for (const auto& pt : pts) ptrs.push_back(pt.data());

    for (const bool batch : {true, false}) {
      serve::EngineOptions options;
      options.tau = 0;
      options.batch_base_cases = batch;
      options.interleave_width =
          1 + static_cast<index_t>(rng.uniform_index(16));
      options.resume_steps = 1 + static_cast<index_t>(rng.uniform_index(48));

      serve::BatchWorkspace bws;
      std::vector<serve::QueryResult> got(pts.size());
      serve::run_query_batch(*plan, *snapshot, ptrs.data(), nq, options, bws,
                             got.data());
      serve::Workspace ws;
      for (index_t i = 0; i < nq; ++i) {
        const serve::QueryResult want =
            serve::run_query(*plan, *snapshot, pts[static_cast<std::size_t>(i)].data(),
                             options, ws);
        const auto& g = got[static_cast<std::size_t>(i)];
        ASSERT_EQ(g.values.size(), want.values.size());
        for (std::size_t v = 0; v < want.values.size(); ++v) {
          if (std::isnan(want.values[v])) {
            EXPECT_TRUE(std::isnan(g.values[v])) << "query " << i << " slot " << v;
          } else {
            EXPECT_EQ(g.values[v], want.values[v]) << "query " << i << " slot " << v;
          }
        }
        ASSERT_EQ(g.ids.size(), want.ids.size());
        for (std::size_t v = 0; v < want.ids.size(); ++v)
          EXPECT_EQ(g.ids[v], want.ids[v]) << "query " << i << " slot " << v;
        EXPECT_EQ(g.stats.pairs_visited, want.stats.pairs_visited)
            << "query " << i << " batch " << batch;
        EXPECT_EQ(g.stats.prunes, want.stats.prunes);
        EXPECT_EQ(g.stats.base_cases, want.stats.base_cases);
      }
    }
  }

  // Axis 2: raw cursor vs single_traverse across all three tree shapes.
  for (int trial = 0; trial < 12; ++trial) {
    const index_t n = 100 + static_cast<index_t>(rng.uniform_index(400));
    const index_t leaf = 1 + static_cast<index_t>(rng.uniform_index(16));
    const index_t grain = 1 + static_cast<index_t>(rng.uniform_index(64));
    const int shape = static_cast<int>(rng.uniform_index(3));
    SCOPED_TRACE("tree trial " + std::to_string(trial) + " shape " +
                 std::to_string(shape) + " n " + std::to_string(n) + " leaf " +
                 std::to_string(leaf) + " grain " + std::to_string(grain));

    const auto check = [&](const auto& tree) {
      using Tree = std::decay_t<decltype(tree)>;
      struct CountRules {
        const Tree* tree = nullptr;
        std::uint64_t points = 0;
        bool prune_or_take(index_t) { return false; }
        void base_case(index_t node) {
          points += static_cast<std::uint64_t>(tree->node(node).count());
        }
      };
      CountRules oracle{&tree};
      const TraversalStats want = single_traverse(tree, oracle);

      CountRules rules{&tree};
      TraversalCursor<Tree, CountRules> cursor(tree, rules);
      while (cursor.resume(grain) != CursorState::Done) continue;
      EXPECT_EQ(rules.points, oracle.points);
      EXPECT_EQ(cursor.stats().pairs_visited, want.pairs_visited);
      EXPECT_EQ(cursor.stats().base_cases, want.base_cases);

      // next_leaf drain: the host runs each yielded leaf's base case.
      CountRules drain{&tree};
      TraversalCursor<Tree, CountRules> yielder(tree, drain);
      for (index_t l = yielder.next_leaf(); l >= 0; l = yielder.next_leaf())
        drain.base_case(l);
      EXPECT_EQ(drain.points, oracle.points);
      EXPECT_EQ(yielder.stats().base_cases, want.base_cases);
    };

    if (shape == 0) {
      check(KdTree(make_gaussian_mixture(n, 3, 3, seed + 131 * trial), leaf));
    } else if (shape == 1) {
      check(BallTree(make_gaussian_mixture(n, 3, 3, seed + 131 * trial), leaf));
    } else {
      const ParticleSet set = make_elliptical(n, seed + 131 * trial);
      check(Octree(set.positions, set.masses, leaf));
    }
  }
}

/// ULP distance between two doubles (monotone integer mapping). Identical
/// bit patterns (and +0/-0) are 0; NaNs are "infinitely" far unless both NaN.
std::int64_t ulp_distance(real_t a, real_t b) {
  if (std::isnan(a) || std::isnan(b))
    return (std::isnan(a) && std::isnan(b)) ? 0
                                            : std::numeric_limits<std::int64_t>::max();
  std::int64_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  if (ia < 0) ia = std::numeric_limits<std::int64_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<std::int64_t>::min() - ib;
  const std::int64_t d = ia - ib;
  return d < 0 ? -d : d;
}

// VmProgram::run_batch vs run_pair, lane by lane: the SoA interpreter claims
// bit-for-bit parity with the scalar pair interpreter. Sweeps dim 1/2/3/10
// and ragged lane counts around the 16-lane block width (1, q-1, q, q+1),
// with a nonzero tile offset and padded stride, on both the plain and the
// strength-reduced (fast-math) programs. Plain programs must agree exactly;
// fast-math ops are allowed <= 2 ULP per the documented envelope (in
// practice the per-lane code is identical and the distance observed is 0).
TEST(CodegenFuzz, RunBatchMatchesRunPairPerLane) {
  const std::uint64_t seed = fuzz_seed();
  std::printf("PORTAL_FUZZ_SEED=%llu\n", static_cast<unsigned long long>(seed));
  Rng rng(seed ^ 0xb10cba7cull);

  const index_t dims[] = {1, 2, 3, 10};
  const index_t counts[] = {1, 15, 16, 17};

  for (int trial = 0; trial < 6; ++trial) {
    Var q, r;
    IrExprPtr plain_ir;
    std::string label;
    if (trial < 4) {
      AstFuzzer fuzzer(seed + 40 * trial, q, r);
      const Expr kernel = fuzzer.scalar_kernel();
      label = kernel.to_string();
      plain_ir = lower_kernel_expr(kernel, q.id(), r.id(), {});
    } else if (trial == 4) {
      // Mahalanobis atom: exercises the per-lane gather + scalar solve path.
      const Expr kernel = exp(Expr(-0.25) * mahalanobis(q, r, random_spd3(rng)));
      label = "mahalanobis";
      plain_ir = lower_kernel_expr(kernel, q.id(), r.id(), {});
      plain_ir = numerical_optimization_pass(plain_ir);
    } else {
      // Gaussian tail only: Exp-heavy program.
      const Expr kernel = exp(Expr(-0.3) * dimsum(pow(Expr(q) - Expr(r), 2)));
      label = "gaussian";
      plain_ir = lower_kernel_expr(kernel, q.id(), r.id(), {});
    }
    IrExprPtr fast_ir = strength_reduction_pass(plain_ir);
    fast_ir = constant_fold_pass(fast_ir);

    const VmProgram programs[] = {VmProgram::compile(plain_ir),
                                  VmProgram::compile(fast_ir)};
    const std::int64_t max_ulp[] = {0, 2};

    for (index_t dim : dims) {
      // trial 4 lowered a dim-3 covariance: only valid at dim 3.
      if (trial == 4 && dim != 3) continue;
      for (index_t count : counts) {
        SCOPED_TRACE("kernel [" + label + "] dim=" + std::to_string(dim) +
                     " count=" + std::to_string(count));
        // Hand-built SoA mirror slice: padded stride, nonzero begin offset.
        const index_t rbegin = 3;
        const index_t stride = rbegin + count + 5;
        std::vector<real_t> lanes(static_cast<std::size_t>(dim) * stride, -7);
        std::vector<real_t> qpt(dim);
        for (index_t d = 0; d < dim; ++d) {
          qpt[d] = rng.uniform(-3, 3);
          for (index_t j = 0; j < count; ++j)
            lanes[d * stride + rbegin + j] = rng.uniform(-3, 3);
        }

        std::vector<real_t> scratch(3 * dim + 8), out(count),
            rpt(dim), pair_scratch(3 * dim + 8);
        for (int p = 0; p < 2; ++p) {
          VmProgram::BatchContext bctx;
          bctx.q = qpt.data();
          bctx.rlanes = lanes.data();
          bctx.rstride = stride;
          bctx.rbegin = rbegin;
          bctx.count = count;
          bctx.dim = dim;
          bctx.scratch = scratch.data();
          programs[p].run_batch(bctx, out.data());

          for (index_t j = 0; j < count; ++j) {
            for (index_t d = 0; d < dim; ++d)
              rpt[d] = lanes[d * stride + rbegin + j];
            const real_t expect =
                programs[p].run_pair(qpt.data(), rpt.data(), dim,
                                     pair_scratch.data());
            EXPECT_LE(ulp_distance(expect, out[j]), max_ulp[p])
                << (p == 0 ? "plain" : "optimized") << " lane " << j
                << ": run_pair=" << expect << " run_batch=" << out[j];
          }
        }
      }
    }
  }
}

// End-to-end batched/scalar exactness across dimensionalities and ragged
// leaf shapes: leaf sizes 1 (degenerate tiles), 15/16 (around the VM's
// 16-lane block) over point counts that leave ragged tails. Every engine
// pair must agree with tolerance ZERO.
TEST(DifferentialConformance, BatchedScalarExactAcrossDimsAndLeafSizes) {
  const std::uint64_t seed = fuzz_seed() ^ 0x5ca1ab1eull;
  Rng rng(seed);
  const index_t dims[] = {1, 2, 3, 10};
  const index_t leaf_sizes[] = {1, 15, 16};

  for (index_t dim : dims) {
    Var q, r;
    ChainSpec specs[3];
    specs[0].description = "knn";
    specs[0].inner = OpSpec(PortalOp::KARGMIN, 3);
    specs[0].func = PortalFunc::EUCLIDEAN;
    specs[1].description = "kde";
    specs[1].inner = OpSpec(PortalOp::SUM);
    specs[1].func = PortalFunc::gaussian(real_t(0.8));
    specs[2].description = "custom-sum";
    specs[2].inner = OpSpec(PortalOp::SUM);
    specs[2].use_custom = true;
    AstFuzzer fuzzer(seed + dim, q, r);
    specs[2].custom_kernel = fuzzer.scalar_kernel();

    // 77 and 53 points: not multiples of any tested leaf size, so every
    // traversal ends in ragged tiles.
    Storage query(make_gaussian_mixture(53, dim, 2, seed + dim));
    Storage reference(make_gaussian_mixture(77, dim, 2, seed + dim + 9));

    for (const ChainSpec& spec : specs) {
      for (index_t leaf : leaf_sizes) {
        SCOPED_TRACE("[" + spec.description + "] dim=" + std::to_string(dim) +
                     " leaf=" + std::to_string(leaf));
        for (Engine engine : {Engine::VM, Engine::Pattern}) {
          if (engine == Engine::Pattern && spec.use_custom) continue;
          Storage batched, scalar;
          ASSERT_NO_THROW(batched = run_chain(spec, q, r, query, reference,
                                              engine, nullptr, true, leaf));
          ASSERT_NO_THROW(scalar = run_chain(spec, q, r, query, reference,
                                             engine, nullptr, false, leaf));
          const std::string mismatch =
              compare_outputs(scalar.output(), batched.output(), 0);
          EXPECT_TRUE(mismatch.empty())
              << engine_name(engine) << ": " << mismatch;
        }
      }
    }
  }
}

TEST(DifferentialConformance, MahalanobisLowersToCholeskyAndEnginesAgree) {
  const std::uint64_t seed = fuzz_seed() ^ 0x9e3779b97f4a7c15ull;
  std::printf("PORTAL_FUZZ_SEED=%llu (derived)\n",
              static_cast<unsigned long long>(fuzz_seed()));
  Rng rng(seed);
  const bool jit = jit_available();

  for (int trial = 0; trial < 10; ++trial) {
    Var q, r;
    const std::vector<real_t> cov = random_spd3(rng);
    const Expr kernel =
        exp(Expr(-rng.uniform(0.1, 0.4)) * mahalanobis(q, r, cov));
    SCOPED_TRACE("trial " + std::to_string(trial));

    Storage query(make_gaussian_mixture(40, 3, 2, seed + trial));
    Storage reference(make_gaussian_mixture(60, 3, 2, seed + trial + 5));

    std::vector<real_t> outputs[2];
    for (int which = 0; which < (jit ? 2 : 1); ++which) {
      PortalExpr expr;
      expr.addLayer(PortalOp::FORALL, q, query);
      expr.addLayer(PortalOp::SUM, r, reference, kernel);
      PortalConfig config;
      config.engine = which == 0 ? Engine::VM : Engine::JIT;
      config.parallel = false;
      config.validate = true;
      expr.execute(config);

      // The numerical-optimization pass must have rewritten the naive
      // quadratic form into the Cholesky solve (Sec. IV-E): that is the
      // whole point of the Mahalanobis chain family.
      ASSERT_TRUE(expr.plan().kernel.kernel_ir != nullptr);
      EXPECT_TRUE(
          ir_contains(expr.plan().kernel.kernel_ir, IrOp::MahalanobisChol))
          << "expected MahalanobisChol in post-pass kernel IR";
      EXPECT_FALSE(
          ir_contains(expr.plan().kernel.kernel_ir, IrOp::MahalanobisNaive))
          << "naive Mahalanobis survived the pass pipeline";

      Storage out = expr.getOutput();
      for (index_t i = 0; i < out.rows(); ++i)
        outputs[which].push_back(out.value(i));
    }
    if (!jit) continue;
    ASSERT_EQ(outputs[0].size(), outputs[1].size());
    for (std::size_t i = 0; i < outputs[0].size(); ++i)
      EXPECT_NEAR(outputs[0][i], outputs[1][i],
                  1e-7 * std::max(std::abs(outputs[0][i]), real_t(1)))
          << "query " << i;
  }
}

// The live-ingestion wall (tree/delta.h, serve/live.h): random op chains x
// random insert/remove/merge interleavings against a LiveStore. At every
// checkpoint the two-root sweep (main kd descent + delta drain) is compared
//   1. bitwise against the live brute-force oracle over the exact pinned
//      point-set, with batch base cases on/off and the interleaved batch
//      path at a random grain (batch on/off x interleave on/off);
//   2. against a single kd-tree rebuilt from scratch over the live union in
//      canonical visible order: per-element bitwise for reductions (ids
//      translated through the union construction order) and set-equal
//      bitwise for range queries; indicator SUMs (integer-valued partials)
//      bitwise, smooth SUMs within reassociation tolerance -- the rebuilt
//      tree sums the same values in a different bracketing.
TEST(DifferentialConformance, LiveTwoRootVsRebuiltUnionTree) {
  const std::uint64_t seed = fuzz_seed();
  std::printf("PORTAL_FUZZ_SEED=%llu\n", static_cast<unsigned long long>(seed));
  Rng rng(seed ^ 0x0de17a2007a15e11ull);

  const Dataset reference = make_gaussian_mixture(200, 3, 3, seed ^ 0x51);
  enum class Kind { Reduction, SmoothSum, CountSum, Union };
  struct LiveChain {
    LayerSpec spec;
    Kind kind;
  };
  std::vector<LiveChain> chains;
  {
    LayerSpec knn;
    knn.op = OpSpec(PortalOp::KARGMIN, 4);
    knn.func = PortalFunc::EUCLIDEAN;
    chains.push_back({knn, Kind::Reduction});
    LayerSpec kmin;
    kmin.op = OpSpec(PortalOp::KMIN, 3);
    kmin.func = PortalFunc::gaussian(0.9);
    chains.push_back({kmin, Kind::Reduction});
    LayerSpec kde;
    kde.op = OpSpec(PortalOp::SUM);
    kde.func = PortalFunc::gaussian(0.8);
    chains.push_back({kde, Kind::SmoothSum});
    LayerSpec count;
    count.op = OpSpec(PortalOp::SUM);
    count.func = PortalFunc::indicator(1e-9, 1.1);
    chains.push_back({count, Kind::CountSum});
    LayerSpec range;
    range.op = OpSpec(PortalOp::UNIONARG);
    range.func = PortalFunc::indicator(1e-9, 1.2);
    chains.push_back({range, Kind::Union});
  }
  PortalConfig config;
  config.tau = 0;
  serve::PlanCache cache;
  std::vector<serve::PlanHandle> plans;
  for (const LiveChain& c : chains)
    plans.push_back(cache.get_or_compile(c.spec, reference, config));

  const auto bitwise_values = [](const serve::QueryResult& got,
                                 const serve::QueryResult& want,
                                 const char* what) {
    ASSERT_EQ(got.values.size(), want.values.size()) << what;
    for (std::size_t v = 0; v < want.values.size(); ++v) {
      if (std::isnan(want.values[v])) {
        EXPECT_TRUE(std::isnan(got.values[v])) << what << " slot " << v;
      } else {
        EXPECT_EQ(got.values[v], want.values[v]) << what << " slot " << v;
      }
    }
  };

  constexpr int kRounds = 3;
  constexpr int kSteps = 120;
  constexpr int kCheckEvery = 40;
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    serve::LiveStoreOptions sopt;
    sopt.delta_capacity = 64;
    sopt.merge_threshold = 64;
    sopt.background_merge = false; // merges only where the fuzz chose them
    serve::LiveStore store(sopt);
    store.publish(std::make_shared<const Dataset>(reference));

    // Mirror of the coordinates currently visible (the fuzz removes real
    // points -- main-tree and delta alike -- never guesses).
    std::vector<std::vector<real_t>> mirror;
    for (index_t i = 0; i < reference.size(); ++i) {
      std::vector<real_t> pt(3);
      for (index_t d = 0; d < 3; ++d) pt[d] = reference.coord(i, d);
      mirror.push_back(std::move(pt));
    }

    for (int step = 1; step <= kSteps; ++step) {
      const real_t dice = rng.uniform();
      if (dice < 0.55) {
        std::vector<real_t> pt = {rng.uniform(-2, 2), rng.uniform(-2, 2),
                                  rng.uniform(-2, 2)};
        ASSERT_EQ(store.insert(pt.data(), 3).status,
                  serve::IngestStatus::Ok);
        mirror.push_back(std::move(pt));
      } else if (dice < 0.85 && !mirror.empty()) {
        const std::size_t pick =
            static_cast<std::size_t>(rng.uniform_index(mirror.size()));
        ASSERT_EQ(store.remove(mirror[pick].data(), 3).status,
                  serve::IngestStatus::Ok);
        mirror.erase(mirror.begin() + static_cast<std::ptrdiff_t>(pick));
      } else if (dice < 0.95) {
        const real_t ghost[] = {rng.uniform(5, 6), rng.uniform(5, 6),
                                rng.uniform(5, 6)};
        ASSERT_EQ(store.remove(ghost, 3).status,
                  serve::IngestStatus::NotFound);
      } else {
        store.merge_now();
      }
      if (step % kCheckEvery != 0) continue;
      SCOPED_TRACE("step " + std::to_string(step));

      const auto view = store.pin();
      ASSERT_EQ(view->live_size(), static_cast<index_t>(mirror.size()));

      // Rebuild a single tree over the live union, recording each canonical
      // position's live client id so union-tree ids translate back.
      const KdTree& kd = *view->snapshot->kd();
      const index_t main_size = view->snapshot->size();
      auto union_data =
          std::make_shared<Dataset>(view->live_size(), index_t{3});
      std::vector<index_t> live_id; // canonical position -> live client id
      index_t pos = 0;
      for (index_t j = 0; j < main_size; ++j) {
        if (!view->main_visible(j)) continue;
        for (index_t d = 0; d < 3; ++d)
          union_data->coord(pos, d) = kd.data().coord(j, d);
        live_id.push_back(kd.perm()[static_cast<std::size_t>(j)]);
        ++pos;
      }
      for (index_t s = 0; s < view->delta_count; ++s) {
        if (!view->slot_visible(s)) continue;
        for (index_t d = 0; d < 3; ++d)
          union_data->coord(pos, d) = view->delta->points().coord(s, d);
        live_id.push_back(main_size + s);
        ++pos;
      }
      ASSERT_EQ(pos, view->live_size());
      const auto union_snap = TreeSnapshot::build(union_data, 1, {});

      const Dataset probes = make_gaussian_mixture(6, 3, 3, rng.next_u64());
      std::vector<const real_t*> probe_ptrs;
      std::vector<std::vector<real_t>> probe_store;
      for (index_t q = 0; q < probes.size(); ++q) {
        std::vector<real_t> pt(3);
        for (index_t d = 0; d < 3; ++d) pt[d] = probes.coord(q, d);
        probe_store.push_back(std::move(pt));
      }
      for (const auto& pt : probe_store) probe_ptrs.push_back(pt.data());

      for (std::size_t c = 0; c < chains.size(); ++c) {
        SCOPED_TRACE("chain " + std::to_string(c));
        const serve::PlanHandle& plan = plans[c];
        serve::Workspace ws;
        serve::BatchWorkspace bws;
        serve::EngineOptions eopt;
        eopt.interleave_width =
            static_cast<index_t>(1 + rng.uniform_index(8));
        eopt.resume_steps = static_cast<index_t>(1 + rng.uniform_index(48));
        std::vector<serve::QueryResult> batched(probe_store.size());
        serve::run_query_batch(*plan, *view, probe_ptrs.data(),
                               static_cast<index_t>(probe_store.size()), eopt,
                               bws, batched.data());

        for (std::size_t q = 0; q < probe_store.size(); ++q) {
          SCOPED_TRACE("probe " + std::to_string(q));
          const real_t* pt = probe_ptrs[q];
          const serve::QueryResult oracle =
              serve::run_query_bruteforce(*plan, *view, pt);

          // Axis 1: engine vs live oracle, bitwise, across batch on/off and
          // the interleaved path.
          for (const bool batch : {true, false}) {
            eopt.batch_base_cases = batch;
            const serve::QueryResult got =
                serve::run_query(*plan, *view, pt, eopt, ws);
            bitwise_values(got, oracle, batch ? "live batched" : "live scalar");
            ASSERT_EQ(got.ids.size(), oracle.ids.size());
            for (std::size_t v = 0; v < oracle.ids.size(); ++v)
              EXPECT_EQ(got.ids[v], oracle.ids[v]) << "slot " << v;
          }
          bitwise_values(batched[q], oracle, "live interleaved");
          ASSERT_EQ(batched[q].ids.size(), oracle.ids.size());
          for (std::size_t v = 0; v < oracle.ids.size(); ++v)
            EXPECT_EQ(batched[q].ids[v], oracle.ids[v]) << "slot " << v;

          // Axis 2: the rebuilt union tree names the same point-set.
          const serve::QueryResult other =
              serve::run_query_bruteforce(*plan, *union_snap, pt);
          switch (chains[c].kind) {
            case Kind::Reduction: {
              bitwise_values(other, oracle, "union reduction");
              ASSERT_EQ(other.ids.size(), oracle.ids.size());
              for (std::size_t v = 0; v < oracle.ids.size(); ++v) {
                if (oracle.ids[v] < 0) {
                  EXPECT_EQ(other.ids[v], oracle.ids[v]);
                } else {
                  EXPECT_EQ(live_id[static_cast<std::size_t>(other.ids[v])],
                            oracle.ids[v])
                      << "slot " << v;
                }
              }
              break;
            }
            case Kind::CountSum: {
              // Integer-valued partials: any summation order is exact.
              bitwise_values(other, oracle, "union count");
              break;
            }
            case Kind::SmoothSum: {
              ASSERT_EQ(other.values.size(), 1u);
              ASSERT_EQ(oracle.values.size(), 1u);
              EXPECT_NEAR(other.values[0], oracle.values[0], 1e-9);
              break;
            }
            case Kind::Union: {
              // Same member set; the two sides order ids differently
              // (original-reference vs canonical-construction), so compare
              // as translated sorted sets.
              std::vector<index_t> got_ids;
              for (const index_t id : other.ids)
                got_ids.push_back(live_id[static_cast<std::size_t>(id)]);
              std::sort(got_ids.begin(), got_ids.end());
              std::vector<index_t> want_ids = oracle.ids;
              std::sort(want_ids.begin(), want_ids.end());
              EXPECT_EQ(got_ids, want_ids);
              break;
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The fused-leaf-loop wall (DESIGN.md Sec. 17): the JIT's whole-tile entry
// points claim *bitwise* parity with the interpreted paths they replace.
// ---------------------------------------------------------------------------

/// mkdtemp-backed artifact-cache directory, removed on scope exit.
struct TempCacheDir {
  std::string path;
  TempCacheDir() {
    std::string tpl = "/tmp/portal_fuzz_cache_XXXXXX";
    std::vector<char> buf(tpl.begin(), tpl.end());
    buf.push_back('\0');
    if (mkdtemp(buf.data()) == nullptr)
      throw std::runtime_error("cannot create temp cache dir");
    path.assign(buf.data());
  }
  ~TempCacheDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

// portal_fused_batch vs VmProgram::run_batch and portal_fused_values vs
// batch::natural_dists + envelope, lane by lane at ZERO ULP: the specialized
// dimension-unrolled tile loops must reproduce the interpreted tile bit for
// bit (ragged counts around the 16-lane block, nonzero tile offset, padded
// stride) -- that is what lets the executor and the serve engine swap them in
// without changing a single answer.
TEST(CodegenFuzz, FusedTileEntriesMatchVmPerLane) {
  if (!jit_available()) GTEST_SKIP() << "no system compiler";
  const std::uint64_t seed = fuzz_seed();
  std::printf("PORTAL_FUZZ_SEED=%llu\n", static_cast<unsigned long long>(seed));
  Rng rng(seed ^ 0xf05edull);

  Storage data(make_gaussian_mixture(40, 3, 2, seed ^ 0x77));
  const index_t dim = 3;
  const index_t counts[] = {1, 15, 16, 17};

  // Normalized plans (metric + envelope: fused_values applies) and custom
  // kernels (opaque IR: fused_batch only).
  std::vector<std::pair<std::string, ProblemPlan>> plans;
  const auto add_func = [&](const char* label, const PortalFunc& func) {
    std::vector<LayerSpec> layers(2);
    layers[0].op = OpSpec(PortalOp::FORALL);
    layers[0].storage = data;
    layers[1].op = OpSpec(PortalOp::SUM);
    layers[1].storage = data;
    layers[1].func = func;
    plans.emplace_back(label, analyze_layers(layers, PortalConfig{}));
  };
  add_func("gaussian", PortalFunc::gaussian(0.9));
  add_func("euclidean", PortalFunc::EUCLIDEAN);
  add_func("manhattan", PortalFunc::MANHATTAN);
  add_func("chebyshev", PortalFunc::CHEBYSHEV);
  add_func("gaussian-maha", PortalFunc::gaussian_maha(random_spd3(rng)));
  add_func("indicator", PortalFunc::indicator(1e-9, 1.1));
  for (int t = 0; t < 3; ++t) {
    Var q, r;
    AstFuzzer fuzzer(seed + 90 * t, q, r);
    const Expr kernel = fuzzer.scalar_kernel();
    std::vector<LayerSpec> layers(2);
    layers[0].op = OpSpec(PortalOp::FORALL);
    layers[0].storage = data;
    layers[0].var_id = q.id();
    layers[1].op = OpSpec(PortalOp::SUM);
    layers[1].storage = data;
    layers[1].var_id = r.id();
    layers[1].custom_kernel = kernel;
    plans.emplace_back("custom: " + kernel.to_string(),
                       analyze_layers(layers, PortalConfig{}));
  }

  for (const auto& [label, plan] : plans) {
    SCOPED_TRACE(label);
    const auto module = JitModule::compile(plan);
    ASSERT_NE(module, nullptr);
    ASSERT_NE(module->fused_batch_fn(), nullptr);
    const VmProgram kernel_vm = VmProgram::compile(plan.kernel.kernel_ir);
    const bool have_values =
        plan.kernel.normalized && plan.kernel.envelope_ir != nullptr;
    if (have_values)
      ASSERT_NE(module->fused_values_fn(), nullptr)
          << "normalized plan must emit portal_fused_values";
    const VmProgram env_vm = have_values
                                 ? VmProgram::compile(plan.kernel.envelope_ir)
                                 : VmProgram();

    for (const index_t count : counts) {
      SCOPED_TRACE("count=" + std::to_string(count));
      const index_t rbegin = 3;
      const index_t stride = rbegin + count + 5;
      std::vector<real_t> lanes(static_cast<std::size_t>(dim) * stride, -7);
      std::vector<real_t> qpt(dim);
      for (index_t d = 0; d < dim; ++d) {
        qpt[d] = rng.uniform(-3, 3);
        for (index_t j = 0; j < count; ++j)
          lanes[d * stride + rbegin + j] = rng.uniform(-3, 3);
      }
      const std::size_t scratch_size = static_cast<std::size_t>(
          std::max<index_t>(4 * dim + 4, 2 * dim * batch::kMahaBlock));
      std::vector<real_t> scratch(scratch_size), want_scratch(scratch_size);
      std::vector<real_t> got(count), want(count);

      // Axis 1: the opaque-kernel tile vs the VM's SoA interpreter.
      VmProgram::BatchContext bctx;
      bctx.q = qpt.data();
      bctx.rlanes = lanes.data();
      bctx.rstride = stride;
      bctx.rbegin = rbegin;
      bctx.count = count;
      bctx.dim = dim;
      bctx.scratch = want_scratch.data();
      kernel_vm.run_batch(bctx, want.data());
      module->fused_batch_fn()(qpt.data(), lanes.data(), stride, rbegin, count,
                               dim, scratch.data(), got.data());
      for (index_t j = 0; j < count; ++j)
        EXPECT_EQ(ulp_distance(want[j], got[j]), 0)
            << "fused_batch lane " << j << ": run_batch=" << want[j]
            << " fused=" << got[j];

      // Axis 2: the specialized metric+envelope tile vs the interpreted
      // leaf pipeline it replaces (batch::natural_dists, then the envelope
      // program per lane).
      if (!have_values) continue;
      batch::Tile tile{lanes.data(), stride, rbegin, count, dim};
      batch::natural_dists(plan.kernel.metric, tile, qpt.data(),
                           plan.kernel.maha.get(), want_scratch.data(),
                           want.data());
      for (index_t j = 0; j < count; ++j)
        want[j] = env_vm.run_envelope(want[j]);
      module->fused_values_fn()(qpt.data(), lanes.data(), stride, rbegin,
                                count, dim, scratch.data(), got.data());
      for (index_t j = 0; j < count; ++j)
        EXPECT_EQ(ulp_distance(want[j], got[j]), 0)
            << "fused_values lane " << j << ": interpreted=" << want[j]
            << " fused=" << got[j];
    }
  }
}

// Random chains end to end at tolerance ZERO: the JIT engine -- now running
// its fused tile loops on every batched leaf -- must agree with the VM engine
// bit for bit, batched and scalar, warm cache and cold. The pattern engine
// and the brute-force oracle ride along at their documented tolerances
// (validate=true self-checks every run against brute force); VM-vs-JIT is the
// pair the fused-loop refactor could have broken, so that pair is pinned at
// zero.
TEST(DifferentialConformance, FusedLeafLoopBitwiseIdentical) {
  if (!jit_available()) GTEST_SKIP() << "no system compiler";
  const std::uint64_t seed = fuzz_seed();
  std::printf("PORTAL_FUZZ_SEED=%llu\n", static_cast<unsigned long long>(seed));
  Rng rng(seed ^ 0xf00d5ca1eull);

  constexpr int kChains = 30;
  TempCacheDir cache_dir;

  for (int chain = 0; chain < kChains; ++chain) {
    Var q, r;
    const ChainSpec spec = draw_chain(rng, q, r, chain, seed);
    const index_t nq = 16 + static_cast<index_t>(rng.uniform_index(24));
    const index_t nr = 24 + static_cast<index_t>(rng.uniform_index(40));
    const index_t leaf = 1 + static_cast<index_t>(rng.uniform_index(16));
    Storage query(make_gaussian_mixture(nq, 3, 3, seed + 37 * chain));
    Storage reference = spec.self_join
                            ? query
                            : Storage(make_gaussian_mixture(
                                  nr, 3, 3, seed + 37 * chain + 19));
    SCOPED_TRACE("chain " + std::to_string(chain) + " [" + spec.description +
                 "] leaf " + std::to_string(leaf) +
                 " seed=" + std::to_string(seed) +
                 (spec.use_custom ? " kernel: " + spec.custom_kernel.to_string()
                                  : ""));

    // tau = 0: every engine answers exactly, so bitwise-identical kernels
    // imply bitwise-identical outputs (no approximation slack to hide in).
    const auto run = [&](Engine engine, bool batch, ProblemPlan* plan_out) {
      PortalExpr expr;
      if (spec.use_custom) {
        expr.addLayer(spec.outer, q, query);
        expr.addLayer(spec.inner, r, reference, spec.custom_kernel);
      } else {
        expr.addLayer(spec.outer, query);
        expr.addLayer(spec.inner, reference, spec.func);
      }
      PortalConfig config;
      config.engine = engine;
      config.parallel = false;
      config.validate = true; // brute-force oracle rides along on every run
      config.tau = 0;
      config.leaf_size = leaf;
      config.batch_base_cases = batch;
      expr.execute(config);
      if (plan_out != nullptr) *plan_out = expr.plan();
      return expr.getOutput();
    };

    Storage vm_batched, vm_scalar, jit_batched, jit_scalar;
    ProblemPlan plan;
    ASSERT_NO_THROW(vm_batched = run(Engine::VM, true, nullptr));
    ASSERT_NO_THROW(vm_scalar = run(Engine::VM, false, nullptr));
    ASSERT_NO_THROW(jit_batched = run(Engine::JIT, true, &plan));
    ASSERT_NO_THROW(jit_scalar = run(Engine::JIT, false, nullptr));

    std::string mismatch =
        compare_outputs(vm_batched.output(), jit_batched.output(), 0);
    EXPECT_TRUE(mismatch.empty()) << "vm batched vs jit batched: " << mismatch;
    mismatch = compare_outputs(vm_scalar.output(), jit_scalar.output(), 0);
    EXPECT_TRUE(mismatch.empty()) << "vm scalar vs jit scalar: " << mismatch;
    mismatch = compare_outputs(vm_batched.output(), vm_scalar.output(), 0);
    EXPECT_TRUE(mismatch.empty()) << "vm batched vs vm scalar: " << mismatch;

    // Warm/cold cache axis (every few chains: each compile shells out to the
    // system compiler, so sampling keeps the wall fast). The artifact
    // round-trips through the on-disk cache; the warm module's fused entries
    // must produce the same bits as the cold one's.
    if (chain % 5 != 0 || !plan.kernel.kernel_ir) continue;
    ArtifactCache::Options copt;
    copt.dir = cache_dir.path;
    ArtifactCache cache(std::move(copt));
    const auto cold = JitModule::compile(plan, &cache);
    ASSERT_NE(cold, nullptr);
    const auto warm = JitModule::compile(plan, &cache);
    ASSERT_NE(warm, nullptr);
    EXPECT_TRUE(warm->from_cache());

    const index_t dim = 3, count = 13, rbegin = 2, stride = 21;
    std::vector<real_t> lanes(static_cast<std::size_t>(dim) * stride, -5);
    std::vector<real_t> qpt(dim);
    for (index_t d = 0; d < dim; ++d) {
      qpt[d] = rng.uniform(-3, 3);
      for (index_t j = 0; j < count; ++j)
        lanes[d * stride + rbegin + j] = rng.uniform(-3, 3);
    }
    const std::size_t scratch_size = static_cast<std::size_t>(
        std::max<index_t>(4 * dim + 4, 2 * dim * batch::kMahaBlock));
    std::vector<real_t> scratch(scratch_size);
    std::vector<real_t> cold_out(count), warm_out(count);
    ASSERT_NE(cold->fused_batch_fn(), nullptr);
    ASSERT_NE(warm->fused_batch_fn(), nullptr);
    cold->fused_batch_fn()(qpt.data(), lanes.data(), stride, rbegin, count,
                           dim, scratch.data(), cold_out.data());
    warm->fused_batch_fn()(qpt.data(), lanes.data(), stride, rbegin, count,
                           dim, scratch.data(), warm_out.data());
    for (index_t j = 0; j < count; ++j)
      EXPECT_EQ(ulp_distance(cold_out[j], warm_out[j]), 0)
          << "cold vs warm lane " << j;
  }
}

} // namespace
} // namespace portal
