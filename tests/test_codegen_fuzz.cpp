// Randomized codegen fuzz: random kernel ASTs are lowered and executed
// through every backend path -- plain VM, optimized (strength-reduced +
// constant-folded) VM, and the C++-source JIT -- which must agree within the
// documented fast-math envelope. This is the differential test that keeps
// the three "LLVM substitutes" honest against each other.
#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.h"
#include "core/codegen/jit.h"
#include "core/codegen/vm.h"
#include "core/passes/lowering.h"
#include "core/passes/passes.h"
#include "core/portal.h"
#include "core/verify/verify.h"
#include "data/generators.h"
#include "util/rng.h"

namespace portal {
namespace {

/// Random kernel AST generator. Depth-bounded; always scalar-rooted.
/// Generated functions stay in "safe" numeric ranges: exp arguments are
/// damped, log/sqrt arguments are forced non-negative via squaring.
class AstFuzzer {
 public:
  AstFuzzer(std::uint64_t seed, const Var& q, const Var& r)
      : rng_(seed), q_(q), r_(r) {}

  Expr scalar_kernel() { return dimsum(vector_expr(3)) * small_const() + scalar_tail(); }

 private:
  Expr vector_expr(int depth) {
    if (depth <= 0) return leaf_vector();
    switch (rng_.uniform_index(5)) {
      case 0: return vector_expr(depth - 1) + vector_expr(depth - 1);
      case 1: return vector_expr(depth - 1) - leaf_vector();
      case 2: return vector_expr(depth - 1) * small_const();
      case 3: return abs(vector_expr(depth - 1));
      default: return pow(leaf_vector(), static_cast<real_t>(rng_.uniform_index(3)));
    }
  }

  Expr leaf_vector() {
    switch (rng_.uniform_index(3)) {
      case 0: return Expr(q_) - Expr(r_);
      case 1: return Expr(q_);
      default: return Expr(r_);
    }
  }

  Expr scalar_tail() {
    switch (rng_.uniform_index(4)) {
      case 0: return exp(Expr(-0.1) * dimsum(pow(Expr(q_) - Expr(r_), 2)));
      case 1: return sqrt(pow(Expr(q_) - Expr(r_), 2));
      case 2: return vmin(dimsum(abs(Expr(q_) - Expr(r_))), Expr(3.0));
      default: return dimmax(abs(Expr(q_) - Expr(r_))) + small_const();
    }
  }

  Expr small_const() { return Expr(rng_.uniform(0.25, 2.0)); }

  Rng rng_;
  const Var& q_;
  const Var& r_;
};

TEST(CodegenFuzz, VmPlainVsVmOptimizedVsJit) {
  Rng point_rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    Var q("q"), r("r");
    AstFuzzer fuzzer(5000 + trial, q, r);
    const Expr kernel = fuzzer.scalar_kernel();
    SCOPED_TRACE("kernel: " + kernel.to_string());

    const IrExprPtr plain_ir = lower_kernel_expr(kernel, q.id(), r.id(), {});
    IrExprPtr optimized_ir = strength_reduction_pass(plain_ir);
    optimized_ir = constant_fold_pass(optimized_ir);

    // Fuzz invariant: every random kernel, before and after optimization,
    // is verifier-clean -- passes must never manufacture malformed IR.
    DiagnosticEngine verify_diags;
    verify_expr(plain_ir, IrContext::Executable, IrVerifyContext{},
                &verify_diags, "plain");
    verify_expr(optimized_ir, IrContext::Executable, IrVerifyContext{},
                &verify_diags, "optimized");
    ASSERT_TRUE(verify_diags.ok()) << verify_diags.report();

    const VmProgram plain = VmProgram::compile(plain_ir);
    const VmProgram optimized = VmProgram::compile(optimized_ir);

    // JIT the same optimized IR through a synthetic plan.
    Storage data(make_uniform(8, 4, 42));
    std::vector<LayerSpec> layers(2);
    layers[0].op = OpSpec(PortalOp::FORALL);
    layers[0].storage = data;
    layers[0].var_id = q.id();
    layers[1].op = OpSpec(PortalOp::SUM);
    layers[1].storage = data;
    layers[1].var_id = r.id();
    layers[1].custom_kernel = kernel;
    ProblemPlan plan = analyze_layers(layers, PortalConfig{});
    plan.kernel.kernel_ir = optimized_ir;
    const auto jit = JitModule::compile(plan);
    ASSERT_NE(jit, nullptr);
    const EvaluatorFns jit_fns = jit->evaluators();

    std::vector<real_t> scratch(32);
    for (int sample = 0; sample < 50; ++sample) {
      real_t a[4], b[4];
      for (int d = 0; d < 4; ++d) {
        a[d] = point_rng.uniform(-3, 3);
        b[d] = point_rng.uniform(-3, 3);
      }
      const real_t v_plain = plain.run_pair(a, b, 4, scratch.data());
      const real_t v_opt = optimized.run_pair(a, b, 4, scratch.data());
      const real_t v_jit = jit_fns.kernel_pair(a, b, 4, scratch.data());

      // Optimized VM and JIT execute the SAME IR: bit-comparable modulo
      // compiler reassociation; the plain VM differs only by the fast-math
      // rewrites. The fast-sqrt error is relative to the *sqrt term* (up to
      // ~12 for these point ranges), not to the possibly-cancelled total, so
      // the tolerance carries that intermediate magnitude.
      const real_t scale = std::max({std::abs(v_plain), std::abs(v_opt), real_t(1)});
      EXPECT_NEAR(v_opt, v_jit, 1e-9 * scale);
      EXPECT_NEAR(v_plain, v_opt, 4e-3 * (scale + 16));
    }
  }
}

TEST(CodegenFuzz, EndToEndProgramsAcrossEngines) {
  // Random custom kernels through full PortalExpr runs: VM vs JIT engines.
  for (int trial = 0; trial < 3; ++trial) {
    Var q, r;
    AstFuzzer fuzzer(7000 + trial, q, r);
    const Expr kernel = fuzzer.scalar_kernel();
    SCOPED_TRACE("kernel: " + kernel.to_string());

    Storage query(make_gaussian_mixture(80, 3, 2, 61 + trial));
    Storage reference(make_gaussian_mixture(120, 3, 2, 71 + trial));

    std::vector<real_t> vm_values, jit_values;
    for (Engine engine : {Engine::VM, Engine::JIT}) {
      PortalExpr expr;
      expr.addLayer(PortalOp::FORALL, q, query);
      expr.addLayer(PortalOp::MIN, r, reference, kernel);
      PortalConfig config;
      config.parallel = false;
      config.engine = engine;
      expr.execute(config);

      // Fuzz invariant: the post-pass program IR verifies clean under the
      // full dataset context (layout-consistent strides included).
      IrVerifyContext vc;
      vc.dim = query.dim();
      vc.query_layout = query.layout();
      vc.query_size = query.size();
      vc.ref_layout = reference.layout();
      vc.ref_size = reference.size();
      vc.after_flattening = true;
      vc.check_strides = true;
      DiagnosticEngine verify_diags = verify_program(expr.plan().ir, vc);
      ASSERT_TRUE(verify_diags.ok()) << verify_diags.report();

      Storage out = expr.getOutput();
      std::vector<real_t>& values = engine == Engine::VM ? vm_values : jit_values;
      for (index_t i = 0; i < out.rows(); ++i) values.push_back(out.value(i));
    }
    ASSERT_EQ(vm_values.size(), jit_values.size());
    for (std::size_t i = 0; i < vm_values.size(); ++i)
      EXPECT_NEAR(vm_values[i], jit_values[i],
                  1e-9 * std::max(std::abs(vm_values[i]), real_t(1)))
          << "query " << i;
  }
}

} // namespace
} // namespace portal
