// Tests for the Portal compiler middle end: kernel lowering, metric/envelope
// normalization, the optimization passes of Sec. IV-C/D/E, envelope
// classification, and the bytecode VM.
#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.h"
#include "core/portal.h"
#include "data/generators.h"
#include "core/codegen/vm.h"
#include "core/ir/ir.h"
#include "core/passes/lowering.h"
#include "core/passes/passes.h"
#include "kernels/fastmath.h"
#include "kernels/linalg.h"
#include "util/rng.h"

namespace portal {
namespace {

Expr euclid(const Var& q, const Var& r) { return sqrt(pow(Expr(q) - Expr(r), 2)); }

TEST(Lowering, EuclideanKernelIr) {
  Var q("q"), r("r");
  const IrExprPtr ir = lower_kernel_expr(euclid(q, r), q.id(), r.id(), {});
  // Sqrt(DimSum(Pow(Sub(LoadQ, LoadR), 2))) -- the Fig. 2 structure.
  ASSERT_EQ(ir->op, IrOp::Sqrt);
  ASSERT_EQ(ir->children[0]->op, IrOp::DimSum);
  const IrExprPtr& body = ir->children[0]->children[0];
  ASSERT_EQ(body->op, IrOp::Pow);
  EXPECT_EQ(body->children[0]->op, IrOp::Sub);
  EXPECT_EQ(body->children[0]->children[0]->op, IrOp::LoadQCoord);
  EXPECT_EQ(body->children[0]->children[1]->op, IrOp::LoadRCoord);
  EXPECT_EQ(ir_expr_to_string(ir),
            "sqrt(dim_sum[for d in 0 ... dim]{pow((load(q, d) - load(r, d)), 2)})");
}

TEST(Lowering, UnboundVarThrows) {
  Var q, r, other;
  const Expr bad = sqrt(pow(Expr(q) - Expr(other), 2));
  EXPECT_THROW(lower_kernel_expr(bad, q.id(), r.id(), {}), std::invalid_argument);
}

TEST(Lowering, NormalizationExtractsMetrics) {
  Var q, r;
  struct Case {
    Expr kernel;
    MetricKind metric;
  };
  const Case cases[] = {
      {sqrt(pow(Expr(q) - Expr(r), 2)), MetricKind::Euclidean},
      {dimsum(pow(Expr(q) - Expr(r), 2)), MetricKind::SqEuclidean},
      {dimsum(abs(Expr(q) - Expr(r))), MetricKind::Manhattan},
      {dimmax(abs(Expr(q) - Expr(r))), MetricKind::Chebyshev},
  };
  for (const Case& c : cases) {
    const NormalizedKernel n = normalize_kernel(c.kernel, q.id(), r.id(), {});
    ASSERT_TRUE(n.ok) << c.kernel.to_string();
    EXPECT_EQ(n.metric, c.metric);
    EXPECT_EQ(n.envelope->op, IrOp::Dist); // identity envelope
  }
}

TEST(Lowering, NormalizationExtractsEnvelope) {
  Var q, r;
  // Gaussian: exp(-0.5 * d^2).
  const Expr kernel = exp(Expr(-0.5) * dimsum(pow(Expr(q) - Expr(r), 2)));
  const NormalizedKernel n = normalize_kernel(kernel, q.id(), r.id(), {});
  ASSERT_TRUE(n.ok);
  EXPECT_EQ(n.metric, MetricKind::SqEuclidean);
  ASSERT_EQ(n.envelope->op, IrOp::Exp);
  EXPECT_TRUE(ir_contains(n.envelope, IrOp::Dist));
  EXPECT_FALSE(ir_contains(n.envelope, IrOp::LoadQCoord));
}

TEST(Lowering, NormalizationFailsOnRawPointUse) {
  Var q, r;
  // q + r summed: not a metric pattern.
  const Expr weird = dimsum(Expr(q) + Expr(r));
  const NormalizedKernel n = normalize_kernel(weird, q.id(), r.id(), {});
  EXPECT_FALSE(n.ok);
}

TEST(Passes, FlatteningSetsStrides) {
  Var q, r;
  const IrExprPtr ir = lower_kernel_expr(euclid(q, r), q.id(), r.id(), {});
  const IrExprPtr flat = flatten_pass(ir, Layout::ColMajor, 100, Layout::RowMajor, 50);
  bool found_q = false, found_r = false;
  const std::function<void(const IrExprPtr&)> walk = [&](const IrExprPtr& e) {
    if (e->op == IrOp::LoadQCoord) {
      EXPECT_TRUE(e->flattened);
      EXPECT_EQ(e->stride, 100); // column-major: stride = N
      found_q = true;
    }
    if (e->op == IrOp::LoadRCoord) {
      EXPECT_TRUE(e->flattened);
      EXPECT_EQ(e->stride, 1); // row-major: contiguous coordinates
      found_r = true;
    }
    for (const IrExprPtr& c : e->children) walk(c);
  };
  walk(flat);
  EXPECT_TRUE(found_q);
  EXPECT_TRUE(found_r);
}

TEST(Passes, StrengthReductionRewrites) {
  // pow(x, 2) -> x * x.
  const IrExprPtr sq = ir_pow(ir_leaf(IrOp::Dist), 2);
  const IrExprPtr reduced = strength_reduction_pass(sq);
  EXPECT_EQ(reduced->op, IrOp::Mul);
  // pow(x, 5) untouched (exponent >= 4).
  EXPECT_EQ(strength_reduction_pass(ir_pow(ir_leaf(IrOp::Dist), 5))->op, IrOp::Pow);
  // sqrt -> NaN-safe fast form.
  EXPECT_EQ(strength_reduction_pass(ir_unary(IrOp::Sqrt, ir_leaf(IrOp::Dist)))->op,
            IrOp::FastSqrt);
  // 1/sqrt(x) -> fast_inv_sqrt.
  const IrExprPtr inv =
      ir_binary(IrOp::Div, ir_const(1), ir_unary(IrOp::Sqrt, ir_leaf(IrOp::Dist)));
  EXPECT_EQ(strength_reduction_pass(inv)->op, IrOp::FastInvSqrt);
}

TEST(Passes, NumericalOptimizationSwitchesToCholesky) {
  IrExpr naive;
  naive.op = IrOp::MahalanobisNaive;
  naive.matrix = {4, 2, 2, 3}; // SPD covariance
  const IrExprPtr opt =
      numerical_optimization_pass(std::make_shared<const IrExpr>(naive));
  ASSERT_EQ(opt->op, IrOp::MahalanobisChol);
  // The stored matrix is now the Cholesky factor L with L L^T = cov.
  const std::vector<real_t>& l = opt->matrix;
  EXPECT_NEAR(l[0] * l[0], 4.0, 1e-12);
  EXPECT_NEAR(l[2] * l[0], 2.0, 1e-12);
}

TEST(Passes, ConstantFolding) {
  const IrExprPtr folded = constant_fold_pass(
      ir_binary(IrOp::Add, ir_const(2), ir_binary(IrOp::Mul, ir_const(3), ir_const(4))));
  ASSERT_EQ(folded->op, IrOp::Const);
  EXPECT_DOUBLE_EQ(folded->value, 14.0);
  // Identity simplifications.
  const IrExprPtr x_plus_0 =
      constant_fold_pass(ir_binary(IrOp::Add, ir_leaf(IrOp::Dist), ir_const(0)));
  EXPECT_EQ(x_plus_0->op, IrOp::Dist);
  const IrExprPtr x_times_1 =
      constant_fold_pass(ir_binary(IrOp::Mul, ir_const(1), ir_leaf(IrOp::Dist)));
  EXPECT_EQ(x_times_1->op, IrOp::Dist);
}

// ---------------------------------------------------------------------------
// VM correctness: bytecode evaluation == direct evaluation of the same math.
TEST(Vm, EvaluatesEuclideanKernel) {
  Var q("q"), r("r");
  const IrExprPtr ir = lower_kernel_expr(euclid(q, r), q.id(), r.id(), {});
  const VmProgram program = VmProgram::compile(ir);
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const index_t dim = 1 + static_cast<index_t>(rng.uniform_index(10));
    std::vector<real_t> a(dim), b(dim);
    real_t sq = 0;
    for (index_t d = 0; d < dim; ++d) {
      a[d] = rng.uniform(-5, 5);
      b[d] = rng.uniform(-5, 5);
      sq += (a[d] - b[d]) * (a[d] - b[d]);
    }
    EXPECT_NEAR(program.run_pair(a.data(), b.data(), dim), std::sqrt(sq), 1e-12);
  }
}

TEST(Vm, EvaluatesChebyshevAndEnvelope) {
  Var q, r;
  const Expr cheb = dimmax(abs(Expr(q) - Expr(r)));
  const VmProgram program =
      VmProgram::compile(lower_kernel_expr(cheb, q.id(), r.id(), {}));
  const real_t a[3] = {0, 0, 0};
  const real_t b[3] = {1, -4, 2};
  EXPECT_DOUBLE_EQ(program.run_pair(a, b, 3), 4.0);

  // Envelope program: exp(-0.5 * Dist).
  const IrExprPtr env = ir_unary(
      IrOp::Exp, ir_binary(IrOp::Mul, ir_const(-0.5), ir_leaf(IrOp::Dist)));
  const VmProgram env_program = VmProgram::compile(env);
  EXPECT_NEAR(env_program.run_envelope(2.0), std::exp(-1.0), 1e-15);
}

TEST(Vm, StrengthReducedProgramStaysAccurate) {
  Var q("q"), r("r");
  const IrExprPtr exact_ir = lower_kernel_expr(euclid(q, r), q.id(), r.id(), {});
  const IrExprPtr fast_ir = strength_reduction_pass(exact_ir);
  const VmProgram exact = VmProgram::compile(exact_ir);
  const VmProgram fast = VmProgram::compile(fast_ir);
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    real_t a[4], b[4];
    for (int d = 0; d < 4; ++d) {
      a[d] = rng.uniform(-10, 10);
      b[d] = rng.uniform(-10, 10);
    }
    const real_t e = exact.run_pair(a, b, 4);
    const real_t f = fast.run_pair(a, b, 4);
    EXPECT_NEAR(f / e, 1.0, 2e-3); // the Sec. IV-E error envelope
  }
}

TEST(Vm, MahalanobisOpcodesMatchLinalg) {
  Var q, r;
  const std::vector<real_t> cov = {4, 2, 2, 3};
  const Expr kernel = mahalanobis(q, r, cov);
  const IrExprPtr naive_ir = lower_kernel_expr(kernel, q.id(), r.id(), {});
  const IrExprPtr chol_ir = numerical_optimization_pass(naive_ir);
  const VmProgram naive = VmProgram::compile(naive_ir);
  const VmProgram chol = VmProgram::compile(chol_ir);

  const std::vector<real_t> inv = spd_inverse(cov, 2);
  Rng rng(3);
  std::vector<real_t> scratch(8);
  for (int trial = 0; trial < 100; ++trial) {
    const real_t a[2] = {rng.uniform(-3, 3), rng.uniform(-3, 3)};
    const real_t b[2] = {rng.uniform(-3, 3), rng.uniform(-3, 3)};
    const real_t expected = mahalanobis_sq_naive(a, b, inv, 2);
    EXPECT_NEAR(naive.run_pair(a, b, 2, scratch.data()), expected, 1e-10);
    EXPECT_NEAR(chol.run_pair(a, b, 2, scratch.data()), expected, 1e-10);
  }
}

TEST(Vm, ExternalCallOpcode) {
  Var q, r;
  const Expr kernel = external_kernel(
      q, r,
      [](const real_t* a, const real_t* b, index_t dim) {
        real_t total = 0;
        for (index_t d = 0; d < dim; ++d) total += a[d] * b[d];
        return total;
      },
      "dot");
  const VmProgram program =
      VmProgram::compile(lower_kernel_expr(kernel, q.id(), r.id(), {}));
  const real_t a[2] = {2, 3};
  const real_t b[2] = {4, 5};
  EXPECT_DOUBLE_EQ(program.run_pair(a, b, 2), 23.0);
}

// ---------------------------------------------------------------------------
// Envelope classification (the generator's front half).
TEST(Classification, Shapes) {
  Var q, r;
  KernelInfo info;

  // Identity (k-NN).
  NormalizedKernel n = normalize_kernel(euclid(q, r), q.id(), r.id(), {});
  info.normalized = n.ok;
  info.envelope_ir = n.envelope;
  classify_envelope(&info);
  EXPECT_EQ(info.shape, EnvelopeShape::Identity);

  // Decreasing (Gaussian).
  n = normalize_kernel(exp(Expr(-0.25) * dimsum(pow(Expr(q) - Expr(r), 2))),
                       q.id(), r.id(), {});
  info.normalized = n.ok;
  info.envelope_ir = n.envelope;
  classify_envelope(&info);
  EXPECT_EQ(info.shape, EnvelopeShape::Decreasing);

  // Increasing but not identity.
  n = normalize_kernel(dimsum(pow(Expr(q) - Expr(r), 2)) * Expr(2.0) + Expr(1.0),
                       q.id(), r.id(), {});
  info.normalized = n.ok;
  info.envelope_ir = n.envelope;
  classify_envelope(&info);
  EXPECT_EQ(info.shape, EnvelopeShape::Increasing);

  // Indicator (range search): lo < d < hi.
  const Expr d = sqrt(pow(Expr(q) - Expr(r), 2));
  n = normalize_kernel((Expr(0.5) < d) * (d < Expr(2.0)), q.id(), r.id(), {});
  info.normalized = n.ok;
  info.envelope_ir = n.envelope;
  classify_envelope(&info);
  ASSERT_EQ(info.shape, EnvelopeShape::Indicator);
  EXPECT_DOUBLE_EQ(info.indicator_lo, 0.5);
  EXPECT_DOUBLE_EQ(info.indicator_hi, 2.0);

  // One-sided indicator (2-point correlation): d < h.
  n = normalize_kernel(d < Expr(3.0), q.id(), r.id(), {});
  info.normalized = n.ok;
  info.envelope_ir = n.envelope;
  classify_envelope(&info);
  ASSERT_EQ(info.shape, EnvelopeShape::Indicator);
  EXPECT_TRUE(std::isinf(info.indicator_lo));
  EXPECT_DOUBLE_EQ(info.indicator_hi, 3.0);

  // Non-monotone: disabled with Opaque.
  n = normalize_kernel(
      dimsum(pow(Expr(q) - Expr(r), 2)) * (Expr(4.0) - dimsum(pow(Expr(q) - Expr(r), 2))),
      q.id(), r.id(), {});
  // Note: two Dist occurrences -> still normalized (same metric twice).
  info.normalized = n.ok;
  info.envelope_ir = n.envelope;
  classify_envelope(&info);
  EXPECT_EQ(info.shape, EnvelopeShape::Opaque);
}

TEST(Printer, StatementDump) {
  const IrStmtPtr program = ir_block({
      ir_comment("storage injection for outer layer"),
      ir_alloc("storage0[q.size]"),
      ir_loop("q in query.start ... query.end",
              {ir_assign("t", ir_pow(ir_leaf(IrOp::Dist), 2))}),
  });
  const std::string text = ir_stmt_to_string(program);
  EXPECT_NE(text.find("// storage injection"), std::string::npos);
  EXPECT_NE(text.find("alloc storage0[q.size]"), std::string::npos);
  EXPECT_NE(text.find("for q in query.start"), std::string::npos);
  EXPECT_NE(text.find("t = pow(dist(q, r), 2)"), std::string::npos);
}

} // namespace
} // namespace portal

// ---------------------------------------------------------------------------
// vmin/vmax builders flow through lowering and the VM.
namespace portal {
namespace {

TEST(Vm, MinMaxBuilders) {
  Var q("q"), r("r");
  // Truncated distance: min(||q - r||, 2).
  const Expr kernel = vmin(sqrt(pow(Expr(q) - Expr(r), 2)), Expr(2.0));
  EXPECT_EQ(kernel.to_string(), "min(sqrt(dimsum(pow((q - r), 2))), 2)");
  const VmProgram program =
      VmProgram::compile(lower_kernel_expr(kernel, q.id(), r.id(), {}));
  const real_t a[2] = {0, 0};
  const real_t near_b[2] = {1, 0};
  const real_t far_b[2] = {5, 0};
  EXPECT_DOUBLE_EQ(program.run_pair(a, near_b, 2), 1.0);
  EXPECT_DOUBLE_EQ(program.run_pair(a, far_b, 2), 2.0); // clamped

  // vmax is elementwise on vectors: max(q - r, 0) summed = positive part.
  const Expr relu = dimsum(vmax(Expr(q) - Expr(r), Expr(0.0)));
  const VmProgram relu_program =
      VmProgram::compile(lower_kernel_expr(relu, q.id(), r.id(), {}));
  const real_t x[2] = {3, -4};
  const real_t y[2] = {1, 0};
  EXPECT_DOUBLE_EQ(relu_program.run_pair(x, y, 2), 2.0); // (3-1)+0
}

TEST(Classification, TruncatedKernelIsMonotone) {
  Var q, r;
  KernelInfo info;
  const NormalizedKernel n = normalize_kernel(
      vmin(sqrt(pow(Expr(q) - Expr(r), 2)), Expr(2.0)), q.id(), r.id(), {});
  ASSERT_TRUE(n.ok);
  info.normalized = true;
  info.envelope_ir = n.envelope;
  classify_envelope(&info);
  EXPECT_EQ(info.shape, EnvelopeShape::Increasing); // non-strict plateau ok
}

} // namespace
} // namespace portal

// ---------------------------------------------------------------------------
// Dead-code elimination (Sec. IV-F).
namespace portal {
namespace {

TEST(Passes, DceDropsUnreadTemps) {
  IrExpr t_node;
  t_node.op = IrOp::Temp;
  t_node.label = "t";
  const IrExprPtr t_ref = std::make_shared<const IrExpr>(t_node);

  const IrStmtPtr program = ir_block({
      ir_assign("t", ir_const(1)),        // read below: live
      ir_assign("dead", ir_const(2)),     // never read: removed
      ir_assign("storage0[q]", t_ref),    // storage target: always live
      ir_accum("acc", "+", ir_const(3)),  // accum reads its own target
  });
  const IrStmtPtr cleaned = dce_pass(program);
  const std::string text = ir_stmt_to_string(cleaned);
  EXPECT_NE(text.find("t = 1"), std::string::npos);
  EXPECT_EQ(text.find("dead = 2"), std::string::npos);
  EXPECT_NE(text.find("storage0[q] = t"), std::string::npos);
  EXPECT_NE(text.find("acc += 3"), std::string::npos);
}

TEST(Passes, PipelineKeepsKernelAssignmentLive) {
  // End-to-end: the BaseCase `t = kernel` assignment survives DCE because
  // the reduction reads it; the dump must still show it after all passes.
  Storage data(make_gaussian_mixture(64, 3, 2, 88));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer(PortalOp::ARGMIN, data, PortalFunc::EUCLIDEAN);
  PortalConfig config;
  config.parallel = false;
  config.dump_ir = true;
  expr.execute(config);
  bool saw_dce_stage = false;
  for (const auto& [stage, dump] : expr.artifacts().stages)
    if (stage == "dead-code-elimination") {
      saw_dce_stage = true;
      EXPECT_NE(dump.find("t = "), std::string::npos);
    }
  EXPECT_TRUE(saw_dce_stage);
}

} // namespace
} // namespace portal
