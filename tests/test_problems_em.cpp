// Tests for EM: tau = 0 tree EM must track the flat oracle, log-likelihood
// must ascend (the EM guarantee), responsibilities must be distributions, and
// the tau knob must trade accuracy for approximation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/generators.h"
#include "problems/em.h"
#include "util/rng.h"

namespace portal {
namespace {

EmOptions base_options() {
  EmOptions options;
  options.num_components = 3;
  options.max_iters = 6;
  options.tol = 0; // run all iterations; tests reason about trajectories
  options.seed = 99;
  options.parallel = false;
  return options;
}

TEST(Em, ResponsibilitiesAreDistributions) {
  const Dataset data = make_gaussian_mixture(600, 3, 3, 91);
  const EmResult result = em_bruteforce(data, base_options());
  const index_t K = result.num_components;
  for (index_t i = 0; i < data.size(); ++i) {
    real_t sum = 0;
    for (index_t k = 0; k < K; ++k) {
      const real_t r = result.resp[i * K + k];
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0 + 1e-12);
      sum += r;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  real_t wsum = 0;
  for (real_t w : result.weights) wsum += w;
  EXPECT_NEAR(wsum, 1.0, 1e-9);
}

TEST(Em, LogLikelihoodAscends) {
  const Dataset data = make_gaussian_mixture(800, 2, 3, 92);
  const EmResult result = em_bruteforce(data, base_options());
  ASSERT_GE(result.loglik_history.size(), 2u);
  for (std::size_t i = 1; i < result.loglik_history.size(); ++i)
    EXPECT_GE(result.loglik_history[i], result.loglik_history[i - 1] - 1e-6)
        << "EM must not decrease the log-likelihood (iter " << i << ")";
}

TEST(Em, TreeTauZeroMatchesBruteForce) {
  const Dataset data = make_gaussian_mixture(500, 3, 3, 93);
  EmOptions options = base_options();
  options.tau = 0;
  const EmResult brute = em_bruteforce(data, options);
  const EmResult tree = em_expert(data, options);
  ASSERT_EQ(brute.loglik_history.size(), tree.loglik_history.size());
  for (std::size_t i = 0; i < brute.loglik_history.size(); ++i)
    EXPECT_NEAR(tree.loglik_history[i], brute.loglik_history[i],
                1e-6 * std::abs(brute.loglik_history[i]));
  // Final parameters agree (summation order differs, hence loose tolerance).
  for (std::size_t i = 0; i < brute.means.size(); ++i)
    EXPECT_NEAR(tree.means[i], brute.means[i], 1e-5);
  EXPECT_EQ(tree.approx_nodes, 0u);
}

TEST(Em, TauApproximatesAndStaysClose) {
  const Dataset data = make_gaussian_mixture(3000, 2, 3, 94);
  EmOptions exact = base_options();
  exact.max_iters = 4;
  EmOptions approx = exact;
  approx.tau = 0.05;
  const EmResult a = em_expert(data, exact);
  const EmResult b = em_expert(data, approx);
  EXPECT_GT(b.approx_nodes, 0u) << "tau must actually trigger ComputeApprox";
  EXPECT_LT(b.exact_points, a.exact_points);
  // Approximate trajectory stays within ~1% of exact loglik per point.
  const real_t per_point = std::abs(a.log_likelihood) / data.size();
  EXPECT_NEAR(b.log_likelihood / data.size(), a.log_likelihood / data.size(),
              0.05 * per_point + 0.05);
}

TEST(Em, RecoversWellSeparatedComponents) {
  // Three components far apart: fitted weights should be near 1/3 each.
  std::vector<std::vector<real_t>> points;
  Rng rng(95);
  for (int c = 0; c < 3; ++c)
    for (int i = 0; i < 400; ++i)
      points.push_back({c * 50.0 + rng.normal(), c * 50.0 + rng.normal()});
  const Dataset data = Dataset::from_points(points);
  EmOptions options = base_options();
  options.max_iters = 15;
  const EmResult result = em_expert(data, options);
  std::vector<real_t> weights = result.weights;
  std::sort(weights.begin(), weights.end());
  for (real_t w : weights) EXPECT_NEAR(w, 1.0 / 3.0, 0.05);
}

TEST(Em, DeterministicPerSeed) {
  const Dataset data = make_gaussian_mixture(300, 2, 2, 96);
  EmOptions options = base_options();
  const EmResult a = em_bruteforce(data, options);
  const EmResult b = em_bruteforce(data, options);
  EXPECT_EQ(a.loglik_history, b.loglik_history);
  options.seed = 1000;
  const EmResult c = em_bruteforce(data, options);
  EXPECT_NE(a.loglik_history.front(), c.loglik_history.front());
}

TEST(Em, InvalidArgumentsThrow) {
  const Dataset data = make_uniform(5, 2, 97);
  EmOptions options;
  options.num_components = 10; // more components than points
  EXPECT_THROW(em_expert(data, options), std::invalid_argument);
  options.num_components = 0;
  EXPECT_THROW(em_bruteforce(data, options), std::invalid_argument);
}

} // namespace
} // namespace portal
