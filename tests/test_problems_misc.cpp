// Tests for range search, Hausdorff distance, 2-point correlation, naive
// Bayes, and the library-style baselines (which must agree with the exact
// oracles -- the Table V comparisons are about speed, never about results).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baselines/mlpack_like.h"
#include "baselines/sklearn_like.h"
#include "data/generators.h"
#include "problems/hausdorff.h"
#include "problems/nbc.h"
#include "problems/range_search.h"
#include "problems/twopoint.h"

namespace portal {
namespace {

// ---------------------------------------------------------------------------
// Range search.
class RangeSweep
    : public testing::TestWithParam<std::tuple<index_t, index_t, real_t, real_t>> {};

TEST_P(RangeSweep, ExpertMatchesBruteForce) {
  const auto [n, dim, h_lo, h_hi] = GetParam();
  const Dataset reference = make_gaussian_mixture(n, dim, 3, 500 + n);
  const Dataset query = make_gaussian_mixture(n / 3 + 4, dim, 3, 600 + n);

  const RangeSearchResult brute =
      range_search_bruteforce(query, reference, h_lo, h_hi);
  RangeSearchOptions options;
  options.h_lo = h_lo;
  options.h_hi = h_hi;
  const RangeSearchResult expert = range_search_expert(query, reference, options);

  ASSERT_EQ(brute.offsets, expert.offsets);
  EXPECT_EQ(brute.neighbors, expert.neighbors); // both sorted ascending
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RangeSweep,
    testing::Values(std::make_tuple(150, 2, 0.0, 0.5),
                    std::make_tuple(400, 3, 0.0, 2.0),
                    std::make_tuple(400, 3, 1.0, 3.0), // annulus
                    std::make_tuple(250, 5, 0.5, 6.0),
                    std::make_tuple(600, 2, 0.0, 100.0))); // everything matches

TEST(RangeSearch, BulkAcceptPathIsExercised) {
  // A huge radius forces entire subtree accepts; counts must still be exact.
  const Dataset data = make_gaussian_mixture(500, 2, 2, 31);
  RangeSearchOptions options;
  options.h_hi = 1e6;
  const RangeSearchResult result = range_search_expert(data, data, options);
  // The kernel is strict (h_lo < d), so the zero-distance self pair is out.
  for (index_t i = 0; i < data.size(); ++i)
    EXPECT_EQ(result.count(i), data.size() - 1);
}

TEST(RangeSearch, SelfExcludedByPositiveLowerBound) {
  const Dataset data = make_gaussian_mixture(200, 3, 2, 32);
  RangeSearchOptions options;
  options.h_lo = 1e-9; // excludes the zero-distance self pair
  options.h_hi = 1e6;
  const RangeSearchResult result = range_search_expert(data, data, options);
  for (index_t i = 0; i < data.size(); ++i)
    EXPECT_EQ(result.count(i), data.size() - 1);
}

TEST(RangeSearch, InvalidArgumentsThrow) {
  const Dataset a = make_uniform(10, 2, 33);
  EXPECT_THROW(range_search_bruteforce(a, a, 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(range_search_bruteforce(a, a, -1.0, 1.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Hausdorff.
TEST(Hausdorff, ExpertMatchesBruteForce) {
  const Dataset a = make_gaussian_mixture(300, 3, 2, 41);
  const Dataset b = make_gaussian_mixture(450, 3, 2, 42);
  const HausdorffResult brute = hausdorff_bruteforce(a, b);
  const HausdorffResult expert = hausdorff_expert(a, b, {});
  EXPECT_NEAR(brute.directed_qr, expert.directed_qr, 1e-9);
  EXPECT_NEAR(brute.directed_rq, expert.directed_rq, 1e-9);
  EXPECT_NEAR(brute.symmetric, expert.symmetric, 1e-9);
}

TEST(Hausdorff, IdenticalSetsGiveZero) {
  const Dataset a = make_gaussian_mixture(100, 2, 2, 43);
  const HausdorffResult result = hausdorff_expert(a, a, {});
  EXPECT_NEAR(result.symmetric, 0.0, 1e-12);
}

TEST(Hausdorff, KnownConfiguration) {
  // A = {0}, B = {3, 10} on a line: h(A,B) = 3, h(B,A) = 10.
  const Dataset a = Dataset::from_points({{0.0}});
  const Dataset b = Dataset::from_points({{3.0}, {10.0}});
  const HausdorffResult result = hausdorff_expert(a, b, {});
  EXPECT_NEAR(result.directed_qr, 3.0, 1e-12);
  EXPECT_NEAR(result.directed_rq, 10.0, 1e-12);
  EXPECT_NEAR(result.symmetric, 10.0, 1e-12);
}

TEST(Hausdorff, DirectedIsAsymmetric) {
  // A strict subset has zero directed distance to its superset.
  const Dataset super = make_gaussian_mixture(200, 2, 2, 44);
  std::vector<std::vector<real_t>> sub_points;
  for (index_t i = 0; i < 50; ++i)
    sub_points.push_back({super.coord(i, 0), super.coord(i, 1)});
  const Dataset sub = Dataset::from_points(sub_points);
  const HausdorffResult result = hausdorff_expert(sub, super, {});
  EXPECT_NEAR(result.directed_qr, 0.0, 1e-12);
  EXPECT_GT(result.directed_rq, 0.0);
}

// ---------------------------------------------------------------------------
// 2-point correlation.
class TwoPointSweep
    : public testing::TestWithParam<std::tuple<index_t, index_t, real_t, index_t>> {};

TEST_P(TwoPointSweep, ExpertMatchesBruteForce) {
  const auto [n, dim, h, leaf_size] = GetParam();
  const Dataset data = make_gaussian_mixture(n, dim, 4, 700 + n);
  const TwoPointResult brute = twopoint_bruteforce(data, h);
  TwoPointOptions options;
  options.h = h;
  options.leaf_size = leaf_size;
  const TwoPointResult expert = twopoint_expert(data, options);
  EXPECT_EQ(brute.pairs, expert.pairs);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TwoPointSweep,
    testing::Values(std::make_tuple(100, 2, 0.5, 8),
                    std::make_tuple(500, 3, 1.0, 16),
                    std::make_tuple(500, 3, 5.0, 32),
                    std::make_tuple(800, 2, 0.1, 64),
                    std::make_tuple(300, 6, 4.0, 4),
                    std::make_tuple(1000, 3, 1e6, 32),  // everything within h
                    std::make_tuple(1000, 3, 1e-9, 32))); // nothing within h

TEST(TwoPoint, ExtremeRadiiClosedForms) {
  const Dataset data = make_gaussian_mixture(400, 3, 2, 51);
  TwoPointOptions all;
  all.h = 1e9;
  EXPECT_EQ(twopoint_expert(data, all).pairs,
            static_cast<std::uint64_t>(400) * 399 / 2);
  TwoPointOptions none;
  none.h = 1e-12;
  EXPECT_EQ(twopoint_expert(data, none).pairs, 0u);
}

TEST(TwoPoint, BulkAcceptReducesBaseCases) {
  const Dataset data = make_gaussian_mixture(3000, 3, 5, 52);
  TwoPointOptions wide;
  wide.h = 1e6;
  wide.parallel = false;
  const TwoPointResult result = twopoint_expert(data, wide);
  // Full-accept at the root-ish level: almost no base cases.
  EXPECT_LT(result.stats.base_cases, 16u);
}

TEST(TwoPoint, SklearnBaselineAgrees) {
  const Dataset data = make_gaussian_mixture(600, 3, 3, 53);
  const real_t h = 1.5;
  const TwoPointResult exact = twopoint_bruteforce(data, h);
  const SklearnTwoPointResult baseline = sklearn_like_twopoint(data, h);
  EXPECT_EQ(baseline.pairs, exact.pairs);
}

// ---------------------------------------------------------------------------
// Naive Bayes.
TEST(Nbc, TrainRecoversClassMoments) {
  const LabeledDataset train = make_labeled_mixture(5000, 4, 3, 61);
  const NbcModel model = nbc_train(train.points, train.labels, 3);
  ASSERT_EQ(model.num_classes, 3);
  real_t prior_sum = 0;
  for (real_t p : model.priors) prior_sum += p;
  EXPECT_NEAR(prior_sum, 1.0, 1e-12);
  for (real_t v : model.variances) EXPECT_GT(v, 0.0);
}

TEST(Nbc, ExpertMatchesBruteforcePredictions) {
  const LabeledDataset train = make_labeled_mixture(2000, 6, 4, 62);
  const LabeledDataset test = make_labeled_mixture(500, 6, 4, 63);
  const NbcModel model = nbc_train(train.points, train.labels, 4);
  const std::vector<int> brute = nbc_predict_bruteforce(model, test.points);
  const std::vector<int> expert = nbc_predict_expert(model, test.points);
  const std::vector<int> mlpack = mlpack_like_nbc_predict(model, test.points);
  EXPECT_EQ(brute, expert);
  EXPECT_EQ(brute, mlpack);
}

TEST(Nbc, SeparatedClassesClassifyAccurately) {
  // Well-separated mixture: NBC should recover the generating labels almost
  // always (train == test distribution).
  const LabeledDataset data = make_labeled_mixture(4000, 3, 3, 64);
  const NbcModel model = nbc_train(data.points, data.labels, 3);
  const std::vector<int> pred = nbc_predict_expert(model, data.points);
  index_t correct = 0;
  for (index_t i = 0; i < data.points.size(); ++i)
    if (pred[i] == data.labels[i]) ++correct;
  EXPECT_GT(static_cast<double>(correct) / data.points.size(), 0.9);
}

TEST(Nbc, JointLogLikelihoodConsistentWithPrediction) {
  const LabeledDataset data = make_labeled_mixture(300, 4, 3, 65);
  const NbcModel model = nbc_train(data.points, data.labels, 3);
  const std::vector<real_t> joint = nbc_joint_log_likelihood(model, data.points);
  const std::vector<int> pred = nbc_predict_expert(model, data.points);
  for (index_t i = 0; i < data.points.size(); ++i) {
    int best = 0;
    for (index_t k = 1; k < 3; ++k)
      if (joint[i * 3 + k] > joint[i * 3 + best]) best = static_cast<int>(k);
    EXPECT_EQ(best, pred[i]);
  }
}

TEST(Nbc, InvalidArgumentsThrow) {
  const LabeledDataset data = make_labeled_mixture(50, 2, 2, 66);
  EXPECT_THROW(nbc_train(data.points, std::vector<int>(49, 0), 2),
               std::invalid_argument);
  std::vector<int> bad_labels(50, 5);
  EXPECT_THROW(nbc_train(data.points, bad_labels, 2), std::invalid_argument);
  std::vector<int> one_class(50, 0);
  EXPECT_THROW(nbc_train(data.points, one_class, 2), std::invalid_argument);
}

} // namespace
} // namespace portal
// ---------------------------------------------------------------------------
// 3-point correlation: the m = 3 PowerSet-Tuples extension (Sec. II eq. 2).
#include "problems/threepoint.h"

namespace portal {
namespace {

class ThreePointSweep
    : public testing::TestWithParam<std::tuple<index_t, real_t, index_t>> {};

TEST_P(ThreePointSweep, ExpertMatchesBruteForce) {
  const auto [n, h, leaf_size] = GetParam();
  const Dataset data = make_gaussian_mixture(n, 3, 3, 900 + n);
  const ThreePointResult brute = threepoint_bruteforce(data, h);
  ThreePointOptions options;
  options.h = h;
  options.leaf_size = leaf_size;
  const ThreePointResult expert = threepoint_expert(data, options);
  EXPECT_EQ(brute.triples, expert.triples);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ThreePointSweep,
                         testing::Values(std::make_tuple(60, 1.0, 8),
                                         std::make_tuple(120, 2.0, 16),
                                         std::make_tuple(120, 0.5, 4),
                                         std::make_tuple(200, 1.5, 32),
                                         std::make_tuple(80, 100.0, 8),
                                         std::make_tuple(80, 1e-6, 8)));

TEST(ThreePoint, ClosedFormExtremes) {
  const Dataset data = make_gaussian_mixture(50, 3, 2, 901);
  // Everything within h: C(50, 3) triples.
  EXPECT_EQ(threepoint_expert(data, {1e9, 8}).triples, 50ull * 49 * 48 / 6);
  // Nothing within h.
  EXPECT_EQ(threepoint_expert(data, {1e-9, 8}).triples, 0u);
}

TEST(ThreePoint, InvalidRadiusThrows) {
  const Dataset data = make_uniform(10, 3, 902);
  EXPECT_THROW(threepoint_bruteforce(data, 0), std::invalid_argument);
  EXPECT_THROW(threepoint_expert(data, {-1, 8}), std::invalid_argument);
}

} // namespace
} // namespace portal
