// Tests for the nn-descent k-NN graph index (src/index/knn_graph.h): seeded
// build determinism (serial vs parallel bitwise), degenerate inputs, the
// bitwise-distance contract of the gathered SIMD tiles, the beam-search
// recall floor at the default width, and snapshot-swap consistency under
// concurrent approximate readers. The IndexGraph* suites run in the ASan
// and TSan CI jobs (the swap suite is the explicit
// concurrent-reader-during-publish TSan step).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "data/generators.h"
#include "index/knn_graph.h"
#include "problems/common.h"
#include "serve/engine.h"
#include "serve/plan_cache.h"
#include "tree/snapshot.h"
#include "util/rng.h"

namespace portal {
namespace {

/// Exact k smallest (squared distance, id) pairs by linear scan -- the
/// recall oracle.
std::vector<std::pair<real_t, index_t>> exact_knn_sq(const Dataset& data,
                                                     const real_t* q,
                                                     index_t k) {
  std::vector<std::pair<real_t, index_t>> scored(
      static_cast<std::size_t>(data.size()));
  for (index_t i = 0; i < data.size(); ++i) {
    real_t sq = 0;
    sq_dists_to_range(data, i, i + 1, q, &sq);
    scored[static_cast<std::size_t>(i)] = {sq, i};
  }
  const std::size_t kk = std::min<std::size_t>(
      static_cast<std::size_t>(k), scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(kk),
                    scored.end());
  scored.resize(kk);
  return scored;
}

TEST(IndexGraph, SeededBuildIsDeterministicSerialVsParallel) {
  const Dataset data = make_gaussian_mixture(1200, 12, 4, 77);
  KnnGraphOptions serial_opts;
  serial_opts.parallel_build = false;
  KnnGraphOptions parallel_opts;
  parallel_opts.parallel_build = true;
  const KnnGraph serial(data, serial_opts);
  const KnnGraph parallel(data, parallel_opts);

  ASSERT_EQ(serial.degree(), parallel.degree());
  ASSERT_EQ(serial.size(), parallel.size());
  for (index_t i = 0; i < serial.size(); ++i) {
    for (index_t s = 0; s < serial.degree(); ++s) {
      EXPECT_EQ(serial.neighbor_ids(i)[s], parallel.neighbor_ids(i)[s])
          << "row " << i << " slot " << s;
      EXPECT_EQ(serial.neighbor_sq(i)[s], parallel.neighbor_sq(i)[s])
          << "row " << i << " slot " << s;
    }
  }
  // Same options, second build: also bitwise (the seed fully determines the
  // graph).
  const KnnGraph again(data, parallel_opts);
  for (index_t i = 0; i < serial.size(); ++i)
    for (index_t s = 0; s < serial.degree(); ++s)
      EXPECT_EQ(serial.neighbor_ids(i)[s], again.neighbor_ids(i)[s]);
}

TEST(IndexGraph, SeedChangesTheInitialGraphDeterministically) {
  const Dataset data = make_gaussian_mixture(400, 8, 3, 5);
  KnnGraphOptions a;
  a.seed = 1;
  a.max_rounds = 0; // compare the seeded initialization directly
  KnnGraphOptions b;
  b.seed = 2;
  b.max_rounds = 0;
  const KnnGraph ga(data, a);
  const KnnGraph gb(data, b);
  bool any_diff = false;
  for (index_t i = 0; i < ga.size() && !any_diff; ++i)
    for (index_t s = 0; s < ga.degree() && !any_diff; ++s)
      any_diff = ga.neighbor_ids(i)[s] != gb.neighbor_ids(i)[s];
  EXPECT_TRUE(any_diff);
}

TEST(IndexGraph, RowsAreSortedValidAndBitwiseExact) {
  const Dataset data = make_gaussian_mixture(600, 20, 3, 9);
  const KnnGraph graph(data, {});
  for (index_t i = 0; i < graph.size(); ++i) {
    const index_t* ids = graph.neighbor_ids(i);
    const real_t* sq = graph.neighbor_sq(i);
    for (index_t s = 0; s < graph.degree(); ++s) {
      ASSERT_GE(ids[s], 0);
      ASSERT_LT(ids[s], graph.size());
      EXPECT_NE(ids[s], i) << "self loop in row " << i;
      // Ascending by (distance, id); no duplicate ids.
      if (s > 0) {
        EXPECT_TRUE(sq[s] > sq[s - 1] ||
                    (sq[s] == sq[s - 1] && ids[s] > ids[s - 1]))
            << "row " << i << " slot " << s;
      }
      // Stored distances are bitwise-equal to the scalar ascending-dimension
      // accumulation -- the same contract the serve engine relies on.
      real_t want = 0;
      std::vector<real_t> q(static_cast<std::size_t>(data.dim()));
      data.copy_point(i, q.data());
      sq_dists_to_range(graph.data(), ids[s], ids[s] + 1, q.data(), &want);
      EXPECT_EQ(sq[s], want) << "row " << i << " slot " << s;
    }
  }
}

TEST(IndexGraph, DegenerateInputs) {
  EXPECT_THROW(KnnGraph(Dataset(), {}), std::invalid_argument);

  // One point: degree clamps to zero, searches still answer.
  const Dataset one = make_uniform(1, 5, 3);
  const KnnGraph g1(one, {});
  EXPECT_EQ(g1.degree(), 0);
  KnnGraph::SearchScratch scratch;
  real_t sq[4];
  index_t ids[4];
  EXPECT_EQ(g1.search(one.row_ptr(0), 4, 8, scratch, sq, ids), 1);
  EXPECT_EQ(ids[0], 0);
  EXPECT_EQ(sq[0], real_t{0});

  // Tiny sets: degree clamps to size - 1 and every row is the full set.
  for (index_t n : {index_t{2}, index_t{3}}) {
    const Dataset tiny = make_uniform(n, 4, 11);
    const KnnGraph g(tiny, {});
    EXPECT_EQ(g.degree(), n - 1);
    for (index_t i = 0; i < n; ++i) {
      std::vector<index_t> row(g.neighbor_ids(i), g.neighbor_ids(i) + g.degree());
      std::sort(row.begin(), row.end());
      index_t expect = 0;
      for (const index_t id : row) {
        if (expect == i) ++expect;
        EXPECT_EQ(id, expect++);
      }
    }
  }

  // All-duplicate points: zero distances everywhere, ties resolve by id,
  // build terminates, search returns valid distinct ids.
  Dataset dup(64, 6);
  for (index_t i = 0; i < dup.size(); ++i)
    for (index_t d = 0; d < dup.dim(); ++d) dup.coord(i, d) = real_t(1.5);
  const KnnGraph gd(dup, {});
  for (index_t i = 0; i < gd.size(); ++i)
    for (index_t s = 0; s < gd.degree(); ++s)
      EXPECT_EQ(gd.neighbor_sq(i)[s], real_t{0});
  std::vector<real_t> dsq(10);
  std::vector<index_t> dids(10);
  ASSERT_EQ(gd.search(dup.row_ptr(0), 10, 16, scratch, dsq.data(), dids.data()),
            10);
  std::sort(dids.begin(), dids.end());
  EXPECT_EQ(std::unique(dids.begin(), dids.end()), dids.end());

  // degree larger than the dataset: clamps, still exact on such tiny sets.
  KnnGraphOptions wide;
  wide.degree = 100;
  const Dataset small = make_uniform(10, 3, 21);
  const KnnGraph gs(small, wide);
  EXPECT_EQ(gs.degree(), 9);
}

TEST(IndexGraph, SearchIsExactWhenBeamCoversTheDataset) {
  const Dataset data = make_gaussian_mixture(300, 16, 3, 13);
  const KnnGraph graph(data, {});
  KnnGraph::SearchScratch scratch;
  std::vector<real_t> sq(5);
  std::vector<index_t> ids(5);
  for (index_t qi = 0; qi < 20; ++qi) {
    std::vector<real_t> q(static_cast<std::size_t>(data.dim()));
    data.copy_point(qi * 7, q.data());
    q[0] += real_t(0.25);
    // beam >= n visits every seed... not every point, but the beam keeps the
    // global best among all visited; with beam == n the seed set alone is
    // the whole dataset, so the answer is exact.
    ASSERT_EQ(graph.search(q.data(), 5, data.size(), scratch, sq.data(),
                           ids.data()),
              5);
    const auto want = exact_knn_sq(data, q.data(), 5);
    for (std::size_t s = 0; s < want.size(); ++s) {
      EXPECT_EQ(sq[s], want[s].first) << "slot " << s;
      EXPECT_EQ(ids[s], want[s].second) << "slot " << s;
    }
  }
}

TEST(IndexGraph, RecallFloorAtDefaultBeamOnGaussianMixture) {
  const index_t n = 4000, dim = 32, k = 10;
  const Dataset data = make_gaussian_mixture(n, dim, 10, 123);
  const Dataset queries = make_gaussian_mixture(100, dim, 10, 321);
  const KnnGraph graph(data, {});
  KnnGraph::SearchScratch scratch;
  const index_t beam = 64; // the serve default (EngineOptions::beam_width)
  std::vector<real_t> sq(static_cast<std::size_t>(beam));
  std::vector<index_t> ids(static_cast<std::size_t>(beam));
  std::vector<real_t> q(static_cast<std::size_t>(dim));

  std::uint64_t hit = 0, total = 0;
  for (index_t qi = 0; qi < queries.size(); ++qi) {
    queries.copy_point(qi, q.data());
    ASSERT_EQ(graph.search(q.data(), k, beam, scratch, sq.data(), ids.data()),
              k);
    const auto want = exact_knn_sq(data, q.data(), k);
    for (const auto& w : want) {
      total += 1;
      hit += std::find(ids.begin(), ids.begin() + k, w.second) !=
                     ids.begin() + k
                 ? 1
                 : 0;
    }
    // Distances are bitwise-exact for whatever the beam returned.
    for (index_t s = 0; s < k; ++s) {
      real_t want_sq = 0;
      queries.copy_point(qi, q.data());
      sq_dists_to_range(data, ids[static_cast<std::size_t>(s)],
                        ids[static_cast<std::size_t>(s)] + 1, q.data(),
                        &want_sq);
      EXPECT_EQ(sq[static_cast<std::size_t>(s)], want_sq);
    }
  }
  const double recall =
      static_cast<double>(hit) / static_cast<double>(total);
  EXPECT_GE(recall, 0.9) << "recall@" << k << " = " << recall;
}

// Regression: at high dimension the graph falls apart into one component
// per cluster, and the original id-stride seed sample aliased against the
// dataset ordering -- at some beam widths an entire cluster had no seed, so
// queries in it returned 0-recall answers from the wrong cluster. Search
// now seeds every component representative first (plus a build-time
// pseudo-random permutation), so even a tiny beam reaches every cluster.
TEST(IndexGraph, SmallBeamReachesEveryClusterOnHighDimData) {
  const index_t n = 3000, dim = 48, k = 5;
  const Dataset data = make_gaussian_mixture(n, dim, 5, 31);
  const KnnGraph graph(data, {});
  KnnGraph::SearchScratch scratch;
  std::vector<real_t> sq(static_cast<std::size_t>(k));
  std::vector<index_t> ids(static_cast<std::size_t>(k));
  std::vector<real_t> q(static_cast<std::size_t>(dim));
  Rng rng(7);
  for (const index_t beam : {index_t{5}, index_t{8}, index_t{16},
                             index_t{32}}) {
    std::uint64_t hit = 0, total = 0;
    for (int trial = 0; trial < 100; ++trial) {
      // Jittered dataset points: the true neighborhood is unambiguous and
      // always deep inside one cluster.
      const index_t base = static_cast<index_t>(
          rng.uniform_index(static_cast<std::uint64_t>(n)));
      data.copy_point(base, q.data());
      for (index_t d = 0; d < dim; ++d)
        q[static_cast<std::size_t>(d)] += rng.uniform(-1e-3, 1e-3);
      ASSERT_EQ(
          graph.search(q.data(), k, beam, scratch, sq.data(), ids.data()), k);
      const auto want = exact_knn_sq(data, q.data(), k);
      for (const auto& w : want) {
        total += 1;
        if (std::find(ids.begin(), ids.end(), w.second) != ids.end()) ++hit;
      }
    }
    const double recall = static_cast<double>(hit) / static_cast<double>(total);
    EXPECT_GE(recall, 0.9) << "recall@" << k << " at beam " << beam << " = "
                           << recall;
  }
}

TEST(IndexGraph, BuildStatsArePopulated) {
  const Dataset data = make_gaussian_mixture(800, 16, 4, 55);
  const KnnGraph graph(data, {});
  EXPECT_GT(graph.stats().rounds, 0);
  EXPECT_GT(graph.stats().dist_evals, 0u);
  EXPECT_GE(graph.stats().build_seconds, 0.0);
}

// --- snapshot-swap consistency under concurrent approximate readers ------
//
// Writers publish fresh epochs (graph included) while readers run
// approximate queries against whatever epoch they pinned. Every answer must
// be internally consistent with *its own* snapshot: ids within that epoch's
// dataset, values bitwise-equal to distances recomputed from that epoch's
// source. TSan runs this suite as the explicit reader-during-swap step.
TEST(IndexGraphSwap, ConcurrentReadersDuringPublish) {
  const index_t dim = 16, k = 5;
  SnapshotOptions opts;
  opts.build_graph = true;

  SnapshotSlot slot;
  slot.publish(std::make_shared<const Dataset>(
                   make_gaussian_mixture(600, dim, 3, 1000)),
               opts);

  // One plan serves every epoch (all share the dimensionality).
  serve::PlanCache cache;
  LayerSpec inner;
  inner.op = OpSpec(PortalOp::KARGMIN, k);
  inner.func = PortalFunc::EUCLIDEAN;
  const serve::PlanHandle plan = cache.get_or_compile(
      inner, *slot.load()->source(), PortalConfig{});
  ASSERT_TRUE(plan);

  serve::EngineOptions eopt;
  eopt.approx = true;
  eopt.beam_width = 32;

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  const Dataset queries = make_gaussian_mixture(32, dim, 3, 2000);

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      serve::Workspace ws;
      std::vector<real_t> q(static_cast<std::size_t>(dim));
      index_t qi = r;
      while (!stop.load(std::memory_order_acquire)) {
        const std::shared_ptr<const TreeSnapshot> snap = slot.load();
        queries.copy_point(qi % queries.size(), q.data());
        ++qi;
        const serve::QueryResult res =
            serve::run_query(*plan, *snap, q.data(), eopt, ws);
        if (res.ids.size() != static_cast<std::size_t>(k)) {
          failures.fetch_add(1);
          continue;
        }
        for (std::size_t s = 0; s < res.ids.size(); ++s) {
          const index_t id = res.ids[s];
          if (id < 0 || id >= snap->size()) {
            failures.fetch_add(1);
            continue;
          }
          real_t sq = 0;
          sq_dists_to_range(*snap->source(), id, id + 1, q.data(), &sq);
          if (res.values[s] != std::sqrt(sq)) failures.fetch_add(1);
        }
      }
    });
  }

  for (std::uint64_t e = 0; e < 8; ++e) {
    slot.publish(std::make_shared<const Dataset>(make_gaussian_mixture(
                     500 + static_cast<index_t>(e) * 100, dim, 3, 3000 + e)),
                 opts);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

} // namespace
} // namespace portal
