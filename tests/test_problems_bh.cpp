// Tests for Barnes-Hut: theta-controlled accuracy against direct summation,
// momentum conservation, the FDPS-style baseline, and the strength-reduction
// accuracy knob.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baselines/fdps_like.h"
#include "data/generators.h"
#include "problems/barneshut.h"

namespace portal {
namespace {

/// Relative RMS error between two acceleration fields.
real_t rel_rms_error(const std::vector<real_t>& approx,
                     const std::vector<real_t>& exact) {
  real_t num = 0, den = 0;
  for (std::size_t i = 0; i < exact.size(); i += 3) {
    real_t e2 = 0, d2 = 0;
    for (int d = 0; d < 3; ++d) {
      const real_t diff = approx[i + d] - exact[i + d];
      e2 += diff * diff;
      d2 += exact[i + d] * exact[i + d];
    }
    num += e2;
    den += d2;
  }
  return std::sqrt(num / std::max(den, real_t(1e-300)));
}

TEST(BarnesHut, TwoBodyExactForce) {
  const Dataset pos = Dataset::from_points({{0, 0, 0}, {1, 0, 0}});
  const std::vector<real_t> mass = {2.0, 3.0};
  const BarnesHutResult direct = bh_bruteforce(pos, mass, 1.0, 0.0);
  // a_0 = m_1 / r^2 toward +x; a_1 = m_0 / r^2 toward -x.
  EXPECT_NEAR(direct.accel[0], 3.0, 1e-12);
  EXPECT_NEAR(direct.accel[3], -2.0, 1e-12);
  EXPECT_NEAR(direct.accel[1], 0.0, 1e-12);
}

class BhThetaSweep : public testing::TestWithParam<std::tuple<real_t, real_t>> {};

TEST_P(BhThetaSweep, ErrorScalesWithTheta) {
  const auto [theta, max_err] = GetParam();
  const ParticleSet set = make_elliptical(3000, 101);
  const BarnesHutResult exact =
      bh_bruteforce(set.positions, set.masses, 1.0, 1e-3);
  BarnesHutOptions options;
  options.theta = theta;
  options.softening = 1e-3;
  const BarnesHutResult approx = bh_expert(set.positions, set.masses, options);
  EXPECT_LT(rel_rms_error(approx.accel, exact.accel), max_err)
      << "theta = " << theta;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BhThetaSweep,
                         testing::Values(std::make_tuple(0.2, 2e-3),
                                         std::make_tuple(0.5, 2e-2),
                                         std::make_tuple(0.8, 6e-2)));

TEST(BarnesHut, ThetaZeroIsExact) {
  const ParticleSet set = make_elliptical(800, 102);
  const BarnesHutResult exact =
      bh_bruteforce(set.positions, set.masses, 1.0, 1e-3);
  BarnesHutOptions options;
  options.theta = 0; // MAC never accepts: pure direct evaluation via leaves
  options.softening = 1e-3;
  const BarnesHutResult tree = bh_expert(set.positions, set.masses, options);
  for (std::size_t i = 0; i < exact.accel.size(); ++i)
    EXPECT_NEAR(tree.accel[i], exact.accel[i],
                1e-9 * std::max(real_t(1), std::abs(exact.accel[i])));
}

TEST(BarnesHut, MomentumNearlyConserved) {
  // Equal-mass direct sum: total force is exactly zero by Newton's third law;
  // Barnes-Hut breaks the symmetry only by the multipole approximation.
  const ParticleSet set = make_elliptical(2000, 103);
  BarnesHutOptions options;
  options.theta = 0.4;
  const BarnesHutResult result = bh_expert(set.positions, set.masses, options);
  real_t total[3] = {0, 0, 0};
  real_t scale = 0;
  for (index_t i = 0; i < set.positions.size(); ++i)
    for (int d = 0; d < 3; ++d) {
      total[d] += set.masses[i] * result.accel[3 * i + d];
      scale += std::abs(set.masses[i] * result.accel[3 * i + d]);
    }
  for (int d = 0; d < 3; ++d)
    EXPECT_LT(std::abs(total[d]), 1e-2 * scale / 3);
}

TEST(BarnesHut, FdpsBaselineMatchesAccuracy) {
  const ParticleSet set = make_elliptical(2500, 104);
  const BarnesHutResult exact =
      bh_bruteforce(set.positions, set.masses, 1.0, 1e-3);
  BarnesHutOptions options;
  options.theta = 0.5;
  options.softening = 1e-3;
  const BarnesHutResult dual = bh_expert(set.positions, set.masses, options);
  const BarnesHutResult single = fdps_like_bh(set.positions, set.masses, options);
  EXPECT_LT(rel_rms_error(dual.accel, exact.accel), 2e-2);
  EXPECT_LT(rel_rms_error(single.accel, exact.accel), 2e-2);
}

TEST(BarnesHut, FastRsqrtKnobStaysAccurate) {
  const ParticleSet set = make_elliptical(1500, 105);
  BarnesHutOptions accurate;
  accurate.theta = 0.4;
  BarnesHutOptions fast = accurate;
  fast.fast_rsqrt = true;
  const BarnesHutResult a = bh_expert(set.positions, set.masses, accurate);
  const BarnesHutResult b = bh_expert(set.positions, set.masses, fast);
  // fast_inv_sqrt has ~0.2% relative error; cubed ~0.6%.
  EXPECT_LT(rel_rms_error(b.accel, a.accel), 1e-2);
}

TEST(BarnesHut, GScalesLinearly) {
  const ParticleSet set = make_elliptical(500, 106);
  BarnesHutOptions g1;
  BarnesHutOptions g2;
  g2.G = 2.0;
  const BarnesHutResult a = bh_expert(set.positions, set.masses, g1);
  const BarnesHutResult b = bh_expert(set.positions, set.masses, g2);
  for (std::size_t i = 0; i < a.accel.size(); ++i)
    EXPECT_NEAR(b.accel[i], 2 * a.accel[i],
                1e-9 * std::max(real_t(1), std::abs(a.accel[i])));
}

TEST(BarnesHut, InvalidArgumentsThrow) {
  const Dataset flat = make_uniform(10, 2, 107);
  EXPECT_THROW(bh_bruteforce(flat, std::vector<real_t>(10, 1.0)),
               std::invalid_argument);
  const Dataset pos = make_uniform(10, 3, 108);
  EXPECT_THROW(bh_expert(pos, std::vector<real_t>(9, 1.0), {}),
               std::invalid_argument);
}

} // namespace
} // namespace portal
