// Ablation: the OpenMP task-parallel traversal (paper Sec. IV-F). Sweeps the
// thread count and the task-spawn depth on k-NN and KDE workloads.
//
// NOTE: on a container exposing a single core this emits flat curves -- the
// harness exists so the sweep is one rebuild away on a real multicore box
// (the paper's machine had 128 cores). Correctness under threads is covered
// by the *.ParallelMatchesSerial tests regardless.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "data/generators.h"
#include "problems/kde.h"
#include "problems/knn.h"
#include "tree/balltree.h"
#include "tree/kdtree.h"
#include "util/threading.h"

using namespace portal;
using namespace portal::bench;

int main(int argc, char** argv) {
  const std::string json_path = JsonReport::extract_json_path(&argc, argv);
  JsonReport report;

  print_header("Parallel scaling -- threads x task-spawn depth");
  const Dataset data = make_gaussian_mixture(
      static_cast<index_t>(20000 * bench_scale_from_env()), 3, 5, 71);

  const int hw_threads = num_threads();
  std::printf("hardware threads visible: %d\n\n", hw_threads);

  print_row({"Problem", "threads", "task depth", "time(s)"});
  for (int threads : {1, 2, 4, 8}) {
    if (threads > 2 * hw_threads && threads > 8) break;
    set_num_threads(threads);
    for (int depth : {0, 4, 8}) {
      KnnOptions knn;
      knn.k = 5;
      knn.parallel = threads > 1;
      knn.task_depth = depth;
      const double knn_s =
          time_best("bench/knn_expert", [&] { knn_expert(data, data, knn); }, 2);
      print_row({"k-NN", std::to_string(threads), std::to_string(depth),
                 fmt(knn_s)});
      report.add("ablation_parallel/knn_t" + std::to_string(threads),
                 "depth_" + std::to_string(depth), knn_s);
    }
    KdeOptions kde;
    kde.sigma = 1.0;
    kde.tau = 1e-3;
    kde.parallel = threads > 1;
    const double kde_s =
        time_best("bench/kde_expert", [&] { kde_expert(data, data, kde); }, 2);
    print_row({"KDE", std::to_string(threads), "auto", fmt(kde_s)});
    report.add("ablation_parallel/kde_t" + std::to_string(threads), "auto",
               kde_s);
  }
  set_num_threads(hw_threads);

  // The task-parallel upper tree composes with the SIMD tiles in the leaves
  // (paper Sec. IV-F: tasks above, data parallelism below) -- toggle the
  // tiles at full thread count to isolate their share.
  print_header("Batched vs scalar base cases (expert kernels, all threads)");
  print_row({"Problem", "mode", "time(s)"});
  for (const bool batch : {false, true}) {
    const char* mode = batch ? "batched" : "scalar";
    KnnOptions knn;
    knn.k = 5;
    knn.parallel = hw_threads > 1;
    knn.batch = batch;
    const double knn_s =
        time_best("bench/knn_expert", [&] { knn_expert(data, data, knn); }, 2);
    print_row({"k-NN", mode, fmt(knn_s)});
    report.add("ablation_parallel/knn_expert", mode, knn_s);

    KdeOptions kde;
    kde.sigma = 1.0;
    kde.tau = 1e-3;
    kde.parallel = hw_threads > 1;
    kde.batch = batch;
    const double kde_s =
        time_best("bench/kde_expert", [&] { kde_expert(data, data, kde); }, 2);
    print_row({"KDE", mode, fmt(kde_s)});
    report.add("ablation_parallel/kde_expert", mode, kde_s);
  }

  print_header("Tree construction -- serial vs task-parallel build");
  print_row({"Tree", "n", "threads", "build(s)"});
  for (index_t n : {index_t(100000), index_t(1000000)}) {
    const index_t scaled =
        std::max<index_t>(1000, static_cast<index_t>(n * bench_scale_from_env()));
    const Dataset pts = make_uniform(scaled, 3, 91);
    for (int threads : {1, 2, 4}) {
      if (threads > 2 * hw_threads && threads > 4) break;
      set_num_threads(threads);
      const bool parallel = threads > 1;
      const double kd_s = time_best(
          "bench/kd_build", [&] { KdTree t(pts, kDefaultLeafSize, parallel); }, 3);
      print_row({"kd", std::to_string(scaled), std::to_string(threads),
                 fmt(kd_s)});
      const double ball_s = time_best(
          "bench/ball_build", [&] { BallTree t(pts, kDefaultLeafSize, parallel); },
          3);
      print_row({"ball", std::to_string(scaled), std::to_string(threads),
                 fmt(ball_s)});
    }
  }
  set_num_threads(hw_threads);

  print_header("Build vs traverse split (k-NN, dual kd-tree)");
  {
    const Dataset pts = make_uniform(
        static_cast<index_t>(100000 * bench_scale_from_env()), 3, 92);
    const KdTree qtree(pts, kDefaultLeafSize);
    const KdTree rtree(pts, kDefaultLeafSize);
    KnnOptions knn;
    knn.k = 5;
    knn.parallel = hw_threads > 1;
    const KnnResult result = knn_dualtree_permuted(qtree, rtree, knn);
    print_row({"phase", "time(s)", "", ""});
    print_row({"tree build (q+r)",
               fmt(qtree.stats().build_seconds + rtree.stats().build_seconds),
               "", ""});
    print_row({"traversal", fmt(result.stats.elapsed_seconds), "", ""});
  }

  std::printf("\nOn one visible core the rows coincide; on a multicore\n"
              "machine k-NN and KDE scale with threads until the task depth\n"
              "saturates them (the paper's Sec. IV-F scheme), and the tree\n"
              "builds scale via the divide-and-conquer task recursion.\n");

  if (!json_path.empty() && !report.write(json_path)) return 1;
  return 0;
}
