// Ablation: the OpenMP task-parallel traversal (paper Sec. IV-F). Sweeps the
// thread count and the task-spawn depth on k-NN and KDE workloads.
//
// NOTE: on a container exposing a single core this emits flat curves -- the
// harness exists so the sweep is one rebuild away on a real multicore box
// (the paper's machine had 128 cores). Correctness under threads is covered
// by the *.ParallelMatchesSerial tests regardless.
#include <cstdio>

#include "bench/bench_common.h"
#include "data/generators.h"
#include "problems/kde.h"
#include "problems/knn.h"
#include "util/threading.h"

using namespace portal;
using namespace portal::bench;

int main() {
  print_header("Parallel scaling -- threads x task-spawn depth");
  const Dataset data = make_gaussian_mixture(
      static_cast<index_t>(20000 * bench_scale_from_env()), 3, 5, 71);

  const int hw_threads = num_threads();
  std::printf("hardware threads visible: %d\n\n", hw_threads);

  print_row({"Problem", "threads", "task depth", "time(s)"});
  for (int threads : {1, 2, 4, 8}) {
    if (threads > 2 * hw_threads && threads > 8) break;
    set_num_threads(threads);
    for (int depth : {0, 4, 8}) {
      KnnOptions knn;
      knn.k = 5;
      knn.parallel = threads > 1;
      knn.task_depth = depth;
      const double knn_s =
          time_best([&] { knn_expert(data, data, knn); }, 2);
      print_row({"k-NN", std::to_string(threads), std::to_string(depth),
                 fmt(knn_s)});
    }
    KdeOptions kde;
    kde.sigma = 1.0;
    kde.tau = 1e-3;
    kde.parallel = threads > 1;
    const double kde_s =
        time_best([&] { kde_expert(data, data, kde); }, 2);
    print_row({"KDE", std::to_string(threads), "auto", fmt(kde_s)});
  }
  set_num_threads(hw_threads);

  std::printf("\nOn one visible core the rows coincide; on a multicore\n"
              "machine k-NN and KDE scale with threads until the task depth\n"
              "saturates them (the paper's Sec. IV-F scheme).\n");
  return 0;
}
