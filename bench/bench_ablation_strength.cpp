// Ablation: the strength-reduction pass (paper Sec. IV-E) -- the primitive
// costs (pow vs chained multiply, sqrt vs the fast-inverse-sqrt forms), the
// Barnes-Hut fast-rsqrt accuracy/speed knob, and the end-to-end effect of
// disabling the pass on a JIT-compiled kernel.
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/portal.h"
#include "data/generators.h"
#include "kernels/fastmath.h"
#include "problems/barneshut.h"
#include "util/rng.h"

using namespace portal;

namespace {

std::vector<real_t> inputs() {
  Rng rng(41);
  std::vector<real_t> xs(4096);
  for (real_t& x : xs) x = rng.uniform(1e-3, 1e3);
  return xs;
}

void BM_StdPow2(benchmark::State& state) {
  const std::vector<real_t> xs = inputs();
  for (auto _ : state) {
    real_t acc = 0;
    for (real_t x : xs) acc += std::pow(x, 2.0);
    benchmark::DoNotOptimize(acc);
  }
}

void BM_ChainedMul2(benchmark::State& state) {
  const std::vector<real_t> xs = inputs();
  for (auto _ : state) {
    real_t acc = 0;
    for (real_t x : xs) acc += x * x;
    benchmark::DoNotOptimize(acc);
  }
}

void BM_StdSqrt(benchmark::State& state) {
  const std::vector<real_t> xs = inputs();
  for (auto _ : state) {
    real_t acc = 0;
    for (real_t x : xs) acc += std::sqrt(x);
    benchmark::DoNotOptimize(acc);
  }
}

void BM_FastSqrt(benchmark::State& state) {
  const std::vector<real_t> xs = inputs();
  for (auto _ : state) {
    real_t acc = 0;
    for (real_t x : xs) acc += fast_sqrt(x);
    benchmark::DoNotOptimize(acc);
  }
}

void BM_StdInvSqrt(benchmark::State& state) {
  const std::vector<real_t> xs = inputs();
  for (auto _ : state) {
    real_t acc = 0;
    for (real_t x : xs) acc += real_t(1) / std::sqrt(x);
    benchmark::DoNotOptimize(acc);
  }
}

void BM_FastInvSqrt(benchmark::State& state) {
  const std::vector<real_t> xs = inputs();
  for (auto _ : state) {
    real_t acc = 0;
    for (real_t x : xs) acc += fast_inv_sqrt(x);
    benchmark::DoNotOptimize(acc);
  }
}

// Barnes-Hut with and without the fast reciprocal sqrt (the Sec. IV-E knob
// for approximation problems).
void run_bh(benchmark::State& state, bool fast) {
  static const ParticleSet set = make_elliptical(20000, 42);
  BarnesHutOptions options;
  options.theta = 0.5;
  options.fast_rsqrt = fast;
  for (auto _ : state)
    benchmark::DoNotOptimize(bh_expert(set.positions, set.masses, options));
}

void BM_BarnesHut_ExactSqrt(benchmark::State& s) { run_bh(s, false); }
void BM_BarnesHut_FastRsqrt(benchmark::State& s) { run_bh(s, true); }

// End-to-end: JIT-compiled Mahalanobis-Gaussian KDE with the pass on/off.
void run_jit_kde(benchmark::State& state, bool strength) {
  static const Dataset data = make_gaussian_mixture(4000, 3, 3, 43);
  Storage storage(data);
  for (auto _ : state) {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, storage);
    expr.addLayer(PortalOp::SUM, storage, PortalFunc::gaussian_maha());
    PortalConfig config;
    config.engine = Engine::JIT;
    config.strength_reduction = strength;
    config.tau = 1e-3;
    expr.execute(config);
    benchmark::DoNotOptimize(expr.getOutput());
  }
}

void BM_JitKde_StrengthOn(benchmark::State& s) { run_jit_kde(s, true); }
void BM_JitKde_StrengthOff(benchmark::State& s) { run_jit_kde(s, false); }

BENCHMARK(BM_StdPow2);
BENCHMARK(BM_ChainedMul2);
BENCHMARK(BM_StdSqrt);
BENCHMARK(BM_FastSqrt);
BENCHMARK(BM_StdInvSqrt);
BENCHMARK(BM_FastInvSqrt);
BENCHMARK(BM_BarnesHut_ExactSqrt)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BarnesHut_FastRsqrt)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JitKde_StrengthOn)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JitKde_StrengthOff)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
