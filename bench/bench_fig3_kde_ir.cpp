// Reproduces paper Fig. 3: the IR of kernel density estimation with the
// Gaussian(-of-Mahalanobis) kernel through the compiler stages. KDE is an
// *approximation* problem, so Prune/Approximate emits the |K(d_min) -
// K(d_max)| <= tau condition and ComputeApprox the center-contribution x
// node-density replacement; the Mahalanobis form additionally exercises the
// Sec. IV-D numerical optimization (explicit inverse -> Cholesky + forward
// substitution).
#include "bench/bench_common.h"
#include "core/portal.h"
#include "data/generators.h"

using namespace portal;
using namespace portal::bench;

int main() {
  print_header("Fig. 3 -- KDE IR through the compiler stages");

  Storage data(make_gaussian_mixture(2000, 3, 2, 3));

  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, data);
  expr.addLayer(PortalOp::SUM, data, PortalFunc::gaussian_maha());

  PortalConfig config;
  config.dump_ir = true;
  config.tau = 1e-3;
  expr.execute(config);

  std::printf("mathematical form: forall_q sum_r K_sigma(x_q - x_r)  "
              "(Gaussian of Mahalanobis distance)\n");
  std::printf("classification: %s\n\n", category_name(expr.plan().category));
  for (const auto& [stage, dump] : expr.artifacts().stages) {
    std::printf("---------------- after %s ----------------\n%s\n",
                stage.c_str(), dump.c_str());
  }
  std::printf("chosen backend: %s\npipeline trace:\n%s\n",
              expr.artifacts().chosen_engine.c_str(),
              expr.artifacts().pipeline_trace.c_str());
  std::printf("note the numerical-optimization stage rewriting\n"
              "  (q - r)^T Sigma^-1 (q - r)  ->  forward_subst(L, q - r)\n"
              "(m^3 -> m^2/2, Sec. IV-D) and strength reduction rewriting\n"
              "pow into chained multiplies (Sec. IV-E).\n");
  return 0;
}
