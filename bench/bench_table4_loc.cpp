// Reproduces the LOC (lines of code) columns of paper Table IV: user
// productivity measured as Portal program length vs the hand-optimized expert
// implementation it replaces.
//
// Portal LOC counts the actual program text (embedded below, identical to
// what the test suite executes). Expert LOC counts non-blank, non-comment
// lines of the corresponding src/problems/ implementation -- excluding, as
// the paper does, the reusable tree / traversal / generator modules.
#include <fstream>
#include <sstream>

#include "bench/bench_common.h"

using namespace portal;
using namespace portal::bench;

#ifndef PORTAL_SOURCE_DIR
#define PORTAL_SOURCE_DIR "."
#endif

namespace {

index_t count_loc_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  index_t count = 0;
  while (std::getline(in, line)) {
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size()) continue;          // blank
    if (line.compare(i, 2, "//") == 0) continue; // comment
    ++count;
  }
  return count;
}

index_t count_loc_files(const std::vector<std::string>& files) {
  index_t total = 0;
  for (const std::string& file : files) {
    std::ifstream in(std::string(PORTAL_SOURCE_DIR) + "/" + file);
    if (!in) {
      std::fprintf(stderr, "warning: cannot open %s\n", file.c_str());
      continue;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    total += count_loc_text(buf.str());
  }
  return total;
}

struct Row {
  const char* problem;
  const char* portal_program; // the real program text
  std::vector<std::string> expert_files;
  int paper_portal_loc; // Table IV reference where stated
};

const char* kKnnProgram = R"(Storage query("query_file.csv");
Storage reference("reference_file.csv");
PortalExpr expr;
expr.addLayer(PortalOp::FORALL, query);
expr.addLayer({PortalOp::KARGMIN, k}, reference, PortalFunc::EUCLIDEAN);
expr.execute();
Storage output = expr.getOutput();)";

const char* kKdeProgram = R"(Storage data("data_file.csv");
PortalExpr expr;
expr.addLayer(PortalOp::FORALL, data);
expr.addLayer(PortalOp::SUM, data, PortalFunc::gaussian(sigma));
PortalConfig config;
config.tau = 1e-3;
expr.execute(config);
Storage density = expr.getOutput();)";

const char* kRsProgram = R"(Storage query("query_file.csv");
Storage reference("reference_file.csv");
PortalExpr expr;
expr.addLayer(PortalOp::FORALL, query);
expr.addLayer(PortalOp::UNIONARG, reference, PortalFunc::indicator(h_lo, h_hi));
expr.execute();
Storage neighbors = expr.getOutput();)";

const char* kHdProgram = R"(Storage a("a_file.csv");
Storage b("b_file.csv");
PortalExpr expr;
expr.addLayer(PortalOp::MAX, a);
expr.addLayer(PortalOp::MIN, b, PortalFunc::EUCLIDEAN);
expr.execute();
real_t directed_hausdorff = expr.getOutput().scalar();)";

const char* kMstProgram = R"(Storage data("data_file.csv");
PortalExpr expr;
expr.addLayer(PortalOp::FORALL, data);
expr.addLayer(PortalOp::ARGMIN, data, PortalFunc::EUCLIDEAN);
// native Boruvka loop: union-find + per-round execute with component labels
std::vector<index_t> comp(n);
while (components > 1) {
  for (index_t i = 0; i < n; ++i) comp[i] = find(i);
  PortalConfig config;
  config.exclude_same_label = &comp;
  expr.execute(config);
  Storage out = expr.getOutput();
  contract_winning_edges(out, &components);
})";

const char* kEmProgram = R"(Storage points("data_file.csv");
PortalExpr estep;
for (index_t iter = 0; iter < iters; ++iter) {
  for (index_t k = 0; k < K; ++k) {
    Storage center(Dataset::from_row_major(&means[k * dim], 1, dim));
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, points);
    expr.addLayer(PortalOp::FORALL, center, PortalFunc::gaussian_maha(covs[k]));
    expr.execute(config);
    collect_component_likelihoods(expr.getOutput(), k);
  }
  // native: normalize responsibilities, M-step (weights, means, covariances)
  normalize_responsibilities();
  m_step_update(weights, means, covs);
})";

} // namespace

int main() {
  print_header("Table IV (LOC columns) -- productivity: Portal vs expert code");

  const std::vector<Row> rows = {
      {"k-NN", kKnnProgram, {"src/problems/knn.cpp", "src/problems/knn.h"}, 13},
      {"KDE", kKdeProgram, {"src/problems/kde.cpp", "src/problems/kde.h"}, -1},
      {"RS", kRsProgram,
       {"src/problems/range_search.cpp", "src/problems/range_search.h"}, -1},
      {"MST", kMstProgram, {"src/problems/emst.cpp", "src/problems/emst.h"}, 12},
      {"EM", kEmProgram, {"src/problems/em.cpp", "src/problems/em.h"}, 30},
      {"HD", kHdProgram,
       {"src/problems/hausdorff.cpp", "src/problems/hausdorff.h"}, -1},
  };

  std::printf("(expert LOC excludes the reusable tree/traversal/generator "
              "modules, as the paper does)\n\n");
  print_row({"Problem", "Portal LOC", "expert LOC", "x shorter",
             "paper Portal LOC"});
  for (const Row& row : rows) {
    const index_t portal_loc = count_loc_text(row.portal_program);
    const index_t expert_loc = count_loc_files(row.expert_files);
    print_row({row.problem, std::to_string(portal_loc),
               std::to_string(expert_loc),
               fmt(static_cast<double>(expert_loc) /
                       std::max<index_t>(portal_loc, 1),
                   "%.0fx"),
               row.paper_portal_loc > 0 ? std::to_string(row.paper_portal_loc)
                                        : "-"});
  }
  std::printf("\npaper: k-NN in 13 lines; MST 12 + native loop; EM 30 + 74 "
              "native (16x fewer than expert); up to 67x shorter overall\n");
  return 0;
}
