// Ablation: the algorithmic leaf-size parameter q (paper Sec. V-B: "we also
// empirically tune the algorithmic parameter, leaf size ... to achieve
// scalability"). Small leaves prune more but pay traversal overhead; large
// leaves amortize the base-case kernels better.
#include <benchmark/benchmark.h>

#include "data/generators.h"
#include "problems/kde.h"
#include "problems/knn.h"
#include "problems/twopoint.h"

using namespace portal;

namespace {

const Dataset& data() {
  static const Dataset d = make_gaussian_mixture(12000, 3, 5, 21);
  return d;
}

void BM_Knn_LeafSize(benchmark::State& state) {
  KnnOptions options;
  options.k = 5;
  options.leaf_size = state.range(0);
  for (auto _ : state)
    benchmark::DoNotOptimize(knn_expert(data(), data(), options));
}

void BM_Kde_LeafSize(benchmark::State& state) {
  KdeOptions options;
  options.sigma = 1.0;
  options.tau = 1e-3;
  options.leaf_size = state.range(0);
  for (auto _ : state)
    benchmark::DoNotOptimize(kde_expert(data(), data(), options));
}

void BM_TwoPoint_LeafSize(benchmark::State& state) {
  TwoPointOptions options;
  options.h = 1.0;
  options.leaf_size = state.range(0);
  for (auto _ : state)
    benchmark::DoNotOptimize(twopoint_expert(data(), options));
}

BENCHMARK(BM_Knn_LeafSize)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Kde_LeafSize)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TwoPoint_LeafSize)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
