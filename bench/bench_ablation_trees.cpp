// Ablation: tree-type plug-and-play (paper Sec. II: PASCAL "abstracts the
// tree type"). The same dual-tree k-NN rules run over kd-trees and ball
// trees across dimensionalities: boxes are tight in low d, balls degrade more
// gracefully as d grows.
#include <benchmark/benchmark.h>

#include "data/generators.h"
#include "problems/knn.h"

using namespace portal;

namespace {

void run(benchmark::State& state, bool ball) {
  const index_t dim = state.range(0);
  const Dataset data = make_gaussian_mixture(8000, dim, 4, 51 + dim);
  KnnOptions options;
  options.k = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ball ? knn_expert_balltree(data, data, options)
                                  : knn_expert(data, data, options));
  }
}

void BM_Knn_KdTree(benchmark::State& s) { run(s, false); }
void BM_Knn_BallTree(benchmark::State& s) { run(s, true); }

BENCHMARK(BM_Knn_KdTree)->Arg(3)->Arg(8)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Knn_BallTree)->Arg(3)->Arg(8)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
