// Ablation: the three Portal backends (pattern / JIT / VM) plus the emitted
// brute-force program, on the same k-NN and KDE workloads. Quantifies what
// each stage of DESIGN.md Sec. 4's engine ladder buys -- the reproduction's
// stand-in for "LLVM-generated code vs interpreted IR".
#include <benchmark/benchmark.h>

#include "core/portal.h"
#include "data/generators.h"

using namespace portal;

namespace {

const Dataset& knn_data() {
  static const Dataset data = make_gaussian_mixture(8000, 3, 4, 11);
  return data;
}

const Dataset& kde_data() {
  static const Dataset data = make_gaussian_mixture(8000, 3, 4, 12);
  return data;
}

void run_knn(benchmark::State& state, Engine engine) {
  Storage data(knn_data());
  for (auto _ : state) {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, data);
    expr.addLayer({PortalOp::KARGMIN, 5}, data, PortalFunc::EUCLIDEAN);
    PortalConfig config;
    config.engine = engine;
    expr.execute(config);
    benchmark::DoNotOptimize(expr.getOutput());
  }
}

void run_kde(benchmark::State& state, Engine engine) {
  Storage data(kde_data());
  for (auto _ : state) {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, data);
    expr.addLayer(PortalOp::SUM, data, PortalFunc::gaussian(1.0));
    PortalConfig config;
    config.engine = engine;
    config.tau = 1e-3;
    expr.execute(config);
    benchmark::DoNotOptimize(expr.getOutput());
  }
}

void BM_Knn_Pattern(benchmark::State& s) { run_knn(s, Engine::Pattern); }
void BM_Knn_Jit(benchmark::State& s) { run_knn(s, Engine::JIT); }
void BM_Knn_Vm(benchmark::State& s) { run_knn(s, Engine::VM); }
void BM_Kde_Pattern(benchmark::State& s) { run_kde(s, Engine::Pattern); }
void BM_Kde_Jit(benchmark::State& s) { run_kde(s, Engine::JIT); }
void BM_Kde_Vm(benchmark::State& s) { run_kde(s, Engine::VM); }

void BM_Knn_BruteForceProgram(benchmark::State& state) {
  Storage data(knn_data());
  for (auto _ : state) {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, data);
    expr.addLayer({PortalOp::KARGMIN, 5}, data, PortalFunc::EUCLIDEAN);
    expr.setConfig({});
    benchmark::DoNotOptimize(expr.executeBruteForce());
  }
}

BENCHMARK(BM_Knn_Pattern)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Knn_Jit)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Knn_Vm)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Kde_Pattern)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Kde_Jit)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Kde_Vm)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Knn_BruteForceProgram)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
