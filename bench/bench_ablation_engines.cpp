// Ablation: the three Portal backends (pattern / JIT / VM) plus the emitted
// brute-force program, on the same k-NN and KDE workloads -- what each stage
// of DESIGN.md Sec. 4's engine ladder buys. A second section toggles the
// SIMD-batched base cases (PortalConfig::batch_base_cases) against the
// scalar per-pair path on every engine, and a third measures the leaf-tile
// distance kernels in isolation -- together quantifying the Sec. IV-F
// data-parallelism layer.
//
// Layout policy context for reading the numbers (paper Sec. III-B/IV-F):
// datasets with dim <= 4 store column-major, and sq_dists_to_range's
// dimension-outer loop over that layout already auto-vectorizes -- so at
// dim 3 the scalar path is effectively SoA and batched == scalar is the
// EXPECTED result. The SoA mirror earns its keep on row-major data
// (dim > 4), where the scalar path walks points one at a time.
//
// --json=FILE additionally writes the portal-bench-v1 trajectory snapshot
// (scripts/bench_snapshot.sh; archived per-commit by the CI bench-smoke job).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/codegen/jit.h"
#include "core/portal.h"
#include "data/generators.h"
#include "kernels/batch.h"
#include "problems/common.h"
#include "tree/soa_mirror.h"

using namespace portal;
using namespace portal::bench;

namespace {

double run_knn(const Storage& data, Engine engine, bool batch,
               index_t leaf_size = 0) {
  return time_best("bench/engines_knn", [&] {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, data);
    expr.addLayer({PortalOp::KARGMIN, 5}, data, PortalFunc::EUCLIDEAN);
    PortalConfig config;
    config.engine = engine;
    config.batch_base_cases = batch;
    if (leaf_size > 0) config.leaf_size = leaf_size;
    expr.execute(config);
  });
}

double run_kde(const Storage& data, Engine engine, bool batch,
               index_t leaf_size = 0) {
  return time_best("bench/engines_kde", [&] {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, data);
    expr.addLayer(PortalOp::SUM, data, PortalFunc::gaussian(1.0));
    PortalConfig config;
    config.engine = engine;
    config.batch_base_cases = batch;
    if (leaf_size > 0) config.leaf_size = leaf_size;
    config.tau = 1e-3;
    expr.execute(config);
  });
}

} // namespace

int main(int argc, char** argv) {
  const std::string json_path = JsonReport::extract_json_path(&argc, argv);
  JsonReport report;

  // The JIT rows are warm-cache by construction: without an artifact cache
  // every best-of-N rep pays the full system-compiler invocation, so the
  // ladder would measure the host compiler instead of the generated leaf
  // loops. Point PORTAL_JIT_CACHE_DIR at a scratch dir unless the caller
  // already configured one (the first rep compiles and publishes, later
  // reps warm-start -- the same cross-process path serve restarts take).
  std::string scratch_cache;
  if (std::getenv("PORTAL_JIT_CACHE_DIR") == nullptr) {
    char tmpl[] = "/tmp/portal_bench_jit_XXXXXX";
    if (::mkdtemp(tmpl) != nullptr) {
      scratch_cache = tmpl;
      ::setenv("PORTAL_JIT_CACHE_DIR", tmpl, 1);
    }
  }

  const index_t n = std::max<index_t>(
      500, static_cast<index_t>(8000 * bench_scale_from_env()));
  Storage knn_data(make_gaussian_mixture(n, 3, 4, 11));
  Storage kde_data(make_gaussian_mixture(n, 3, 4, 12));
  const bool jit = jit_available();

  print_header("Engine ladder -- pattern / JIT / VM / brute force (n=" +
               std::to_string(n) + ")");
  print_row({"Problem", "engine", "time(s)"});
  for (Engine engine : {Engine::Pattern, Engine::JIT, Engine::VM}) {
    if (engine == Engine::JIT && !jit) {
      print_row({"(jit)", "unavailable", "-"});
      continue;
    }
    const double knn_s = run_knn(knn_data, engine, true);
    print_row({"k-NN", engine_name(engine), fmt(knn_s)});
    report.add("ablation_engines/knn", engine_name(engine), knn_s);
    const double kde_s = run_kde(kde_data, engine, true);
    print_row({"KDE", engine_name(engine), fmt(kde_s)});
    report.add("ablation_engines/kde", engine_name(engine), kde_s);
  }
  {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, knn_data);
    expr.addLayer({PortalOp::KARGMIN, 5}, knn_data, PortalFunc::EUCLIDEAN);
    expr.setConfig({});
    const double brute_s =
        time_once("bench/engines_brute", [&] { expr.executeBruteForce(); });
    print_row({"k-NN", "brute-force", fmt(brute_s)});
    report.add("ablation_engines/knn", "brute_force", brute_s);
  }

  // End-to-end toggle at dim 3 (col-major: scalar path already vectorized,
  // parity expected) and dim 10 (row-major: the mirror supplies the lane
  // layout the scalar path lacks). Leaf 64 at dim 10 keeps base cases large
  // enough for the tiles to matter.
  print_header("Batched vs scalar base cases (SqEuclidean k-NN / KDE)");
  print_row({"Problem", "dim", "engine", "scalar(s)", "batched(s)", "speedup"});
  for (const index_t dim : {index_t(3), index_t(10)}) {
    const Storage data(make_gaussian_mixture(n, dim, 4, 11));
    const index_t leaf = dim > kColMajorMaxDim ? 64 : 0;
    const std::string tag = "_d" + std::to_string(dim);
    for (Engine engine : {Engine::Pattern, Engine::VM}) {
      const double knn_scalar = run_knn(data, engine, false, leaf);
      const double knn_batched = run_knn(data, engine, true, leaf);
      print_row({"k-NN", std::to_string(dim), engine_name(engine),
                 fmt(knn_scalar), fmt(knn_batched),
                 fmt(knn_scalar / knn_batched, "%.2fx")});
      report.add("ablation_engines/knn_" + std::string(engine_name(engine)) + tag,
                 "scalar", knn_scalar);
      report.add("ablation_engines/knn_" + std::string(engine_name(engine)) + tag,
                 "batched", knn_batched);
      const double kde_scalar = run_kde(data, engine, false, leaf);
      const double kde_batched = run_kde(data, engine, true, leaf);
      print_row({"KDE", std::to_string(dim), engine_name(engine),
                 fmt(kde_scalar), fmt(kde_batched),
                 fmt(kde_scalar / kde_batched, "%.2fx")});
      report.add("ablation_engines/kde_" + std::string(engine_name(engine)) + tag,
                 "scalar", kde_scalar);
      report.add("ablation_engines/kde_" + std::string(engine_name(engine)) + tag,
                 "batched", kde_batched);
    }
  }

  // The tile kernels in isolation: one query point against every leaf-sized
  // tile of a 4096-point set, scalar row walk vs SoA lanes. This is the pure
  // data-parallel speedup before traversal costs (bounds, heap updates, exp)
  // dilute it.
  print_header("Leaf-tile SqEuclidean throughput -- scalar rows vs SoA lanes");
  print_row({"dim", "layout", "tile", "scalar(s)", "batched(s)", "speedup"});
  const int sweeps = std::max(
      1, static_cast<int>(400 * bench_scale_from_env()));
  for (const index_t dim : {index_t(3), index_t(10)}) {
    const Dataset pts = make_gaussian_mixture(4096, dim, 4, 7);
    SoaMirror mirror;
    mirror.build(pts, false);
    std::vector<real_t> qpt(dim, real_t(0.25));
    std::vector<real_t> dists(pts.size());
    const char* layout = pts.layout() == Layout::ColMajor ? "col" : "row";
    for (const index_t tile : {index_t(16), index_t(64)}) {
      const double scalar_s = time_best("bench/tile_scalar", [&] {
        for (int s = 0; s < sweeps; ++s)
          for (index_t b = 0; b + tile <= pts.size(); b += tile)
            sq_dists_to_range(pts, b, b + tile, qpt.data(), dists.data());
      }, 5);
      const double batched_s = time_best("bench/tile_batch", [&] {
        for (int s = 0; s < sweeps; ++s)
          for (index_t b = 0; b + tile <= pts.size(); b += tile)
            batch::sq_dists(mirror.tile(b, tile), qpt.data(), dists.data());
      }, 5);
      print_row({std::to_string(dim), layout, std::to_string(tile),
                 fmt(scalar_s), fmt(batched_s),
                 fmt(scalar_s / batched_s, "%.2fx")});
      const std::string name = "ablation_engines/tile_sqdist_d" +
                               std::to_string(dim) + "_t" + std::to_string(tile);
      report.add(name, "scalar", scalar_s);
      report.add(name, "batched", batched_s);
    }
  }

  std::printf("\nThe ladder isolates codegen quality (pattern > JIT > VM on\n"
              "the same traversal); the batched sections isolate the SIMD\n"
              "tile base cases, which produce bitwise-identical results to\n"
              "the scalar path (see tests/test_codegen_fuzz.cpp). Dim-3\n"
              "parity is the layout policy working: col-major scalar loops\n"
              "already vectorize, so the mirror pays off on row-major data.\n");

  if (!scratch_cache.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(scratch_cache, ec);
  }

  if (!json_path.empty() && !report.write(json_path)) return 1;
  return 0;
}
