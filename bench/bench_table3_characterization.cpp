// Reproduces paper Table III: the nine N-body problems, their operators,
// kernel functions, and the prune/approximation condition the generator
// derives for each. Unlike the paper's hand-written table, every row below is
// *generated* by running the actual Portal front end + prune/approximate
// generator on the corresponding Portal program.
#include <functional>

#include "bench/bench_common.h"
#include "core/analysis.h"
#include "core/portal.h"
#include "data/generators.h"

using namespace portal;
using namespace portal::bench;

namespace {

void characterize(const std::string& name, const std::vector<LayerSpec>& layers,
                  const PortalConfig& config, const std::string& note = "") {
  const ProblemPlan plan = analyze_layers(layers, config);
  std::printf("%-22s %s%s\n", name.c_str(), plan.description.c_str(),
              note.empty() ? "" : ("  [" + note + "]").c_str());
}

LayerSpec layer(OpSpec op, const Storage& s) {
  LayerSpec l;
  l.op = op;
  l.storage = s;
  return l;
}

LayerSpec layer(OpSpec op, const Storage& s, const PortalFunc& f) {
  LayerSpec l = layer(op, s);
  l.func = f;
  return l;
}

} // namespace

int main() {
  print_header("Table III -- problem characterization via the prune generator");

  Storage pts(make_gaussian_mixture(256, 3, 2, 1));
  Storage pts2(make_gaussian_mixture(256, 3, 2, 2));
  ParticleSet particles = make_elliptical(256, 3);
  Storage bodies(particles.positions);
  bodies.set_weights(particles.masses);
  Storage classes(make_uniform(4, 3, 4, 0, 10));
  PortalConfig config;

  characterize("k-Nearest Neighbors",
               {layer(PortalOp::FORALL, pts),
                layer({PortalOp::KARGMIN, 5}, pts2, PortalFunc::EUCLIDEAN)},
               config);
  characterize("Range Search",
               {layer(PortalOp::FORALL, pts),
                layer(PortalOp::UNIONARG, pts2, PortalFunc::indicator(0.5, 2))},
               config);
  characterize("Hausdorff Distance",
               {layer(PortalOp::MAX, pts),
                layer(PortalOp::MIN, pts2, PortalFunc::EUCLIDEAN)},
               config);
  characterize("Kernel Density Est.",
               {layer(PortalOp::FORALL, pts),
                layer(PortalOp::SUM, pts, PortalFunc::gaussian(1.0))},
               config);
  {
    // MST: the argmin layer under the exclude-same-label constraint.
    std::vector<index_t> comp(pts.size());
    for (index_t i = 0; i < pts.size(); ++i) comp[i] = i % 7;
    PortalConfig mst = config;
    mst.exclude_same_label = &comp;
    characterize("Minimum Spanning Tree*",
                 {layer(PortalOp::FORALL, pts),
                  layer(PortalOp::ARGMIN, pts, PortalFunc::EUCLIDEAN)},
                 mst, "plus fully-connected prune from component labels");
  }
  characterize("E-step in EM*",
               {layer(PortalOp::FORALL, pts),
                layer(PortalOp::FORALL, classes, PortalFunc::gaussian_maha())},
               config, "responsibilities normalized in native code");
  characterize("Log-likelihood in EM*",
               {layer(PortalOp::SUM, pts),
                layer(PortalOp::SUM, classes, PortalFunc::gaussian_maha())},
               config, "log applied in native code");
  {
    Var q, r;
    const Expr d = sqrt(pow(Expr(q) - Expr(r), 2));
    std::vector<LayerSpec> layers(2);
    layers[0] = layer(PortalOp::SUM, pts);
    layers[0].var_id = q.id();
    layers[1] = layer(PortalOp::SUM, pts);
    layers[1].var_id = r.id();
    layers[1].custom_kernel = d < Expr(1.5);
    characterize("2-Point Correlation", layers, config);
  }
  characterize("Naive Bayes Classifier",
               {layer(PortalOp::FORALL, pts),
                layer(PortalOp::ARGMAX, classes, PortalFunc::gaussian_maha())},
               config, "per-class covariances via external path in practice");
  characterize("Barnes-Hut",
               {layer(PortalOp::FORALL, bodies),
                layer(PortalOp::SUM, bodies, PortalFunc::gravity(1, 1e-3))},
               config);

  std::printf(
      "\n* iterative problems: the listed layer pair is the per-iteration\n"
      "  N-body sub-problem; the surrounding loop is native C++ (paper\n"
      "  Table IV footnote).\n");
  return 0;
}
