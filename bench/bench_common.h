// Portal bench harness -- shared helpers for the per-table/figure binaries.
//
// Every binary prints a self-contained report: the paper's reference numbers
// (where applicable), the measured numbers, and the shape comparison. Sizes
// scale with the PORTAL_BENCH_SCALE environment variable (default 1 =
// laptop-scale stand-ins for the paper's datasets; see DESIGN.md Sec. 2).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "data/table2.h"
#include "obs/trace.h"
#include "util/threading.h"
#include "util/timer.h"

namespace portal::bench {

inline const char* compiler_id() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

/// Machine-readable bench trajectory (--json=FILE): rows accumulate during a
/// run and serialize as the portal-bench-v1 document
///
///   { "schema": "portal-bench-v1",
///     "machine": { "threads": T, "bench_scale": S, "compiler": "...",
///                  "real_t_bytes": B },
///     "benches": [ { "bench": "...", "metric": "...", "value": V,
///                    "unit": "s" }, ... ] }
///
/// so CI can archive one snapshot per commit and plot trajectories across
/// history (scripts/bench_snapshot.sh drives this).
class JsonReport {
 public:
  /// Pop --json=FILE out of argv (benches may hand the rest to other
  /// parsers). Returns the path, or "" when the flag is absent.
  static std::string extract_json_path(int* argc, char** argv) {
    for (int i = 1; i < *argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--json=", 0) == 0) {
        for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
        --*argc;
        return arg.substr(7);
      }
    }
    return {};
  }

  void add(const std::string& bench, const std::string& metric, double value,
           const std::string& unit = "s") {
    rows_.push_back({bench, metric, value, unit});
  }

  bool empty() const { return rows_.empty(); }

  /// Serialize; returns false (with a stderr note) on I/O failure so a bench
  /// run never dies on an unwritable path.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"schema\": \"portal-bench-v1\",\n");
    std::fprintf(f,
                 "  \"machine\": {\"threads\": %d, \"bench_scale\": %.6g, "
                 "\"compiler\": \"%s\", \"real_t_bytes\": %d},\n",
                 num_threads(), bench_scale_from_env(), compiler_id(),
                 static_cast<int>(sizeof(real_t)));
    std::fprintf(f, "  \"benches\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      std::fprintf(f,
                   "    {\"bench\": \"%s\", \"metric\": \"%s\", "
                   "\"value\": %.17g, \"unit\": \"%s\"}%s\n",
                   row.bench.c_str(), row.metric.c_str(), row.value,
                   row.unit.c_str(), i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote bench trajectory to %s\n", path.c_str());
    return true;
  }

 private:
  struct Row {
    std::string bench;
    std::string metric;
    double value;
    std::string unit;
  };
  std::vector<Row> rows_;
};

/// Wall-clock one invocation (the table benches measure full problem runs,
/// which are long enough that single-shot timing is stable).
inline double time_once(const std::function<void()>& fn) {
  Timer timer;
  fn();
  return timer.elapsed_s();
}

/// Labeled flavor: the measured span also lands in the session trace (under
/// "bench/<label>") when tracing is on, so a PORTAL_TRACE run of a bench
/// yields a Chrome timeline of its measured sections for free.
inline double time_once(const char* label, const std::function<void()>& fn) {
  obs::ScopedTimer scope(obs::enabled() ? obs::intern_timer(label)
                                        : obs::MetricId(0));
  Timer timer;
  fn();
  const double elapsed = timer.elapsed_s();
  scope.stop();
  return elapsed;
}

/// Best of `reps` runs (used for the shorter ablation measurements).
inline double time_best(const std::function<void()>& fn, int reps = 3) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const double t = time_once(fn);
    if (t < best) best = t;
  }
  return best;
}

/// Labeled best-of: every rep is traced; the returned number is still the
/// minimum wall-clock.
inline double time_best(const char* label, const std::function<void()>& fn,
                        int reps = 3) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const double t = time_once(label, fn);
    if (t < best) best = t;
  }
  return best;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(PORTAL_BENCH_SCALE=%.2f; see EXPERIMENTS.md for interpretation)\n",
              bench_scale_from_env());
  std::printf("================================================================\n");
}

/// Simple fixed-width row printer.
inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string fmt(double value, const char* format = "%.3f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

} // namespace portal::bench
