// Portal bench harness -- shared helpers for the per-table/figure binaries.
//
// Every binary prints a self-contained report: the paper's reference numbers
// (where applicable), the measured numbers, and the shape comparison. Sizes
// scale with the PORTAL_BENCH_SCALE environment variable (default 1 =
// laptop-scale stand-ins for the paper's datasets; see DESIGN.md Sec. 2).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "data/table2.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace portal::bench {

/// Wall-clock one invocation (the table benches measure full problem runs,
/// which are long enough that single-shot timing is stable).
inline double time_once(const std::function<void()>& fn) {
  Timer timer;
  fn();
  return timer.elapsed_s();
}

/// Labeled flavor: the measured span also lands in the session trace (under
/// "bench/<label>") when tracing is on, so a PORTAL_TRACE run of a bench
/// yields a Chrome timeline of its measured sections for free.
inline double time_once(const char* label, const std::function<void()>& fn) {
  obs::ScopedTimer scope(obs::enabled() ? obs::intern_timer(label)
                                        : obs::MetricId(0));
  Timer timer;
  fn();
  const double elapsed = timer.elapsed_s();
  scope.stop();
  return elapsed;
}

/// Best of `reps` runs (used for the shorter ablation measurements).
inline double time_best(const std::function<void()>& fn, int reps = 3) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const double t = time_once(fn);
    if (t < best) best = t;
  }
  return best;
}

/// Labeled best-of: every rep is traced; the returned number is still the
/// minimum wall-clock.
inline double time_best(const char* label, const std::function<void()>& fn,
                        int reps = 3) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const double t = time_once(label, fn);
    if (t < best) best = t;
  }
  return best;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(PORTAL_BENCH_SCALE=%.2f; see EXPERIMENTS.md for interpretation)\n",
              bench_scale_from_env());
  std::printf("================================================================\n");
}

/// Simple fixed-width row printer.
inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string fmt(double value, const char* format = "%.3f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

} // namespace portal::bench
