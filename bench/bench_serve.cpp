// Serving-runtime benchmark: a closed-loop client fleet drives PortalService
// with a repeat-query workload (the plan cache's sweet spot) and reports
// sustained QPS, latency quantiles, and the cache hit rate. The run is split
// into a warmup phase (compiles the mix's plans, fills caches, settles the
// workers) and a measured phase; only the measured phase feeds the report.
//
// Acceptance gate (ISSUE PR-5): after warmup the plan-cache hit rate over the
// measured phase must exceed 99% -- every request re-resolves its chain
// through the cache the way a serving frontend would, so a sub-99% rate
// means the descriptor fast path broke. The process exits non-zero on that
// regression so CI catches it.
//
// JSON rows (portal-bench-v1, --json=FILE): per-mix QPS, p50/p95/p99/mean
// latency, hit rate, and mean batch size.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "data/generators.h"
#include "serve/engine.h"
#include "serve/plan_cache.h"
#include "serve/service.h"
#include "tree/snapshot.h"

using namespace portal;
using namespace portal::bench;

namespace {

struct MixEntry {
  const char* name;
  LayerSpec inner;
};

struct RunResult {
  double qps = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0, mean_ms = 0;
  double hit_rate = 0;
  double mean_batch = 0;
  std::uint64_t requests = 0;
  std::uint64_t failed = 0;
};

RunResult drive(serve::PortalService& service, const std::vector<MixEntry>& mix,
                const Dataset& reference, int clients, double seconds) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ok{0}, failed{0};
  std::vector<std::thread> fleet;
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c)
    fleet.emplace_back([&, c] {
      std::uint64_t state = 0x2545f4914f6cdd1dull * (c + 1) + 11;
      const auto next = [&state] {
        state ^= state << 13; state ^= state >> 7; state ^= state << 17;
        return state;
      };
      std::vector<real_t> point(static_cast<std::size_t>(reference.dim()));
      while (!stop.load(std::memory_order_acquire)) {
        const serve::PlanHandle plan =
            service.prepare(mix[next() % mix.size()].inner);
        const index_t base = static_cast<index_t>(
            next() % static_cast<std::uint64_t>(reference.size()));
        for (index_t d = 0; d < reference.dim(); ++d)
          point[static_cast<std::size_t>(d)] =
              reference.coord(base, d) +
              static_cast<real_t>(next() % 1000) * 1e-4;
        const serve::Response resp = service.submit(plan, point).get();
        (resp.status == serve::Status::Ok ? ok : failed)
            .fetch_add(1, std::memory_order_relaxed);
      }
    });
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long long>(seconds * 1e3)));
  stop.store(true, std::memory_order_release);
  for (auto& client : fleet) client.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const serve::ServiceStats stats = service.stats();
  const obs::LatencyHistogram::Snapshot lat = service.latency();
  RunResult result;
  result.requests = ok.load();
  result.failed = failed.load();
  result.qps = static_cast<double>(ok.load()) / elapsed;
  result.p50_ms = lat.quantile(0.50) * 1e3;
  result.p95_ms = lat.quantile(0.95) * 1e3;
  result.p99_ms = lat.quantile(0.99) * 1e3;
  result.mean_ms = lat.mean_seconds() * 1e3;
  result.hit_rate = stats.plan_cache.hit_rate();
  result.mean_batch = stats.mean_batch();
  return result;
}

} // namespace

int main(int argc, char** argv) {
  const std::string json_path = JsonReport::extract_json_path(&argc, argv);
  JsonReport json;
  print_header("Serving runtime -- sustained repeat-query workload");

  const double scale = bench_scale_from_env();
  const index_t n = std::max<index_t>(2000, static_cast<index_t>(100000 * scale));
  const int clients = 8;
  const double warmup_s = std::min(1.0, 0.2 + scale);
  const double measure_s = std::min(4.0, 0.5 + 3 * scale);
  const Dataset reference = make_gaussian_mixture(n, 3, 5, 20260806);

  std::vector<MixEntry> mixes;
  {
    MixEntry knn{"knn", {}};
    knn.inner.op = {PortalOp::KARGMIN, 5};
    knn.inner.func = PortalFunc::EUCLIDEAN;
    MixEntry kde{"kde", {}};
    kde.inner.op = PortalOp::SUM;
    kde.inner.func = PortalFunc::gaussian(0.5);
    MixEntry rs{"rs", {}};
    rs.inner.op = PortalOp::UNION;
    rs.inner.func = PortalFunc::indicator(0, 0.5);
    mixes.push_back(knn);
    mixes.push_back(kde);
    mixes.push_back(rs);
  }

  bool gate_ok = true;
  print_row({"mix", "QPS", "p50 ms", "p95 ms", "p99 ms", "hit rate", "batch"});
  for (std::size_t subset : {std::size_t{1}, mixes.size()}) {
    const std::vector<MixEntry> mix(mixes.begin(),
                                    mixes.begin() +
                                        static_cast<std::ptrdiff_t>(subset));
    const std::string base_label = subset == 1 ? "knn-only" : "knn+kde+rs";
    // Each mix runs twice: the recursive per-request baseline (one
    // run-to-completion descent per request, the pre-cursor serving path)
    // and the interleaved resumable-descent mode, so BENCH_serve.json
    // carries the latency-hiding delta side by side.
    for (const bool interleave : {false, true}) {
    const std::string label =
        base_label + (interleave ? "-interleaved" : "");
    serve::ServiceOptions options;
    options.workers = 4;
    options.queue_capacity = 4096;
    options.block_on_full = true;
    options.interleave = interleave;
    serve::PortalService service(options);
    service.publish(reference);

    // Warmup: compile every plan in the mix and let the workers settle.
    // Not measured, not part of the hit-rate gate.
    drive(service, mix, reference, clients, warmup_s);
    // stats() carries over; measure the deltas of the sustained phase.
    const serve::ServiceStats before = service.stats();
    const RunResult run = drive(service, mix, reference, clients, measure_s);
    const serve::ServiceStats after = service.stats();
    const double measured_hits = static_cast<double>(after.plan_cache.hits -
                                                     before.plan_cache.hits);
    const double measured_misses = static_cast<double>(
        after.plan_cache.misses - before.plan_cache.misses);
    const double hit_rate =
        measured_hits / std::max(1.0, measured_hits + measured_misses);

    print_row({label, fmt(run.qps, "%.0f"), fmt(run.p50_ms), fmt(run.p95_ms),
               fmt(run.p99_ms), fmt(hit_rate * 100, "%.2f%%"),
               fmt(run.mean_batch, "%.2f")});
    if (run.failed != 0) {
      std::printf("  !! %llu requests failed\n",
                  static_cast<unsigned long long>(run.failed));
      gate_ok = false;
    }
    if (hit_rate <= 0.99) {
      std::printf("  !! plan-cache hit rate %.4f <= 0.99 after warmup\n",
                  hit_rate);
      gate_ok = false;
    }

    json.add("serve/" + label, "qps", run.qps, "1/s");
    json.add("serve/" + label, "latency_p50", run.p50_ms * 1e-3);
    json.add("serve/" + label, "latency_p95", run.p95_ms * 1e-3);
    json.add("serve/" + label, "latency_p99", run.p99_ms * 1e-3);
    json.add("serve/" + label, "latency_mean", run.mean_ms * 1e-3);
    json.add("serve/" + label, "plan_cache_hit_rate", hit_rate, "ratio");
    json.add("serve/" + label, "mean_batch", run.mean_batch, "requests");
    service.stop();
    }
  }

  // --- live ingestion: sustained writes against the delta tree while a
  // --- reader fleet keeps querying (ISSUE PR-8). Writers self-pace through
  // --- ingest admission control (a full delta blocks the insert until the
  // --- background merger frees it), so writes/s is the *sustainable* rate,
  // --- merges included -- not a burst into an unbounded buffer. The gate:
  // --- no read failures and no rejected writes; read p99 under write load
  // --- lands in the JSON next to the read-only p99 above.
  {
    print_header("Serving runtime -- live ingestion under concurrent reads");
    serve::ServiceOptions options;
    options.workers = 4;
    options.queue_capacity = 4096;
    options.block_on_full = true;
    options.delta_capacity = std::max<index_t>(4096, n / 8);
    options.merge_threshold = options.delta_capacity / 4;
    options.ingest_wait_ms = 2000;
    serve::PortalService service(options);
    service.publish(reference);

    std::atomic<bool> wstop{false};
    std::atomic<std::uint64_t> writes{0}, removes{0}, write_rejects{0};
    std::vector<std::thread> writers;
    const auto wt0 = std::chrono::steady_clock::now();
    for (int w = 0; w < 2; ++w)
      writers.emplace_back([&, w] {
        std::uint64_t state = 0x9e3779b97f4a7c15ull * (w + 1) + 7;
        const auto next = [&state] {
          state ^= state << 13; state ^= state >> 7; state ^= state << 17;
          return state;
        };
        std::vector<real_t> point(static_cast<std::size_t>(reference.dim()));
        while (!wstop.load(std::memory_order_acquire)) {
          const index_t base = static_cast<index_t>(
              next() % static_cast<std::uint64_t>(reference.size()));
          for (index_t d = 0; d < reference.dim(); ++d)
            point[static_cast<std::size_t>(d)] =
                reference.coord(base, d) +
                static_cast<real_t>(next() % 100000) * 1e-7;
          if (service.insert(point).status == serve::IngestStatus::Ok) {
            writes.fetch_add(1, std::memory_order_relaxed);
            // Every fourth point is taken back out: merges see slot kills
            // and re-homed tombstones, and the live set grows slowly enough
            // that merge cost stays representative across the run.
            if (next() % 4 == 0 &&
                service.remove(point).status == serve::IngestStatus::Ok)
              removes.fetch_add(1, std::memory_order_relaxed);
          } else {
            write_rejects.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });

    const std::vector<MixEntry> mix(mixes.begin(), mixes.begin() + 1);
    drive(service, mix, reference, clients, warmup_s);
    const RunResult run = drive(service, mix, reference, clients, measure_s);
    wstop.store(true, std::memory_order_release);
    for (auto& writer : writers) writer.join();
    const double welapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wt0)
            .count();
    const serve::ServiceStats stats = service.stats();
    service.stop();

    const double writes_per_s =
        static_cast<double>(writes.load() + removes.load()) / welapsed;
    print_row({"metric", "writes/s", "read QPS", "read p99 ms", "merges",
               "live pts"});
    print_row({"ingest", fmt(writes_per_s, "%.0f"), fmt(run.qps, "%.0f"),
               fmt(run.p99_ms),
               fmt(static_cast<double>(stats.ingest.merges), "%.0f"),
               fmt(static_cast<double>(stats.ingest.delta_count +
                                       stats.ingest.merged_points),
                   "%.0f")});
    if (run.failed != 0 || write_rejects.load() != 0) {
      std::printf("  !! %llu reads failed, %llu writes rejected under load\n",
                  static_cast<unsigned long long>(run.failed),
                  static_cast<unsigned long long>(write_rejects.load()));
      gate_ok = false;
    }
    json.add("serve/ingest", "writes_per_s", writes_per_s, "1/s");
    json.add("serve/ingest", "read_qps", run.qps, "1/s");
    json.add("serve/ingest", "read_latency_p50", run.p50_ms * 1e-3);
    json.add("serve/ingest", "read_latency_p99", run.p99_ms * 1e-3);
    json.add("serve/ingest", "merges",
             static_cast<double>(stats.ingest.merges), "count");
    json.add("serve/ingest", "merged_points",
             static_cast<double>(stats.ingest.merged_points), "count");
  }

  // --- approximate high-dimensional serving (ISSUE PR-10): the nn-descent
  // --- graph index (src/index, DESIGN.md Sec. 18) vs the exact tree descent
  // --- at d = 32, measured at the engine level so recall and per-query
  // --- latency are clean of scheduler noise. Both paths answer through the
  // --- SAME compiled plan -- approx/beam-width are runtime knobs. Gates:
  // --- recall@10 at the default beam width (64) must hold 0.9 at any scale;
  // --- the latency win over the exact path is gated only at full scale
  // --- (a smoke-sized dataset fits in a handful of leaves, where the exact
  // --- descent is already near-free and the graph has nothing to skip).
  {
    print_header("Serving runtime -- approximate high-dimensional k-NN");
    const index_t ann_n =
        std::max<index_t>(4000, static_cast<index_t>(60000 * scale));
    const index_t ann_dim = 32;
    const index_t ann_k = 10;
    const Dataset highd = make_gaussian_mixture(ann_n, ann_dim, 8, 20260807);

    SnapshotOptions sopts;
    sopts.build_graph = true;
    const auto snapshot = TreeSnapshot::build(
        std::make_shared<const Dataset>(highd), 1, sopts);
    const double graph_build_s = snapshot->graph()->stats().build_seconds;

    LayerSpec knn;
    knn.op = OpSpec(PortalOp::KARGMIN, ann_k);
    knn.func = PortalFunc::EUCLIDEAN;
    serve::PlanCache ann_cache;
    const serve::PlanHandle plan =
        ann_cache.get_or_compile(knn, highd, PortalConfig{});

    const int nq = 200;
    std::uint64_t state = 0x2545f4914f6cdd1dull;
    const auto next = [&state] {
      state ^= state << 13; state ^= state >> 7; state ^= state << 17;
      return state;
    };
    std::vector<std::vector<real_t>> queries;
    for (int q = 0; q < nq; ++q) {
      std::vector<real_t> pt(static_cast<std::size_t>(ann_dim));
      const index_t base = static_cast<index_t>(
          next() % static_cast<std::uint64_t>(ann_n));
      for (index_t d = 0; d < ann_dim; ++d)
        pt[static_cast<std::size_t>(d)] =
            highd.coord(base, d) + static_cast<real_t>(next() % 1000) * 1e-4;
      queries.push_back(std::move(pt));
    }

    serve::Workspace ws;
    std::vector<std::vector<index_t>> exact_ids;
    auto t0 = std::chrono::steady_clock::now();
    for (const std::vector<real_t>& pt : queries) {
      const serve::QueryResult r =
          serve::run_query(*plan, *snapshot, pt.data(), {}, ws);
      exact_ids.push_back(r.ids);
    }
    const double exact_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double exact_qps = nq / exact_s;

    print_row({"path", "QPS", "mean ms", "recall@10"});
    print_row({"exact-tree", fmt(exact_qps, "%.0f"),
               fmt(exact_s * 1e3 / nq, "%.4f"), "1.000"});
    json.add("serve/ann", "points", static_cast<double>(ann_n), "count");
    json.add("serve/ann", "dim", static_cast<double>(ann_dim), "count");
    json.add("serve/ann", "graph_build_seconds", graph_build_s);
    json.add("serve/ann", "exact_qps", exact_qps, "1/s");
    json.add("serve/ann", "exact_latency_mean", exact_s / nq);

    double default_recall = 0;
    double best_approx_qps = 0;
    for (const index_t beam : {index_t{16}, index_t{32}, index_t{64}}) {
      serve::EngineOptions aopt;
      aopt.approx = true;
      aopt.beam_width = beam;
      std::uint64_t hits = 0;
      t0 = std::chrono::steady_clock::now();
      for (int q = 0; q < nq; ++q) {
        const serve::QueryResult r = serve::run_query(
            *plan, *snapshot, queries[static_cast<std::size_t>(q)].data(),
            aopt, ws);
        for (const index_t id : r.ids)
          if (std::find(exact_ids[static_cast<std::size_t>(q)].begin(),
                        exact_ids[static_cast<std::size_t>(q)].end(),
                        id) != exact_ids[static_cast<std::size_t>(q)].end())
            ++hits;
      }
      const double approx_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const double qps = nq / approx_s;
      const double recall = static_cast<double>(hits) /
                            static_cast<double>(nq * ann_k);
      best_approx_qps = std::max(best_approx_qps, qps);
      if (beam == 64) default_recall = recall;
      const std::string suffix = "_beam" + std::to_string(beam);
      print_row({"graph-beam" + std::to_string(beam), fmt(qps, "%.0f"),
                 fmt(approx_s * 1e3 / nq, "%.4f"), fmt(recall, "%.3f")});
      json.add("serve/ann", "qps" + suffix, qps, "1/s");
      json.add("serve/ann", "latency_mean" + suffix, approx_s / nq);
      json.add("serve/ann", "recall_at_10" + suffix, recall, "ratio");
    }
    json.add("serve/ann", "recall_at_10", default_recall, "ratio");
    json.add("serve/ann", "graph_speedup_vs_exact",
             best_approx_qps / exact_qps, "ratio");
    std::printf("graph build %.3fs | best graph path %.2fx exact QPS\n",
                graph_build_s, best_approx_qps / exact_qps);

    if (default_recall < 0.9) {
      std::printf("  !! recall@10 %.4f < 0.9 at default beam width 64\n",
                  default_recall);
      gate_ok = false;
    }
    // Latency-win gate, full scale only (see the comment block above).
    if (ann_n >= 20000 && best_approx_qps <= exact_qps) {
      std::printf("  !! graph path (%.0f QPS) not beating exact tree descent "
                  "(%.0f QPS) at n=%lld d=%lld\n",
                  best_approx_qps, exact_qps, static_cast<long long>(ann_n),
                  static_cast<long long>(ann_dim));
      gate_ok = false;
    }
  }

  if (!json_path.empty()) json.write(json_path);
  if (!gate_ok) {
    std::printf("\nFAIL: serving acceptance gate\n");
    return 1;
  }
  std::printf("\nOK: hit rate > 99%% after warmup on every mix\n");
  return 0;
}
