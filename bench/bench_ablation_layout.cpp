// Ablation: the data-layout policy (paper Sec. III-B / IV-F). Low-dimensional
// data should win with the column-major layout (vectorization across points
// in the middle base-case loop); high-dimensional data with row-major
// (vectorization across dimensions in the innermost loop). This bench runs
// the same k-NN workload under both layouts at d = 3 and d = 32.
#include <benchmark/benchmark.h>

#include "data/generators.h"
#include "problems/knn.h"

using namespace portal;

namespace {

Dataset laid_out(index_t dim, Layout layout) {
  return make_gaussian_mixture(10000, dim, 4, 31 + dim).with_layout(layout);
}

void run(benchmark::State& state, index_t dim, Layout layout) {
  const Dataset data = laid_out(dim, layout);
  KnnOptions options;
  options.k = 3;
  for (auto _ : state)
    benchmark::DoNotOptimize(knn_expert(data, data, options));
}

void BM_LowDim_ColMajor(benchmark::State& s) { run(s, 3, Layout::ColMajor); }
void BM_LowDim_RowMajor(benchmark::State& s) { run(s, 3, Layout::RowMajor); }
void BM_HighDim_ColMajor(benchmark::State& s) { run(s, 32, Layout::ColMajor); }
void BM_HighDim_RowMajor(benchmark::State& s) { run(s, 32, Layout::RowMajor); }

BENCHMARK(BM_LowDim_ColMajor)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LowDim_RowMajor)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HighDim_ColMajor)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HighDim_RowMajor)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
