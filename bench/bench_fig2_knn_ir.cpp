// Reproduces paper Fig. 2: the IR of the nearest-neighbor problem through the
// compiler stages -- lowering + storage injection, flattening, and strength
// reduction -- for the three traversal functions (BaseCase,
// Prune/Approximate, ComputeApprox). Nearest neighbor is a *pruning* problem,
// so ComputeApprox returns 0 and no numerical optimization applies (no
// Mahalanobis distance), exactly as the figure notes.
#include "bench/bench_common.h"
#include "core/portal.h"
#include "data/generators.h"

using namespace portal;
using namespace portal::bench;

int main() {
  print_header("Fig. 2 -- nearest-neighbor IR through the compiler stages");

  Storage query(make_gaussian_mixture(1000, 3, 2, 1));
  Storage reference(make_gaussian_mixture(5000, 3, 2, 2));

  // The code-3 program from the figure.
  Var q("q"), r("r");
  Expr EuclidDist = sqrt(pow(Expr(q) - Expr(r), 2));
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, q, query);
  expr.addLayer(PortalOp::ARGMIN, r, reference, EuclidDist);

  PortalConfig config;
  config.dump_ir = true;
  expr.execute(config);

  std::printf("mathematical form: forall_q argmin_r ||x_q - x_r||\n");
  std::printf("classification: %s\n\n", category_name(expr.plan().category));
  for (const auto& [stage, dump] : expr.artifacts().stages) {
    std::printf("---------------- after %s ----------------\n%s\n",
                stage.c_str(), dump.c_str());
  }
  std::printf("chosen backend: %s\npipeline trace:\n%s\n",
              expr.artifacts().chosen_engine.c_str(),
              expr.artifacts().pipeline_trace.c_str());
  return 0;
}
