// The asymptotic claim behind the whole paper (Sec. I-II): tree-based
// algorithms turn O(N^2) N-body evaluation into O(N log N) / O(N). This bench
// sweeps N for k-NN, KDE, and 2-point correlation, times Portal's tree
// algorithm against the compiler's own brute-force program, and reports the
// empirical growth exponents (log-log slope between consecutive sizes).
#include <cmath>

#include "bench/bench_common.h"
#include "core/portal.h"
#include "data/generators.h"

using namespace portal;
using namespace portal::bench;

namespace {

struct Series {
  std::vector<index_t> sizes;
  std::vector<double> tree_s;
  std::vector<double> brute_s;
};

void report(const std::string& name, const Series& s) {
  std::printf("\n-- %s --\n", name.c_str());
  print_row({"N", "tree(s)", "brute(s)", "speedup", "tree slope", "brute slope"});
  for (std::size_t i = 0; i < s.sizes.size(); ++i) {
    std::string tree_slope = "-", brute_slope = "-";
    if (i > 0) {
      const double dn = std::log(double(s.sizes[i]) / s.sizes[i - 1]);
      tree_slope = fmt(std::log(s.tree_s[i] / s.tree_s[i - 1]) / dn, "%.2f");
      brute_slope = fmt(std::log(s.brute_s[i] / s.brute_s[i - 1]) / dn, "%.2f");
    }
    print_row({std::to_string(s.sizes[i]), fmt(s.tree_s[i]), fmt(s.brute_s[i]),
               fmt(s.brute_s[i] / s.tree_s[i], "%.1fx"), tree_slope,
               brute_slope});
  }
}

} // namespace

int main() {
  print_header("Asymptotics -- tree algorithm vs brute force across N");
  const double scale = bench_scale_from_env();
  std::vector<index_t> sizes;
  for (index_t base : {2000, 4000, 8000, 16000, 32000})
    sizes.push_back(static_cast<index_t>(base * scale));

  Series knn, kde, twopoint;
  for (index_t n : sizes) {
    const Dataset data = make_gaussian_mixture(n, 3, 6, 1000 + n);
    Storage storage(data);

    { // k-NN
      PortalExpr expr;
      expr.addLayer(PortalOp::FORALL, storage);
      expr.addLayer({PortalOp::KARGMIN, 3}, storage, PortalFunc::EUCLIDEAN);
      knn.sizes.push_back(n);
      knn.tree_s.push_back(time_once([&] { expr.execute(); }));
      knn.brute_s.push_back(time_once([&] { expr.executeBruteForce(); }));
    }
    { // KDE
      PortalExpr expr;
      expr.addLayer(PortalOp::FORALL, storage);
      expr.addLayer(PortalOp::SUM, storage, PortalFunc::gaussian(0.5));
      PortalConfig config;
      config.tau = 1e-3;
      expr.setConfig(config);
      kde.sizes.push_back(n);
      kde.tree_s.push_back(time_once([&] { expr.execute(); }));
      kde.brute_s.push_back(time_once([&] { expr.executeBruteForce(); }));
    }
    { // 2-point correlation
      Var q, r;
      const Expr d = sqrt(pow(Expr(q) - Expr(r), 2));
      PortalExpr expr;
      expr.addLayer(PortalOp::SUM, q, storage);
      expr.addLayer(PortalOp::SUM, r, storage, d < Expr(1.0));
      twopoint.sizes.push_back(n);
      twopoint.tree_s.push_back(time_once([&] { expr.execute(); }));
      twopoint.brute_s.push_back(time_once([&] { expr.executeBruteForce(); }));
    }
  }

  report("k-NN (pruning)", knn);
  report("KDE (approximation, tau=1e-3)", kde);
  report("2-point correlation (pruning)", twopoint);
  std::printf("\nslope ~2 = quadratic; slope ~1 = (near-)linear. The tree\n"
              "columns should grow with slope ~1-1.3, brute force with ~2.\n");
  return 0;
}
