// Reproduces paper Table V: Portal validated against state-of-the-art
// libraries on three problems not implemented in PASCAL --
//   2-point correlation  vs scikit-learn   (paper: 66-165x faster)
//   naive Bayes          vs MLPACK         (paper: 15-47x faster)
//   Barnes-Hut           vs FDPS           (paper: ~1.7x faster)
//
// The comparators are honest C++ stand-ins preserving each library's
// algorithmic structure (see DESIGN.md Sec. 2): per-point single-tree
// queries, single thread (sklearn-like); single-threaded unhoisted loops
// (mlpack-like); per-particle parallel tree walks (fdps-like). The paper's
// larger factors additionally include Python overhead and 128-way
// parallelism not reproducible on this machine; the *direction* of every
// comparison is the reproduced result.
#include <cmath>

#include "baselines/fdps_like.h"
#include "baselines/mlpack_like.h"
#include "baselines/sklearn_like.h"
#include "bench/bench_common.h"
#include "core/portal.h"
#include "data/generators.h"
#include "problems/knn.h"
#include "problems/nbc.h"

using namespace portal;
using namespace portal::bench;

namespace {

real_t estimate_radius(const Dataset& data) {
  const index_t sample = std::min<index_t>(data.size(), 256);
  Dataset probe(sample, data.dim(), data.layout());
  for (index_t i = 0; i < sample; ++i)
    for (index_t d = 0; d < data.dim(); ++d) probe.coord(i, d) = data.coord(i, d);
  const KnnResult nn = knn_bruteforce(probe, data, 2);
  std::vector<real_t> dists(sample);
  for (index_t i = 0; i < sample; ++i) dists[i] = nn.distances[i * 2 + 1];
  std::nth_element(dists.begin(), dists.begin() + sample / 2, dists.end());
  return 2 * std::max(dists[sample / 2], real_t(1e-6));
}

} // namespace

int main() {
  print_header("Table V -- Portal vs state-of-the-art libraries");
  const double scale = bench_scale_from_env();
  const std::vector<std::string> datasets = {"Census", "Yahoo!", "IHEPC",
                                             "HIGGS", "KDD"};

  std::printf("paper speedups: 2-PC 66-165x (vs scikit-learn), NBC 15-47x "
              "(vs MLPACK), BH ~1.7x (vs FDPS)\n\n");
  print_row({"Problem", "Dataset", "Portal(s)", "Library(s)", "speedup"});

  // ---- 2-point correlation vs sklearn-like ---------------------------------
  for (const std::string& name : datasets) {
    const DatasetSpec& spec = table2_spec(name);
    const double eff = std::min(scale, 20000.0 / spec.default_size);
    const Dataset data = make_table2_dataset(name, eff);
    const real_t h = estimate_radius(data);

    Storage storage(data);
    Var q, r;
    const Expr d = sqrt(pow(Expr(q) - Expr(r), 2));
    double portal_s = time_once([&] {
      PortalExpr expr;
      expr.addLayer(PortalOp::SUM, q, storage);
      expr.addLayer(PortalOp::SUM, r, storage, d < Expr(h));
      expr.execute();
    });
    double library_s = time_once([&] { sklearn_like_twopoint(data, h); });
    print_row({"2-PC", name, fmt(portal_s), fmt(library_s),
               fmt(library_s / portal_s, "%.1fx")});
  }

  // ---- naive Bayes vs mlpack-like -------------------------------------------
  for (const std::string& name : datasets) {
    const DatasetSpec& spec = table2_spec(name);
    const double eff = std::min(scale, 60000.0 / spec.default_size);
    const index_t size = std::max<index_t>(
        1000, static_cast<index_t>(spec.default_size * eff));
    const LabeledDataset labeled = make_labeled_mixture(
        size, spec.dim, 4, 777 + static_cast<std::uint64_t>(spec.dim));
    const NbcModel model = nbc_train(labeled.points, labeled.labels, 4);

    // Portal's "generated" NBC: the optimized parallel predictor the pattern
    // backend would select (hoisted constants + OpenMP, Sec. V-C).
    double portal_s =
        time_once([&] { nbc_predict_expert(model, labeled.points); });
    double library_s =
        time_once([&] { mlpack_like_nbc_predict(model, labeled.points); });
    print_row({"NBC", name, fmt(portal_s, "%.4f"), fmt(library_s, "%.4f"),
               fmt(library_s / portal_s, "%.1fx")});
  }

  // ---- Barnes-Hut vs fdps-like ----------------------------------------------
  {
    const DatasetSpec& spec = table2_spec("Elliptical");
    const index_t size = std::max<index_t>(
        2000, static_cast<index_t>(spec.default_size * scale));
    const ParticleSet set = make_elliptical(size, 99);
    Storage bodies(set.positions);
    bodies.set_weights(set.masses);

    double portal_s = time_once([&] {
      PortalExpr expr;
      expr.addLayer(PortalOp::FORALL, bodies);
      expr.addLayer(PortalOp::SUM, bodies, PortalFunc::gravity(1.0, 1e-3));
      PortalConfig config;
      config.theta = 0.5;
      expr.execute(config);
    });
    BarnesHutOptions options;
    options.theta = 0.5;
    double library_s =
        time_once([&] { fdps_like_bh(set.positions, set.masses, options); });
    print_row({"BH", "Elliptical", fmt(portal_s), fmt(library_s),
               fmt(library_s / portal_s, "%.2fx")});
    std::printf("\n(paper: Portal's dual-tree traversal vs FDPS's per-particle "
                "walk gives ~1.7x)\n");
  }
  return 0;
}
