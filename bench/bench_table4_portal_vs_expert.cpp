// Reproduces paper Table IV: Portal-generated code vs hand-optimized expert
// (PASCAL-style) implementations for six N-body problems across the five ML
// datasets. The paper's claim: Portal is within ~5% of expert on average.
//
// Both sides run the same algorithm class (kd-tree + multi-tree traversal)
// end-to-end, including tree construction. Iterative problems (MST, EM)
// follow the paper's structure: Portal supplies the per-iteration N-body
// primitive, native C++ drives the loop.
#include <algorithm>
#include <cmath>
#include <numeric>

#include "bench/bench_common.h"
#include "core/portal.h"
#include "data/generators.h"
#include "problems/em.h"
#include "problems/emst.h"
#include "problems/hausdorff.h"
#include "problems/kde.h"
#include "problems/knn.h"
#include "problems/range_search.h"
#include "kernels/gaussian.h"
#include "kernels/linalg.h"
#include "util/rng.h"

using namespace portal;
using namespace portal::bench;

namespace {

/// Radius giving a workload comparable across datasets: twice the median
/// 1-NN distance of a small sample.
real_t estimate_radius(const Dataset& data) {
  const index_t sample = std::min<index_t>(data.size(), 256);
  Dataset probe(sample, data.dim(), data.layout());
  for (index_t i = 0; i < sample; ++i)
    for (index_t d = 0; d < data.dim(); ++d) probe.coord(i, d) = data.coord(i, d);
  const KnnResult nn = knn_bruteforce(probe, data, 2); // self + nearest
  std::vector<real_t> dists(sample);
  for (index_t i = 0; i < sample; ++i) dists[i] = nn.distances[i * 2 + 1];
  std::nth_element(dists.begin(), dists.begin() + sample / 2, dists.end());
  return 2 * std::max(dists[sample / 2], real_t(1e-6));
}

Dataset capped_dataset(const std::string& name, double scale, index_t cap) {
  const DatasetSpec& spec = table2_spec(name);
  const double eff =
      std::min(scale, static_cast<double>(cap) / spec.default_size);
  return make_table2_dataset(name, eff);
}

/// Best-of-2 when the first run is short: single-shot timings of the faster
/// problems are dominated by first-touch page faults, which bias whichever
/// side runs first.
inline double time_adaptive(const std::function<void()>& fn) {
  const double first = time_once(fn);
  if (first > 3.0) return first;
  return std::min(first, time_once(fn));
}

struct Measurement {
  double portal_s = 0;
  double expert_s = 0;
  double diff_pct() const {
    return expert_s > 0 ? 100.0 * (portal_s - expert_s) / expert_s : 0;
  }
};

// ---- the six problems ------------------------------------------------------

Measurement bench_knn(const Dataset& data) {
  Measurement m;
  Storage storage(data);
  m.portal_s = time_adaptive([&] {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, storage);
    expr.addLayer({PortalOp::KARGMIN, 5}, storage, PortalFunc::EUCLIDEAN);
    expr.execute();
  });
  m.expert_s = time_adaptive([&] {
    KnnOptions options;
    options.k = 5;
    knn_expert(data, data, options);
  });
  return m;
}

Measurement bench_kde(const Dataset& data, real_t sigma) {
  Measurement m;
  Storage storage(data);
  m.portal_s = time_adaptive([&] {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, storage);
    expr.addLayer(PortalOp::SUM, storage, PortalFunc::gaussian(sigma));
    PortalConfig config;
    config.tau = 1e-3;
    expr.execute(config);
  });
  m.expert_s = time_adaptive([&] {
    KdeOptions options;
    options.sigma = sigma;
    options.tau = 1e-3;
    options.normalize = false;
    kde_expert(data, data, options);
  });
  return m;
}

Measurement bench_rs(const Dataset& data, real_t h) {
  Measurement m;
  Storage storage(data);
  m.portal_s = time_adaptive([&] {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, storage);
    expr.addLayer(PortalOp::UNIONARG, storage,
                  PortalFunc::indicator(h / 4, h));
    expr.execute();
  });
  m.expert_s = time_adaptive([&] {
    RangeSearchOptions options;
    options.h_lo = h / 4;
    options.h_hi = h;
    range_search_expert(data, data, options);
  });
  return m;
}

Measurement bench_mst(const Dataset& data) {
  Measurement m;
  const index_t n = data.size();
  m.portal_s = time_once([&] {
    // The paper's 12-line Portal MST + native Boruvka loop.
    Storage storage(data);
    std::vector<index_t> parent(n);
    std::iota(parent.begin(), parent.end(), 0);
    const std::function<index_t(index_t)> find = [&](index_t x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, storage);
    expr.addLayer(PortalOp::ARGMIN, storage, PortalFunc::EUCLIDEAN);
    std::vector<index_t> comp(n);
    index_t components = n;
    while (components > 1) {
      for (index_t i = 0; i < n; ++i) comp[i] = find(i);
      PortalConfig config;
      config.exclude_same_label = &comp;
      expr.execute(config);
      Storage out = expr.getOutput();
      std::vector<real_t> best(n, std::numeric_limits<real_t>::max());
      std::vector<std::pair<index_t, index_t>> edge(n, {-1, -1});
      for (index_t i = 0; i < n; ++i) {
        const index_t to = out.index_at(i);
        if (to < 0) continue;
        if (out.value(i) < best[comp[i]]) {
          best[comp[i]] = out.value(i);
          edge[comp[i]] = {i, to};
        }
      }
      for (index_t c = 0; c < n; ++c) {
        if (edge[c].first < 0) continue;
        const index_t a = find(edge[c].first);
        const index_t b = find(edge[c].second);
        if (a == b) continue;
        parent[a] = b;
        --components;
      }
    }
  });
  m.expert_s = time_once([&] { emst_expert(data, {}); });
  // (MST runs are long enough that single-shot timing is stable.)
  return m;
}

Measurement bench_em(const Dataset& data) {
  Measurement m;
  const index_t K = 3, iters = 3;
  const index_t n = data.size();
  const index_t dim = data.dim();

  m.expert_s = time_once([&] {
    // Exact tree E-step (tau = 0): the comparison then isolates Portal's
    // per-component program overhead, the analog of the paper's
    // external-function-call deviation on EM.
    EmOptions options;
    options.num_components = K;
    options.max_iters = iters;
    options.tol = 0;
    options.tau = 0;
    em_expert(data, options);
  });

  m.portal_s = time_once([&] {
    // Portal EM: per-component E-step through Portal (forall points x the
    // component mean, Gaussian-of-Mahalanobis kernel with that component's
    // covariance), native normalization + M-step. Mirrors the paper's
    // 30-lines-Portal + 74-lines-native structure -- and like the paper, the
    // per-component covariance handling is where Portal's overhead lives.
    Storage points(data);
    const std::vector<real_t> global_mean = column_mean(data);
    std::vector<std::vector<real_t>> covs(
        K, covariance(data, global_mean, 1e-6));
    std::vector<real_t> means(K * dim);
    Rng rng(1234);
    for (index_t k = 0; k < K; ++k) {
      const index_t pick = static_cast<index_t>(rng.uniform_index(n));
      for (index_t d = 0; d < dim; ++d) means[k * dim + d] = data.coord(pick, d);
    }
    std::vector<real_t> weights(K, real_t(1) / K);
    std::vector<real_t> resp(static_cast<std::size_t>(n) * K);
    // One shared tree cache: the per-iteration kernels change (means and
    // covariances move), but the point-set trees do not.
    auto trees = std::make_shared<TreeCache>();

    for (index_t iter = 0; iter < iters; ++iter) {
      // E-step: K Portal programs, one per component.
      for (index_t k = 0; k < K; ++k) {
        Storage center(Dataset::from_row_major(means.data() + k * dim, 1, dim));
        PortalExpr expr;
        expr.setTreeCache(trees);
        expr.addLayer(PortalOp::FORALL, points);
        expr.addLayer(PortalOp::FORALL, center,
                      PortalFunc::gaussian_maha(covs[k]));
        PortalConfig config;
        config.tau = 0; // exact, matching the expert side
        expr.execute(config);
        Storage out = expr.getOutput();
        const MahalanobisContext ctx(covs[k], dim);
        const real_t norm =
            std::exp(real_t(-0.5) * (dim * std::log(kTwoPi) + ctx.log_det()));
        for (index_t i = 0; i < n; ++i)
          resp[i * K + k] = weights[k] * norm * out.value(i);
      }
      // Native normalization + M-step (full covariance).
      for (index_t i = 0; i < n; ++i) {
        real_t denom = 0;
        for (index_t k = 0; k < K; ++k) denom += resp[i * K + k];
        denom = std::max(denom, real_t(1e-300));
        for (index_t k = 0; k < K; ++k) resp[i * K + k] /= denom;
      }
      std::vector<real_t> nk(K, 0);
      std::vector<real_t> mu(K * dim, 0);
      for (index_t i = 0; i < n; ++i)
        for (index_t k = 0; k < K; ++k) {
          nk[k] += resp[i * K + k];
          for (index_t d = 0; d < dim; ++d)
            mu[k * dim + d] += resp[i * K + k] * data.coord(i, d);
        }
      for (index_t k = 0; k < K; ++k)
        for (index_t d = 0; d < dim; ++d)
          mu[k * dim + d] /= std::max(nk[k], real_t(1e-10));
      std::vector<real_t> diff(dim);
      for (index_t k = 0; k < K; ++k) std::fill(covs[k].begin(), covs[k].end(), real_t(0));
      for (index_t i = 0; i < n; ++i)
        for (index_t k = 0; k < K; ++k) {
          const real_t r = resp[i * K + k];
          if (r < 1e-12) continue;
          for (index_t d = 0; d < dim; ++d)
            diff[d] = data.coord(i, d) - mu[k * dim + d];
          for (index_t a = 0; a < dim; ++a)
            for (index_t b = 0; b <= a; ++b)
              covs[k][a * dim + b] += r * diff[a] * diff[b];
        }
      for (index_t k = 0; k < K; ++k) {
        const real_t denom = std::max(nk[k], real_t(1e-10));
        for (index_t a = 0; a < dim; ++a)
          for (index_t b = 0; b <= a; ++b) {
            covs[k][a * dim + b] /= denom;
            covs[k][b * dim + a] = covs[k][a * dim + b];
          }
        for (index_t d = 0; d < dim; ++d) covs[k][d * dim + d] += 1e-6;
        weights[k] = nk[k] / n;
        means = mu;
      }
    }
  });
  return m;
}

Measurement bench_hausdorff(const Dataset& data) {
  // Two halves of the dataset as the two point sets.
  const index_t half = data.size() / 2;
  Dataset a(half, data.dim(), data.layout());
  Dataset b(data.size() - half, data.dim(), data.layout());
  for (index_t i = 0; i < half; ++i)
    for (index_t d = 0; d < data.dim(); ++d) a.coord(i, d) = data.coord(i, d);
  for (index_t i = half; i < data.size(); ++i)
    for (index_t d = 0; d < data.dim(); ++d)
      b.coord(i - half, d) = data.coord(i, d);

  Measurement m;
  Storage sa(a), sb(b);
  m.portal_s = time_adaptive([&] {
    for (const auto& [q, r] : {std::pair(&sa, &sb), std::pair(&sb, &sa)}) {
      PortalExpr expr;
      expr.addLayer(PortalOp::MAX, *q);
      expr.addLayer(PortalOp::MIN, *r, PortalFunc::EUCLIDEAN);
      expr.execute();
    }
  });
  m.expert_s = time_adaptive([&] { hausdorff_expert(a, b, {}); });
  return m;
}

} // namespace

int main() {
  print_header("Table IV -- Portal vs expert (hand-optimized) runtimes");
  const double scale = bench_scale_from_env();

  const std::vector<std::string> datasets = {"Census", "Yahoo!", "IHEPC",
                                             "HIGGS", "KDD"};
  // Paper Table IV %-differences for reference (Census / Yahoo! columns).
  std::printf("paper reference (%%diff, Census & Yahoo! columns): kNN 4/2, "
              "KDE 3/4, RS 5/4, MST 4/3, EM 8/8, HD 5/5; average ~5%%\n\n");

  print_row({"Problem", "Dataset", "Portal(s)", "Expert(s)", "%diff"});
  std::vector<double> diffs;
  const auto report = [&](const std::string& problem, const std::string& dataset,
                          const Measurement& m) {
    diffs.push_back(m.diff_pct());
    print_row({problem, dataset, fmt(m.portal_s), fmt(m.expert_s),
               fmt(m.diff_pct(), "%+.1f")});
  };

  for (const std::string& name : datasets) {
    const Dataset full = capped_dataset(name, scale, 100000);
    const Dataset mid = capped_dataset(name, scale, 20000);
    const Dataset small = capped_dataset(name, scale, 6000);
    const real_t h = estimate_radius(mid);

    report("k-NN", name, bench_knn(full));
    report("KDE", name, bench_kde(mid, h));
    report("RS", name, bench_rs(mid, h));
    report("MST", name, bench_mst(mid));
    report("EM", name, bench_em(small));
    report("HD", name, bench_hausdorff(full));
  }

  const double avg =
      std::accumulate(diffs.begin(), diffs.end(), 0.0) / diffs.size();
  double avg_abs = 0;
  for (double d : diffs) avg_abs += std::abs(d);
  avg_abs /= diffs.size();
  std::printf("\naverage %%diff: %+.1f (mean absolute %.1f); paper reports "
              "Portal within ~5%% of expert on average\n",
              avg, avg_abs);
  return 0;
}
