// Reproduces paper Table II: the six evaluation datasets.
//
// Prints the paper's (N, d) next to our laptop-scale stand-in's (N, d), the
// layout Portal's policy picks, and the kd-tree build characteristics --
// everything downstream benches consume.
#include "bench/bench_common.h"
#include "tree/kdtree.h"

using namespace portal;
using namespace portal::bench;

int main() {
  print_header("Table II -- dataset characteristics (paper vs stand-in)");
  const double scale = bench_scale_from_env();

  print_row({"Dataset", "paper N", "paper d", "ours N", "d", "layout",
             "tree nodes", "height", "build(s)"});
  for (const DatasetSpec& spec : table2_specs()) {
    const Dataset data = make_table2_dataset(spec.name, scale);
    const KdTree tree(data, kDefaultLeafSize);
    print_row({spec.name, std::to_string(spec.paper_size),
               std::to_string(spec.dim), std::to_string(data.size()),
               std::to_string(data.dim()),
               data.layout() == Layout::ColMajor ? "col-major" : "row-major",
               std::to_string(tree.num_nodes()),
               std::to_string(tree.stats().height),
               fmt(tree.stats().build_seconds)});
  }
  std::printf("\nLayout policy (Sec. III-B): d <= 4 -> column-major, else "
              "row-major.\n");
  return 0;
}
