// Reproduces paper Fig. 1: the Portal block diagram, shown as a live trace of
// the pipeline for each evaluated problem -- which passes ran, how the IR
// changed, which algorithm class the generator assigned, and which backend
// emitted the final code.
#include "bench/bench_common.h"
#include "core/portal.h"
#include "data/generators.h"

using namespace portal;
using namespace portal::bench;

namespace {

void trace(const std::string& name,
           const std::function<void(PortalExpr&)>& build) {
  PortalExpr expr;
  build(expr);
  PortalConfig config;
  config.dump_ir = true;
  expr.execute(config);
  std::printf("---- %s ----\n", name.c_str());
  std::printf("  front end : %s\n", expr.artifacts().problem_description.c_str());
  std::printf("  passes    :\n");
  std::string trace_text = expr.artifacts().pipeline_trace;
  std::size_t pos = 0;
  while (pos < trace_text.size()) {
    const std::size_t end = trace_text.find('\n', pos);
    std::printf("    %s\n", trace_text.substr(pos, end - pos).c_str());
    if (end == std::string::npos) break;
    pos = end + 1;
  }
  std::printf("  backend   : %s\n", expr.artifacts().chosen_engine.c_str());
  std::printf("  compile   : %.4fs | trees %.4fs | traversal %.4fs\n\n",
              expr.artifacts().compile_seconds,
              expr.artifacts().tree_build_seconds,
              expr.artifacts().traversal_seconds);
}

} // namespace

int main() {
  print_header("Fig. 1 -- compiler pipeline trace per problem");

  Storage pts(make_gaussian_mixture(4000, 3, 3, 1));
  Storage pts2(make_gaussian_mixture(4000, 3, 3, 2));
  ParticleSet particles = make_elliptical(4000, 3);
  Storage bodies(particles.positions);
  bodies.set_weights(particles.masses);

  trace("k-NN", [&](PortalExpr& e) {
    e.addLayer(PortalOp::FORALL, pts);
    e.addLayer({PortalOp::KARGMIN, 5}, pts2, PortalFunc::EUCLIDEAN);
  });
  trace("KDE", [&](PortalExpr& e) {
    e.addLayer(PortalOp::FORALL, pts);
    e.addLayer(PortalOp::SUM, pts, PortalFunc::gaussian(1.0));
  });
  trace("Range search", [&](PortalExpr& e) {
    e.addLayer(PortalOp::FORALL, pts);
    e.addLayer(PortalOp::UNIONARG, pts2, PortalFunc::indicator(0.5, 1.5));
  });
  trace("Hausdorff", [&](PortalExpr& e) {
    e.addLayer(PortalOp::MAX, pts);
    e.addLayer(PortalOp::MIN, pts2, PortalFunc::EUCLIDEAN);
  });
  trace("Barnes-Hut", [&](PortalExpr& e) {
    e.addLayer(PortalOp::FORALL, bodies);
    e.addLayer(PortalOp::SUM, bodies, PortalFunc::gravity(1.0, 1e-3));
  });
  trace("Mahalanobis KDE (generic backend)", [&](PortalExpr& e) {
    e.addLayer(PortalOp::FORALL, pts);
    e.addLayer(PortalOp::SUM, pts, PortalFunc::gaussian_maha());
  });
  return 0;
}
