// portal_cli -- run Portal N-body programs from the command line.
//
//   portal_cli <problem> [options]
//
// Problems:
//   run FILE.portal                                    run a Portal script
//                                                      (paper Appendix VIII)
//   verify FILE.portal                                 compile + IR-verify a
//                                                      script and dump the
//                                                      diagnostic report
//   lint FILE.portal [--json] [--werror]               compile a script and
//                                                      report PTL-Wxxx lint
//                                                      findings (human text,
//                                                      or stable JSON for CI)
//   knn        --query F --reference F --k K           k-nearest neighbors
//   kde        --query F --reference F --sigma S       Gaussian density sums
//   rs         --query F --reference F --lo A --hi B   range search
//   twopoint   --data F --h H                          2-point correlation
//   threepoint --data F --h H                          3-point correlation
//   hausdorff  --a F --b F                             directed + symmetric
//   emst       --data F                                Euclidean MST
//   bh         --data F --theta T [--masses F]         Barnes-Hut forces
//
// Shared options:
//   --out FILE       write the result as CSV (problem-shaped rows)
//   --leaf N         kd-tree leaf size (0 = auto-tune)
//   --tau T          approximation threshold (KDE)
//   --engine E       auto | pattern | jit | vm
//   --validate       cross-check against the brute-force program
//   --demo N[,DIM]   generate N clustered points instead of reading CSVs
//   --serial         disable OpenMP
//   --verify         print the per-stage IR verification report (the
//                    -verify-each sandwich runs by default; --no-verify-ir
//                    disables it)
//   --trace[=FILE]   enable pipeline tracing: print the timer/counter table
//                    after the run; with =FILE also write a Chrome
//                    chrome://tracing / Perfetto JSON trace there
//                    (PORTAL_TRACE=FILE does the same without the flag)
//
// Exit-code contract (documented in docs/DIAGNOSTICS.md, relied on by CI):
//   0  success (lint/verify: clean, or warnings without --werror)
//   1  usage errors
//   2  hard errors (execution failures, IR verification PTL-E errors)
//   3  warnings promoted by --werror (lint and verify modes): lets CI gate
//      on warnings without conflating them with verifier failures.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/codegen/artifact_cache.h"
#include "core/parser.h"
#include "core/portal.h"
#include "core/verify/diagnostics.h"
#include "data/generators.h"
#include "index/knn_graph.h"
#include "obs/trace.h"
#include "problems/common.h"
#include "problems/emst.h"
#include "problems/golden.h"
#include "problems/threepoint.h"
#include "serve/service.h"
#include "util/csv.h"
#include "util/threading.h"
#include "util/timer.h"

using namespace portal;

namespace {

struct Args {
  std::string problem;
  std::map<std::string, std::string> options;
  bool has(const std::string& key) const { return options.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback = "") const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double num(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::atof(it->second.c_str());
  }
};

[[noreturn]] void usage(const char* message = nullptr) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  std::fprintf(stderr,
               "usage: portal_cli <knn|kde|rs|twopoint|threepoint|hausdorff|"
               "emst|bh> [--query F] [--reference F] [--data F] [--a F] "
               "[--b F]\n"
               "       [--k K] [--sigma S] [--lo A] [--hi B] [--h H] "
               "[--theta T] [--masses F]\n"
               "       [--out FILE] [--leaf N] [--tau T] [--engine E] "
               "[--validate] [--demo N[,DIM]] [--serial] [--verify]\n"
               "       [--trace[=FILE]]\n"
               "       portal_cli serve-bench [--reference F | --demo N[,DIM]]"
               " [--workers W] [--clients C]\n"
               "           [--seconds S] [--mix knn,kde,rs] [--queue N] "
               "[--batch N] [--deadline MS]\n"
               "           [--interleave 0|1] [--interleave-width N] "
               "[--resume-steps N]\n"
               "           [--ingest-writers W] [--delta-capacity N] "
               "[--merge-threshold N]\n"
               "           [--dim D] [--approx] [--beam-width N]   "
               "high-d data + approximate serving\n"
               "       portal_cli index [--reference F | --demo N[,DIM]] "
               "[--dim D] [--degree K]\n"
               "           [--rounds R] [--seed S] [--k K] [--beam-width N] "
               "[--serial]\n"
               "           build the nn-descent k-NN graph, print build "
               "stats + recall/latency probe\n"
               "       portal_cli run FILE.portal | verify FILE.portal "
               "[--werror]\n"
               "       portal_cli lint FILE.portal [--json] [--werror]\n"
               "       portal_cli cache inspect|purge [--dir D]   JIT artifact"
               " cache (default dir: $PORTAL_JIT_CACHE_DIR)\n"
               "       portal_cli --dump-golden=DIR   regenerate "
               "tests/golden/*.csv\n");
  std::exit(1);
}

Storage load(const Args& args, const std::string& key, std::uint64_t seed);

/// serve-bench / index dataset: --reference F, or a generated Gaussian
/// mixture. --dim D exists so the high-dimensional regime the graph index
/// targets is one flag away (`--demo 60000 --dim 48`); it overrides the
/// DIM half of --demo N[,DIM] when both are present.
Storage load_highd(const Args& args, std::uint64_t seed) {
  if (!args.has("reference") && (args.has("dim") || args.has("demo"))) {
    index_t n = 20000;
    index_t dim = static_cast<index_t>(args.num("dim", 0));
    if (args.has("demo")) {
      const std::string spec = args.get("demo");
      const auto comma = spec.find(',');
      n = std::atoll(spec.c_str());
      if (comma != std::string::npos && dim <= 0)
        dim = std::atoll(spec.c_str() + comma + 1);
    }
    if (dim <= 0) dim = 3;
    if (n <= 0) usage("--demo needs N[,DIM] with positive values");
    return Storage(make_gaussian_mixture(n, dim, 5, seed));
  }
  return load(args, "reference", seed);
}

Storage load(const Args& args, const std::string& key, std::uint64_t seed) {
  if (args.has("demo")) {
    const std::string spec = args.get("demo");
    const auto comma = spec.find(',');
    const index_t n = std::atoll(spec.c_str());
    const index_t dim =
        comma == std::string::npos ? 3 : std::atoll(spec.c_str() + comma + 1);
    if (n <= 0 || dim <= 0) usage("--demo needs N[,DIM] with positive values");
    return Storage(make_gaussian_mixture(n, dim, 5, seed));
  }
  const std::string path = args.get(key);
  if (path.empty())
    usage(("missing --" + key + " (or use --demo)").c_str());
  return Storage(path);
}

PortalConfig config_from(const Args& args) {
  PortalConfig config;
  config.leaf_size = static_cast<index_t>(args.num("leaf", kDefaultLeafSize));
  config.tau = args.num("tau", 1e-3);
  config.tau_explicit = args.has("tau"); // PTL-W106 keys on explicit tau
  config.theta = args.num("theta", 0.5);
  config.parallel = !args.has("serial");
  config.validate = args.has("validate");
  config.verify_ir = !args.has("no-verify-ir");
  const std::string engine = args.get("engine", "auto");
  if (engine == "auto") config.engine = Engine::Auto;
  else if (engine == "pattern") config.engine = Engine::Pattern;
  else if (engine == "jit") config.engine = Engine::JIT;
  else if (engine == "vm") config.engine = Engine::VM;
  else usage("--engine must be auto | pattern | jit | vm");
  return config;
}

void print_verify_report(const PortalExpr& expr) {
  const std::string& report = expr.artifacts().verify_report;
  std::printf("-- IR verification report --\n%s",
              report.empty() ? "(verifier disabled: --no-verify-ir)\n"
                             : report.c_str());
}

void report(const PortalExpr& expr, double seconds) {
  std::printf("engine: %s | %s\n", expr.artifacts().chosen_engine.c_str(),
              expr.artifacts().problem_description.c_str());
  std::printf("pairs visited %llu, pruned/approximated %llu, base cases %llu\n",
              static_cast<unsigned long long>(expr.stats().pairs_visited),
              static_cast<unsigned long long>(expr.stats().prunes),
              static_cast<unsigned long long>(expr.stats().base_cases));
  std::printf("total %.3fs (compile %.3fs, trees %.3fs, traversal %.3fs)\n",
              seconds, expr.artifacts().compile_seconds,
              expr.artifacts().tree_build_seconds,
              expr.artifacts().traversal_seconds);
}

void write_matrix(const std::string& path, const Storage& out, bool indices) {
  const index_t rows = out.rows();
  const index_t cols = out.cols();
  const index_t width = indices ? 2 * cols : cols;
  std::vector<real_t> flat(static_cast<std::size_t>(rows) * width);
  for (index_t i = 0; i < rows; ++i)
    for (index_t j = 0; j < cols; ++j) {
      if (indices) {
        flat[i * width + j] = static_cast<real_t>(out.index_at(i, j));
        flat[i * width + cols + j] = out.value(i, j);
      } else {
        flat[i * width + j] = out.value(i, j);
      }
    }
  write_csv(path, flat.data(), rows, width);
  std::printf("wrote %s (%lld rows)\n", path.c_str(),
              static_cast<long long>(rows));
}

/// Count verifier warnings in the textual report ("warning [PTL-Wxxx] ..."
/// lines emitted by the pass sandwich).
std::size_t count_report_warnings(const std::string& report) {
  std::size_t count = 0;
  for (std::size_t pos = report.find("warning ["); pos != std::string::npos;
       pos = report.find("warning [", pos + 1))
    ++count;
  return count;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// `portal_cli lint`: compile the script and report the PTL-Wxxx findings the
// analysis framework attached to the compile artifacts. The JSON layout is
// deliberately stable -- fixed key order, insertion-ordered diagnostics, one
// diagnostic per line -- so CI can diff it against a checked-in expectation.
int run_lint(const std::string& path, const Args& args) {
  PortalConfig base;
  base.verify_ir = !args.has("no-verify-ir");
  const ParsedProgram program = run_portal_script_file(path, base);
  if (!program.expr) {
    std::fprintf(stderr, "script defined no expression; nothing to lint\n");
    return 0;
  }
  program.expr->setConfig(program.config);
  program.expr->compile();
  const CompileArtifacts& arts = program.expr->artifacts();
  const std::vector<Diagnostic>& findings = arts.lint_diagnostics;
  if (args.has("json")) {
    std::printf("{\n  \"file\": \"%s\",\n  \"diagnostics\": [",
                json_escape(path).c_str());
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Diagnostic& d = findings[i];
      std::printf("%s\n    {\"severity\": \"%s\", \"code\": \"%s\", "
                  "\"path\": \"%s\", \"message\": \"%s\"}",
                  i == 0 ? "" : ",", severity_name(d.severity),
                  json_escape(d.code).c_str(), json_escape(d.path).c_str(),
                  json_escape(d.message).c_str());
    }
    std::printf("%s],\n  \"summary\": {\"warnings\": %zu}\n}\n",
                findings.empty() ? "" : "\n  ", findings.size());
  } else if (findings.empty()) {
    std::printf("lint: clean -- %s\n", arts.problem_description.c_str());
  } else {
    std::printf("%s", arts.lint_report.c_str());
    std::printf("lint: %zu warning(s) -- %s\n", findings.size(),
                arts.problem_description.c_str());
  }
  return !findings.empty() && args.has("werror") ? 3 : 0;
}

int run_script(const std::string& path, const Args& args, bool verify_mode) {
  Timer timer;
  PortalConfig base;
  base.verify_ir = !args.has("no-verify-ir");
  const ParsedProgram program = run_portal_script_file(path, base);
  if (verify_mode && program.expr) {
    // Recompile with the sandwich forced on: the whole point of `verify` is
    // the report, even when the script itself sets `verify_ir = 0`.
    PortalConfig vconfig = program.config;
    vconfig.verify_ir = true;
    program.expr->setConfig(vconfig);
    program.expr->compile();
    print_verify_report(*program.expr);
    const CompileArtifacts& arts = program.expr->artifacts();
    if (!arts.lint_diagnostics.empty())
      std::printf("-- lint findings --\n%s", arts.lint_report.c_str());
    std::printf("verify: OK -- %s\n", arts.problem_description.c_str());
    const std::size_t warnings = arts.lint_diagnostics.size() +
                                 count_report_warnings(arts.verify_report);
    return warnings > 0 && args.has("werror") ? 3 : 0;
  }
  if (!program.executed) {
    std::fprintf(stderr, "script parsed but contained no execute(); nothing ran\n");
    return 0;
  }
  Storage out = program.expr->getOutput();
  report(*program.expr, timer.elapsed_s());
  if (args.has("verify")) print_verify_report(*program.expr);
  if (out.has_scalar()) {
    std::printf("scalar result: %.10g\n", out.scalar());
  } else if (out.has_lists()) {
    std::uint64_t total = 0;
    for (index_t i = 0; i < out.rows(); ++i) total += out.list_size(i);
    std::printf("%lld CSR rows, %llu entries\n",
                static_cast<long long>(out.rows()),
                static_cast<unsigned long long>(total));
  } else {
    std::printf("%lld x %lld result matrix\n", static_cast<long long>(out.rows()),
                static_cast<long long>(out.cols()));
  }
  if (args.has("out")) write_matrix(args.get("out"), out, out.has_indices());
  return 0;
}

// serve-bench: drive the concurrent serving runtime (src/serve) with a
// closed-loop client fleet and print QPS, latency quantiles, plan-cache hit
// rate, and scheduler stats. See docs/SERVING.md for examples.
int run_serve_bench(const Args& args) {
  serve::ServiceOptions options;
  options.workers = static_cast<int>(args.num("workers", 4));
  options.queue_capacity =
      static_cast<std::size_t>(args.num("queue", 4096));
  options.max_batch = static_cast<std::size_t>(args.num("batch", 64));
  options.default_deadline_ms = args.num("deadline", 0);
  options.block_on_full = true; // closed-loop clients: backpressure, not drops
  options.tau = args.num("tau", 0);
  // --interleave=0 selects the recursive per-request baseline; default is
  // the interleaved resumable-descent mode (docs/SERVING.md).
  options.interleave = args.num("interleave", 1) != 0;
  options.interleave_width =
      static_cast<index_t>(args.num("interleave-width", 16));
  options.resume_steps = static_cast<index_t>(args.num("resume-steps", 32));
  options.snapshot.leaf_size =
      static_cast<index_t>(args.num("leaf", kDefaultLeafSize));
  // Live-ingestion knobs (serve/live.h): --ingest-writers starts a writer
  // fleet streaming inserts/removes beside the readers; the delta sizing
  // knobs trade merge frequency against per-query delta-drain cost.
  options.delta_capacity =
      static_cast<index_t>(args.num("delta-capacity", 4096));
  options.merge_threshold =
      static_cast<index_t>(args.num("merge-threshold", 1024));
  const int ingest_writers = static_cast<int>(args.num("ingest-writers", 0));
  // Approximate serving knobs (docs/SERVING.md): --approx routes eligible
  // reductions through the k-NN graph index; --beam-width trades recall
  // for latency per request at serve time.
  options.approx = args.has("approx") && args.get("approx") != "0";
  options.beam_width = static_cast<index_t>(args.num("beam-width", 64));

  Storage reference = load_highd(args, 31);
  const index_t dim = reference.dim();
  serve::PortalService service(options);
  service.publish(reference.dataset());

  // The request mix: comma-separated problem names, each resolved through
  // the plan cache once here (warmup) and then repeatedly by the clients.
  std::vector<std::pair<std::string, LayerSpec>> mix;
  std::string mix_spec = args.get("mix", "knn,kde,rs");
  for (std::size_t pos = 0; pos < mix_spec.size();) {
    const std::size_t comma = mix_spec.find(',', pos);
    const std::string name = mix_spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    LayerSpec inner;
    if (name == "knn") {
      inner.op = {PortalOp::KARGMIN, static_cast<index_t>(args.num("k", 5))};
      inner.func = PortalFunc::EUCLIDEAN;
    } else if (name == "kde") {
      inner.op = PortalOp::SUM;
      inner.func = PortalFunc::gaussian(args.num("sigma", 1.0));
    } else if (name == "rs") {
      inner.op = PortalOp::UNION;
      inner.func = PortalFunc::indicator(args.num("lo", 0.0) + 1e-12,
                                         args.num("hi", 1.0));
    } else {
      usage("--mix entries must be knn | kde | rs");
    }
    mix.emplace_back(name, std::move(inner));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  std::vector<serve::PlanHandle> plans;
  for (auto& [name, inner] : mix) plans.push_back(service.prepare(inner));

  const int clients = static_cast<int>(args.num("clients", 8));
  const double seconds = args.num("seconds", 3.0);
  std::printf("serve-bench: %lld points dim %lld | %d workers, %d clients, "
              "%.1fs, mix=%s\n",
              static_cast<long long>(reference.size()),
              static_cast<long long>(dim), options.workers, clients, seconds,
              mix_spec.c_str());
  if (options.approx)
    std::printf("approximate mode: on, beam width %lld\n",
                static_cast<long long>(options.beam_width));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sent{0}, ok{0}, failed{0};
  std::atomic<std::uint64_t> writes{0}, write_rejects{0};
  std::vector<std::thread> fleet;
  Timer timer;
  for (int w = 0; w < ingest_writers; ++w)
    fleet.emplace_back([&, w] {
      std::uint64_t state = 0x2545f4914f6cdd1dull * (w + 13) + 5;
      const auto next = [&state] {
        state ^= state << 13; state ^= state >> 7; state ^= state << 17;
        return state;
      };
      std::vector<real_t> point(static_cast<std::size_t>(dim));
      while (!stop.load(std::memory_order_acquire)) {
        const index_t base = static_cast<index_t>(
            next() % static_cast<std::uint64_t>(reference.size()));
        for (index_t d = 0; d < dim; ++d)
          point[static_cast<std::size_t>(d)] =
              reference.dataset().coord(base, d) +
              static_cast<real_t>(next() % 100000) * 1e-7;
        if (service.insert(point).status == serve::IngestStatus::Ok) {
          writes.fetch_add(1, std::memory_order_relaxed);
          // Every fourth insert is taken back out so the live set grows
          // slowly and merges exercise tombstones, not just appends.
          if (next() % 4 == 0 &&
              service.remove(point).status == serve::IngestStatus::Ok)
            writes.fetch_add(1, std::memory_order_relaxed);
        } else {
          write_rejects.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  for (int c = 0; c < clients; ++c)
    fleet.emplace_back([&, c] {
      std::uint64_t state = 0x9e3779b97f4a7c15ull * (c + 1) + 1;
      const auto next = [&state] {
        state ^= state << 13; state ^= state >> 7; state ^= state << 17;
        return state;
      };
      std::vector<real_t> point(static_cast<std::size_t>(dim));
      while (!stop.load(std::memory_order_acquire)) {
        // Resolve the chain through the plan cache every request, the way a
        // real frontend would -- after the warmup prepares above, these are
        // all cache hits (the bench reports the hit rate).
        const serve::PlanHandle plan =
            service.prepare(mix[next() % mix.size()].second);
        const index_t base = static_cast<index_t>(
            next() % static_cast<std::uint64_t>(reference.size()));
        for (index_t d = 0; d < dim; ++d)
          point[static_cast<std::size_t>(d)] =
              reference.dataset().coord(base, d) +
              static_cast<real_t>(next() % 1000) * 1e-4;
        sent.fetch_add(1, std::memory_order_relaxed);
        const serve::Response resp = service.submit(plan, point).get();
        (resp.status == serve::Status::Ok ? ok : failed)
            .fetch_add(1, std::memory_order_relaxed);
      }
    });
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long long>(seconds * 1e3)));
  stop.store(true, std::memory_order_release);
  for (auto& client : fleet) client.join();
  const double elapsed = timer.elapsed_s();

  const serve::ServiceStats stats = service.stats();
  const obs::LatencyHistogram::Snapshot lat = service.latency();
  const obs::LatencyHistogram::Snapshot depth = service.queue_depth();
  std::printf("requests: %llu ok, %llu failed | QPS %.0f\n",
              static_cast<unsigned long long>(ok.load()),
              static_cast<unsigned long long>(failed.load()),
              static_cast<double>(ok.load()) / elapsed);
  std::printf("latency ms: p50 %.3f  p95 %.3f  p99 %.3f  max %.3f  mean %.3f\n",
              lat.quantile(0.50) * 1e3, lat.quantile(0.95) * 1e3,
              lat.quantile(0.99) * 1e3, lat.max_seconds * 1e3,
              lat.mean_seconds() * 1e3);
  std::printf("plan cache: %llu hits, %llu misses (%.2f%% hit rate)\n",
              static_cast<unsigned long long>(stats.plan_cache.hits),
              static_cast<unsigned long long>(stats.plan_cache.misses),
              stats.plan_cache.hit_rate() * 100);
  std::printf("scheduler: %llu batches, %.2f requests/batch | queue depth "
              "p50 %.0f p99 %.0f | epoch %llu\n",
              static_cast<unsigned long long>(stats.batches),
              stats.mean_batch(), depth.quantile(0.5) * 1e9,
              depth.quantile(0.99) * 1e9,
              static_cast<unsigned long long>(stats.epoch));
  if (ingest_writers > 0)
    std::printf("ingest: %.0f writes/s (%llu rejected) | %llu merges, "
                "%llu compactions, %llu points merged | watermark %llu\n",
                static_cast<double>(writes.load()) / elapsed,
                static_cast<unsigned long long>(write_rejects.load()),
                static_cast<unsigned long long>(stats.ingest.merges),
                static_cast<unsigned long long>(stats.ingest.compactions),
                static_cast<unsigned long long>(stats.ingest.merged_points),
                static_cast<unsigned long long>(stats.ingest.watermark));
  service.stop();
  return 0;
}

/// `portal_cli index`: build the nn-descent k-NN graph (src/index, DESIGN.md
/// Sec. 18) over a dataset, print build stats, then probe recall@k and query
/// latency against a linear-scan oracle at a few beam widths. This is the
/// operator's view of the recall/latency tradeoff before flipping --approx
/// on a serving fleet.
int run_index(const Args& args) {
  Storage reference = load_highd(args, 31);
  const Dataset& data = reference.dataset();

  KnnGraphOptions gopt;
  gopt.degree = static_cast<index_t>(args.num("degree", 20));
  gopt.max_rounds = static_cast<index_t>(args.num("rounds", 8));
  if (args.has("seed"))
    gopt.seed = static_cast<std::uint64_t>(args.num("seed", 0));
  if (args.has("serial")) gopt.parallel_build = false;
  const KnnGraph graph(data, gopt);
  const KnnGraphStats& gs = graph.stats();
  std::printf("index: %lld points dim %lld, degree %lld | %lld rounds, "
              "%llu updates, %llu dist evals | built in %.3fs\n",
              static_cast<long long>(graph.size()),
              static_cast<long long>(graph.dim()),
              static_cast<long long>(graph.degree()),
              static_cast<long long>(gs.rounds),
              static_cast<unsigned long long>(gs.updates),
              static_cast<unsigned long long>(gs.dist_evals),
              gs.build_seconds);

  // Recall/latency probe: queries jittered off dataset points, the oracle a
  // linear scan through the same scalar kernel the serve engine uses.
  const index_t k =
      std::min<index_t>(static_cast<index_t>(args.num("k", 10)), graph.size());
  const index_t nq = std::min<index_t>(200, graph.size());
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state] {
    state ^= state << 13; state ^= state >> 7; state ^= state << 17;
    return state;
  };
  std::vector<std::vector<real_t>> queries;
  std::vector<std::vector<index_t>> oracle;
  std::vector<real_t> dists(static_cast<std::size_t>(graph.size()));
  std::vector<index_t> order(static_cast<std::size_t>(graph.size()));
  for (index_t q = 0; q < nq; ++q) {
    std::vector<real_t> pt(static_cast<std::size_t>(graph.dim()));
    const index_t base = static_cast<index_t>(
        next() % static_cast<std::uint64_t>(graph.size()));
    for (index_t d = 0; d < graph.dim(); ++d)
      pt[static_cast<std::size_t>(d)] =
          data.coord(base, d) + static_cast<real_t>(next() % 1000) * 1e-4;
    sq_dists_to_range(data, 0, graph.size(), pt.data(), dists.data());
    for (index_t i = 0; i < graph.size(); ++i)
      order[static_cast<std::size_t>(i)] = i;
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [&dists](index_t a, index_t b) {
                        const real_t da = dists[static_cast<std::size_t>(a)];
                        const real_t db = dists[static_cast<std::size_t>(b)];
                        return da != db ? da < db : a < b;
                      });
    oracle.emplace_back(order.begin(), order.begin() + k);
    queries.push_back(std::move(pt));
  }

  std::vector<index_t> beams;
  if (args.has("beam-width"))
    beams.push_back(static_cast<index_t>(args.num("beam-width", 64)));
  else
    beams = {16, 32, 64};
  KnnGraph::SearchScratch scratch;
  std::vector<real_t> out_sq(static_cast<std::size_t>(k));
  std::vector<index_t> out_ids(static_cast<std::size_t>(k));
  for (const index_t beam : beams) {
    std::uint64_t hits = 0;
    Timer probe;
    for (index_t q = 0; q < nq; ++q) {
      const index_t got = graph.search(queries[static_cast<std::size_t>(q)].data(),
                                       k, beam, scratch, out_sq.data(),
                                       out_ids.data());
      const std::vector<index_t>& want = oracle[static_cast<std::size_t>(q)];
      for (index_t s = 0; s < got; ++s)
        if (std::find(want.begin(), want.end(), out_ids[static_cast<std::size_t>(s)]) !=
            want.end())
          ++hits;
    }
    const double elapsed = probe.elapsed_s();
    std::printf("beam %4lld: recall@%lld %.4f | %.4f ms/query (%.0f QPS)\n",
                static_cast<long long>(beam), static_cast<long long>(k),
                static_cast<double>(hits) /
                    static_cast<double>(nq * k),
                elapsed * 1e3 / static_cast<double>(nq),
                static_cast<double>(nq) / elapsed);
  }
  return 0;
}

/// `portal_cli cache inspect|purge [--dir D]`: operator's view of the
/// persistent JIT artifact cache (DESIGN.md Sec. 17). inspect prints one
/// validated row per entry plus a greppable summary line; purge empties the
/// directory. Invalid entries (truncated .so, tampered manifest) show as
/// valid=no -- the serving path rejects and recompiles them, never loads them.
int run_cache(const Args& args) {
  const std::string action = args.get("script", "inspect");
  std::string dir = args.get("dir");
  if (dir.empty()) {
    const char* env = std::getenv("PORTAL_JIT_CACHE_DIR");
    if (env != nullptr) dir = env;
  }
  if (dir.empty())
    usage("cache: pass --dir or set PORTAL_JIT_CACHE_DIR");

  ArtifactCache::Options options;
  options.dir = dir;
  options.max_entries = 0; // the CLI never evicts behind the operator's back
  ArtifactCache cache(std::move(options));

  if (action == "purge") {
    std::printf("purged %zu entries from %s\n", cache.purge(), dir.c_str());
    return 0;
  }
  if (action != "inspect") usage("cache: action must be inspect or purge");

  const std::vector<ArtifactCache::EntryInfo> entries = cache.list();
  std::size_t valid = 0;
  for (const ArtifactCache::EntryInfo& e : entries) {
    std::printf("k%s  %10llu bytes  valid=%s  %s\n", e.key_hex.c_str(),
                static_cast<unsigned long long>(e.so_bytes),
                e.valid ? "yes" : "no", e.compiler.c_str());
    if (e.valid) ++valid;
  }
  std::printf("cache %s: %zu entries, %zu valid\n", dir.c_str(),
              entries.size(), valid);
  return 0;
}

int run(const Args& args) {
  if (args.problem == "run" || args.problem == "verify" ||
      args.problem == "lint") {
    const std::string script = args.get("script");
    if (script.empty())
      usage(("'" + args.problem + "' needs a script path: portal_cli " +
             args.problem + " FILE").c_str());
    if (args.problem == "lint") return run_lint(script, args);
    return run_script(script, args, args.problem == "verify");
  }
  const PortalConfig config = config_from(args);
  Timer timer;

  if (args.problem == "knn" || args.problem == "kde" || args.problem == "rs") {
    Storage query = load(args, "query", 11);
    Storage reference =
        args.has("reference") || !args.has("demo")
            ? load(args, "reference", 12)
            : query; // demo mode without --reference: self-join

    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, query);
    if (args.problem == "knn") {
      const index_t k = static_cast<index_t>(args.num("k", 5));
      expr.addLayer({PortalOp::KARGMIN, k}, reference, PortalFunc::EUCLIDEAN);
    } else if (args.problem == "kde") {
      expr.addLayer(PortalOp::SUM, reference,
                    PortalFunc::gaussian(args.num("sigma", 1.0)));
    } else {
      expr.addLayer(PortalOp::UNIONARG, reference,
                    PortalFunc::indicator(args.num("lo", 0.0) + 1e-12,
                                          args.num("hi", 1.0)));
    }
    expr.execute(config);
    Storage out = expr.getOutput();
    report(expr, timer.elapsed_s());
    if (args.has("verify")) print_verify_report(expr);

    if (args.problem == "rs") {
      std::uint64_t total = 0;
      for (index_t i = 0; i < query.size(); ++i) total += out.list_size(i);
      std::printf("total neighbors: %llu (%.1f per query)\n",
                  static_cast<unsigned long long>(total),
                  static_cast<double>(total) / query.size());
    } else if (args.has("out")) {
      write_matrix(args.get("out"), out, args.problem == "knn");
    }
    return 0;
  }

  if (args.problem == "twopoint") {
    Storage data = load(args, "data", 13);
    const real_t h = args.num("h", 1.0);
    Var q, r;
    const Expr d = sqrt(pow(Expr(q) - Expr(r), 2));
    PortalExpr expr;
    expr.addLayer(PortalOp::SUM, q, data);
    expr.addLayer(PortalOp::SUM, r, data, d < Expr(h));
    expr.execute(config);
    report(expr, timer.elapsed_s());
    if (args.has("verify")) print_verify_report(expr);
    const double ordered = expr.getOutput().scalar();
    std::printf("ordered pairs (incl. self): %.0f | distinct pairs within h: "
                "%.0f\n",
                ordered, (ordered - data.size()) / 2);
    return 0;
  }

  if (args.problem == "threepoint") {
    Storage data = load(args, "data", 14);
    ThreePointOptions options;
    options.h = args.num("h", 1.0);
    options.leaf_size = config.leaf_size > 0 ? config.leaf_size : kDefaultLeafSize;
    const ThreePointResult result = threepoint_expert(data.dataset(), options);
    std::printf("triples within h: %llu (%.3fs)\n",
                static_cast<unsigned long long>(result.triples),
                timer.elapsed_s());
    return 0;
  }

  if (args.problem == "hausdorff") {
    Storage a = args.has("demo") ? load(args, "a", 15) : load(args, "a", 15);
    Storage b = args.has("demo") ? Storage(make_gaussian_mixture(
                                       a.size(), a.dim(), 5, 16))
                                 : load(args, "b", 16);
    real_t directed[2];
    int slot = 0;
    for (const auto& [q, r] : {std::pair(&a, &b), std::pair(&b, &a)}) {
      PortalExpr expr;
      expr.addLayer(PortalOp::MAX, *q);
      expr.addLayer(PortalOp::MIN, *r, PortalFunc::EUCLIDEAN);
      expr.execute(config);
      directed[slot++] = expr.getOutput().scalar();
      if (args.has("verify") && slot == 1) print_verify_report(expr);
    }
    std::printf("h(A,B) = %.6f, h(B,A) = %.6f, H = %.6f (%.3fs)\n", directed[0],
                directed[1], std::max(directed[0], directed[1]),
                timer.elapsed_s());
    return 0;
  }

  if (args.problem == "emst") {
    Storage data = load(args, "data", 17);
    EmstOptions options;
    options.leaf_size = config.leaf_size > 0 ? config.leaf_size : kDefaultLeafSize;
    options.parallel = config.parallel;
    const EmstResult result = emst_expert(data.dataset(), options);
    std::printf("MST weight %.6f over %zu edges, %lld Boruvka rounds (%.3fs)\n",
                result.total_weight, result.edges.size(),
                static_cast<long long>(result.boruvka_rounds),
                timer.elapsed_s());
    if (args.has("out")) {
      std::vector<real_t> rows(result.edges.size() * 3);
      for (std::size_t i = 0; i < result.edges.size(); ++i) {
        rows[i * 3 + 0] = static_cast<real_t>(result.edges[i].a);
        rows[i * 3 + 1] = static_cast<real_t>(result.edges[i].b);
        rows[i * 3 + 2] = result.edges[i].weight;
      }
      write_csv(args.get("out"), rows.data(),
                static_cast<index_t>(result.edges.size()), 3);
      std::printf("wrote %s\n", args.get("out").c_str());
    }
    return 0;
  }

  if (args.problem == "bh") {
    Storage data = args.has("demo")
                       ? [&] {
                           const index_t n =
                               std::atoll(args.get("demo").c_str());
                           ParticleSet set = make_elliptical(n, 18);
                           Storage s(set.positions);
                           s.set_weights(set.masses);
                           return s;
                         }()
                       : load(args, "data", 18);
    if (!data.has_weights() && args.has("masses")) {
      const CsvTable masses = read_csv(args.get("masses"));
      data.set_weights(masses.values);
    }
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, data);
    expr.addLayer(PortalOp::SUM, data,
                  PortalFunc::gravity(1.0, args.num("eps", 1e-3)));
    expr.execute(config);
    Storage out = expr.getOutput();
    report(expr, timer.elapsed_s());
    if (args.has("verify")) print_verify_report(expr);
    if (args.has("out")) write_matrix(args.get("out"), out, false);
    return 0;
  }

  if (args.problem == "serve-bench") return run_serve_bench(args);
  if (args.problem == "index") return run_index(args);
  if (args.problem == "cache") return run_cache(args);

  usage(("unknown problem '" + args.problem + "'").c_str());
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  // Golden-table regeneration (tests/test_golden.cpp guards the output):
  // handled before problem dispatch because it takes no problem name.
  if (std::strncmp(argv[1], "--dump-golden", 13) == 0) {
    const char* eq = std::strchr(argv[1], '=');
    const std::string dir =
        eq != nullptr ? eq + 1 : (argc >= 3 ? argv[2] : ".");
    try {
      dump_golden_tables(dir);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "portal_cli: %s\n", e.what());
      return 2;
    }
    std::printf("wrote golden tables to %s/\n", dir.c_str());
    return 0;
  }
  Args args;
  args.problem = argv[1];
  int first_option = 2;
  if ((args.problem == "run" || args.problem == "verify" ||
       args.problem == "lint" || args.problem == "cache") &&
      argc >= 3 && std::strncmp(argv[2], "--", 2) != 0) {
    args.options["script"] = argv[2];
    first_option = 3;
  }
  for (int i = first_option; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) usage("options start with --");
    // --key=value form (required for optional-value flags like --trace).
    if (const char* eq = std::strchr(arg + 2, '=')) {
      args.options[std::string(arg + 2, eq)] = eq + 1;
      continue;
    }
    const std::string key = arg + 2;
    if (key == "validate" || key == "serial" || key == "verify" ||
        key == "no-verify-ir" || key == "trace" || key == "json" ||
        key == "werror" || key == "approx") {
      args.options[key] = "1";
    } else {
      if (i + 1 >= argc) usage(("--" + key + " needs a value").c_str());
      args.options[key] = argv[++i];
    }
  }

  const bool tracing = args.has("trace");
  if (tracing) obs::set_enabled(true);

  try {
    const int rc = run(args);
    if (tracing) {
      const obs::TraceReport trace = obs::collect();
      std::printf("-- trace --\n%s", trace.human_table().c_str());
      const std::string trace_path = args.get("trace");
      if (trace_path != "1" && !trace_path.empty()) {
        if (obs::write_chrome_trace(trace_path))
          std::printf("wrote Chrome trace to %s\n", trace_path.c_str());
        else
          std::fprintf(stderr, "portal_cli: cannot write trace to %s\n",
                       trace_path.c_str());
      }
    }
    return rc;
  } catch (const PortalDiagnosticError& e) {
    std::fprintf(stderr, "portal_cli: IR verification / analysis failed:\n");
    for (const Diagnostic& d : e.diagnostics())
      std::fprintf(stderr, "  %s\n", diagnostic_to_string(d).c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "portal_cli: %s\n", e.what());
    return 2;
  }
}
