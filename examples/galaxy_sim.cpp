// A small galaxy simulation driven by the Portal Barnes-Hut program: leapfrog
// (kick-drift-kick) integration with accelerations from
//
//   forall_q  sum_r  G m_q m_r (x_r - x_q) / (||x_r - x_q||^2 + eps^2)^{3/2}
//
// on the paper's elliptical particle distribution. Energy drift over the run
// is reported as the physics sanity check.
//
//   $ ./galaxy_sim [n_bodies [steps]]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/portal.h"
#include "data/generators.h"
#include "util/timer.h"

using namespace portal;

namespace {

/// Total energy = kinetic + potential (direct-sum potential on a sample for
/// large n would be the usual trick; n here is small enough to do it exactly).
double total_energy(const Dataset& pos, const std::vector<real_t>& vel,
                    const std::vector<real_t>& mass, real_t G, real_t eps) {
  const index_t n = pos.size();
  double kinetic = 0;
  for (index_t i = 0; i < n; ++i) {
    double v2 = 0;
    for (int d = 0; d < 3; ++d) v2 += vel[3 * i + d] * vel[3 * i + d];
    kinetic += 0.5 * mass[i] * v2;
  }
  double potential = 0;
#pragma omp parallel for reduction(- : potential) schedule(static)
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = i + 1; j < n; ++j) {
      double sq = eps * eps;
      for (int d = 0; d < 3; ++d) {
        const double diff = pos.coord(i, d) - pos.coord(j, d);
        sq += diff * diff;
      }
      potential -= G * mass[i] * mass[j] / std::sqrt(sq);
    }
  }
  return kinetic + potential;
}

} // namespace

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 4000;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 20;
  const real_t G = 1, eps = 0.01, dt = 1e-3, theta = 0.5;

  ParticleSet galaxy = make_elliptical(n, /*seed=*/42);
  std::vector<real_t> vel(3 * n, 0); // cold start: pure collapse

  std::printf("galaxy: %lld bodies, theta=%.2f, dt=%.0e, %d steps\n",
              static_cast<long long>(n), theta, dt, steps);
  const double e0 =
      total_energy(galaxy.positions, vel, galaxy.masses, G, eps);

  Timer timer;
  std::vector<real_t> accel(3 * n, 0);
  for (int step = 0; step <= steps; ++step) {
    // Portal supplies the accelerations each step.
    Storage bodies(galaxy.positions);
    bodies.set_weights(galaxy.masses);
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, bodies);
    expr.addLayer(PortalOp::SUM, bodies, PortalFunc::gravity(G, eps));
    PortalConfig config;
    config.theta = theta;
    expr.execute(config);
    Storage out = expr.getOutput();

    if (step == 0) {
      for (index_t i = 0; i < n; ++i)
        for (int d = 0; d < 3; ++d) accel[3 * i + d] = out.value(i, d);
    }
    // Leapfrog: kick (half), drift, then the next force evaluation closes the
    // kick. Here we fold it into: v += a*dt, x += v*dt (semi-implicit Euler
    // variant -- symplectic, adequate for a demo).
    for (index_t i = 0; i < n; ++i)
      for (int d = 0; d < 3; ++d) {
        vel[3 * i + d] += out.value(i, d) * dt;
        galaxy.positions.coord(i, d) += vel[3 * i + d] * dt;
      }
  }
  const double elapsed = timer.elapsed_s();

  const double e1 =
      total_energy(galaxy.positions, vel, galaxy.masses, G, eps);
  std::printf("ran %d steps in %.2fs (%.3fs/step)\n", steps, elapsed,
              elapsed / (steps + 1));
  std::printf("energy: %.6e -> %.6e (relative drift %.3e)\n", e0, e1,
              std::abs(e1 - e0) / std::abs(e0));
  return 0;
}
