// CSV-driven nearest-neighbor search tool built on the Portal public API.
//
//   $ ./knn_search [query.csv reference.csv [k]]
//
// Without arguments it generates two CSV files, runs the search, and writes
// neighbors.csv (one row per query: k neighbor indices then k distances).
// Demonstrates the Storage CSV path, config knobs, and the brute-force
// correctness program the compiler also emits.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/portal.h"
#include "data/generators.h"
#include "util/csv.h"
#include "util/timer.h"

using namespace portal;

namespace {

void write_demo_csv(const std::string& path, index_t n, index_t dim,
                    std::uint64_t seed) {
  const Dataset data = make_gaussian_mixture(n, dim, 5, seed);
  std::vector<real_t> rows(static_cast<std::size_t>(n) * dim);
  for (index_t i = 0; i < n; ++i)
    for (index_t d = 0; d < dim; ++d) rows[i * dim + d] = data.coord(i, d);
  write_csv(path, rows.data(), n, dim);
}

} // namespace

int main(int argc, char** argv) {
  std::string query_path = "demo_query.csv";
  std::string reference_path = "demo_reference.csv";
  index_t k = 8;

  if (argc >= 3) {
    query_path = argv[1];
    reference_path = argv[2];
    if (argc >= 4) k = std::atoll(argv[3]);
  } else {
    std::printf("no CSVs given; generating %s and %s\n", query_path.c_str(),
                reference_path.c_str());
    write_demo_csv(query_path, 3000, 6, 11);
    write_demo_csv(reference_path, 20000, 6, 12);
  }

  Storage query(query_path);
  Storage reference(reference_path);
  std::printf("query: %lld x %lld (%s), reference: %lld x %lld\n",
              static_cast<long long>(query.size()),
              static_cast<long long>(query.dim()),
              query.layout() == Layout::ColMajor ? "column-major" : "row-major",
              static_cast<long long>(reference.size()),
              static_cast<long long>(reference.dim()));

  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, query);
  expr.addLayer({PortalOp::KARGMIN, k}, reference, PortalFunc::EUCLIDEAN);

  PortalConfig config;
  config.leaf_size = 32;
  Timer timer;
  expr.execute(config);
  const double tree_time = expr.artifacts().tree_build_seconds;
  const double traversal_time = expr.artifacts().traversal_seconds;
  std::printf("tree build %.3fs, traversal %.3fs (engine %s)\n", tree_time,
              traversal_time, expr.artifacts().chosen_engine.c_str());

  Storage output = expr.getOutput();

  // Spot-check the first row against the compiler's brute-force program.
  Storage brute = expr.executeBruteForce();
  bool ok = true;
  for (index_t j = 0; j < k && ok; ++j)
    ok = std::abs(output.value(0, j) - brute.value(0, j)) < 1e-9;
  std::printf("brute-force spot check: %s\n", ok ? "ok" : "MISMATCH");

  // Emit neighbors.csv: indices then distances.
  std::vector<real_t> rows(static_cast<std::size_t>(output.rows()) * 2 * k);
  for (index_t i = 0; i < output.rows(); ++i) {
    for (index_t j = 0; j < k; ++j) {
      rows[i * 2 * k + j] = static_cast<real_t>(output.index_at(i, j));
      rows[i * 2 * k + k + j] = output.value(i, j);
    }
  }
  write_csv("neighbors.csv", rows.data(), output.rows(), 2 * k);
  std::printf("wrote neighbors.csv (%lld rows)\n",
              static_cast<long long>(output.rows()));
  return ok ? 0 : 1;
}
