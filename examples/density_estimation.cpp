// Kernel density estimation with Portal: the accuracy/performance knob.
//
//   $ ./density_estimation
//
// Runs the same KDE program across a tau sweep (the paper's user-controlled
// approximation threshold, Sec. II-B) and reports runtime, how much of the
// work the approximation generator eliminated, and the realized error against
// tau = 0 -- the trade-off Portal exposes to domain scientists.
#include <cmath>
#include <cstdio>

#include "core/portal.h"
#include "data/generators.h"
#include "util/timer.h"

using namespace portal;

int main() {
  Storage data(make_gaussian_mixture(30000, 3, 6, /*seed=*/7));
  const real_t sigma = 0.8;

  std::printf("KDE over %lld points, Gaussian sigma = %.2f\n\n",
              static_cast<long long>(data.size()), sigma);
  std::printf("%-10s %-10s %-14s %-14s %-12s\n", "tau", "time(s)", "base cases",
              "prunes", "max |err|");

  std::vector<real_t> exact;
  for (const real_t tau : {0.0, 1e-6, 1e-4, 1e-2, 1e-1}) {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, data);
    expr.addLayer(PortalOp::SUM, data, PortalFunc::gaussian(sigma));
    PortalConfig config;
    config.tau = tau;
    Timer timer;
    expr.execute(config);
    const double elapsed = timer.elapsed_s();
    Storage output = expr.getOutput();

    real_t max_err = 0;
    if (exact.empty()) {
      exact.resize(output.rows());
      for (index_t i = 0; i < output.rows(); ++i) exact[i] = output.value(i);
    } else {
      for (index_t i = 0; i < output.rows(); ++i)
        max_err = std::max(max_err, std::abs(output.value(i) - exact[i]));
    }

    std::printf("%-10.0e %-10.3f %-14llu %-14llu %-12.3e\n", tau, elapsed,
                static_cast<unsigned long long>(expr.stats().base_cases),
                static_cast<unsigned long long>(expr.stats().prunes), max_err);
  }

  std::printf("\nLarger tau => more node pairs replaced by their center\n"
              "contribution (ComputeApprox), bounded error growth.\n");
  return 0;
}
