// k-NN classification with Portal: the KARGMIN layer plus a native
// majority vote -- the machine-learning workload the paper's introduction
// motivates ("k-nearest neighbors ... from big data and machine learning").
//
//   $ ./knn_classifier
//
// Trains nothing (k-NN is lazy); classifies a held-out split of a labeled
// mixture and reports accuracy against the generating labels, sweeping k.
#include <cstdio>
#include <vector>

#include "core/portal.h"
#include "data/generators.h"
#include "util/timer.h"

using namespace portal;

int main() {
  const index_t n_train = 20000, n_test = 4000, classes = 5, dim = 6;
  // One labeled mixture, split into train/test (same class geometry).
  const LabeledDataset all =
      make_labeled_mixture(n_train + n_test, dim, classes, 8);
  Dataset train_data(n_train, dim, all.points.layout());
  Dataset test_data(n_test, dim, all.points.layout());
  std::vector<int> train_labels(n_train), test_labels(n_test);
  for (index_t i = 0; i < n_train; ++i) {
    train_labels[i] = all.labels[i];
    for (index_t d = 0; d < dim; ++d)
      train_data.coord(i, d) = all.points.coord(i, d);
  }
  for (index_t i = 0; i < n_test; ++i) {
    test_labels[i] = all.labels[n_train + i];
    for (index_t d = 0; d < dim; ++d)
      test_data.coord(i, d) = all.points.coord(n_train + i, d);
  }

  Storage train_points(train_data);
  Storage test_points(test_data);

  std::printf("k-NN classifier: %lld train / %lld test points, %lld classes, "
              "d=%lld\n\n",
              static_cast<long long>(n_train), static_cast<long long>(n_test),
              static_cast<long long>(classes), static_cast<long long>(dim));
  std::printf("%-6s %-10s %-10s\n", "k", "accuracy", "time(s)");

  for (const index_t k : {1, 3, 7, 15, 31}) {
    Timer timer;
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, test_points);
    expr.addLayer({PortalOp::KARGMIN, k}, train_points, PortalFunc::EUCLIDEAN);
    expr.execute();
    Storage neighbors = expr.getOutput();

    // Majority vote over the k neighbor labels (native code).
    index_t correct = 0;
    std::vector<index_t> votes(classes);
    for (index_t i = 0; i < n_test; ++i) {
      std::fill(votes.begin(), votes.end(), 0);
      for (index_t j = 0; j < k; ++j)
        ++votes[train_labels[neighbors.index_at(i, j)]];
      index_t best = 0;
      for (index_t c = 1; c < classes; ++c)
        if (votes[c] > votes[best]) best = c;
      if (best == test_labels[i]) ++correct;
    }
    std::printf("%-6lld %-10.3f %-10.3f\n", static_cast<long long>(k),
                static_cast<double>(correct) / n_test, timer.elapsed_s());
  }

  std::printf("\n(the 13-line Portal program supplies the neighbors; the vote "
              "is 12 lines of native C++)\n");
  return 0;
}
