// Portal quickstart: the paper's 13-line k-nearest-neighbors program
// (code 1), run on synthetic data.
//
//   $ ./quickstart
//
// Writes the five nearest neighbors of the first few query points to stdout.
#include <cstdio>

#include "core/portal.h"
#include "data/generators.h"

int main() {
  using namespace portal;

  // Two clustered point sets standing in for query/reference CSV files.
  Storage query(make_gaussian_mixture(2000, 3, 4, /*seed=*/1));
  Storage reference(make_gaussian_mixture(10000, 3, 4, /*seed=*/2));

  // ---- the Portal program (paper code 1) ----------------------------------
  const index_t k = 5;
  PortalExpr expr;
  expr.addLayer(PortalOp::FORALL, query);
  expr.addLayer({PortalOp::KARGMIN, k}, reference, PortalFunc::EUCLIDEAN);
  expr.execute();
  Storage output = expr.getOutput();
  // --------------------------------------------------------------------------

  std::printf("Portal k-NN (k=%lld) over %lld x %lld points\n",
              static_cast<long long>(k), static_cast<long long>(query.size()),
              static_cast<long long>(reference.size()));
  std::printf("engine: %s | %s\n", expr.artifacts().chosen_engine.c_str(),
              expr.artifacts().problem_description.c_str());
  std::printf("node pairs visited: %llu, pruned: %llu, base cases: %llu\n\n",
              static_cast<unsigned long long>(expr.stats().pairs_visited),
              static_cast<unsigned long long>(expr.stats().prunes),
              static_cast<unsigned long long>(expr.stats().base_cases));

  for (index_t i = 0; i < 5; ++i) {
    std::printf("query %lld:", static_cast<long long>(i));
    for (index_t j = 0; j < k; ++j)
      std::printf("  #%lld (d=%.4f)", static_cast<long long>(output.index_at(i, j)),
                  output.value(i, j));
    std::printf("\n");
  }
  return 0;
}
