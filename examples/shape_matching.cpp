// Shape matching with Portal: given a noisy, shifted copy of a 3-D point
// cloud, (a) measure how far apart the clouds are (Hausdorff layers), and
// (b) recover the translation by averaging nearest-neighbor displacement
// vectors (one ICP step built from the k-NN layers) -- the computational
// geometry flavor of N-body problem the paper's conclusion points at.
//
//   $ ./shape_matching
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/portal.h"
#include "data/generators.h"
#include "util/rng.h"

using namespace portal;

int main() {
  const index_t n = 6000;
  // Shift below the mean nearest-neighbor spacing (~0.07 for 6000 points in
  // this ellipsoid): translation-only ICP is a local method and needs the
  // initial correspondences to be mostly right.
  const real_t true_shift[3] = {0.05, -0.035, 0.025};
  const real_t noise = 0.01;

  // Model cloud and its transformed scan.
  const ParticleSet model_set = make_elliptical(n, /*seed=*/3);
  Rng rng(4);
  std::vector<std::vector<real_t>> scan_points(n, std::vector<real_t>(3));
  for (index_t i = 0; i < n; ++i)
    for (int d = 0; d < 3; ++d)
      scan_points[i][d] = model_set.positions.coord(i, d) + true_shift[d] +
                          rng.normal(0, noise);
  Storage model(model_set.positions);
  Storage scan(Dataset::from_points(scan_points));

  // --- (a) Hausdorff distance between the clouds ---------------------------
  real_t directed[2];
  int slot = 0;
  for (const auto& [q, r] : {std::pair(&scan, &model), std::pair(&model, &scan)}) {
    PortalExpr expr;
    expr.addLayer(PortalOp::MAX, *q);
    expr.addLayer(PortalOp::MIN, *r, PortalFunc::EUCLIDEAN);
    expr.execute();
    directed[slot++] = expr.getOutput().scalar();
  }
  std::printf("clouds: %lld points each, true shift (%.2f, %.2f, %.2f)\n",
              static_cast<long long>(n), true_shift[0], true_shift[1],
              true_shift[2]);
  std::printf("Hausdorff: h(scan, model) = %.4f, h(model, scan) = %.4f\n",
              directed[0], directed[1]);

  // --- (b) translation-only ICP built from the k-NN layer ------------------
  // Each iteration matches every (shifted) scan point to its nearest model
  // point and moves the scan by the mean displacement; with a translation
  // this converges in a handful of rounds.
  real_t estimated[3] = {0, 0, 0};
  std::uint64_t total_pairs = 0, total_prunes = 0;
  std::vector<std::vector<real_t>> moved = scan_points;
  for (int iter = 0; iter < 20; ++iter) {
    Storage current(Dataset::from_points(moved));
    PortalExpr knn;
    knn.addLayer(PortalOp::FORALL, current);
    knn.addLayer(PortalOp::ARGMIN, model, PortalFunc::EUCLIDEAN);
    knn.execute();
    Storage matches = knn.getOutput();
    total_pairs += knn.stats().pairs_visited;
    total_prunes += knn.stats().prunes;

    real_t step[3] = {0, 0, 0};
    for (index_t i = 0; i < n; ++i) {
      const index_t match = matches.index_at(i);
      for (int d = 0; d < 3; ++d)
        step[d] += moved[i][d] - model.dataset().coord(match, d);
    }
    real_t magnitude = 0;
    for (int d = 0; d < 3; ++d) {
      step[d] /= static_cast<real_t>(n);
      estimated[d] += step[d];
      magnitude += step[d] * step[d];
    }
    for (index_t i = 0; i < n; ++i)
      for (int d = 0; d < 3; ++d) moved[i][d] -= step[d];
    if (std::sqrt(magnitude) < 1e-4) break;
  }

  real_t err = 0;
  for (int d = 0; d < 3; ++d) {
    const real_t diff = estimated[d] - true_shift[d];
    err += diff * diff;
  }
  std::printf("recovered shift (%.4f, %.4f, %.4f), error %.4f\n", estimated[0],
              estimated[1], estimated[2], std::sqrt(err));
  std::printf("traversal stats: %llu node pairs, %llu pruned\n",
              static_cast<unsigned long long>(total_pairs),
              static_cast<unsigned long long>(total_prunes));
  return std::sqrt(err) < 0.02 ? 0 : 1;
}
