// Gaussian-mixture clustering in the paper's EM style: the E-step N-body
// sub-problem (forall points x forall components, Gaussian kernel) runs
// through Portal; the iterative M-step logic is native C++ -- matching the
// paper's "30 lines of Portal code and 74 lines of native C++".
//
//   $ ./clustering_em
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/portal.h"
#include "data/generators.h"
#include "kernels/gaussian.h"

using namespace portal;

int main() {
  const index_t n = 6000, dim = 2, K = 3;
  const LabeledDataset truth = make_labeled_mixture(n, dim, K, /*seed=*/5);
  Storage points(truth.points);

  // Initial parameters: first K points as means, unit isotropic covariance.
  std::vector<real_t> means(K * dim);
  for (index_t k = 0; k < K; ++k)
    for (index_t d = 0; d < dim; ++d)
      means[k * dim + d] = truth.points.coord(k * (n / K), d);
  std::vector<real_t> weights(K, real_t(1) / K);
  real_t sigma = 2.0; // shared isotropic bandwidth, updated per iteration

  std::vector<real_t> resp(static_cast<std::size_t>(n) * K);
  std::printf("EM over %lld points, K=%lld\n", static_cast<long long>(n),
              static_cast<long long>(K));

  for (int iter = 0; iter < 12; ++iter) {
    // ---- E-step via Portal: joint kernel matrix points x components. ------
    Storage centers(Dataset::from_row_major(means.data(), K, dim));
    PortalExpr estep;
    estep.addLayer(PortalOp::FORALL, points);
    estep.addLayer(PortalOp::FORALL, centers, PortalFunc::gaussian(sigma));
    estep.execute();
    Storage joint = estep.getOutput();

    // Normalize into responsibilities (native code).
    double loglik = 0;
    for (index_t i = 0; i < n; ++i) {
      real_t denom = 0;
      for (index_t k = 0; k < K; ++k) denom += weights[k] * joint.value(i, k);
      denom = std::max(denom, real_t(1e-300));
      for (index_t k = 0; k < K; ++k)
        resp[i * K + k] = weights[k] * joint.value(i, k) / denom;
      loglik += std::log(denom);
    }

    // ---- M-step (native): update weights, means, shared sigma. -------------
    std::vector<real_t> nk(K, 0);
    std::vector<real_t> mu(K * dim, 0);
    for (index_t i = 0; i < n; ++i)
      for (index_t k = 0; k < K; ++k) {
        nk[k] += resp[i * K + k];
        for (index_t d = 0; d < dim; ++d)
          mu[k * dim + d] += resp[i * K + k] * truth.points.coord(i, d);
      }
    real_t var = 0;
    for (index_t k = 0; k < K; ++k) {
      weights[k] = nk[k] / n;
      for (index_t d = 0; d < dim; ++d) mu[k * dim + d] /= std::max(nk[k], real_t(1e-10));
    }
    for (index_t i = 0; i < n; ++i)
      for (index_t k = 0; k < K; ++k) {
        real_t sq = 0;
        for (index_t d = 0; d < dim; ++d) {
          const real_t diff = truth.points.coord(i, d) - mu[k * dim + d];
          sq += diff * diff;
        }
        var += resp[i * K + k] * sq;
      }
    means = mu;
    sigma = std::sqrt(std::max(var / (n * dim), real_t(1e-6)));
    std::printf("iter %2d: loglik %.2f, sigma %.3f, weights", iter, loglik, sigma);
    for (index_t k = 0; k < K; ++k) std::printf(" %.3f", weights[k]);
    std::printf("\n");
  }

  // Cluster-assignment accuracy against the generating labels (up to
  // permutation: report the best per-cluster majority share).
  index_t agree = 0;
  std::vector<std::vector<index_t>> confusion(K, std::vector<index_t>(K, 0));
  for (index_t i = 0; i < n; ++i) {
    index_t best = 0;
    for (index_t k = 1; k < K; ++k)
      if (resp[i * K + k] > resp[i * K + best]) best = k;
    ++confusion[best][truth.labels[i]];
  }
  for (index_t k = 0; k < K; ++k) {
    index_t best = 0;
    for (index_t c = 1; c < K; ++c)
      if (confusion[k][c] > confusion[k][best]) best = c;
    agree += confusion[k][best];
  }
  std::printf("cluster purity: %.1f%%\n", 100.0 * agree / n);
  return 0;
}
