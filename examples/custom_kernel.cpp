// Custom and external kernels (paper Sec. III-C, code 3): three ways to give
// Portal the science of the problem.
//
//   $ ./custom_kernel
#include <cmath>
#include <cstdio>

#include "core/portal.h"
#include "data/generators.h"

using namespace portal;

int main() {
  Storage query(make_gaussian_mixture(1000, 3, 3, 21));
  Storage reference(make_gaussian_mixture(5000, 3, 3, 22));

  // 1. Pre-defined metric (compiled + optimized, tree-accelerated).
  {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, query);
    expr.addLayer(PortalOp::ARGMIN, reference, PortalFunc::MANHATTAN);
    expr.execute();
    std::printf("[predefined] engine=%s, first NN distance %.4f\n",
                expr.artifacts().chosen_engine.c_str(),
                expr.getOutput().value(0));
  }

  // 2. User-written Expr kernel (code 3): same Euclidean distance spelled by
  //    hand; Portal recognizes the metric, classifies, prunes, and optimizes
  //    it exactly like the pre-defined one.
  {
    Var q;
    Var r;
    Expr EuclidDist = sqrt(pow(Expr(q) - Expr(r), 2));
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, q, query);
    expr.addLayer(PortalOp::ARGMIN, r, reference, EuclidDist);
    PortalConfig config;
    config.dump_ir = true;
    expr.execute(config);
    std::printf("[custom Expr] engine=%s, class=%s\n",
                expr.artifacts().chosen_engine.c_str(),
                category_name(expr.plan().category));
    std::printf("--- IR after strength reduction ---\n");
    for (const auto& [stage, dump] : expr.artifacts().stages)
      if (stage == "strength-reduction") std::printf("%s", dump.c_str());
  }

  // 3. External C++ kernel: full flexibility, no Portal optimization (the
  //    paper's escape hatch for library interop). A cosine-flavored
  //    dissimilarity no metric pattern covers:
  {
    PortalExpr expr;
    expr.addLayer(PortalOp::FORALL, query);
    expr.addLayer(
        PortalOp::ARGMIN, reference,
        [](const real_t* a, const real_t* b, index_t dim) {
          real_t dot = 0, na = 0, nb = 0;
          for (index_t d = 0; d < dim; ++d) {
            dot += a[d] * b[d];
            na += a[d] * a[d];
            nb += b[d] * b[d];
          }
          return real_t(1) - dot / std::sqrt(na * nb + real_t(1e-12));
        },
        "cosine");
    expr.execute();
    std::printf("[external C++] engine=%s, class=%s, NN cos-dist %.4f\n",
                expr.artifacts().chosen_engine.c_str(),
                category_name(expr.plan().category),
                expr.getOutput().value(0));
  }
  return 0;
}
