#!/usr/bin/env bash
# Snapshot the ablation bench trajectory into one machine-readable JSON file
# (schema portal-bench-v1; see bench/bench_common.h JsonReport).
#
#   usage: scripts/bench_snapshot.sh [BUILD_DIR] [OUT.json]
#
# Scale with PORTAL_BENCH_SCALE as usual (CI bench-smoke runs a tiny scale
# and uploads the file as a per-commit artifact so regressions leave a
# plottable trail; local full-scale runs feed EXPERIMENTS.md).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_ablation.json}"
BIN="$BUILD_DIR/bench/bench_ablation_engines"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (cmake --build $BUILD_DIR --target bench_ablation_engines)" >&2
  exit 1
fi

"$BIN" --json="$OUT"
