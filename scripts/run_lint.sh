#!/usr/bin/env bash
# clang-tidy gate over the production sources (src/ and tools/ -- tests and
# benches follow gtest/benchmark idioms the profile deliberately excludes).
# The check set lives in .clang-tidy; this script only supplies the file list
# and the compilation database, and promotes every enabled check to an error
# so CI fails on any finding.
#
# Usage: scripts/run_lint.sh [build-dir]
#   build-dir (default: build) must have been configured with
#   CMAKE_EXPORT_COMPILE_COMMANDS=ON (the top-level CMakeLists.txt always
#   sets it) so compile_commands.json exists.
# Env:
#   CLANG_TIDY  clang-tidy binary to use (default: clang-tidy)
#   LINT_JOBS   parallel clang-tidy processes (default: nproc)
set -euo pipefail

BUILD_DIR="${1:-build}"
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
JOBS="${LINT_JOBS:-$(nproc)}"

if ! command -v "$CLANG_TIDY" > /dev/null; then
  echo "error: $CLANG_TIDY not found (install clang-tidy or set CLANG_TIDY)" >&2
  exit 2
fi
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "error: $BUILD_DIR/compile_commands.json missing -- configure first:" >&2
  echo "  cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

cd "$(dirname "$0")/.."

# Production translation units only, from git so generated/builddir files
# never sneak in.
mapfile -t FILES < <(git ls-files 'src/*.cpp' 'tools/*.cpp')
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "error: no source files found (run from the repo checkout)" >&2
  exit 2
fi

echo "clang-tidy (${#FILES[@]} files, $JOBS jobs, warnings-as-errors)"
printf '%s\n' "${FILES[@]}" |
  xargs -P "$JOBS" -n 8 "$CLANG_TIDY" -p "$BUILD_DIR" --quiet \
    --warnings-as-errors='*'
echo "clang-tidy: clean"
