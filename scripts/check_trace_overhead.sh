#!/usr/bin/env bash
# Trace-overhead smoke check: runs bench_ablation_parallel with tracing off
# and with PORTAL_TRACE=1, best-of-N wall clock each, and fails if the traced
# run exceeds the budget (default 2%) plus a small absolute epsilon that
# absorbs scheduler noise at smoke scale.
#
# Usage: scripts/check_trace_overhead.sh [path-to-bench] [scale] [reps]
# Env:   PORTAL_OVERHEAD_BUDGET_PCT (default 2)
#        PORTAL_OVERHEAD_EPSILON_MS (default 150)
set -euo pipefail

BENCH="${1:-build/bench/bench_ablation_parallel}"
SCALE="${2:-0.05}"
REPS="${3:-5}"
BUDGET_PCT="${PORTAL_OVERHEAD_BUDGET_PCT:-2}"
EPSILON_MS="${PORTAL_OVERHEAD_EPSILON_MS:-150}"

if [[ ! -x "$BENCH" ]]; then
  echo "error: bench binary not found or not executable: $BENCH" >&2
  exit 2
fi

# Best-of-REPS wall time in nanoseconds for the given environment overrides.
best_ns() {
  local best=""
  for _ in $(seq "$REPS"); do
    local start end elapsed
    start=$(date +%s%N)
    env PORTAL_BENCH_SCALE="$SCALE" "$@" "$BENCH" > /dev/null
    end=$(date +%s%N)
    elapsed=$((end - start))
    if [[ -z "$best" || "$elapsed" -lt "$best" ]]; then best=$elapsed; fi
  done
  echo "$best"
}

# Warm-up run so first-touch costs (page cache, CPU governor) hit neither mode.
env PORTAL_BENCH_SCALE="$SCALE" "$BENCH" > /dev/null

off_ns=$(best_ns)
on_ns=$(best_ns PORTAL_TRACE=1)

# allowed = off * (1 + budget/100) + epsilon
allowed_ns=$((off_ns + off_ns * BUDGET_PCT / 100 + EPSILON_MS * 1000000))

printf 'tracing off : %d.%03d s (best of %s)\n' \
  $((off_ns / 1000000000)) $((off_ns / 1000000 % 1000)) "$REPS"
printf 'tracing on  : %d.%03d s (best of %s)\n' \
  $((on_ns / 1000000000)) $((on_ns / 1000000 % 1000)) "$REPS"
printf 'budget      : %s%% + %s ms => %d.%03d s allowed\n' \
  "$BUDGET_PCT" "$EPSILON_MS" \
  $((allowed_ns / 1000000000)) $((allowed_ns / 1000000 % 1000))

if [[ "$on_ns" -gt "$allowed_ns" ]]; then
  echo "FAIL: traced run exceeds the ${BUDGET_PCT}% overhead budget" >&2
  exit 1
fi
echo "OK: trace overhead within budget"
