// Portal -- Euclidean minimum spanning tree (paper Table III row 5; the paper
// marks it iterative: a Portal argmin layer inside a native Boruvka loop).
//
// The expert implementation is dual-tree Boruvka: each round finds, for every
// connected component, its shortest edge to a *different* component via a
// dual-tree nearest-foreign-neighbor search (prune conditions in Table III:
// identical-component nodes and distance-bound violations), then contracts.
// O(N log N) rounds-style complexity versus Prim's O(N^2) oracle.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "tree/kdtree.h"
#include "traversal/rules.h"
#include "util/common.h"

namespace portal {

struct EmstOptions {
  index_t leaf_size = kDefaultLeafSize;
  bool parallel = true;
  int task_depth = -1;
};

struct EmstEdge {
  index_t a = -1;
  index_t b = -1;
  real_t weight = 0; // Euclidean length

  bool operator<(const EmstEdge& other) const { return weight < other.weight; }
};

struct EmstResult {
  std::vector<EmstEdge> edges; // n - 1 edges, original point indexing
  real_t total_weight = 0;
  index_t boruvka_rounds = 0;
  TraversalStats stats; // accumulated over rounds
};

/// Prim's algorithm, O(N^2): the exact oracle.
EmstResult emst_bruteforce(const Dataset& data);

/// Dual-tree Boruvka.
EmstResult emst_expert(const Dataset& data, const EmstOptions& options);

} // namespace portal
