// Portal -- golden regression tables for the six Table-IV problems.
//
// One pinned-seed dataset pair, serial execution, fixed options: the exact
// numbers these produce are committed under tests/golden/*.csv and guarded
// by tests/test_golden.cpp. A legitimate behavior change regenerates them
// with `portal_cli --dump-golden=DIR`; anything else that moves the numbers
// is a regression the suite is designed to catch.
#pragma once

#include <string>
#include <vector>

#include "util/common.h"

namespace portal {

/// The RNG seed and shapes behind every golden table. Changing any of these
/// invalidates the committed CSVs -- regenerate them in the same commit.
inline constexpr std::uint64_t kGoldenSeed = 20260806ull;

struct GoldenTable {
  std::string name;           // CSV basename, e.g. "knn" -> knn.csv
  std::vector<real_t> values; // row-major rows x cols
  index_t rows = 0;
  index_t cols = 0;
  /// Columns holding integral identifiers (point indices, counts): compared
  /// exactly by the golden test; the rest compare within a small relative
  /// tolerance to absorb libm variation across platforms.
  std::vector<index_t> integer_cols;
};

/// Compute all six tables (k-NN, KDE, range search, EMST, two-point,
/// Hausdorff) on the pinned-seed datasets with serial options.
std::vector<GoldenTable> compute_golden_tables();

/// Write every table to `<dir>/<name>.csv` (CSV dialect of util/csv.h).
void dump_golden_tables(const std::string& dir);

} // namespace portal
