// Portal -- 2-point correlation (paper Table III row 8, validated in Sec. V-C
// against scikit-learn with 66-165x reported speedups).
//
//   sum_i sum_j I(||x_i - x_j|| < h),  counted here as *unordered distinct*
//   pairs (i < j), the convention correlation-function estimators use.
//
// A pruning problem with bulk accept/reject: node pairs entirely farther than
// h contribute 0, node pairs entirely closer contribute |Ni| * |Nj| without
// touching points. Self-pairs of the single tree are counted once via an
// index-ordering symmetry rule.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "tree/kdtree.h"
#include "traversal/rules.h"
#include "util/common.h"

namespace portal {

struct TwoPointOptions {
  real_t h = 1;
  index_t leaf_size = kDefaultLeafSize;
  bool parallel = true;
  int task_depth = -1;
  bool batch = true; // SIMD tile base cases over the tree's SoA mirror
};

struct TwoPointResult {
  std::uint64_t pairs = 0; // # unordered pairs (i < j) with d(i, j) < h
  TraversalStats stats;
};

TwoPointResult twopoint_bruteforce(const Dataset& data, real_t h);

TwoPointResult twopoint_expert(const Dataset& data, const TwoPointOptions& options);

} // namespace portal
