#include "problems/barneshut.h"

#include <cmath>
#include <stdexcept>

#include <omp.h>

#include "kernels/fastmath.h"
#include "problems/common.h"
#include "traversal/multitree.h"
#include "util/threading.h"

namespace portal {
namespace {

/// 1 / (d^2 + eps^2)^{3/2}, optionally through the strength-reduced
/// reciprocal square root (Sec. IV-E).
inline real_t inv_r3(real_t sq, real_t eps_sq, bool fast) {
  const real_t soft = sq + eps_sq;
  if (fast) {
    const real_t inv = fast_inv_sqrt(soft);
    return inv * inv * inv;
  }
  const real_t inv = real_t(1) / std::sqrt(soft);
  return inv * inv * inv;
}

class BarnesHutRules {
 public:
  BarnesHutRules(const Octree& tree, const BarnesHutOptions& options,
                 std::vector<real_t>& accel)
      : tree_(tree),
        theta_sq_(options.theta * options.theta),
        eps_sq_(options.softening * options.softening),
        fast_(options.fast_rsqrt),
        accel_(accel) {}

  /// Multipole acceptance in squared space: s^2 < theta^2 * dmin^2, where s
  /// is the *tight* bounding-box extent of the reference node -- the
  /// PASCAL-style metadata (min/max per node) the paper's traversal keeps.
  /// For clustered particles the tight extent is much smaller than the cubic
  /// cell side, so the dual tree accepts far earlier than a cell-side MAC at
  /// the same accuracy; this is the algorithmic edge behind the paper's
  /// Table V Barnes-Hut win. Accepted cells contribute their center of mass
  /// to every query body.
  bool prune_or_approx(index_t q, index_t r) {
    const OctreeNode& qnode = tree_.node(q);
    const OctreeNode& rnode = tree_.node(r);
    if (rnode.mass <= 0) return true; // empty cell contributes nothing
    const real_t dmin_sq = qnode.box.min_sq_dist(rnode.box);
    const real_t side = rnode.box.widest_extent();
    if (dmin_sq <= 0 || side * side >= theta_sq_ * dmin_sq) return false;

    for (index_t i = qnode.begin; i < qnode.end; ++i) {
      real_t x[3];
      for (int d = 0; d < 3; ++d) x[d] = tree_.positions().coord(i, d);
      real_t sq = 0;
      real_t delta[3];
      for (int d = 0; d < 3; ++d) {
        delta[d] = rnode.com[d] - x[d];
        sq += delta[d] * delta[d];
      }
      const real_t scale = rnode.mass * inv_r3(sq, eps_sq_, fast_);
      for (int d = 0; d < 3; ++d) accel_[3 * i + d] += scale * delta[d];
    }
    return true;
  }

  // No score(): approximation rules keep no bounds, so sibling ordering buys
  // nothing and the per-recursion sort would cost real time on 8-way nodes.

  void base_case(index_t q, index_t r) {
    const OctreeNode& qnode = tree_.node(q);
    const OctreeNode& rnode = tree_.node(r);
    const Dataset& pos = tree_.positions();
    const std::vector<real_t>& mass = tree_.masses();
    for (index_t i = qnode.begin; i < qnode.end; ++i) {
      real_t x[3];
      for (int d = 0; d < 3; ++d) x[d] = pos.coord(i, d);
      real_t ax = 0, ay = 0, az = 0;
      for (index_t j = rnode.begin; j < rnode.end; ++j) {
        if (j == i) continue; // self-interaction (same tree)
        const real_t dx = pos.coord(j, 0) - x[0];
        const real_t dy = pos.coord(j, 1) - x[1];
        const real_t dz = pos.coord(j, 2) - x[2];
        const real_t sq = dx * dx + dy * dy + dz * dz;
        const real_t scale = mass[j] * inv_r3(sq, eps_sq_, fast_);
        ax += scale * dx;
        ay += scale * dy;
        az += scale * dz;
      }
      accel_[3 * i + 0] += ax;
      accel_[3 * i + 1] += ay;
      accel_[3 * i + 2] += az;
    }
  }

 private:
  const Octree& tree_;
  real_t theta_sq_;
  real_t eps_sq_;
  bool fast_;
  std::vector<real_t>& accel_;
};

void validate(const Dataset& positions, const std::vector<real_t>& masses) {
  if (positions.dim() != 3)
    throw std::invalid_argument("barneshut: positions must be 3-D");
  if (static_cast<index_t>(masses.size()) != positions.size())
    throw std::invalid_argument("barneshut: masses/positions size mismatch");
}

} // namespace

BarnesHutResult bh_bruteforce(const Dataset& positions,
                              const std::vector<real_t>& masses, real_t G,
                              real_t softening) {
  validate(positions, masses);
  const index_t n = positions.size();
  const real_t eps_sq = softening * softening;
  BarnesHutResult result;
  result.accel.assign(3 * n, 0);

#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) {
    real_t x[3];
    for (int d = 0; d < 3; ++d) x[d] = positions.coord(i, d);
    real_t acc[3] = {0, 0, 0};
    for (index_t j = 0; j < n; ++j) {
      if (j == i) continue;
      real_t delta[3];
      real_t sq = 0;
      for (int d = 0; d < 3; ++d) {
        delta[d] = positions.coord(j, d) - x[d];
        sq += delta[d] * delta[d];
      }
      const real_t scale = masses[j] * inv_r3(sq, eps_sq, /*fast=*/false);
      for (int d = 0; d < 3; ++d) acc[d] += scale * delta[d];
    }
    for (int d = 0; d < 3; ++d) result.accel[3 * i + d] = G * acc[d];
  }
  return result;
}

BarnesHutResult bh_dualtree_permuted(const Octree& tree,
                                     const BarnesHutOptions& options) {
  BarnesHutResult result;
  result.accel.assign(3 * tree.positions().size(), 0);
  BarnesHutRules rules(tree, options, result.accel);
  TraversalOptions topt;
  topt.parallel = options.parallel;
  topt.task_depth = options.task_depth;
  // Octrees fan out 8 ways; opening only the wider node per visit keeps the
  // pair count near-linear instead of exploding into 64-way products.
  topt.split = SplitPolicy::Larger;
  result.stats = dual_traverse(tree, tree, rules, topt);
  if (options.G != 1)
    for (real_t& a : result.accel) a *= options.G;
  return result;
}

BarnesHutResult bh_expert(const Dataset& positions,
                          const std::vector<real_t>& masses,
                          const BarnesHutOptions& options) {
  validate(positions, masses);
  const Octree tree(positions, masses, options.leaf_size);
  BarnesHutResult permuted = bh_dualtree_permuted(tree, options);

  BarnesHutResult result;
  result.stats = permuted.stats;
  result.accel.assign(3 * positions.size(), 0);
  for (index_t i = 0; i < positions.size(); ++i)
    for (int d = 0; d < 3; ++d)
      result.accel[3 * tree.perm()[i] + d] = permuted.accel[3 * i + d];
  return result;
}

} // namespace portal
