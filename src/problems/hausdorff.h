// Portal -- Hausdorff distance (paper Table III row 3).
//
//   directed:  h(Q, R) = max_q min_r ||x_q - x_r||
//   symmetric: H(Q, R) = max(h(Q, R), h(R, Q))
//
// The inner min layer is exactly the 1-nearest-neighbor reduction, so the
// expert implementation reuses the dual-tree k-NN rules (prune condition in
// Table III: dmin(Nq, Nr) > per-node min-dist bound); the outer max is a
// parallel reduction over the per-query nearest distances.
#pragma once

#include "data/dataset.h"
#include "tree/kdtree.h"
#include "traversal/rules.h"
#include "util/common.h"

namespace portal {

struct HausdorffOptions {
  index_t leaf_size = kDefaultLeafSize;
  bool parallel = true;
  int task_depth = -1;
  bool batch = true; // rides on k-NN's batched base cases
};

struct HausdorffResult {
  real_t directed_qr = 0; // h(Q, R)
  real_t directed_rq = 0; // h(R, Q)
  real_t symmetric = 0;   // max of the two
  TraversalStats stats;   // combined over both directions
};

HausdorffResult hausdorff_bruteforce(const Dataset& a, const Dataset& b);

HausdorffResult hausdorff_expert(const Dataset& a, const Dataset& b,
                                 const HausdorffOptions& options);

} // namespace portal
