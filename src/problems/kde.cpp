#include "problems/kde.h"

#include <cmath>
#include <stdexcept>

#include <omp.h>

#include "kernels/batch.h"
#include "kernels/gaussian.h"
#include "obs/trace.h"
#include "problems/common.h"
#include "traversal/multitree.h"
#include "util/threading.h"

namespace portal {
namespace {

class KdeRules {
 public:
  KdeRules(const KdTree& qtree, const KdTree& rtree, const KdeOptions& options,
           std::vector<real_t>& densities)
      : qtree_(qtree),
        rtree_(rtree),
        kernel_(options.sigma),
        tau_(options.tau),
        densities_(densities),
        batch_(options.batch && !rtree.mirror().empty()),
        workspaces_(num_threads()) {
    const index_t max_leaf = rtree.stats().max_leaf_count;
    const index_t dim = qtree.data().dim();
    for (Workspace& ws : workspaces_) {
      ws.qpt.resize(dim);
      ws.center.resize(dim);
      ws.dists.resize(max_leaf);
    }
  }

  /// Approximation condition (Sec. II-C): K(dmin) - K(dmax) <= tau means all
  /// pairs between the nodes contribute nearly the same kernel value, so the
  /// pair is replaced by the center contribution scaled by node density.
  bool prune_or_approx(index_t q, index_t r) {
    const KdNode& qnode = qtree_.node(q);
    const KdNode& rnode = rtree_.node(r);
    const real_t dmin_sq = qnode.box.min_sq_dist(rnode.box);
    const real_t dmax_sq = qnode.box.max_sq_dist(rnode.box);
    const real_t kmax = kernel_.eval_sq(dmin_sq);
    const real_t kmin = kernel_.eval_sq(dmax_sq);
    if (kmax - kmin > tau_) return false;
    PORTAL_OBS_COUNT("rules/approximations", 1);

    // ComputeApprox: center kernel value times reference-node density, added
    // to every query point in Nq. Query ranges are task-disjoint, so the
    // writes need no synchronization.
    Workspace& ws = workspaces_[omp_get_thread_num()];
    qnode.box.center_point(ws.qpt.data());
    rnode.box.center_point(ws.center.data());
    real_t center_sq = 0;
    for (index_t d = 0; d < qtree_.data().dim(); ++d) {
      const real_t diff = ws.qpt[d] - ws.center[d];
      center_sq += diff * diff;
    }
    const real_t contribution =
        kernel_.eval_sq(center_sq) * static_cast<real_t>(rnode.count());
    for (index_t i = qnode.begin; i < qnode.end; ++i)
      densities_[i] += contribution;
    return true;
  }

  real_t score(index_t q, index_t r) {
    return qtree_.node(q).box.min_sq_dist(rtree_.node(r).box);
  }

  void base_case(index_t q, index_t r) {
    const KdNode& qnode = qtree_.node(q);
    const KdNode& rnode = rtree_.node(r);
    Workspace& ws = workspaces_[omp_get_thread_num()];
    const index_t rcount = rnode.count();
    for (index_t qi = qnode.begin; qi < qnode.end; ++qi) {
      qtree_.data().copy_point(qi, ws.qpt.data());
      real_t total = 0;
      if (batch_) {
        // Distances evaluate lane-parallel off the SoA mirror; the fused
        // exp-sum then runs in the same ascending-j order as the scalar
        // path, so the result is bitwise-identical.
        batch::sq_dists(rtree_.mirror().tile(rnode.begin, rcount),
                        ws.qpt.data(), ws.dists.data());
        batch::count_batch_tile(rcount);
        total += batch::gaussian_sq_sum(ws.dists.data(), rcount,
                                        kernel_.inv_two_sigma_sq());
      } else {
        sq_dists_to_range(rtree_.data(), rnode.begin, rnode.end, ws.qpt.data(),
                          ws.dists.data());
        batch::count_scalar_tail(rcount);
        for (index_t j = 0; j < rcount; ++j) total += kernel_.eval_sq(ws.dists[j]);
      }
      densities_[qi] += total;
    }
  }

 private:
  struct Workspace {
    std::vector<real_t> qpt;
    std::vector<real_t> center;
    std::vector<real_t> dists;
  };

  const KdTree& qtree_;
  const KdTree& rtree_;
  GaussianKernel kernel_;
  real_t tau_;
  std::vector<real_t>& densities_;
  bool batch_;
  std::vector<Workspace> workspaces_;
};

void validate(const Dataset& query, const Dataset& reference, real_t sigma) {
  if (query.dim() != reference.dim())
    throw std::invalid_argument("kde: query/reference dimensionality mismatch");
  if (sigma <= 0) throw std::invalid_argument("kde: sigma must be positive");
  if (reference.empty()) throw std::invalid_argument("kde: empty reference set");
}

} // namespace

KdeResult kde_bruteforce(const Dataset& query, const Dataset& reference,
                         real_t sigma, bool normalize) {
  validate(query, reference, sigma);
  const GaussianKernel kernel(sigma);
  const index_t nq = query.size();
  KdeResult result;
  result.densities.assign(nq, 0);

#pragma omp parallel
  {
    std::vector<real_t> qpt(query.dim());
    std::vector<real_t> dists(reference.size());
#pragma omp for schedule(static)
    for (index_t i = 0; i < nq; ++i) {
      query.copy_point(i, qpt.data());
      sq_dists_to_range(reference, 0, reference.size(), qpt.data(), dists.data());
      real_t total = 0;
      for (index_t j = 0; j < reference.size(); ++j)
        total += kernel.eval_sq(dists[j]);
      result.densities[i] = total;
    }
  }
  if (normalize) {
    const real_t norm = kernel.normalization(query.dim(), reference.size());
    for (real_t& d : result.densities) d *= norm;
  }
  return result;
}

KdeResult kde_dualtree_permuted(const KdTree& qtree, const KdTree& rtree,
                                const KdeOptions& options) {
  KdeResult result;
  result.densities.assign(qtree.data().size(), 0);
  KdeRules rules(qtree, rtree, options, result.densities);
  TraversalOptions topt;
  topt.parallel = options.parallel;
  topt.task_depth = options.task_depth;
  result.stats = dual_traverse(qtree, rtree, rules, topt);
  if (options.normalize) {
    const GaussianKernel kernel(options.sigma);
    const real_t norm =
        kernel.normalization(qtree.data().dim(), rtree.data().size());
    for (real_t& d : result.densities) d *= norm;
  }
  return result;
}

KdeResult kde_expert(const Dataset& query, const Dataset& reference,
                     const KdeOptions& options) {
  validate(query, reference, options.sigma);
  const KdTree qtree(query, options.leaf_size);
  const KdTree rtree(reference, options.leaf_size);
  KdeResult permuted = kde_dualtree_permuted(qtree, rtree, options);

  KdeResult result;
  result.stats = permuted.stats;
  result.densities.assign(query.size(), 0);
  for (index_t i = 0; i < query.size(); ++i)
    result.densities[qtree.perm()[i]] = permuted.densities[i];
  return result;
}

} // namespace portal
