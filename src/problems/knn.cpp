#include "problems/knn.h"

#include <cmath>
#include <stdexcept>

#include <omp.h>

#include "kernels/batch.h"
#include "problems/common.h"
#include "traversal/multitree.h"
#include "util/threading.h"

namespace portal {
namespace {

/// Per-thread scratch: a contiguous copy of the current query point plus a
/// distance buffer covering the largest reference leaf.
struct KnnWorkspace {
  std::vector<real_t> qpt;
  std::vector<real_t> dists;
};

/// Dual-tree k-NN rule set (Sec. II-C instantiated for argmin^k):
///   Prune: dmin(Nq, Nr) > B(Nq), where B(Nq) is the max over Nq's points of
///   their current k-th best distance, maintained per node and tightened
///   bottom-up as base cases improve leaf candidates.
/// Templated over the tree type (kd-tree or ball tree): the node bound
/// interface (`box.min_dist`, `box.min_sq_dist_point`) is all it needs --
/// the "plug and play with different trees" abstraction of Sec. II.
template <typename Tree>
class KnnRules {
 public:
  KnnRules(const Tree& qtree, const Tree& rtree, const KnnOptions& options,
           std::vector<real_t>& dists, std::vector<index_t>& ids)
      : qtree_(qtree),
        rtree_(rtree),
        options_(options),
        dists_(dists),
        ids_(ids),
        node_bounds_(qtree.num_nodes()),
        batch_(options.batch && !rtree.mirror().empty()),
        workspaces_(num_threads()) {
    const index_t max_leaf = rtree.stats().max_leaf_count;
    for (KnnWorkspace& ws : workspaces_) {
      ws.qpt.resize(qtree.data().dim());
      ws.dists.resize(max_leaf);
    }
  }

  bool prune_or_approx(index_t q, index_t r) {
    const real_t dmin =
        qtree_.node(q).box.min_dist(bound_metric(), rtree_.node(r).box);
    return dmin > node_bounds_[q].load();
  }

  real_t score(index_t q, index_t r) {
    return qtree_.node(q).box.min_dist(bound_metric(), rtree_.node(r).box);
  }

  void base_case(index_t q, index_t r) {
    const auto& qnode = qtree_.node(q);
    const auto& rnode = rtree_.node(r);
    KnnWorkspace& ws = workspaces_[omp_get_thread_num()];
    const index_t k = options_.k;
    const index_t rcount = rnode.count();

    real_t leaf_bound = 0;
    for (index_t qi = qnode.begin; qi < qnode.end; ++qi) {
      KnnList list(dists_.data() + qi * k, ids_.data() + qi * k, k);
      qtree_.data().copy_point(qi, ws.qpt.data());
      // Point-level prune before touching reference coordinates.
      const real_t point_min = point_box_min(ws.qpt.data(), rnode.box);
      if (point_min <= list.worst()) {
        // Batched flavor streams the SoA mirror tile (same dimension-outer
        // accumulation order as dists_to_range, so results are identical).
        if (batch_) {
          batch::dists(options_.metric, rtree_.mirror().tile(rnode.begin, rcount),
                       ws.qpt.data(), nullptr, nullptr, ws.dists.data());
          batch::count_batch_tile(rcount);
        } else {
          dists_to_range(options_.metric, rtree_.data(), rnode.begin, rnode.end,
                         ws.qpt.data(), ws.dists.data());
          batch::count_scalar_tail(rcount);
        }
        for (index_t j = 0; j < rcount; ++j)
          list.insert(ws.dists[j], rnode.begin + j);
      }
      leaf_bound = std::max(leaf_bound, list.worst());
    }

    // Tighten this leaf's bound, then propagate the (monotone decreasing)
    // max-of-children bound toward the root.
    node_bounds_[q].store_min(leaf_bound);
    index_t parent = qnode.parent;
    while (parent >= 0) {
      const auto& pnode = qtree_.node(parent);
      const real_t combined = std::max(node_bounds_[pnode.left].load(),
                                       node_bounds_[pnode.right].load());
      if (combined >= node_bounds_[parent].load()) break;
      node_bounds_[parent].store_min(combined);
      parent = pnode.parent;
    }
  }

 private:
  /// Pruning happens in the same space dists_to_range reports: squared L2 for
  /// the Euclidean family, plain distance otherwise.
  MetricKind bound_metric() const {
    return options_.metric == MetricKind::Euclidean ? MetricKind::SqEuclidean
                                                    : options_.metric;
  }

  template <typename Bound>
  real_t point_box_min(const real_t* qpt, const Bound& box) const {
    switch (options_.metric) {
      case MetricKind::Euclidean:
      case MetricKind::SqEuclidean:
        return box.min_sq_dist_point(qpt);
      default:
        // Conservative: skip point-level pruning for other metrics.
        return 0;
    }
  }

  const Tree& qtree_;
  const Tree& rtree_;
  const KnnOptions& options_;
  std::vector<real_t>& dists_;
  std::vector<index_t>& ids_;
  std::vector<AtomicBound> node_bounds_;
  bool batch_;
  std::vector<KnnWorkspace> workspaces_;
};

void validate(const Dataset& query, const Dataset& reference, index_t k) {
  if (query.dim() != reference.dim())
    throw std::invalid_argument("knn: query/reference dimensionality mismatch");
  if (k < 1 || k > reference.size())
    throw std::invalid_argument("knn: k must be in [1, reference.size()]");
  if (query.empty()) throw std::invalid_argument("knn: empty query set");
}

/// L2 results are computed squared; report plain Euclidean at the edge.
void finalize_distances(MetricKind metric, std::vector<real_t>& dists) {
  if (metric == MetricKind::Euclidean)
    for (real_t& d : dists) d = std::sqrt(d);
}

/// Tree-generic dual-tree k-NN core (results in permuted order).
template <typename Tree>
KnnResult run_knn_dualtree(const Tree& qtree, const Tree& rtree,
                           const KnnOptions& options) {
  const index_t nq = qtree.data().size();
  const index_t k = options.k;
  KnnResult result;
  result.k = k;
  result.indices.assign(nq * k, -1);
  result.distances.assign(nq * k, std::numeric_limits<real_t>::max());

  KnnRules<Tree> rules(qtree, rtree, options, result.distances, result.indices);
  TraversalOptions topt;
  topt.parallel = options.parallel;
  topt.task_depth = options.task_depth;
  result.stats = dual_traverse(qtree, rtree, rules, topt);
  finalize_distances(options.metric, result.distances);
  return result;
}

/// Un-permute a tree-order result: permuted row i describes original query
/// perm_q[i]; permuted reference id j is original perm_r[j].
KnnResult unpermute(const KnnResult& permuted, index_t nq, index_t k,
                    const std::vector<index_t>& perm_q,
                    const std::vector<index_t>& perm_r) {
  KnnResult result;
  result.k = k;
  result.stats = permuted.stats;
  result.indices.assign(nq * k, -1);
  result.distances.assign(nq * k, 0);
  for (index_t i = 0; i < nq; ++i) {
    const index_t original = perm_q[i];
    for (index_t j = 0; j < k; ++j) {
      result.distances[original * k + j] = permuted.distances[i * k + j];
      const index_t rid = permuted.indices[i * k + j];
      result.indices[original * k + j] = rid >= 0 ? perm_r[rid] : -1;
    }
  }
  return result;
}

} // namespace

KnnResult knn_bruteforce(const Dataset& query, const Dataset& reference,
                         index_t k, MetricKind metric) {
  validate(query, reference, k);
  const index_t nq = query.size();
  KnnResult result;
  result.k = k;
  result.indices.assign(nq * k, -1);
  result.distances.assign(nq * k, std::numeric_limits<real_t>::max());

#pragma omp parallel
  {
    std::vector<real_t> qpt(query.dim());
    std::vector<real_t> dists(reference.size());
#pragma omp for schedule(static)
    for (index_t i = 0; i < nq; ++i) {
      query.copy_point(i, qpt.data());
      dists_to_range(metric, reference, 0, reference.size(), qpt.data(),
                     dists.data());
      KnnList list(result.distances.data() + i * k, result.indices.data() + i * k,
                   k);
      for (index_t j = 0; j < reference.size(); ++j) list.insert(dists[j], j);
    }
  }
  finalize_distances(metric, result.distances);
  return result;
}

KnnResult knn_dualtree_permuted(const KdTree& qtree, const KdTree& rtree,
                                const KnnOptions& options) {
  return run_knn_dualtree(qtree, rtree, options);
}

KnnResult knn_expert(const Dataset& query, const Dataset& reference,
                     const KnnOptions& options) {
  validate(query, reference, options.k);
  const KdTree qtree(query, options.leaf_size);
  const KdTree rtree(reference, options.leaf_size);
  const KnnResult permuted = run_knn_dualtree(qtree, rtree, options);
  return unpermute(permuted, query.size(), options.k, qtree.perm(), rtree.perm());
}

KnnResult knn_expert_balltree(const Dataset& query, const Dataset& reference,
                              const KnnOptions& options) {
  validate(query, reference, options.k);
  const BallTree qtree(query, options.leaf_size);
  const BallTree rtree(reference, options.leaf_size);
  const KnnResult permuted = run_knn_dualtree(qtree, rtree, options);
  return unpermute(permuted, query.size(), options.k, qtree.perm(), rtree.perm());
}

} // namespace portal
