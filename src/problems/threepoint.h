// Portal -- 3-point correlation: the m = 3 instantiation of the generalized
// N-body form (paper Sec. II, eq. 2) and the working demonstration that
// Algorithm 1's PowerSet-Tuples recursion extends beyond the dual-tree case.
//
//   sum_{i<j<k} I(||x_i - x_j|| < h) I(||x_j - x_k|| < h) I(||x_i - x_k|| < h)
//
// counts unordered point triples that are pairwise closer than h -- the
// 3-point correlation function estimator of cosmology. Pruning: a node
// triple is discarded as soon as any pair of boxes is farther than h, and
// bulk-accepted (product of counts) when every pair of boxes is entirely
// within h.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "tree/kdtree.h"
#include "traversal/rules.h"
#include "util/common.h"

namespace portal {

struct ThreePointOptions {
  real_t h = 1;
  index_t leaf_size = kDefaultLeafSize;
};

struct ThreePointResult {
  std::uint64_t triples = 0; // unordered triples (i < j < k), all pairs < h
  TraversalStats stats;
};

ThreePointResult threepoint_bruteforce(const Dataset& data, real_t h);

/// Triple-tree (m = 3) traversal via multi_traverse.
ThreePointResult threepoint_expert(const Dataset& data,
                                   const ThreePointOptions& options);

} // namespace portal
