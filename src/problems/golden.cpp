#include "problems/golden.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "data/generators.h"
#include "problems/emst.h"
#include "problems/hausdorff.h"
#include "problems/kde.h"
#include "problems/knn.h"
#include "problems/range_search.h"
#include "problems/twopoint.h"
#include "util/csv.h"

namespace portal {
namespace {

constexpr index_t kGoldenLeafSize = 16;

/// Everything runs serial: deterministic accumulation order is the whole
/// point of a golden table. The batched base cases are bitwise-identical to
/// the scalar path, so they do not perturb these numbers either way -- and
/// CI proves that claim by running the golden suite twice, with
/// PORTAL_GOLDEN_BATCH=0 and =1, against the same committed tables.
template <typename Options>
Options serial_options() {
  Options options;
  options.leaf_size = kGoldenLeafSize;
  options.parallel = false;
  if constexpr (requires { options.batch; }) {
    if (const char* env = std::getenv("PORTAL_GOLDEN_BATCH"))
      options.batch = std::strcmp(env, "0") != 0;
  }
  return options;
}

GoldenTable golden_knn(const Dataset& query, const Dataset& reference) {
  auto options = serial_options<KnnOptions>();
  options.k = 4;
  options.metric = MetricKind::Euclidean;
  const KnnResult knn = knn_expert(query, reference, options);

  GoldenTable table;
  table.name = "knn";
  table.rows = query.size();
  table.cols = 2 * options.k; // [idx_0..idx_3, dist_0..dist_3] per query
  for (index_t j = 0; j < options.k; ++j) table.integer_cols.push_back(j);
  table.values.reserve(static_cast<std::size_t>(table.rows) * table.cols);
  for (index_t i = 0; i < query.size(); ++i) {
    for (index_t j = 0; j < options.k; ++j)
      table.values.push_back(static_cast<real_t>(knn.indices[i * options.k + j]));
    for (index_t j = 0; j < options.k; ++j)
      table.values.push_back(knn.distances[i * options.k + j]);
  }
  return table;
}

GoldenTable golden_kde(const Dataset& query, const Dataset& reference) {
  auto options = serial_options<KdeOptions>();
  options.sigma = real_t(0.7);
  options.tau = real_t(1e-4);
  options.normalize = true;
  const KdeResult kde = kde_expert(query, reference, options);

  GoldenTable table;
  table.name = "kde";
  table.rows = query.size();
  table.cols = 1;
  table.values = kde.densities;
  return table;
}

GoldenTable golden_range_search(const Dataset& query, const Dataset& reference) {
  auto options = serial_options<RangeSearchOptions>();
  options.h_lo = real_t(0.2);
  options.h_hi = real_t(1.1);
  options.sort_neighbors = true;
  const RangeSearchResult rs = range_search_expert(query, reference, options);

  // CSR flattened to (query, neighbor) pairs -- rectangular, and already
  // deterministic because neighbors are sorted per query.
  GoldenTable table;
  table.name = "range_search";
  table.cols = 2;
  table.integer_cols = {0, 1};
  for (index_t i = 0; i < query.size(); ++i)
    for (index_t o = rs.offsets[i]; o < rs.offsets[i + 1]; ++o) {
      table.values.push_back(static_cast<real_t>(i));
      table.values.push_back(static_cast<real_t>(rs.neighbors[o]));
    }
  table.rows = static_cast<index_t>(table.values.size()) / 2;
  return table;
}

GoldenTable golden_emst(const Dataset& data) {
  const EmstResult mst = emst_expert(data, serial_options<EmstOptions>());

  // Canonical edge order: endpoints normalized a < b, rows sorted by
  // (weight, a, b). The MST of a generic-position dataset is unique, so this
  // is stable across any correct implementation.
  std::vector<EmstEdge> edges = mst.edges;
  for (EmstEdge& e : edges)
    if (e.a > e.b) std::swap(e.a, e.b);
  std::sort(edges.begin(), edges.end(), [](const EmstEdge& x, const EmstEdge& y) {
    if (x.weight != y.weight) return x.weight < y.weight;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });

  GoldenTable table;
  table.name = "emst";
  table.rows = static_cast<index_t>(edges.size());
  table.cols = 3; // [a, b, weight]
  table.integer_cols = {0, 1};
  for (const EmstEdge& e : edges) {
    table.values.push_back(static_cast<real_t>(e.a));
    table.values.push_back(static_cast<real_t>(e.b));
    table.values.push_back(e.weight);
  }
  return table;
}

GoldenTable golden_twopoint(const Dataset& data) {
  auto options = serial_options<TwoPointOptions>();
  options.h = real_t(0.9);
  const TwoPointResult tp = twopoint_expert(data, options);

  GoldenTable table;
  table.name = "twopoint";
  table.rows = 1;
  table.cols = 1;
  table.integer_cols = {0};
  table.values.push_back(static_cast<real_t>(tp.pairs));
  return table;
}

GoldenTable golden_hausdorff(const Dataset& query, const Dataset& reference) {
  const HausdorffResult h =
      hausdorff_expert(query, reference, serial_options<HausdorffOptions>());

  GoldenTable table;
  table.name = "hausdorff";
  table.rows = 1;
  table.cols = 3; // [directed_qr, directed_rq, symmetric]
  table.values = {h.directed_qr, h.directed_rq, h.symmetric};
  return table;
}

} // namespace

std::vector<GoldenTable> compute_golden_tables() {
  // Two gaussian-mixture clouds; self-join problems (EMST, two-point) run on
  // the query cloud. Sizes are deliberately non-multiples of the leaf size
  // so the traversals end in ragged tiles.
  const Dataset query = make_gaussian_mixture(123, 3, 3, kGoldenSeed);
  const Dataset reference = make_gaussian_mixture(157, 3, 3, kGoldenSeed + 1);

  std::vector<GoldenTable> tables;
  tables.push_back(golden_knn(query, reference));
  tables.push_back(golden_kde(query, reference));
  tables.push_back(golden_range_search(query, reference));
  tables.push_back(golden_emst(query));
  tables.push_back(golden_twopoint(query));
  tables.push_back(golden_hausdorff(query, reference));
  return tables;
}

void dump_golden_tables(const std::string& dir) {
  for (const GoldenTable& table : compute_golden_tables())
    write_csv(dir + "/" + table.name + ".csv", table.values.data(), table.rows,
              table.cols);
}

} // namespace portal
