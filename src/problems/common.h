// Portal -- shared building blocks for the hand-optimized ("expert" / PASCAL)
// problem implementations and for the Portal-generated pattern kernels.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "data/dataset.h"
#include "kernels/metrics.h"
#include "util/common.h"

namespace portal {

/// Squared-L2 distances from one query point to a contiguous range of
/// reference points, written into out[0 .. rend-rbegin).
///
/// This is the kernel the paper's layout policy exists for (Sec. IV-F):
///   column-major (d <= 4): dimension-outer / point-inner loops; the compiler
///     vectorizes across *points* reading contiguous dimension slices;
///   row-major: point-outer / dimension-inner; the inner per-dimension loop
///     vectorizes for large d.
/// `qpt` must be a dim-contiguous copy of the query point (callers keep a
/// small per-thread buffer).
inline void sq_dists_to_range(const Dataset& rdata, index_t rbegin, index_t rend,
                              const real_t* qpt, real_t* out) {
  const index_t count = rend - rbegin;
  const index_t dim = rdata.dim();
  if (rdata.layout() == Layout::ColMajor) {
    for (index_t j = 0; j < count; ++j) out[j] = 0;
    for (index_t d = 0; d < dim; ++d) {
      const real_t* slice = rdata.col_ptr(d) + rbegin;
      const real_t q = qpt[d];
      for (index_t j = 0; j < count; ++j) {
        const real_t diff = slice[j] - q;
        out[j] += diff * diff;
      }
    }
  } else {
    for (index_t j = 0; j < count; ++j) {
      const real_t* r = rdata.row_ptr(rbegin + j);
      real_t total = 0;
      for (index_t d = 0; d < dim; ++d) {
        const real_t diff = r[d] - qpt[d];
        total += diff * diff;
      }
      out[j] = total;
    }
  }
}

/// Same shape for the L1 metric.
inline void l1_dists_to_range(const Dataset& rdata, index_t rbegin, index_t rend,
                              const real_t* qpt, real_t* out) {
  const index_t count = rend - rbegin;
  const index_t dim = rdata.dim();
  if (rdata.layout() == Layout::ColMajor) {
    for (index_t j = 0; j < count; ++j) out[j] = 0;
    for (index_t d = 0; d < dim; ++d) {
      const real_t* slice = rdata.col_ptr(d) + rbegin;
      const real_t q = qpt[d];
      for (index_t j = 0; j < count; ++j) out[j] += std::abs(slice[j] - q);
    }
  } else {
    for (index_t j = 0; j < count; ++j) {
      const real_t* r = rdata.row_ptr(rbegin + j);
      real_t total = 0;
      for (index_t d = 0; d < dim; ++d) total += std::abs(r[d] - qpt[d]);
      out[j] = total;
    }
  }
}

/// Same shape for the Linf metric.
inline void linf_dists_to_range(const Dataset& rdata, index_t rbegin, index_t rend,
                                const real_t* qpt, real_t* out) {
  const index_t count = rend - rbegin;
  const index_t dim = rdata.dim();
  if (rdata.layout() == Layout::ColMajor) {
    for (index_t j = 0; j < count; ++j) out[j] = 0;
    for (index_t d = 0; d < dim; ++d) {
      const real_t* slice = rdata.col_ptr(d) + rbegin;
      const real_t q = qpt[d];
      for (index_t j = 0; j < count; ++j)
        out[j] = std::max(out[j], std::abs(slice[j] - q));
    }
  } else {
    for (index_t j = 0; j < count; ++j) {
      const real_t* r = rdata.row_ptr(rbegin + j);
      real_t best = 0;
      for (index_t d = 0; d < dim; ++d)
        best = std::max(best, std::abs(r[d] - qpt[d]));
      out[j] = best;
    }
  }
}

/// Metric-generic dispatch of the range helpers; distances come back in the
/// metric's natural space (squared for SqEuclidean).
inline void dists_to_range(MetricKind kind, const Dataset& rdata, index_t rbegin,
                           index_t rend, const real_t* qpt, real_t* out) {
  switch (kind) {
    case MetricKind::SqEuclidean:
    case MetricKind::Euclidean: // callers square-compare; sqrt at the edge
      sq_dists_to_range(rdata, rbegin, rend, qpt, out);
      return;
    case MetricKind::Manhattan:
      l1_dists_to_range(rdata, rbegin, rend, qpt, out);
      return;
    case MetricKind::Chebyshev:
      linf_dists_to_range(rdata, rbegin, rend, qpt, out);
      return;
    case MetricKind::Mahalanobis:
      break; // needs a context; callers use MahalanobisContext directly
  }
  throw std::invalid_argument("dists_to_range: unsupported metric");
}

/// Monotonically-decreasing atomic bound used for per-node pruning state.
/// Relaxed ordering is sufficient: a stale (larger) bound only reduces
/// pruning, never correctness.
class AtomicBound {
 public:
  AtomicBound() : value_(std::numeric_limits<real_t>::max()) {}
  AtomicBound(const AtomicBound& other)
      : value_(other.value_.load(std::memory_order_relaxed)) {}

  real_t load() const { return value_.load(std::memory_order_relaxed); }

  /// Lower the bound to `candidate` if it is smaller (CAS loop).
  void store_min(real_t candidate) {
    real_t current = value_.load(std::memory_order_relaxed);
    while (candidate < current &&
           !value_.compare_exchange_weak(current, candidate,
                                         std::memory_order_relaxed)) {
    }
  }

  /// Unconditional store (used when recomputing a leaf bound exactly, which
  /// only happens from the single task owning that leaf).
  void store(real_t value) { value_.store(value, std::memory_order_relaxed); }

 private:
  std::atomic<real_t> value_;
};

/// Fixed-capacity sorted candidate list for k-reductions (paper Sec. IV-F:
/// "an ordered array of size k" keeps the minimum distances sorted so each
/// update costs few comparisons). Ascending order; worst() is the pruning
/// threshold.
class KnnList {
 public:
  KnnList(real_t* dists, index_t* ids, index_t k) : dists_(dists), ids_(ids), k_(k) {}

  /// Initialize to +inf / -1 sentinels.
  void reset() {
    for (index_t i = 0; i < k_; ++i) {
      dists_[i] = std::numeric_limits<real_t>::max();
      ids_[i] = -1;
    }
  }

  real_t worst() const { return dists_[k_ - 1]; }

  /// Insert (dist, id) if it beats the current worst; keeps ascending order.
  void insert(real_t dist, index_t id) {
    if (dist >= dists_[k_ - 1]) return;
    index_t pos = k_ - 1;
    while (pos > 0 && dists_[pos - 1] > dist) {
      dists_[pos] = dists_[pos - 1];
      ids_[pos] = ids_[pos - 1];
      --pos;
    }
    dists_[pos] = dist;
    ids_[pos] = id;
  }

 private:
  real_t* dists_;
  index_t* ids_;
  index_t k_;
};

/// Scratch buffer sized for the largest leaf; one per thread.
inline constexpr index_t kMaxLeafScratch = 4096;

} // namespace portal
