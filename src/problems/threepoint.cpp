#include "problems/threepoint.h"

#include <stdexcept>
#include <vector>

#include "problems/common.h"
#include "traversal/multitree.h"

namespace portal {
namespace {

/// m = 3 rule set for multi_traverse. Node ranges in one tree are either
/// equal or disjoint, so ordering nodes by their begin offset and counting
/// only ordered-range tuples counts every unordered triple exactly once.
class ThreePointRules {
 public:
  ThreePointRules(const KdTree& tree, real_t h)
      : tree_(tree), h_sq_(h * h) {
    qpt_.resize(tree.data().dim());
    mid_.resize(tree.data().dim());
    dists_.resize(tree.stats().max_leaf_count);
    dists2_.resize(tree.stats().max_leaf_count);
  }

  std::uint64_t triples() const { return triples_; }

  bool prune_or_approx(const std::vector<index_t>& nodes) {
    const KdNode& a = tree_.node(nodes[0]);
    const KdNode& b = tree_.node(nodes[1]);
    const KdNode& c = tree_.node(nodes[2]);

    // Canonical ordering: ranges must be non-decreasing by begin; mirrored
    // orderings are handled by their canonical representative.
    if (b.begin < a.begin || c.begin < b.begin) return true;

    // Distance prune: any pair of boxes farther than h kills the triple.
    if (a.box.min_sq_dist(b.box) >= h_sq_ ||
        a.box.min_sq_dist(c.box) >= h_sq_ ||
        b.box.min_sq_dist(c.box) >= h_sq_)
      return true;

    // Bulk accept: every pair of boxes entirely within h.
    if (a.box.max_sq_dist(b.box) < h_sq_ && a.box.max_sq_dist(c.box) < h_sq_ &&
        b.box.max_sq_dist(c.box) < h_sq_) {
      triples_ += combination_count(a, b, c);
      return true;
    }
    return false;
  }

  void base_case(const std::vector<index_t>& nodes) {
    const KdNode& a = tree_.node(nodes[0]);
    const KdNode& b = tree_.node(nodes[1]);
    const KdNode& c = tree_.node(nodes[2]);
    // Enumerate i < j < k within the (equal-or-disjoint) leaf ranges.
    for (index_t i = a.begin; i < a.end; ++i) {
      tree_.data().copy_point(i, qpt_.data());
      const index_t j_begin = std::max(b.begin, i + 1);
      if (j_begin >= b.end) continue;
      sq_dists_to_range(tree_.data(), j_begin, b.end, qpt_.data(), dists_.data());
      for (index_t j = j_begin; j < b.end; ++j) {
        if (dists_[j - j_begin] >= h_sq_) continue;
        tree_.data().copy_point(j, mid_.data());
        const index_t k_begin = std::max(c.begin, j + 1);
        if (k_begin >= c.end) continue;
        sq_dists_to_range(tree_.data(), k_begin, c.end, mid_.data(),
                          dists2_.data());
        for (index_t k = k_begin; k < c.end; ++k) {
          if (dists2_[k - k_begin] >= h_sq_) continue;
          // i-k distance check closes the triangle.
          real_t sq = 0;
          for (index_t d = 0; d < tree_.data().dim(); ++d) {
            const real_t diff = qpt_[d] - tree_.data().coord(k, d);
            sq += diff * diff;
          }
          if (sq < h_sq_) ++triples_;
        }
      }
    }
  }

 private:
  /// Ordered-tuple count for a fully-accepted node triple: the number of
  /// (i < j < k) selections across the three (equal-or-disjoint) ranges.
  std::uint64_t combination_count(const KdNode& a, const KdNode& b,
                                  const KdNode& c) const {
    const auto n = [](const KdNode& x) {
      return static_cast<std::uint64_t>(x.count());
    };
    const bool ab = a.begin == b.begin;
    const bool bc = b.begin == c.begin;
    if (ab && bc) return n(a) * (n(a) - 1) * (n(a) - 2) / 6; // C(n, 3)
    if (ab) return n(a) * (n(a) - 1) / 2 * n(c);             // C(n,2) * m
    if (bc) return n(a) * (n(b) * (n(b) - 1) / 2);           // m * C(n,2)
    return n(a) * n(b) * n(c); // three disjoint ranges in order
  }

  const KdTree& tree_;
  real_t h_sq_;
  std::uint64_t triples_ = 0;
  std::vector<real_t> qpt_, mid_, dists_, dists2_;
};

} // namespace

ThreePointResult threepoint_bruteforce(const Dataset& data, real_t h) {
  if (h <= 0) throw std::invalid_argument("threepoint: h must be positive");
  const real_t h_sq = h * h;
  const index_t n = data.size();
  std::uint64_t triples = 0;

  std::vector<real_t> pi(data.dim()), pj(data.dim()), pk(data.dim());
  const auto sq = [&](const std::vector<real_t>& x, const std::vector<real_t>& y) {
    real_t total = 0;
    for (index_t d = 0; d < data.dim(); ++d)
      total += (x[d] - y[d]) * (x[d] - y[d]);
    return total;
  };
  for (index_t i = 0; i < n; ++i) {
    data.copy_point(i, pi.data());
    for (index_t j = i + 1; j < n; ++j) {
      data.copy_point(j, pj.data());
      if (sq(pi, pj) >= h_sq) continue;
      for (index_t k = j + 1; k < n; ++k) {
        data.copy_point(k, pk.data());
        if (sq(pj, pk) < h_sq && sq(pi, pk) < h_sq) ++triples;
      }
    }
  }
  ThreePointResult result;
  result.triples = triples;
  return result;
}

ThreePointResult threepoint_expert(const Dataset& data,
                                   const ThreePointOptions& options) {
  if (options.h <= 0) throw std::invalid_argument("threepoint: h must be positive");
  const KdTree tree(data, options.leaf_size);
  ThreePointRules rules(tree, options.h);
  ThreePointResult result;
  result.stats = multi_traverse<KdTree>({&tree, &tree, &tree}, rules);
  result.triples = rules.triples();
  return result;
}

} // namespace portal
