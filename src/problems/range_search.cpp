#include "problems/range_search.h"

#include <algorithm>
#include <stdexcept>

#include <omp.h>

#include "kernels/batch.h"
#include "problems/common.h"
#include "traversal/multitree.h"
#include "util/threading.h"

namespace portal {
namespace {

class RangeRules {
 public:
  RangeRules(const KdTree& qtree, const KdTree& rtree,
             const RangeSearchOptions& options,
             std::vector<std::vector<index_t>>& lists)
      : qtree_(qtree),
        rtree_(rtree),
        lo_sq_(options.h_lo * options.h_lo),
        hi_sq_(options.h_hi * options.h_hi),
        lists_(lists),
        batch_(options.batch && !rtree.mirror().empty()),
        workspaces_(num_threads()) {
    const index_t max_leaf = rtree.stats().max_leaf_count;
    for (Workspace& ws : workspaces_) {
      ws.qpt.resize(qtree.data().dim());
      ws.dists.resize(max_leaf);
    }
  }

  bool prune_or_approx(index_t q, index_t r) {
    const KdNode& qnode = qtree_.node(q);
    const KdNode& rnode = rtree_.node(r);
    const real_t dmin_sq = qnode.box.min_sq_dist(rnode.box);
    const real_t dmax_sq = qnode.box.max_sq_dist(rnode.box);

    // Entirely outside the annulus: discard.
    if (dmin_sq >= hi_sq_ || dmax_sq <= lo_sq_) return true;

    // Entirely inside: bulk-accept every cross pair without distance work.
    if (dmin_sq > lo_sq_ && dmax_sq < hi_sq_) {
      for (index_t qi = qnode.begin; qi < qnode.end; ++qi) {
        std::vector<index_t>& list = lists_[qi];
        for (index_t rj = rnode.begin; rj < rnode.end; ++rj) list.push_back(rj);
      }
      return true;
    }
    return false;
  }

  void base_case(index_t q, index_t r) {
    const KdNode& qnode = qtree_.node(q);
    const KdNode& rnode = rtree_.node(r);
    Workspace& ws = workspaces_[omp_get_thread_num()];
    const index_t rcount = rnode.count();
    for (index_t qi = qnode.begin; qi < qnode.end; ++qi) {
      qtree_.data().copy_point(qi, ws.qpt.data());
      if (batch_) {
        batch::sq_dists(rtree_.mirror().tile(rnode.begin, rcount),
                        ws.qpt.data(), ws.dists.data());
        batch::count_batch_tile(rcount);
      } else {
        sq_dists_to_range(rtree_.data(), rnode.begin, rnode.end, ws.qpt.data(),
                          ws.dists.data());
        batch::count_scalar_tail(rcount);
      }
      std::vector<index_t>& list = lists_[qi];
      for (index_t j = 0; j < rcount; ++j)
        if (ws.dists[j] > lo_sq_ && ws.dists[j] < hi_sq_)
          list.push_back(rnode.begin + j);
    }
  }

 private:
  struct Workspace {
    std::vector<real_t> qpt;
    std::vector<real_t> dists;
  };

  const KdTree& qtree_;
  const KdTree& rtree_;
  real_t lo_sq_;
  real_t hi_sq_;
  std::vector<std::vector<index_t>>& lists_;
  bool batch_;
  std::vector<Workspace> workspaces_;
};

void validate(const Dataset& query, const Dataset& reference, real_t h_lo,
              real_t h_hi) {
  if (query.dim() != reference.dim())
    throw std::invalid_argument("range_search: dimensionality mismatch");
  if (h_lo < 0 || h_hi <= h_lo)
    throw std::invalid_argument("range_search: need 0 <= h_lo < h_hi");
}

RangeSearchResult pack_lists(std::vector<std::vector<index_t>>& lists,
                             bool sort_lists) {
  RangeSearchResult result;
  result.offsets.resize(lists.size() + 1);
  result.offsets[0] = 0;
  for (std::size_t i = 0; i < lists.size(); ++i)
    result.offsets[i + 1] = result.offsets[i] + static_cast<index_t>(lists[i].size());
  result.neighbors.reserve(result.offsets.back());
  for (std::vector<index_t>& list : lists) {
    if (sort_lists) std::sort(list.begin(), list.end());
    result.neighbors.insert(result.neighbors.end(), list.begin(), list.end());
  }
  return result;
}

} // namespace

RangeSearchResult range_search_bruteforce(const Dataset& query,
                                          const Dataset& reference, real_t h_lo,
                                          real_t h_hi) {
  validate(query, reference, h_lo, h_hi);
  const index_t nq = query.size();
  const real_t lo_sq = h_lo * h_lo;
  const real_t hi_sq = h_hi * h_hi;
  std::vector<std::vector<index_t>> lists(nq);

#pragma omp parallel
  {
    std::vector<real_t> qpt(query.dim());
    std::vector<real_t> dists(reference.size());
#pragma omp for schedule(static)
    for (index_t i = 0; i < nq; ++i) {
      query.copy_point(i, qpt.data());
      sq_dists_to_range(reference, 0, reference.size(), qpt.data(), dists.data());
      for (index_t j = 0; j < reference.size(); ++j)
        if (dists[j] > lo_sq && dists[j] < hi_sq) lists[i].push_back(j);
    }
  }
  return pack_lists(lists, /*sort_lists=*/true);
}

RangeSearchResult range_search_expert(const Dataset& query,
                                      const Dataset& reference,
                                      const RangeSearchOptions& options) {
  validate(query, reference, options.h_lo, options.h_hi);
  const KdTree qtree(query, options.leaf_size);
  const KdTree rtree(reference, options.leaf_size);

  std::vector<std::vector<index_t>> lists(query.size());
  RangeRules rules(qtree, rtree, options, lists);
  TraversalOptions topt;
  topt.parallel = options.parallel;
  topt.task_depth = options.task_depth;
  const TraversalStats stats = dual_traverse(qtree, rtree, rules, topt);

  // Un-permute: list of permuted query i belongs to original perm()[i]; the
  // stored reference ids are permuted, map through rtree.perm().
  std::vector<std::vector<index_t>> original(query.size());
  for (index_t i = 0; i < query.size(); ++i) {
    std::vector<index_t>& list = lists[i];
    for (index_t& id : list) id = rtree.perm()[id];
    original[qtree.perm()[i]] = std::move(list);
  }
  RangeSearchResult result = pack_lists(original, options.sort_neighbors);
  result.stats = stats;
  return result;
}

} // namespace portal
