// Portal -- kernel density estimation (paper Table III row 4, Fig. 3).
//
//   forall_q  sum_r  K_sigma(||x_q - x_r||)
//
// KDE is the paper's flagship *approximation* problem: the contribution of a
// reference node whose kernel value varies less than tau across the node pair
// is replaced by its center contribution times the node's density
// (ComputeApprox, Sec. II-C). tau is the user-facing accuracy/performance
// knob.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "tree/kdtree.h"
#include "traversal/rules.h"
#include "util/common.h"

namespace portal {

struct KdeOptions {
  real_t sigma = 1;       // Gaussian bandwidth
  real_t tau = 1e-3;      // approximation threshold on the unnormalized kernel
  index_t leaf_size = kDefaultLeafSize;
  bool normalize = true;  // apply (2 pi sigma^2)^{-d/2} / N at the end
  bool parallel = true;
  int task_depth = -1;
  bool batch = true;     // SIMD tile base cases over the tree's SoA mirror
};

struct KdeResult {
  /// densities[i]: estimated density at query point i (original order).
  std::vector<real_t> densities;
  TraversalStats stats;
};

/// Exact KDE by brute force (the tau -> 0 oracle). Parallel over queries.
KdeResult kde_bruteforce(const Dataset& query, const Dataset& reference,
                         real_t sigma, bool normalize = true);

/// Dual-tree approximate KDE. Per-query absolute error on the unnormalized
/// kernel sum is bounded by tau * reference.size().
KdeResult kde_expert(const Dataset& query, const Dataset& reference,
                     const KdeOptions& options);

/// Tree-order variant for the Portal executor (densities in permuted order).
KdeResult kde_dualtree_permuted(const KdTree& qtree, const KdTree& rtree,
                                const KdeOptions& options);

} // namespace portal
