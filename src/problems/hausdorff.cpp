#include "problems/hausdorff.h"

#include <algorithm>
#include <cmath>

#include "problems/knn.h"

namespace portal {
namespace {

real_t max_of(const std::vector<real_t>& values) {
  real_t best = 0;
  for (real_t v : values) best = std::max(best, v);
  return best;
}

} // namespace

HausdorffResult hausdorff_bruteforce(const Dataset& a, const Dataset& b) {
  HausdorffResult result;
  const KnnResult ab = knn_bruteforce(a, b, 1);
  const KnnResult ba = knn_bruteforce(b, a, 1);
  result.directed_qr = max_of(ab.distances);
  result.directed_rq = max_of(ba.distances);
  result.symmetric = std::max(result.directed_qr, result.directed_rq);
  return result;
}

HausdorffResult hausdorff_expert(const Dataset& a, const Dataset& b,
                                 const HausdorffOptions& options) {
  KnnOptions knn;
  knn.k = 1;
  knn.leaf_size = options.leaf_size;
  knn.parallel = options.parallel;
  knn.task_depth = options.task_depth;
  knn.batch = options.batch; // tile evaluation happens in the k-NN base cases

  HausdorffResult result;
  const KnnResult ab = knn_expert(a, b, knn);
  const KnnResult ba = knn_expert(b, a, knn);
  result.directed_qr = max_of(ab.distances);
  result.directed_rq = max_of(ba.distances);
  result.symmetric = std::max(result.directed_qr, result.directed_rq);
  result.stats = ab.stats;
  result.stats += ba.stats;
  return result;
}

} // namespace portal
