// Portal -- Barnes-Hut gravitational force computation (paper Table III last
// row; validated in Sec. V-C against the FDPS framework, where the paper's
// dual-tree traversal beats FDPS's per-particle tree walk by ~70%).
//
//   forall_q  sum_r  G m_q m_r (x_r - x_q) / (||x_r - x_q||^2 + eps^2)^{3/2}
//
// An approximation problem: a reference cell far enough away (multipole
// acceptance criterion s/d < theta) is replaced by its center of mass --
// exactly the paper's ComputeApprox "center contribution times node density"
// with mass playing the density role.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "tree/octree.h"
#include "traversal/rules.h"
#include "util/common.h"

namespace portal {

struct BarnesHutOptions {
  real_t theta = 0.5;       // multipole acceptance: cell_side / dist < theta
  real_t G = 1;             // gravitational constant
  real_t softening = 1e-3;  // Plummer softening eps
  index_t leaf_size = 16;
  bool parallel = true;
  int task_depth = -1;
  /// Strength-reduced reciprocal-sqrt path (paper Sec. IV-E); exact std::sqrt
  /// when false -- the accuracy knob the paper exposes.
  bool fast_rsqrt = false;
};

struct BarnesHutResult {
  /// accel[3*i + d]: acceleration of body i (original order) along axis d.
  std::vector<real_t> accel;
  TraversalStats stats;
};

/// Direct O(N^2) summation oracle. Parallel over bodies.
BarnesHutResult bh_bruteforce(const Dataset& positions,
                              const std::vector<real_t>& masses, real_t G = 1,
                              real_t softening = 1e-3);

/// Dual-tree Barnes-Hut over an octree (the Portal/expert algorithm).
BarnesHutResult bh_expert(const Dataset& positions,
                          const std::vector<real_t>& masses,
                          const BarnesHutOptions& options);

/// Variant over a pre-built tree, results in permuted order (Portal executor).
BarnesHutResult bh_dualtree_permuted(const Octree& tree,
                                     const BarnesHutOptions& options);

} // namespace portal
