// Portal -- k-nearest neighbors (paper Table III row 1).
//
//   forall_q  argmin^k_r  ||x_q - x_r||
//
// `knn_expert` is the hand-optimized PASCAL-style dual-tree implementation
// used as the Table IV baseline; `knn_bruteforce` is the O(N^2) oracle the
// compiler also emits for correctness checks (Sec. IV).
#pragma once

#include "data/dataset.h"
#include "kernels/metrics.h"
#include "tree/kdtree.h"
#include "traversal/rules.h"
#include "util/common.h"

#include <vector>

namespace portal {

struct KnnOptions {
  index_t k = 1;
  index_t leaf_size = kDefaultLeafSize;
  MetricKind metric = MetricKind::Euclidean;
  bool parallel = true;
  int task_depth = -1; // -1: derive from thread count
  bool batch = true;   // SIMD tile base cases over the tree's SoA mirror
};

struct KnnResult {
  index_t k = 0;
  /// Row-major n x k: indices[i*k + j] is query i's j-th nearest reference
  /// point (original reference indexing), distances ascending per row.
  std::vector<index_t> indices;
  std::vector<real_t> distances; // metric distances (L2 un-squared)
  TraversalStats stats;
};

/// Exact k-NN by brute force; oracle for tests and the Table V-style
/// asymptotic comparisons. Parallel over queries.
KnnResult knn_bruteforce(const Dataset& query, const Dataset& reference,
                         index_t k, MetricKind metric = MetricKind::Euclidean);

/// Exact k-NN by dual-tree traversal with per-node descending bounds.
KnnResult knn_expert(const Dataset& query, const Dataset& reference,
                     const KnnOptions& options);

/// Same algorithm over ball trees instead of kd-trees -- the Sec. II
/// "plug and play with different trees" abstraction in action. Ball bounds
/// stay tight in high dimensions where boxes go vacuous.
KnnResult knn_expert_balltree(const Dataset& query, const Dataset& reference,
                              const KnnOptions& options);

/// Dual-tree k-NN over pre-built trees (shared by the Portal executor, which
/// owns tree construction). Results are in *permuted* (tree) order;
/// `knn_expert` wraps this and un-permutes.
KnnResult knn_dualtree_permuted(const KdTree& qtree, const KdTree& rtree,
                                const KnnOptions& options);

} // namespace portal
