// Portal -- Gaussian naive Bayes classifier (paper Table III row 9; validated
// in Sec. V-C against MLPACK with 15-47x reported speedups).
//
//   forall_n  argmax_k  pi_k N(x_n | mu_k, Sigma_k),   Sigma_k diagonal
//
// (Table III writes the reduction as argmin over the negative log-posterior;
// the two are the same decision rule.) Training fits per-class priors, means,
// and per-dimension variances; prediction is the N-body layer pair
// (points x classes). The expert path folds the per-class constants out of
// the loop and parallelizes over points -- the optimization + parallelism
// combination the paper credits for the gap to MLPACK.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "util/common.h"

namespace portal {

struct NbcModel {
  index_t num_classes = 0;
  index_t dim = 0;
  std::vector<real_t> priors;    // K
  std::vector<real_t> means;     // K x d row-major
  std::vector<real_t> variances; // K x d row-major (diagonal covariance)
};

/// Fit the model by maximum likelihood. `var_floor` keeps degenerate
/// dimensions positive. Labels must lie in [0, num_classes).
NbcModel nbc_train(const Dataset& points, const std::vector<int>& labels,
                   index_t num_classes, real_t var_floor = 1e-9);

/// Straightforward per-point prediction (single-threaded, no precomputation):
/// the oracle and the "library-grade" reference.
std::vector<int> nbc_predict_bruteforce(const NbcModel& model, const Dataset& data);

/// Optimized prediction: per-class constants hoisted, inner loops shaped for
/// auto-vectorization, OpenMP over points.
std::vector<int> nbc_predict_expert(const NbcModel& model, const Dataset& data,
                                    bool parallel = true);

/// Per-point joint log-likelihoods log(pi_k N(x|...)), n x K row-major;
/// exposed for the Portal executor, which applies its own argmax layer.
std::vector<real_t> nbc_joint_log_likelihood(const NbcModel& model,
                                             const Dataset& data);

} // namespace portal
