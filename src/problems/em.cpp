#include "problems/em.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include <omp.h>

#include "kernels/gaussian.h"
#include "kernels/linalg.h"
#include "kernels/metrics.h"
#include "util/rng.h"

namespace portal {
namespace {

/// Per-component frozen parameters for one E-step.
struct Component {
  std::vector<real_t> mean;
  MahalanobisContext ctx; // Cholesky of covariance + eig bounds
  real_t log_weight = 0;

  Component(std::vector<real_t> mu, std::vector<real_t> cov, index_t dim,
            real_t weight)
      : mean(std::move(mu)), ctx(std::move(cov), dim), log_weight(std::log(weight)) {}
};

/// log(pi_k N(x | mu_k, Sigma_k)) for every k, then normalized
/// responsibilities via log-sum-exp. Returns the point's log-likelihood.
real_t point_responsibilities(const real_t* x, const std::vector<Component>& comps,
                              real_t* scratch, real_t* log_terms, real_t* resp) {
  const index_t K = static_cast<index_t>(comps.size());
  real_t max_term = -std::numeric_limits<real_t>::max();
  for (index_t k = 0; k < K; ++k) {
    log_terms[k] = comps[k].log_weight +
                   log_gaussian_pdf(x, comps[k].mean.data(), comps[k].ctx, scratch);
    max_term = std::max(max_term, log_terms[k]);
  }
  real_t sum = 0;
  for (index_t k = 0; k < K; ++k) sum += std::exp(log_terms[k] - max_term);
  const real_t log_norm = max_term + std::log(sum);
  for (index_t k = 0; k < K; ++k) resp[k] = std::exp(log_terms[k] - log_norm);
  return log_norm;
}

/// Initial parameters: K distinct random data points as means, the global
/// covariance for every component, uniform weights. Deterministic per seed.
void initialize(const Dataset& data, const EmOptions& options, EmResult* state) {
  const index_t n = data.size();
  const index_t d = data.dim();
  const index_t K = options.num_components;
  Rng rng(options.seed);

  state->num_components = K;
  state->weights.assign(K, real_t(1) / static_cast<real_t>(K));
  state->means.assign(K * d, 0);
  std::vector<index_t> picks;
  while (static_cast<index_t>(picks.size()) < K) {
    const index_t candidate = static_cast<index_t>(rng.uniform_index(n));
    if (std::find(picks.begin(), picks.end(), candidate) == picks.end())
      picks.push_back(candidate);
  }
  for (index_t k = 0; k < K; ++k)
    for (index_t dd = 0; dd < d; ++dd)
      state->means[k * d + dd] = data.coord(picks[k], dd);

  const std::vector<real_t> mean = column_mean(data);
  const std::vector<real_t> cov = covariance(data, mean, options.jitter);
  state->covs.assign(K, cov);
}

/// Standard M-step from responsibilities.
void m_step(const Dataset& data, const std::vector<real_t>& resp, real_t jitter,
            EmResult* state) {
  const index_t n = data.size();
  const index_t d = data.dim();
  const index_t K = state->num_components;

  std::vector<real_t> nk(K, 0);
  std::vector<real_t> mu(K * d, 0);
  for (index_t i = 0; i < n; ++i)
    for (index_t k = 0; k < K; ++k) {
      const real_t r = resp[i * K + k];
      nk[k] += r;
      for (index_t dd = 0; dd < d; ++dd)
        mu[k * d + dd] += r * data.coord(i, dd);
    }
  for (index_t k = 0; k < K; ++k) {
    const real_t denom = std::max(nk[k], real_t(1e-10));
    for (index_t dd = 0; dd < d; ++dd) mu[k * d + dd] /= denom;
  }

  std::vector<std::vector<real_t>> covs(
      K, std::vector<real_t>(static_cast<std::size_t>(d) * d, 0));
  std::vector<real_t> diff(d);
  for (index_t i = 0; i < n; ++i)
    for (index_t k = 0; k < K; ++k) {
      const real_t r = resp[i * K + k];
      if (r < 1e-12) continue;
      for (index_t dd = 0; dd < d; ++dd)
        diff[dd] = data.coord(i, dd) - mu[k * d + dd];
      std::vector<real_t>& cov = covs[k];
      for (index_t a = 0; a < d; ++a)
        for (index_t b = 0; b <= a; ++b) cov[a * d + b] += r * diff[a] * diff[b];
    }
  for (index_t k = 0; k < K; ++k) {
    const real_t denom = std::max(nk[k], real_t(1e-10));
    std::vector<real_t>& cov = covs[k];
    for (index_t a = 0; a < d; ++a)
      for (index_t b = 0; b <= a; ++b) {
        cov[a * d + b] /= denom;
        cov[b * d + a] = cov[a * d + b];
      }
    for (index_t dd = 0; dd < d; ++dd) cov[dd * d + dd] += jitter;
    state->weights[k] = nk[k] / static_cast<real_t>(n);
  }
  state->means = std::move(mu);
  state->covs = std::move(covs);
}

std::vector<Component> freeze_components(const EmResult& state, index_t d) {
  std::vector<Component> comps;
  comps.reserve(state.num_components);
  for (index_t k = 0; k < state.num_components; ++k) {
    std::vector<real_t> mu(state.means.begin() + k * d,
                           state.means.begin() + (k + 1) * d);
    comps.emplace_back(std::move(mu), state.covs[k], d,
                       std::max(state.weights[k], real_t(1e-300)));
  }
  return comps;
}

/// Tree E-step: recursive descent with per-node responsibility bounds.
class TreeEStep {
 public:
  TreeEStep(const KdTree& tree, const std::vector<Component>& comps, real_t tau,
            std::vector<real_t>& resp, bool parallel)
      : tree_(tree),
        comps_(comps),
        tau_(tau),
        resp_(resp),
        parallel_(parallel),
        K_(static_cast<index_t>(comps.size())),
        dim_(tree.data().dim()) {}

  real_t run() {
    loglik_ = 0;
    if (parallel_) {
#pragma omp parallel
#pragma omp single nowait
      recurse(tree_.root_index());
    } else {
      recurse(tree_.root_index());
    }
    return loglik_;
  }

  std::uint64_t approx_nodes() const { return approx_nodes_; }
  std::uint64_t exact_points() const { return exact_points_; }

 private:
  struct Buffers {
    std::vector<real_t> scratch;   // 2*dim for forward substitution
    std::vector<real_t> log_terms; // K
    std::vector<real_t> resp;      // K
    std::vector<real_t> x;         // dim
    std::vector<real_t> lo;        // K log-term lower bounds
    std::vector<real_t> hi;        // K log-term upper bounds

    explicit Buffers(index_t dim, index_t K)
        : scratch(2 * dim), log_terms(K), resp(K), x(dim), lo(K), hi(K) {}
  };

  /// Responsibility bounds over a node's bounding box; true if the node can
  /// be approximated by its center responsibilities within tau.
  ///
  /// The Mahalanobis norm is sqrt(eig_max(Sigma^{-1}))-Lipschitz in x, so over
  /// a box with half-diagonal rho it stays within +-sqrt(eig_max)*rho of its
  /// value at the box center. That radius shrinks with the box, which is what
  /// lets deep nodes pass the tau test (a plain eig_min*dmin / eig_max*dmax
  /// sandwich never converges when the covariance is anisotropic).
  bool node_within_tau(const KdNode& node, Buffers& buf) {
    if (tau_ <= 0) return false;
    node.box.center_point(buf.x.data());
    const real_t half_diag = std::sqrt(node.box.sq_diagonal()) / 2;
    for (index_t k = 0; k < K_; ++k) {
      const Component& c = comps_[k];
      const real_t center_maha_sq =
          c.ctx.sq_dist(buf.x.data(), c.mean.data(), buf.scratch.data());
      const real_t center_maha = std::sqrt(std::max(center_maha_sq, real_t(0)));
      const real_t radius = std::sqrt(c.ctx.eig_max()) * half_diag;
      const real_t norm_lo = std::max(center_maha - radius, real_t(0));
      const real_t norm_hi = center_maha + radius;
      const real_t base = c.log_weight -
                          real_t(0.5) * (static_cast<real_t>(dim_) * std::log(kTwoPi) +
                                         c.ctx.log_det());
      buf.hi[k] = base - real_t(0.5) * norm_lo * norm_lo;
      buf.lo[k] = base - real_t(0.5) * norm_hi * norm_hi;
    }
    // r_k bounds: numerator at its extreme vs. competitors at the opposite.
    real_t worst_gap = 0;
    for (index_t k = 0; k < K_; ++k) {
      real_t denom_hi = std::exp(buf.hi[k]);
      real_t denom_lo = std::exp(buf.lo[k]);
      real_t others_lo = 0, others_hi = 0;
      for (index_t j = 0; j < K_; ++j) {
        if (j == k) continue;
        others_lo += std::exp(buf.lo[j]);
        others_hi += std::exp(buf.hi[j]);
      }
      const real_t r_hi =
          denom_hi > 0 ? denom_hi / (denom_hi + others_lo) : real_t(0);
      const real_t r_lo =
          denom_lo > 0 ? denom_lo / (denom_lo + others_hi) : real_t(0);
      worst_gap = std::max(worst_gap, r_hi - r_lo);
      if (worst_gap > tau_) return false;
    }
    return true;
  }

  void apply_center(const KdNode& node, Buffers& buf) {
    node.box.center_point(buf.x.data());
    const real_t log_norm = point_responsibilities(
        buf.x.data(), comps_, buf.scratch.data(), buf.log_terms.data(),
        buf.resp.data());
    for (index_t i = node.begin; i < node.end; ++i)
      for (index_t k = 0; k < K_; ++k) resp_[i * K_ + k] = buf.resp[k];
#pragma omp atomic
    loglik_ += log_norm * static_cast<real_t>(node.count());
#pragma omp atomic
    approx_nodes_ += 1;
  }

  void exact_leaf(const KdNode& node, Buffers& buf) {
    real_t local = 0;
    for (index_t i = node.begin; i < node.end; ++i) {
      tree_.data().copy_point(i, buf.x.data());
      local += point_responsibilities(buf.x.data(), comps_, buf.scratch.data(),
                                      buf.log_terms.data(), &resp_[i * K_]);
    }
#pragma omp atomic
    loglik_ += local;
#pragma omp atomic
    exact_points_ += static_cast<std::uint64_t>(node.count());
  }

  void recurse(index_t node_index) {
    const KdNode& node = tree_.node(node_index);
    Buffers buf(dim_, K_);
    if (node_within_tau(node, buf)) {
      apply_center(node, buf);
      return;
    }
    if (node.is_leaf()) {
      exact_leaf(node, buf);
      return;
    }
    const index_t left = node.left;
    const index_t right = node.right;
    if (parallel_ && node.depth < 8) {
#pragma omp task default(shared)
      recurse(left);
#pragma omp task default(shared)
      recurse(right);
#pragma omp taskwait
    } else {
      recurse(left);
      recurse(right);
    }
  }

  const KdTree& tree_;
  const std::vector<Component>& comps_;
  real_t tau_;
  std::vector<real_t>& resp_;
  bool parallel_;
  index_t K_;
  index_t dim_;
  real_t loglik_ = 0;
  std::uint64_t approx_nodes_ = 0;
  std::uint64_t exact_points_ = 0;
};

void validate(const Dataset& data, const EmOptions& options) {
  if (options.num_components < 1)
    throw std::invalid_argument("em: need at least one component");
  if (data.size() < options.num_components)
    throw std::invalid_argument("em: fewer points than components");
}

} // namespace

real_t em_estep_exact(const Dataset& data, const std::vector<real_t>& weights,
                      const std::vector<real_t>& means,
                      const std::vector<std::vector<real_t>>& covs, real_t jitter,
                      std::vector<real_t>* resp) {
  (void)jitter;
  const index_t n = data.size();
  const index_t d = data.dim();
  const index_t K = static_cast<index_t>(weights.size());
  resp->assign(static_cast<std::size_t>(n) * K, 0);

  std::vector<Component> comps;
  comps.reserve(K);
  for (index_t k = 0; k < K; ++k) {
    std::vector<real_t> mu(means.begin() + k * d, means.begin() + (k + 1) * d);
    comps.emplace_back(std::move(mu), covs[k], d,
                       std::max(weights[k], real_t(1e-300)));
  }

  real_t loglik = 0;
#pragma omp parallel reduction(+ : loglik)
  {
    std::vector<real_t> scratch(2 * d), log_terms(K), x(d);
#pragma omp for schedule(static)
    for (index_t i = 0; i < n; ++i) {
      data.copy_point(i, x.data());
      loglik += point_responsibilities(x.data(), comps, scratch.data(),
                                       log_terms.data(), &(*resp)[i * K]);
    }
  }
  return loglik;
}

EmResult em_bruteforce(const Dataset& data, const EmOptions& options) {
  validate(data, options);
  EmResult state;
  initialize(data, options, &state);
  const index_t K = options.num_components;

  real_t previous = -std::numeric_limits<real_t>::max();
  for (index_t iter = 0; iter < options.max_iters; ++iter) {
    const real_t loglik = em_estep_exact(data, state.weights, state.means,
                                         state.covs, options.jitter, &state.resp);
    state.loglik_history.push_back(loglik);
    state.log_likelihood = loglik;
    state.iters = iter + 1;
    m_step(data, state.resp, options.jitter, &state);
    if (std::abs(loglik - previous) <
        options.tol * std::max(std::abs(loglik), real_t(1)))
      break;
    previous = loglik;
  }
  state.exact_points =
      static_cast<std::uint64_t>(data.size()) * static_cast<std::uint64_t>(state.iters);
  (void)K;
  return state;
}

EmResult em_expert(const Dataset& data, const EmOptions& options) {
  validate(data, options);
  const KdTree tree(data, options.leaf_size);
  const Dataset& tdata = tree.data(); // permuted

  EmResult state;
  // Initialize from the *original* order so a given seed yields the same
  // starting parameters as em_bruteforce (the tau = 0 equivalence tests rely
  // on identical trajectories).
  initialize(data, options, &state);
  const index_t K = options.num_components;
  const index_t n = data.size();
  state.resp.assign(static_cast<std::size_t>(n) * K, 0);

  real_t previous = -std::numeric_limits<real_t>::max();
  for (index_t iter = 0; iter < options.max_iters; ++iter) {
    const std::vector<Component> comps = freeze_components(state, data.dim());
    TreeEStep estep(tree, comps, options.tau, state.resp, options.parallel);
    const real_t loglik = estep.run();
    state.approx_nodes += estep.approx_nodes();
    state.exact_points += estep.exact_points();
    state.loglik_history.push_back(loglik);
    state.log_likelihood = loglik;
    state.iters = iter + 1;
    m_step(tdata, state.resp, options.jitter, &state);
    if (std::abs(loglik - previous) <
        options.tol * std::max(std::abs(loglik), real_t(1)))
      break;
    previous = loglik;
  }

  // Un-permute the final responsibilities to original point order.
  std::vector<real_t> resp(static_cast<std::size_t>(n) * K);
  for (index_t i = 0; i < n; ++i)
    for (index_t k = 0; k < K; ++k)
      resp[tree.perm()[i] * K + k] = state.resp[i * K + k];
  state.resp = std::move(resp);
  return state;
}

} // namespace portal
