// Portal -- range search (paper Table III row 2).
//
//   forall_q  union-arg_r  I(h_lo < ||x_q - x_r|| < h_hi)
//
// A pruning problem with a two-sided opportunity: node pairs entirely outside
// (h_lo, h_hi) are discarded, node pairs entirely inside are *bulk-accepted*
// without any point-to-point distance evaluation.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "tree/kdtree.h"
#include "traversal/rules.h"
#include "util/common.h"

namespace portal {

struct RangeSearchOptions {
  real_t h_lo = 0;  // lower radius (exclusive); 0 keeps everything below h_hi
  real_t h_hi = 1;  // upper radius (exclusive)
  index_t leaf_size = kDefaultLeafSize;
  bool parallel = true;
  int task_depth = -1;
  bool sort_neighbors = true; // ascending index per query (deterministic output)
  bool batch = true; // SIMD tile base cases over the tree's SoA mirror
};

/// CSR-shaped result: query i's neighbors are
/// neighbors[offsets[i] .. offsets[i+1]) in original reference indexing.
struct RangeSearchResult {
  std::vector<index_t> offsets;   // size nq + 1
  std::vector<index_t> neighbors; // flat lists
  TraversalStats stats;

  index_t count(index_t query) const {
    return offsets[query + 1] - offsets[query];
  }
};

RangeSearchResult range_search_bruteforce(const Dataset& query,
                                          const Dataset& reference, real_t h_lo,
                                          real_t h_hi);

RangeSearchResult range_search_expert(const Dataset& query,
                                      const Dataset& reference,
                                      const RangeSearchOptions& options);

} // namespace portal
