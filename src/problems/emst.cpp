#include "problems/emst.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include <omp.h>

#include "problems/common.h"
#include "traversal/multitree.h"
#include "util/threading.h"

namespace portal {
namespace {

/// Union-find with path halving + union by size.
class UnionFind {
 public:
  explicit UnionFind(index_t n) : parent_(n), size_(n, 1) {
    for (index_t i = 0; i < n; ++i) parent_[i] = i;
  }

  index_t find(index_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool unite(index_t a, index_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

 private:
  std::vector<index_t> parent_;
  std::vector<index_t> size_;
};

/// One Boruvka round's dual-tree nearest-foreign-neighbor rules.
class EmstRules {
 public:
  EmstRules(const KdTree& tree, const std::vector<index_t>& comp,
            const std::vector<index_t>& node_comp)
      : tree_(tree),
        comp_(comp),
        node_comp_(node_comp),
        node_bounds_(tree.num_nodes()),
        best_dist_(tree.data().size(), std::numeric_limits<real_t>::max()),
        best_to_(tree.data().size(), -1),
        workspaces_(num_threads()) {
    const index_t max_leaf = tree.stats().max_leaf_count;
    for (Workspace& ws : workspaces_) {
      ws.qpt.resize(tree.data().dim());
      ws.dists.resize(max_leaf);
    }
  }

  const std::vector<real_t>& best_dist() const { return best_dist_; }
  const std::vector<index_t>& best_to() const { return best_to_; }

  bool prune_or_approx(index_t q, index_t r) {
    // Fully-connected prune: every pair inside one component is useless.
    if (node_comp_[q] >= 0 && node_comp_[q] == node_comp_[r]) return true;
    const real_t dmin =
        tree_.node(q).box.min_sq_dist(tree_.node(r).box);
    return dmin > node_bounds_[q].load();
  }

  real_t score(index_t q, index_t r) {
    return tree_.node(q).box.min_sq_dist(tree_.node(r).box);
  }

  void base_case(index_t q, index_t r) {
    const KdNode& qnode = tree_.node(q);
    const KdNode& rnode = tree_.node(r);
    Workspace& ws = workspaces_[omp_get_thread_num()];
    const index_t rcount = rnode.count();

    real_t leaf_bound = 0;
    for (index_t qi = qnode.begin; qi < qnode.end; ++qi) {
      const index_t qc = comp_[qi];
      real_t best = best_dist_[qi];
      tree_.data().copy_point(qi, ws.qpt.data());
      // Point-level prune: the whole reference leaf may be farther than this
      // point's current candidate.
      if (rnode.box.min_sq_dist_point(ws.qpt.data()) <= best) {
        sq_dists_to_range(tree_.data(), rnode.begin, rnode.end, ws.qpt.data(),
                          ws.dists.data());
        index_t best_j = best_to_[qi];
        for (index_t j = 0; j < rcount; ++j) {
          const index_t rj = rnode.begin + j;
          if (comp_[rj] == qc) continue; // same component: not an MST edge
          if (ws.dists[j] < best) {
            best = ws.dists[j];
            best_j = rj;
          }
        }
        best_dist_[qi] = best;
        best_to_[qi] = best_j;
      }
      leaf_bound = std::max(leaf_bound, best);
    }

    node_bounds_[q].store_min(leaf_bound);
    index_t parent = qnode.parent;
    while (parent >= 0) {
      const KdNode& pnode = tree_.node(parent);
      const real_t combined = std::max(node_bounds_[pnode.left].load(),
                                       node_bounds_[pnode.right].load());
      if (combined >= node_bounds_[parent].load()) break;
      node_bounds_[parent].store_min(combined);
      parent = pnode.parent;
    }
  }

 private:
  struct Workspace {
    std::vector<real_t> qpt;
    std::vector<real_t> dists;
  };

  const KdTree& tree_;
  const std::vector<index_t>& comp_;
  const std::vector<index_t>& node_comp_;
  std::vector<AtomicBound> node_bounds_;
  std::vector<real_t> best_dist_;
  std::vector<index_t> best_to_;
  std::vector<Workspace> workspaces_;
};

/// Per-node single-component labels for the fully-connected prune:
/// node_comp[i] is the component id shared by all points under node i, or -1.
void label_nodes(const KdTree& tree, const std::vector<index_t>& comp,
                 std::vector<index_t>* node_comp) {
  node_comp->assign(tree.num_nodes(), -1);
  // Nodes are stored parent-before-children; walk backwards for post-order.
  for (index_t i = tree.num_nodes() - 1; i >= 0; --i) {
    const KdNode& node = tree.node(i);
    if (node.is_leaf()) {
      index_t label = comp[node.begin];
      for (index_t p = node.begin + 1; p < node.end; ++p)
        if (comp[p] != label) {
          label = -1;
          break;
        }
      (*node_comp)[i] = label;
    } else {
      const index_t l = (*node_comp)[node.left];
      const index_t r = (*node_comp)[node.right];
      (*node_comp)[i] = (l >= 0 && l == r) ? l : -1;
    }
  }
}

} // namespace

EmstResult emst_bruteforce(const Dataset& data) {
  const index_t n = data.size();
  if (n < 2) throw std::invalid_argument("emst: need at least 2 points");
  EmstResult result;

  // Prim with O(N^2) candidate maintenance.
  std::vector<bool> in_tree(n, false);
  std::vector<real_t> best(n, std::numeric_limits<real_t>::max());
  std::vector<index_t> from(n, -1);
  std::vector<real_t> seed_pt(data.dim());
  std::vector<real_t> dists(n);

  in_tree[0] = true;
  data.copy_point(0, seed_pt.data());
  sq_dists_to_range(data, 0, n, seed_pt.data(), dists.data());
  for (index_t j = 1; j < n; ++j) {
    best[j] = dists[j];
    from[j] = 0;
  }

  for (index_t round = 1; round < n; ++round) {
    index_t pick = -1;
    real_t pick_dist = std::numeric_limits<real_t>::max();
    for (index_t j = 0; j < n; ++j)
      if (!in_tree[j] && best[j] < pick_dist) {
        pick_dist = best[j];
        pick = j;
      }
    in_tree[pick] = true;
    const real_t w = std::sqrt(pick_dist);
    result.edges.push_back({from[pick], pick, w});
    result.total_weight += w;

    data.copy_point(pick, seed_pt.data());
    sq_dists_to_range(data, 0, n, seed_pt.data(), dists.data());
    for (index_t j = 0; j < n; ++j)
      if (!in_tree[j] && dists[j] < best[j]) {
        best[j] = dists[j];
        from[j] = pick;
      }
  }
  return result;
}

EmstResult emst_expert(const Dataset& data, const EmstOptions& options) {
  const index_t n = data.size();
  if (n < 2) throw std::invalid_argument("emst: need at least 2 points");

  const KdTree tree(data, options.leaf_size);
  UnionFind uf(n);
  std::vector<index_t> comp(n);     // permuted-order component labels
  std::vector<index_t> node_comp;
  EmstResult result;

  TraversalOptions topt;
  topt.parallel = options.parallel;
  topt.task_depth = options.task_depth;

  index_t num_components = n;
  while (num_components > 1) {
    ++result.boruvka_rounds;
    for (index_t i = 0; i < n; ++i) comp[i] = uf.find(i);
    label_nodes(tree, comp, &node_comp);

    EmstRules rules(tree, comp, node_comp);
    result.stats += dual_traverse(tree, tree, rules, topt);

    // Reduce per-point candidates to one winning edge per component.
    struct Candidate {
      real_t dist = std::numeric_limits<real_t>::max();
      index_t a = -1, b = -1;
    };
    std::vector<Candidate> winner(n); // indexed by component root
    for (index_t i = 0; i < n; ++i) {
      const index_t to = rules.best_to()[i];
      if (to < 0) continue;
      Candidate& w = winner[comp[i]];
      if (rules.best_dist()[i] < w.dist) {
        w.dist = rules.best_dist()[i];
        w.a = i;
        w.b = to;
      }
    }

    // Contract: add each component's winning edge unless a previous merge in
    // this round already united the endpoints (Boruvka dedup).
    for (index_t c = 0; c < n; ++c) {
      const Candidate& w = winner[c];
      if (w.a < 0) continue;
      if (uf.unite(w.a, w.b)) {
        const real_t weight = std::sqrt(w.dist);
        result.edges.push_back(
            {tree.perm()[w.a], tree.perm()[w.b], weight});
        result.total_weight += weight;
        --num_components;
      }
    }
  }

  std::sort(result.edges.begin(), result.edges.end());
  return result;
}

} // namespace portal
