#include "problems/twopoint.h"

#include <atomic>
#include <stdexcept>

#include <omp.h>

#include "kernels/batch.h"
#include "problems/common.h"
#include "traversal/multitree.h"
#include "util/threading.h"

namespace portal {
namespace {

class TwoPointRules {
 public:
  TwoPointRules(const KdTree& tree, real_t h, bool batch)
      : tree_(tree),
        h_sq_(h * h),
        batch_(batch && !tree.mirror().empty()),
        workspaces_(num_threads()) {
    const index_t max_leaf = tree.stats().max_leaf_count;
    for (Workspace& ws : workspaces_) {
      ws.qpt.resize(tree.data().dim());
      ws.dists.resize(max_leaf);
    }
  }

  std::uint64_t pairs() const { return pairs_.load(std::memory_order_relaxed); }

  bool prune_or_approx(index_t q, index_t r) {
    const KdNode& qnode = tree_.node(q);
    const KdNode& rnode = tree_.node(r);

    // Symmetry: node ranges in one tree are equal or disjoint; pairs with the
    // reference range strictly before the query range are the mirror image of
    // pairs we do count -- skip them so every unordered pair counts once.
    if (rnode.end <= qnode.begin && r != q) return true;

    const real_t dmin_sq = qnode.box.min_sq_dist(rnode.box);
    if (dmin_sq >= h_sq_) return true; // bulk reject

    const real_t dmax_sq = qnode.box.max_sq_dist(rnode.box);
    if (dmax_sq < h_sq_) { // bulk accept, no distance evaluations
      std::uint64_t add;
      if (q == r) {
        const std::uint64_t c = static_cast<std::uint64_t>(qnode.count());
        add = c * (c - 1) / 2;
      } else {
        add = static_cast<std::uint64_t>(qnode.count()) *
              static_cast<std::uint64_t>(rnode.count());
      }
      pairs_.fetch_add(add, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  void base_case(index_t q, index_t r) {
    const KdNode& qnode = tree_.node(q);
    const KdNode& rnode = tree_.node(r);
    Workspace& ws = workspaces_[omp_get_thread_num()];
    std::uint64_t local = 0;

    if (q == r) {
      // Within one leaf: count i < j once. The self-join tiles are ragged
      // (count shrinks by one per row) -- the batch kernels take any count.
      for (index_t i = qnode.begin; i < qnode.end; ++i) {
        tree_.data().copy_point(i, ws.qpt.data());
        const index_t count = qnode.end - (i + 1);
        if (count <= 0) continue;
        if (batch_) {
          batch::sq_dists(tree_.mirror().tile(i + 1, count), ws.qpt.data(),
                          ws.dists.data());
          batch::count_batch_tile(count);
        } else {
          sq_dists_to_range(tree_.data(), i + 1, qnode.end, ws.qpt.data(),
                            ws.dists.data());
          batch::count_scalar_tail(count);
        }
        for (index_t j = 0; j < count; ++j)
          if (ws.dists[j] < h_sq_) ++local;
      }
    } else {
      // Disjoint leaves with q before r: every cross pair counts once.
      const index_t rcount = rnode.count();
      for (index_t i = qnode.begin; i < qnode.end; ++i) {
        tree_.data().copy_point(i, ws.qpt.data());
        if (batch_) {
          batch::sq_dists(tree_.mirror().tile(rnode.begin, rcount),
                          ws.qpt.data(), ws.dists.data());
          batch::count_batch_tile(rcount);
        } else {
          sq_dists_to_range(tree_.data(), rnode.begin, rnode.end, ws.qpt.data(),
                            ws.dists.data());
          batch::count_scalar_tail(rcount);
        }
        for (index_t j = 0; j < rcount; ++j)
          if (ws.dists[j] < h_sq_) ++local;
      }
    }
    if (local > 0) pairs_.fetch_add(local, std::memory_order_relaxed);
  }

 private:
  struct Workspace {
    std::vector<real_t> qpt;
    std::vector<real_t> dists;
  };

  const KdTree& tree_;
  real_t h_sq_;
  bool batch_;
  std::atomic<std::uint64_t> pairs_{0};
  std::vector<Workspace> workspaces_;
};

} // namespace

TwoPointResult twopoint_bruteforce(const Dataset& data, real_t h) {
  if (h <= 0) throw std::invalid_argument("twopoint: h must be positive");
  const real_t h_sq = h * h;
  const index_t n = data.size();
  std::uint64_t pairs = 0;

#pragma omp parallel reduction(+ : pairs)
  {
    std::vector<real_t> qpt(data.dim());
    std::vector<real_t> dists(n);
#pragma omp for schedule(dynamic, 64)
    for (index_t i = 0; i < n; ++i) {
      if (i + 1 >= n) continue;
      data.copy_point(i, qpt.data());
      sq_dists_to_range(data, i + 1, n, qpt.data(), dists.data());
      for (index_t j = 0; j < n - i - 1; ++j)
        if (dists[j] < h_sq) ++pairs;
    }
  }

  TwoPointResult result;
  result.pairs = pairs;
  return result;
}

TwoPointResult twopoint_expert(const Dataset& data, const TwoPointOptions& options) {
  if (options.h <= 0) throw std::invalid_argument("twopoint: h must be positive");
  const KdTree tree(data, options.leaf_size);
  TwoPointRules rules(tree, options.h, options.batch);
  TraversalOptions topt;
  topt.parallel = options.parallel;
  topt.task_depth = options.task_depth;

  TwoPointResult result;
  result.stats = dual_traverse(tree, tree, rules, topt);
  result.pairs = rules.pairs();
  return result;
}

} // namespace portal
