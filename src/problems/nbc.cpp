#include "problems/nbc.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "kernels/gaussian.h"

namespace portal {
namespace {

void validate_model(const NbcModel& model, const Dataset& data) {
  if (model.dim != data.dim())
    throw std::invalid_argument("nbc: model/data dimensionality mismatch");
  if (model.num_classes < 1) throw std::invalid_argument("nbc: empty model");
}

/// Per-class additive constant: log pi_k - 0.5 sum_d log(2 pi v_kd).
std::vector<real_t> class_constants(const NbcModel& model) {
  const index_t K = model.num_classes;
  const index_t d = model.dim;
  std::vector<real_t> constants(K);
  for (index_t k = 0; k < K; ++k) {
    real_t log_det = 0;
    for (index_t dd = 0; dd < d; ++dd)
      log_det += std::log(kTwoPi * model.variances[k * d + dd]);
    constants[k] =
        std::log(std::max(model.priors[k], real_t(1e-300))) - real_t(0.5) * log_det;
  }
  return constants;
}

} // namespace

NbcModel nbc_train(const Dataset& points, const std::vector<int>& labels,
                   index_t num_classes, real_t var_floor) {
  if (static_cast<index_t>(labels.size()) != points.size())
    throw std::invalid_argument("nbc_train: labels/points size mismatch");
  if (num_classes < 1) throw std::invalid_argument("nbc_train: num_classes < 1");

  const index_t n = points.size();
  const index_t d = points.dim();
  NbcModel model;
  model.num_classes = num_classes;
  model.dim = d;
  model.priors.assign(num_classes, 0);
  model.means.assign(num_classes * d, 0);
  model.variances.assign(num_classes * d, 0);

  std::vector<index_t> counts(num_classes, 0);
  for (index_t i = 0; i < n; ++i) {
    const int label = labels[i];
    if (label < 0 || label >= num_classes)
      throw std::invalid_argument("nbc_train: label out of range");
    ++counts[label];
    for (index_t dd = 0; dd < d; ++dd)
      model.means[label * d + dd] += points.coord(i, dd);
  }
  for (index_t k = 0; k < num_classes; ++k) {
    if (counts[k] == 0)
      throw std::invalid_argument("nbc_train: class with no training points");
    for (index_t dd = 0; dd < d; ++dd)
      model.means[k * d + dd] /= static_cast<real_t>(counts[k]);
    model.priors[k] = static_cast<real_t>(counts[k]) / static_cast<real_t>(n);
  }
  for (index_t i = 0; i < n; ++i) {
    const int label = labels[i];
    for (index_t dd = 0; dd < d; ++dd) {
      const real_t diff = points.coord(i, dd) - model.means[label * d + dd];
      model.variances[label * d + dd] += diff * diff;
    }
  }
  for (index_t k = 0; k < num_classes; ++k)
    for (index_t dd = 0; dd < d; ++dd) {
      model.variances[k * d + dd] /= static_cast<real_t>(counts[k]);
      model.variances[k * d + dd] =
          std::max(model.variances[k * d + dd], var_floor);
    }
  return model;
}

std::vector<int> nbc_predict_bruteforce(const NbcModel& model, const Dataset& data) {
  validate_model(model, data);
  const index_t n = data.size();
  const index_t d = model.dim;
  const index_t K = model.num_classes;
  std::vector<int> labels(n);

  // Deliberately library-grade: no hoisted constants, no parallelism; the
  // per-point cost profile matches a straightforward implementation.
  for (index_t i = 0; i < n; ++i) {
    real_t best = -std::numeric_limits<real_t>::max();
    int best_k = 0;
    for (index_t k = 0; k < K; ++k) {
      real_t log_lik = std::log(std::max(model.priors[k], real_t(1e-300)));
      for (index_t dd = 0; dd < d; ++dd) {
        const real_t v = model.variances[k * d + dd];
        const real_t diff = data.coord(i, dd) - model.means[k * d + dd];
        log_lik += real_t(-0.5) * (std::log(kTwoPi * v) + diff * diff / v);
      }
      if (log_lik > best) {
        best = log_lik;
        best_k = static_cast<int>(k);
      }
    }
    labels[i] = best_k;
  }
  return labels;
}

std::vector<int> nbc_predict_expert(const NbcModel& model, const Dataset& data,
                                    bool parallel) {
  validate_model(model, data);
  const index_t n = data.size();
  const index_t d = model.dim;
  const index_t K = model.num_classes;
  std::vector<int> labels(n);

  const std::vector<real_t> constants = class_constants(model);
  // Precomputed per-(class, dim) quadratic coefficients: -1 / (2 v).
  std::vector<real_t> coef(K * d);
  for (index_t k = 0; k < K; ++k)
    for (index_t dd = 0; dd < d; ++dd)
      coef[k * d + dd] = real_t(-0.5) / model.variances[k * d + dd];

#pragma omp parallel for schedule(static) if (parallel)
  for (index_t i = 0; i < n; ++i) {
    real_t best = -std::numeric_limits<real_t>::max();
    int best_k = 0;
    for (index_t k = 0; k < K; ++k) {
      const real_t* mu = model.means.data() + k * d;
      const real_t* cf = coef.data() + k * d;
      real_t quad = 0;
      for (index_t dd = 0; dd < d; ++dd) {
        const real_t diff = data.coord(i, dd) - mu[dd];
        quad += cf[dd] * diff * diff;
      }
      const real_t log_lik = constants[k] + quad;
      if (log_lik > best) {
        best = log_lik;
        best_k = static_cast<int>(k);
      }
    }
    labels[i] = best_k;
  }
  return labels;
}

std::vector<real_t> nbc_joint_log_likelihood(const NbcModel& model,
                                             const Dataset& data) {
  validate_model(model, data);
  const index_t n = data.size();
  const index_t d = model.dim;
  const index_t K = model.num_classes;
  std::vector<real_t> out(static_cast<std::size_t>(n) * K);
  const std::vector<real_t> constants = class_constants(model);

#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i)
    for (index_t k = 0; k < K; ++k) {
      const real_t* mu = model.means.data() + k * d;
      const real_t* var = model.variances.data() + k * d;
      real_t quad = 0;
      for (index_t dd = 0; dd < d; ++dd) {
        const real_t diff = data.coord(i, dd) - mu[dd];
        quad += diff * diff / var[dd];
      }
      out[i * K + k] = constants[k] - real_t(0.5) * quad;
    }
  return out;
}

} // namespace portal
