// Portal -- expectation-maximization for Gaussian mixtures (paper Table III
// rows 6-7: the E-step and log-likelihood N-body sub-problems; the outer EM
// loop is native code, as the paper's 30-line Portal program + 74 native
// lines indicate).
//
// The E-step is an approximation problem: for a kd-tree node whose
// responsibility vector varies less than tau across the node (bounds derived
// from box-to-mean Mahalanobis bounds), every point in the node receives the
// node-center responsibilities (ComputeApprox). tau = 0 reproduces the exact
// brute-force E-step bit-for-bit, which is how the tests pin correctness.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "tree/kdtree.h"
#include "util/common.h"

namespace portal {

struct EmOptions {
  index_t num_components = 3;
  index_t max_iters = 10;
  real_t tol = 1e-5;   // stop when relative loglik improvement drops below
  real_t tau = 0;      // E-step responsibility approximation threshold
  real_t jitter = 1e-6;
  index_t leaf_size = kDefaultLeafSize;
  bool parallel = true;
  std::uint64_t seed = 1234; // initial means are seeded random data points
};

struct EmResult {
  index_t num_components = 0;
  std::vector<real_t> weights;            // K mixing weights pi_k
  std::vector<real_t> means;              // K x d, row-major
  std::vector<std::vector<real_t>> covs;  // K matrices, d x d row-major
  std::vector<real_t> resp;               // n x K final responsibilities
  real_t log_likelihood = 0;
  std::vector<real_t> loglik_history;     // one entry per iteration
  index_t iters = 0;
  std::uint64_t approx_nodes = 0;         // E-step nodes handled by ComputeApprox
  std::uint64_t exact_points = 0;         // points that got exact E-step evals
};

/// Flat (no tree) EM: exact E-step each iteration. The oracle.
EmResult em_bruteforce(const Dataset& data, const EmOptions& options);

/// Tree-accelerated EM: single-tree E-step with responsibility bounds.
EmResult em_expert(const Dataset& data, const EmOptions& options);

/// One exact E-step given fixed parameters; returns per-point loglik sum.
/// Exposed for the Portal executor and for tests.
real_t em_estep_exact(const Dataset& data, const std::vector<real_t>& weights,
                      const std::vector<real_t>& means,
                      const std::vector<std::vector<real_t>>& covs,
                      real_t jitter, std::vector<real_t>* resp);

} // namespace portal
