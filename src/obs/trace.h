// Portal -- observability: named monotonic counters, RAII scoped timers, and
// a session trace that exports both a human-readable table and a Chrome
// `chrome://tracing` / Perfetto JSON file.
//
// Design constraints (see docs/OBSERVABILITY.md):
//   * Disabled-by-default. The off path of every instrumentation point is a
//     single relaxed load of a cached flag plus one predictable branch --
//     measured at <2% overhead on bench_ablation_parallel and enforced by
//     the trace-overhead CI job.
//   * No shared read-modify-writes on the hot path. Counters accumulate into
//     cacheline-padded per-thread slots (the same pattern the traversal uses
//     for TraversalStats); aggregation happens only in collect().
//   * Names are interned once per call site: the PORTAL_OBS_* macros hold a
//     function-local static id, so steady state is an array index, not a
//     string lookup.
//
// Naming scheme: "<subsystem>/<phase>" with '/' separators, e.g.
// "pass/flattening", "tree/kd/partition", "traversal/pairs_visited". The
// full vocabulary is catalogued in docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/common.h"

namespace portal::obs {

/// Stable index for an interned counter or timer name. Values are small and
/// dense; they index directly into the per-thread slot arrays.
using MetricId = std::uint32_t;

/// Hard cap on distinct counter/timer names. Registration past the cap is
/// clamped to a shared overflow slot instead of failing, so instrumentation
/// can never crash the host program.
inline constexpr MetricId kMaxMetrics = 256;

/// True when tracing is active. Cached flag: initialized once from the
/// PORTAL_TRACE environment variable (unset / "0" / "off" = disabled), then
/// toggled only by set_enabled(). The relaxed load compiles to a plain MOV.
bool enabled() noexcept;

/// Programmatic override (portal_cli --trace, tests, benches). Idempotent.
void set_enabled(bool on) noexcept;

/// When PORTAL_TRACE holds a path (anything other than "", "0", "off", "1",
/// "on"), returns it; the process writes a Chrome trace there at exit.
const std::string& env_trace_path();

/// Intern `name`, returning its id. Thread-safe, idempotent; O(log n) with a
/// lock -- call once per call site (the macros cache the result in a static).
MetricId intern_counter(const char* name);
MetricId intern_timer(const char* name);

/// Add `delta` to a counter in this thread's padded slot. No synchronization
/// on the hot path. Safe to call whether or not tracing is enabled (callers
/// normally guard with enabled() to skip even the TLS access).
void counter_add(MetricId id, std::uint64_t delta) noexcept;

/// Record one completed span for timer `id` (duration in nanoseconds,
/// started `start_us` microseconds after the session epoch). Updates the
/// per-thread aggregate and appends a Chrome-trace event.
void timer_record(MetricId id, double start_us, std::uint64_t dur_ns);

/// Microseconds since the session epoch (monotonic clock).
double now_us() noexcept;

/// Attach a free-form instant event (Chrome "i" phase) to the trace --
/// plan choices, tuner picks, engine selection. `name` may be dynamic.
void instant_event(const std::string& name);

/// RAII scoped timer. Cheap when tracing is disabled: the constructor is a
/// load + branch and the destructor re-checks the armed flag only.
class ScopedTimer {
 public:
  explicit ScopedTimer(MetricId id) noexcept {
    if (enabled()) {
      id_ = id;
      start_us_ = now_us();
      armed_ = true;
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Stop early (before scope exit). Idempotent.
  void stop() {
    if (!armed_) return;
    armed_ = false;
    const double end_us = now_us();
    timer_record(id_, start_us_,
                 static_cast<std::uint64_t>((end_us - start_us_) * 1e3));
  }

 private:
  MetricId id_ = 0;
  double start_us_ = 0;
  bool armed_ = false;
};

/// One aggregated timer row in a TraceReport.
struct TimerStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
};

/// One aggregated counter row in a TraceReport.
struct CounterStat {
  std::string name;
  std::uint64_t value = 0;
};

/// One Chrome-trace event ("X" = complete span, "i" = instant).
struct TraceEvent {
  std::string name;
  char phase = 'X';
  double ts_us = 0;
  double dur_us = 0;
  int tid = 0;
};

/// Aggregated session snapshot: counters and timer stats summed across all
/// thread slots, plus the raw event stream for the Chrome export.
struct TraceReport {
  std::vector<CounterStat> counters; // sorted by name
  std::vector<TimerStat> timers;     // sorted by name
  std::vector<TraceEvent> events;    // sorted by start timestamp

  /// Counter value by exact name (0 when absent).
  std::uint64_t counter(const std::string& name) const;
  /// Total seconds across all spans of a timer (0 when absent).
  double timer_seconds(const std::string& name) const;
  /// Number of recorded spans of a timer (0 when absent).
  std::uint64_t timer_count(const std::string& name) const;

  /// Human-readable fixed-width table (timers then counters).
  std::string human_table() const;
  /// Chrome `chrome://tracing` / Perfetto JSON (traceEvents array format).
  std::string chrome_json() const;
};

/// Snapshot and aggregate every thread slot. Safe to call while worker
/// threads are idle; concurrent writers may be missed by one increment but
/// nothing tears (counters are word-sized).
TraceReport collect();

/// Zero all counters and timer aggregates and drop buffered events. Call
/// between measured sections; not safe concurrently with active writers.
void reset();

/// Write collect()'s Chrome JSON to `path`. Returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

} // namespace portal::obs

/// Add `delta` to the named counter (name must be a string literal or have
/// static storage). Off path: one relaxed load + branch.
#define PORTAL_OBS_COUNT(name, delta)                                     \
  do {                                                                    \
    if (::portal::obs::enabled()) {                                       \
      static const ::portal::obs::MetricId portal_obs_cid =               \
          ::portal::obs::intern_counter(name);                            \
      ::portal::obs::counter_add(portal_obs_cid, (delta));                \
    }                                                                     \
  } while (0)

/// Open a scoped timer for the rest of the enclosing block.
#define PORTAL_OBS_SCOPE(varname, name)                                   \
  static const ::portal::obs::MetricId portal_obs_tid_##varname =         \
      ::portal::obs::intern_timer(name);                                  \
  ::portal::obs::ScopedTimer varname(portal_obs_tid_##varname)
