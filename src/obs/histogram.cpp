#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace portal::obs {

namespace {
constexpr std::uint64_t kMinSentinel =
    std::numeric_limits<std::uint64_t>::max();
} // namespace

std::uint64_t LatencyHistogram::to_ns(double seconds) noexcept {
  if (!(seconds > 0)) return 1; // clamp NaN/negative/zero into the first bin
  const double ns = seconds * 1e9;
  if (ns >= 9.2e18) return std::uint64_t{1} << 62;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::llround(ns)));
}

int LatencyHistogram::bucket_index(std::uint64_t ns) noexcept {
  // Octave = floor(log2(ns)); within an octave, 4 equal linear sub-buckets
  // selected by the two bits below the leading bit. Octaves 0 and 1 are
  // narrower than 4 ns, so some of their sub-buckets alias -- harmless, the
  // bucket bounds below stay consistent with this mapping.
  const int octave =
      std::min(kOctaves - 1, static_cast<int>(std::bit_width(ns)) - 1);
  const int shift = std::max(0, octave - 2);
  const int sub = static_cast<int>((ns >> shift) & 3);
  return octave == 0 ? 0 : octave * kSubBuckets + sub;
}

double LatencyHistogram::bucket_lower_ns(int index) noexcept {
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  const double base = std::ldexp(1.0, octave);
  return octave == 0 ? 1.0 : base + sub * (base / kSubBuckets);
}

double LatencyHistogram::bucket_width_ns(int index) noexcept {
  const int octave = index / kSubBuckets;
  return octave == 0 ? 1.0 : std::ldexp(1.0, octave) / kSubBuckets;
}

void LatencyHistogram::record_ns(std::uint64_t ns) noexcept {
  if (ns == 0) ns = 1; // zero shares the first bin (bit_width(0) has no octave)
  buckets_[static_cast<std::size_t>(bucket_index(ns))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = min_ns_.load(std::memory_order_relaxed);
  while (ns < seen &&
         !min_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
  seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  for (int i = 0; i < kBuckets; ++i)
    snap.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_seconds = static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  const std::uint64_t min_ns = min_ns_.load(std::memory_order_relaxed);
  snap.min_seconds = min_ns == kMinSentinel ? 0 : static_cast<double>(min_ns) * 1e-9;
  snap.max_seconds =
      static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return snap;
}

double LatencyHistogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based), then walk the cumulative counts.
  const double rank = std::max(1.0, q * static_cast<double>(count));
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket = buckets[static_cast<std::size_t>(i)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      // Linear interpolation inside the bucket, clamped to observed extremes
      // so p0/p100 report real samples rather than bucket edges.
      const double frac =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      const double ns = bucket_lower_ns(i) + frac * bucket_width_ns(i);
      return std::clamp(ns * 1e-9, min_seconds, max_seconds);
    }
    cumulative += in_bucket;
  }
  return max_seconds;
}

void LatencyHistogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  min_ns_.store(kMinSentinel, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

} // namespace portal::obs
