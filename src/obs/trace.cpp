#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>

#include "util/thread_annotations.h"

namespace portal::obs {
namespace {

using clock = std::chrono::steady_clock;

/// Per-thread metric storage. The whole block is owned by the registry (a
/// thread caches a raw pointer in TLS), so slots survive thread exit and
/// collect() can walk them without lifetime games. alignas keeps neighboring
/// threads' hot words on distinct cachelines.
struct alignas(64) ThreadSlot {
  std::uint64_t counters[kMaxMetrics] = {};
  struct TimerAgg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ns = 0;
  };
  TimerAgg timers[kMaxMetrics] = {};
  std::vector<TraceEvent> events;
  int tid = 0;
};

struct Registry {
  Mutex mutex;
  std::map<std::string, MetricId> counter_ids PORTAL_GUARDED_BY(mutex);
  std::vector<std::string> counter_names PORTAL_GUARDED_BY(mutex);
  std::map<std::string, MetricId> timer_ids PORTAL_GUARDED_BY(mutex);
  std::vector<std::string> timer_names PORTAL_GUARDED_BY(mutex);
  std::vector<std::unique_ptr<ThreadSlot>> slots PORTAL_GUARDED_BY(mutex);
  std::vector<TraceEvent> instants PORTAL_GUARDED_BY(mutex); // cold
  clock::time_point epoch = clock::now(); // set once; read lock-free
  int next_tid PORTAL_GUARDED_BY(mutex) = 0;
};

Registry& registry() {
  static Registry* r = new Registry(); // leaked: outlives atexit writers
  return *r;
}

std::atomic<bool> g_enabled{false};

/// Parse PORTAL_TRACE once. Returns the trace output path ("" when the value
/// is a bare on/off switch).
std::string init_from_env() {
  const char* env = std::getenv("PORTAL_TRACE");
  if (env == nullptr || *env == '\0') return {};
  if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0) return {};
  g_enabled.store(true, std::memory_order_relaxed);
  if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0) return {};
  return env;
}

const std::string& env_path_storage() {
  static const std::string path = init_from_env();
  return path;
}

/// Ensure env parsing runs before main() so enabled() is settled early and
/// an env-specified path gets its atexit dump registered.
struct EnvInit {
  EnvInit() {
    const std::string& path = env_path_storage();
    if (!path.empty())
      std::atexit(+[] { write_chrome_trace(env_path_storage()); });
  }
} g_env_init;

ThreadSlot& local_slot() {
  thread_local ThreadSlot* slot = [] {
    Registry& reg = registry();
    MutexLock lock(reg.mutex);
    reg.slots.push_back(std::make_unique<ThreadSlot>());
    reg.slots.back()->tid = reg.next_tid++;
    return reg.slots.back().get();
  }();
  return *slot;
}

/// Registry-side interning for both metric kinds. The kind is selected under
/// the lock (references to guarded members may only be formed while holding
/// it -- the analysis checks reference escapes, not just direct accesses).
MetricId intern(Registry& reg, bool timer, const char* name) {
  MutexLock lock(reg.mutex);
  std::map<std::string, MetricId>& ids = timer ? reg.timer_ids : reg.counter_ids;
  std::vector<std::string>& names =
      timer ? reg.timer_names : reg.counter_names;
  const auto it = ids.find(name);
  if (it != ids.end()) return it->second;
  if (names.size() >= kMaxMetrics - 1) {
    // Clamp to the shared overflow slot registered below.
    const auto overflow = ids.find("obs/overflow");
    if (overflow != ids.end()) return overflow->second;
    names.emplace_back("obs/overflow");
    const MetricId id = static_cast<MetricId>(names.size() - 1);
    ids.emplace("obs/overflow", id);
    return id;
  }
  names.emplace_back(name);
  const MetricId id = static_cast<MetricId>(names.size() - 1);
  ids.emplace(name, id);
  return id;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

} // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

const std::string& env_trace_path() { return env_path_storage(); }

MetricId intern_counter(const char* name) {
  return intern(registry(), /*timer=*/false, name);
}

MetricId intern_timer(const char* name) {
  return intern(registry(), /*timer=*/true, name);
}

void counter_add(MetricId id, std::uint64_t delta) noexcept {
  if (id >= kMaxMetrics) return;
  local_slot().counters[id] += delta;
}

double now_us() noexcept {
  return std::chrono::duration<double, std::micro>(clock::now() -
                                                   registry().epoch)
      .count();
}

void timer_record(MetricId id, double start_us, std::uint64_t dur_ns) {
  if (id >= kMaxMetrics) return;
  ThreadSlot& slot = local_slot();
  ThreadSlot::TimerAgg& agg = slot.timers[id];
  ++agg.count;
  agg.total_ns += dur_ns;
  agg.min_ns = std::min(agg.min_ns, dur_ns);
  agg.max_ns = std::max(agg.max_ns, dur_ns);

  TraceEvent event;
  {
    Registry& reg = registry();
    // Name lookup is cold relative to the span itself; the lock also guards
    // against a concurrent intern growing the name vector.
    MutexLock lock(reg.mutex);
    event.name = reg.timer_names[id];
  }
  event.phase = 'X';
  event.ts_us = start_us;
  event.dur_us = static_cast<double>(dur_ns) / 1e3;
  event.tid = slot.tid;
  slot.events.push_back(std::move(event));
}

void instant_event(const std::string& name) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.phase = 'i';
  event.ts_us = now_us();
  event.tid = local_slot().tid;
  Registry& reg = registry();
  MutexLock lock(reg.mutex);
  reg.instants.push_back(std::move(event));
}

std::uint64_t TraceReport::counter(const std::string& name) const {
  for (const CounterStat& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

double TraceReport::timer_seconds(const std::string& name) const {
  for (const TimerStat& t : timers)
    if (t.name == name) return static_cast<double>(t.total_ns) / 1e9;
  return 0;
}

std::uint64_t TraceReport::timer_count(const std::string& name) const {
  for (const TimerStat& t : timers)
    if (t.name == name) return t.count;
  return 0;
}

std::string TraceReport::human_table() const {
  std::string out;
  char line[256];
  if (!timers.empty()) {
    std::snprintf(line, sizeof(line), "%-40s %10s %12s %12s %12s\n", "timer",
                  "count", "total(ms)", "min(ms)", "max(ms)");
    out += line;
    for (const TimerStat& t : timers) {
      std::snprintf(line, sizeof(line), "%-40s %10llu %12.3f %12.3f %12.3f\n",
                    t.name.c_str(), static_cast<unsigned long long>(t.count),
                    static_cast<double>(t.total_ns) / 1e6,
                    static_cast<double>(t.min_ns) / 1e6,
                    static_cast<double>(t.max_ns) / 1e6);
      out += line;
    }
  }
  if (!counters.empty()) {
    std::snprintf(line, sizeof(line), "%-40s %22s\n", "counter", "value");
    out += line;
    for (const CounterStat& c : counters) {
      std::snprintf(line, sizeof(line), "%-40s %22llu\n", c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
      out += line;
    }
  }
  if (out.empty()) out = "(trace empty)\n";
  return out;
}

std::string TraceReport::chrome_json() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[128];
  for (const TraceEvent& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, e.name);
    out += ",\"cat\":\"portal\",\"ph\":\"";
    out += e.phase;
    out += '"';
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f", e.ts_us);
    out += buf;
    if (e.phase == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", e.dur_us);
      out += buf;
    }
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    std::snprintf(buf, sizeof(buf), ",\"pid\":1,\"tid\":%d}", e.tid);
    out += buf;
  }
  // Counter totals as a single summary event at the end of the timeline so
  // they survive into the viewer without per-sample streams.
  for (const CounterStat& c : counters) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, c.name);
    std::snprintf(buf, sizeof(buf),
                  ",\"cat\":\"portal\",\"ph\":\"C\",\"ts\":%.3f,"
                  "\"pid\":1,\"tid\":0,\"args\":{\"value\":%llu}}",
                  events.empty() ? 0.0 : events.back().ts_us,
                  static_cast<unsigned long long>(c.value));
    out += buf;
  }
  out += "]}";
  return out;
}

TraceReport collect() {
  Registry& reg = registry();
  MutexLock lock(reg.mutex);
  TraceReport report;

  std::vector<std::uint64_t> counter_totals(reg.counter_names.size(), 0);
  std::vector<ThreadSlot::TimerAgg> timer_totals(reg.timer_names.size());
  for (const auto& slot : reg.slots) {
    for (std::size_t i = 0; i < counter_totals.size(); ++i)
      counter_totals[i] += slot->counters[i];
    for (std::size_t i = 0; i < timer_totals.size(); ++i) {
      const ThreadSlot::TimerAgg& agg = slot->timers[i];
      if (agg.count == 0) continue;
      ThreadSlot::TimerAgg& total = timer_totals[i];
      total.count += agg.count;
      total.total_ns += agg.total_ns;
      total.min_ns = std::min(total.min_ns, agg.min_ns);
      total.max_ns = std::max(total.max_ns, agg.max_ns);
    }
    report.events.insert(report.events.end(), slot->events.begin(),
                         slot->events.end());
  }
  report.events.insert(report.events.end(), reg.instants.begin(),
                       reg.instants.end());

  for (std::size_t i = 0; i < counter_totals.size(); ++i)
    if (counter_totals[i] != 0)
      report.counters.push_back({reg.counter_names[i], counter_totals[i]});
  for (std::size_t i = 0; i < timer_totals.size(); ++i)
    if (timer_totals[i].count != 0)
      report.timers.push_back({reg.timer_names[i], timer_totals[i].count,
                               timer_totals[i].total_ns, timer_totals[i].min_ns,
                               timer_totals[i].max_ns});

  std::sort(report.counters.begin(), report.counters.end(),
            [](const CounterStat& a, const CounterStat& b) {
              return a.name < b.name;
            });
  std::sort(report.timers.begin(), report.timers.end(),
            [](const TimerStat& a, const TimerStat& b) { return a.name < b.name; });
  std::sort(report.events.begin(), report.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return report;
}

void reset() {
  Registry& reg = registry();
  MutexLock lock(reg.mutex);
  for (const auto& slot : reg.slots) {
    std::memset(slot->counters, 0, sizeof(slot->counters));
    for (auto& agg : slot->timers) agg = ThreadSlot::TimerAgg{};
    slot->events.clear();
  }
  reg.instants.clear();
}

bool write_chrome_trace(const std::string& path) {
  const std::string json = collect().chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

} // namespace portal::obs
