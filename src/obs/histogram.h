// Portal -- wait-free log-linear latency histograms (serving-path metrics).
//
// The query-serving runtime (src/serve) needs per-request latency
// percentiles and queue-depth distributions that are *always on* -- unlike
// the trace counters in obs/trace.h, which are disabled-by-default
// instrumentation, a service's p99 is part of its contract and must be
// collectable at any moment without a tracing session. So this is a
// standalone fixed-footprint histogram, cheap enough to sit on every
// request completion:
//   * record() is two relaxed atomic adds plus two relaxed min/max CAS
//     loops -- no locks, no allocation, safe from any thread;
//   * buckets are HdrHistogram-style log-linear: 4 linear sub-buckets per
//     power-of-two octave, giving <= 12.5% relative error on any reported
//     quantile across the full range (1 ns .. ~2^62 ns);
//   * snapshot() is a relaxed sweep -- concurrent writers may be missed by
//     one increment but nothing tears (all slots are word-sized).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace portal::obs {

class LatencyHistogram {
 public:
  /// 62 octaves x 4 sub-buckets. Index 0 holds ns in [1, 2); the top bucket
  /// absorbs any overflow.
  static constexpr int kSubBuckets = 4;
  static constexpr int kOctaves = 62;
  static constexpr int kBuckets = kOctaves * kSubBuckets;

  LatencyHistogram() { reset(); }

  /// Record one duration in seconds. Thread-safe, wait-free, allocation-free.
  void record(double seconds) noexcept { record_ns(to_ns(seconds)); }

  /// Record one duration in integer nanoseconds (also used for unitless
  /// distributions like queue depth -- quantiles are unit-agnostic).
  void record_ns(std::uint64_t ns) noexcept;

  /// Point-in-time aggregate. Quantiles interpolate within the landing
  /// bucket, so the relative error is bounded by the bucket width (12.5%).
  struct Snapshot {
    std::uint64_t count = 0;
    double sum_seconds = 0;
    double min_seconds = 0;
    double max_seconds = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    double mean_seconds() const { return count ? sum_seconds / count : 0; }
    /// q in [0, 1]: 0.5 = median, 0.99 = p99. Returns 0 on an empty snapshot.
    double quantile(double q) const;
  };

  Snapshot snapshot() const;

  /// Zero every slot. Not linearizable against concurrent writers (a racing
  /// record may land on either side); callers quiesce between measured
  /// sections, exactly like obs::reset().
  void reset();

 private:
  static std::uint64_t to_ns(double seconds) noexcept;
  static int bucket_index(std::uint64_t ns) noexcept;
  static double bucket_lower_ns(int index) noexcept;
  static double bucket_width_ns(int index) noexcept;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_;
  std::atomic<std::uint64_t> count_;
  std::atomic<std::uint64_t> sum_ns_;
  std::atomic<std::uint64_t> min_ns_;
  std::atomic<std::uint64_t> max_ns_;
};

} // namespace portal::obs
