#include "data/table2.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace portal {

const std::vector<DatasetSpec>& table2_specs() {
  // default_size keeps the paper's relative ordering (Yahoo largest, Census
  // smallest of the ML sets) at ~1/500 scale; high-dimensional sets are
  // shrunk further because kd-tree pruning weakens with dimension and the
  // harness must finish on one core.
  static const std::vector<DatasetSpec> specs = {
      {"Yahoo!", 41904293, 11, 80000, 24},
      {"IHEPC", 2075259, 9, 40000, 16},
      {"HIGGS", 11000000, 28, 30000, 12},
      {"Census", 2458285, 68, 12000, 10},
      {"KDD", 4898431, 42, 20000, 10},
      {"Elliptical", 10000000, 3, 120000, 1},
  };
  return specs;
}

const DatasetSpec& table2_spec(const std::string& name) {
  for (const DatasetSpec& spec : table2_specs())
    if (spec.name == name) return spec;
  throw std::invalid_argument("table2: unknown dataset '" + name + "'");
}

Dataset make_table2_dataset(const std::string& name, double scale) {
  const DatasetSpec& spec = table2_spec(name);
  const index_t size = std::max<index_t>(
      64, static_cast<index_t>(static_cast<double>(spec.default_size) * scale));
  // Seed derived from the name so each dataset is distinct but reproducible.
  std::uint64_t seed = 0xbeefULL;
  for (char c : name) seed = seed * 131 + static_cast<unsigned char>(c);
  if (name == "Elliptical") return make_elliptical(size, seed).positions;
  return make_gaussian_mixture(size, spec.dim, spec.clusters, seed);
}

double bench_scale_from_env() {
  const char* raw = std::getenv("PORTAL_BENCH_SCALE");
  if (raw == nullptr) return 1.0;
  const double value = std::atof(raw);
  if (value <= 0) return 1.0;
  return std::clamp(value, 0.01, 1000.0);
}

} // namespace portal
