// Portal -- the benchmark dataset registry (paper Table II).
//
// Each entry mirrors one of the paper's six evaluation datasets: same
// dimensionality, clustered structure, and the same *relative* ordering of
// sizes, scaled down to laptop scale (the paper ran 2M-42M points on a
// 128-core EPYC). `scale` multiplies every size; benchmarks read it from the
// PORTAL_BENCH_SCALE environment variable so the harness can be grown on
// bigger machines without recompiling.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/generators.h"
#include "util/common.h"

namespace portal {

struct DatasetSpec {
  std::string name;      // paper name, e.g. "Yahoo!"
  index_t paper_size;    // N in Table II
  index_t dim;           // d in Table II
  index_t default_size;  // our laptop-scale N at scale = 1
  index_t clusters;      // mixture components in the stand-in generator
};

/// The six Table II rows, in paper order.
const std::vector<DatasetSpec>& table2_specs();

/// Find a spec by (case-sensitive) paper name; throws if unknown.
const DatasetSpec& table2_spec(const std::string& name);

/// Materialize a Table II stand-in at `scale` times its default size.
/// "Elliptical" uses the elliptical particle generator; the rest are Gaussian
/// mixtures. Deterministic per (name, scale).
Dataset make_table2_dataset(const std::string& name, double scale = 1.0);

/// Value of PORTAL_BENCH_SCALE (default 1.0, clamped to [0.01, 1000]).
double bench_scale_from_env();

} // namespace portal
