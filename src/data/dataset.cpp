#include "data/dataset.h"

#include <cstring>
#include <stdexcept>

namespace portal {

Dataset::Dataset(index_t size, index_t dim, Layout layout)
    : size_(size), dim_(dim), layout_(layout) {
  if (size < 0 || dim < 0) throw std::invalid_argument("Dataset: negative shape");
  data_.allocate(static_cast<std::size_t>(size) * static_cast<std::size_t>(dim));
}

Dataset Dataset::from_row_major(const real_t* values, index_t size, index_t dim,
                                Layout layout) {
  Dataset out(size, dim, layout);
  if (layout == Layout::RowMajor) {
    std::memcpy(out.raw(), values,
                static_cast<std::size_t>(size) * dim * sizeof(real_t));
  } else {
    for (index_t i = 0; i < size; ++i)
      for (index_t d = 0; d < dim; ++d) out.coord(i, d) = values[i * dim + d];
  }
  return out;
}

Dataset Dataset::from_points(const std::vector<std::vector<real_t>>& points) {
  const index_t dim = points.empty() ? 0 : static_cast<index_t>(points[0].size());
  return from_points(points, choose_layout(dim));
}

Dataset Dataset::from_points(const std::vector<std::vector<real_t>>& points,
                             Layout layout) {
  const index_t size = static_cast<index_t>(points.size());
  const index_t dim = points.empty() ? 0 : static_cast<index_t>(points[0].size());
  Dataset out(size, dim, layout);
  for (index_t i = 0; i < size; ++i) {
    if (static_cast<index_t>(points[i].size()) != dim)
      throw std::invalid_argument("Dataset::from_points: ragged input");
    for (index_t d = 0; d < dim; ++d) out.coord(i, d) = points[i][d];
  }
  return out;
}

Dataset::Dataset(const Dataset& other)
    : size_(other.size_), dim_(other.dim_), layout_(other.layout_) {
  data_.allocate(static_cast<std::size_t>(size_) * dim_);
  std::memcpy(data_.data(), other.data_.data(),
              static_cast<std::size_t>(size_) * dim_ * sizeof(real_t));
}

Dataset& Dataset::operator=(const Dataset& other) {
  if (this != &other) {
    Dataset copy(other);
    *this = std::move(copy);
  }
  return *this;
}

void Dataset::copy_point(index_t i, real_t* out) const {
  if (layout_ == Layout::RowMajor) {
    std::memcpy(out, row_ptr(i), dim_ * sizeof(real_t));
  } else {
    for (index_t d = 0; d < dim_; ++d) out[d] = coord(i, d);
  }
}

void Dataset::permute(const std::vector<index_t>& perm) {
  if (static_cast<index_t>(perm.size()) != size_)
    throw std::invalid_argument("Dataset::permute: size mismatch");
  Dataset tmp(size_, dim_, layout_);
  for (index_t i = 0; i < size_; ++i)
    for (index_t d = 0; d < dim_; ++d) tmp.coord(i, d) = coord(perm[i], d);
  *this = std::move(tmp);
}

Dataset Dataset::with_layout(Layout layout) const {
  Dataset out(size_, dim_, layout);
  for (index_t i = 0; i < size_; ++i)
    for (index_t d = 0; d < dim_; ++d) out.coord(i, d) = coord(i, d);
  return out;
}

} // namespace portal
