#include "data/generators.h"

#include <cmath>

#include "util/rng.h"

namespace portal {

Dataset make_uniform(index_t size, index_t dim, std::uint64_t seed, real_t lo,
                     real_t hi) {
  Rng rng(seed);
  Dataset out(size, dim);
  for (index_t i = 0; i < size; ++i)
    for (index_t d = 0; d < dim; ++d) out.coord(i, d) = rng.uniform(lo, hi);
  return out;
}

Dataset make_gaussian_mixture(index_t size, index_t dim, index_t clusters,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real_t> centers(static_cast<std::size_t>(clusters) * dim);
  std::vector<real_t> stddevs(clusters);
  for (index_t c = 0; c < clusters; ++c) {
    for (index_t d = 0; d < dim; ++d) centers[c * dim + d] = rng.uniform(0, 10);
    stddevs[c] = rng.uniform(0.3, 1.0);
  }
  Dataset out(size, dim);
  for (index_t i = 0; i < size; ++i) {
    const index_t c = static_cast<index_t>(rng.uniform_index(clusters));
    for (index_t d = 0; d < dim; ++d)
      out.coord(i, d) = rng.normal(centers[c * dim + d], stddevs[c]);
  }
  return out;
}

LabeledDataset make_labeled_mixture(index_t size, index_t dim, index_t classes,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real_t> centers(static_cast<std::size_t>(classes) * dim);
  std::vector<real_t> stddevs(classes);
  for (index_t c = 0; c < classes; ++c) {
    for (index_t d = 0; d < dim; ++d) centers[c * dim + d] = rng.uniform(0, 10);
    stddevs[c] = rng.uniform(0.4, 1.2);
  }
  LabeledDataset out;
  out.points = Dataset(size, dim);
  out.labels.resize(size);
  out.num_classes = classes;
  for (index_t i = 0; i < size; ++i) {
    const index_t c = static_cast<index_t>(rng.uniform_index(classes));
    out.labels[i] = static_cast<int>(c);
    for (index_t d = 0; d < dim; ++d)
      out.points.coord(i, d) = rng.normal(centers[c * dim + d], stddevs[c]);
  }
  return out;
}

ParticleSet make_elliptical(index_t size, std::uint64_t seed, real_t radius) {
  Rng rng(seed);
  ParticleSet out;
  out.positions = Dataset(size, 3);
  out.masses.assign(size, real_t(1) / static_cast<real_t>(size));
  const real_t axis[3] = {1.0, 0.75, 0.5};
  for (index_t i = 0; i < size; ++i) {
    // Angularly uniform direction: cos(theta) uniform in [-1, 1], phi uniform.
    const real_t cos_t = rng.uniform(-1, 1);
    const real_t sin_t = std::sqrt(std::max(real_t(0), 1 - cos_t * cos_t));
    const real_t phi = rng.uniform(0, real_t(6.283185307179586));
    const real_t r = radius * std::cbrt(rng.uniform());
    const real_t p[3] = {r * sin_t * std::cos(phi), r * sin_t * std::sin(phi),
                         r * cos_t};
    for (int d = 0; d < 3; ++d) out.positions.coord(i, d) = axis[d] * p[d];
  }
  return out;
}

ParticleSet make_plummer(index_t size, std::uint64_t seed, real_t scale) {
  Rng rng(seed);
  ParticleSet out;
  out.positions = Dataset(size, 3);
  out.masses.assign(size, real_t(1) / static_cast<real_t>(size));
  for (index_t i = 0; i < size; ++i) {
    // Radius from the Plummer cumulative mass profile M(r) = r^3/(1+r^2)^{3/2}.
    real_t u = rng.uniform();
    if (u < 1e-12) u = 1e-12;
    const real_t r = scale / std::sqrt(std::pow(u, real_t(-2.0 / 3.0)) - 1);
    const real_t cos_t = rng.uniform(-1, 1);
    const real_t sin_t = std::sqrt(std::max(real_t(0), 1 - cos_t * cos_t));
    const real_t phi = rng.uniform(0, real_t(6.283185307179586));
    out.positions.coord(i, 0) = r * sin_t * std::cos(phi);
    out.positions.coord(i, 1) = r * sin_t * std::sin(phi);
    out.positions.coord(i, 2) = r * cos_t;
  }
  return out;
}

} // namespace portal
