// Portal -- dense point-set container with switchable memory layout.
//
// Sec. III-B / IV-F of the paper: Portal picks a column-major layout for
// low-dimensional data (d <= 4) so the *middle* base-case loop vectorizes
// across points, and row-major for higher dimensions so the innermost
// per-dimension loop vectorizes. Dataset implements both layouts behind one
// interface and exposes the raw contiguous arrays for the hot kernels.
#pragma once

#include <string>
#include <vector>

#include "util/aligned.h"
#include "util/common.h"

namespace portal {

enum class Layout { RowMajor, ColMajor };

/// Dimensionality threshold of the paper's layout policy: d <= 4 stores
/// points column-major, larger d row-major.
inline constexpr index_t kColMajorMaxDim = 4;

/// Applies the paper's layout policy to a dimensionality.
inline Layout choose_layout(index_t dim) {
  return dim <= kColMajorMaxDim ? Layout::ColMajor : Layout::RowMajor;
}

/// A fixed-size set of `size` points in `dim` dimensions.
///
/// Copyable (deep copy) and movable. The coordinate array is 64-byte aligned.
/// Access patterns:
///   - coord(i, d): layout-independent random access;
///   - row_ptr(i):  contiguous point, row-major only;
///   - col_ptr(d):  contiguous dimension slice, column-major only;
///   - raw():       the whole array for kernels specialized by layout.
class Dataset {
 public:
  Dataset() = default;

  /// Uninitialized (zeroed) dataset of given shape. Layout defaults to the
  /// paper's policy; callers may override (the ablation bench does).
  Dataset(index_t size, index_t dim, Layout layout);
  Dataset(index_t size, index_t dim) : Dataset(size, dim, choose_layout(dim)) {}

  /// From row-major values (size*dim, point-contiguous), re-laid out as needed.
  static Dataset from_row_major(const real_t* values, index_t size, index_t dim,
                                Layout layout);
  static Dataset from_row_major(const real_t* values, index_t size, index_t dim) {
    return from_row_major(values, size, dim, choose_layout(dim));
  }

  /// From a vector-of-vectors (the paper's `Storage query{input}` path).
  /// All inner vectors must share one length.
  static Dataset from_points(const std::vector<std::vector<real_t>>& points);
  static Dataset from_points(const std::vector<std::vector<real_t>>& points,
                             Layout layout);

  Dataset(const Dataset& other);
  Dataset& operator=(const Dataset& other);
  Dataset(Dataset&&) noexcept = default;
  Dataset& operator=(Dataset&&) noexcept = default;

  index_t size() const { return size_; }
  index_t dim() const { return dim_; }
  Layout layout() const { return layout_; }
  bool empty() const { return size_ == 0; }

  real_t& coord(index_t point, index_t d) {
    return data_[offset(point, d)];
  }
  real_t coord(index_t point, index_t d) const {
    return data_[offset(point, d)];
  }

  /// Copy point `i` into `out[0..dim)` regardless of layout.
  void copy_point(index_t i, real_t* out) const;

  /// Pointer to point i's contiguous coordinates. Row-major only.
  const real_t* row_ptr(index_t i) const { return data_.data() + i * dim_; }
  real_t* row_ptr(index_t i) { return data_.data() + i * dim_; }

  /// Pointer to dimension d's contiguous slice. Column-major only.
  const real_t* col_ptr(index_t d) const { return data_.data() + d * size_; }
  real_t* col_ptr(index_t d) { return data_.data() + d * size_; }

  const real_t* raw() const { return data_.data(); }
  real_t* raw() { return data_.data(); }

  /// Reorder points so that new position i holds old point perm[i].
  /// Used by tree builders to make leaves contiguous.
  void permute(const std::vector<index_t>& perm);

  /// Deep-copy into the other layout (ablation support).
  Dataset with_layout(Layout layout) const;

 private:
  index_t offset(index_t point, index_t d) const {
    return layout_ == Layout::RowMajor ? point * dim_ + d : d * size_ + point;
  }

  index_t size_ = 0;
  index_t dim_ = 0;
  Layout layout_ = Layout::RowMajor;
  AlignedBuffer<real_t> data_;
};

} // namespace portal
