// Portal -- synthetic dataset generators.
//
// The paper evaluates on six real datasets (Table II). Those are not
// redistributable here, so each is replaced by a deterministic generator that
// preserves the properties tree-based N-body algorithms are sensitive to:
// dimensionality and clustered (non-uniform) structure. See DESIGN.md Sec. 2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/common.h"

namespace portal {

/// Uniform points in [lo, hi]^dim.
Dataset make_uniform(index_t size, index_t dim, std::uint64_t seed,
                     real_t lo = 0, real_t hi = 1);

/// Mixture of `clusters` isotropic Gaussians with random centers in
/// [0, 10]^dim and per-cluster stddev in [0.3, 1.0]. The default stand-in for
/// the UCI-style datasets: real tabular data is strongly clustered, which is
/// what gives dual-tree pruning its wins.
Dataset make_gaussian_mixture(index_t size, index_t dim, index_t clusters,
                              std::uint64_t seed);

/// Labeled mixture (for the naive Bayes classifier): same as above but also
/// returns the generating component of each point and per-class moments.
struct LabeledDataset {
  Dataset points;
  std::vector<int> labels;
  index_t num_classes = 0;
};
LabeledDataset make_labeled_mixture(index_t size, index_t dim, index_t classes,
                                    std::uint64_t seed);

/// The paper's "Elliptical" Barnes-Hut dataset: particles angularly uniform in
/// spherical coordinates, radius r = R * cbrt(U) (uniform density in the
/// ball), then squashed per-axis by 1 : 0.75 : 0.5 into an ellipsoid. 3-D.
/// Also returns unit masses (the paper treats equal-mass particles).
struct ParticleSet {
  Dataset positions; // 3-D
  std::vector<real_t> masses;
};
ParticleSet make_elliptical(index_t size, std::uint64_t seed, real_t radius = 1);

/// Plummer sphere (classic astrophysics benchmark distribution) -- used by the
/// extra galaxy-simulation example; heavier central concentration than the
/// elliptical set, stressing the approximation path harder.
ParticleSet make_plummer(index_t size, std::uint64_t seed, real_t scale = 1);

} // namespace portal
