#include "index/knn_graph.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>

#include "kernels/batch.h"
#include "obs/trace.h"
#include "util/threading.h"

namespace portal {
namespace {

/// Gathered-tile chunk width for candidate distance evaluation. Per-pair
/// results are independent of the chunking (ascending-dimension
/// accumulation), so this is a throughput knob only.
constexpr index_t kGatherChunk = 128;

/// splitmix64 finalizer -- the deterministic id stream behind the seeded
/// random initialization.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Per-thread build scratch: candidate pools, the gathered SIMD tile, and
/// the scored list the row selection sorts. Reused across points.
struct BuildScratch {
  std::vector<real_t> qpt;
  std::vector<index_t> blist;  // B(u) = adj(u) union rev(u)
  std::vector<index_t> pool;
  std::vector<real_t> tile;
  std::vector<real_t> tile_sq;
  std::vector<std::pair<real_t, index_t>> scored;
};

} // namespace

KnnGraph::KnnGraph(const Dataset& data, const KnnGraphOptions& options) {
  if (data.empty())
    throw std::invalid_argument("KnnGraph: empty dataset");
  const auto t0 = std::chrono::steady_clock::now();
  PORTAL_OBS_SCOPE(graph_build_scope, "index/graph/build");

  data_ = data; // original order: neighbor ids are client ids
  mirror_.build(data_, options.parallel_build);
  const index_t n = data_.size();
  const index_t dim = data_.dim();
  degree_ = std::min<index_t>(std::max<index_t>(options.degree, 0), n - 1);
  const index_t K = degree_;

  std::uint64_t total_updates = 0;
  std::uint64_t total_evals = 0;
  index_t rounds = 0;

  if (K > 0) {
    adj_.assign(static_cast<std::size_t>(n * K), -1);
    adj_sq_.assign(static_cast<std::size_t>(n * K),
                   std::numeric_limits<real_t>::max());

    const bool use_threads =
        options.parallel_build && !in_parallel_region() && num_threads() > 1;

    // Evaluate every candidate in s.pool (deduped, u excluded) against u and
    // keep the K smallest by (squared distance, id). Returns the number of
    // slots that changed versus the previous row. Rows are sorted, so the
    // positional id comparison is a set comparison.
    const auto select_row = [&](index_t u, BuildScratch& s, index_t* row_ids,
                                real_t* row_sq) -> index_t {
      const index_t m = static_cast<index_t>(s.pool.size());
      s.qpt.resize(static_cast<std::size_t>(dim));
      data_.copy_point(u, s.qpt.data());
      s.tile.resize(static_cast<std::size_t>(dim * kGatherChunk));
      s.tile_sq.resize(static_cast<std::size_t>(kGatherChunk));
      s.scored.clear();
      s.scored.reserve(static_cast<std::size_t>(m));
      for (index_t b = 0; b < m; b += kGatherChunk) {
        const index_t w = std::min<index_t>(kGatherChunk, m - b);
        const batch::Tile t =
            batch::gather(mirror_.lanes(), mirror_.stride(), dim,
                          s.pool.data() + b, w, s.tile.data(), kGatherChunk);
        batch::sq_dists(t, s.qpt.data(), s.tile_sq.data());
        for (index_t j = 0; j < w; ++j)
          s.scored.emplace_back(s.tile_sq[static_cast<std::size_t>(j)],
                                s.pool[static_cast<std::size_t>(b + j)]);
      }
      std::partial_sort(s.scored.begin(),
                        s.scored.begin() + static_cast<std::ptrdiff_t>(K),
                        s.scored.end());
      index_t changed = 0;
      for (index_t slot = 0; slot < K; ++slot) {
        const auto& best = s.scored[static_cast<std::size_t>(slot)];
        changed += row_ids[slot] == best.second ? 0 : 1;
        row_ids[slot] = best.second;
        row_sq[slot] = best.first;
      }
      return changed;
    };

    // Seeded random initialization: K distinct ids per point from the
    // splitmix64 stream -- per-point independent, so serial and parallel
    // agree bitwise.
    std::uint64_t init_evals = 0;
#pragma omp parallel if (use_threads)
    {
      BuildScratch s;
#pragma omp for schedule(static) reduction(+ : init_evals)
      for (index_t u = 0; u < n; ++u) {
        s.pool.clear();
        std::uint64_t t = 0;
        while (static_cast<index_t>(s.pool.size()) < K) {
          const std::uint64_t h =
              mix64(options.seed ^
                    (static_cast<std::uint64_t>(u) * 0x9e3779b97f4a7c15ULL) ^
                    (t * 0xd1b54a32d192ed03ULL));
          ++t;
          const index_t c = static_cast<index_t>(h % static_cast<std::uint64_t>(n));
          if (c == u ||
              std::find(s.pool.begin(), s.pool.end(), c) != s.pool.end())
            continue;
          s.pool.push_back(c);
        }
        init_evals += static_cast<std::uint64_t>(s.pool.size());
        select_row(u, s, adj_.data() + u * K, adj_sq_.data() + u * K);
      }
    }
    total_evals += init_evals;

    // Jacobi nn-descent rounds: every point rebuilds its own row from the
    // previous round's graph. The reverse adjacency is materialized once per
    // round in ascending-u order (capped at K entries per target), so the
    // candidate pools -- and therefore the result -- are identical however
    // the point loop is scheduled.
    std::vector<index_t> next_adj(adj_.size());
    std::vector<real_t> next_sq(adj_sq_.size());
    std::vector<index_t> rev_cnt(static_cast<std::size_t>(n));
    std::vector<index_t> rev_off(static_cast<std::size_t>(n) + 1);
    std::vector<index_t> rev_ids;
    std::vector<index_t> rev_cursor(static_cast<std::size_t>(n));
    const std::uint64_t stop_below = static_cast<std::uint64_t>(
        options.termination * static_cast<real_t>(n) * static_cast<real_t>(K));

    for (index_t round = 0; round < options.max_rounds; ++round) {
      std::fill(rev_cnt.begin(), rev_cnt.end(), index_t{0});
      for (index_t u = 0; u < n; ++u)
        for (index_t slot = 0; slot < K; ++slot) {
          const index_t v = adj_[static_cast<std::size_t>(u * K + slot)];
          if (rev_cnt[static_cast<std::size_t>(v)] < K)
            ++rev_cnt[static_cast<std::size_t>(v)];
        }
      rev_off[0] = 0;
      for (index_t v = 0; v < n; ++v)
        rev_off[static_cast<std::size_t>(v) + 1] =
            rev_off[static_cast<std::size_t>(v)] +
            rev_cnt[static_cast<std::size_t>(v)];
      rev_ids.resize(static_cast<std::size_t>(rev_off[static_cast<std::size_t>(n)]));
      std::copy(rev_off.begin(), rev_off.end() - 1, rev_cursor.begin());
      for (index_t u = 0; u < n; ++u)
        for (index_t slot = 0; slot < K; ++slot) {
          const index_t v = adj_[static_cast<std::size_t>(u * K + slot)];
          index_t& cur = rev_cursor[static_cast<std::size_t>(v)];
          if (cur < rev_off[static_cast<std::size_t>(v) + 1])
            rev_ids[static_cast<std::size_t>(cur++)] = u;
        }

      std::uint64_t round_updates = 0;
      std::uint64_t round_evals = 0;
#pragma omp parallel if (use_threads)
      {
        BuildScratch s;
#pragma omp for schedule(static) reduction(+ : round_updates, round_evals)
        for (index_t u = 0; u < n; ++u) {
          s.blist.clear();
          const index_t* row = adj_.data() + u * K;
          s.blist.insert(s.blist.end(), row, row + K);
          for (index_t i = rev_off[static_cast<std::size_t>(u)];
               i < rev_off[static_cast<std::size_t>(u) + 1]; ++i)
            s.blist.push_back(rev_ids[static_cast<std::size_t>(i)]);

          s.pool.assign(s.blist.begin(), s.blist.end());
          for (const index_t v : s.blist) {
            const index_t* vrow = adj_.data() + v * K;
            s.pool.insert(s.pool.end(), vrow, vrow + K);
            for (index_t i = rev_off[static_cast<std::size_t>(v)];
                 i < rev_off[static_cast<std::size_t>(v) + 1]; ++i)
              s.pool.push_back(rev_ids[static_cast<std::size_t>(i)]);
          }
          std::sort(s.pool.begin(), s.pool.end());
          s.pool.erase(std::unique(s.pool.begin(), s.pool.end()), s.pool.end());
          s.pool.erase(std::remove(s.pool.begin(), s.pool.end(), u),
                       s.pool.end());

          round_evals += static_cast<std::uint64_t>(s.pool.size());
          std::copy(row, row + K, next_adj.data() + u * K);
          round_updates += static_cast<std::uint64_t>(
              select_row(u, s, next_adj.data() + u * K, next_sq.data() + u * K));
        }
      }
      adj_.swap(next_adj);
      adj_sq_.swap(next_sq);
      ++rounds;
      total_updates += round_updates;
      total_evals += round_evals;
      if (round_updates <= stop_below) break;
    }

    // Final reverse-edge CSR for the search (symmetrized expansion), capped
    // at 2K per target, first occurrences in ascending-u order -- the same
    // deterministic capping rule the rounds used.
    const index_t rev_cap = 2 * K;
    std::fill(rev_cnt.begin(), rev_cnt.end(), index_t{0});
    for (index_t u = 0; u < n; ++u)
      for (index_t slot = 0; slot < K; ++slot) {
        const index_t v = adj_[static_cast<std::size_t>(u * K + slot)];
        if (rev_cnt[static_cast<std::size_t>(v)] < rev_cap)
          ++rev_cnt[static_cast<std::size_t>(v)];
      }
    rev_off_.resize(static_cast<std::size_t>(n) + 1);
    rev_off_[0] = 0;
    for (index_t v = 0; v < n; ++v)
      rev_off_[static_cast<std::size_t>(v) + 1] =
          rev_off_[static_cast<std::size_t>(v)] +
          rev_cnt[static_cast<std::size_t>(v)];
    rev_ids_.resize(static_cast<std::size_t>(rev_off_[static_cast<std::size_t>(n)]));
    std::copy(rev_off_.begin(), rev_off_.end() - 1, rev_cursor.begin());
    for (index_t u = 0; u < n; ++u)
      for (index_t slot = 0; slot < K; ++slot) {
        const index_t v = adj_[static_cast<std::size_t>(u * K + slot)];
        index_t& cur = rev_cursor[static_cast<std::size_t>(v)];
        if (cur < rev_off_[static_cast<std::size_t>(v) + 1])
          rev_ids_[static_cast<std::size_t>(cur++)] = u;
      }
  } else {
    rev_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  }

  // Fixed search-seed permutation: a search with beam width w enters the
  // graph at the first w entries. A plain id-stride sample here is a trap:
  // it can alias against the dataset's ordering (observed on clustered
  // data, where every multiple of the stride missed one cluster) and at
  // high dimension the graph's components are disconnected, so a component
  // with no seed is simply unreachable. A seeded Fisher-Yates shuffle is
  // deterministic, gives distinct ids at every width, still covers the
  // whole dataset at width == n, and cannot alias with data order.
  seed_order_.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) seed_order_[static_cast<std::size_t>(i)] = i;
  for (index_t i = n - 1; i > 0; --i) {
    const std::uint64_t r =
        mix64(options.seed ^ 0x5851f42d4c957f2dULL ^
              static_cast<std::uint64_t>(i) * 0x14057b7ef767814fULL);
    std::swap(seed_order_[static_cast<std::size_t>(i)],
              seed_order_[static_cast<std::size_t>(
                  r % static_cast<std::uint64_t>(i + 1))]);
  }

  // Component representatives: at high dimension the k-NN graph falls apart
  // into one component per cluster (no point's row reaches across), and a
  // component without a seed is unreachable no matter how wide the beam.
  // A deterministic union-find over the forward edges (reverse edges add no
  // connectivity: undirected reachability is the same) yields the min-id
  // representative of every component; search seeds those first, so every
  // component has an entry point at any beam width.
  {
    std::vector<index_t> parent(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) parent[static_cast<std::size_t>(i)] = i;
    const auto find = [&parent](index_t x) {
      while (parent[static_cast<std::size_t>(x)] != x) {
        parent[static_cast<std::size_t>(x)] =
            parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
        x = parent[static_cast<std::size_t>(x)];
      }
      return x;
    };
    for (index_t u = 0; u < n; ++u)
      for (index_t slot = 0; slot < K; ++slot) {
        const index_t a = find(u);
        const index_t b = find(adj_[static_cast<std::size_t>(u * K + slot)]);
        if (a != b) parent[static_cast<std::size_t>(std::max(a, b))] =
            std::min(a, b);
      }
    comp_reps_.clear();
    for (index_t i = 0; i < n; ++i)
      if (find(i) == i) comp_reps_.push_back(i);  // ascending => min ids
  }

  stats_.rounds = rounds;
  stats_.updates = total_updates;
  stats_.dist_evals = total_evals;
  stats_.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  PORTAL_OBS_COUNT("index/graph/builds", 1);
  PORTAL_OBS_COUNT("index/graph/build_rounds",
                   static_cast<std::uint64_t>(rounds));
  PORTAL_OBS_COUNT("index/graph/build_dist_evals", total_evals);
  PORTAL_OBS_COUNT("index/graph/build_points", static_cast<std::uint64_t>(n));
}

index_t KnnGraph::search(const real_t* query, index_t k, index_t beam,
                         SearchScratch& scratch, real_t* out_sq,
                         index_t* out_ids) const {
  scratch.hops = 0;
  scratch.dist_evals = 0;
  const index_t n = size();
  if (n == 0 || k <= 0) return 0;
  const index_t width = std::min<index_t>(std::max<index_t>(beam, k), n);
  const index_t dim = data_.dim();

  if (static_cast<index_t>(scratch.visited.size()) < n) {
    scratch.visited.assign(static_cast<std::size_t>(n), 0);
    scratch.generation = 0;
  }
  const std::uint64_t gen = ++scratch.generation;
  scratch.beam_sq.resize(static_cast<std::size_t>(width));
  scratch.beam_ids.resize(static_cast<std::size_t>(width));
  scratch.expanded.resize(static_cast<std::size_t>(width));
  // Expansion gathers one forward row plus up to 2x degree reverse edges.
  const index_t tile_w = std::max<index_t>(3 * degree_, kGatherChunk);
  scratch.gather_ids.resize(static_cast<std::size_t>(tile_w));
  scratch.tile.resize(static_cast<std::size_t>(dim * tile_w));
  scratch.tile_sq.resize(static_cast<std::size_t>(tile_w));

  index_t count = 0;
  // Sorted (sq, id) insert; ties break toward the smaller id, so the beam
  // contents are a deterministic function of the visited set alone.
  const auto insert = [&](real_t d, index_t id) {
    if (count == width) {
      const real_t wd = scratch.beam_sq[static_cast<std::size_t>(width - 1)];
      const index_t wi = scratch.beam_ids[static_cast<std::size_t>(width - 1)];
      if (d > wd || (d == wd && id > wi)) return;
    }
    index_t pos = count < width ? count : width - 1;
    while (pos > 0 &&
           (scratch.beam_sq[static_cast<std::size_t>(pos - 1)] > d ||
            (scratch.beam_sq[static_cast<std::size_t>(pos - 1)] == d &&
             scratch.beam_ids[static_cast<std::size_t>(pos - 1)] > id))) {
      scratch.beam_sq[static_cast<std::size_t>(pos)] =
          scratch.beam_sq[static_cast<std::size_t>(pos - 1)];
      scratch.beam_ids[static_cast<std::size_t>(pos)] =
          scratch.beam_ids[static_cast<std::size_t>(pos - 1)];
      scratch.expanded[static_cast<std::size_t>(pos)] =
          scratch.expanded[static_cast<std::size_t>(pos - 1)];
      --pos;
    }
    scratch.beam_sq[static_cast<std::size_t>(pos)] = d;
    scratch.beam_ids[static_cast<std::size_t>(pos)] = id;
    scratch.expanded[static_cast<std::size_t>(pos)] = 0;
    if (count < width) ++count;
  };

  const auto eval_batch = [&](index_t m) {
    const batch::Tile t =
        batch::gather(mirror_.lanes(), mirror_.stride(), dim,
                      scratch.gather_ids.data(), m, scratch.tile.data(), tile_w);
    batch::sq_dists(t, query, scratch.tile_sq.data());
    scratch.dist_evals += static_cast<std::uint64_t>(m);
    for (index_t j = 0; j < m; ++j)
      insert(scratch.tile_sq[static_cast<std::size_t>(j)],
             scratch.gather_ids[static_cast<std::size_t>(j)]);
  };

  // Query-independent seeds: every component representative first (so no
  // part of the graph is unreachable at any width), then the build-time
  // pseudo-random permutation until `width` distinct entry points are in
  // -- spread across the dataset without aliasing against its ordering.
  index_t m = 0;
  index_t seeded = 0;
  const auto seed = [&](index_t id) {
    if (scratch.visited[static_cast<std::size_t>(id)] == gen) return;
    scratch.visited[static_cast<std::size_t>(id)] = gen;
    scratch.gather_ids[static_cast<std::size_t>(m++)] = id;
    ++seeded;
    if (m == tile_w) {
      eval_batch(m);
      m = 0;
    }
  };
  for (const index_t rep : comp_reps_) seed(rep);
  for (index_t j = 0; j < n && seeded < width; ++j)
    seed(seed_order_[static_cast<std::size_t>(j)]);
  if (m > 0) eval_batch(m);

  // Best-first expansion: always the nearest unexpanded beam entry; stops
  // when the whole beam is expanded (anything discovered from here on would
  // have had to beat the current worst to enter the beam).
  for (;;) {
    index_t p = -1;
    for (index_t i = 0; i < count; ++i)
      if (!scratch.expanded[static_cast<std::size_t>(i)]) {
        p = i;
        break;
      }
    if (p < 0) break;
    scratch.expanded[static_cast<std::size_t>(p)] = 1;
    ++scratch.hops;
    // Symmetrized expansion: forward row plus reverse edges. The forward
    // graph alone is short-range -- without the reverse edges a beam seeded
    // far from the query cannot walk into its true neighborhood.
    const index_t v = scratch.beam_ids[static_cast<std::size_t>(p)];
    const index_t* row = neighbor_ids(v);
    const index_t* rev = reverse_ids(v);
    const index_t nrev = reverse_count(v);
    index_t fresh = 0;
    const auto visit = [&](index_t c) {
      if (scratch.visited[static_cast<std::size_t>(c)] == gen) return;
      scratch.visited[static_cast<std::size_t>(c)] = gen;
      scratch.gather_ids[static_cast<std::size_t>(fresh++)] = c;
    };
    for (index_t slot = 0; slot < degree_; ++slot) visit(row[slot]);
    for (index_t slot = 0; slot < nrev; ++slot) visit(rev[slot]);
    if (fresh > 0) eval_batch(fresh);
  }

  const index_t filled = std::min<index_t>(k, count);
  for (index_t j = 0; j < filled; ++j) {
    out_sq[j] = scratch.beam_sq[static_cast<std::size_t>(j)];
    out_ids[j] = scratch.beam_ids[static_cast<std::size_t>(j)];
  }
  PORTAL_OBS_COUNT("index/graph/queries", 1);
  PORTAL_OBS_COUNT("index/graph/hops", scratch.hops);
  PORTAL_OBS_COUNT("index/graph/dist_evals", scratch.dist_evals);
  return filled;
}

} // namespace portal
