// Portal -- nn-descent k-NN graph index for approximate high-dimensional
// serving (DESIGN.md Sec. 18).
//
// kd/ball trees collapse toward brute force above d ~ 20, but the serving
// workloads the paper targets reach d = 68. This module adds a fourth
// spatial structure that trades a bounded, tunable amount of recall for
// latency that stays flat in dimension: a k-nearest-neighbor graph built
// with NN-Descent (Dong et al.) and queried with best-first beam search.
//
// The graph honors the same contracts the trees already do:
//   * Deterministic seeded build: the parallel build is bitwise-identical
//     to the serial one. Each nn-descent round is Jacobi-style -- every
//     point recomputes its own adjacency row from the *previous* round's
//     graph (forward neighbors, reverse neighbors, and their neighbors),
//     so rows are written by exactly one thread and read-only elsewhere,
//     and per-pair distances are independent FP computations.
//   * SoA-mirror reuse: candidate distances run through the batched SIMD
//     kernels (kernels/batch.h) over gathered dimension-major tiles. The
//     per-pair accumulation visits dimensions in ascending order, exactly
//     like the scalar helpers, so every distance the graph reports is
//     bitwise-equal to what the exact engine computes for the same pair.
//   * Immutable after construction: a snapshot carries the graph alongside
//     its trees (tree/snapshot.h) and publishes it with the same epoch
//     pointer swap; any number of threads may search concurrently.
//   * Observability: builds and queries emit index/graph/* counters and
//     timers through the obs layer (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "tree/soa_mirror.h"
#include "util/common.h"

namespace portal {

/// Build-time knobs. `degree` and `seed` shape the graph (two builds with
/// equal options over equal data are bitwise-identical, parallel or not);
/// the round limits only bound how close nn-descent gets to the true k-NN
/// graph before stopping.
struct KnnGraphOptions {
  index_t degree = 20;     // adjacency row width (clamped to size - 1)
  index_t max_rounds = 8;  // nn-descent refinement rounds after random init
  /// Stop early once a round replaces fewer than termination * size * degree
  /// neighbor slots (the classic nn-descent delta rule).
  real_t termination = real_t(1e-3);
  std::uint64_t seed = 0x706f7274616cULL;
  bool parallel_build = true;
};

struct KnnGraphStats {
  index_t rounds = 0;            // refinement rounds actually run
  std::uint64_t updates = 0;     // adjacency slots replaced across rounds
  std::uint64_t dist_evals = 0;  // pair distances evaluated by the build
  double build_seconds = 0;
};

/// Immutable approximate k-NN graph over a dataset, in *original* point
/// order (no permutation: neighbor ids and search results are client ids
/// directly). Distances are squared Euclidean internally -- the structural
/// ordering is identical for Euclidean, and the serve layer takes the sqrt
/// at the edge exactly like the exact engine does.
class KnnGraph {
 public:
  /// Builds the graph. Throws std::invalid_argument on an empty dataset
  /// (matching TreeSnapshot::build). A single-point dataset yields a valid
  /// graph of degree 0.
  explicit KnnGraph(const Dataset& data, const KnnGraphOptions& options = {});

  index_t size() const { return data_.size(); }
  index_t dim() const { return data_.dim(); }
  /// Actual row width: min(options.degree, size - 1).
  index_t degree() const { return degree_; }
  const Dataset& data() const { return data_; }
  const SoaMirror& mirror() const { return mirror_; }
  const KnnGraphStats& stats() const { return stats_; }

  /// Point i's neighbor ids / squared distances, ascending by
  /// (distance, id). Valid for i in [0, size()); degree() entries each.
  const index_t* neighbor_ids(index_t i) const {
    return adj_.data() + i * degree_;
  }
  const real_t* neighbor_sq(index_t i) const {
    return adj_sq_.data() + i * degree_;
  }

  /// Point i's *reverse* neighbors: points that list i in their row, capped
  /// at 2 * degree() (first occurrences in ascending-id order). The search
  /// expands the symmetrized graph -- forward rows alone are short-range
  /// only and navigate poorly from distant seeds; the reverse edges are
  /// what let the beam walk into a query's true neighborhood.
  const index_t* reverse_ids(index_t i) const {
    return rev_ids_.data() + rev_off_[static_cast<std::size_t>(i)];
  }
  index_t reverse_count(index_t i) const {
    return rev_off_[static_cast<std::size_t>(i) + 1] -
           rev_off_[static_cast<std::size_t>(i)];
  }

  /// Reusable per-thread search scratch; sized lazily, never shared. The
  /// visited stamps are O(size) but allocated once and generation-tagged, so
  /// repeated searches touch only the entries they visit.
  struct SearchScratch {
    std::vector<std::uint64_t> visited;
    std::uint64_t generation = 0;
    std::vector<real_t> beam_sq;
    std::vector<index_t> beam_ids;
    std::vector<char> expanded;
    std::vector<index_t> gather_ids;
    std::vector<real_t> tile;     // gathered dimension-major candidate tile
    std::vector<real_t> tile_sq;  // per-candidate squared distances
    // Per-search effort, overwritten by every call (the serve layer folds
    // them into TraversalStats).
    std::uint64_t hops = 0;
    std::uint64_t dist_evals = 0;
  };

  /// Best-first beam search: returns up to `k` approximate nearest ids with
  /// their squared Euclidean distances, ascending by (distance, id). The
  /// beam keeps the best max(beam, k) candidates seen; the search expands
  /// the nearest unexpanded beam entry until the whole beam is expanded.
  /// Seeds are every connected-component representative (so no part of a
  /// disconnected graph is unreachable at any width) followed by entries
  /// of a fixed build-time pseudo-random permutation up to max(beam, k)
  /// distinct ids -- deterministic, spread across the dataset without
  /// aliasing against its ordering (a stride sample can strand whole
  /// components unseeded on clustered data), covering every point when
  /// the beam spans the dataset. Equal inputs always return equal
  /// results. Returns the number of slots filled
  /// (min(k, size())). Distances are bitwise-equal to the scalar
  /// ascending-dimension accumulation for every returned pair.
  index_t search(const real_t* query, index_t k, index_t beam,
                 SearchScratch& scratch, real_t* out_sq,
                 index_t* out_ids) const;

 private:
  Dataset data_;      // original order -- ids below are client ids
  SoaMirror mirror_;  // dimension-major lanes over data_
  index_t degree_ = 0;
  std::vector<index_t> adj_;  // size * degree ids, row-sorted by (sq, id)
  std::vector<real_t> adj_sq_;
  std::vector<index_t> rev_off_;  // CSR over the capped reverse edges
  std::vector<index_t> rev_ids_;
  std::vector<index_t> seed_order_;  // fixed search-seed permutation
  std::vector<index_t> comp_reps_;   // min-id rep per connected component
  KnnGraphStats stats_;
};

} // namespace portal
