#include "serve/live.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "obs/trace.h"
#include "tree/kdtree.h"

namespace portal::serve {
namespace {

bool coords_equal(const Dataset& data, index_t i, const real_t* point,
                  index_t dim) {
  for (index_t d = 0; d < dim; ++d)
    if (data.coord(i, d) != point[d]) return false;
  return true;
}

/// Exact-coordinate lookup in the main tree: descend every node whose box
/// contains the point (tight boxes, so typically one path), scan the leaf
/// range for a bitwise match that `alive` accepts. Returns the *permuted*
/// index, or -1.
template <typename Alive>
index_t find_main_exact(const KdTree& kd, const real_t* point,
                        const Alive& alive) {
  std::vector<index_t> stack{kd.root_index()};
  while (!stack.empty()) {
    const index_t n = stack.back();
    stack.pop_back();
    const KdNode& node = kd.node(n);
    if (!node.box.contains(point)) continue;
    if (!node.is_leaf()) {
      stack.push_back(node.left);
      stack.push_back(node.right);
      continue;
    }
    for (index_t j = node.begin; j < node.end; ++j)
      if (alive(j) && coords_equal(kd.data(), j, point, kd.data().dim()))
        return j;
  }
  return -1;
}

/// The merge's parallel decomposition: walk down from the root, repeatedly
/// splitting the largest frontier node, until there are enough subtrees to
/// feed the machine. Preorder construction makes every frontier node one
/// contiguous permuted range, and together they partition [0, size).
std::vector<std::pair<index_t, index_t>> top_level_ranges(const KdTree& kd) {
  int threads = 1;
#ifdef _OPENMP
  threads = omp_get_max_threads();
#endif
  const std::size_t target = static_cast<std::size_t>(std::max(1, 4 * threads));
  std::vector<index_t> frontier{kd.root_index()};
  while (frontier.size() < target) {
    std::size_t best = frontier.size();
    index_t best_count = 0;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const KdNode& node = kd.node(frontier[i]);
      if (node.is_leaf()) continue;
      if (node.count() > best_count) {
        best_count = node.count();
        best = i;
      }
    }
    if (best == frontier.size()) break; // all leaves
    const KdNode& node = kd.node(frontier[best]);
    frontier[best] = node.left;
    frontier.push_back(node.right);
  }
  std::vector<std::pair<index_t, index_t>> ranges;
  ranges.reserve(frontier.size());
  for (const index_t n : frontier)
    ranges.emplace_back(kd.node(n).begin, kd.node(n).end);
  std::sort(ranges.begin(), ranges.end());
  return ranges;
}

IngestResult reject(std::string why) {
  IngestResult r;
  r.status = IngestStatus::Rejected;
  r.error = std::move(why);
  return r;
}

} // namespace

LiveStore::LiveStore(LiveStoreOptions options) : options_(std::move(options)) {
  if (options_.delta_capacity < 1) options_.delta_capacity = 1;
  if (options_.merge_threshold < 1) options_.merge_threshold = 1;
  if (options_.merge_threshold > options_.delta_capacity)
    options_.merge_threshold = options_.delta_capacity;
  if (options_.background_merge)
    merger_ = std::thread(&LiveStore::merger_loop, this);
}

LiveStore::~LiveStore() { stop(); }

void LiveStore::stop() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  merge_cv_.notify_all();
  space_cv_.notify_all();
  if (merger_.joinable()) merger_.join();
}

std::shared_ptr<const TreeSnapshot> LiveStore::publish(
    std::shared_ptr<const Dataset> data) {
  // Serialized against merges: a merge must never re-publish a union
  // gathered from a generation this publish retires.
  MutexLock merge_lock(merge_mutex_);
  auto snap = slot_.publish(std::move(data), options_.snapshot);
  {
    MutexLock lock(mu_);
    snap_ = snap;
    delta_ = std::make_shared<DeltaTree>(snap->dim(), options_.delta_capacity,
                                         snap->size());
    rebuild_view_locked();
  }
  space_cv_.notify_all();
  return snap;
}

void LiveStore::rebuild_view_locked() {
  auto view = std::make_shared<LiveView>();
  view->snapshot = snap_;
  view->delta = delta_;
  view->watermark = seq_;
  view->delta_count = delta_ ? delta_->count() : 0;
  view->filter_main = delta_ && delta_->main_kill_count() > 0;
  view_ = std::move(view);
}

std::shared_ptr<const LiveView> LiveStore::pin() const {
  MutexLock lock(mu_);
  return view_;
}

std::shared_ptr<const TreeSnapshot> LiveStore::snapshot() const {
  MutexLock lock(mu_);
  return snap_;
}

std::uint64_t LiveStore::current_epoch() const {
  MutexLock lock(mu_);
  return snap_ ? snap_->epoch() : 0;
}

std::uint64_t LiveStore::watermark() const {
  MutexLock lock(mu_);
  return seq_;
}

IngestResult LiveStore::insert(const real_t* point, index_t dim) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double, std::milli>(options_.overflow_wait_ms);
  bool tried_sync = false;
  while (true) {
    bool want_sync = false;
    {
      MutexLock lock(mu_);
      if (!snap_) return reject("no dataset published");
      if (dim != snap_->dim())
        return reject("insert point has " + std::to_string(dim) +
                      " coordinates, dataset has " +
                      std::to_string(snap_->dim()));
      const index_t slot = delta_->append(point, seq_ + 1);
      if (slot >= 0) {
        ++seq_;
        rebuild_view_locked();
        inserts_.fetch_add(1, std::memory_order_relaxed);
        PORTAL_OBS_COUNT("serve/ingest/inserts", 1);
        if (delta_->count() >= options_.merge_threshold)
          merge_cv_.notify_one();
        IngestResult r;
        r.status = IngestStatus::Ok;
        r.seq = seq_;
        r.id = delta_->main_size() + slot;
        return r;
      }
      // Overflow admission: give the background merger a bounded window to
      // drain, then fall back to merging on this thread; reject only when a
      // merge genuinely could not free a slot.
      if (options_.background_merge && !stopping_ &&
          std::chrono::steady_clock::now() < deadline) {
        PORTAL_OBS_COUNT("serve/ingest/overflow_waits", 1);
        merge_cv_.notify_one();
        space_cv_.wait_for(mu_, std::chrono::milliseconds(10));
        continue;
      }
      if (!tried_sync) want_sync = true;
    }
    if (want_sync) {
      tried_sync = true;
      merge_once();
      continue;
    }
    rejected_.fetch_add(1, std::memory_order_relaxed);
    PORTAL_OBS_COUNT("serve/ingest/rejected", 1);
    return reject("delta full (merge could not drain it)");
  }
}

IngestResult LiveStore::remove(const real_t* point, index_t dim) {
  MutexLock lock(mu_);
  if (!snap_) return reject("no dataset published");
  if (dim != snap_->dim())
    return reject("remove point has " + std::to_string(dim) +
                  " coordinates, dataset has " + std::to_string(snap_->dim()));

  // Newest-first over live delta slots: remove-then-reinsert-then-remove
  // chains must always take out the most recent incarnation.
  for (index_t s = delta_->count() - 1; s >= 0; --s) {
    if (delta_->slot_dead(s, seq_)) continue;
    if (!coords_equal(delta_->points(), s, point, dim)) continue;
    delta_->kill_slot(s, ++seq_);
    rebuild_view_locked();
    removes_.fetch_add(1, std::memory_order_relaxed);
    PORTAL_OBS_COUNT("serve/ingest/removes", 1);
    IngestResult r;
    r.status = IngestStatus::Ok;
    r.seq = seq_;
    return r;
  }

  const index_t j = find_main_exact(
      *snap_->kd(), point,
      [&](index_t i) { return !delta_->main_dead(i, seq_); });
  if (j >= 0) {
    delta_->kill_main(j, ++seq_);
    rebuild_view_locked();
    removes_.fetch_add(1, std::memory_order_relaxed);
    PORTAL_OBS_COUNT("serve/ingest/removes", 1);
    PORTAL_OBS_COUNT("serve/delta/tombstones", 1);
    IngestResult r;
    r.status = IngestStatus::Ok;
    r.seq = seq_;
    return r;
  }

  remove_misses_.fetch_add(1, std::memory_order_relaxed);
  PORTAL_OBS_COUNT("serve/ingest/remove_misses", 1);
  IngestResult r;
  r.status = IngestStatus::NotFound;
  r.error = "no visible point matches";
  return r;
}

bool LiveStore::merge_due_locked() const {
  return snap_ && snap_->kd() && delta_ &&
         delta_->count() >= options_.merge_threshold;
}

void LiveStore::merger_loop() {
  while (true) {
    {
      MutexLock lock(mu_);
      while (!stopping_ && !merge_due_locked()) merge_cv_.wait(mu_);
      if (stopping_) return;
    }
    merge_once();
  }
}

bool LiveStore::merge_now() { return merge_once(); }

bool LiveStore::merge_once() {
  MutexLock merge_lock(merge_mutex_);

  // Phase 1 -- cut: pin the generation and the watermark. Everything at or
  // below the cut is merged; everything above it is replayed afterwards.
  std::shared_ptr<const TreeSnapshot> snap;
  std::shared_ptr<DeltaTree> delta;
  std::uint64_t cut = 0;
  index_t count_at_cut = 0;
  {
    MutexLock lock(mu_);
    if (!snap_) return false;
    snap = snap_;
    delta = delta_;
    cut = seq_;
    count_at_cut = delta_->count();
  }
  const bool any_main_kill = delta->main_kill_count() > 0;
  if (count_at_cut == 0 && !any_main_kill) {
    PORTAL_OBS_COUNT("serve/delta/merge_noops", 1);
    return false; // empty-delta no-op: no epoch churn
  }
  const KdTree* kd = snap->kd().get();
  if (!kd) return false; // serving snapshots always carry one

  const index_t nmain = kd->data().size();
  const index_t dim = kd->data().dim();

  // Phase 2 -- gather the visible union at the cut, lock-free: the pinned
  // generation's slots and kill seqs at or below the cut are immutable.
  // The main side is sharded by the kd top-level splits; each shard is a
  // contiguous permuted range copied (and counted) independently.
  const std::vector<std::pair<index_t, index_t>> shards =
      top_level_ranges(*kd);
  const std::ptrdiff_t ns = static_cast<std::ptrdiff_t>(shards.size());
  std::vector<index_t> offsets(shards.size() + 1, 0);
  if (any_main_kill) {
#pragma omp parallel for schedule(dynamic)
    for (std::ptrdiff_t s = 0; s < ns; ++s) {
      index_t alive = 0;
      for (index_t j = shards[static_cast<std::size_t>(s)].first;
           j < shards[static_cast<std::size_t>(s)].second; ++j)
        alive += delta->main_dead(j, cut) ? 0 : 1;
      offsets[static_cast<std::size_t>(s) + 1] = alive;
    }
    for (std::size_t s = 0; s < shards.size(); ++s)
      offsets[s + 1] += offsets[s];
  } else {
    for (std::size_t s = 0; s < shards.size(); ++s)
      offsets[s + 1] = offsets[s] + (shards[s].second - shards[s].first);
  }
  const index_t main_alive = offsets.back();

  std::vector<index_t> live_slots;
  live_slots.reserve(static_cast<std::size_t>(count_at_cut));
  for (index_t s = 0; s < count_at_cut; ++s)
    if (!delta->slot_dead(s, cut)) live_slots.push_back(s);

  const index_t total = main_alive + static_cast<index_t>(live_slots.size());
  if (total == 0) {
    // Everything visible at the cut is dead: there is no dataset to build a
    // tree over, so compact instead -- fresh generation against the same
    // main epoch, kill state carried over, post-cut suffix replayed. This
    // reclaims the delta capacity that dead slots were pinning.
    MutexLock lock(mu_);
    auto fresh = std::make_shared<DeltaTree>(dim, options_.delta_capacity,
                                             nmain);
    fresh->copy_main_kills(*delta_);
    replay_suffix(*delta_, cut, count_at_cut, nullptr, {}, {}, *fresh);
    delta_ = std::move(fresh);
    rebuild_view_locked();
    space_cv_.notify_all();
    compactions_.fetch_add(1, std::memory_order_relaxed);
    PORTAL_OBS_COUNT("serve/delta/compactions", 1);
    return true;
  }

  auto union_data = std::make_shared<Dataset>(total, dim);
  std::vector<index_t> main_to_new(static_cast<std::size_t>(nmain), -1);
#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t s = 0; s < ns; ++s) {
    index_t pos = offsets[static_cast<std::size_t>(s)];
    for (index_t j = shards[static_cast<std::size_t>(s)].first;
         j < shards[static_cast<std::size_t>(s)].second; ++j) {
      if (any_main_kill && delta->main_dead(j, cut)) continue;
      for (index_t d = 0; d < dim; ++d)
        union_data->coord(pos, d) = kd->data().coord(j, d);
      main_to_new[static_cast<std::size_t>(j)] = pos;
      ++pos;
    }
  }
  std::vector<index_t> delta_to_new(static_cast<std::size_t>(count_at_cut),
                                    -1);
  for (std::size_t i = 0; i < live_slots.size(); ++i) {
    const index_t slot = live_slots[i];
    const index_t pos = main_alive + static_cast<index_t>(i);
    for (index_t d = 0; d < dim; ++d)
      union_data->coord(pos, d) = delta->points().coord(slot, d);
    delta_to_new[static_cast<std::size_t>(slot)] = pos;
  }

  // Phase 3 -- build + publish the fresh epoch through the slot (epoch
  // grant, monotone-swap assertions, task-parallel tree builds inside
  // TreeSnapshot::build). Readers keep pinning the old pair throughout.
  const std::shared_ptr<const TreeSnapshot> new_snap = slot_.publish_with(
      [&](std::uint64_t epoch) {
        return TreeSnapshot::build(union_data, epoch, options_.snapshot);
      });

  // Phase 4 -- atomically retire the merged prefix: fresh generation, the
  // post-cut log suffix replayed with original seqs (so any watermark keeps
  // naming the same visible set), then one pair swap.
  {
    MutexLock lock(mu_);
    auto fresh = std::make_shared<DeltaTree>(dim, options_.delta_capacity,
                                             new_snap->size());
    replay_suffix(*delta_, cut, count_at_cut, new_snap->kd().get(),
                  main_to_new, delta_to_new, *fresh);
    snap_ = new_snap;
    delta_ = std::move(fresh);
    rebuild_view_locked();
  }
  space_cv_.notify_all();
  merges_.fetch_add(1, std::memory_order_relaxed);
  merged_points_.fetch_add(static_cast<std::uint64_t>(total),
                           std::memory_order_relaxed);
  PORTAL_OBS_COUNT("serve/delta/merges", 1);
  PORTAL_OBS_COUNT("serve/delta/merged_points",
                   static_cast<std::uint64_t>(total));
  return true;
}

void LiveStore::replay_suffix(const DeltaTree& old_delta, std::uint64_t cut,
                              index_t count_at_cut, const KdTree* new_kd,
                              const std::vector<index_t>& main_to_new,
                              const std::vector<index_t>& delta_to_new,
                              DeltaTree& fresh) {
  std::vector<index_t> slot_map(static_cast<std::size_t>(old_delta.count()),
                                -1);
  std::vector<real_t> pt(static_cast<std::size_t>(old_delta.dim()));
  std::uint64_t replayed = 0;
  for (const DeltaTree::Mutation& m : old_delta.log()) {
    if (m.seq <= cut) continue;
    ++replayed;
    switch (m.kind) {
      case DeltaTree::MutationKind::Insert: {
        // Post-cut inserts all fit: the fresh generation is empty and the
        // old one held them within the same capacity.
        old_delta.copy_point(m.index, pt.data());
        slot_map[static_cast<std::size_t>(m.index)] =
            fresh.append(pt.data(), m.seq);
        assert(slot_map[static_cast<std::size_t>(m.index)] >= 0);
        break;
      }
      case DeltaTree::MutationKind::RemoveDelta: {
        if (m.index >= count_at_cut) {
          // Removed a slot that was itself replayed above.
          fresh.kill_slot(slot_map[static_cast<std::size_t>(m.index)], m.seq);
        } else {
          // Removed a slot the merge just folded into the new main tree:
          // the removal becomes a main tombstone at its new permuted home.
          assert(new_kd != nullptr);
          const index_t pos = delta_to_new[static_cast<std::size_t>(m.index)];
          assert(pos >= 0);
          fresh.kill_main(new_kd->inverse_perm()[static_cast<std::size_t>(pos)],
                          m.seq);
        }
        break;
      }
      case DeltaTree::MutationKind::RemoveMain: {
        if (new_kd) {
          const index_t pos = main_to_new[static_cast<std::size_t>(m.index)];
          assert(pos >= 0);
          fresh.kill_main(new_kd->inverse_perm()[static_cast<std::size_t>(pos)],
                          m.seq);
        } else {
          // Compaction keeps the same main tree, so indices carry over.
          fresh.kill_main(m.index, m.seq);
        }
        break;
      }
    }
  }
  PORTAL_OBS_COUNT("serve/delta/replayed", replayed);
}

LiveStoreStats LiveStore::stats() const {
  LiveStoreStats s;
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.removes = removes_.load(std::memory_order_relaxed);
  s.remove_misses = remove_misses_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.merges = merges_.load(std::memory_order_relaxed);
  s.compactions = compactions_.load(std::memory_order_relaxed);
  s.merged_points = merged_points_.load(std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    s.watermark = seq_;
    s.epoch = snap_ ? snap_->epoch() : 0;
    s.delta_count = delta_ ? delta_->count() : 0;
  }
  return s;
}

} // namespace portal::serve
