// Portal -- LiveStore: the mutable data plane of the serving runtime
// (DESIGN.md Sec. 16, docs/SERVING.md "Live ingestion").
//
// Owns the (main snapshot, delta generation) pointer pair, the monotone
// mutation clock, and the background merger. Writes go through insert() /
// remove() under one mutex (O(dim) holds -- never tree work); readers pin()
// a LiveView, a fully consistent copy of the pair plus the clock watermark,
// so a merge publish can never tear a reader between an old main and a new
// delta. When the delta crosses merge_threshold (or overflows), a merge
// gathers the visible union -- sharded by the kd-tree's top-level splits so
// the copy and the task-parallel rebuild both use the machine -- publishes
// a fresh epoch through SnapshotSlot, and replays the post-cut mutation-log
// suffix into a fresh delta generation with original seqs preserved:
// pinned views keep answering their old (epoch, watermark) exactly, and new
// pins see the identical visible set re-rooted under the new epoch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tree/delta.h"
#include "tree/snapshot.h"
#include "util/thread_annotations.h"

namespace portal::serve {

struct LiveStoreOptions {
  SnapshotOptions snapshot;     // leaf size + which trees merges rebuild
  index_t delta_capacity = 4096;  // slots per delta generation
  index_t merge_threshold = 1024; // pending slots that wake the merger
  /// true: a dedicated merger thread rebuilds behind the writers (inserts at
  /// the full delta block up to overflow_wait_ms for it, then reject).
  /// false: the overflowing insert runs the merge synchronously inline --
  /// deterministic, what the edge-case unit tests pin.
  bool background_merge = true;
  double overflow_wait_ms = 500;
};

enum class IngestStatus {
  Ok,       // applied; seq (and id, for inserts) valid
  Rejected, // admission control: delta full and merge could not drain it
  NotFound, // remove(): no visible point matches the coordinates
};

struct IngestResult {
  IngestStatus status = IngestStatus::Rejected;
  std::uint64_t seq = 0; // mutation-clock stamp when status == Ok
  index_t id = -1;       // inserts: client-visible id (main_size + slot)
  std::string error;
};

struct LiveStoreStats {
  std::uint64_t inserts = 0;
  std::uint64_t removes = 0;
  std::uint64_t remove_misses = 0;
  std::uint64_t rejected = 0;
  std::uint64_t merges = 0;      // full merges (new epoch published)
  std::uint64_t compactions = 0; // all-dead merges (same epoch, fresh delta)
  std::uint64_t merged_points = 0;
  std::uint64_t watermark = 0; // mutation clock at the stats() call
  std::uint64_t epoch = 0;     // current snapshot epoch (0 = none)
  index_t delta_count = 0;     // slots used in the current generation
};

class LiveStore {
 public:
  explicit LiveStore(LiveStoreOptions options = {});
  ~LiveStore(); // stop()s the merger
  LiveStore(const LiveStore&) = delete;
  LiveStore& operator=(const LiveStore&) = delete;

  /// Full replace: build a snapshot of `data` (next epoch) and reset the
  /// delta to an empty generation. Mutations applied concurrently with the
  /// build land in the generation being retired and are discarded with it --
  /// publish is a point-in-time replacement, not a merge.
  std::shared_ptr<const TreeSnapshot> publish(
      std::shared_ptr<const Dataset> data);

  /// Pin a consistent (snapshot, delta, watermark) view. Null before the
  /// first publish. O(1): returns the cached view rebuilt on each mutation.
  std::shared_ptr<const LiveView> pin() const;

  /// Current main snapshot / epoch / clock (conveniences over pin()).
  std::shared_ptr<const TreeSnapshot> snapshot() const;
  std::uint64_t current_epoch() const;
  std::uint64_t watermark() const;

  /// Append one point (dim must match the published dataset). On overflow:
  /// background merger gets overflow_wait_ms to drain, else the calling
  /// thread merges synchronously; Rejected only if the delta is still full.
  IngestResult insert(const real_t* point, index_t dim);

  /// Tombstone the unique visible point with exactly these coordinates
  /// (newest delta slot first, then the main tree via an exact kd descent).
  /// NotFound when nothing visible matches.
  IngestResult remove(const real_t* point, index_t dim);

  /// Run one merge now (synchronously, on this thread). Returns true if it
  /// published a new epoch or compacted; false for the empty-delta no-op.
  bool merge_now();

  LiveStoreStats stats() const;

  /// Join the merger thread; further merges are synchronous-only. Idempotent
  /// (the destructor calls it). Readers and writers stay valid.
  void stop();

 private:
  void merger_loop();
  bool merge_once();
  bool merge_due_locked() const PORTAL_REQUIRES(mu_);
  void rebuild_view_locked() PORTAL_REQUIRES(mu_);
  /// Replay log entries with seq > cut into `fresh`, translating indices
  /// through the merge maps (null new_kd = compaction: main ids unchanged).
  void replay_suffix(const DeltaTree& old_delta, std::uint64_t cut,
                     index_t count_at_cut, const KdTree* new_kd,
                     const std::vector<index_t>& main_to_new,
                     const std::vector<index_t>& delta_to_new,
                     DeltaTree& fresh);

  LiveStoreOptions options_;
  SnapshotSlot slot_; // epoch grants + monotone-publish assertions

  mutable Mutex mu_; // guards everything below + all delta mutation calls
  std::shared_ptr<const TreeSnapshot> snap_ PORTAL_GUARDED_BY(mu_);
  std::shared_ptr<DeltaTree> delta_ PORTAL_GUARDED_BY(mu_);
  std::shared_ptr<const LiveView> view_ PORTAL_GUARDED_BY(mu_);
  std::uint64_t seq_ PORTAL_GUARDED_BY(mu_) = 0;
  bool stopping_ PORTAL_GUARDED_BY(mu_) = false;
  CondVar merge_cv_; // wakes the merger (threshold / overflow / stop)
  CondVar space_cv_; // wakes inserts blocked on a full delta

  Mutex merge_mutex_; // serializes merges (merger thread vs merge_now)
  std::thread merger_;

  std::atomic<std::uint64_t> inserts_{0}, removes_{0}, remove_misses_{0},
      rejected_{0}, merges_{0}, compactions_{0}, merged_points_{0};
};

} // namespace portal::serve
