// Portal -- the compiled-plan cache of the query-serving runtime.
//
// A serving deployment sees the same handful of programs millions of times
// (the same k-NN chain from every client, the same KDE kernel per request).
// Running the full compiler pipeline per request would dwarf the traversal
// itself, so PlanCache compiles each distinct chain exactly once -- through
// the existing analysis + verified pass pipeline (PortalExpr::compile) --
// and answers every structurally identical prepare() from the cached
// artifact. Identity is two-level:
//   * a cheap pre-compile descriptor key (operator, k, pre-defined kernel
//     parameters, data shape, compile knobs) resolves repeat chains without
//     touching the compiler at all -- the serving fast path;
//   * the canonical post-pass IR fingerprint (core/ir/ir_hash.h) is the
//     authoritative key: chains that miss the descriptor level (custom Expr
//     kernels, data-derived covariances) still deduplicate when their
//     verified IR is node-for-node equal, and storage identity never enters
//     either key, so equal chains over different same-shaped datasets share
//     one compiled plan.
//
// Cache outcomes surface as serve/plan_cache_{hit,miss} obs counters and as
// the stats() the service's serve-bench mode reports.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/codegen/jit.h"
#include "core/codegen/vm.h"
#include "core/plan.h"
#include "util/thread_annotations.h"

namespace portal::serve {

/// One immutable compiled program: the post-pass plan plus the VM bytecode
/// the serving engine executes. Everything here is set once at compile time;
/// VmProgram evaluation is thread-safe, so any number of workers can run the
/// same CompiledPlan concurrently.
struct CompiledPlan {
  std::uint64_t fingerprint = 0;
  ProblemPlan plan; // layer storages are compile-time shape templates only
  VmProgram kernel_vm;
  VmProgram envelope_vm; // valid iff has_envelope
  bool has_envelope = false;

  /// The plan's JIT module when the cache was configured for JIT serving
  /// (configure_jit) and the compile succeeded; nullptr otherwise. The VM
  /// programs above always remain valid -- they are the fallback for
  /// non-batch paths and the oracle the differential walls compare against.
  /// Held shared so the dlopen mapping outlives every in-flight request;
  /// the raw fused entry points are cached beside it for the per-leaf hot
  /// path (no dlsym, no std::function).
  std::shared_ptr<const JitModule> jit;
  JitModule::BatchFn fused_values = nullptr; // normalized: metric + envelope
  JitModule::BatchFn fused_batch = nullptr;  // opaque kernel per SoA lane

  /// Inner-operator traits, pre-resolved so the engine never re-derives them
  /// per request (same decomposition as the executor's reducers).
  PortalOp op = PortalOp::KARGMIN;
  index_t slots = 1;  // k for the Multi reductions
  real_t sense = 1;   // +1 min-like, -1 max-like
  bool is_reduction = false;
  bool is_arg = false;
  bool is_sum = false;
  bool is_union = false;
  bool is_unionarg = false;

  index_t dim = 0; // request points must have exactly this many coordinates
  double compile_seconds = 0;
};

/// Shared immutable handle requests carry; the scheduler coalesces requests
/// whose handles share a fingerprint.
using PlanHandle = std::shared_ptr<const CompiledPlan>;

class PlanCache {
 public:
  /// JIT serving configuration (ServiceOptions::jit / jit_cache_dir). With
  /// `enabled`, every compiled plan also gets a JitModule with the fused
  /// leaf-loop entry points; artifacts persist in `cache_dir` (or in the
  /// PORTAL_JIT_CACHE_DIR process cache when empty) so a restarted service
  /// warm-starts with zero compiler invocations. A failed JIT compile logs
  /// and falls back to the VM -- it never fails the prepare().
  struct JitOptions {
    bool enabled = false;
    std::string cache_dir;
    std::size_t max_entries = 256;
  };

  void configure_jit(const JitOptions& options);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  /// Resolve (or compile) the plan for `FORALL over query points -> inner`
  /// against a reference dataset of `reference`'s shape. `inner.storage` is
  /// ignored -- the cache substitutes `reference` itself, so kernels whose
  /// analysis reads data values (covariance-from-data Mahalanobis) compile
  /// against the real points. Supported inner operators: the comparative
  /// reductions (MIN/MAX/ARGMIN/ARGMAX and their K forms), SUM, and
  /// UNION/UNIONARG; anything else throws std::invalid_argument, as do
  /// vector-valued (gravity) kernels.
  ///
  /// Thread-safe; a miss compiles outside the lock, so a slow compile never
  /// blocks hits. Two threads racing on the same cold chain may both
  /// compile -- the first insert wins and both get the surviving plan.
  PlanHandle get_or_compile(const LayerSpec& inner, const Dataset& reference,
                            const PortalConfig& config);

  Stats stats() const;

  /// Number of distinct compiled plans (fingerprint-level entries).
  std::size_t size() const;

 private:
  mutable Mutex mutex_;
  std::map<std::uint64_t, PlanHandle> by_descriptor_ PORTAL_GUARDED_BY(mutex_);
  std::map<std::uint64_t, PlanHandle> by_fingerprint_ PORTAL_GUARDED_BY(mutex_);
  Stats stats_ PORTAL_GUARDED_BY(mutex_);
  JitOptions jit_options_ PORTAL_GUARDED_BY(mutex_);
  std::shared_ptr<ArtifactCache> artifacts_ PORTAL_GUARDED_BY(mutex_);
};

} // namespace portal::serve
