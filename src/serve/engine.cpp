#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "kernels/batch.h"
#include "problems/common.h"
#include "traversal/cursor.h"
#include "traversal/singletree.h"

namespace portal::serve {
namespace {

/// Immutable per-query context threaded through the rule sets and the
/// brute-force oracle so both sides compute with the exact same helpers.
struct Ctx {
  const CompiledPlan* plan = nullptr;
  const KdTree* tree = nullptr;
  const real_t* qpt = nullptr;
  const MahalanobisContext* maha = nullptr;
  MetricKind metric = MetricKind::SqEuclidean;
  bool identity_env = false;
  bool normalized = false;
  bool batch = false;
  // Fused JIT leaf loops (plan_cache.h; null when the plan has no JIT
  // module or batching is off). Bitwise-equal per lane to the VM paths
  // below, so taking them never changes an answer.
  JitModule::BatchFn fused_values = nullptr;
  JitModule::BatchFn fused_batch = nullptr;
  Workspace* ws = nullptr;
  // Live-view fields (null/0/false on snapshot-only queries, which keeps
  // every new branch below off the legacy hot path).
  const DeltaTree* delta = nullptr;
  std::uint64_t watermark = 0;
  index_t delta_count = 0;  // visible delta slots are [0, delta_count)
  bool filter_main = false; // this generation holds main tombstones
};

/// Attach a pinned view's delta side to a query context. filter_main stays
/// false when the generation never tombstoned a main point, so the descent
/// pays zero per-point cost for the insert-only workload.
void attach_view(Ctx& ctx, const LiveView& view) {
  if (!view.delta) return;
  ctx.delta = view.delta.get();
  ctx.watermark = view.watermark;
  ctx.delta_count = view.delta_count;
  ctx.filter_main = view.filter_main;
}

/// Is permuted main index j visible in this query's view?
inline bool main_alive(const Ctx& ctx, index_t j) {
  return !ctx.filter_main || !ctx.delta->main_dead(j, ctx.watermark);
}

/// Visible (non-tombstoned) points under a node; equals node.count() on
/// tombstone-free views. Bulk accepts must add exactly this many points --
/// a removed point is absent from the visible set, not a zero contribution.
index_t alive_count(const Ctx& ctx, const KdNode& node) {
  if (!ctx.filter_main) return node.count();
  index_t alive = 0;
  for (index_t j = node.begin; j < node.end; ++j)
    alive += ctx.delta->main_dead(j, ctx.watermark) ? 0 : 1;
  return alive;
}

/// Analysis-gated legality lookup: plans carrying computed KernelFacts
/// answer from the proven facts; hand-built plans (facts.computed == false)
/// or gating turned off fall back to the legacy shape-derived condition.
/// The facts are defined to coincide with the legacy expressions, so both
/// oracles always agree -- the gating fuzz wall pins this bitwise.
bool gated_fact(const ProblemPlan& plan, bool fact, bool legacy) {
  return plan.analysis_gated && plan.facts.computed ? fact : legacy;
}

Ctx make_ctx(const CompiledPlan& plan, const KdTree& tree, const real_t* point,
             bool batch, Workspace& ws) {
  Ctx ctx;
  ctx.plan = &plan;
  ctx.tree = &tree;
  ctx.qpt = point;
  ctx.maha = plan.plan.kernel.maha.get();
  ctx.metric = plan.plan.kernel.metric;
  ctx.identity_env =
      gated_fact(plan.plan, plan.plan.facts.envelope_identity,
                 plan.plan.kernel.shape == EnvelopeShape::Identity);
  ctx.normalized = plan.plan.kernel.normalized;
  ctx.batch = batch;
  if (batch) {
    ctx.fused_values = plan.fused_values;
    ctx.fused_batch = plan.fused_batch;
  }
  ctx.ws = &ws;
  return ctx;
}

void prepare_workspace(const CompiledPlan& plan, const KdTree& tree,
                       const real_t* point, index_t leaf_capacity,
                       Workspace& ws) {
  const index_t dim = tree.data().dim();
  ws.rpt.resize(static_cast<std::size_t>(dim));
  // Covers point_distance gathers (4*dim+4), the blocked Mahalanobis solve
  // (2*dim*kMahaBlock), and run_batch's External gather (3*dim).
  ws.scratch.resize(static_cast<std::size_t>(
      std::max<index_t>(4 * dim + 4, 2 * dim * batch::kMahaBlock)));
  ws.dists.resize(static_cast<std::size_t>(leaf_capacity));
  ws.vals.resize(static_cast<std::size_t>(leaf_capacity));
  if (plan.is_reduction) {
    ws.knn_dists.resize(static_cast<std::size_t>(plan.slots));
    ws.knn_ids.resize(static_cast<std::size_t>(plan.slots));
  }
  if (plan.plan.kernel.metric != MetricKind::SqEuclidean &&
      plan.plan.kernel.metric != MetricKind::Euclidean) {
    ws.qbox = BBox(dim);
    ws.qbox.include_point(point);
  }
}

real_t envelope(const Ctx& ctx, real_t d) {
  return ctx.plan->envelope_vm.run_envelope(d);
}

/// Point-to-node lower bound in the metric's natural space. L2 family goes
/// through the direct point-box routine; other metrics reuse the node-pair
/// bounds with a degenerate (zero-volume) query box.
real_t node_min(const Ctx& ctx, const KdNode& node) {
  if (ctx.metric == MetricKind::SqEuclidean)
    return node.box.min_sq_dist_point(ctx.qpt);
  if (ctx.metric == MetricKind::Euclidean)
    return std::sqrt(node.box.min_sq_dist_point(ctx.qpt));
  return node.box.min_dist(ctx.metric, ctx.ws->qbox, ctx.maha);
}

real_t node_max(const Ctx& ctx, const KdNode& node) {
  if (ctx.metric == MetricKind::SqEuclidean)
    return node.box.max_sq_dist_point(ctx.qpt);
  if (ctx.metric == MetricKind::Euclidean)
    return std::sqrt(node.box.max_sq_dist_point(ctx.qpt));
  return node.box.max_dist(ctx.metric, ctx.ws->qbox, ctx.maha);
}

/// Scalar natural-space distances to [begin, end) -- the same operation
/// sequence as the executor's scalar path, so it is bitwise-comparable with
/// batch::natural_dists over the same points.
void natural_range(const Ctx& ctx, index_t begin, index_t end, real_t* out) {
  const Dataset& rdata = ctx.tree->data();
  const index_t count = end - begin;
  switch (ctx.metric) {
    case MetricKind::SqEuclidean:
      sq_dists_to_range(rdata, begin, end, ctx.qpt, out);
      return;
    case MetricKind::Euclidean:
      sq_dists_to_range(rdata, begin, end, ctx.qpt, out);
      for (index_t j = 0; j < count; ++j) out[j] = std::sqrt(out[j]);
      return;
    case MetricKind::Manhattan:
      l1_dists_to_range(rdata, begin, end, ctx.qpt, out);
      return;
    case MetricKind::Chebyshev:
      linf_dists_to_range(rdata, begin, end, ctx.qpt, out);
      return;
    case MetricKind::Mahalanobis:
      for (index_t j = 0; j < count; ++j) {
        rdata.copy_point(begin + j, ctx.ws->rpt.data());
        out[j] = ctx.maha->sq_dist(ctx.qpt, ctx.ws->rpt.data(),
                                   ctx.ws->scratch.data());
      }
      return;
  }
  throw std::logic_error("serve: unhandled metric");
}

/// Kernel values of the query against a contiguous permuted range; returns a
/// pointer into workspace buffers (the distance buffer itself when the
/// envelope is the identity). Mirrors the executor's base case exactly.
const real_t* range_values(const Ctx& ctx, index_t begin, index_t count) {
  Workspace& ws = *ctx.ws;
  const index_t dim = ctx.tree->data().dim();
  if (ctx.normalized) {
    if (ctx.fused_values != nullptr && !ctx.identity_env) {
      // Fused JIT leaf loop: metric + envelope in one specialized pass
      // (bitwise-equal to natural_dists followed by envelope()).
      const SoaMirror& mirror = ctx.tree->mirror();
      ctx.fused_values(ctx.qpt, mirror.lanes(), mirror.stride(), begin, count,
                       dim, ws.scratch.data(), ws.vals.data());
      batch::count_batch_tile(count);
      return ws.vals.data();
    }
    if (ctx.batch) {
      batch::natural_dists(ctx.metric, ctx.tree->mirror().tile(begin, count),
                           ctx.qpt, ctx.maha, ws.scratch.data(),
                           ws.dists.data());
      batch::count_batch_tile(count);
    } else {
      natural_range(ctx, begin, begin + count, ws.dists.data());
      batch::count_scalar_tail(count);
    }
    if (ctx.identity_env) return ws.dists.data();
    for (index_t j = 0; j < count; ++j)
      ws.vals[static_cast<std::size_t>(j)] = envelope(ctx, ws.dists[static_cast<std::size_t>(j)]);
    return ws.vals.data();
  }
  if (ctx.batch) {
    const SoaMirror& mirror = ctx.tree->mirror();
    if (ctx.fused_batch != nullptr) {
      // Fused JIT tile loop over the opaque kernel (bitwise-equal per lane
      // to VmProgram::run_batch).
      ctx.fused_batch(ctx.qpt, mirror.lanes(), mirror.stride(), begin, count,
                      dim, ws.scratch.data(), ws.vals.data());
      batch::count_batch_tile(count);
      return ws.vals.data();
    }
    VmProgram::BatchContext bctx;
    bctx.q = ctx.qpt;
    bctx.rlanes = mirror.lanes();
    bctx.rstride = mirror.stride();
    bctx.rbegin = begin;
    bctx.count = count;
    bctx.dim = dim;
    bctx.scratch = ws.scratch.data();
    ctx.plan->kernel_vm.run_batch(bctx, ws.vals.data());
    batch::count_batch_tile(count);
  } else {
    for (index_t j = 0; j < count; ++j) {
      ctx.tree->data().copy_point(begin + j, ws.rpt.data());
      ws.vals[static_cast<std::size_t>(j)] = ctx.plan->kernel_vm.run_pair(
          ctx.qpt, ws.rpt.data(), dim, ws.scratch.data());
    }
    batch::count_scalar_tail(count);
  }
  return ws.vals.data();
}

/// Kernel value of the query against one delta slot, computed with the exact
/// per-point operation sequence of the main-tree base cases: the normalized
/// path runs the same *_dists_to_range primitives on a one-slot range (their
/// per-point FP sequence does not depend on the surrounding range), the
/// opaque path runs the same kernel VM run_pair as the scalar leaf loop. The
/// live brute-force oracle calls this too, which is what makes two-root
/// answers bitwise-comparable at tau == 0.
real_t delta_value(const Ctx& ctx, index_t slot) {
  Workspace& ws = *ctx.ws;
  const Dataset& dpts = ctx.delta->points();
  if (ctx.normalized) {
    real_t d = 0;
    switch (ctx.metric) {
      case MetricKind::SqEuclidean:
        sq_dists_to_range(dpts, slot, slot + 1, ctx.qpt, &d);
        break;
      case MetricKind::Euclidean:
        sq_dists_to_range(dpts, slot, slot + 1, ctx.qpt, &d);
        d = std::sqrt(d);
        break;
      case MetricKind::Manhattan:
        l1_dists_to_range(dpts, slot, slot + 1, ctx.qpt, &d);
        break;
      case MetricKind::Chebyshev:
        linf_dists_to_range(dpts, slot, slot + 1, ctx.qpt, &d);
        break;
      case MetricKind::Mahalanobis:
        dpts.copy_point(slot, ws.rpt.data());
        d = ctx.maha->sq_dist(ctx.qpt, ws.rpt.data(), ws.scratch.data());
        break;
    }
    return ctx.identity_env ? d : envelope(ctx, d);
  }
  dpts.copy_point(slot, ws.rpt.data());
  return ctx.plan->kernel_vm.run_pair(ctx.qpt, ws.rpt.data(), dpts.dim(),
                                      ws.scratch.data());
}

/// Natural-space distance from the query point to a node's box center (the
/// approximation representative, exactly as the executor's apply_approx).
real_t center_dist(const Ctx& ctx, const KdNode& node) {
  Workspace& ws = *ctx.ws;
  node.box.center_point(ws.rpt.data());
  if (ctx.metric == MetricKind::Mahalanobis)
    return ctx.maha->sq_dist(ctx.qpt, ws.rpt.data(), ws.scratch.data());
  const real_t d = point_distance(
      ctx.metric == MetricKind::Euclidean ? MetricKind::SqEuclidean : ctx.metric,
      ctx.qpt, 1, ws.rpt.data(), 1, ctx.tree->data().dim());
  return ctx.metric == MetricKind::Euclidean ? std::sqrt(d) : d;
}

/// Suspension-point prefetch (traversal/cursor.h hook): the cursor already
/// requested the node struct itself; when the node it will pop next is a
/// leaf, also request the head of the SoA tile its base case will stream, so
/// the lines arrive while the worker resumes a sibling query's descent.
void prefetch_leaf_tile(const Ctx& ctx, index_t n) {
  if (!ctx.batch) return;
  const KdNode& node = ctx.tree->node(n);
  if (!node.is_leaf()) return;
  PORTAL_PREFETCH_READ(ctx.tree->mirror().tile(node.begin, 1).lane(0));
}

/// Comparative reductions (k-NN family): scored nearest-first descent with
/// envelope-bound pruning against the current k-th best.
class ReductionRules {
 public:
  ReductionRules(const Ctx& ctx)
      : ctx_(ctx),
        sense_(ctx.plan->sense),
        list_(ctx.ws->knn_dists.data(), ctx.ws->knn_ids.data(),
              ctx.plan->slots) {
    list_.reset();
    const KernelInfo& kernel = ctx.plan->plan.kernel;
    // Indicator + comparative op is degenerate (zeros are candidates too, so
    // distance cuts are unsound) -- evaluate exhaustively, like the executor.
    prunable_ = gated_fact(ctx.plan->plan,
                           ctx.plan->plan.facts.reduction_prune_legal,
                           ctx.plan->plan.category == ProblemCategory::Pruning &&
                               kernel.normalized &&
                               kernel.shape != EnvelopeShape::Indicator &&
                               kernel.shape != EnvelopeShape::Opaque);
  }

  bool prune_or_take(index_t n) {
    if (!prunable_) return false;
    const KdNode& node = ctx_.tree->node(n);
    const real_t dmin = node_min(ctx_, node);
    if (ctx_.identity_env && sense_ > 0) return dmin > list_.worst();
    real_t emin, emax;
    if (ctx_.identity_env) {
      emin = dmin;
      emax = node_max(ctx_, node);
    } else {
      const real_t a = envelope(ctx_, dmin);
      const real_t b = envelope(ctx_, node_max(ctx_, node));
      emin = std::min(a, b);
      emax = std::max(a, b);
    }
    return std::min(sense_ * emin, sense_ * emax) > list_.worst();
  }

  real_t score(index_t n) { return node_min(ctx_, ctx_.tree->node(n)); }

  void prefetch(index_t n) const { prefetch_leaf_tile(ctx_, n); }

  void base_case(index_t n) {
    const KdNode& node = ctx_.tree->node(n);
    const real_t* vals = range_values(ctx_, node.begin, node.count());
    for (index_t j = 0; j < node.count(); ++j) {
      if (!main_alive(ctx_, node.begin + j)) continue;
      list_.insert(sense_ * vals[j], node.begin + j);
    }
  }

  /// Second-root sweep: fold the visible delta slots into the reduction
  /// after the main descent, insertion order, ids offset past the main tree
  /// (finalize maps permuted main ids through perm(); delta ids pass through
  /// untouched).
  void drain_delta() {
    const index_t nr = ctx_.tree->data().size();
    for (index_t s = 0; s < ctx_.delta_count; ++s) {
      if (ctx_.delta->slot_dead(s, ctx_.watermark)) continue;
      list_.insert(sense_ * delta_value(ctx_, s), nr + s);
    }
  }

 private:
  Ctx ctx_;
  real_t sense_;
  KnnList list_;
  bool prunable_ = false;
};

/// SUM plans (KDE family): unscored preorder descent -- leaves accumulate in
/// ascending permuted order, which is what makes tau == 0 bitwise-match the
/// ascending brute-force sweep. Indicator sums (counting) bulk-accept /
/// bulk-reject on interval containment; smooth envelopes approximate whole
/// nodes only within the tau budget.
class SumRules {
 public:
  SumRules(const Ctx& ctx, real_t tau) : ctx_(ctx), tau_(tau) {
    const KernelInfo& kernel = ctx.plan->plan.kernel;
    indicator_ = gated_fact(
        ctx.plan->plan, ctx.plan->plan.facts.indicator_prune_legal,
        kernel.normalized && kernel.shape == EnvelopeShape::Indicator);
    lo_ = kernel.indicator_lo;
    hi_ = kernel.indicator_hi;
    approx_ = gated_fact(ctx.plan->plan, ctx.plan->plan.facts.approx_legal,
                         ctx.plan->plan.category ==
                                 ProblemCategory::Approximation &&
                             kernel.normalized);
  }

  bool prune_or_take(index_t n) {
    const KdNode& node = ctx_.tree->node(n);
    if (indicator_) {
      const real_t dmin = node_min(ctx_, node);
      const real_t dmax = node_max(ctx_, node);
      if (dmin >= hi_ || dmax <= lo_) return true; // contributes exactly 0
      if (dmin > lo_ && dmax < hi_) {              // every pair is exactly 1
        total_ += static_cast<real_t>(alive_count(ctx_, node));
        return true;
      }
      return false;
    }
    if (!approx_ || tau_ <= 0) return false;
    const real_t dmin = node_min(ctx_, node);
    const real_t dmax = node_max(ctx_, node);
    real_t emin, emax;
    if (ctx_.identity_env) {
      emin = dmin;
      emax = dmax;
    } else {
      const real_t a = envelope(ctx_, dmin);
      const real_t b = envelope(ctx_, dmax);
      emin = std::min(a, b);
      emax = std::max(a, b);
    }
    if (emax - emin > tau_) return false;
    const real_t center = center_dist(ctx_, node);
    total_ += static_cast<real_t>(alive_count(ctx_, node)) *
              (ctx_.identity_env ? center : envelope(ctx_, center));
    return true;
  }

  void prefetch(index_t n) const { prefetch_leaf_tile(ctx_, n); }

  void base_case(index_t n) {
    const KdNode& node = ctx_.tree->node(n);
    const real_t* vals = range_values(ctx_, node.begin, node.count());
    for (index_t j = 0; j < node.count(); ++j) {
      if (!main_alive(ctx_, node.begin + j)) continue;
      total_ += vals[j];
    }
  }

  /// Delta slots accumulate strictly after the main sum, insertion order --
  /// the same additions in the same order as the live oracle's canonical
  /// sweep, so tau == 0 stays bitwise across the two roots.
  void drain_delta() {
    for (index_t s = 0; s < ctx_.delta_count; ++s) {
      if (ctx_.delta->slot_dead(s, ctx_.watermark)) continue;
      total_ += delta_value(ctx_, s);
    }
  }

  real_t total() const { return total_; }

 private:
  Ctx ctx_;
  real_t tau_;
  real_t total_ = 0;
  bool indicator_ = false;
  bool approx_ = false;
  real_t lo_ = 0, hi_ = 0;
};

/// UNION/UNIONARG plans (range search): collect every reference with a
/// non-zero kernel value; indicator envelopes prune by interval containment.
class UnionRules {
 public:
  UnionRules(const Ctx& ctx, bool want_values, std::vector<index_t>* ids,
             std::vector<real_t>* values)
      : ctx_(ctx), want_values_(want_values), ids_(ids), values_(values) {
    const KernelInfo& kernel = ctx.plan->plan.kernel;
    indicator_ = gated_fact(
        ctx.plan->plan, ctx.plan->plan.facts.indicator_prune_legal,
        kernel.normalized && kernel.shape == EnvelopeShape::Indicator);
    lo_ = kernel.indicator_lo;
    hi_ = kernel.indicator_hi;
  }

  bool prune_or_take(index_t n) {
    if (!indicator_) return false;
    const KdNode& node = ctx_.tree->node(n);
    const real_t dmin = node_min(ctx_, node);
    const real_t dmax = node_max(ctx_, node);
    if (dmin >= hi_ || dmax <= lo_) return true;
    if (dmin > lo_ && dmax < hi_) {
      for (index_t rj = node.begin; rj < node.end; ++rj) {
        if (!main_alive(ctx_, rj)) continue;
        ids_->push_back(rj);
        if (want_values_) values_->push_back(1); // indicator interior: exact
      }
      return true;
    }
    return false;
  }

  void prefetch(index_t n) const { prefetch_leaf_tile(ctx_, n); }

  void base_case(index_t n) {
    const KdNode& node = ctx_.tree->node(n);
    const real_t* vals = range_values(ctx_, node.begin, node.count());
    for (index_t j = 0; j < node.count(); ++j) {
      if (vals[j] == 0) continue;
      if (!main_alive(ctx_, node.begin + j)) continue;
      ids_->push_back(node.begin + j);
      if (want_values_) values_->push_back(vals[j]);
    }
  }

 private:
  Ctx ctx_;
  bool want_values_;
  std::vector<index_t>* ids_;
  std::vector<real_t>* values_;
  bool indicator_ = false;
  real_t lo_ = 0, hi_ = 0;
};

/// Reduction slots -> original-order output (sense undone, NaN sentinels),
/// same convention as the executor's finalize.
void finalize_reduction(const CompiledPlan& plan, const KdTree& tree,
                        const Workspace& ws, QueryResult* out) {
  out->values.resize(static_cast<std::size_t>(plan.slots));
  out->ids.assign(static_cast<std::size_t>(plan.is_arg ? plan.slots : 0), -1);
  for (index_t j = 0; j < plan.slots; ++j) {
    const real_t v = ws.knn_dists[static_cast<std::size_t>(j)];
    out->values[static_cast<std::size_t>(j)] =
        v == std::numeric_limits<real_t>::max()
            ? std::numeric_limits<real_t>::quiet_NaN()
            : plan.sense * v;
    if (plan.is_arg) {
      const index_t id = ws.knn_ids[static_cast<std::size_t>(j)];
      // Permuted main indices map back through perm(); delta ids (>= main
      // size) are already client-space (`main_size + slot`).
      out->ids[static_cast<std::size_t>(j)] =
          id < 0 ? -1 : (id >= tree.data().size() ? id : tree.perm()[id]);
    }
  }
}

/// Union delta drain: collect visible delta slots with non-zero kernel value
/// in insertion order, already client-space and ascending (every delta id is
/// above every main id, so finalize can append them after the sorted main
/// block without re-sorting).
void drain_delta_union(const Ctx& ctx, bool want_values,
                       std::vector<index_t>* delta_ids,
                       std::vector<real_t>* delta_values) {
  const index_t nr = ctx.tree->data().size();
  for (index_t s = 0; s < ctx.delta_count; ++s) {
    if (ctx.delta->slot_dead(s, ctx.watermark)) continue;
    const real_t v = delta_value(ctx, s);
    if (v == 0) continue;
    delta_ids->push_back(nr + s);
    if (want_values) delta_values->push_back(v);
  }
}

/// Union results -> original reference ids, sorted ascending (values follow),
/// matching the executor's CSR ordering.
void finalize_union(const KdTree& tree, bool want_values,
                    std::vector<index_t>* ids, std::vector<real_t>* values,
                    QueryResult* out,
                    const std::vector<index_t>* delta_ids = nullptr,
                    const std::vector<real_t>* delta_values = nullptr) {
  for (index_t& id : *ids) id = tree.perm()[id];
  if (!want_values) {
    std::sort(ids->begin(), ids->end());
    out->ids = std::move(*ids);
    if (delta_ids)
      out->ids.insert(out->ids.end(), delta_ids->begin(), delta_ids->end());
    return;
  }
  std::vector<std::size_t> order(ids->size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return (*ids)[a] < (*ids)[b];
  });
  out->ids.resize(ids->size());
  out->values.resize(values->size());
  for (std::size_t s = 0; s < order.size(); ++s) {
    out->ids[s] = (*ids)[order[s]];
    out->values[s] = (*values)[order[s]];
  }
  if (delta_ids) {
    out->ids.insert(out->ids.end(), delta_ids->begin(), delta_ids->end());
    out->values.insert(out->values.end(), delta_values->begin(),
                       delta_values->end());
  }
}

/// Round-robin interleaving core: keep up to `interleave_width` descents in
/// flight and give each `resume_steps` node visits per turn, admitting the
/// next query of the batch into a slot as soon as its occupant finishes (the
/// redwood-rt ExecutorManager shape). `start(q)` constructs query q's rule
/// set (emplacing it into `rules`, so rules[q] stays addressable);
/// `finish(q, stats)` finalizes its result once the descent completes.
/// Scheduling never reorders any single query's visits, so each query is
/// bitwise-identical to its standalone descent.
template <typename Rules, typename Start, typename Finish>
void interleave_descents(const KdTree& tree, index_t count,
                         const EngineOptions& options, std::deque<Rules>& rules,
                         Start&& start, Finish&& finish) {
  const index_t width = std::max<index_t>(1, options.interleave_width);
  const index_t steps = std::max<index_t>(1, options.resume_steps);

  // Cursors are neither copyable nor movable (the frontier pins its inline
  // buffer); a deque gives them stable addresses across admissions.
  std::deque<TraversalCursor<KdTree, Rules>> cursors;
  std::vector<index_t> active; // in-flight cursor (== query) indices
  index_t next = 0;
  const auto admit = [&] {
    start(next); // emplaces rules[next]
    cursors.emplace_back(tree, rules.back());
    ++next;
  };
  while (next < count && next < width) {
    admit();
    active.push_back(next - 1);
  }

  std::uint64_t rounds = 0;
  while (!active.empty()) {
    ++rounds;
    for (std::size_t s = 0; s < active.size();) {
      const index_t c = active[s];
      if (cursors[static_cast<std::size_t>(c)].resume(steps) !=
          CursorState::Done) {
        ++s;
        continue;
      }
      finish(c, cursors[static_cast<std::size_t>(c)].stats());
      if (next < count) {
        admit();
        active[s] = next - 1; // reuse the freed slot, keep round-robin order
        ++s;
      } else {
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(s));
      }
    }
  }
  PORTAL_OBS_COUNT("serve/interleave/rounds", rounds);
}

const KdTree& serving_tree(const CompiledPlan& plan,
                           const TreeSnapshot& snapshot) {
  if (!snapshot.kd())
    throw std::invalid_argument(
        "serve: snapshot was built without a kd-tree (SnapshotOptions.build_kd)");
  const KdTree& tree = *snapshot.kd();
  if (tree.data().dim() != plan.dim)
    throw std::invalid_argument("serve: plan dimensionality " +
                                std::to_string(plan.dim) +
                                " does not match snapshot dimensionality " +
                                std::to_string(tree.data().dim()));
  return tree;
}

/// Approximate reduction through the snapshot's k-NN graph (DESIGN.md
/// Sec. 18). Beam search returns up to `beam` candidates with squared
/// Euclidean distances bitwise-equal to the exact engine's accumulation;
/// this path filters tombstoned candidates against the pinned view, maps to
/// the plan's value space (sqrt for Euclidean -- the same edge op as the
/// exact path), folds the visible delta slots in exactly, and reuses
/// finalize_reduction unchanged. Only completeness is approximate: every
/// reported (value, id) pair is exact for that pair.
QueryResult run_query_graph(const CompiledPlan& plan,
                            const TreeSnapshot& snapshot, const LiveView* view,
                            const real_t* point, const EngineOptions& options,
                            Workspace& ws) {
  const auto t0 = std::chrono::steady_clock::now();
  const KdTree& tree = serving_tree(plan, snapshot);
  const KnnGraph& graph = *snapshot.graph();
  prepare_workspace(plan, tree, point, tree.stats().max_leaf_count, ws);
  Ctx ctx = make_ctx(plan, tree, point, /*batch=*/false, ws);
  if (view) attach_view(ctx, *view);

  // Search the full beam (not just k): tombstoned candidates are dropped
  // below, so the extra slots are the slack that keeps k survivors likely.
  const index_t beam = std::max<index_t>(options.beam_width, plan.slots);
  ws.graph_sq.resize(static_cast<std::size_t>(beam));
  ws.graph_ids.resize(static_cast<std::size_t>(beam));
  const index_t found = graph.search(point, beam, beam, ws.graph,
                                     ws.graph_sq.data(), ws.graph_ids.data());

  KnnList list(ws.knn_dists.data(), ws.knn_ids.data(), plan.slots);
  list.reset();
  // Graph ids are original-order; the reduction slots hold permuted main
  // indices (finalize maps them back through perm(), delta ids untouched).
  const std::vector<index_t>& inv = tree.inverse_perm();
  for (index_t j = 0; j < found; ++j) {
    const index_t id = ws.graph_ids[static_cast<std::size_t>(j)];
    const index_t permuted = inv[static_cast<std::size_t>(id)];
    if (!main_alive(ctx, permuted)) continue;
    const real_t sq = ws.graph_sq[static_cast<std::size_t>(j)];
    const real_t d = ctx.metric == MetricKind::Euclidean ? std::sqrt(sq) : sq;
    list.insert(plan.sense * d, permuted);
  }
  const index_t nr = tree.data().size();
  for (index_t s = 0; s < ctx.delta_count; ++s) {
    if (ctx.delta->slot_dead(s, ctx.watermark)) continue;
    list.insert(plan.sense * delta_value(ctx, s), nr + s);
  }

  QueryResult result;
  finalize_reduction(plan, tree, ws, &result);
  result.stats.pairs_visited = ws.graph.dist_evals;
  result.stats.base_cases = ws.graph.hops;
  result.stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

/// Shared single-query core: snapshot-only callers pass a null view (every
/// live branch compiles out to the legacy behavior bit for bit).
QueryResult run_query_impl(const CompiledPlan& plan,
                           const TreeSnapshot& snapshot, const LiveView* view,
                           const real_t* point, const EngineOptions& options,
                           Workspace& ws) {
  if (routes_to_graph(plan, snapshot, options))
    return run_query_graph(plan, snapshot, view, point, options, ws);
  const KdTree& tree = serving_tree(plan, snapshot);
  prepare_workspace(plan, tree, point, tree.stats().max_leaf_count, ws);
  const bool batch = options.batch_base_cases && !tree.mirror().empty();
  Ctx ctx = make_ctx(plan, tree, point, batch, ws);
  if (view) attach_view(ctx, *view);

  QueryResult result;
  if (plan.is_reduction) {
    ReductionRules rules(ctx);
    result.stats = single_traverse(tree, rules);
    if (ctx.delta) rules.drain_delta();
    finalize_reduction(plan, tree, ws, &result);
  } else if (plan.is_sum) {
    SumRules rules(ctx, options.tau);
    result.stats = single_traverse(tree, rules);
    if (ctx.delta) rules.drain_delta();
    result.values = {rules.total()};
  } else {
    std::vector<index_t> ids;
    std::vector<real_t> values;
    std::vector<index_t> delta_ids;
    std::vector<real_t> delta_values;
    UnionRules rules(ctx, plan.is_union, &ids, &values);
    result.stats = single_traverse(tree, rules);
    if (ctx.delta)
      drain_delta_union(ctx, plan.is_union, &delta_ids, &delta_values);
    finalize_union(tree, plan.is_union, &ids, &values, &result,
                   ctx.delta ? &delta_ids : nullptr,
                   ctx.delta ? &delta_values : nullptr);
  }
  return result;
}

void run_query_batch_impl(const CompiledPlan& plan,
                          const TreeSnapshot& snapshot, const LiveView* view,
                          const real_t* const* points, index_t count,
                          const EngineOptions& options, BatchWorkspace& ws,
                          QueryResult* results) {
  if (count <= 0) return;
  if (routes_to_graph(plan, snapshot, options)) {
    // Graph searches are not cursor descents, so there is nothing to
    // interleave: run the batch sequentially through one workspace. Each
    // answer equals the single-query path bit for bit.
    if (ws.per_query.empty()) ws.per_query.resize(1);
    for (index_t q = 0; q < count; ++q)
      results[q] = run_query_graph(plan, snapshot, view, points[q], options,
                                   ws.per_query.front());
    return;
  }
  const KdTree& tree = serving_tree(plan, snapshot);
  // Grow the per-query workspace pool up front: rule sets capture Workspace
  // pointers, so no resize may happen once the first descent starts.
  if (ws.per_query.size() < static_cast<std::size_t>(count))
    ws.per_query.resize(static_cast<std::size_t>(count));
  const bool batch = options.batch_base_cases && !tree.mirror().empty();
  const index_t leaf_cap = tree.stats().max_leaf_count;
  PORTAL_OBS_COUNT("serve/interleave/batches", 1);
  PORTAL_OBS_COUNT("serve/interleave/queries", static_cast<std::uint64_t>(count));

  const auto start_ctx = [&](index_t q) {
    Workspace& w = ws.per_query[static_cast<std::size_t>(q)];
    prepare_workspace(plan, tree, points[q], leaf_cap, w);
    Ctx ctx = make_ctx(plan, tree, points[q], batch, w);
    if (view) attach_view(ctx, *view);
    return ctx;
  };

  if (plan.is_reduction) {
    std::deque<ReductionRules> rules;
    interleave_descents<ReductionRules>(
        tree, count, options, rules,
        [&](index_t q) { rules.emplace_back(start_ctx(q)); },
        [&](index_t q, const TraversalStats& s) {
          results[q].stats = s;
          ReductionRules& r = rules[static_cast<std::size_t>(q)];
          if (view && view->delta) r.drain_delta();
          finalize_reduction(plan, tree,
                             ws.per_query[static_cast<std::size_t>(q)],
                             &results[q]);
        });
  } else if (plan.is_sum) {
    std::deque<SumRules> rules;
    interleave_descents<SumRules>(
        tree, count, options, rules,
        [&](index_t q) { rules.emplace_back(start_ctx(q), options.tau); },
        [&](index_t q, const TraversalStats& s) {
          results[q].stats = s;
          SumRules& r = rules[static_cast<std::size_t>(q)];
          if (view && view->delta) r.drain_delta();
          results[q].values = {r.total()};
        });
  } else {
    std::vector<std::vector<index_t>> ids(static_cast<std::size_t>(count));
    std::vector<std::vector<real_t>> values(static_cast<std::size_t>(count));
    std::deque<UnionRules> rules;
    interleave_descents<UnionRules>(
        tree, count, options, rules,
        [&](index_t q) {
          rules.emplace_back(start_ctx(q), plan.is_union,
                             &ids[static_cast<std::size_t>(q)],
                             &values[static_cast<std::size_t>(q)]);
        },
        [&](index_t q, const TraversalStats& s) {
          results[q].stats = s;
          std::vector<index_t> delta_ids;
          std::vector<real_t> delta_values;
          if (view && view->delta) {
            Ctx ctx = make_ctx(plan, tree, points[q], batch,
                               ws.per_query[static_cast<std::size_t>(q)]);
            attach_view(ctx, *view);
            drain_delta_union(ctx, plan.is_union, &delta_ids, &delta_values);
          }
          finalize_union(tree, plan.is_union, &ids[static_cast<std::size_t>(q)],
                         &values[static_cast<std::size_t>(q)], &results[q],
                         view && view->delta ? &delta_ids : nullptr,
                         view && view->delta ? &delta_values : nullptr);
        });
  }
}

QueryResult run_query_bruteforce_impl(const CompiledPlan& plan,
                                      const TreeSnapshot& snapshot,
                                      const LiveView* view,
                                      const real_t* point) {
  const KdTree& tree = serving_tree(plan, snapshot);
  const index_t nr = tree.data().size();
  Workspace ws;
  // Size the value buffers for the whole dataset: the oracle is one flat
  // scalar sweep in canonical visible order -- ascending permuted main
  // indices minus tombstones, then live delta slots in insertion order --
  // bitwise-comparable with the two-root engine's accumulation.
  prepare_workspace(plan, tree, point, nr, ws);
  Ctx ctx = make_ctx(plan, tree, point, /*batch=*/false, ws);
  if (view) attach_view(ctx, *view);

  const real_t* vals = range_values(ctx, 0, nr);
  QueryResult result;
  if (plan.is_reduction) {
    KnnList list(ws.knn_dists.data(), ws.knn_ids.data(), plan.slots);
    list.reset();
    for (index_t j = 0; j < nr; ++j) {
      if (!main_alive(ctx, j)) continue;
      list.insert(plan.sense * vals[j], j);
    }
    for (index_t s = 0; s < ctx.delta_count; ++s) {
      if (ctx.delta->slot_dead(s, ctx.watermark)) continue;
      list.insert(plan.sense * delta_value(ctx, s), nr + s);
    }
    finalize_reduction(plan, tree, ws, &result);
  } else if (plan.is_sum) {
    real_t total = 0;
    for (index_t j = 0; j < nr; ++j) {
      if (!main_alive(ctx, j)) continue;
      total += vals[j];
    }
    for (index_t s = 0; s < ctx.delta_count; ++s) {
      if (ctx.delta->slot_dead(s, ctx.watermark)) continue;
      total += delta_value(ctx, s);
    }
    result.values = {total};
  } else {
    std::vector<index_t> ids;
    std::vector<real_t> values;
    for (index_t j = 0; j < nr; ++j) {
      if (vals[j] == 0 || !main_alive(ctx, j)) continue;
      ids.push_back(j);
      if (plan.is_union) values.push_back(vals[j]);
    }
    std::vector<index_t> delta_ids;
    std::vector<real_t> delta_values;
    if (ctx.delta)
      drain_delta_union(ctx, plan.is_union, &delta_ids, &delta_values);
    finalize_union(tree, plan.is_union, &ids, &values, &result,
                   ctx.delta ? &delta_ids : nullptr,
                   ctx.delta ? &delta_values : nullptr);
  }
  return result;
}

const TreeSnapshot& view_snapshot(const LiveView& view) {
  if (!view.snapshot)
    throw std::invalid_argument("serve: LiveView carries no snapshot");
  return *view.snapshot;
}

} // namespace

bool routes_to_graph(const CompiledPlan& plan, const TreeSnapshot& snapshot,
                     const EngineOptions& options) {
  if (!options.approx || !snapshot.graph()) return false;
  // Min-sense comparative reductions only: graph candidates arrive in
  // ascending distance order, which is plan value order exactly when the
  // envelope is the identity and smaller distance means a better slot.
  if (!plan.is_reduction || plan.sense <= 0) return false;
  const KernelInfo& kernel = plan.plan.kernel;
  if (!kernel.normalized) return false;
  const bool identity =
      gated_fact(plan.plan, plan.plan.facts.envelope_identity,
                 kernel.shape == EnvelopeShape::Identity);
  if (!identity) return false;
  // The graph's internal metric is squared Euclidean; Euclidean shares its
  // ordering (sqrt at the edge, like the exact path).
  return kernel.metric == MetricKind::SqEuclidean ||
         kernel.metric == MetricKind::Euclidean;
}

QueryResult run_query(const CompiledPlan& plan, const TreeSnapshot& snapshot,
                      const real_t* point, const EngineOptions& options,
                      Workspace& ws) {
  return run_query_impl(plan, snapshot, nullptr, point, options, ws);
}

QueryResult run_query(const CompiledPlan& plan, const LiveView& view,
                      const real_t* point, const EngineOptions& options,
                      Workspace& ws) {
  return run_query_impl(plan, view_snapshot(view), &view, point, options, ws);
}

void run_query_batch(const CompiledPlan& plan, const TreeSnapshot& snapshot,
                     const real_t* const* points, index_t count,
                     const EngineOptions& options, BatchWorkspace& ws,
                     QueryResult* results) {
  run_query_batch_impl(plan, snapshot, nullptr, points, count, options, ws,
                       results);
}

void run_query_batch(const CompiledPlan& plan, const LiveView& view,
                     const real_t* const* points, index_t count,
                     const EngineOptions& options, BatchWorkspace& ws,
                     QueryResult* results) {
  run_query_batch_impl(plan, view_snapshot(view), &view, points, count,
                       options, ws, results);
}

QueryResult run_query_bruteforce(const CompiledPlan& plan,
                                 const TreeSnapshot& snapshot,
                                 const real_t* point) {
  return run_query_bruteforce_impl(plan, snapshot, nullptr, point);
}

QueryResult run_query_bruteforce(const CompiledPlan& plan,
                                 const LiveView& view, const real_t* point) {
  return run_query_bruteforce_impl(plan, view_snapshot(view), &view, point);
}

} // namespace portal::serve
