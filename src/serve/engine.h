// Portal -- the per-request query engine of the serving runtime.
//
// Where the batch executor answers "every query point against every
// reference point" with the dual-tree traversal, serving answers *one
// arriving point at a time*: each request is a single-tree descent
// (traversal/singletree.h) of the current snapshot's kd-tree, driven by the
// same rule shapes as the executor's generic reducers -- envelope-bound
// pruning for the comparative reductions, indicator interval logic for
// range queries, tau-bounded approximation for KDE-style sums -- and
// feeding the same SIMD-batched leaf tiles (kernels/batch.h).
//
// Determinism contract: with tau == 0 the engine is *bitwise* equal to the
// serial brute-force oracle below. Sums accumulate in ascending permuted
// order (the unscored descent visits leaves left-to-right), leaf distances
// go through batch::natural_dists (bit-for-bit the scalar path), and the
// envelope runs through the exact same VmProgram on both sides. The
// concurrent stress tests pin this at tolerance zero.
#pragma once

#include <vector>

#include "serve/plan_cache.h"
#include "traversal/multitree.h"
#include "tree/bbox.h"
#include "tree/delta.h"
#include "tree/snapshot.h"

namespace portal::serve {

/// Reusable per-worker scratch; sized lazily to the largest (plan, snapshot)
/// combination seen. Never shared between threads.
struct Workspace {
  std::vector<real_t> rpt;      // dim-contiguous reference point copy
  std::vector<real_t> scratch;  // kernel scratch (Mahalanobis solves)
  std::vector<real_t> dists;    // leaf distances
  std::vector<real_t> vals;     // leaf kernel values
  std::vector<real_t> knn_dists; // reduction slots (sense space)
  std::vector<index_t> knn_ids;
  BBox qbox; // degenerate query box for non-L2 point-to-node bounds
  // Approximate-path scratch (graph beam search + its candidate output);
  // untouched on exact queries.
  KnnGraph::SearchScratch graph;
  std::vector<real_t> graph_sq;
  std::vector<index_t> graph_ids;
};

/// One answered query. Reductions fill `slots` values (sense applied, NaN
/// for unfilled slots) plus original-order reference ids for the arg
/// flavors; SUM fills one value; UNION/UNIONARG fill ids sorted by original
/// reference index (values alongside for UNION).
struct QueryResult {
  std::vector<real_t> values;
  std::vector<index_t> ids;
  TraversalStats stats;
};

struct EngineOptions {
  bool batch_base_cases = true; // SoA leaf tiles vs scalar per-pair loop
  real_t tau = 0; // approximation budget for SUM plans; 0 = exact
  /// Interleaved batch execution (run_query_batch): how many descents one
  /// worker keeps in flight, and how many node visits each gets per
  /// resume() slice before the worker round-robins to the next cursor.
  /// Neither knob changes any answer -- per-query visit order is fixed --
  /// only how misses overlap compute.
  index_t interleave_width = 16;
  index_t resume_steps = 32;
  /// Approximate mode: route eligible KARGMIN/KMIN-family plans to the
  /// snapshot's k-NN graph (routes_to_graph below). Like tau, these are
  /// *runtime serving parameters, not plan properties* -- exact and
  /// approximate callers at any beam width share one compiled plan, and
  /// turning approx off always restores the exact answer bitwise.
  bool approx = false;
  index_t beam_width = 64; // graph beam; clamped up to the plan's k
};

/// Per-worker scratch for the interleaved batch path: one Workspace per
/// in-flight query (reduction slots and leaf buffers must stay live across
/// suspensions), grown lazily to the largest batch seen and reused across
/// batches. Never shared between threads.
struct BatchWorkspace {
  std::vector<Workspace> per_query;
};

/// Does this (plan, snapshot, options) triple route to the approximate
/// graph path? True only when the caller asked for approx mode, the
/// snapshot carries a graph, and the plan is a min-sense comparative
/// reduction over an identity-envelope L2-family kernel (the shape where
/// graph distance order provably matches plan value order). Everything else
/// -- max-sense, shaped envelopes, non-L2 metrics, SUM/UNION plans -- falls
/// through to the exact descent even with approx on, so enabling the knob
/// never silently degrades a plan the graph cannot honor. The service layer
/// uses this same predicate to stamp Response::approximate honestly.
bool routes_to_graph(const CompiledPlan& plan, const TreeSnapshot& snapshot,
                     const EngineOptions& options);

/// Answer one request against the snapshot's kd-tree -- or, when
/// routes_to_graph holds, against its k-NN graph: beam search collects
/// candidates whose distances are bitwise-equal to the exact engine's
/// (gathered SoA tiles accumulate dimensions in the same ascending order),
/// so approximate results are always a subset of the true point set with
/// exact values; only completeness is approximate, bounded by the beam
/// width. Live views filter tombstoned candidates and drain the visible
/// delta slots exactly, like the descent paths. Reentrant: any number
/// of threads may run queries against the same plan and snapshot, each with
/// its own Workspace. Throws std::invalid_argument when the snapshot has no
/// kd-tree or the plan/snapshot dimensions disagree.
QueryResult run_query(const CompiledPlan& plan, const TreeSnapshot& snapshot,
                      const real_t* point, const EngineOptions& options,
                      Workspace& ws);

/// Answer one coalesced micro-batch of same-plan requests by interleaving
/// resumable descents (traversal/cursor.h): up to `options.interleave_width`
/// queries are in flight at once and the worker round-robins
/// resume(resume_steps) across them, so one query's node/tile miss is hidden
/// behind another's compute, with a software prefetch of the next node and
/// SoA tile issued at every suspension point. Each query's result -- values,
/// ids, AND stats -- is bitwise-identical to run_query on the same inputs:
/// queries never share mutable state and each descent's visit order is
/// unchanged, only the scheduling between descents differs. `results` must
/// have room for `count` entries. Reentrant across threads, each with its
/// own BatchWorkspace.
void run_query_batch(const CompiledPlan& plan, const TreeSnapshot& snapshot,
                     const real_t* const* points, index_t count,
                     const EngineOptions& options, BatchWorkspace& ws,
                     QueryResult* results);

/// The serial O(N) oracle: same kernels, same envelope VM, one pass over the
/// snapshot's points in ascending permuted order. With tau == 0 the results
/// match run_query bitwise (values; arg ids can legitimately differ on
/// exactly tied distances). Differential tests cross-check against this.
QueryResult run_query_bruteforce(const CompiledPlan& plan,
                                 const TreeSnapshot& snapshot,
                                 const real_t* point);

// --- Two-root live variants (incremental ingestion, DESIGN.md Sec. 16) ---
//
// The LiveView overloads answer against a pinned (snapshot, delta,
// watermark) triple: the main kd-tree descent runs exactly as above but
// skips main points tombstoned at or before the watermark (and counts only
// survivors in indicator/approximation bulk accepts), then the visible
// delta slots are drained in insertion order through the same scalar
// kernels. The canonical visible order -- main points ascending by permuted
// index, then delta slots ascending -- is what the live brute-force oracle
// sweeps, so tau == 0 answers are bitwise-equal to it for every op,
// including SUM (same additions in the same order). Client-visible ids:
// main points keep their original dataset indices; a delta point reports
// `main_size + slot` (stable within its generation; a merge starts a new
// one). A null view.delta (or an all-visible view) degrades bitwise to the
// snapshot-only paths above.

QueryResult run_query(const CompiledPlan& plan, const LiveView& view,
                      const real_t* point, const EngineOptions& options,
                      Workspace& ws);

/// Interleaved micro-batch against a live view: per-query main descents are
/// scheduled exactly as the snapshot overload (bitwise-identical visit
/// order); each query drains the delta at its own finish, so results equal
/// the single-query live path bit for bit.
void run_query_batch(const CompiledPlan& plan, const LiveView& view,
                     const real_t* const* points, index_t count,
                     const EngineOptions& options, BatchWorkspace& ws,
                     QueryResult* results);

/// The live oracle: one scalar sweep over the exact point-set the view
/// pins, in canonical visible order (main permuted-ascending minus
/// tombstones, then live delta slots). The concurrent ingest stress suites
/// compare every pinned read against this at tolerance zero.
QueryResult run_query_bruteforce(const CompiledPlan& plan,
                                 const LiveView& view, const real_t* point);

} // namespace portal::serve
