#include "serve/plan_cache.h"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/ir/ir_hash.h"
#include "core/portal_expr.h"
#include "obs/trace.h"
#include "util/log.h"

namespace portal::serve {
namespace {

std::uint64_t mix_real(std::uint64_t h, real_t value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(real_t) <= sizeof(bits));
  std::memcpy(&bits, &value, sizeof(real_t));
  return ir_hash_mix(h, bits);
}

/// True when the chain's compiled form is fully determined by the descriptor
/// fields hashed below. Custom Expr kernels would need a structural AST hash
/// (the post-pass fingerprint provides exactly that, so they just take the
/// compile-then-dedupe path), and covariance-from-data kernels read the
/// reference points themselves.
bool fast_keyable(const LayerSpec& inner) {
  if (inner.custom_kernel.valid() || inner.external != nullptr) return false;
  const PortalFunc::Kind kind = inner.func.kind();
  if (kind == PortalFunc::Kind::Custom) return false;
  if ((kind == PortalFunc::Kind::Mahalanobis ||
       kind == PortalFunc::Kind::GaussianMaha) &&
      inner.func.covariance().empty())
    return false;
  return true;
}

/// Pre-compile key: everything that feeds the compiler except storage
/// identity. Data shape (dim, layout) is included because the flattened IR
/// bakes it in; tau and strength_reduction because they change the emitted
/// IR (approximation conditions, rewritten subtrees).
std::uint64_t descriptor_key(const LayerSpec& inner, const Dataset& reference,
                             const PortalConfig& config) {
  std::uint64_t h = kIrHashSeed;
  h = ir_hash_mix(h, 0x53455256ull); // 'SERV' domain tag
  h = ir_hash_mix(h, static_cast<std::uint64_t>(inner.op.op));
  h = ir_hash_mix(h, static_cast<std::uint64_t>(inner.op.k));
  h = ir_hash_mix(h, static_cast<std::uint64_t>(inner.func.kind()));
  h = mix_real(h, inner.func.sigma());
  h = mix_real(h, inner.func.gravity_g());
  h = mix_real(h, inner.func.softening());
  h = mix_real(h, inner.func.lo());
  h = mix_real(h, inner.func.hi());
  h = ir_hash_mix(h, inner.func.covariance().size());
  for (real_t v : inner.func.covariance()) h = mix_real(h, v);
  h = ir_hash_mix(h, static_cast<std::uint64_t>(reference.dim()));
  h = ir_hash_mix(h, static_cast<std::uint64_t>(reference.layout()));
  h = mix_real(h, config.tau);
  h = ir_hash_mix(h, config.strength_reduction ? 1 : 0);
  return h;
}

const char* supported_ops_message() {
  return "serve: unsupported inner operator (supported: MIN/MAX/ARGMIN/ARGMAX, "
         "KMIN/KMAX/KARGMIN/KARGMAX, SUM, UNION/UNIONARG)";
}

/// Attach a JIT module (fused leaf loops + persistent artifact) to a freshly
/// compiled plan. Failure is soft: the VM programs stay authoritative, so a
/// broken toolchain degrades throughput, never availability.
void attach_jit(CompiledPlan& compiled, ArtifactCache* artifacts) {
  if (!jit_available()) return;
  try {
    std::shared_ptr<const JitModule> module =
        JitModule::compile(compiled.plan, artifacts);
    if (module != nullptr) {
      compiled.fused_values = module->fused_values_fn();
      compiled.fused_batch = module->fused_batch_fn();
      compiled.jit = std::move(module);
    }
  } catch (const std::exception& e) {
    PORTAL_LOG_WARN("serve: jit compile failed, serving via VM: %s", e.what());
  }
}

std::shared_ptr<CompiledPlan> compile_plan(const LayerSpec& inner,
                                           const Dataset& reference,
                                           const PortalConfig& config) {
  auto compiled = std::make_shared<CompiledPlan>();

  // Resolve the operator traits up front so unsupported shapes fail before
  // the (much more expensive) compile.
  switch (inner.op.op) {
    case PortalOp::SUM:
      compiled->is_sum = true;
      break;
    case PortalOp::UNION:
      compiled->is_union = true;
      break;
    case PortalOp::UNIONARG:
      compiled->is_unionarg = true;
      break;
    case PortalOp::MIN:
    case PortalOp::MAX:
    case PortalOp::ARGMIN:
    case PortalOp::ARGMAX:
    case PortalOp::KMIN:
    case PortalOp::KMAX:
    case PortalOp::KARGMIN:
    case PortalOp::KARGMAX:
      compiled->is_reduction = true;
      compiled->is_arg = op_is_arg(inner.op.op);
      compiled->sense = op_is_min_like(inner.op.op) ? real_t(1) : real_t(-1);
      compiled->slots =
          op_category(inner.op.op) == OpCategory::Multi ? inner.op.k : 1;
      if (compiled->slots < 1)
        throw std::invalid_argument("serve: k must be >= 1");
      break;
    default:
      throw std::invalid_argument(supported_ops_message());
  }
  compiled->op = inner.op.op;
  compiled->dim = reference.dim();

  // Compile through the standard pipeline: FORALL over a query-shape
  // template, the client's inner layer over the real reference points (so
  // data-reading analyses like covariance-from-data see actual values). The
  // query template never gets executed -- serving evaluates the compiled
  // kernel on contiguous request points -- so a 2-point placeholder of the
  // right dim/layout is all the front end needs.
  PortalExpr expr;
  LayerSpec outer;
  outer.op = OpSpec(PortalOp::FORALL);
  outer.storage = Storage(Dataset(2, reference.dim()));
  expr.addLayerSpec(outer);
  LayerSpec in = inner;
  in.storage = Storage(reference);
  expr.addLayerSpec(std::move(in));
  expr.setConfig(config);
  expr.compile();

  compiled->plan = expr.plan();
  compiled->fingerprint = compiled->plan.fingerprint;
  compiled->compile_seconds = expr.artifacts().compile_seconds;

  if (compiled->plan.kernel.is_gravity)
    throw std::invalid_argument(
        "serve: the gravity kernel is vector-valued and not servable");
  if (!compiled->plan.kernel.kernel_ir)
    throw std::invalid_argument("serve: kernel did not lower to IR");

  compiled->kernel_vm = VmProgram::compile(compiled->plan.kernel.kernel_ir);
  if (compiled->plan.kernel.normalized && compiled->plan.kernel.envelope_ir) {
    compiled->envelope_vm = VmProgram::compile(compiled->plan.kernel.envelope_ir);
    compiled->has_envelope = true;
  }
  return compiled;
}

} // namespace

void PlanCache::configure_jit(const JitOptions& options) {
  std::shared_ptr<ArtifactCache> artifacts;
  if (options.enabled && !options.cache_dir.empty()) {
    ArtifactCache::Options cache_options;
    cache_options.dir = options.cache_dir;
    cache_options.max_entries = options.max_entries;
    // An unusable directory downgrades to uncached JIT (every process
    // compiles); serving still works.
    try {
      artifacts = std::make_shared<ArtifactCache>(std::move(cache_options));
    } catch (const std::exception& e) {
      PORTAL_LOG_WARN("serve: jit cache dir unusable, compiling uncached: %s",
                      e.what());
    }
  }
  MutexLock lock(mutex_);
  jit_options_ = options;
  artifacts_ = std::move(artifacts);
}

PlanHandle PlanCache::get_or_compile(const LayerSpec& inner,
                                     const Dataset& reference,
                                     const PortalConfig& config) {
  const bool keyable = fast_keyable(inner);
  const std::uint64_t descriptor =
      keyable ? descriptor_key(inner, reference, config) : 0;

  if (keyable) {
    MutexLock lock(mutex_);
    auto it = by_descriptor_.find(descriptor);
    if (it != by_descriptor_.end()) {
      ++stats_.hits;
      PORTAL_OBS_COUNT("serve/plan_cache_hit", 1);
      return it->second;
    }
  }

  bool jit_enabled = false;
  std::shared_ptr<ArtifactCache> artifacts;
  {
    MutexLock lock(mutex_);
    jit_enabled = jit_options_.enabled;
    artifacts = artifacts_;
  }

  // Compile outside the lock: the pipeline can take milliseconds (plus a
  // compiler invocation under JIT serving) and must never stall concurrent
  // hits on other chains.
  std::shared_ptr<CompiledPlan> fresh = compile_plan(inner, reference, config);
  if (jit_enabled)
    attach_jit(*fresh, artifacts != nullptr ? artifacts.get()
                                            : ArtifactCache::process_cache());

  MutexLock lock(mutex_);
  auto [fit, inserted] = by_fingerprint_.emplace(fresh->fingerprint, fresh);
  if (keyable) by_descriptor_.emplace(descriptor, fit->second);
  if (inserted) {
    ++stats_.misses;
    PORTAL_OBS_COUNT("serve/plan_cache_miss", 1);
  } else {
    // A chain that missed the descriptor level but whose verified IR matches
    // an existing plan (custom kernel spelled differently, or a raced
    // compile): the cache still serves one shared artifact.
    ++stats_.hits;
    PORTAL_OBS_COUNT("serve/plan_cache_hit", 1);
  }
  return fit->second;
}

PlanCache::Stats PlanCache::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

std::size_t PlanCache::size() const {
  MutexLock lock(mutex_);
  return by_fingerprint_.size();
}

} // namespace portal::serve
