// Portal -- PortalService: the concurrent query-serving runtime
// (DESIGN.md Sec. 13, docs/SERVING.md).
//
// Ties the three serving pieces together behind one object:
//   * a PlanCache (serve/plan_cache.h): prepare() resolves a layer chain to
//     a shared compiled plan, compiling at most once per distinct chain;
//   * a LiveStore (serve/live.h): publish() copy-rebuild-swaps an immutable
//     dataset + tree epoch; insert()/remove() land in a bounded delta
//     generation beside it and a background merger folds them into fresh
//     epochs; every batch answers against one pinned (snapshot, delta,
//     watermark) view, so in-flight requests keep the point-set they
//     started on;
//   * a micro-batching scheduler: submit() enqueues onto a bounded MPMC
//     queue (admission control: reject or block when full, per-request
//     deadlines), worker threads dequeue and coalesce same-plan requests
//     into one batch answered back-to-back against one pinned snapshot
//     tree, fulfilling a std::future per request with the result, the
//     serving epoch, and the measured latency.
//
// Observability: always-on latency and queue-depth histograms
// (obs/histogram.h) plus serve/* trace counters (docs/OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "serve/engine.h"
#include "serve/live.h"
#include "serve/plan_cache.h"
#include "tree/snapshot.h"
#include "util/thread_annotations.h"

namespace portal::serve {

enum class Status {
  Ok,       // answered; result/epoch/latency valid
  Rejected, // admission control: queue full (or service stopped)
  Expired,  // deadline passed before a worker picked the request up
  Error,    // the engine threw; see Response::error
};

const char* status_name(Status s);

struct Response {
  Status status = Status::Rejected;
  QueryResult result;       // valid when status == Ok
  std::uint64_t epoch = 0;  // snapshot epoch that answered the request
  /// Mutation-clock watermark of the pinned view that answered the request:
  /// (epoch, watermark) names the exact visible point-set the answer is
  /// attributable to (tree/delta.h).
  std::uint64_t watermark = 0;
  double latency_ms = 0;    // submit() to fulfillment
  /// True iff this answer came from the approximate graph path
  /// (engine.h routes_to_graph): exact per-candidate values, completeness
  /// bounded by the beam width. Always false when the request ran the exact
  /// descent -- even with approx mode on, plans the graph cannot honor fall
  /// through to the exact engine, and this flag reports what actually
  /// happened, not what was asked for.
  bool approximate = false;
  std::string error;
  /// The pinned view itself, set only when ServiceOptions::capture_view:
  /// lets differential tests brute-force the exact point-set this answer
  /// saw, long after the store has merged past it.
  std::shared_ptr<const LiveView> view;
};

struct ServiceOptions {
  int workers = 2;
  std::size_t queue_capacity = 1024;
  std::size_t max_batch = 64;      // same-plan requests coalesced per dequeue
  double default_deadline_ms = 0;  // 0 = no deadline
  bool block_on_full = false;      // false: reject when full; true: submit()
                                   // blocks until space (backpressure)
  real_t tau = 0;                  // SUM approximation budget; 0 = exact
  bool batch_base_cases = true;    // SIMD leaf tiles in the engine
  bool strength_reduction = true;  // compiler knob passed to plan compiles
  /// Also JIT-compile every served plan (fused leaf-tile loops; the VM
  /// stays the fallback and the bitwise oracle). Compiled `.so` artifacts
  /// persist in jit_cache_dir -- or the PORTAL_JIT_CACHE_DIR process cache
  /// when empty -- so a restarted service warm-starts with zero compiler
  /// invocations (DESIGN.md Sec. 17, docs/SERVING.md).
  bool jit = false;
  std::string jit_cache_dir;
  /// Answer each coalesced micro-batch with interleaved resumable descents
  /// (engine.h run_query_batch): the worker round-robins resume() slices
  /// across the batch so one request's cache miss hides behind another's
  /// compute. false = the recursive baseline, one run_query per request.
  /// Either way every answer is bitwise-identical (docs/SERVING.md).
  bool interleave = true;
  index_t interleave_width = 16;   // in-flight descents per worker
  index_t resume_steps = 32;       // node visits per resume() slice
  /// --- approximate mode (DESIGN.md Sec. 18, docs/SERVING.md) ---
  /// Runtime serving parameters like tau: they never enter plan identity,
  /// so exact and approximate callers at any beam width share one compiled
  /// plan. `approx` routes every eligible request through the snapshot's
  /// k-NN graph; `approx_auto_dim` > 0 turns approx on automatically when
  /// the published dataset's dimensionality reaches the threshold (0 =
  /// never automatic). Setting either makes publish() build the graph
  /// (snapshot.build_graph) so the route is available.
  bool approx = false;
  index_t approx_auto_dim = 0;
  index_t beam_width = 64;         // graph beam; recall/latency knob
  SnapshotOptions snapshot;        // leaf size + which trees publish() builds
  // --- live ingestion (serve/live.h, docs/SERVING.md "Live ingestion") ---
  index_t delta_capacity = 4096;   // slots per delta generation
  index_t merge_threshold = 1024;  // pending slots that wake the merger
  bool background_merge = true;    // false: overflow merges run inline
  double ingest_wait_ms = 500;     // overflow admission window for insert()
  /// Attach the pinned LiveView to every Ok response (Response::view). Off
  /// by default: it extends the lifetime of retired generations for as long
  /// as callers hold their responses. The ingest stress tests turn it on to
  /// replay each answer against its exact point-set.
  bool capture_view = false;
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  std::uint64_t errors = 0;
  std::uint64_t batches = 0;          // worker dequeues
  std::uint64_t batched_requests = 0; // requests served through those batches
  std::size_t queue_depth = 0;        // at the time of the stats() call
  std::uint64_t epoch = 0;            // current snapshot epoch (0 = none)
  PlanCache::Stats plan_cache;
  LiveStoreStats ingest;              // insert/remove/merge counters

  double mean_batch() const {
    return batches == 0 ? 0
                        : static_cast<double>(batched_requests) /
                              static_cast<double>(batches);
  }
};

class PortalService {
 public:
  explicit PortalService(ServiceOptions options = {});
  ~PortalService(); // stop()s and drains
  PortalService(const PortalService&) = delete;
  PortalService& operator=(const PortalService&) = delete;

  /// Copy-rebuild-swap: build the next snapshot epoch over `data` and make
  /// it current. Safe at any time, including under full query load.
  std::shared_ptr<const TreeSnapshot> publish(Dataset data);
  std::shared_ptr<const TreeSnapshot> publish(
      std::shared_ptr<const Dataset> data);

  /// Current snapshot (null before the first publish). Holding the returned
  /// pointer pins that epoch.
  std::shared_ptr<const TreeSnapshot> snapshot() const {
    return store_.snapshot();
  }

  /// Pin the current (snapshot, delta, watermark) view -- what the next
  /// admitted query batch would answer against. Null before publish().
  std::shared_ptr<const LiveView> view() const { return store_.pin(); }

  // --- live ingestion endpoints (serve/live.h). Synchronous: they return
  // --- once the mutation is visible to the next pinned view (O(dim) mutex
  // --- hold for inserts; removals of main-tree points add one exact
  // --- kd descent). Safe from any thread, concurrent with queries, merges,
  // --- and publish().

  /// Append one point. Ok => Response-visible at seq; id is the
  /// client-visible identity (main_size + slot for the current generation).
  /// Rejected when the delta is full and a merge could not drain it within
  /// ingest_wait_ms (admission control, mirroring submit()'s queue policy).
  IngestResult insert(const std::vector<real_t>& point) {
    return store_.insert(point.data(), static_cast<index_t>(point.size()));
  }

  /// Tombstone the unique visible point with exactly these coordinates.
  /// NotFound when nothing visible matches.
  IngestResult remove(const std::vector<real_t>& point) {
    return store_.remove(point.data(), static_cast<index_t>(point.size()));
  }

  /// Run one delta merge synchronously on the calling thread (tests and
  /// orderly shutdown; the background merger does this on its own once the
  /// delta crosses merge_threshold).
  bool merge_now() { return store_.merge_now(); }

  /// Resolve a query chain (FORALL over request points -> inner layer) to a
  /// compiled plan, through the plan cache. Requires a published dataset
  /// (the chain compiles against its shape). Throws std::invalid_argument
  /// for unsupported operators/kernels, std::logic_error before publish().
  PlanHandle prepare(const OpSpec& op, const PortalFunc& func);
  PlanHandle prepare(LayerSpec inner); // inner.storage is ignored

  /// Enqueue one query point. Returns immediately with a future that
  /// resolves to the Response (including non-Ok admission outcomes, so
  /// callers have one result path). `deadline_ms` < 0 means "use the
  /// service default"; 0 disables the deadline for this request.
  std::future<Response> submit(PlanHandle plan, std::vector<real_t> point,
                               double deadline_ms = -1);

  ServiceStats stats() const;
  obs::LatencyHistogram::Snapshot latency() const { return latency_.snapshot(); }
  /// Queue depth observed at each submit (quantiles are unit-agnostic).
  obs::LatencyHistogram::Snapshot queue_depth() const { return depth_.snapshot(); }
  const ServiceOptions& options() const { return options_; }

  /// Drain the queue (workers finish everything already admitted), then join
  /// the workers. New submits are rejected from the moment stop() is
  /// entered. Idempotent; the destructor calls it.
  void stop();

 private:
  struct Pending {
    std::promise<Response> promise;
    PlanHandle plan;
    std::vector<real_t> point;
    double deadline_ms = 0;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();
  void run_batch_interleaved(std::vector<std::unique_ptr<Pending>>& batch,
                             const std::shared_ptr<const LiveView>& view,
                             const EngineOptions& eopt, BatchWorkspace& bws);
  void fulfill(Pending& pending, Response response);
  /// Has this request's deadline passed as of now?
  bool past_deadline(const Pending& pending) const;
  /// Fulfill Expired (counting it) if the deadline has passed; returns
  /// whether the request was consumed.
  bool expire_if_late(Pending& pending, const char* why);

  ServiceOptions options_;
  LiveStore store_; // snapshot slot + delta generation + background merger
  PlanCache cache_;

  Mutex stop_mutex_;    // serializes stop() (see service.cpp)
  mutable Mutex mutex_; // guards queue_ and stopping_
  CondVar work_cv_;
  CondVar space_cv_;
  std::deque<std::unique_ptr<Pending>> queue_ PORTAL_GUARDED_BY(mutex_);
  bool stopping_ PORTAL_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;

  obs::LatencyHistogram latency_;
  obs::LatencyHistogram depth_;
  std::atomic<std::uint64_t> submitted_{0}, completed_{0}, rejected_{0},
      expired_{0}, errors_{0}, batches_{0}, batched_requests_{0};
};

} // namespace portal::serve
