#include "serve/service.h"

#include <utility>

#include "obs/trace.h"

namespace portal::serve {
namespace {

double elapsed_ms(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

ServiceOptions normalize(ServiceOptions options) {
  if (options.workers < 1) options.workers = 1;
  if (options.max_batch < 1) options.max_batch = 1;
  if (options.queue_capacity < 1) options.queue_capacity = 1;
  if (options.beam_width < 1) options.beam_width = 1;
  // Asking for approximate mode implies the snapshot must carry the graph;
  // flipping build_graph here (rather than at each publish) also flows
  // through the delta-merge rebuilds, which reuse these snapshot options.
  if (options.approx || options.approx_auto_dim > 0)
    options.snapshot.build_graph = true;
  return options;
}

LiveStoreOptions live_options(const ServiceOptions& options) {
  LiveStoreOptions lo;
  lo.snapshot = options.snapshot;
  lo.delta_capacity = options.delta_capacity;
  lo.merge_threshold = options.merge_threshold;
  lo.background_merge = options.background_merge;
  lo.overflow_wait_ms = options.ingest_wait_ms;
  return lo;
}

} // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::Rejected: return "rejected";
    case Status::Expired: return "expired";
    case Status::Error: return "error";
  }
  return "?";
}

PortalService::PortalService(ServiceOptions options)
    : options_(normalize(std::move(options))), store_(live_options(options_)) {
  if (options_.jit) {
    PlanCache::JitOptions jit;
    jit.enabled = true;
    jit.cache_dir = options_.jit_cache_dir;
    cache_.configure_jit(jit);
  }
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i)
    workers_.emplace_back(&PortalService::worker_loop, this);
}

PortalService::~PortalService() { stop(); }

std::shared_ptr<const TreeSnapshot> PortalService::publish(Dataset data) {
  return publish(std::make_shared<const Dataset>(std::move(data)));
}

std::shared_ptr<const TreeSnapshot> PortalService::publish(
    std::shared_ptr<const Dataset> data) {
  auto snap = store_.publish(std::move(data));
  PORTAL_OBS_COUNT("serve/publishes", 1);
  return snap;
}

PlanHandle PortalService::prepare(const OpSpec& op, const PortalFunc& func) {
  LayerSpec inner;
  inner.op = op;
  inner.func = func;
  return prepare(std::move(inner));
}

PlanHandle PortalService::prepare(LayerSpec inner) {
  auto snap = store_.snapshot();
  if (!snap)
    throw std::logic_error(
        "PortalService::prepare: publish() a dataset first (plans compile "
        "against its shape)");
  PortalConfig config;
  config.tau = options_.tau;
  config.strength_reduction = options_.strength_reduction;
  config.leaf_size = options_.snapshot.leaf_size;
  config.batch_base_cases = options_.batch_base_cases;
  return cache_.get_or_compile(inner, *snap->source(), config);
}

bool PortalService::past_deadline(const Pending& pending) const {
  return pending.deadline_ms > 0 &&
         elapsed_ms(pending.enqueued, std::chrono::steady_clock::now()) >
             pending.deadline_ms;
}

bool PortalService::expire_if_late(Pending& pending, const char* why) {
  if (!past_deadline(pending)) return false;
  expired_.fetch_add(1, std::memory_order_relaxed);
  PORTAL_OBS_COUNT("serve/expired", 1);
  Response resp;
  resp.status = Status::Expired;
  resp.error = why;
  fulfill(pending, std::move(resp));
  return true;
}

void PortalService::fulfill(Pending& pending, Response response) {
  response.latency_ms =
      elapsed_ms(pending.enqueued, std::chrono::steady_clock::now());
  latency_.record(response.latency_ms * 1e-3);
  pending.promise.set_value(std::move(response));
}

std::future<Response> PortalService::submit(PlanHandle plan,
                                            std::vector<real_t> point,
                                            double deadline_ms) {
  auto pending = std::make_unique<Pending>();
  pending->enqueued = std::chrono::steady_clock::now();
  pending->plan = std::move(plan);
  pending->point = std::move(point);
  pending->deadline_ms =
      deadline_ms < 0 ? options_.default_deadline_ms : deadline_ms;
  std::future<Response> future = pending->promise.get_future();

  if (!pending->plan) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    Response resp;
    resp.status = Status::Error;
    resp.error = "null plan handle";
    fulfill(*pending, std::move(resp));
    return future;
  }
  if (static_cast<index_t>(pending->point.size()) != pending->plan->dim) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    Response resp;
    resp.status = Status::Error;
    resp.error = "query point has " + std::to_string(pending->point.size()) +
                 " coordinates, plan expects " +
                 std::to_string(pending->plan->dim);
    fulfill(*pending, std::move(resp));
    return future;
  }

  bool admitted = false;
  bool stopped = false;
  {
    MutexLock lock(mutex_);
    if (options_.block_on_full) {
      while (!stopping_ && queue_.size() >= options_.queue_capacity)
        space_cv_.wait(mutex_);
    }
    if (stopping_ || queue_.size() >= options_.queue_capacity) {
      stopped = stopping_;
    } else {
      depth_.record_ns(queue_.size());
      queue_.push_back(std::move(pending));
      submitted_.fetch_add(1, std::memory_order_relaxed);
      admitted = true;
    }
  }
  if (!admitted) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    PORTAL_OBS_COUNT("serve/rejected", 1);
    Response resp;
    resp.status = Status::Rejected;
    resp.error = stopped ? "service stopped" : "queue full";
    fulfill(*pending, std::move(resp));
    return future;
  }
  PORTAL_OBS_COUNT("serve/submitted", 1);
  work_cv_.notify_one();
  return future;
}

/// One coalesced batch through the interleaved engine path: per-request
/// deadline check immediately before execution (late arrivals expire without
/// burning engine time), one run_query_batch over the survivors, then a
/// per-request re-check before fulfillment so a request whose deadline
/// passed *during* execution is answered Expired, never a late Ok. An
/// engine throw fails the whole batch (the interleaved descents share the
/// engine invocation), fulfilling every live request with the error.
void PortalService::run_batch_interleaved(
    std::vector<std::unique_ptr<Pending>>& batch,
    const std::shared_ptr<const LiveView>& view, const EngineOptions& eopt,
    BatchWorkspace& bws) {
  std::vector<Pending*> live;
  std::vector<const real_t*> points;
  live.reserve(batch.size());
  points.reserve(batch.size());
  for (std::unique_ptr<Pending>& pending : batch) {
    if (expire_if_late(*pending, "deadline exceeded in queue")) continue;
    live.push_back(pending.get());
    points.push_back(pending->point.data());
  }
  if (live.empty()) return;

  // One routing decision covers the batch: coalescing guarantees every
  // member shares the head's plan, and the view is pinned for the duration.
  const bool approx_routed =
      view->snapshot && routes_to_graph(*live.front()->plan, *view->snapshot, eopt);

  std::vector<QueryResult> results(live.size());
  try {
    run_query_batch(*live.front()->plan, *view, points.data(),
                    static_cast<index_t>(live.size()), eopt, bws,
                    results.data());
  } catch (const std::exception& e) {
    for (Pending* pending : live) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      Response resp;
      resp.status = Status::Error;
      resp.error = e.what();
      fulfill(*pending, std::move(resp));
    }
    return;
  }

  for (std::size_t i = 0; i < live.size(); ++i) {
    Pending& pending = *live[i];
    if (expire_if_late(pending, "deadline exceeded during execution"))
      continue;
    completed_.fetch_add(1, std::memory_order_relaxed);
    PORTAL_OBS_COUNT("serve/completed", 1);
    Response resp;
    resp.status = Status::Ok;
    resp.result = std::move(results[i]);
    resp.epoch = view->epoch();
    resp.watermark = view->watermark;
    resp.approximate = approx_routed;
    if (options_.capture_view) resp.view = view;
    fulfill(pending, std::move(resp));
  }
}

void PortalService::worker_loop() {
  Workspace ws;
  BatchWorkspace bws;
  std::vector<std::unique_ptr<Pending>> batch;
  while (true) {
    batch.clear();
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_cv_.wait(mutex_);
      if (queue_.empty()) break; // stopping and fully drained
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Micro-batch coalescing: pull every queued request sharing the head's
      // plan fingerprint (up to max_batch), preserving the relative order of
      // everything left behind. The whole batch then runs against one pinned
      // snapshot with warm per-plan state.
      const std::uint64_t key = batch.front()->plan->fingerprint;
      for (auto it = queue_.begin();
           it != queue_.end() && batch.size() < options_.max_batch;) {
        if ((*it)->plan->fingerprint == key) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      if (options_.block_on_full) space_cv_.notify_all();
    }

    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
    PORTAL_OBS_COUNT("serve/batches", 1);
    PORTAL_OBS_COUNT("serve/coalesced",
                     static_cast<std::uint64_t>(batch.size()));

    // Pin one live view for the whole batch: every member is answered at
    // the same (epoch, watermark) even if a publish, ingest, or merge lands
    // mid-batch.
    const std::shared_ptr<const LiveView> view = store_.pin();
    EngineOptions eopt;
    eopt.batch_base_cases = options_.batch_base_cases;
    eopt.tau = options_.tau;
    eopt.interleave_width = options_.interleave_width;
    eopt.resume_steps = options_.resume_steps;
    eopt.beam_width = options_.beam_width;
    eopt.approx =
        options_.approx ||
        (options_.approx_auto_dim > 0 && view && view->snapshot &&
         view->snapshot->dim() >= options_.approx_auto_dim);

    if (options_.interleave && view) {
      run_batch_interleaved(batch, view, eopt, bws);
      continue;
    }

    // Recursive baseline: one run-to-completion descent per request.
    for (std::unique_ptr<Pending>& pending : batch) {
      // Deadline check at this request's turn, not just at dequeue: the
      // requests ahead of it in the batch may have consumed its budget.
      if (expire_if_late(*pending, "deadline exceeded in queue")) continue;
      Response resp;
      if (!view) {
        resp.status = Status::Error;
        resp.error = "no dataset published";
        errors_.fetch_add(1, std::memory_order_relaxed);
      } else {
        try {
          resp.result = run_query(*pending->plan, *view,
                                  pending->point.data(), eopt, ws);
          resp.status = Status::Ok;
          resp.epoch = view->epoch();
          resp.watermark = view->watermark;
          resp.approximate =
              view->snapshot &&
              routes_to_graph(*pending->plan, *view->snapshot, eopt);
          if (options_.capture_view) resp.view = view;
        } catch (const std::exception& e) {
          resp.status = Status::Error;
          resp.error = e.what();
          errors_.fetch_add(1, std::memory_order_relaxed);
        }
        // Re-check after execution: the deadline may have passed *during*
        // this request's own descent, and a deadline-carrying client has
        // stopped waiting -- fulfilling Ok here would under-count expiries
        // and misreport a late answer as on-time.
        if (resp.status == Status::Ok) {
          if (expire_if_late(*pending, "deadline exceeded during execution"))
            continue;
          completed_.fetch_add(1, std::memory_order_relaxed);
          PORTAL_OBS_COUNT("serve/completed", 1);
        }
      }
      fulfill(*pending, std::move(resp));
    }
  }
}

ServiceStats PortalService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  {
    MutexLock lock(mutex_);
    s.queue_depth = queue_.size();
  }
  s.epoch = store_.current_epoch();
  s.plan_cache = cache_.stats();
  s.ingest = store_.stats();
  return s;
}

void PortalService::stop() {
  // Serialize whole-stop against concurrent stop() calls (explicit stop
  // racing the destructor); the queue mutex alone can't cover the joins.
  MutexLock stop_lock(stop_mutex_);
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();
  // Join the background merger too; merges stay available synchronously.
  store_.stop();
  // Workers drain the queue before exiting, but a submit() racing stop() may
  // have slipped a request in after the last worker left.
  std::deque<std::unique_ptr<Pending>> leftovers;
  {
    MutexLock lock(mutex_);
    leftovers.swap(queue_);
  }
  for (std::unique_ptr<Pending>& pending : leftovers) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    Response resp;
    resp.status = Status::Rejected;
    resp.error = "service stopped";
    fulfill(*pending, std::move(resp));
  }
}

} // namespace portal::serve
