// Portal -- point-to-point distance metrics (paper Sec. III-C).
//
// Every metric is implemented as a stateless functor templated over the
// coordinate stride so the same code instantiates for both layouts:
//   row-major:    stride == 1        (coordinates of a point contiguous)
//   column-major: stride == N        (dimension slices contiguous)
// The stride-1 instantiation is what the host compiler auto-vectorizes in the
// inner loop (high-d case); the strided one is used point-at-a-time by the
// column-major kernels which vectorize across *points* instead (Sec. IV-F).
#pragma once

#include <cmath>
#include <vector>

#include "kernels/fastmath.h"
#include "kernels/linalg.h"
#include "util/common.h"

namespace portal {

enum class MetricKind {
  SqEuclidean,
  Euclidean,
  Manhattan,
  Chebyshev,
  Mahalanobis,
};

const char* metric_name(MetricKind kind);

/// Squared L2. The workhorse: Euclidean pruning is done in squared space to
/// avoid square roots in the hot loop.
struct SqEuclideanMetric {
  template <index_t StrideA = 0, index_t StrideB = 0>
  static real_t eval(const real_t* a, index_t sa, const real_t* b, index_t sb,
                     index_t dim) {
    const index_t step_a = StrideA == 0 ? sa : StrideA;
    const index_t step_b = StrideB == 0 ? sb : StrideB;
    real_t total = 0;
    for (index_t d = 0; d < dim; ++d) {
      const real_t diff = a[d * step_a] - b[d * step_b];
      total += diff * diff;
    }
    return total;
  }
};

struct EuclideanMetric {
  template <index_t StrideA = 0, index_t StrideB = 0>
  static real_t eval(const real_t* a, index_t sa, const real_t* b, index_t sb,
                     index_t dim) {
    return std::sqrt(SqEuclideanMetric::eval<StrideA, StrideB>(a, sa, b, sb, dim));
  }
};

struct ManhattanMetric {
  template <index_t StrideA = 0, index_t StrideB = 0>
  static real_t eval(const real_t* a, index_t sa, const real_t* b, index_t sb,
                     index_t dim) {
    const index_t step_a = StrideA == 0 ? sa : StrideA;
    const index_t step_b = StrideB == 0 ? sb : StrideB;
    real_t total = 0;
    for (index_t d = 0; d < dim; ++d)
      total += std::abs(a[d * step_a] - b[d * step_b]);
    return total;
  }
};

struct ChebyshevMetric {
  template <index_t StrideA = 0, index_t StrideB = 0>
  static real_t eval(const real_t* a, index_t sa, const real_t* b, index_t sb,
                     index_t dim) {
    const index_t step_a = StrideA == 0 ? sa : StrideA;
    const index_t step_b = StrideB == 0 ? sb : StrideB;
    real_t best = 0;
    for (index_t d = 0; d < dim; ++d) {
      const real_t diff = std::abs(a[d * step_a] - b[d * step_b]);
      if (diff > best) best = diff;
    }
    return best;
  }
};

/// Mahalanobis distance context: holds the Cholesky factor of the covariance
/// (the Sec. IV-D numerically-optimized path) plus the explicit inverse for
/// the naive oracle. Shareable across threads once built (read-only).
class MahalanobisContext {
 public:
  /// Build from a covariance matrix (row-major m x m).
  MahalanobisContext(std::vector<real_t> covariance, index_t dim);

  index_t dim() const { return dim_; }
  const std::vector<real_t>& chol() const { return chol_; }
  const std::vector<real_t>& inverse() const { return inverse_; }
  real_t log_det() const { return log_det_; }

  /// Squared Mahalanobis distance via Cholesky + forward substitution
  /// (m^2/2); `scratch` must hold 2*dim reals (per-thread).
  real_t sq_dist(const real_t* x, const real_t* y, real_t* scratch) const;

  /// Squared Mahalanobis distance via the explicit inverse (m^3-flavored
  /// naive path; correctness oracle and ablation baseline).
  real_t sq_dist_naive(const real_t* x, const real_t* y) const;

  /// Bounds on x^T Sigma^{-1} x in terms of ||x||^2: extreme eigenvalue
  /// estimates of Sigma^{-1}, used by the prune generator to translate
  /// Euclidean box bounds into Mahalanobis bounds conservatively.
  real_t eig_min() const { return eig_min_; }
  real_t eig_max() const { return eig_max_; }

 private:
  index_t dim_ = 0;
  std::vector<real_t> chol_;
  std::vector<real_t> inverse_;
  real_t log_det_ = 0;
  real_t eig_min_ = 0;
  real_t eig_max_ = 0;
};

/// Layout-generic dispatch used by the VM engine and non-hot paths. `sa`/`sb`
/// are coordinate strides. Mahalanobis requires `ctx` and a 2*dim `scratch`.
real_t point_distance(MetricKind kind, const real_t* a, index_t sa,
                      const real_t* b, index_t sb, index_t dim,
                      const MahalanobisContext* ctx = nullptr,
                      real_t* scratch = nullptr);

/// True for metrics where pruning arithmetic happens in squared space.
inline bool metric_is_squared(MetricKind kind) {
  return kind == MetricKind::SqEuclidean || kind == MetricKind::Mahalanobis;
}

} // namespace portal
