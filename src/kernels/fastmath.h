// Portal -- strength-reduced math primitives (paper Sec. IV-E).
//
// The compiler's strength-reduction pass replaces long-latency operations:
//   * pow(x, k) with integer k < 4  ->  chained multiplication;
//   * 1/sqrt(x)                     ->  fast inverse square root (~0.17% err);
//   * sqrt(x)                       ->  1 / (1 / fast_inv_sqrt(x)), the
//     NaN-safe variant the paper chooses (x * rsqrt(x) is faster but yields
//     NaN at x = 0, while the reciprocal form yields the desired 0).
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>

#include "util/common.h"

namespace portal {

/// Quake-style fast inverse square root for doubles with one Newton-Raphson
/// refinement step. Relative error is below ~0.2% after the refinement, the
/// error bound the paper quotes for the LLVM intrinsic it uses. Edge cases
/// match 1/sqrt(x) semantics (the paper's NaN-safety argument, Sec. IV-E):
/// NaN for x < 0, +inf for 0, and 0 for +inf. Denormal inputs flush to +inf
/// like hardware rsqrt -- the bit trick's Newton step overflows there, so
/// treating them as zero is the accurate-to-spirit choice.
inline double fast_inv_sqrt(double x) {
  if (x != x) return x; // NaN propagates
  if (x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x < std::numeric_limits<double>::min())
    return std::numeric_limits<double>::infinity(); // 0 and denormals
  if (x == std::numeric_limits<double>::infinity()) return 0.0;
  double half = 0.5 * x;
  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  bits = 0x5FE6EB50C7B537A9ULL - (bits >> 1);
  double y;
  std::memcpy(&y, &bits, sizeof(y));
  y = y * (1.5 - half * y * y); // one Newton step
  return y;
}

inline float fast_inv_sqrt(float x) {
  if (x != x) return x;
  if (x < 0.0f) return std::numeric_limits<float>::quiet_NaN();
  if (x < std::numeric_limits<float>::min())
    return std::numeric_limits<float>::infinity();
  if (x == std::numeric_limits<float>::infinity()) return 0.0f;
  float half = 0.5f * x;
  std::uint32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  bits = 0x5F375A86U - (bits >> 1);
  float y;
  std::memcpy(&y, &bits, sizeof(y));
  y = y * (1.5f - half * y * y);
  return y;
}

/// sqrt via the reciprocal of the fast inverse square root -- the paper's
/// 1/(1/sqrt(x)) form. Returns exactly 0 for x == 0 (1/inf == 0), unlike
/// x * fast_inv_sqrt(x) which returns NaN there.
inline real_t fast_sqrt(real_t x) { return real_t(1) / fast_inv_sqrt(x); }

/// The faster-but-unsafe variant (x * rsqrt(x)); kept for the strength
/// reduction ablation bench that quantifies the paper's Sec. IV-E choice.
inline real_t fast_sqrt_unsafe(real_t x) { return x * fast_inv_sqrt(x); }

/// pow(x, n) for small integer n as chained multiplications. The
/// strength-reduction pass only fires for 0 <= n < 4 (paper), but the helper
/// handles any int n by square-and-multiply for completeness; negative
/// exponents are computed as 1 / pow_int(x, -n), so pow_int(0, -n) yields
/// inf exactly like std::pow.
inline real_t pow_int(real_t x, int n) {
  switch (n) {
    case 0: return real_t(1);
    case 1: return x;
    case 2: return x * x;
    case 3: return x * x * x;
    default: {
      // Magnitude as unsigned so n == INT_MIN does not overflow on negation.
      const bool negative = n < 0;
      unsigned int e = negative
                           ? 0u - static_cast<unsigned int>(n)
                           : static_cast<unsigned int>(n);
      real_t result = 1;
      real_t base = x;
      while (e > 0) {
        if (e & 1u) result *= base;
        base *= base;
        e >>= 1;
      }
      return negative ? real_t(1) / result : result;
    }
  }
}

} // namespace portal
