// Portal -- strength-reduced math primitives (paper Sec. IV-E).
//
// The compiler's strength-reduction pass replaces long-latency operations:
//   * pow(x, k) with integer k < 4  ->  chained multiplication;
//   * 1/sqrt(x)                     ->  fast inverse square root (~0.17% err);
//   * sqrt(x)                       ->  1 / (1 / fast_inv_sqrt(x)), the
//     NaN-safe variant the paper chooses (x * rsqrt(x) is faster but yields
//     NaN at x = 0, while the reciprocal form yields the desired 0).
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>

#include "util/common.h"

namespace portal {

/// Quake-style fast inverse square root for doubles with one Newton-Raphson
/// refinement step. Relative error is below ~0.2% after the refinement, the
/// error bound the paper quotes for the LLVM intrinsic it uses. Returns +inf
/// at x == 0, matching the hardware rsqrt semantics the paper's NaN-safety
/// argument (Sec. IV-E) relies on.
inline double fast_inv_sqrt(double x) {
  if (x == 0.0) return std::numeric_limits<double>::infinity();
  double half = 0.5 * x;
  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  bits = 0x5FE6EB50C7B537A9ULL - (bits >> 1);
  double y;
  std::memcpy(&y, &bits, sizeof(y));
  y = y * (1.5 - half * y * y); // one Newton step
  return y;
}

inline float fast_inv_sqrt(float x) {
  if (x == 0.0f) return std::numeric_limits<float>::infinity();
  float half = 0.5f * x;
  std::uint32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  bits = 0x5F375A86U - (bits >> 1);
  float y;
  std::memcpy(&y, &bits, sizeof(y));
  y = y * (1.5f - half * y * y);
  return y;
}

/// sqrt via the reciprocal of the fast inverse square root -- the paper's
/// 1/(1/sqrt(x)) form. Returns exactly 0 for x == 0 (1/inf == 0), unlike
/// x * fast_inv_sqrt(x) which returns NaN there.
inline real_t fast_sqrt(real_t x) { return real_t(1) / fast_inv_sqrt(x); }

/// The faster-but-unsafe variant (x * rsqrt(x)); kept for the strength
/// reduction ablation bench that quantifies the paper's Sec. IV-E choice.
inline real_t fast_sqrt_unsafe(real_t x) { return x * fast_inv_sqrt(x); }

/// pow(x, n) for small non-negative integer n as chained multiplications.
/// The strength-reduction pass only fires for n < 4 (paper), but the helper
/// handles any n >= 0 by square-and-multiply for completeness.
inline real_t pow_int(real_t x, int n) {
  switch (n) {
    case 0: return real_t(1);
    case 1: return x;
    case 2: return x * x;
    case 3: return x * x * x;
    default: {
      real_t result = 1;
      real_t base = x;
      int e = n;
      while (e > 0) {
        if (e & 1) result *= base;
        base *= base;
        e >>= 1;
      }
      return result;
    }
  }
}

} // namespace portal
