// Portal -- BatchEval: SIMD-batched base-case kernels over SoA leaf tiles
// (paper Sec. IV-F: the traversal switches from task parallelism in the
// upper tree to data parallelism inside the base cases).
//
// A Tile is one query point against a contiguous run of reference points
// taken from a tree's SoA mirror (tree/soa_mirror.h): dimension-major lanes,
// 64-byte aligned, unit stride across points. Every routine here is written
// dimension-outer / lane-inner with `#pragma omp simd` on the lane loop so
// the host compiler vectorizes across points for any dimensionality -- the
// same loop ordering as the scalar helpers in problems/common.h, which makes
// the batched results bitwise-identical to the scalar path (the per-lane
// accumulation visits dimensions in the same ascending order).
//
// Lane utilization is observable through the obs counters emitted by
// count_batch_tile / count_scalar_tail ("base/..."; see OBSERVABILITY.md).
#pragma once

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "kernels/metrics.h"
#include "obs/trace.h"
#include "util/common.h"

namespace portal::batch {

/// One leaf tile: `count` reference points starting at lane offset `begin`
/// inside a dimension-major mirror (`lanes[d * stride + j]` is point j's
/// d-th coordinate).
struct Tile {
  const real_t* lanes = nullptr;
  index_t stride = 0;
  index_t begin = 0;
  index_t count = 0;
  index_t dim = 0;

  const real_t* lane(index_t d) const { return lanes + d * stride + begin; }
};

/// Mahalanobis tiles are solved in lane blocks of this width; the forward
/// substitution needs caller scratch of 2 * dim * kMahaBlock reals.
inline constexpr index_t kMahaBlock = 8;

/// Gather `count` scattered mirror points (ids[j] indexes into the
/// dimension-major `lanes`/`stride` storage of a SoaMirror) into a
/// caller-owned dimension-major scratch tile of lane width `scratch_stride`
/// (>= count), and return a Tile viewing it. The graph index uses this to
/// run the SIMD distance kernels above over beam-search candidate sets whose
/// ids are not contiguous: the per-pair accumulation still visits dimensions
/// in ascending order, so gathered results stay bitwise-identical to the
/// scalar helpers in problems/common.h for every pair.
inline Tile gather(const real_t* lanes, index_t stride, index_t dim,
                   const index_t* ids, index_t count, real_t* scratch,
                   index_t scratch_stride) {
  for (index_t d = 0; d < dim; ++d) {
    const real_t* src = lanes + d * stride;
    real_t* dst = scratch + d * scratch_stride;
    for (index_t j = 0; j < count; ++j) dst[j] = src[ids[j]];
  }
  return Tile{scratch, scratch_stride, 0, count, dim};
}

inline void count_batch_tile(index_t pairs) {
  PORTAL_OBS_COUNT("base/batch_tiles", 1);
  PORTAL_OBS_COUNT("base/batch_pairs", static_cast<std::uint64_t>(pairs));
}

inline void count_scalar_tail(index_t pairs) {
  PORTAL_OBS_COUNT("base/scalar_pairs", static_cast<std::uint64_t>(pairs));
}

/// out[j] = ||q - r_j||^2.
inline void sq_dists(const Tile& t, const real_t* qpt, real_t* out) {
  const index_t count = t.count;
#pragma omp simd
  for (index_t j = 0; j < count; ++j) out[j] = 0;
  for (index_t d = 0; d < t.dim; ++d) {
    const real_t* slice = t.lane(d);
    const real_t q = qpt[d];
#pragma omp simd
    for (index_t j = 0; j < count; ++j) {
      const real_t diff = slice[j] - q;
      out[j] += diff * diff;
    }
  }
}

/// out[j] = ||q - r_j||_1.
inline void l1_dists(const Tile& t, const real_t* qpt, real_t* out) {
  const index_t count = t.count;
#pragma omp simd
  for (index_t j = 0; j < count; ++j) out[j] = 0;
  for (index_t d = 0; d < t.dim; ++d) {
    const real_t* slice = t.lane(d);
    const real_t q = qpt[d];
#pragma omp simd
    for (index_t j = 0; j < count; ++j) out[j] += std::abs(slice[j] - q);
  }
}

/// out[j] = ||q - r_j||_inf.
inline void linf_dists(const Tile& t, const real_t* qpt, real_t* out) {
  const index_t count = t.count;
#pragma omp simd
  for (index_t j = 0; j < count; ++j) out[j] = 0;
  for (index_t d = 0; d < t.dim; ++d) {
    const real_t* slice = t.lane(d);
    const real_t q = qpt[d];
#pragma omp simd
    for (index_t j = 0; j < count; ++j)
      out[j] = std::max(out[j], std::abs(slice[j] - q));
  }
}

/// out[j] = exp(-sq[j] * inv_two_sigma_sq) -- the Gaussian KDE kernel on a
/// lane of squared distances (kernels/gaussian.h, batched).
inline void gaussian_sq(const real_t* sq, index_t count, real_t inv_two_sigma_sq,
                        real_t* out) {
#pragma omp simd
  for (index_t j = 0; j < count; ++j) out[j] = std::exp(-sq[j] * inv_two_sigma_sq);
}

/// Fused exp-and-accumulate over a lane of squared distances. Sums in the
/// same ascending-j order as the scalar KDE base case (bitwise-identical to
/// gaussian_sq followed by an ordered sum) while skipping the intermediate
/// array pass -- the exp calls dominate either way, so the fusion only drops
/// cache traffic, never changes a bit.
inline real_t gaussian_sq_sum(const real_t* sq, index_t count,
                              real_t inv_two_sigma_sq) {
  real_t total = 0;
  for (index_t j = 0; j < count; ++j)
    total += std::exp(-sq[j] * inv_two_sigma_sq);
  return total;
}

/// Squared Mahalanobis distances via Cholesky forward substitution, solved
/// kMahaBlock lanes at a time (the substitution recurrence runs across the
/// block, vectorizing over lanes instead of the serial per-point solve).
/// `scratch` must hold 2 * dim * kMahaBlock reals. The per-lane operation
/// order matches mahalanobis_sq_cholesky exactly.
inline void maha_sq_dists(const Tile& t, const real_t* qpt,
                          const std::vector<real_t>& chol, real_t* scratch,
                          real_t* out) {
  const index_t m = t.dim;
  real_t* diff = scratch;                  // m x kMahaBlock
  real_t* solved = scratch + m * kMahaBlock; // m x kMahaBlock
  for (index_t b = 0; b < t.count; b += kMahaBlock) {
    const index_t w = std::min(kMahaBlock, t.count - b);
    for (index_t d = 0; d < m; ++d) {
      const real_t* slice = t.lane(d) + b;
      const real_t q = qpt[d];
#pragma omp simd
      for (index_t l = 0; l < w; ++l) diff[d * kMahaBlock + l] = q - slice[l];
    }
    for (index_t i = 0; i < m; ++i) {
      real_t* row = solved + i * kMahaBlock;
#pragma omp simd
      for (index_t l = 0; l < w; ++l) row[l] = diff[i * kMahaBlock + l];
      for (index_t k = 0; k < i; ++k) {
        const real_t lik = chol[i * m + k];
        const real_t* prev = solved + k * kMahaBlock;
#pragma omp simd
        for (index_t l = 0; l < w; ++l) row[l] -= lik * prev[l];
      }
      // Divide (not multiply by a reciprocal): matches the scalar solve
      // bit-for-bit.
      const real_t lii = chol[i * m + i];
#pragma omp simd
      for (index_t l = 0; l < w; ++l) row[l] /= lii;
    }
    real_t* tile_out = out + b;
#pragma omp simd
    for (index_t l = 0; l < w; ++l) tile_out[l] = 0;
    for (index_t i = 0; i < m; ++i) {
      const real_t* row = solved + i * kMahaBlock;
#pragma omp simd
      for (index_t l = 0; l < w; ++l) tile_out[l] += row[l] * row[l];
    }
  }
}

/// Metric-generic tile distances in the same space as dists_to_range
/// (problems/common.h): squared for the L2 family (callers square-compare;
/// sqrt at the edge), plain distance otherwise. Mahalanobis needs the
/// context's Cholesky factor plus 2 * dim * kMahaBlock scratch.
inline void dists(MetricKind kind, const Tile& t, const real_t* qpt,
                  const MahalanobisContext* maha, real_t* scratch, real_t* out) {
  switch (kind) {
    case MetricKind::SqEuclidean:
    case MetricKind::Euclidean:
      sq_dists(t, qpt, out);
      return;
    case MetricKind::Manhattan:
      l1_dists(t, qpt, out);
      return;
    case MetricKind::Chebyshev:
      linf_dists(t, qpt, out);
      return;
    case MetricKind::Mahalanobis:
      maha_sq_dists(t, qpt, maha->chol(), scratch, out);
      return;
  }
  throw std::invalid_argument("batch::dists: unsupported metric");
}

/// Tile distances in the metric's *natural* space (true distance for
/// Euclidean) -- the executor's envelope input space.
inline void natural_dists(MetricKind kind, const Tile& t, const real_t* qpt,
                          const MahalanobisContext* maha, real_t* scratch,
                          real_t* out) {
  dists(kind, t, qpt, maha, scratch, out);
  if (kind == MetricKind::Euclidean) {
    const index_t count = t.count;
#pragma omp simd
    for (index_t j = 0; j < count; ++j) out[j] = std::sqrt(out[j]);
  }
}

/// BatchEval: the metric-bound facade problems and the executor hold on to.
/// `natural` selects natural_dists semantics (executor) over the
/// square-compare semantics of dists_to_range (pattern kernels).
struct BatchEval {
  MetricKind metric = MetricKind::SqEuclidean;
  const MahalanobisContext* maha = nullptr;
  bool natural = false;

  void operator()(const Tile& t, const real_t* qpt, real_t* scratch,
                  real_t* out) const {
    if (natural)
      natural_dists(metric, t, qpt, maha, scratch, out);
    else
      dists(metric, t, qpt, maha, scratch, out);
  }
};

} // namespace portal::batch
