#include "kernels/metrics.h"

#include <stdexcept>

namespace portal {
namespace {

/// Largest-eigenvalue estimate of a symmetric PSD matrix by power iteration.
/// m is tiny (the data dimension), so a fixed iteration count suffices.
real_t power_iteration_max_eig(const std::vector<real_t>& a, index_t m) {
  std::vector<real_t> v(m, 1);
  std::vector<real_t> w(m, 0);
  real_t lambda = 0;
  for (int iter = 0; iter < 100; ++iter) {
    for (index_t i = 0; i < m; ++i) {
      real_t sum = 0;
      for (index_t j = 0; j < m; ++j) sum += a[i * m + j] * v[j];
      w[i] = sum;
    }
    real_t norm = 0;
    for (index_t i = 0; i < m; ++i) norm += w[i] * w[i];
    norm = std::sqrt(norm);
    if (norm < 1e-300) return 0;
    for (index_t i = 0; i < m; ++i) v[i] = w[i] / norm;
    lambda = norm;
  }
  return lambda;
}

} // namespace

const char* metric_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::SqEuclidean: return "sq_euclidean";
    case MetricKind::Euclidean: return "euclidean";
    case MetricKind::Manhattan: return "manhattan";
    case MetricKind::Chebyshev: return "chebyshev";
    case MetricKind::Mahalanobis: return "mahalanobis";
  }
  return "unknown";
}

MahalanobisContext::MahalanobisContext(std::vector<real_t> covariance, index_t dim)
    : dim_(dim) {
  if (static_cast<index_t>(covariance.size()) != dim * dim)
    throw std::invalid_argument("MahalanobisContext: covariance shape mismatch");
  chol_ = cholesky(covariance, dim);
  inverse_ = spd_inverse(covariance, dim);
  log_det_ = log_det_from_cholesky(chol_, dim);
  // lambda_max(Sigma^{-1}) directly; lambda_min(Sigma^{-1}) = 1/lambda_max(Sigma).
  eig_max_ = power_iteration_max_eig(inverse_, dim);
  const real_t cov_max = power_iteration_max_eig(covariance, dim);
  eig_min_ = cov_max > 0 ? real_t(1) / cov_max : real_t(0);
}

real_t MahalanobisContext::sq_dist(const real_t* x, const real_t* y,
                                   real_t* scratch) const {
  // mahalanobis_sq_cholesky computes (x - y)^T Sigma^{-1} (x - y) with `y`
  // playing the role of the mean.
  return mahalanobis_sq_cholesky(x, y, chol_, dim_, scratch);
}

real_t MahalanobisContext::sq_dist_naive(const real_t* x, const real_t* y) const {
  return mahalanobis_sq_naive(x, y, inverse_, dim_);
}

real_t point_distance(MetricKind kind, const real_t* a, index_t sa,
                      const real_t* b, index_t sb, index_t dim,
                      const MahalanobisContext* ctx, real_t* scratch) {
  switch (kind) {
    case MetricKind::SqEuclidean:
      return SqEuclideanMetric::eval(a, sa, b, sb, dim);
    case MetricKind::Euclidean:
      return EuclideanMetric::eval(a, sa, b, sb, dim);
    case MetricKind::Manhattan:
      return ManhattanMetric::eval(a, sa, b, sb, dim);
    case MetricKind::Chebyshev:
      return ChebyshevMetric::eval(a, sa, b, sb, dim);
    case MetricKind::Mahalanobis: {
      if (ctx == nullptr || scratch == nullptr)
        throw std::invalid_argument("point_distance: Mahalanobis needs context");
      if (sa != 1 || sb != 1) {
        // Gather into scratch tail; Mahalanobis points must be contiguous.
        // scratch layout: [2*dim solver scratch][dim gathered a][dim gathered b]
        real_t* ga = scratch + 2 * dim;
        real_t* gb = scratch + 3 * dim;
        for (index_t d = 0; d < dim; ++d) {
          ga[d] = a[d * sa];
          gb[d] = b[d * sb];
        }
        return ctx->sq_dist(ga, gb, scratch);
      }
      return ctx->sq_dist(a, b, scratch);
    }
  }
  throw std::logic_error("point_distance: unhandled metric");
}

} // namespace portal
