// Portal -- small dense linear algebra used by the numerical-optimization
// pass (paper Sec. IV-D) and the statistical problems (EM, naive Bayes).
//
// All matrices are row-major m x m in flat vectors; m is the data
// dimensionality (tens at most), so simple triple loops are appropriate.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "util/common.h"

namespace portal {

/// Cholesky factorization A = L * L^T of a symmetric positive-definite
/// matrix. Returns the lower-triangular L (entries above the diagonal zero).
/// Throws std::domain_error if A is not positive definite (within jitter):
/// callers that build covariance matrices add diagonal jitter first.
std::vector<real_t> cholesky(const std::vector<real_t>& a, index_t m);

/// Solve L * x = b by forward substitution (L lower triangular).
void forward_substitute(const std::vector<real_t>& l, index_t m, const real_t* b,
                        real_t* x);

/// Solve L^T * x = b by backward substitution.
void backward_substitute(const std::vector<real_t>& l, index_t m, const real_t* b,
                         real_t* x);

/// Explicit inverse of an SPD matrix via Cholesky (the *naive* Mahalanobis
/// path: O(m^3); used as the correctness oracle for the optimized path).
std::vector<real_t> spd_inverse(const std::vector<real_t>& a, index_t m);

/// log(det(A)) of an SPD matrix from its Cholesky factor: 2 * sum log L_ii.
real_t log_det_from_cholesky(const std::vector<real_t>& l, index_t m);

/// Naive quadratic form (x-mu)^T Sigma^{-1} (x-mu) with the explicit inverse.
real_t mahalanobis_sq_naive(const real_t* x, const real_t* mu,
                            const std::vector<real_t>& sigma_inv, index_t m);

/// Optimized quadratic form ||L^{-1}(x-mu)||^2 via forward substitution:
/// the paper's m^3 -> m^2/2 rewrite. `scratch` must hold 2*m reals.
real_t mahalanobis_sq_cholesky(const real_t* x, const real_t* mu,
                               const std::vector<real_t>& l, index_t m,
                               real_t* scratch);

/// Sample mean of a dataset (length dim).
std::vector<real_t> column_mean(const Dataset& data);

/// Sample covariance (row-major dim x dim) with `jitter` added on the
/// diagonal to guarantee positive definiteness.
std::vector<real_t> covariance(const Dataset& data, const std::vector<real_t>& mean,
                               real_t jitter = 1e-6);

} // namespace portal
