#include "kernels/linalg.h"

#include <cmath>
#include <stdexcept>

namespace portal {

std::vector<real_t> cholesky(const std::vector<real_t>& a, index_t m) {
  std::vector<real_t> l(static_cast<std::size_t>(m) * m, 0);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      real_t sum = a[i * m + j];
      for (index_t k = 0; k < j; ++k) sum -= l[i * m + k] * l[j * m + k];
      if (i == j) {
        if (sum <= 0)
          throw std::domain_error("cholesky: matrix not positive definite");
        l[i * m + i] = std::sqrt(sum);
      } else {
        l[i * m + j] = sum / l[j * m + j];
      }
    }
  }
  return l;
}

void forward_substitute(const std::vector<real_t>& l, index_t m, const real_t* b,
                        real_t* x) {
  for (index_t i = 0; i < m; ++i) {
    real_t sum = b[i];
    for (index_t k = 0; k < i; ++k) sum -= l[i * m + k] * x[k];
    x[i] = sum / l[i * m + i];
  }
}

void backward_substitute(const std::vector<real_t>& l, index_t m, const real_t* b,
                         real_t* x) {
  for (index_t i = m - 1; i >= 0; --i) {
    real_t sum = b[i];
    // L^T's row i is L's column i.
    for (index_t k = i + 1; k < m; ++k) sum -= l[k * m + i] * x[k];
    x[i] = sum / l[i * m + i];
  }
}

std::vector<real_t> spd_inverse(const std::vector<real_t>& a, index_t m) {
  const std::vector<real_t> l = cholesky(a, m);
  std::vector<real_t> inv(static_cast<std::size_t>(m) * m, 0);
  std::vector<real_t> e(m, 0), y(m, 0), x(m, 0);
  for (index_t col = 0; col < m; ++col) {
    e.assign(m, 0);
    e[col] = 1;
    forward_substitute(l, m, e.data(), y.data());
    backward_substitute(l, m, y.data(), x.data());
    for (index_t row = 0; row < m; ++row) inv[row * m + col] = x[row];
  }
  return inv;
}

real_t log_det_from_cholesky(const std::vector<real_t>& l, index_t m) {
  real_t sum = 0;
  for (index_t i = 0; i < m; ++i) sum += std::log(l[i * m + i]);
  return 2 * sum;
}

real_t mahalanobis_sq_naive(const real_t* x, const real_t* mu,
                            const std::vector<real_t>& sigma_inv, index_t m) {
  real_t total = 0;
  for (index_t i = 0; i < m; ++i) {
    real_t row = 0;
    for (index_t j = 0; j < m; ++j)
      row += sigma_inv[i * m + j] * (x[j] - mu[j]);
    total += (x[i] - mu[i]) * row;
  }
  return total;
}

real_t mahalanobis_sq_cholesky(const real_t* x, const real_t* mu,
                               const std::vector<real_t>& l, index_t m,
                               real_t* scratch) {
  real_t* diff = scratch;
  real_t* solved = scratch + m;
  for (index_t i = 0; i < m; ++i) diff[i] = x[i] - mu[i];
  forward_substitute(l, m, diff, solved);
  real_t total = 0;
  for (index_t i = 0; i < m; ++i) total += solved[i] * solved[i];
  return total;
}

std::vector<real_t> column_mean(const Dataset& data) {
  const index_t n = data.size();
  const index_t m = data.dim();
  std::vector<real_t> mean(m, 0);
  for (index_t i = 0; i < n; ++i)
    for (index_t d = 0; d < m; ++d) mean[d] += data.coord(i, d);
  if (n > 0)
    for (index_t d = 0; d < m; ++d) mean[d] /= static_cast<real_t>(n);
  return mean;
}

std::vector<real_t> covariance(const Dataset& data, const std::vector<real_t>& mean,
                               real_t jitter) {
  const index_t n = data.size();
  const index_t m = data.dim();
  std::vector<real_t> cov(static_cast<std::size_t>(m) * m, 0);
  std::vector<real_t> diff(m);
  for (index_t i = 0; i < n; ++i) {
    for (index_t d = 0; d < m; ++d) diff[d] = data.coord(i, d) - mean[d];
    for (index_t r = 0; r < m; ++r)
      for (index_t c = 0; c <= r; ++c) cov[r * m + c] += diff[r] * diff[c];
  }
  const real_t denom = n > 1 ? static_cast<real_t>(n - 1) : real_t(1);
  for (index_t r = 0; r < m; ++r)
    for (index_t c = 0; c <= r; ++c) {
      cov[r * m + c] /= denom;
      cov[c * m + r] = cov[r * m + c];
    }
  for (index_t d = 0; d < m; ++d) cov[d * m + d] += jitter;
  return cov;
}

} // namespace portal
