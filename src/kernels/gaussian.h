// Portal -- Gaussian kernels for KDE, EM, and the naive Bayes classifier.
#pragma once

#include <cmath>

#include "kernels/metrics.h"
#include "util/common.h"

namespace portal {

inline constexpr real_t kTwoPi = real_t(6.283185307179586476925286766559);

/// Isotropic Gaussian KDE kernel evaluated on a *squared* distance:
/// K_sigma(d^2) = exp(-d^2 / (2 sigma^2)). Monotone decreasing in distance,
/// which is the property the approximation generator relies on (Sec. II).
class GaussianKernel {
 public:
  explicit GaussianKernel(real_t sigma) : inv_two_sigma_sq_(1 / (2 * sigma * sigma)), sigma_(sigma) {}

  real_t sigma() const { return sigma_; }

  /// Precomputed 1 / (2 sigma^2) for the batched lane kernels
  /// (kernels/batch.h evaluates exp(-sq * inv_two_sigma_sq) per lane).
  real_t inv_two_sigma_sq() const { return inv_two_sigma_sq_; }

  real_t eval_sq(real_t sq_dist) const {
    return std::exp(-sq_dist * inv_two_sigma_sq_);
  }

  /// Normalization constant for a d-dimensional density estimate:
  /// (2 pi sigma^2)^{-d/2} / N, applied once after accumulation.
  real_t normalization(index_t dim, index_t n) const {
    return std::pow(kTwoPi * sigma_ * sigma_, -real_t(dim) / 2) /
           static_cast<real_t>(n);
  }

 private:
  real_t inv_two_sigma_sq_;
  real_t sigma_;
};

/// Multivariate normal log-density log N(x | mu, Sigma) using the
/// Cholesky-optimized Mahalanobis path. `scratch` needs 2*dim reals.
inline real_t log_gaussian_pdf(const real_t* x, const real_t* mu,
                               const MahalanobisContext& ctx, real_t* scratch) {
  const real_t maha = mahalanobis_sq_cholesky(x, mu, ctx.chol(), ctx.dim(), scratch);
  return real_t(-0.5) *
         (static_cast<real_t>(ctx.dim()) * std::log(kTwoPi) + ctx.log_det() + maha);
}

/// Same density through the explicit-inverse path (ablation / oracle).
inline real_t log_gaussian_pdf_naive(const real_t* x, const real_t* mu,
                                     const MahalanobisContext& ctx) {
  const real_t maha = mahalanobis_sq_naive(x, mu, ctx.inverse(), ctx.dim());
  return real_t(-0.5) *
         (static_cast<real_t>(ctx.dim()) * std::log(kTwoPi) + ctx.log_det() + maha);
}

} // namespace portal
