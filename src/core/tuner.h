// Portal -- automatic leaf-size tuning.
//
// The paper tunes the algorithmic leaf-size parameter q empirically per
// problem/dataset (Sec. V-B). Portal makes that a feature: setting
// PortalConfig::leaf_size = 0 runs the program on a subsample across a
// candidate ladder and picks the fastest, amortizing the probe cost against
// the full-size run.
#pragma once

#include <vector>

#include "core/plan.h"

namespace portal {

struct TuneReport {
  index_t best_leaf_size = kDefaultLeafSize;
  /// (candidate, probe seconds) pairs, in probe order.
  std::vector<std::pair<index_t, double>> probes;
};

/// Probe the layer stack on a subsample (at most `sample_size` points per
/// layer) across `candidates` and return the fastest leaf size. The probe
/// forces the same engine/tau the real run will use but never validates.
TuneReport tune_leaf_size(const std::vector<LayerSpec>& layers,
                          const PortalConfig& config,
                          const std::vector<index_t>& candidates = {8, 16, 32,
                                                                    64, 128},
                          index_t sample_size = 3000);

} // namespace portal
