// Portal -- PortalExpr: the main user-facing object holding an N-body
// problem definition (paper Sec. III, codes 1 and 3).
//
//   Storage query("query.csv");
//   Storage reference("reference.csv");
//   PortalExpr expr;
//   expr.addLayer(PortalOp::FORALL, query);
//   expr.addLayer({PortalOp::KARGMIN, k}, reference, PortalFunc::EUCLIDEAN);
//   expr.execute();
//   Storage output = expr.getOutput();
//
// execute() runs the full compiler pipeline: semantic analysis and kernel
// normalization, classification via the prune/approximate generator,
// lowering + storage injection, the optimization passes (flattening,
// numerical optimization, strength reduction, constant folding), backend
// selection (pattern / JIT / VM), tree construction, and the parallel
// multi-tree traversal.
#pragma once

#include <memory>
#include <vector>

#include "core/executor.h"
#include "core/plan.h"

namespace portal {

/// Opaque holder so portal_expr.h does not drag the JIT headers in.
struct JitModuleHolder;

class PortalExpr {
 public:
  PortalExpr();
  ~PortalExpr(); // out-of-line: jit_ is an incomplete type here

  // -- layer construction (paper code 1 style) -------------------------------
  PortalExpr& addLayer(OpSpec op, const Storage& data);
  PortalExpr& addLayer(OpSpec op, const Storage& data, const PortalFunc& func);
  // -- custom-kernel style (paper code 3) -------------------------------------
  PortalExpr& addLayer(OpSpec op, const Var& var, const Storage& data);
  PortalExpr& addLayer(OpSpec op, const Var& var, const Storage& data,
                       const Expr& kernel);
  // -- external C++ kernel (Sec. III-C escape hatch) --------------------------
  PortalExpr& addLayer(OpSpec op, const Storage& data, ExternalKernelFn kernel,
                       std::string label = "external");
  /// Append a pre-built LayerSpec (compiler plumbing: the leaf-size tuner
  /// replays layers with substituted storages through this).
  PortalExpr& addLayerSpec(LayerSpec layer);

  /// Execution configuration; may be changed between execute() calls
  /// (iterative programs update exclude_same_label this way).
  void setConfig(const PortalConfig& config) { config_ = config; }
  const PortalConfig& config() const { return config_; }
  PortalConfig& mutableConfig() { return config_; }

  /// Compile (first call) and run. Throws std::invalid_argument on malformed
  /// programs and std::runtime_error on validation mismatches.
  void execute();
  void execute(const PortalConfig& config);

  /// Compile without executing: analysis, lowering, and the verified pass
  /// pipeline. The `portal_cli verify` mode and IR tooling use this to get
  /// artifacts()/plan() (including the verify_report) cheaply. Always
  /// recompiles, so it reflects the current config even after an execute().
  void compile() {
    compiled_ = false;
    compile_if_needed();
  }

  /// Run the compiler's brute-force program instead of the tree algorithm
  /// (Sec. IV: emitted alongside for correctness checks; also the honest
  /// O(N^2) baseline for the asymptotic benches).
  Storage executeBruteForce();

  /// The most recent output (paper: `Storage output = expr.getOutput()`).
  Storage getOutput() const;

  // -- introspection -----------------------------------------------------------
  const ProblemPlan& plan() const;
  const CompileArtifacts& artifacts() const { return artifacts_; }
  TraversalStats stats() const { return stats_; }

  /// Drop cached trees and compiled state (e.g. after mutating datasets).
  void invalidate();

  /// Tree caches are keyed by dataset identity, so iterative programs that
  /// build a fresh PortalExpr per step (e.g. EM with per-iteration kernels)
  /// can share one cache and reuse the trees across expressions.
  std::shared_ptr<TreeCache> treeCache() const { return trees_; }
  void setTreeCache(std::shared_ptr<TreeCache> cache) {
    if (cache) trees_ = std::move(cache);
  }

 private:
  void compile_if_needed();

  std::vector<LayerSpec> layers_;
  PortalConfig config_;
  std::shared_ptr<TreeCache> trees_;
  bool compiled_ = false;
  ProblemPlan plan_;
  CompileArtifacts artifacts_;
  std::unique_ptr<JitModuleHolder> jit_; // opaque (keeps dlopen alive)
  Storage output_;
  TraversalStats stats_;
};

} // namespace portal
