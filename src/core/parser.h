// Portal -- textual program parser (paper Appendix VIII).
//
// The paper specifies a grammar for Portal programs; this parser implements
// it as a standalone script format so programs can be written, stored, and
// run without recompiling the host application (portal_cli's `run` command).
//
//   # k-nearest neighbors (code 1 in the paper, script form)
//   Storage query = "query_file.csv";
//   Storage reference = "reference_file.csv";
//   Var q;
//   Var r;
//   Expr dist = sqrt(pow(q - r, 2));
//   PortalExpr expr;
//   expr.addLayer(FORALL, q, query);
//   expr.addLayer(KARGMIN(5), r, reference, dist);
//   expr.execute();
//
// Grammar (adapted from the paper's code 4; `#` starts a comment):
//   program    := statement+
//   statement  := storage | var | exprdef | portalexpr | addlayer
//               | setconfig | execute
//   storage    := "Storage" name "=" (string | "demo(" int ["," int] ")") ";"
//   var        := "Var" name ";"
//   exprdef    := "Expr" name "=" expression ";"
//   portalexpr := "PortalExpr" name ";"
//   addlayer   := name ".addLayer(" op ["," name] "," name ["," kernel] ");"
//   op         := "FORALL" | "SUM" | "PROD" | "MIN" | "MAX" | "ARGMIN"
//               | "ARGMAX" | "UNION" | "UNIONARG"
//               | ("KMIN"|"KMAX"|"KARGMIN"|"KARGMAX") "(" int ")"
//   kernel     := predefined | expression
//   predefined := "EUCLIDEAN" | "SQREUCDIST" | "MANHATTAN" | "CHEBYSHEV"
//               | "MAHALANOBIS" | "GAUSSIAN(" num ")"
//               | "INDICATOR(" num "," num ")" | "GRAVITY(" num "," num ")"
//   setconfig  := "set" ("tau"|"theta"|"leaf_size"|"engine"|"parallel")
//                 "=" value ";"
//   execute    := name ".execute()" ";"
//   expression := cmp; cmp := add (("<"|">") add)?; add := mul (("+"|"-") mul)*;
//   mul        := unary (("*"|"/") unary)*; unary := "-" unary | primary
//   primary    := number | name | call | "(" expression ")"
//   call       := ("sqrt"|"exp"|"log"|"abs"|"dimsum"|"dimmax") "(" expression ")"
//               | "pow(" expression "," number ")"
//               | ("min"|"max") "(" expression "," expression ")"
//               | "mahalanobis(" name "," name ")"
#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/portal_expr.h"

namespace portal {

/// Everything a parsed program defines. The PortalExpr is live: run() has
/// been called iff the script contained an execute() statement.
struct ParsedProgram {
  std::map<std::string, Storage> storages;
  std::map<std::string, Var> vars;
  std::map<std::string, Expr> exprs;
  std::shared_ptr<PortalExpr> expr; // the (single) PortalExpr of the script
  PortalConfig config;
  bool executed = false;
};

/// Parse and run a Portal script. Throws PortalDiagnosticError (a
/// std::invalid_argument) with line/column context: PTL-P001 for syntax
/// errors, PTL-P002 for semantic ones. `base_dir` resolves relative CSV
/// paths; `base_config` seeds the config that `set` statements override
/// (portal_cli uses it to pre-set verify/dump flags).
ParsedProgram run_portal_script(const std::string& source,
                                const std::string& base_dir = ".",
                                const PortalConfig& base_config = {});

/// Convenience: read the script from a file.
ParsedProgram run_portal_script_file(const std::string& path,
                                     const PortalConfig& base_config = {});

} // namespace portal
