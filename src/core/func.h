// Portal -- PortalFunc: the pre-defined kernel / distance-metric vocabulary
// (paper Sec. III-C, code 2). Each pre-defined function expands to the same
// Expr AST a user could write by hand, so one compiler pipeline serves both.
#pragma once

#include <vector>

#include "core/var_expr.h"
#include "util/common.h"

namespace portal {

class PortalFunc {
 public:
  enum class Kind {
    None,        // layer without a kernel/modifying function
    Euclidean,
    SqEuclidean, // the paper's SQREUCDIST
    Manhattan,
    Chebyshev,
    Mahalanobis, // covariance derived from the reference dataset when empty
    Gaussian,    // exp(-d^2 / (2 sigma^2)) on Euclidean distance
    GaussianMaha, // exp(-maha^2 / 2): the Fig. 3 KDE kernel
    Gravity,     // Barnes-Hut force kernel (vector-valued; pattern engine)
    Indicator,   // I(lo < d < hi) on Euclidean distance (range search, 2-PC)
    Custom,      // wraps a user Expr
  };

  // The paper's enum-style spellings.
  static const PortalFunc NONE;
  static const PortalFunc EUCLIDEAN;
  static const PortalFunc SQREUCDIST;
  static const PortalFunc MANHATTAN;
  static const PortalFunc CHEBYSHEV;
  static const PortalFunc MAHALANOBIS;

  /// Parameterized factories.
  static PortalFunc gaussian(real_t sigma);
  static PortalFunc gaussian_maha(std::vector<real_t> cov = {});
  static PortalFunc mahalanobis_with(std::vector<real_t> cov);
  static PortalFunc gravity(real_t G = 1, real_t softening = 1e-3);
  static PortalFunc indicator(real_t lo, real_t hi);
  static PortalFunc custom(Expr kernel);

  Kind kind() const { return kind_; }
  real_t sigma() const { return sigma_; }
  real_t gravity_g() const { return g_; }
  real_t softening() const { return softening_; }
  real_t lo() const { return lo_; }
  real_t hi() const { return hi_; }
  const std::vector<real_t>& covariance() const { return cov_; }
  const Expr& custom_expr() const { return custom_; }

  /// Expand into the Expr AST over the two layer variables. Throws for
  /// Gravity (vector-valued, handled by the pattern engine directly) and
  /// None.
  Expr expand(const Var& q, const Var& r) const;

  const char* name() const;

 private:
  explicit PortalFunc(Kind kind) : kind_(kind) {}

  Kind kind_ = Kind::None;
  real_t sigma_ = 1;
  real_t g_ = 1;
  real_t softening_ = 1e-3;
  real_t lo_ = 0;
  real_t hi_ = 1;
  std::vector<real_t> cov_;
  Expr custom_;
};

} // namespace portal
