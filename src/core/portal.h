// Portal -- umbrella header: everything a user of the DSL needs.
//
//   #include "core/portal.h"
//
//   portal::Storage query("query.csv");
//   portal::Storage reference("reference.csv");
//   portal::PortalExpr expr;
//   expr.addLayer(portal::PortalOp::FORALL, query);
//   expr.addLayer({portal::PortalOp::KARGMIN, 5}, reference,
//                 portal::PortalFunc::EUCLIDEAN);
//   expr.execute();
//   portal::Storage output = expr.getOutput();
#pragma once

#include "core/func.h"        // PortalFunc: pre-defined kernels & metrics
#include "core/ops.h"         // PortalOp / OpSpec: the operator vocabulary
#include "core/plan.h"        // PortalConfig / Engine / introspection types
#include "core/portal_expr.h" // PortalExpr: the problem object
#include "core/storage.h"     // Storage: datasets and outputs
#include "core/var_expr.h"    // Var / Expr: custom kernel expressions
