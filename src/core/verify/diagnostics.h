// Portal -- diagnostics framework: every static-analysis finding (verifier,
// semantic analysis, parser) is a Diagnostic with a severity, a stable error
// code (PTL-Exxx / PTL-Wxxx / PTL-Pxxx, see docs/DIAGNOSTICS.md), an IR path
// or source location, and a user-actionable message. A DiagnosticEngine
// collects findings so one verification sweep can report every problem at
// once instead of throwing on the first.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace portal {

enum class Severity { Error, Warning, Note };

inline const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Error: return "error";
    case Severity::Warning: return "warning";
    case Severity::Note: return "note";
  }
  return "?";
}

/// One finding. `path` locates it: an IR path for verifier findings
/// ("base_case/loop[2]/assign(t)/mul/[0]"), a line:col for parser findings,
/// or a layer index for semantic-analysis findings.
struct Diagnostic {
  Severity severity = Severity::Error;
  std::string code;    // stable, e.g. "PTL-E012"
  std::string path;
  std::string message;
};

/// "error [PTL-E012] at base_case/...: message"
std::string diagnostic_to_string(const Diagnostic& d);

/// Collector for one analysis sweep. Cheap to construct; findings keep
/// insertion order (the walk order of the IR).
class DiagnosticEngine {
 public:
  void add(Severity severity, std::string code, std::string path,
           std::string message);
  void error(std::string code, std::string path, std::string message) {
    add(Severity::Error, std::move(code), std::move(path), std::move(message));
  }
  void warning(std::string code, std::string path, std::string message) {
    add(Severity::Warning, std::move(code), std::move(path), std::move(message));
  }
  void note(std::string code, std::string path, std::string message) {
    add(Severity::Note, std::move(code), std::move(path), std::move(message));
  }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  std::size_t error_count() const { return errors_; }
  std::size_t warning_count() const { return warnings_; }
  bool ok() const { return errors_ == 0; }
  bool empty() const { return diagnostics_.empty(); }

  /// True if any finding carries the given code (unit-test hook).
  bool has_code(const std::string& code) const;

  /// All findings, one per line.
  std::string report() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
};

/// Thrown by the front end and the IR verifier on hard errors. Derives from
/// std::invalid_argument so pre-diagnostics catch sites keep working; carries
/// the structured findings for callers (portal_cli --verify) that want them.
class PortalDiagnosticError : public std::invalid_argument {
 public:
  explicit PortalDiagnosticError(Diagnostic diagnostic);
  PortalDiagnosticError(std::string what, std::vector<Diagnostic> diagnostics);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

 private:
  std::vector<Diagnostic> diagnostics_;
};

} // namespace portal
