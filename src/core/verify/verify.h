// Portal -- the IR verifier: machine-checkable well-formedness rules for the
// Portal IR, in the spirit of LLVM's -verify-each and PENCIL's platform-
// neutral IR contracts. Three layers of checking (docs/DIAGNOSTICS.md has
// the full error-code table):
//
//   1. structural (PTL-E00x): per-op arity and payload rules -- Const is a
//      leaf, Pow carries a finite exponent in `value`, Mahalanobis matrices
//      are dim x dim, flattened loads have a stride consistent with the
//      dataset Layout.
//   2. context/scope (PTL-E01x): node-pair atoms (DMin/DMax/CenterDist/
//      RCount/Tau/QueryBound) are legal only in prune_approx/compute_approx;
//      point loads only inside a DimSum/DimMax body of base_case; dimension
//      reductions never nest; Dist never appears in node-pair scope.
//   3. statement dataflow (PTL-E02x): named temps are defined before use,
//      Accum/ReduceCmp targets are backed by an Alloc, and dead stores are
//      reported as warnings (cross-validating dce_pass, which must leave
//      none behind).
//
// PassManager::run verifies after every pass when PortalConfig::verify_ir is
// set (the default); backends call verify_executable_expr as their
// verified-IR precondition instead of re-checking shapes locally.
#pragma once

#include "core/ir/ir.h"
#include "core/verify/diagnostics.h"
#include "data/dataset.h"

namespace portal {

/// Where an expression sits; governs which atoms are legal (rule layer 2).
enum class IrContext {
  BaseCase,      // per point pair: loads (inside dim reductions), Dist, temps
  PruneApprox,   // per node pair: DMin/DMax/CenterDist/RCount/Tau/QueryBound
  ComputeApprox, // per node pair, same atom scope as PruneApprox
  Envelope,      // function of the metric distance: Dist only, no points
  Executable,    // backend precondition: structural rules + no Temp plumbing
};

const char* ir_context_name(IrContext context);

/// What the verifier knows about the surrounding program. Zero/default
/// fields disable the corresponding check (a standalone kernel expression
/// has no dataset to check strides against).
struct IrVerifyContext {
  index_t dim = 0; // point dimensionality; 0 = unknown, skip matrix-dim rule
  Layout query_layout = Layout::RowMajor;
  index_t query_size = 0;
  Layout ref_layout = Layout::RowMajor;
  index_t ref_size = 0;
  bool after_flattening = false; // loads must carry flattening metadata
  bool check_strides = false;    // layouts/sizes above are authoritative
};

/// Verify one expression tree. `root_path` prefixes diagnostic paths.
void verify_expr(const IrExprPtr& expr, IrContext context,
                 const IrVerifyContext& vc, DiagnosticEngine* diags,
                 const std::string& root_path = "expr");

/// Verify one statement tree (structure + expressions + dataflow).
void verify_stmt(const IrStmtPtr& stmt, IrContext context,
                 const IrVerifyContext& vc, DiagnosticEngine* diags,
                 const std::string& root_path);

/// Verify the three traversal functions of a lowered program.
DiagnosticEngine verify_program(const IrProgram& program,
                                const IrVerifyContext& vc);

/// Throw PortalDiagnosticError when the program has errors. `stage` names
/// the pipeline point for the message ("after strength-reduction").
void verify_program_or_throw(const IrProgram& program, const IrVerifyContext& vc,
                             const std::string& stage);

/// Backend precondition: structural soundness of an expression about to be
/// compiled/emitted (VM bytecode, JIT C++). Throws PortalDiagnosticError on
/// malformed trees; `backend` names the caller for the message.
void verify_executable_expr(const IrExprPtr& expr, const char* backend);

} // namespace portal
