#include "core/verify/diagnostics.h"

namespace portal {

std::string diagnostic_to_string(const Diagnostic& d) {
  std::string out = severity_name(d.severity);
  out += " [" + d.code + "]";
  if (!d.path.empty()) out += " at " + d.path;
  out += ": " + d.message;
  return out;
}

void DiagnosticEngine::add(Severity severity, std::string code,
                           std::string path, std::string message) {
  if (severity == Severity::Error) ++errors_;
  if (severity == Severity::Warning) ++warnings_;
  diagnostics_.emplace_back(Diagnostic{severity, std::move(code), std::move(path),
                                    std::move(message)});
}

bool DiagnosticEngine::has_code(const std::string& code) const {
  for (const Diagnostic& d : diagnostics_)
    if (d.code == code) return true;
  return false;
}

std::string DiagnosticEngine::report() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += diagnostic_to_string(d);
    out += '\n';
  }
  return out;
}

namespace {

std::string summarize(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics)
    if (d.severity == Severity::Error) {
      std::string out = "Portal: " + diagnostic_to_string(d);
      std::size_t errors = 0;
      for (const Diagnostic& e : diagnostics)
        if (e.severity == Severity::Error) ++errors;
      if (errors > 1)
        out += " (+" + std::to_string(errors - 1) + " more errors)";
      return out;
    }
  return "Portal: diagnostic error with no error findings";
}

} // namespace

PortalDiagnosticError::PortalDiagnosticError(Diagnostic diagnostic)
    : std::invalid_argument("Portal: " + diagnostic_to_string(diagnostic)),
      diagnostics_{std::move(diagnostic)} {}

PortalDiagnosticError::PortalDiagnosticError(std::string what,
                                             std::vector<Diagnostic> diagnostics)
    : std::invalid_argument(what.empty() ? summarize(diagnostics)
                                         : std::move(what)),
      diagnostics_(std::move(diagnostics)) {}

} // namespace portal
