#include "core/verify/verify.h"

#include <cmath>
#include <set>
#include <string>

namespace portal {

const char* ir_context_name(IrContext context) {
  switch (context) {
    case IrContext::BaseCase: return "base_case";
    case IrContext::PruneApprox: return "prune_approx";
    case IrContext::ComputeApprox: return "compute_approx";
    case IrContext::Envelope: return "envelope";
    case IrContext::Executable: return "executable";
  }
  return "?";
}

namespace {

bool is_node_pair_atom(IrOp op) {
  switch (op) {
    case IrOp::DMin:
    case IrOp::DMax:
    case IrOp::CenterDist:
    case IrOp::RCount:
    case IrOp::Tau:
    case IrOp::QueryBound:
      return true;
    default:
      return false;
  }
}

bool is_load(IrOp op) {
  return op == IrOp::LoadQCoord || op == IrOp::LoadRCoord;
}

/// Rule layer 1: per-op structure and payloads (PTL-E00x).
void check_structure(const IrExpr& e, const IrVerifyContext& vc,
                     DiagnosticEngine* diags, const std::string& path) {
  const int arity = ir_op_arity(e.op);
  if (static_cast<int>(e.children.size()) != arity)
    diags->error("PTL-E002", path,
                 std::string(ir_op_name(e.op)) + " takes " +
                     std::to_string(arity) + " operand(s) but has " +
                     std::to_string(e.children.size()) +
                     "; rebuild the node with the ir_* constructors");

  switch (e.op) {
    case IrOp::Const:
      if (std::isnan(e.value))
        diags->error("PTL-E003", path,
                     "constant is NaN; a pass folded an undefined operation "
                     "(0/0, log of a negative, ...)");
      break;
    case IrOp::Pow:
      if (!std::isfinite(e.value))
        diags->error("PTL-E004", path,
                     "pow exponent payload (IrExpr::value) is not finite");
      break;
    case IrOp::MahalanobisNaive:
    case IrOp::MahalanobisChol: {
      const auto size = e.matrix.size();
      const index_t m = static_cast<index_t>(
          std::llround(std::sqrt(static_cast<double>(size))));
      if (size == 0 || static_cast<std::size_t>(m) * m != size) {
        diags->error("PTL-E005", path,
                     std::string(ir_op_name(e.op)) + " matrix has " +
                         std::to_string(size) +
                         " entries, which is not a square m*m layout");
      } else if (vc.dim > 0 && m != vc.dim) {
        diags->error("PTL-E005", path,
                     std::string(ir_op_name(e.op)) + " matrix is " +
                         std::to_string(m) + "x" + std::to_string(m) +
                         " but the dataset dimensionality is " +
                         std::to_string(vc.dim));
      }
      break;
    }
    case IrOp::ExternalCall:
      if (e.external == nullptr)
        diags->error("PTL-E006", path,
                     "external_call carries no callback; the kernel cannot "
                     "be evaluated");
      break;
    case IrOp::Temp:
      if (e.label.empty())
        diags->error("PTL-E008", path, "temp node has an empty label");
      break;
    default:
      break;
  }

  if (is_load(e.op)) {
    const bool query = e.op == IrOp::LoadQCoord;
    if (e.flattened) {
      if (e.stride < 1)
        diags->error("PTL-E007", path,
                     "flattened load has stride " + std::to_string(e.stride) +
                         "; strides are >= 1");
      else if (vc.check_strides) {
        const Layout layout = query ? vc.query_layout : vc.ref_layout;
        const index_t expected =
            layout == Layout::RowMajor ? 1 : (query ? vc.query_size : vc.ref_size);
        if (e.stride != expected)
          diags->error("PTL-E007", path,
                       std::string(query ? "query" : "reference") +
                           " load stride " + std::to_string(e.stride) +
                           " does not match the dataset layout (" +
                           (layout == Layout::RowMajor ? "row-major expects 1"
                                                       : "column-major expects N = " +
                                                             std::to_string(expected)) +
                           ")");
      }
    } else if (vc.after_flattening) {
      diags->error("PTL-E007", path,
                   "load survived the flattening pass without flattening "
                   "metadata; flatten_pass must visit every load");
    }
  }
}

/// Rule layer 2: atom scope (PTL-E01x).
void check_scope(const IrExpr& e, IrContext context, bool in_dim_reduction,
                 DiagnosticEngine* diags, const std::string& path) {
  if (is_node_pair_atom(e.op)) {
    if (context == IrContext::BaseCase || context == IrContext::Envelope)
      diags->error("PTL-E010", path,
                   std::string(ir_op_name(e.op)) +
                       " is a node-pair atom; it is only meaningful in "
                       "prune_approx/compute_approx, not in " +
                       ir_context_name(context));
    return;
  }
  if (is_load(e.op)) {
    if (context == IrContext::PruneApprox || context == IrContext::ComputeApprox ||
        context == IrContext::Envelope) {
      diags->error("PTL-E011", path,
                   "point loads are per-pair kernel atoms; " +
                       std::string(ir_context_name(context)) +
                       " works on node bounds (use DMin/DMax/Dist instead)");
    } else if (context == IrContext::BaseCase && !in_dim_reduction) {
      diags->error("PTL-E012", path,
                   "point load outside a dim_sum/dim_max body: there is no "
                   "active dimension index to load");
    }
    return;
  }
  if (e.op == IrOp::Dist &&
      (context == IrContext::PruneApprox || context == IrContext::ComputeApprox)) {
    diags->error("PTL-E014", path,
                 "the exact pair distance does not exist for a node pair; "
                 "prune/approx conditions use DMin/DMax/CenterDist bounds");
    return;
  }
  if ((e.op == IrOp::DimSum || e.op == IrOp::DimMax) && in_dim_reduction)
    diags->error("PTL-E013", path,
                 "nested dimension reductions: the language has a single "
                 "per-pair dimension loop (Sec. IV-A)");
  if (e.op == IrOp::Temp &&
      (context == IrContext::Executable || context == IrContext::Envelope))
    diags->error("PTL-E009", path,
                 "temp nodes are statement-IR plumbing and cannot be "
                 "compiled; resolve the named value before emission");
}

void verify_expr_rec(const IrExprPtr& expr, IrContext context,
                     const IrVerifyContext& vc, DiagnosticEngine* diags,
                     const std::string& parent_path, bool in_dim_reduction,
                     int depth) {
  if (!expr) {
    diags->error("PTL-E001", parent_path, "null IR node (missing operand)");
    return;
  }
  if (depth > 512) {
    diags->error("PTL-E001", parent_path,
                 "expression nesting exceeds 512 levels; the tree is likely "
                 "cyclic or corrupted");
    return;
  }
  const std::string path = parent_path + "/" + ir_op_name(expr->op);
  check_structure(*expr, vc, diags, path);
  check_scope(*expr, context, in_dim_reduction, diags, path);

  const bool enters_dim =
      expr->op == IrOp::DimSum || expr->op == IrOp::DimMax;
  for (std::size_t i = 0; i < expr->children.size(); ++i) {
    const std::string child_path =
        expr->children.size() > 1 ? path + "[" + std::to_string(i) + "]" : path;
    verify_expr_rec(expr->children[i], context, vc, diags, child_path,
                    in_dim_reduction || enters_dim, depth + 1);
  }
}

// ---------------------------------------------------------------------------
// Rule layer 3: statement structure + dataflow (PTL-E02x).

/// "storage1[reference.size] (sorted)" -> "storage1"; "t" -> "t".
std::string target_base_name(const std::string& text) {
  std::size_t end = 0;
  while (end < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[end])) || text[end] == '_'))
    ++end;
  return text.substr(0, end);
}

bool is_storage_name(const std::string& name) {
  return name.rfind("storage", 0) == 0;
}

void collect_temp_reads(const IrExprPtr& expr, std::set<std::string>* out) {
  if (!expr) return;
  if (expr->op == IrOp::Temp) out->insert(expr->label);
  for (const IrExprPtr& child : expr->children) collect_temp_reads(child, out);
}

struct Dataflow {
  std::set<std::string> defined; // alloc names + assigned targets, in order
  std::set<std::string> allocs;
  // (temp name, path) of assignments to non-storage temps -- dead-store scan.
  std::vector<std::pair<std::string, std::string>> temp_assigns;
  std::set<std::string> all_reads; // every temp read anywhere in the function
};

void collect_all_reads(const IrStmtPtr& stmt, std::set<std::string>* out) {
  if (!stmt) return;
  collect_temp_reads(stmt->expr, out);
  // Accumulations/reductions read (and update) their own target -- mirror
  // dce_pass exactly so the dead-store warning cross-validates it.
  if (stmt->kind == IrStmtKind::Accum || stmt->kind == IrStmtKind::ReduceCmp)
    out->insert(target_base_name(stmt->target));
  for (const IrStmtPtr& child : stmt->body) collect_all_reads(child, out);
}

void check_reads_defined(const IrStmtPtr& stmt, const Dataflow& flow,
                         DiagnosticEngine* diags, const std::string& path) {
  std::set<std::string> reads;
  collect_temp_reads(stmt->expr, &reads);
  for (const std::string& name : reads)
    if (flow.defined.count(name) == 0)
      diags->error("PTL-E021", path,
                   "temp '" + name +
                       "' is read before any Alloc or assignment defines it");
}

void verify_stmt_rec(const IrStmtPtr& stmt, IrContext context,
                     const IrVerifyContext& vc, DiagnosticEngine* diags,
                     const std::string& parent_path, Dataflow* flow,
                     std::size_t index) {
  if (!stmt) {
    diags->error("PTL-E001", parent_path, "null statement");
    return;
  }
  const auto child_walk = [&](const std::string& path) {
    for (std::size_t i = 0; i < stmt->body.size(); ++i)
      verify_stmt_rec(stmt->body[i], context, vc, diags, path, flow, i);
  };

  switch (stmt->kind) {
    case IrStmtKind::Block:
      child_walk(parent_path);
      return;
    case IrStmtKind::Comment:
      return;
    case IrStmtKind::Alloc: {
      const std::string path = parent_path + "/alloc[" + std::to_string(index) + "]";
      const std::string name = target_base_name(stmt->text);
      if (name.empty()) {
        diags->error("PTL-E020", path,
                     "alloc descriptor '" + stmt->text +
                         "' does not start with a storage/temp name");
        return;
      }
      flow->defined.insert(name);
      flow->allocs.insert(name);
      return;
    }
    case IrStmtKind::Loop: {
      const std::string path = parent_path + "/loop[" + std::to_string(index) + "]";
      if (stmt->text.empty())
        diags->error("PTL-E020", path, "loop has an empty range descriptor");
      child_walk(path);
      return;
    }
    case IrStmtKind::AssignExpr:
    case IrStmtKind::Accum:
    case IrStmtKind::ReduceCmp: {
      const char* kind_name = stmt->kind == IrStmtKind::AssignExpr
                                  ? "assign"
                                  : (stmt->kind == IrStmtKind::Accum ? "accum"
                                                                     : "reduce");
      const std::string path = parent_path + "/" + kind_name + "(" +
                               stmt->target + ")";
      if (stmt->target.empty())
        diags->error("PTL-E020", path,
                     std::string(kind_name) + " statement has no target");
      if ((stmt->kind == IrStmtKind::Accum || stmt->kind == IrStmtKind::ReduceCmp) &&
          stmt->accum_op.empty())
        diags->error("PTL-E020", path,
                     std::string(kind_name) +
                         " statement has no accumulation operator");
      if (!stmt->expr) {
        diags->error("PTL-E020", path,
                     std::string(kind_name) + " statement has no expression");
        return;
      }
      verify_expr_rec(stmt->expr, context, vc, diags, path, false, 0);
      check_reads_defined(stmt, *flow, diags, path);

      const std::string base = target_base_name(stmt->target);
      if (stmt->kind == IrStmtKind::AssignExpr) {
        if (!base.empty()) {
          if (!is_storage_name(base))
            flow->temp_assigns.emplace_back(base, path);
          flow->defined.insert(base);
        }
      } else {
        // Accumulations fold into storage: the slot must exist before the
        // loop body runs it (storage injection emits the Alloc).
        if (!base.empty() && flow->allocs.count(base) == 0)
          diags->error("PTL-E022", path,
                       std::string(kind_name) + " target '" + base +
                           "' has no backing Alloc; storage injection must "
                           "declare the reduction slot first");
      }
      return;
    }
    case IrStmtKind::ReturnExpr: {
      const std::string path = parent_path + "/return";
      if (!stmt->expr) {
        diags->error("PTL-E020", path, "return statement has no expression");
        return;
      }
      verify_expr_rec(stmt->expr, context, vc, diags, path, false, 0);
      check_reads_defined(stmt, *flow, diags, path);
      return;
    }
  }
}

} // namespace

void verify_expr(const IrExprPtr& expr, IrContext context,
                 const IrVerifyContext& vc, DiagnosticEngine* diags,
                 const std::string& root_path) {
  verify_expr_rec(expr, context, vc, diags, root_path, false, 0);
}

void verify_stmt(const IrStmtPtr& stmt, IrContext context,
                 const IrVerifyContext& vc, DiagnosticEngine* diags,
                 const std::string& root_path) {
  Dataflow flow;
  collect_all_reads(stmt, &flow.all_reads);
  verify_stmt_rec(stmt, context, vc, diags, root_path, &flow, 0);
  for (const auto& [name, path] : flow.temp_assigns)
    if (flow.all_reads.count(name) == 0)
      diags->warning("PTL-W023", path,
                     "temp '" + name +
                         "' is assigned but never read (dead store; dce_pass "
                         "should remove it)");
}

DiagnosticEngine verify_program(const IrProgram& program,
                                const IrVerifyContext& vc) {
  DiagnosticEngine diags;
  verify_stmt(program.base_case, IrContext::BaseCase, vc, &diags, "base_case");
  verify_stmt(program.prune_approx, IrContext::PruneApprox, vc, &diags,
              "prune_approx");
  verify_stmt(program.compute_approx, IrContext::ComputeApprox, vc, &diags,
              "compute_approx");
  return diags;
}

void verify_program_or_throw(const IrProgram& program, const IrVerifyContext& vc,
                             const std::string& stage) {
  DiagnosticEngine diags = verify_program(program, vc);
  if (diags.ok()) return;
  throw PortalDiagnosticError(
      "Portal: IR verification failed " + stage + " (" +
          std::to_string(diags.error_count()) + " error(s)):\n" + diags.report(),
      diags.diagnostics());
}

void verify_executable_expr(const IrExprPtr& expr, const char* backend) {
  DiagnosticEngine diags;
  verify_expr(expr, IrContext::Executable, IrVerifyContext{}, &diags, backend);
  if (diags.ok()) return;
  throw PortalDiagnosticError(
      std::string("Portal: ") + backend +
          " given malformed IR (verified-IR precondition violated):\n" +
          diags.report(),
      diags.diagnostics());
}

} // namespace portal
