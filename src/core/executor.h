// Portal -- the generic execution engine behind the VM and JIT backends.
//
// Runs an analyzed ProblemPlan through the multi-tree traversal (Algorithm 1)
// with *generic* reducers driven by the layer operators and a kernel
// evaluator supplied by the backend (bytecode for the VM engine, dlopen'd
// native functions for the JIT engine). The pattern backend bypasses this and
// dispatches to the specialized problem kernels instead.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "core/plan.h"
#include "tree/kdtree.h"
#include "traversal/rules.h"

namespace portal {

/// Kernel evaluation callbacks a backend provides.
struct EvaluatorFns {
  /// Envelope g(distance) in the metric's natural space. Required when the
  /// plan's kernel is normalized and the envelope is not the identity.
  std::function<real_t(real_t)> envelope;

  /// Full kernel on two dim-contiguous points (scratch: 2*dim reals for
  /// Mahalanobis). Required when the kernel is NOT normalized.
  std::function<real_t(const real_t*, const real_t*, index_t, real_t*)>
      kernel_pair;

  /// Optional batched flavor of kernel_pair: evaluate one query point
  /// against `count` SoA reference lanes (lane j's d-th coordinate at
  /// rlanes[d * rstride + rbegin + j]; see tree/soa_mirror.h), writing
  /// out[0..count). Must agree with kernel_pair per lane (the VM backend is
  /// bit-exact; see VmProgram::run_batch). Scratch: 3*dim reals. Backends
  /// without a batched path (JIT) leave this null and the executor falls
  /// back to the per-pair loop, counted as base/scalar_pairs.
  std::function<void(const real_t* q, const real_t* rlanes, index_t rstride,
                     index_t rbegin, index_t count, index_t dim,
                     real_t* scratch, real_t* out)>
      kernel_batch;

  /// Optional fused leaf loop for NORMALIZED plans (same tile signature as
  /// kernel_batch): metric distances + envelope in one specialized pass,
  /// writing finished kernel values to out[0..count). Must be bitwise-equal
  /// per lane to batch::natural_dists followed by `envelope` (the JIT's
  /// fused emission is; see DESIGN.md Sec. 17). When null the executor runs
  /// the generic natural_dists + envelope pair.
  std::function<void(const real_t* q, const real_t* rlanes, index_t rstride,
                     index_t rbegin, index_t count, index_t dim,
                     real_t* scratch, real_t* out)>
      leaf_values;
};

/// kd-trees are cached across execute() calls keyed by (dataset identity,
/// leaf size) so iterative programs (Boruvka MST, EM) rebuild nothing. The
/// cache pins each dataset, so an identity pointer can never be recycled by
/// a different dataset while its tree is cached.
///
/// Thread-safe: get() is callable from concurrent executions of the same
/// cached plan (the serving runtime's workers share one cache). The lock
/// covers only map access; a missing tree is built *outside* the lock, so
/// a slow build never serializes hits on other datasets. Two threads racing
/// on the same cold key may both build; the first insert wins and both get
/// a valid tree (the loser's build is dropped -- trees are immutable).
class TreeCache {
 public:
  std::shared_ptr<const KdTree> get(const Storage& storage, index_t leaf_size);

 private:
  struct Entry {
    std::shared_ptr<const Dataset> pinned;
    std::shared_ptr<const KdTree> tree;
  };
  std::mutex mutex_;
  std::map<std::pair<const void*, index_t>, Entry> cache_;
};

struct ExecutionResult {
  std::shared_ptr<OutputData> output;
  TraversalStats stats;
  double tree_seconds = 0;
  double traversal_seconds = 0;
};

/// Run the plan with tree acceleration (the optimal algorithm).
ExecutionResult execute_generic(const ProblemPlan& plan, const PortalConfig& config,
                                const EvaluatorFns& eval, TreeCache* cache);

/// Run the plan by exhaustive O(N^2) evaluation -- the brute-force program
/// the compiler also emits for correctness checks (Sec. IV).
ExecutionResult execute_bruteforce(const ProblemPlan& plan,
                                   const PortalConfig& config,
                                   const EvaluatorFns& eval);

/// Compare two outputs within a tolerance; returns an empty string on match,
/// a human-readable mismatch description otherwise (validation mode).
std::string compare_outputs(const OutputData& expected, const OutputData& actual,
                            real_t tolerance);

} // namespace portal
