#include "core/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include <omp.h>

#include "kernels/batch.h"
#include "obs/trace.h"
#include "problems/common.h"
#include "traversal/multitree.h"
#include "util/log.h"
#include "util/threading.h"
#include "util/timer.h"

namespace portal {
namespace {

struct InnerTraits {
  index_t slots = 1;
  real_t sense = 1; // +1 min-like, -1 max-like (reductions run in sense space)
  bool is_reduction = false;
  bool is_arg = false;
  bool is_sum = false;
  bool is_prod = false;
  bool is_forall = false;
  bool is_union = false;
  bool is_unionarg = false;
};

InnerTraits inner_traits(const OpSpec& spec) {
  InnerTraits t;
  switch (spec.op) {
    case PortalOp::SUM: t.is_sum = true; return t;
    case PortalOp::PROD: t.is_prod = true; return t;
    case PortalOp::FORALL: t.is_forall = true; return t;
    case PortalOp::UNION: t.is_union = true; return t;
    case PortalOp::UNIONARG: t.is_unionarg = true; return t;
    default:
      t.is_reduction = true;
      t.is_arg = op_is_arg(spec.op);
      t.sense = op_is_min_like(spec.op) ? real_t(1) : real_t(-1);
      t.slots = op_category(spec.op) == OpCategory::Multi ? spec.k : 1;
      return t;
  }
}

/// Metric distances from one query point to a reference range, in the
/// metric's *natural* space (true distance for Euclidean -- the envelope's
/// input space).
void natural_dists(MetricKind metric, const MahalanobisContext* maha,
                   const Dataset& rdata, index_t rbegin, index_t rend,
                   const real_t* qpt, real_t* out, real_t* scratch,
                   real_t* rpt_buf) {
  const index_t count = rend - rbegin;
  switch (metric) {
    case MetricKind::SqEuclidean:
      sq_dists_to_range(rdata, rbegin, rend, qpt, out);
      return;
    case MetricKind::Euclidean:
      sq_dists_to_range(rdata, rbegin, rend, qpt, out);
      for (index_t j = 0; j < count; ++j) out[j] = std::sqrt(out[j]);
      return;
    case MetricKind::Manhattan:
      l1_dists_to_range(rdata, rbegin, rend, qpt, out);
      return;
    case MetricKind::Chebyshev:
      linf_dists_to_range(rdata, rbegin, rend, qpt, out);
      return;
    case MetricKind::Mahalanobis:
      for (index_t j = 0; j < count; ++j) {
        rdata.copy_point(rbegin + j, rpt_buf);
        out[j] = maha->sq_dist(qpt, rpt_buf, scratch);
      }
      return;
  }
  throw std::logic_error("natural_dists: unhandled metric");
}

/// Per-query accumulation state. Reductions store sense-space values.
struct QueryState {
  InnerTraits traits;
  index_t nq = 0;
  index_t forall_cols = 0;
  std::vector<real_t> values; // reductions: nq x slots; sum/prod: nq
  std::vector<index_t> ids;   // arg reductions
  std::vector<std::vector<real_t>> union_values;
  std::vector<std::vector<index_t>> union_ids;

  void init(const InnerTraits& t, index_t n, index_t nr) {
    traits = t;
    nq = n;
    if (t.is_reduction) {
      values.assign(static_cast<std::size_t>(n) * t.slots,
                    std::numeric_limits<real_t>::max());
      // ids always allocated: KnnList maintains the id slots alongside the
      // sorted values even when the operator is not arg-flavored.
      ids.assign(static_cast<std::size_t>(n) * t.slots, -1);
    } else if (t.is_sum) {
      values.assign(n, 0);
    } else if (t.is_prod) {
      values.assign(n, 1);
    } else if (t.is_forall) {
      forall_cols = nr;
      if (static_cast<double>(n) * static_cast<double>(nr) > 2e8)
        throw std::invalid_argument(
            "Portal: forall x forall output would exceed 200M cells; "
            "restructure the program (this shape is meant for small inner "
            "sets, e.g. mixture components)");
      values.assign(static_cast<std::size_t>(n) * nr, 0);
    } else { // union / unionarg
      if (t.is_union) union_values.assign(n, {});
      union_ids.assign(n, {}); // unionarg ids; union also records ids for CSR
    }
  }
};

/// The generic dual-tree rule set: Algorithm 1 driven by the plan's category
/// and the backend's evaluator.
class GenericRules {
 public:
  GenericRules(const ProblemPlan& plan, const PortalConfig& config,
               const EvaluatorFns& eval, const KdTree& qtree, const KdTree& rtree,
               QueryState& state)
      : plan_(plan),
        config_(config),
        eval_(eval),
        qtree_(qtree),
        rtree_(rtree),
        state_(state),
        traits_(state.traits),
        metric_(plan.kernel.metric),
        maha_(plan.kernel.maha.get()),
        // Envelope classification consulted by the prune rules: with
        // analysis_gated the proven KernelFacts answer, otherwise (or for
        // hand-built plans without facts) the legacy shape match. The facts
        // are defined to coincide with the shape comparisons, so the two
        // oracles always agree -- pinned bitwise by the gating fuzz wall.
        identity_env_(plan.analysis_gated && plan.facts.computed
                          ? plan.facts.envelope_identity
                          : plan.kernel.shape == EnvelopeShape::Identity),
        indicator_env_(plan.analysis_gated && plan.facts.computed
                           ? plan.facts.envelope_indicator
                           : plan.kernel.shape == EnvelopeShape::Indicator),
        tau_(config.tau),
        // Exact comparative reductions over L2 select in squared space (one
        // sqrt per surviving slot at finish() instead of one per candidate)
        // -- the same transform the expert k-NN kernel applies. Monotone, so
        // prune decisions and the selected set are unchanged; VM and JIT
        // share this rule set, so their bitwise pairing is preserved.
        sq_select_(identity_env_ && traits_.is_reduction && traits_.sense > 0 &&
                   metric_ == MetricKind::Euclidean &&
                   plan.category == ProblemCategory::Pruning),
        workspaces_(num_threads()) {
    const index_t dim = qtree.data().dim();
    const index_t max_leaf = rtree.stats().max_leaf_count;
    for (Workspace& ws : workspaces_) {
      ws.qpt.resize(dim);
      ws.rpt.resize(dim);
      // 4*dim+4 covers point_distance gathers; the batched Mahalanobis solve
      // works kMahaBlock lanes at a time and needs 2*dim*kMahaBlock.
      ws.scratch.resize(std::max(4 * dim + 4, 2 * dim * batch::kMahaBlock));
      ws.dists.resize(max_leaf);
      ws.vals.resize(max_leaf);
    }
    batch_ = config.batch_base_cases && !rtree.mirror().empty();
    if (plan.category == ProblemCategory::Pruning && traits_.is_reduction)
      bounds_ = std::vector<AtomicBound>(qtree.num_nodes());
    if (config.exclude_same_label != nullptr) {
      // Permute original-order labels into each tree's order.
      const std::vector<index_t>& original = *config.exclude_same_label;
      q_labels_.resize(original.size());
      for (index_t i = 0; i < static_cast<index_t>(original.size()); ++i)
        q_labels_[i] = original[qtree.perm()[i]];
      r_labels_.resize(original.size());
      for (index_t i = 0; i < static_cast<index_t>(original.size()); ++i)
        r_labels_[i] = original[rtree.perm()[i]];
      label_nodes(qtree, q_labels_, &q_node_label_);
      label_nodes(rtree, r_labels_, &r_node_label_);
    }
  }

  bool prune_or_approx(index_t q, index_t r) {
    const KdNode& qnode = qtree_.node(q);
    const KdNode& rnode = rtree_.node(r);

    // Fully-same-label prune (MST's fully-connected condition).
    if (!q_node_label_.empty() && q_node_label_[q] >= 0 &&
        q_node_label_[q] == r_node_label_[r])
      return true;

    switch (plan_.category) {
      case ProblemCategory::Pruning: {
        const real_t dmin = qnode.box.min_dist(select_metric(), rnode.box, maha_);
        if (indicator_env_) {
          const real_t lo = plan_.kernel.indicator_lo;
          const real_t hi = plan_.kernel.indicator_hi;
          const real_t dmax = qnode.box.max_dist(metric_, rnode.box, maha_);
          if (traits_.is_reduction) {
            // Comparative op over a 0/1 kernel (argmin of an indicator):
            // zeros are candidates too, so distance-based cuts are unsound.
            // Degenerate shape; evaluate exhaustively.
            return false;
          }
          if (dmin >= hi || dmax <= lo) return true; // bulk reject
          if (dmin > lo && dmax < hi && q_node_label_.empty()) {
            bulk_accept(qnode, rnode);
            return true;
          }
          return false;
        }
        // Comparative reduction with monotone envelope: prune when the best
        // achievable sense-space value cannot beat the node bound. Under
        // sq-space selection dmin was already computed squared below.
        const real_t dmax = qnode.box.max_dist(select_metric(), rnode.box, maha_);
        real_t emin, emax;
        envelope_bounds(dmin, dmax, &emin, &emax);
        const real_t pair_best = std::min(traits_.sense * emin, traits_.sense * emax);
        return pair_best > bounds_[q].load();
      }
      case ProblemCategory::Approximation: {
        if (!q_node_label_.empty()) return false; // stay exact under labels
        const real_t dmin = qnode.box.min_dist(metric_, rnode.box, maha_);
        const real_t dmax = qnode.box.max_dist(metric_, rnode.box, maha_);
        real_t emin, emax;
        envelope_bounds(dmin, dmax, &emin, &emax);
        if (emax - emin > tau_) return false;
        apply_approx(qnode, rnode);
        return true;
      }
      case ProblemCategory::Exhaustive:
        return false;
    }
    return false;
  }

  real_t score(index_t q, index_t r) {
    return qtree_.node(q).box.min_dist(select_metric(), rtree_.node(r).box,
                                       maha_);
  }

  /// Map sq-space reduction state back to natural distances (one sqrt per
  /// surviving slot; the max() sentinel marks an unfilled slot and passes
  /// through untouched).
  void finish() {
    if (!sq_select_) return;
    for (real_t& v : state_.values)
      if (v != std::numeric_limits<real_t>::max()) v = std::sqrt(v);
  }

  void base_case(index_t q, index_t r) {
    const KdNode& qnode = qtree_.node(q);
    const KdNode& rnode = rtree_.node(r);
    Workspace& ws = workspaces_[omp_get_thread_num()];
    const index_t rcount = rnode.count();
    const index_t dim = qtree_.data().dim();
    const bool normalized = plan_.kernel.normalized;

    real_t leaf_bound = bounds_.empty() ? 0 : std::numeric_limits<real_t>::lowest();

    // Point-level prune applies to identity-envelope reductions over the L2
    // family (k-NN / MST / Hausdorff): the expert kernels all carry it.
    const bool point_prunable =
        !bounds_.empty() && identity_env_ && traits_.sense > 0 &&
        (metric_ == MetricKind::SqEuclidean || metric_ == MetricKind::Euclidean);

    for (index_t qi = qnode.begin; qi < qnode.end; ++qi) {
      qtree_.data().copy_point(qi, ws.qpt.data());

      if (point_prunable) {
        const real_t worst = state_.values[qi * traits_.slots + (traits_.slots - 1)];
        real_t point_min = rnode.box.min_sq_dist_point(ws.qpt.data());
        if (metric_ == MetricKind::Euclidean && !sq_select_)
          point_min = std::sqrt(point_min);
        if (point_min > worst) {
          leaf_bound = std::max(leaf_bound, worst);
          continue;
        }
      }

      // Kernel values for this query against the whole reference leaf,
      // tile-batched over the SoA mirror when the backend supports it.
      const real_t* vals = ws.vals.data();
      if (normalized && batch_ && eval_.leaf_values && !identity_env_) {
        // Fused leaf loop (JIT backend): metric + envelope in one
        // specialized pass, bitwise-equal to the generic pair below.
        const SoaMirror& mirror = rtree_.mirror();
        eval_.leaf_values(ws.qpt.data(), mirror.lanes(), mirror.stride(),
                          rnode.begin, rcount, dim, ws.scratch.data(),
                          ws.vals.data());
        batch::count_batch_tile(rcount);
      } else if (normalized) {
        if (batch_) {
          batch::natural_dists(select_metric(),
                               rtree_.mirror().tile(rnode.begin, rcount),
                               ws.qpt.data(), maha_, ws.scratch.data(),
                               ws.dists.data());
          batch::count_batch_tile(rcount);
        } else {
          natural_dists(select_metric(), maha_, rtree_.data(), rnode.begin,
                        rnode.end, ws.qpt.data(), ws.dists.data(),
                        ws.scratch.data(), ws.rpt.data());
          batch::count_scalar_tail(rcount);
        }
        if (identity_env_) {
          vals = ws.dists.data(); // envelope is the identity: no copy
        } else {
          for (index_t j = 0; j < rcount; ++j)
            ws.vals[j] = eval_.envelope(ws.dists[j]);
        }
      } else if (batch_ && eval_.kernel_batch) {
        const SoaMirror& mirror = rtree_.mirror();
        eval_.kernel_batch(ws.qpt.data(), mirror.lanes(), mirror.stride(),
                           rnode.begin, rcount, dim, ws.scratch.data(),
                           ws.vals.data());
        batch::count_batch_tile(rcount);
      } else {
        for (index_t j = 0; j < rcount; ++j) {
          rtree_.data().copy_point(rnode.begin + j, ws.rpt.data());
          ws.vals[j] = eval_.kernel_pair(ws.qpt.data(), ws.rpt.data(), dim,
                                         ws.scratch.data());
        }
        batch::count_scalar_tail(rcount);
      }

      const index_t ql = q_labels_.empty() ? -1 : q_labels_[qi];
      update_query(qi, rnode.begin, rcount, vals, ql);

      if (!bounds_.empty()) {
        const real_t worst =
            state_.values[qi * traits_.slots + (traits_.slots - 1)];
        leaf_bound = std::max(leaf_bound, worst);
      }
    }

    if (!bounds_.empty()) {
      bounds_[q].store_min(leaf_bound);
      index_t parent = qnode.parent;
      while (parent >= 0) {
        const KdNode& pnode = qtree_.node(parent);
        const real_t combined = std::max(bounds_[pnode.left].load(),
                                         bounds_[pnode.right].load());
        if (combined >= bounds_[parent].load()) break;
        bounds_[parent].store_min(combined);
        parent = pnode.parent;
      }
    }
  }

 private:
  struct Workspace {
    std::vector<real_t> qpt;
    std::vector<real_t> rpt;
    std::vector<real_t> scratch;
    std::vector<real_t> dists;
    std::vector<real_t> vals;
  };

  /// The space every comparison lives in: squared L2 under sq-space
  /// selection, the plan metric otherwise. Mixing spaces would make the
  /// bound propagation unsound, so every min_dist/max_dist/leaf distance
  /// goes through this one switch.
  MetricKind select_metric() const {
    return sq_select_ ? MetricKind::SqEuclidean : metric_;
  }

  /// Bounds on the envelope over a distance interval. Monotone envelopes use
  /// the endpoints; indicators need interval logic (endpoints under-cover).
  void envelope_bounds(real_t dmin, real_t dmax, real_t* emin, real_t* emax) {
    if (indicator_env_) {
      const real_t lo = plan_.kernel.indicator_lo;
      const real_t hi = plan_.kernel.indicator_hi;
      *emax = (dmax <= lo || dmin >= hi) ? 0 : 1;
      *emin = (dmin > lo && dmax < hi) ? 1 : 0;
      return;
    }
    if (identity_env_) {
      *emin = dmin;
      *emax = dmax;
      return;
    }
    const real_t a = eval_.envelope(dmin);
    const real_t b = eval_.envelope(dmax);
    *emin = std::min(a, b);
    *emax = std::max(a, b);
  }

  /// Fold `count` kernel values for query `qi` into its state.
  void update_query(index_t qi, index_t rbegin, index_t count, const real_t* vals,
                    index_t qlabel) {
    const InnerTraits& t = traits_;
    if (t.is_reduction) {
      KnnList list(state_.values.data() + qi * t.slots,
                   state_.ids.data() + qi * t.slots, t.slots);
      for (index_t j = 0; j < count; ++j) {
        const index_t rj = rbegin + j;
        if (qlabel >= 0 && r_labels_[rj] == qlabel) continue;
        if (qi_is_self(qi, rj)) continue;
        list.insert(t.sense * vals[j], rj);
      }
    } else if (t.is_sum) {
      real_t acc = 0;
      for (index_t j = 0; j < count; ++j) {
        if (qlabel >= 0 && r_labels_[rbegin + j] == qlabel) continue;
        acc += vals[j];
      }
      state_.values[qi] += acc;
    } else if (t.is_prod) {
      real_t acc = 1;
      for (index_t j = 0; j < count; ++j) {
        if (qlabel >= 0 && r_labels_[rbegin + j] == qlabel) continue;
        acc *= vals[j];
      }
      state_.values[qi] *= acc;
    } else if (t.is_forall) {
      for (index_t j = 0; j < count; ++j)
        state_.values[qi * state_.forall_cols + rbegin + j] = vals[j];
    } else { // union / unionarg: collect entries with non-zero kernel value
      for (index_t j = 0; j < count; ++j) {
        if (vals[j] == 0) continue;
        const index_t rj = rbegin + j;
        if (qlabel >= 0 && r_labels_[rj] == qlabel) continue;
        state_.union_ids[qi].push_back(rj);
        if (t.is_union) state_.union_values[qi].push_back(vals[j]);
      }
    }
  }

  /// Self-pair exclusion is NOT applied generically: Portal's semantics match
  /// the math (sum over all r includes r = q when the datasets coincide).
  /// Hook kept for future modifiers.
  bool qi_is_self(index_t, index_t) const { return false; }

  void bulk_accept(const KdNode& qnode, const KdNode& rnode) {
    PORTAL_OBS_COUNT("rules/bulk_accepts", 1);
    // Indicator kernel value is exactly 1 across the accepted pair.
    for (index_t qi = qnode.begin; qi < qnode.end; ++qi) {
      if (traits_.is_sum) {
        state_.values[qi] += static_cast<real_t>(rnode.count());
      } else if (traits_.is_unionarg || traits_.is_union) {
        for (index_t rj = rnode.begin; rj < rnode.end; ++rj) {
          state_.union_ids[qi].push_back(rj);
          if (traits_.is_union) state_.union_values[qi].push_back(1);
        }
      } else if (traits_.is_forall) {
        for (index_t rj = rnode.begin; rj < rnode.end; ++rj)
          state_.values[qi * state_.forall_cols + rj] = 1;
      } else if (traits_.is_prod) {
        // product of ones: no-op
      }
    }
  }

  void apply_approx(const KdNode& qnode, const KdNode& rnode) {
    PORTAL_OBS_COUNT("rules/approximations", 1);
    Workspace& ws = workspaces_[omp_get_thread_num()];
    // Center-to-center distance in the metric's natural space.
    const index_t dim = qtree_.data().dim();
    qnode.box.center_point(ws.qpt.data());
    rnode.box.center_point(ws.rpt.data());
    real_t center;
    if (metric_ == MetricKind::Mahalanobis) {
      center = maha_->sq_dist(ws.qpt.data(), ws.rpt.data(), ws.scratch.data());
    } else {
      real_t d = point_distance(
          metric_ == MetricKind::Euclidean ? MetricKind::SqEuclidean : metric_,
          ws.qpt.data(), 1, ws.rpt.data(), 1, dim);
      center = metric_ == MetricKind::Euclidean ? std::sqrt(d) : d;
    }
    const real_t value = identity_env_ ? center : eval_.envelope(center);
    const real_t rcount = static_cast<real_t>(rnode.count());
    for (index_t qi = qnode.begin; qi < qnode.end; ++qi) {
      if (traits_.is_sum) {
        state_.values[qi] += rcount * value;
      } else if (traits_.is_prod) {
        state_.values[qi] *= std::pow(value, rcount);
      } else if (traits_.is_forall) {
        for (index_t rj = rnode.begin; rj < rnode.end; ++rj)
          state_.values[qi * state_.forall_cols + rj] = value;
      }
    }
  }

  /// Per-node single-label annotation (same scheme as dual-tree Boruvka).
  static void label_nodes(const KdTree& tree, const std::vector<index_t>& labels,
                          std::vector<index_t>* node_label) {
    node_label->assign(tree.num_nodes(), -1);
    for (index_t i = tree.num_nodes() - 1; i >= 0; --i) {
      const KdNode& node = tree.node(i);
      if (node.is_leaf()) {
        index_t l = labels[node.begin];
        for (index_t p = node.begin + 1; p < node.end; ++p)
          if (labels[p] != l) {
            l = -1;
            break;
          }
        (*node_label)[i] = l;
      } else {
        const index_t a = (*node_label)[node.left];
        const index_t b = (*node_label)[node.right];
        (*node_label)[i] = (a >= 0 && a == b) ? a : -1;
      }
    }
  }

  const ProblemPlan& plan_;
  const PortalConfig& config_;
  const EvaluatorFns& eval_;
  const KdTree& qtree_;
  const KdTree& rtree_;
  QueryState& state_;
  InnerTraits traits_;
  MetricKind metric_;
  const MahalanobisContext* maha_;
  bool identity_env_;
  bool indicator_env_;
  real_t tau_;
  bool sq_select_;
  bool batch_ = false;
  std::vector<AtomicBound> bounds_;
  std::vector<index_t> q_labels_, r_labels_;
  std::vector<index_t> q_node_label_, r_node_label_;
  std::vector<Workspace> workspaces_;
};

/// Assemble an OutputData from tree-order state (or original-order state when
/// `perm_q`/`perm_r` are null -- the brute-force path).
std::shared_ptr<OutputData> finalize(const ProblemPlan& plan, QueryState& state,
                                     const std::vector<index_t>* perm_q,
                                     const std::vector<index_t>* perm_r) {
  const LayerSpec& outer = plan.layers[0];
  const InnerTraits t = state.traits;
  const index_t nq = state.nq;
  auto out = std::make_shared<OutputData>();

  const auto qmap = [&](index_t i) { return perm_q ? (*perm_q)[i] : i; };
  const auto rmap = [&](index_t j) { return perm_r ? (*perm_r)[j] : j; };

  if (outer.op.op == PortalOp::FORALL) {
    if (t.is_reduction) {
      out->rows = nq;
      out->cols = t.slots;
      out->values.assign(static_cast<std::size_t>(nq) * t.slots, 0);
      if (t.is_arg) out->indices.assign(static_cast<std::size_t>(nq) * t.slots, -1);
      for (index_t i = 0; i < nq; ++i)
        for (index_t j = 0; j < t.slots; ++j) {
          const real_t v = state.values[i * t.slots + j];
          out->values[qmap(i) * t.slots + j] =
              v == std::numeric_limits<real_t>::max()
                  ? std::numeric_limits<real_t>::quiet_NaN()
                  : t.sense * v;
          if (t.is_arg) {
            const index_t id = state.ids[i * t.slots + j];
            out->indices[qmap(i) * t.slots + j] = id >= 0 ? rmap(id) : -1;
          }
        }
    } else if (t.is_sum || t.is_prod) {
      out->rows = nq;
      out->cols = 1;
      out->values.assign(nq, 0);
      for (index_t i = 0; i < nq; ++i) out->values[qmap(i)] = state.values[i];
    } else if (t.is_forall) {
      out->rows = nq;
      out->cols = state.forall_cols;
      out->values.assign(static_cast<std::size_t>(nq) * state.forall_cols, 0);
      for (index_t i = 0; i < nq; ++i)
        for (index_t j = 0; j < state.forall_cols; ++j)
          out->values[qmap(i) * state.forall_cols + rmap(j)] =
              state.values[i * state.forall_cols + j];
    } else { // union / unionarg -> CSR in original ordering
      out->rows = nq;
      out->cols = 0;
      std::vector<std::vector<index_t>> ids(nq);
      std::vector<std::vector<real_t>> vals(t.is_union ? nq : 0);
      for (index_t i = 0; i < nq; ++i) {
        const index_t oq = qmap(i);
        ids[oq].reserve(state.union_ids[i].size());
        for (std::size_t s = 0; s < state.union_ids[i].size(); ++s)
          ids[oq].push_back(rmap(state.union_ids[i][s]));
        if (t.is_union) vals[oq] = state.union_values[i];
        // Deterministic output: sort by reference index (values follow).
        if (t.is_union) {
          std::vector<std::size_t> order(ids[oq].size());
          for (std::size_t s = 0; s < order.size(); ++s) order[s] = s;
          std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            return ids[oq][a] < ids[oq][b];
          });
          std::vector<index_t> sorted_ids(order.size());
          std::vector<real_t> sorted_vals(order.size());
          for (std::size_t s = 0; s < order.size(); ++s) {
            sorted_ids[s] = ids[oq][order[s]];
            sorted_vals[s] = vals[oq][order[s]];
          }
          ids[oq] = std::move(sorted_ids);
          vals[oq] = std::move(sorted_vals);
        } else {
          std::sort(ids[oq].begin(), ids[oq].end());
        }
      }
      out->offsets.resize(nq + 1);
      out->offsets[0] = 0;
      for (index_t i = 0; i < nq; ++i)
        out->offsets[i + 1] = out->offsets[i] + static_cast<index_t>(ids[i].size());
      for (index_t i = 0; i < nq; ++i) {
        out->lists.insert(out->lists.end(), ids[i].begin(), ids[i].end());
        if (t.is_union)
          out->values.insert(out->values.end(), vals[i].begin(), vals[i].end());
      }
    }
    return out;
  }

  // Scalar outer reductions (SUM / PROD / MIN / MAX over per-query results).
  if (!t.is_reduction && !t.is_sum && !t.is_prod)
    throw std::invalid_argument(
        "Portal: scalar outer reductions require a scalar inner reduction");
  if (t.is_reduction && t.slots != 1)
    throw std::invalid_argument(
        "Portal: scalar outer reductions require inner k = 1");

  real_t scalar = 0;
  bool first = true;
  for (index_t i = 0; i < nq; ++i) {
    real_t v = state.values[i * (t.is_reduction ? t.slots : 1)];
    if (t.is_reduction) {
      if (v == std::numeric_limits<real_t>::max()) continue; // no candidate
      v = t.sense * v;
    }
    switch (outer.op.op) {
      case PortalOp::SUM: scalar += v; break;
      case PortalOp::PROD: scalar = first ? v : scalar * v; break;
      case PortalOp::MIN: scalar = first ? v : std::min(scalar, v); break;
      case PortalOp::MAX: scalar = first ? v : std::max(scalar, v); break;
      default: break;
    }
    first = false;
  }
  out->rows = 1;
  out->cols = 1;
  out->values = {scalar};
  out->has_scalar = true;
  out->scalar = scalar;
  return out;
}

} // namespace

std::shared_ptr<const KdTree> TreeCache::get(const Storage& storage,
                                             index_t leaf_size) {
  const auto key = std::make_pair(storage.identity(), leaf_size);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second.tree;
  }
  // Build outside the lock: tree construction is the expensive part and must
  // not serialize concurrent executions hitting other keys.
  auto tree = std::make_shared<const KdTree>(storage.dataset(), leaf_size);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = cache_.emplace(key, Entry{storage.shared_dataset(), tree});
  return it->second.tree; // racing builders converge on the first insert
}

ExecutionResult execute_generic(const ProblemPlan& plan, const PortalConfig& config,
                                const EvaluatorFns& eval, TreeCache* cache) {
  const LayerSpec& outer = plan.layers[0];
  const LayerSpec& inner = plan.layers[1];
  if (outer.storage.size() == 0 || inner.storage.size() == 0)
    throw std::invalid_argument("Portal: empty dataset");

  ExecutionResult result;
  Timer timer;
  PORTAL_OBS_SCOPE(tree_scope, "executor/tree_build");
  TreeCache local_cache;
  TreeCache* trees = cache != nullptr ? cache : &local_cache;
  const auto qtree = trees->get(outer.storage, config.leaf_size);
  const auto rtree = outer.storage.identity() == inner.storage.identity()
                         ? qtree
                         : trees->get(inner.storage, config.leaf_size);
  tree_scope.stop();
  result.tree_seconds = timer.elapsed_s();

  QueryState state;
  state.init(inner_traits(inner.op), outer.storage.size(), inner.storage.size());

  timer.reset();
  PORTAL_OBS_SCOPE(traverse_scope, "executor/traversal");
  GenericRules rules(plan, config, eval, *qtree, *rtree, state);
  TraversalOptions topt;
  topt.parallel = config.parallel;
  topt.task_depth = config.task_depth;
  result.stats = dual_traverse(*qtree, *rtree, rules, topt);
  rules.finish();
  traverse_scope.stop();
  result.traversal_seconds = timer.elapsed_s();

  result.output = finalize(plan, state, &qtree->perm(), &rtree->perm());
  return result;
}

ExecutionResult execute_bruteforce(const ProblemPlan& plan,
                                   const PortalConfig& config,
                                   const EvaluatorFns& eval) {
  const LayerSpec& outer = plan.layers[0];
  const LayerSpec& inner = plan.layers[1];
  const Dataset& qdata = outer.storage.dataset();
  const Dataset& rdata = inner.storage.dataset();
  const index_t nq = qdata.size();
  const index_t nr = rdata.size();
  const index_t dim = qdata.dim();

  QueryState state;
  state.init(inner_traits(inner.op), nq, nr);
  const InnerTraits t = state.traits;
  const bool normalized = plan.kernel.normalized;
  const MahalanobisContext* maha = plan.kernel.maha.get();
  const bool identity_env = plan.kernel.shape == EnvelopeShape::Identity;
  const std::vector<index_t>* labels = config.exclude_same_label;

  PORTAL_OBS_SCOPE(brute_scope, "executor/bruteforce");
  Timer timer;
#pragma omp parallel if (config.parallel)
  {
    std::vector<real_t> qpt(dim), rpt(dim), scratch(4 * dim + 4);
    std::vector<real_t> dists(nr), vals(nr);
#pragma omp for schedule(static)
    for (index_t i = 0; i < nq; ++i) {
      qdata.copy_point(i, qpt.data());
      if (normalized) {
        natural_dists(plan.kernel.metric, maha, rdata, 0, nr, qpt.data(),
                      dists.data(), scratch.data(), rpt.data());
        if (identity_env) {
          for (index_t j = 0; j < nr; ++j) vals[j] = dists[j];
        } else {
          for (index_t j = 0; j < nr; ++j) vals[j] = eval.envelope(dists[j]);
        }
      } else {
        for (index_t j = 0; j < nr; ++j) {
          rdata.copy_point(j, rpt.data());
          vals[j] = eval.kernel_pair(qpt.data(), rpt.data(), dim, scratch.data());
        }
      }
      const index_t qlabel = labels ? (*labels)[i] : -1;

      if (t.is_reduction) {
        KnnList list(state.values.data() + i * t.slots,
                     state.ids.data() + i * t.slots, t.slots);
        for (index_t j = 0; j < nr; ++j) {
          if (qlabel >= 0 && (*labels)[j] == qlabel) continue;
          list.insert(t.sense * vals[j], j);
        }
      } else if (t.is_sum) {
        real_t acc = 0;
        for (index_t j = 0; j < nr; ++j) {
          if (qlabel >= 0 && (*labels)[j] == qlabel) continue;
          acc += vals[j];
        }
        state.values[i] = acc;
      } else if (t.is_prod) {
        real_t acc = 1;
        for (index_t j = 0; j < nr; ++j) {
          if (qlabel >= 0 && (*labels)[j] == qlabel) continue;
          acc *= vals[j];
        }
        state.values[i] = acc;
      } else if (t.is_forall) {
        for (index_t j = 0; j < nr; ++j)
          state.values[i * state.forall_cols + j] = vals[j];
      } else {
        for (index_t j = 0; j < nr; ++j) {
          if (vals[j] == 0) continue;
          if (qlabel >= 0 && (*labels)[j] == qlabel) continue;
          state.union_ids[i].push_back(j);
          if (t.is_union) state.union_values[i].push_back(vals[j]);
        }
      }
    }
  }

  ExecutionResult result;
  result.traversal_seconds = timer.elapsed_s();
  result.output = finalize(plan, state, nullptr, nullptr);
  return result;
}

std::string compare_outputs(const OutputData& expected, const OutputData& actual,
                            real_t tolerance) {
  if (expected.rows != actual.rows || expected.cols != actual.cols)
    return "shape mismatch";
  if (expected.has_scalar != actual.has_scalar) return "scalar-ness mismatch";
  if (expected.has_scalar) {
    const real_t denom = std::max(std::abs(expected.scalar), real_t(1));
    if (std::abs(expected.scalar - actual.scalar) > tolerance * denom)
      return "scalar mismatch: expected " + std::to_string(expected.scalar) +
             ", got " + std::to_string(actual.scalar);
    return {};
  }
  if (expected.values.size() != actual.values.size()) return "value count mismatch";
  for (std::size_t i = 0; i < expected.values.size(); ++i) {
    const real_t e = expected.values[i];
    const real_t a = actual.values[i];
    if (std::isnan(e) && std::isnan(a)) continue;
    if (std::abs(e - a) > tolerance * std::max(std::abs(e), real_t(1)))
      return "value mismatch at " + std::to_string(i) + ": expected " +
             std::to_string(e) + ", got " + std::to_string(a);
  }
  if (expected.offsets != actual.offsets) return "CSR offsets mismatch";
  if (expected.lists != actual.lists) return "CSR lists mismatch";
  return {};
}

} // namespace portal
