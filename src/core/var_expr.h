// Portal -- Var / Expr: the user-facing kernel expression AST (paper
// Sec. III-C, code 3).
//
// `Var` objects name layer datasets; `Expr` combines them with arithmetic,
// comparisons, and math functions into a kernel. Expressions are typed
// Vector (per-dimension) or Scalar: a Var is Vector, arithmetic broadcasts,
// and scalar-only functions (sqrt, exp, ...) implicitly reduce a Vector
// argument by summing over dimensions -- exactly how the paper lowers
// sqrt(pow(q - r, 2)) into a dimension loop accumulating into t (Fig. 2).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/common.h"

namespace portal {

enum class ExprKind {
  Const,
  VarRef,
  Add,
  Sub,
  Mul,
  Div,
  Neg,
  Pow,   // integer or real exponent held in `value`
  Sqrt,
  Exp,
  Log,
  Abs,
  DimSum, // Vector -> Scalar: sum over dimensions
  DimMax, // Vector -> Scalar: max over dimensions
  Less,    // Scalar x Scalar -> indicator {0, 1}
  Greater,
  Min2,    // elementwise binary min / max
  Max2,
  Mahalanobis, // squared Mahalanobis distance between two VarRefs
  External,    // opaque user C++ function of the two raw points
};

enum class ExprType { Scalar, Vector };

/// User-supplied kernel escape hatch (paper Sec. III-C: "users can also
/// define their own external C++ functions"). Receives the two points as
/// dim-contiguous arrays.
using ExternalKernelFn =
    std::function<real_t(const real_t* q, const real_t* r, index_t dim)>;

struct ExprNode;
using ExprNodePtr = std::shared_ptr<const ExprNode>;

struct ExprNode {
  ExprKind kind = ExprKind::Const;
  std::vector<ExprNodePtr> children;
  real_t value = 0;    // Const payload or Pow exponent
  int var_id = -1;     // VarRef / Mahalanobis / External operands
  int var_id2 = -1;
  std::vector<real_t> matrix; // Mahalanobis covariance (row-major), may be
                              // empty = "derive from the reference dataset"
  ExternalKernelFn external;
  std::string label;          // printable name for External
};

/// A named dataset variable. Identity is the id; the name only aids printing.
class Var {
 public:
  Var();
  explicit Var(std::string name);

  int id() const { return id_; }
  const std::string& name() const { return name_; }

 private:
  int id_;
  std::string name_;
};

/// Immutable expression handle (cheap to copy; nodes are shared).
class Expr {
 public:
  Expr() = default;
  Expr(real_t constant); // NOLINT(google-explicit-constructor)
  Expr(int constant);    // NOLINT(google-explicit-constructor)
  Expr(const Var& var);  // NOLINT(google-explicit-constructor)
  explicit Expr(ExprNodePtr node) : node_(std::move(node)) {}

  const ExprNodePtr& node() const { return node_; }
  bool valid() const { return node_ != nullptr; }

  /// Scalar or Vector under the implicit-reduction typing rules.
  ExprType type() const;

  /// Human-readable rendering (used in IR dumps / error messages).
  std::string to_string() const;

 private:
  ExprNodePtr node_;
};

// Arithmetic / comparison builders.
Expr operator+(const Expr& a, const Expr& b);
Expr operator-(const Expr& a, const Expr& b);
Expr operator*(const Expr& a, const Expr& b);
Expr operator/(const Expr& a, const Expr& b);
Expr operator-(const Expr& a);
Expr operator<(const Expr& a, const Expr& b);
Expr operator>(const Expr& a, const Expr& b);

/// pow(e, c): elementwise on vectors; the strength-reduction pass turns small
/// integer exponents into chained multiplies (Sec. IV-E).
Expr pow(const Expr& base, real_t exponent);
/// Scalar-only functions; a Vector argument is implicitly dim-summed.
Expr sqrt(const Expr& e);
Expr exp(const Expr& e);
Expr log(const Expr& e);
/// abs is elementwise (stays Vector on vectors).
Expr abs(const Expr& e);
/// Explicit reductions.
Expr dimsum(const Expr& e);
Expr dimmax(const Expr& e);
/// Elementwise binary min / max (named to avoid std::min/std::max clashes).
Expr vmin(const Expr& a, const Expr& b);
Expr vmax(const Expr& a, const Expr& b);

/// Squared Mahalanobis distance between two layer variables. Empty `cov`
/// means Portal computes the reference dataset's covariance at execute time.
Expr mahalanobis(const Var& q, const Var& r, std::vector<real_t> cov = {});

/// Opaque external kernel bound to two layer variables.
Expr external_kernel(const Var& q, const Var& r, ExternalKernelFn fn,
                     std::string label = "external");

/// Collect the distinct var ids referenced by an expression (sorted).
std::vector<int> collect_var_ids(const Expr& e);

/// Structural helper shared by typing, analysis, and codegen.
ExprType node_type(const ExprNodePtr& node);

} // namespace portal
