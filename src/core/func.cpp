#include "core/func.h"

#include <stdexcept>

namespace portal {

const PortalFunc PortalFunc::NONE{PortalFunc::Kind::None};
const PortalFunc PortalFunc::EUCLIDEAN{PortalFunc::Kind::Euclidean};
const PortalFunc PortalFunc::SQREUCDIST{PortalFunc::Kind::SqEuclidean};
const PortalFunc PortalFunc::MANHATTAN{PortalFunc::Kind::Manhattan};
const PortalFunc PortalFunc::CHEBYSHEV{PortalFunc::Kind::Chebyshev};
const PortalFunc PortalFunc::MAHALANOBIS{PortalFunc::Kind::Mahalanobis};

PortalFunc PortalFunc::gaussian(real_t sigma) {
  if (sigma <= 0) throw std::invalid_argument("PortalFunc::gaussian: sigma <= 0");
  PortalFunc f(Kind::Gaussian);
  f.sigma_ = sigma;
  return f;
}

PortalFunc PortalFunc::gaussian_maha(std::vector<real_t> cov) {
  PortalFunc f(Kind::GaussianMaha);
  f.cov_ = std::move(cov);
  return f;
}

PortalFunc PortalFunc::mahalanobis_with(std::vector<real_t> cov) {
  PortalFunc f(Kind::Mahalanobis);
  f.cov_ = std::move(cov);
  return f;
}

PortalFunc PortalFunc::gravity(real_t G, real_t softening) {
  PortalFunc f(Kind::Gravity);
  f.g_ = G;
  f.softening_ = softening;
  return f;
}

PortalFunc PortalFunc::indicator(real_t lo, real_t hi) {
  if (lo < 0 || hi <= lo)
    throw std::invalid_argument("PortalFunc::indicator: need 0 <= lo < hi");
  PortalFunc f(Kind::Indicator);
  f.lo_ = lo;
  f.hi_ = hi;
  return f;
}

PortalFunc PortalFunc::custom(Expr kernel) {
  if (!kernel.valid())
    throw std::invalid_argument("PortalFunc::custom: empty expression");
  PortalFunc f(Kind::Custom);
  f.custom_ = std::move(kernel);
  return f;
}

Expr PortalFunc::expand(const Var& q, const Var& r) const {
  switch (kind_) {
    case Kind::Euclidean:
      return sqrt(pow(Expr(q) - Expr(r), 2)); // code 3's exact spelling
    case Kind::SqEuclidean:
      return dimsum(pow(Expr(q) - Expr(r), 2));
    case Kind::Manhattan:
      return dimsum(abs(Expr(q) - Expr(r)));
    case Kind::Chebyshev:
      return dimmax(abs(Expr(q) - Expr(r)));
    case Kind::Mahalanobis:
      return mahalanobis(q, r, cov_);
    case Kind::Gaussian: {
      const real_t coeff = real_t(-1) / (2 * sigma_ * sigma_);
      return exp(Expr(coeff) * dimsum(pow(Expr(q) - Expr(r), 2)));
    }
    case Kind::GaussianMaha:
      return exp(Expr(real_t(-0.5)) * mahalanobis(q, r, cov_));
    case Kind::Indicator: {
      const Expr d = sqrt(pow(Expr(q) - Expr(r), 2));
      return (Expr(lo_) < d) * (d < Expr(hi_));
    }
    case Kind::Custom:
      return custom_;
    case Kind::Gravity:
      throw std::logic_error(
          "PortalFunc::Gravity is vector-valued and handled by the pattern "
          "backend; it has no scalar Expr expansion");
    case Kind::None:
      throw std::logic_error("PortalFunc::None has no kernel expression");
  }
  throw std::logic_error("PortalFunc::expand: unhandled kind");
}

const char* PortalFunc::name() const {
  switch (kind_) {
    case Kind::None: return "none";
    case Kind::Euclidean: return "euclidean";
    case Kind::SqEuclidean: return "sq_euclidean";
    case Kind::Manhattan: return "manhattan";
    case Kind::Chebyshev: return "chebyshev";
    case Kind::Mahalanobis: return "mahalanobis";
    case Kind::Gaussian: return "gaussian";
    case Kind::GaussianMaha: return "gaussian_mahalanobis";
    case Kind::Gravity: return "gravity";
    case Kind::Indicator: return "indicator";
    case Kind::Custom: return "custom";
  }
  return "?";
}

} // namespace portal
