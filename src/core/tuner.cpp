#include "core/tuner.h"

#include "core/portal_expr.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/timer.h"

namespace portal {
namespace {

/// First-`m` subsample preserving the original layout. Strided sampling
/// would be marginally more representative but breaks nothing here: leaf-size
/// behavior depends on local density structure, which a prefix of a shuffled
/// generator output preserves.
Storage subsample(const Storage& storage, index_t m) {
  const Dataset& data = storage.dataset();
  if (data.size() <= m) return storage;
  Dataset sample(m, data.dim(), data.layout());
  for (index_t i = 0; i < m; ++i)
    for (index_t d = 0; d < data.dim(); ++d)
      sample.coord(i, d) = data.coord(i, d);
  Storage out{std::move(sample)};
  if (storage.has_weights()) {
    std::vector<real_t> weights(storage.weights().begin(),
                                storage.weights().begin() + m);
    out.set_weights(std::move(weights));
  }
  return out;
}

} // namespace

TuneReport tune_leaf_size(const std::vector<LayerSpec>& layers,
                          const PortalConfig& config,
                          const std::vector<index_t>& candidates,
                          index_t sample_size) {
  TuneReport report;
  if (layers.size() != 2 || candidates.empty()) return report;

  // Shrink the datasets; labels cannot be subsampled meaningfully, so tuning
  // under label constraints probes the unconstrained problem (same kernels,
  // same tree shapes).
  std::vector<LayerSpec> probe_layers = layers;
  // Layers sharing one dataset must keep sharing after subsampling.
  Storage outer_sample = subsample(layers[0].storage, sample_size);
  probe_layers[0].storage = outer_sample;
  probe_layers[1].storage =
      layers[0].storage.identity() == layers[1].storage.identity()
          ? outer_sample
          : subsample(layers[1].storage, sample_size);

  PortalConfig probe_config = config;
  probe_config.validate = false;
  probe_config.dump_ir = false;
  probe_config.exclude_same_label = nullptr;

  PORTAL_OBS_SCOPE(tune_scope, "tuner/leaf_size");
  double best_time = 1e300;
  report.best_leaf_size = candidates.front();
  for (const index_t leaf : candidates) {
    probe_config.leaf_size = leaf;
    PortalExpr expr;
    for (const LayerSpec& layer : probe_layers) expr.addLayerSpec(layer);
    const bool traced = obs::enabled();
    obs::ScopedTimer probe_scope(
        traced ? obs::intern_timer(
                     ("tuner/probe/leaf=" + std::to_string(leaf)).c_str())
               : obs::MetricId(0));
    Timer timer;
    try {
      expr.execute(probe_config);
    } catch (const std::exception& e) {
      PORTAL_LOG_WARN("leaf-size probe failed at %lld: %s",
                      static_cast<long long>(leaf), e.what());
      continue;
    }
    const double elapsed = timer.elapsed_s();
    PORTAL_OBS_COUNT("tuner/probes", 1);
    report.probes.emplace_back(leaf, elapsed);
    if (elapsed < best_time) {
      best_time = elapsed;
      report.best_leaf_size = leaf;
    }
  }
  if (obs::enabled())
    obs::instant_event("tuner/picked_leaf=" +
                       std::to_string(report.best_leaf_size));
  PORTAL_LOG_INFO("leaf-size tuner picked %lld",
                  static_cast<long long>(report.best_leaf_size));
  return report;
}

} // namespace portal
