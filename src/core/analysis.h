// Portal -- semantic analysis: layer validation, kernel normalization
// (metric + envelope), and problem classification (the prune/approximate
// generator's front half, Sec. II-B adapted per Sec. IV).
#pragma once

#include <vector>

#include "core/plan.h"

namespace portal {

/// Analyze a layer stack into an executable plan (without running passes --
/// the PortalExpr pipeline applies those next). Throws std::invalid_argument
/// with user-actionable messages on malformed programs.
ProblemPlan analyze_layers(const std::vector<LayerSpec>& layers,
                           const PortalConfig& config);

/// Classify an envelope by structure + sampling (Indicator recognized
/// structurally; monotonicity established by dense sampling over the metric's
/// distance range). Fills indicator bounds on KernelInfo when applicable.
void classify_envelope(KernelInfo* kernel);

/// Table III-style one-line characterization: operators, kernel, and the
/// generated prune/approximate condition.
std::string describe_problem(const ProblemPlan& plan);

} // namespace portal
