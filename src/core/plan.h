// Portal -- compiler-internal plan structures shared by analysis, passes,
// and the three codegen backends.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/analysis/facts.h"
#include "core/func.h"
#include "core/ir/ir.h"
#include "core/verify/diagnostics.h"
#include "core/ops.h"
#include "core/storage.h"
#include "core/var_expr.h"
#include "kernels/metrics.h"
#include "tree/kdtree.h"
#include "util/common.h"

namespace portal {

/// One addLayer() call: (operator, dataset, optional kernel/modifying fn).
struct LayerSpec {
  OpSpec op{PortalOp::FORALL};
  Storage storage;
  int var_id = -1;         // bound Var (code 3 style), -1 when auto-generated
  PortalFunc func = PortalFunc::NONE;
  Expr custom_kernel;      // kernel Expr attached directly (code 3 line 8)
  ExternalKernelFn external; // opaque user C++ kernel (Sec. III-C escape hatch)
  std::string external_label;
  bool has_kernel() const {
    return func.kind() != PortalFunc::Kind::None || custom_kernel.valid() ||
           external != nullptr;
  }
};

/// Sec. II-B: the algorithm class the prune/approximate generator assigns.
enum class ProblemCategory {
  Pruning,       // comparative operator or comparative kernel
  Approximation, // arithmetic operators + smooth monotone kernel
  Exhaustive,    // kernel opaque to the generator: traverse without pruning
};

inline const char* category_name(ProblemCategory c) {
  switch (c) {
    case ProblemCategory::Pruning: return "pruning";
    case ProblemCategory::Approximation: return "approximation";
    case ProblemCategory::Exhaustive: return "exhaustive";
  }
  return "?";
}

/// Shape of the scalar envelope g where kernel = g(metric_distance).
enum class EnvelopeShape {
  Identity,   // g(d) = d (k-NN, Hausdorff, EMST)
  Decreasing, // monotone decreasing (Gaussian family)
  Increasing, // monotone increasing but not identity
  Indicator,  // I(lo < d < hi) (range search, 2-point correlation)
  Opaque,     // not analyzable: no pruning or approximation
};

inline const char* envelope_shape_name(EnvelopeShape s) {
  switch (s) {
    case EnvelopeShape::Identity: return "identity";
    case EnvelopeShape::Decreasing: return "decreasing";
    case EnvelopeShape::Increasing: return "increasing";
    case EnvelopeShape::Indicator: return "indicator";
    case EnvelopeShape::Opaque: return "opaque";
  }
  return "?";
}

/// The normalized kernel: metric + envelope (see DESIGN.md Sec. 5). The
/// envelope IR references the metric value through the Dist atom.
struct KernelInfo {
  Expr ast;                 // the user-level kernel expression
  IrExprPtr kernel_ir;      // fully lowered kernel (per point pair)
  bool normalized = false;  // metric + envelope decomposition succeeded
  MetricKind metric = MetricKind::SqEuclidean;
  IrExprPtr envelope_ir;    // kernel with the metric subtree -> Dist
  EnvelopeShape shape = EnvelopeShape::Opaque;
  real_t indicator_lo = 0;  // metric-space bounds for Indicator shape;
  real_t indicator_hi = 0;  // lo = -inf encodes a one-sided I(d < hi)
  std::shared_ptr<MahalanobisContext> maha; // Mahalanobis metric context
  ExternalKernelFn external;                // opaque external kernel
  bool is_gravity = false;  // Barnes-Hut vector kernel (pattern backend)
  real_t gravity_g = 1;
  real_t gravity_eps = 1e-3;
};

/// Which backend runs the compiled program (DESIGN.md Sec. 4).
enum class Engine {
  Auto,    // Pattern when recognized, else JIT when available, else VM
  VM,      // bytecode interpreter
  Pattern, // pre-compiled specialized kernels
  JIT,     // emit C++, compile with the system compiler, dlopen
};

inline const char* engine_name(Engine e) {
  switch (e) {
    case Engine::Auto: return "auto";
    case Engine::VM: return "vm";
    case Engine::Pattern: return "pattern";
    case Engine::JIT: return "jit";
  }
  return "?";
}

/// User-facing execution configuration.
struct PortalConfig {
  Engine engine = Engine::Auto;
  index_t leaf_size = kDefaultLeafSize;
  bool parallel = true;
  int task_depth = -1;
  real_t tau = 1e-3;     // approximation threshold (approximation problems)
  real_t theta = 0.5;    // Barnes-Hut MAC
  bool strength_reduction = true; // Sec. IV-E pass on/off (accuracy knob)
  bool batch_base_cases = true;   // SIMD tile evaluation of leaf x leaf blocks
                                  // (Sec. IV-F data parallelism; off = the
                                  // scalar per-pair path, kept as the ablation
                                  // baseline and differential oracle)
  bool dump_ir = false;           // record per-stage IR snapshots
  bool verify_ir = true; // LLVM-style -verify-each: re-check IR well-formedness
                         // after lowering and after every pass (PTL-E codes)
  bool validate = false; // also run the generated brute-force program and
                         // compare (Sec. IV: "generates the code for the
                         // brute-force algorithm ... used for correctness")
  real_t validate_tolerance = 1e-6;
  /// Engines consult the analysis framework's proven KernelFacts for prune
  /// legality instead of re-matching envelope shapes (ISSUE 6). The facts
  /// are defined to coincide with the legacy conditions, so flipping this
  /// changes *which oracle answers*, never the answer -- the differential
  /// fuzz wall (test_codegen_fuzz) pins that bitwise.
  bool analysis_gated_prune = true;
  /// True when the user supplied tau explicitly (CLI --tau, script
  /// `set tau=`, or test setup) rather than inheriting the default; lets
  /// lint warn when tau is handed to a problem family that ignores it
  /// (PTL-W106) without firing on every defaulted config.
  bool tau_explicit = false;

  /// Optional per-point group labels (query and reference sides; for a
  /// shared dataset point i has label labels[i] in original order). When
  /// set, reductions skip reference points sharing the query point's label
  /// and the generator adds the fully-connected prune -- the constraint
  /// dual-tree Boruvka needs for the MST rows of Tables III-IV.
  const std::vector<index_t>* exclude_same_label = nullptr;
};

/// Per-stage IR snapshots + pipeline trace (Figs. 1-3 benches).
struct CompileArtifacts {
  std::vector<std::pair<std::string, std::string>> stages; // (pass, dump)
  std::string pipeline_trace;
  std::string verify_report; // per-stage verifier summary (verify_ir mode)
  std::string chosen_engine;
  std::string problem_description; // Table III-style row
  /// PTL-Wxxx findings from the analysis/lint pass (insertion order; empty
  /// on a lint-clean program) and the same findings pre-rendered one per
  /// line. Consumed by `portal_cli lint` and the unit tests.
  std::vector<Diagnostic> lint_diagnostics;
  std::string lint_report;
  double compile_seconds = 0;
  double tree_build_seconds = 0;
  double traversal_seconds = 0;
};

/// Everything the backends need to run the problem.
struct ProblemPlan {
  std::vector<LayerSpec> layers; // outermost first
  KernelInfo kernel;
  ProblemCategory category = ProblemCategory::Exhaustive;
  IrProgram ir;                  // the three traversal functions, post-passes
  std::string description;
  /// Canonical structural hash of the verified post-pass IR + layer operator
  /// sequence (core/ir/ir_hash.h). Storage identity is excluded, so equal
  /// chains over same-shaped datasets share a fingerprint -- the plan-reuse
  /// key the serving runtime's compiled-plan cache (src/serve) is built on.
  /// Filled by PortalExpr::compile_if_needed(); 0 = not yet computed.
  std::uint64_t fingerprint = 0;
  /// Kernel properties proven by the analysis framework (core/analysis),
  /// cached next to the fingerprint so every consumer -- pattern engine,
  /// generic executor, serve rule sets, lint -- reads one oracle.
  /// facts.computed == false (hand-built plans) always falls back to the
  /// legacy shape-matching rules.
  KernelFacts facts;
  /// Snapshot of PortalConfig::analysis_gated_prune at compile time.
  bool analysis_gated = true;
};

} // namespace portal
